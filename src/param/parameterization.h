#pragma once

#include <cstddef>

#include "common/array2d.h"
#include "common/types.h"

namespace boson::param {

/// Differentiable map from latent design variables theta to a continuous
/// material occupancy rho in [0, 1] on the design grid (the paper's P).
///
/// Implementations: `levelset_param` (the paper's default) and
/// `density_param` (the "Density" baseline, optionally with MFS blur).
class parameterization {
 public:
  virtual ~parameterization() = default;

  virtual std::size_t num_params() const = 0;
  virtual std::size_t nx() const = 0;
  virtual std::size_t ny() const = 0;

  /// rho(theta); `rho` is resized/overwritten to the design-grid shape.
  virtual void forward(const dvec& theta, array2d<double>& rho) const = 0;

  /// Chain rule: d_theta += (d rho / d theta)^T d_rho at the given theta.
  virtual void backward(const dvec& theta, const array2d<double>& d_rho,
                        dvec& d_theta) const = 0;

  /// Projection sharpness (beta) schedule hook; implementations that project
  /// smoothly override this. Larger beta pushes rho toward binary.
  virtual void set_sharpness(double beta) = 0;
  virtual double sharpness() const = 0;
};

}  // namespace boson::param
