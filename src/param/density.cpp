#include "param/density.h"

#include "common/error.h"

namespace boson::param {

density_param::density_param(std::size_t design_nx, std::size_t design_ny,
                             double blur_radius_cells, double beta, double eta)
    : design_nx_(design_nx),
      design_ny_(design_ny),
      blur_(design_nx, design_ny, blur_radius_cells),
      project_{beta, eta} {
  require(design_nx > 0 && design_ny > 0, "density_param: empty design grid");
}

void density_param::forward(const dvec& theta, array2d<double>& rho) const {
  require(theta.size() == num_params(), "density_param: theta size mismatch");
  array2d<double> x(design_nx_, design_ny_);
  for (std::size_t i = 0; i < theta.size(); ++i) x.data()[i] = sigmoid(theta[i]);

  array2d<double> x_bar(design_nx_, design_ny_);
  blur_.forward(x, x_bar);

  if (rho.nx() != design_nx_ || rho.ny() != design_ny_)
    rho = array2d<double>(design_nx_, design_ny_);
  for (std::size_t i = 0; i < rho.size(); ++i)
    rho.data()[i] = project_.forward(x_bar.data()[i]);
}

void density_param::backward(const dvec& theta, const array2d<double>& d_rho,
                             dvec& d_theta) const {
  require(theta.size() == num_params(), "density_param: theta size mismatch");
  require(d_rho.nx() == design_nx_ && d_rho.ny() == design_ny_,
          "density_param: d_rho shape mismatch");
  if (d_theta.size() != num_params()) d_theta.assign(num_params(), 0.0);

  // Recompute the intermediates (cheap relative to a field solve).
  array2d<double> x(design_nx_, design_ny_);
  for (std::size_t i = 0; i < theta.size(); ++i) x.data()[i] = sigmoid(theta[i]);
  array2d<double> x_bar(design_nx_, design_ny_);
  blur_.forward(x, x_bar);

  array2d<double> d_xbar(design_nx_, design_ny_);
  for (std::size_t i = 0; i < d_xbar.size(); ++i)
    d_xbar.data()[i] = d_rho.data()[i] * project_.derivative(x_bar.data()[i]);

  array2d<double> d_x(design_nx_, design_ny_);
  blur_.adjoint(d_xbar, d_x);

  for (std::size_t i = 0; i < d_theta.size(); ++i)
    d_theta[i] += d_x.data()[i] * sigmoid_derivative_from_value(x.data()[i]);
}

}  // namespace boson::param
