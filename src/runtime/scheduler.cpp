#include "runtime/scheduler.h"

#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <memory>
#include <mutex>
#include <system_error>
#include <thread>
#include <utility>

#include "common/env.h"
#include "common/log.h"
#include "common/timer.h"
#include "core/methods.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/checkpoint.h"
#include "runtime/journal.h"
#include "store/segment_log.h"

namespace boson::runtime {

namespace {

namespace fs = std::filesystem;

/// Scheduler counters and gauges in the process-wide obs registry; resolved
/// once, relaxed-atomic to update.
struct sched_metrics_block {
  obs::gauge& queue_depth;
  obs::counter& completed;
  obs::counter& failed;
  obs::counter& cancelled;
  obs::counter& claimed;
  obs::counter& stolen;
  obs::counter& lost;
};

sched_metrics_block& sched_metrics() {
  auto& reg = obs::registry::global();
  static sched_metrics_block block{
      reg.get_gauge("runtime.scheduler.queue_depth"),
      reg.get_counter("runtime.scheduler.jobs_completed"),
      reg.get_counter("runtime.scheduler.jobs_failed"),
      reg.get_counter("runtime.scheduler.jobs_cancelled"),
      reg.get_counter("runtime.scheduler.leases_claimed"),
      reg.get_counter("runtime.scheduler.leases_stolen"),
      reg.get_counter("runtime.scheduler.leases_lost")};
  return block;
}

/// Observer each attempt runs under: forwards to the worker's inner observer
/// and, at every iteration/stage boundary,
///  1. turns a cancel request into `cancelled_error` — never after the work
///     already finished, so a cancel that lands during final artifact writes
///     does not discard a completed job;
///  2. counts the `mid_run` fault point (iteration boundaries only);
///  3. heartbeats the job's lease once a third of the TTL has elapsed,
///     turning a failed renewal (the lease was stolen) into
///     `lease_lost_error` so the attempt is abandoned promptly.
class lease_guard : public api::observer {
 public:
  lease_guard(api::observer* inner, const std::atomic<bool>& cancel_flag,
              lease_manager& manager, job_lease& lease, fault_injector* faults)
      : inner_(inner), cancel_(cancel_flag), manager_(manager), lease_(lease),
        faults_(faults) {}

  void on_event(const api::progress_event& event) override {
    using phase = api::progress_event::phase;
    const bool boundary = event.kind == phase::iteration_finished ||
                          event.kind == phase::stage_started;
    if (boundary) {
      if (cancel_.load())
        throw cancelled_error("job '" + event.experiment + "' cancelled");
      if (faults_ != nullptr && event.kind == phase::iteration_finished)
        faults_->hit(fault_point::mid_run, lease_.job_index, lease_.job_name,
                     lease_.attempt);
      if (manager_.now() >= lease_.deadline - 2.0 / 3.0 * manager_.ttl() &&
          !manager_.renew(lease_))
        throw lease_lost_error("job '" + event.experiment +
                               "' lease lost at a heartbeat");
    }
    if (inner_ != nullptr) inner_->on_event(event);
  }

 private:
  api::observer* inner_;
  const std::atomic<bool>& cancel_;
  lease_manager& manager_;
  job_lease& lease_;
  fault_injector* faults_;
};

job_result_row make_row(const campaign_job& job, const api::experiment_result& result,
                        std::size_t attempt, double seconds) {
  job_result_row row;
  row.job_index = job.index;
  row.name = job.name;
  row.device = job.spec.device;
  row.method = job.spec.method;
  row.seed = job.spec.seed;
  row.prefab_fom = result.method.prefab_fom;
  row.postfab_samples = result.method.postfab.samples;
  row.postfab_mean = result.method.postfab.fom_mean;
  row.postfab_std = result.method.postfab.fom_std;
  row.postfab_min = result.method.postfab.fom_min;
  row.postfab_max = result.method.postfab.fom_max;
  row.seconds = seconds;
  row.attempt = attempt;
  row.artifact_dir = result.artifact_dir;
  row.recipe = api::resolved_recipe(job.spec).signature();
  return row;
}

}  // namespace

std::string default_worker_id() { return "w" + std::to_string(::getpid()); }

std::string journal_path(const std::string& campaign_dir) {
  // Layout auto-detection: a campaign created with segmented-journal options
  // has a `journal/` store directory; everything else (including every
  // pre-existing campaign) uses the legacy single file.
  const std::string segmented = (fs::path(campaign_dir) / "journal").string();
  if (store::segment_log::is_store_dir(segmented)) return segmented;
  return (fs::path(campaign_dir) / "journal.jsonl").string();
}

std::string campaign_spec_path(const std::string& campaign_dir) {
  return (fs::path(campaign_dir) / "campaign.json").string();
}

std::string job_directory(const std::string& campaign_dir, const std::string& job_name) {
  // api::artifact_name is the session's own sanitizer, so checkpoints land
  // in the exact directory the session writes the job's artifacts into.
  return (fs::path(campaign_dir) / "jobs" / api::artifact_name(job_name)).string();
}

scheduler::scheduler(campaign_spec spec, scheduler_options options)
    : spec_(std::move(spec)), options_(std::move(options)) {}

scheduler_settings scheduler::effective_settings() const {
  scheduler_settings settings = spec_.scheduler;
  if (options_.workers) settings.workers = *options_.workers;
  if (options_.max_retries) settings.max_retries = *options_.max_retries;
  if (options_.checkpoint_every) settings.checkpoint_every = *options_.checkpoint_every;
  if (options_.lease_ttl) settings.lease_ttl = *options_.lease_ttl;
  settings.workers = std::max<std::size_t>(1, settings.workers);
  require(settings.lease_ttl > 0.0, "scheduler: lease TTL must be positive");
  return settings;
}

std::string scheduler::worker_id() const {
  return options_.worker_id.empty() ? default_worker_id() : options_.worker_id;
}

scheduler_report scheduler::run() {
  const stopwatch sw;
  // Each run starts un-cancelled: the documented re-run contract gives
  // previously cancelled jobs a fresh chance (cancel() during this run
  // still stops it).
  cancel_.store(false);
  const scheduler_settings settings = effective_settings();
  const bool tracing = options_.trace || env_int("BOSON_TRACE", 0) != 0;
  fs::create_directories(fs::path(options_.campaign_dir) / "jobs");

  const std::vector<campaign_job> all_jobs = spec_.expand();

  journal_options jopts;
  jopts.segment_bytes = options_.segment_bytes;
  jopts.segment_records = options_.segment_records;
  jopts.compact_segments = options_.compact_segments;
  journal log(options_.campaign_dir, jopts);
  result_store store(options_.campaign_dir);
  lease_manager manager(log, worker_id(), settings.lease_ttl, options_.clock);
  fault_injector* const faults = options_.faults;

  // The jobs this worker considers (the shard filter survives as a
  // deprecated alias), minus everything the journal already proved done.
  scheduler_report report;
  std::vector<const campaign_job*> pending;
  {
    const lease_table table = manager.snapshot();
    for (const campaign_job& job : all_jobs) {
      if (!options_.shard.contains(job.index)) continue;
      ++report.shard_jobs;
      if (table.done(job.index)) {
        ++report.skipped;
        continue;
      }
      pending.push_back(&job);
    }
  }

  if (pending.empty()) {
    report.wall_seconds = sw.seconds();
    return report;
  }

  const auto journal_event = [&log, &manager](const campaign_job& job, job_state state,
                                              std::size_t attempt,
                                              const std::string& detail = "",
                                              double seconds = 0.0,
                                              const job_lease* lease = nullptr) {
    journal_entry e;
    e.job_index = job.index;
    e.job_name = job.name;
    e.state = state;
    e.attempt = attempt;
    e.detail = detail;
    e.seconds = seconds;
    if (lease != nullptr) {
      e.worker = manager.worker();
      e.lease_id = lease->lease_id;
    }
    e.stamp = manager.now();
    log.append(e);
  };

  std::mutex report_mutex;
  std::atomic<std::size_t> next{0};

  // One leased attempt sequence for `job`: run (resuming from a persisted
  // checkpoint if one exists), commit on success, re-claim between retries —
  // a `failed` record releases the lease, so each retry has to win the job
  // back before burning simulation time on it.
  const auto run_leased_job = [&](const campaign_job& job, job_lease lease,
                                  api::observer* inner) {
    const std::string dir = job_directory(options_.campaign_dir, job.name);
    const std::string snapshot = checkpoint_path(dir);
    bool counted_resume = false;

    for (std::size_t try_index = 0; try_index <= settings.max_retries; ++try_index) {
      if (try_index > 0) {
        // The failed record released the lease; win it back for the retry.
        std::optional<job_lease> again;
        {
          obs::span lease_sp("job.lease", "runtime");
          if (lease_sp.active()) lease_sp.arg("job", job.name);
          again = manager.claim(job.index, job.name);
        }
        if (!again) {
          sched_metrics().lost.inc();
          const std::lock_guard<std::mutex> lock(report_mutex);
          ++report.lost;  // another worker took (or finished) the retry
          return;
        }
        lease = *again;
        sched_metrics().claimed.inc();
        if (lease.stolen) sched_metrics().stolen.inc();
        const std::lock_guard<std::mutex> lock(report_mutex);
        ++report.claimed;
        if (lease.stolen) ++report.stolen;
      }
      const std::size_t attempt = lease.attempt;
      lease_guard guard(inner, cancel_, manager, lease, faults);

      api::run_control control;
      if (settings.checkpoint_every > 0) {
        control.checkpoint_every = settings.checkpoint_every;
        control.on_checkpoint = [&](const core::run_checkpoint& ck) {
          obs::span ck_sp("job.checkpoint", "runtime");
          if (ck_sp.active())
            ck_sp.arg("iteration", std::to_string(ck.next_iteration));
          save_checkpoint(dir, job.name, ck);
          journal_event(job, job_state::checkpointed, attempt,
                        "iteration " + std::to_string(ck.next_iteration) + "/" +
                            std::to_string(ck.total_iterations),
                        0.0, &lease);
          if (faults != nullptr)
            faults->hit(fault_point::after_checkpoint, job.index, job.name, attempt);
          // A persisted checkpoint is the natural heartbeat: whoever steals
          // this lease resumes from here, so renewing now keeps the lease
          // honest about how stale a steal could be.
          if (!manager.renew(lease))
            throw lease_lost_error("job '" + job.name +
                                   "' lease lost at a checkpoint");
        };
      }

      // Restore any persisted snapshot — also when checkpointing is now
      // disabled, so `campaign resume` picks up mid-flight work regardless.
      std::string resume_note;
      if (fs::exists(snapshot)) {
        try {
          checkpoint_file file = load_checkpoint(snapshot);
          require(file.job == job.name,
                  "checkpoint belongs to job '" + file.job + "'");
          // A snapshot from a different effective run length (changed
          // BOSON_BENCH_SCALE, edited campaign) would be rejected by the
          // optimizer on every retry; discard it here so the job runs fresh
          // instead of burning its whole budget on the same dead state.
          // Resolve through the recipe: a recipe-level iterations override
          // changes the run length the checkpoints were captured under.
          const std::size_t expected =
              core::resolved_run_options(api::resolved_recipe(job.spec),
                                         api::session::config_for(job.spec))
                  .iterations;
          require(file.state.total_iterations == expected,
                  "checkpoint captured for " +
                      std::to_string(file.state.total_iterations) +
                      " iterations, the run expects " + std::to_string(expected));
          resume_note =
              "resume from iteration " + std::to_string(file.state.next_iteration);
          control.resume =
              std::make_shared<const core::run_checkpoint>(std::move(file.state));
        } catch (const std::exception& e) {
          log_warn("scheduler: discarding unusable checkpoint '", snapshot,
                   "': ", e.what());
          std::error_code ec;
          fs::remove(snapshot, ec);
        }
      }

      journal_event(job, job_state::running, attempt, resume_note, 0.0, &lease);
      if (!resume_note.empty() && !counted_resume) {
        counted_resume = true;
        const std::lock_guard<std::mutex> lock(report_mutex);
        ++report.resumed;
      }

      const stopwatch job_sw;
      try {
        api::experiment_result result;
        {
          obs::span run_sp("job.run", "runtime");
          if (run_sp.active()) {
            run_sp.arg("job", job.name);
            run_sp.arg("attempt", std::to_string(attempt));
            run_sp.arg("worker", manager.worker());
          }
          result = options_.executor ? options_.executor(job, control, &guard)
                                     : execute_with_session(job, control, &guard);
        }
        // Commit protocol: prove the lease is still ours, then row first,
        // then the journal — "completed" implies stored, and a worker that
        // lost its lease mid-run forfeits instead of double-reporting (the
        // stealer's bit-identical resumed result is the one that lands).
        if (!manager.still_owner(lease)) {
          sched_metrics().lost.inc();
          const std::lock_guard<std::mutex> lock(report_mutex);
          ++report.lost;
          return;
        }
        if (faults != nullptr)
          faults->hit(fault_point::before_result, job.index, job.name, attempt);
        const job_result_row row = make_row(job, result, attempt, job_sw.seconds());
        {
          obs::span commit_sp("job.commit", "runtime");
          if (commit_sp.active()) commit_sp.arg("job", job.name);
          store.append(row);
          journal_event(job, job_state::completed, attempt, "", row.seconds, &lease);
        }
        std::error_code ec;
        fs::remove(snapshot, ec);
        fs::remove(fs::path(dir) / "checkpoint.pgm", ec);
        sched_metrics().completed.inc();
        const std::lock_guard<std::mutex> lock(report_mutex);
        ++report.completed;
        report.rows.push_back(row);
        return;
      } catch (const cancelled_error& e) {
        // Releases the lease in resolution, so another worker can pick the
        // job up; the checkpoint stays for them (or a later resume).
        journal_event(job, job_state::cancelled, attempt, e.what(), job_sw.seconds(),
                      &lease);
        sched_metrics().cancelled.inc();
        const std::lock_guard<std::mutex> lock(report_mutex);
        ++report.cancelled;
        return;  // cancellation is not a failure: no retry
      } catch (const lease_lost_error& e) {
        // The job is someone else's now — nothing to journal (our lease
        // fields would resolve as void anyway).
        log_warn("scheduler: ", e.what(), "; abandoning the attempt");
        sched_metrics().lost.inc();
        const std::lock_guard<std::mutex> lock(report_mutex);
        ++report.lost;
        return;
      } catch (const io_error&) {
        // Durability (journal/store/checkpoint) or artifact IO died — disk
        // full, permissions. Re-running the simulation cannot fix that and
        // its outcome could not be made durable anyway: escalate so
        // worker_main stops the whole campaign instead of burning
        // retries x simulation time per job.
        throw;
      } catch (const std::exception& e) {
        // A checkpoint the optimizer itself refused (e.g. the spec changed
        // between runs in a way the proactive validation above misses) is
        // unusable: drop it so the retry — or a later resume — runs fresh.
        if (control.resume != nullptr && dynamic_cast<const bad_argument*>(&e) != nullptr &&
            std::string(e.what()).find("resume checkpoint") != std::string::npos) {
          log_warn("scheduler: discarding checkpoint the optimizer refused ('",
                   e.what(), "')");
          std::error_code ec;
          fs::remove(snapshot, ec);
        }
        journal_event(job, job_state::failed, attempt, e.what(), job_sw.seconds(),
                      &lease);
        if (try_index == settings.max_retries) {
          sched_metrics().failed.inc();
          const std::lock_guard<std::mutex> lock(report_mutex);
          ++report.failed;
          report.errors.push_back(job.name + ": " + e.what());
        } else {
          log_warn("scheduler: job '", job.name, "' attempt ", attempt, " failed (",
                   e.what(), "); retrying");
        }
      }
    }
  };

  const auto worker_main = [&](std::size_t thread_id) {
    api::log_observer tagged("[" + manager.worker() + ".t" +
                             std::to_string(thread_id) + "] ");
    api::observer* inner = options_.watcher != nullptr ? options_.watcher : &tagged;

    while (!cancel_.load()) {
      const std::size_t i = next.fetch_add(1);
      if (i >= pending.size()) break;
      sched_metrics().queue_depth.set(
          static_cast<double>(pending.size() - std::min(i + 1, pending.size())));
      const campaign_job& job = *pending[i];
      try {
        // Per-job trace buffer: spans recorded on this thread while the job
        // runs (lease, run, checkpoints, commit, and the sim spans beneath
        // them) land in a `trace.json` artifact next to summary.json.
        std::unique_ptr<obs::trace_collector> job_trace;
        std::unique_ptr<obs::scoped_trace_sink> trace_sink;
        if (tracing) {
          job_trace = std::make_unique<obs::trace_collector>();
          trace_sink = std::make_unique<obs::scoped_trace_sink>(job_trace.get());
        }
        std::optional<job_lease> lease;
        {
          obs::span lease_sp("job.lease", "runtime");
          if (lease_sp.active()) lease_sp.arg("job", job.name);
          lease = manager.claim(job.index, job.name);
        }
        if (!lease) {
          // Done, live-leased elsewhere (including by a sibling thread of
          // this worker), or a lost claim race. Never wait on another
          // worker's live lease — report it and move on.
          const lease_view v = manager.snapshot().view(job.index);
          const std::lock_guard<std::mutex> lock(report_mutex);
          if (v.state == lease_view::phase::done) ++report.skipped;
          else ++report.left_leased;
          continue;
        }
        sched_metrics().claimed.inc();
        if (lease->stolen) sched_metrics().stolen.inc();
        {
          const std::lock_guard<std::mutex> lock(report_mutex);
          ++report.claimed;
          if (lease->stolen) ++report.stolen;
        }
        if (lease->stolen)
          log_warn("scheduler[", manager.worker(), "]: took over job '", job.name,
                   "' from expired lease of '", lease->stolen_from, "'");
        if (faults != nullptr)
          faults->hit(fault_point::after_lease, job.index, job.name, lease->attempt);
        run_leased_job(job, *lease, inner);
        if (job_trace != nullptr && job_trace->size() > 0) {
          trace_sink.reset();  // stop recording before the export
          const std::string dir = job_directory(options_.campaign_dir, job.name);
          fs::create_directories(dir);
          job_trace->write_chrome_json((fs::path(dir) / "trace.json").string());
        }
      } catch (const std::exception& e) {
        // Journal/store IO died: stop the campaign rather than run jobs
        // whose outcomes cannot be made durable.
        cancel_.store(true);
        const std::lock_guard<std::mutex> lock(report_mutex);
        report.errors.push_back(std::string("scheduler worker: ") + e.what());
      }
    }
  };

  const std::size_t worker_count = std::min(settings.workers, pending.size());
  std::vector<std::thread> workers;
  workers.reserve(worker_count);
  for (std::size_t w = 0; w < worker_count; ++w) workers.emplace_back(worker_main, w);
  for (std::thread& t : workers) t.join();
  sched_metrics().queue_depth.set(0.0);

  // Segmented journals: fold finished history once per scheduling pass, so
  // replay/poll cost at the next resume tracks live state, not the full
  // lease/heartbeat churn this run appended.
  const std::size_t folded = log.maybe_compact();
  if (folded > 0)
    log_info("scheduler[", spec_.name, "]: journal compaction folded away ",
             folded, " records");

  report.wall_seconds = sw.seconds();
  log_info("scheduler[", spec_.name, " ", manager.worker(), "]: ",
           report.completed, " completed, ", report.skipped, " skipped, ",
           report.failed, " failed, ", report.cancelled, " cancelled, ",
           report.stolen, " stolen, ", report.left_leased, " left leased in ",
           report.wall_seconds, " s");
  return report;
}

api::experiment_result scheduler::execute_with_session(const campaign_job& job,
                                                       const api::run_control& control,
                                                       api::observer* watcher) {
  api::session_options so;
  so.output_dir = (fs::path(options_.campaign_dir) / "jobs").string();
  so.write_artifacts = options_.write_artifacts;
  so.watcher = watcher;
  api::session session(so);
  return session.run(job.spec, control);
}

}  // namespace boson::runtime
