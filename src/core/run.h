/// \file run.h
/// The optimization driver: `run_inverse_design` executes the full BOSON-1
/// loop — sample variation corners, evaluate the differentiable
/// fabrication-aware pipeline on each in parallel, average gradients,
/// optionally blend in the relaxed (ideal) gradient during the conditional
/// subspace-relaxation warmup, and take an Adam step on the latent design
/// variables. `run_options` selects between the full BOSON-1 recipe and the
/// ablated/baseline configurations compared in the paper's tables.

#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/design_problem.h"
#include "optim/optimizer.h"
#include "robust/sampler.h"

namespace boson::core {

/// Nominal-corner metrics per iteration (the series plotted in Fig. 5).
struct iteration_record {
  std::size_t iteration = 0;
  double loss = 0.0;
  std::map<std::string, double> metrics;
};

/// Per-iteration progress callback: the just-finished iteration's record and
/// the total iteration count. Invoked from the driving thread (never from a
/// corner worker), so observers need no synchronization of their own.
using iteration_callback =
    std::function<void(const iteration_record&, std::size_t total_iterations)>;

/// Resumable snapshot of the optimization loop, captured between iterations.
/// Restoring a checkpoint into a freshly-built problem continues the exact
/// trajectory the original run would have produced: the latent variables,
/// Adam moments, RNG stream position, the previous iteration's worst-case
/// ascent directions, and the trajectory recorded so far are all carried.
struct run_checkpoint {
  std::size_t next_iteration = 0;  ///< first iteration still to execute
  std::size_t total_iterations = 0;  ///< run length at capture time (sanity check)
  dvec theta;                      ///< latent variables after `next_iteration` steps
  opt::adam_state optimizer;
  std::string rng_state;           ///< `rng::save_state` of the corner-sampling stream
  bool has_worst = false;          ///< whether `worst` carries ascent directions
  robust::worst_case_info worst;   ///< harvested on the last finished iteration
  std::vector<iteration_record> trajectory;  ///< records up to the checkpoint
  double final_loss = 0.0;
  array2d<double> design_rho;  ///< pattern at `theta` (for preview artifacts; not restored)
};

/// Checkpoint consumer, invoked from the driving thread with a snapshot that
/// is safe to serialize after the callback returns (all fields are copies).
using checkpoint_callback = std::function<void(const run_checkpoint&)>;

/// Configuration of one inverse-design optimization run. The BOSON-1 recipe
/// sets fab_aware + dense_objectives + relaxation + axial_plus_worst; the
/// baselines switch individual ingredients off.
struct run_options {
  std::size_t iterations = 50;
  double learning_rate = 0.05;

  bool fab_aware = true;         ///< subspace optimization (litho+etch in loop)
  bool dense_objectives = true;  ///< landscape reshaping via auxiliary penalties
  bool use_mfs_blur = false;     ///< classical MFS control ('-M')

  /// Conditional subspace relaxation: the fabrication-aware weight p ramps
  /// 0 -> 1 over this many iterations (0 disables the high-dimensional
  /// tunnel and optimizes purely in the fabricable subspace).
  std::size_t relax_epochs = 0;

  robust::sampling_strategy sampling = robust::sampling_strategy::nominal_only;

  /// Prior-art robust baseline (refs [1],[7],[20]): optimize the nominal
  /// pattern together with uniformly eroded/dilated variants instead of the
  /// fabrication model. Requires fab_aware == false.
  bool erosion_dilation = false;
  double ed_radius_cells = 1.2;

  /// Optional total-variation (perimeter) regularization weight — the
  /// classical curvature-penalty heuristic for feature-size control.
  double tv_weight = 0.0;

  /// Projection sharpness schedule for the parameterization.
  double beta_start = 8.0;
  double beta_end = 40.0;

  std::uint64_t seed = 17;
  std::string objective_override;  ///< e.g. "fwd_transmission" for '-eff'
  bool record_trajectory = true;

  /// Linear-backend selection for every FDFD solve of the run (the
  /// BOSON_BACKEND environment variable sets the default backend).
  sim::engine_settings engine;

  /// Reuse prepared operators across corners via the global engine cache —
  /// duplicate corner states (e.g. the warmup worst-case slot, which repeats
  /// the nominal corner) then skip re-assembly and re-factorization. On by
  /// default everywhere (the library-wide documented default); setting the
  /// BOSON_SIM_CACHE environment variable to 0 disables caching globally
  /// regardless of this flag.
  bool use_operator_cache = true;

  /// Observer hook called after every iteration with the nominal-corner
  /// record; replaces ad-hoc printf progress reporting in drivers.
  iteration_callback on_iteration;

  /// Durability hooks (the campaign runtime's crash-recovery path). When
  /// `checkpoint_every > 0`, `on_checkpoint` receives a `run_checkpoint`
  /// after every K-th iteration (except the last, whose result is final).
  std::size_t checkpoint_every = 0;
  checkpoint_callback on_checkpoint;

  /// Resume a previous run from a checkpoint captured with *identical*
  /// options and problem: iterations [0, resume_state->next_iteration) are
  /// skipped and the restored state reproduces the uninterrupted trajectory
  /// bit for bit. The snapshot is only read during the call.
  std::shared_ptr<const run_checkpoint> resume_state;
};

struct run_result {
  dvec theta;
  array2d<double> design_rho;  ///< continuous pattern at the final theta
  std::vector<iteration_record> trajectory;
  double final_loss = 0.0;
};

/// Gradient-based inverse design: per iteration, sample variation corners,
/// evaluate loss+gradient on each concurrently, average, optionally blend in
/// the relaxed (ideal, non-fabricated) gradient, and take an Adam step.
run_result run_inverse_design(design_problem& problem, const dvec& theta0,
                              const run_options& options);

}  // namespace boson::core
