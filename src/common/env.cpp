#include "common/env.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>

namespace boson {

namespace {

const char* raw(const char* name) {
  const char* v = std::getenv(name);
  return (v != nullptr && v[0] != '\0') ? v : nullptr;
}

}  // namespace

std::string env_string(const char* name, const std::string& fallback) {
  const char* v = raw(name);
  return v != nullptr ? std::string(v) : fallback;
}

long env_int(const char* name, long fallback) {
  const char* v = raw(name);
  if (v == nullptr) return fallback;
  char* end = nullptr;
  const long parsed = std::strtol(v, &end, 10);
  return (end != v) ? parsed : fallback;
}

double env_double(const char* name, double fallback) {
  const char* v = raw(name);
  if (v == nullptr) return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(v, &end);
  return (end != v) ? parsed : fallback;
}

bool env_flag(const char* name, bool fallback) {
  const char* v = raw(name);
  if (v == nullptr) return fallback;
  std::string s(v);
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return s == "1" || s == "true" || s == "yes" || s == "on";
}

}  // namespace boson
