// Table III of the paper: every design methodology on the optical isolator.
//
// Density / LS with and without MFS control, the two-stage InvFabCor flow
// with 1 or 3 matched lithography corners, its '-eff' variant (transmission
// objective), and BOSON-1. Rows show the pre-fab [fwd, bwd] transmissions
// and FoM followed by the post-fab values. BOSON-1 reports its real
// (post-fab) performance only, as in the paper. The eleven runs execute as
// declarative specs through one boson::api session, sharing the engine
// cache across methods.

#include "api/session.h"
#include "bench_common.h"

int main() {
  using namespace boson;

  const stopwatch total;

  bench::print_banner("Table III: methods comparison on the optical isolator");
  {
    const core::experiment_config cfg = api::session::config_for(api::experiment_spec{});
    std::printf("(iterations=%zu, MC samples=%zu, seed=%llu)\n", cfg.scaled_iterations(),
                cfg.scaled_samples(), static_cast<unsigned long long>(cfg.seed));
  }

  // The paper's ten rows plus LS-ED, the erosion/dilation geometry-corner
  // prior art the paper discusses in Section II-B (extra row, not in the
  // paper's table).
  const std::vector<std::string> methods{
      "density",       "density_m",     "ls",
      "ls_m",          "invfabcor_1",   "invfabcor_3",
      "invfabcor_m_1", "invfabcor_m_3", "invfabcor_m_3_eff",
      "ls_ed",         "boson",
  };

  io::csv_writer csv("table3_methods.csv",
                     {"model", "prefab_fwd", "prefab_bwd", "prefab_contrast",
                      "postfab_fwd", "postfab_bwd", "postfab_contrast"});
  io::console_table table({"model", "fwd & bwd transmission", "avg FoM (pre -> post)"});

  api::session_options so;
  so.write_artifacts = false;
  api::session session(so);

  double best_baseline = 1e300;
  double boson_fom = 0.0;
  for (const std::string& method : methods) {
    api::experiment_spec spec;
    spec.name = "isolator_" + method;
    spec.device = "isolator";
    spec.method = method;
    const core::method_result r = session.run(spec).method;
    const bool is_boson = method == "boson";
    if (is_boson) {
      boson_fom = r.postfab.fom_mean;
      table.add_row({r.method, bench::fwd_bwd_cell(r.postfab.metric_means),
                     io::console_table::sci(r.postfab.fom_mean)});
    } else {
      best_baseline = std::min(best_baseline, r.postfab.fom_mean);
      table.add_row({r.method,
                     bench::fwd_bwd_cell(r.prefab) + " -> " +
                         bench::fwd_bwd_cell(r.postfab.metric_means),
                     bench::arrow_cell(r.prefab_fom, r.postfab.fom_mean, true)});
    }
    csv.write_row(r.method,
                  {r.prefab.at("fwd_transmission"), r.prefab.at("bwd_transmission"),
                   r.prefab_fom, r.postfab.metric_means.at("fwd_transmission"),
                   r.postfab.metric_means.at("bwd_transmission"), r.postfab.fom_mean});
  }

  std::printf("\n");
  table.print("Optical isolator: isolation contrast (lower is better)");
  std::printf("\nBOSON-1 post-fab contrast vs best baseline: %.3g vs %.3g (%.1fx better)\n",
              boson_fom, best_baseline, best_baseline / std::max(boson_fom, 1e-12));
  std::printf("raw rows: table3_methods.csv\n");
  bench::print_runtime(total);
  return 0;
}
