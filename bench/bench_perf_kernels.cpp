// Microbenchmarks (google-benchmark) of the computational kernels behind the
// inverse-design loop: banded LU factorization/solve (the FDFD direct
// solver), the FFT convolution engine, the Hopkins lithography model's
// forward/backward passes, slab mode solving and one full pipeline
// evaluation. These quantify where an optimization iteration's time goes.

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "core/design_problem.h"
#include "core/methods.h"
#include "devices/builders.h"
#include "fab/litho.h"
#include "fab/temperature.h"
#include "fdfd/solver.h"
#include "fft/conv2d.h"
#include "modes/slab.h"
#include "sparse/banded.h"

namespace {

using namespace boson;

// ------------------------------------------------------------- banded LU ----

void bm_banded_lu(benchmark::State& state) {
  const auto n_side = static_cast<std::size_t>(state.range(0));
  const std::size_t n = n_side * n_side;
  const std::size_t band = n_side;
  rng r(7);
  for (auto _ : state) {
    state.PauseTiming();
    sp::banded_lu lu(n, band, band);
    for (std::size_t i = 0; i < n; ++i) {
      lu.add(i, i, cplx(4.0 + r.uniform(0, 1), 1.0));
      if (i + 1 < n) lu.add(i, i + 1, cplx(-1.0, 0.0));
      if (i >= 1) lu.add(i, i - 1, cplx(-1.0, 0.0));
      if (i + band < n) lu.add(i, i + band, cplx(-1.0, 0.0));
      if (i >= band) lu.add(i, i - band, cplx(-1.0, 0.0));
    }
    state.ResumeTiming();
    lu.factor();
    cvec b(n, cplx{1.0});
    benchmark::DoNotOptimize(lu.solve(b));
  }
  state.SetComplexityN(static_cast<benchmark::IterationCount>(n));
}
BENCHMARK(bm_banded_lu)->Arg(32)->Arg(48)->Arg(64)->Arg(88)->Unit(benchmark::kMillisecond);

// ----------------------------------------------------------- FDFD solve ----

void bm_fdfd_forward_solve(benchmark::State& state) {
  const auto side = static_cast<std::size_t>(state.range(0));
  grid2d g;
  g.nx = g.ny = side;
  g.dx = g.dy = 0.05;
  pml_spec pml;
  pml.cells = 10;
  array2d<double> eps(side, side, 1.0);
  for (std::size_t ix = 0; ix < side; ++ix)
    for (std::size_t iy = side / 2 - 4; iy < side / 2 + 4; ++iy)
      eps(ix, iy) = fab::eps_si(300.0);
  array2d<cplx> current(side, side, cplx{});
  current(side / 4, side / 2) = cplx{1.0};
  for (auto _ : state) {
    fdfd::fdfd_solver solver(g, pml, 2.0 * pi / 1.55, eps);
    benchmark::DoNotOptimize(solver.solve(current));
  }
}
BENCHMARK(bm_fdfd_forward_solve)->Arg(64)->Arg(88)->Arg(112)->Unit(benchmark::kMillisecond);

void bm_fdfd_extra_solve_reusing_factorization(benchmark::State& state) {
  const std::size_t side = 88;
  grid2d g;
  g.nx = g.ny = side;
  g.dx = g.dy = 0.05;
  pml_spec pml;
  pml.cells = 10;
  array2d<double> eps(side, side, 1.0);
  fdfd::fdfd_solver solver(g, pml, 2.0 * pi / 1.55, eps);
  array2d<cplx> current(side, side, cplx{});
  current(30, 44) = cplx{1.0};
  (void)solver.solve(current);  // factorize once
  for (auto _ : state) benchmark::DoNotOptimize(solver.solve(current));
}
BENCHMARK(bm_fdfd_extra_solve_reusing_factorization)->Unit(benchmark::kMillisecond);

// ------------------------------------------------------------------ FFT ----

void bm_fft_conv2d(benchmark::State& state) {
  const auto side = static_cast<std::size_t>(state.range(0));
  rng r(5);
  array2d<cplx> kernel(21, 21);
  for (auto& v : kernel) v = cplx(r.uniform(-1, 1), r.uniform(-1, 1));
  fft::kernel_conv2d plan(side, side, {kernel});
  array2d<double> in(side, side);
  for (auto& v : in) v = r.uniform(0, 1);
  for (auto _ : state) {
    const auto in_fft = plan.transform_input(in);
    benchmark::DoNotOptimize(plan.apply(in_fft, 0));
  }
}
BENCHMARK(bm_fft_conv2d)->Arg(48)->Arg(64)->Arg(96)->Unit(benchmark::kMicrosecond);

// ---------------------------------------------------------------- litho ----

struct litho_fixture {
  fab::litho_settings settings;
  std::unique_ptr<fab::hopkins_litho> model;
  array2d<double> mask;

  litho_fixture() {
    settings.kernel_half = 10;
    model = std::make_unique<fab::hopkins_litho>(settings, fab::litho_corner_params{0.0, 1.0},
                                                 56, 56);
    mask = array2d<double>(56, 56, 0.0);
    for (std::size_t ix = 16; ix < 40; ++ix)
      for (std::size_t iy = 16; iy < 40; ++iy) mask(ix, iy) = 1.0;
  }
};

void bm_litho_forward(benchmark::State& state) {
  static litho_fixture f;
  for (auto _ : state) benchmark::DoNotOptimize(f.model->forward(f.mask));
}
BENCHMARK(bm_litho_forward)->Unit(benchmark::kMillisecond);

void bm_litho_backward(benchmark::State& state) {
  static litho_fixture f;
  const auto fwd = f.model->forward(f.mask);
  array2d<double> d_aerial(56, 56, 1.0);
  for (auto _ : state) benchmark::DoNotOptimize(f.model->backward(fwd, d_aerial));
}
BENCHMARK(bm_litho_backward)->Unit(benchmark::kMillisecond);

void bm_litho_model_construction(benchmark::State& state) {
  fab::litho_settings s;
  s.kernel_half = 8;
  for (auto _ : state) {
    fab::hopkins_litho model(s, fab::litho_corner_params{0.08, 1.05}, 48, 48);
    benchmark::DoNotOptimize(model.kernel_count());
  }
}
BENCHMARK(bm_litho_model_construction)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------- modes ----

void bm_slab_modes(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  dvec eps(n, 1.0);
  for (std::size_t j = n / 2 - n / 8; j < n / 2 + n / 8; ++j) eps[j] = 12.1;
  for (auto _ : state)
    benchmark::DoNotOptimize(modes::solve_slab_modes(eps, 0.05, 2.0 * pi / 1.55, 4));
}
BENCHMARK(bm_slab_modes)->Arg(40)->Arg(80)->Arg(160)->Unit(benchmark::kMicrosecond);

// ------------------------------------------------------- full pipeline ----

void bm_pipeline_evaluate(benchmark::State& state) {
  static core::experiment_config cfg = [] {
    core::experiment_config c;
    c.resolution = 0.1;
    c.litho.na = 0.65;
    c.litho.sigma = 0.35;
    c.litho.kernel_half = 5;
    return c;
  }();
  static core::design_problem problem = core::make_problem(dev::make_bend(0.1), true, cfg);
  static const dvec theta = core::concentrated_init(problem);
  robust::variation_corner nominal;
  nominal.xi.assign(problem.fab().space.eole_terms, 0.0);
  core::eval_options o;
  o.fab_aware = true;
  o.compute_gradient = true;
  for (auto _ : state) benchmark::DoNotOptimize(problem.evaluate(theta, nominal, o));
}
BENCHMARK(bm_pipeline_evaluate)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
