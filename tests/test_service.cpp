// Tests of the campaign service: the registry ledger (id assignment, tenant
// quota and validation, restart rescan), the incremental journal cursor
// (`journal::since`) and `result_store::count_rows` the status path rides
// on, the shared campaign-status snapshot, the campaign_service lifecycle
// (submit -> runner -> done, user cancel vs shutdown requeue, restart
// resume), and the JSON control plane — routed both directly (handler calls,
// no sockets) and over a real loopback `net::http_server` with concurrent
// clients. Executors are synthetic throughout: these tests exercise the
// service machinery, never a simulation.

#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "api/spec.h"
#include "io/json.h"
#include "net/http.h"
#include "net/http_client.h"
#include "net/http_server.h"
#include "runtime/campaign.h"
#include "runtime/journal.h"
#include "runtime/result_store.h"
#include "runtime/scheduler.h"
#include "service/registry.h"
#include "service/service.h"
#include "service/status.h"

namespace boson {
namespace {

namespace fs = std::filesystem;

/// EXPECT that `fn` throws `Exception` whose message contains `fragment`.
template <class Exception, class Fn>
void expect_throw_with(Fn&& fn, const std::string& fragment) {
  try {
    fn();
    FAIL() << "expected an exception containing \"" << fragment << "\"";
  } catch (const Exception& e) {
    EXPECT_NE(std::string(e.what()).find(fragment), std::string::npos)
        << "message was: " << e.what();
  }
}

fs::path fresh_dir(const std::string& name) {
  const fs::path dir = fs::path(testing::TempDir()) / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

/// Poll `predicate` up to `timeout` seconds; true when it held in time.
template <class Fn>
bool wait_until(Fn&& predicate, double timeout = 20.0) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(timeout);
  while (std::chrono::steady_clock::now() < deadline) {
    if (predicate()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return predicate();
}

/// Coarse, fast base spec (mirrors the api/core smoke configuration).
api::experiment_spec smoke_base() {
  api::experiment_spec spec;
  spec.resolution = 0.1;
  spec.iterations = 6;
  spec.relax_epochs = 0;
  spec.litho.na = 0.65;
  spec.litho.sigma = 0.35;
  spec.litho.kernel_half = 5;
  spec.litho.max_kernels = 5;
  spec.eole.anchors_x = 4;
  spec.eole.anchors_y = 4;
  spec.eole.num_terms = 5;
  spec.evaluation = {api::eval_step::monte_carlo(2)};
  return spec;
}

/// 1 device x 3 methods x 2 seeds x 2 overrides = 12 cheap-to-expand jobs.
runtime::campaign_spec synthetic_campaign() {
  runtime::campaign_spec spec;
  spec.name = "synthetic";
  spec.devices = {"bend"};
  spec.methods = {"density", "ls", "boson_no_relax"};
  spec.seeds = {1, 2};
  runtime::campaign_override nominal;
  nominal.name = "nom";
  runtime::campaign_override hot;
  hot.name = "hot";
  hot.patch = io::json_value::parse(R"({"litho": {"corner_defocus": 0.08}})");
  spec.overrides = {nominal, hot};
  spec.base = smoke_base();
  spec.scheduler.workers = 3;
  spec.scheduler.max_retries = 0;
  return spec;
}

/// Executor that fabricates a result without running any simulation.
runtime::job_executor counting_executor(std::atomic<std::size_t>& executed) {
  return [&executed](const runtime::campaign_job& job, const api::run_control&,
                     api::observer*) {
    ++executed;
    api::experiment_result result;
    result.spec = job.spec;
    result.method.prefab_fom = static_cast<double>(job.index);
    result.method.postfab.samples = 2;
    result.method.postfab.fom_mean = static_cast<double>(job.index) * 0.5;
    result.seconds = 0.001;
    return result;
  };
}

/// Executor whose jobs run "forever" (bounded, for safety) at cooperative
/// iteration boundaries — so user cancel and shutdown land mid-campaign.
runtime::job_executor slow_executor(std::atomic<std::size_t>& executed) {
  return [&executed](const runtime::campaign_job& job, const api::run_control&,
                     api::observer* watcher) {
    for (std::size_t i = 0; i < 5000; ++i) {
      api::progress_event event;
      event.kind = api::progress_event::phase::iteration_finished;
      event.experiment = job.name;
      event.iteration = i;
      event.total_iterations = 5000;
      watcher->on_event(event);  // throws cancelled_error once cancel lands
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    ++executed;
    api::experiment_result result;
    result.spec = job.spec;
    return result;
  };
}

/// Persist a spec the way the registry does, so `read_campaign_status`'s
/// directory overload finds it.
void write_spec(const runtime::campaign_spec& spec, const fs::path& dir) {
  spec.to_json().write_file(runtime::campaign_spec_path(dir.string()));
}

// ---------------------------------------------------------- journal since ----

TEST(journal_since, reads_incrementally) {
  const fs::path dir = fresh_dir("since_incremental");
  const std::string path = runtime::journal_path(dir.string());
  runtime::journal journal(path);

  runtime::journal_entry e;
  e.job_name = "j";
  e.state = runtime::job_state::running;
  e.attempt = 1;
  e.job_index = 0;
  journal.append(e);
  e.job_index = 1;
  journal.append(e);

  runtime::journal_cursor cursor;
  std::vector<runtime::journal_entry> got = runtime::journal::since(path, cursor);
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[1].job_index, 1u);
  EXPECT_EQ(cursor.line, 2u);

  e.job_index = 2;
  journal.append(e);
  got = runtime::journal::since(path, cursor);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].job_index, 2u);
  EXPECT_EQ(cursor.line, 3u);

  // Drained: nothing new, cursor parked.
  EXPECT_TRUE(runtime::journal::since(path, cursor).empty());

  // The byte cursor equals the file size once drained (the wire contract:
  // clients resume with exactly this offset).
  EXPECT_EQ(static_cast<std::uintmax_t>(cursor.offset), fs::file_size(path));

  // A full replay and the cursor walk agree.
  EXPECT_EQ(runtime::journal::replay(path).size(), 3u);
}

TEST(journal_since, missing_file_returns_nothing) {
  runtime::journal_cursor cursor;
  EXPECT_TRUE(
      runtime::journal::since((fresh_dir("since_none") / "journal.jsonl").string(),
                              cursor)
          .empty());
  EXPECT_EQ(cursor.offset, 0);
}

TEST(journal_since, torn_tail_stays_ahead_of_the_cursor) {
  const fs::path dir = fresh_dir("since_torn");
  const std::string path = runtime::journal_path(dir.string());
  {
    runtime::journal journal(path);
    runtime::journal_entry e;
    e.job_name = "j";
    e.state = runtime::job_state::completed;
    e.attempt = 1;
    journal.append(e);
  }
  // A crash (or a racing writer observed mid-flush) leaves a line without
  // its newline.
  std::ofstream(path, std::ios::app) << R"({"job":1,"name":"j","state":"running")";

  runtime::journal_cursor cursor;
  EXPECT_EQ(runtime::journal::since(path, cursor).size(), 1u);
  EXPECT_EQ(cursor.line, 1u);  // the fragment was not consumed

  // The "writer" finishes the line; the next poll picks it up whole.
  std::ofstream(path, std::ios::app) << ",\"attempt\":1}\n";
  const std::vector<runtime::journal_entry> got =
      runtime::journal::since(path, cursor);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].job_index, 1u);
  EXPECT_EQ(got[0].state, runtime::job_state::running);
}

TEST(journal_since, malformed_line_is_fatal_only_with_a_successor) {
  const fs::path dir = fresh_dir("since_malformed");
  const std::string path = runtime::journal_path(dir.string());
  {
    runtime::journal journal(path);
    runtime::journal_entry e;
    e.job_name = "j";
    e.state = runtime::job_state::completed;
    e.attempt = 1;
    journal.append(e);
  }
  std::ofstream(path, std::ios::app) << "{broken\n";

  // Malformed *final* line: indistinguishable from a racing append — the
  // good prefix is returned and the suspect line waits.
  runtime::journal_cursor cursor;
  EXPECT_EQ(runtime::journal::since(path, cursor).size(), 1u);
  EXPECT_EQ(cursor.line, 1u);

  // A successor line proves the file kept going: now it is corruption.
  std::ofstream(path, std::ios::app)
      << R"({"job":2,"name":"j","state":"running","attempt":1})" << "\n";
  expect_throw_with<io_error>(
      [&] { runtime::journal::since(path, cursor); }, "line 2");
}

// ------------------------------------------------------------- count_rows ----

TEST(result_store_count, matches_load_and_collapses_duplicates) {
  const fs::path dir = fresh_dir("count_rows");
  EXPECT_EQ(runtime::result_store::count_rows(dir.string()), 0u);

  std::atomic<std::size_t> executed{0};
  runtime::scheduler_options options;
  options.campaign_dir = dir.string();
  options.write_artifacts = false;
  options.executor = counting_executor(executed);
  runtime::scheduler scheduler(synthetic_campaign(), options);
  EXPECT_EQ(scheduler.run().completed, 12u);

  EXPECT_EQ(runtime::result_store::count_rows(dir.string()), 12u);
  EXPECT_EQ(runtime::result_store::load(dir.string()).size(), 12u);

  // A retry re-appends a row for an existing job: distinct-job count holds.
  {
    runtime::result_store store(dir.string());
    runtime::job_result_row row;
    row.job_index = 0;
    row.name = "retry";
    row.attempt = 2;
    store.append(row);
  }
  EXPECT_EQ(runtime::result_store::count_rows(dir.string()), 12u);
  EXPECT_EQ(runtime::result_store::load(dir.string()).size(), 12u);
}

// --------------------------------------------------------- status snapshot ----

TEST(campaign_status_snapshot, tracks_a_campaign_from_pending_to_completed) {
  const fs::path dir = fresh_dir("status_snapshot");
  const runtime::campaign_spec spec = synthetic_campaign();
  write_spec(spec, dir);

  service::campaign_status before =
      service::read_campaign_status(dir.string(), 0.0);
  EXPECT_EQ(before.name, "synthetic");
  EXPECT_EQ(before.total_jobs, 12u);
  EXPECT_EQ(before.journal_events, 0u);
  EXPECT_EQ(before.result_rows, 0u);
  EXPECT_EQ(before.counts.at("pending"), 12u);
  EXPECT_FALSE(before.all_completed());
  ASSERT_EQ(before.jobs.size(), 12u);
  EXPECT_FALSE(before.jobs[0].name.empty());  // names come from expansion

  std::atomic<std::size_t> executed{0};
  runtime::scheduler_options options;
  options.campaign_dir = dir.string();
  options.write_artifacts = false;
  options.executor = counting_executor(executed);
  runtime::scheduler(spec, options).run();

  const service::campaign_status after =
      service::read_campaign_status(dir.string(), 0.0);
  EXPECT_EQ(after.counts.at("completed"), 12u);
  EXPECT_EQ(after.result_rows, 12u);
  EXPECT_TRUE(after.all_completed());
  EXPECT_TRUE(after.settled());
  EXPECT_GT(after.journal_events, 0u);

  // Both renderings carry the summary; the compact JSON omits per-job rows.
  const io::json_value summary = after.to_json(false);
  EXPECT_EQ(summary.find("jobs"), nullptr);
  EXPECT_EQ(summary.at("result_rows").as_number(), 12.0);
  const io::json_value full = after.to_json(true);
  EXPECT_EQ(full.at("jobs").size(), 12u);
  const std::string text = after.render_text();
  EXPECT_NE(text.find("Campaign 'synthetic'"), std::string::npos);
  EXPECT_NE(text.find("12 completed"), std::string::npos);
}

// ---------------------------------------------------------------- registry ----

TEST(registry, assigns_sequential_ids_and_rescans_after_restart) {
  const fs::path data = fresh_dir("registry_rescan");
  const runtime::campaign_spec spec = synthetic_campaign();
  {
    service::campaign_registry registry({data.string(), 8});
    const service::campaign_record a = registry.submit("alice", spec, 1.0);
    const service::campaign_record b = registry.submit("alice", spec, 2.0);
    EXPECT_EQ(a.id, "c0001");
    EXPECT_EQ(b.id, "c0002");
    EXPECT_EQ(a.state, "queued");
    EXPECT_EQ(a.total_jobs, 12u);
    EXPECT_TRUE(fs::exists(runtime::campaign_spec_path(a.dir)));
    registry.set_state("alice", a.id, "done", 3.0);

    // Ids are per registry, not per tenant — and scoped lookups miss across
    // tenants.
    EXPECT_FALSE(registry.find("bob", a.id).has_value());
    EXPECT_TRUE(registry.find("alice", a.id).has_value());
    EXPECT_TRUE(registry.known_tenant("alice"));
    EXPECT_FALSE(registry.known_tenant("bob"));
  }
  // A new process rescans the manifest: same records, same next id.
  service::campaign_registry reopened({data.string(), 8});
  const std::vector<service::campaign_record> all = reopened.all();
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0].id, "c0001");
  EXPECT_EQ(all[0].state, "done");  // latest manifest record wins
  EXPECT_EQ(all[1].state, "queued");
  EXPECT_EQ(reopened.submit("alice", spec, 4.0).id, "c0003");
  ASSERT_TRUE(reopened.oldest_queued().has_value());
  EXPECT_EQ(reopened.oldest_queued()->id, "c0002");
}

TEST(registry, enforces_quota_and_tenant_validation) {
  const fs::path data = fresh_dir("registry_quota");
  service::campaign_registry registry({data.string(), 2});
  const runtime::campaign_spec spec = synthetic_campaign();

  registry.submit("alice", spec, 1.0);
  const service::campaign_record second = registry.submit("alice", spec, 2.0);
  expect_throw_with<service::quota_error>(
      [&] { registry.submit("alice", spec, 3.0); }, "quota");
  // Other tenants have their own bucket; a terminal campaign frees a slot.
  registry.submit("bob", spec, 4.0);
  registry.set_state("alice", second.id, "cancelled", 5.0);
  EXPECT_EQ(registry.active_count("alice"), 1u);
  registry.submit("alice", spec, 6.0);

  for (const std::string& bad :
       {std::string("Alice"), std::string(""), std::string("a b"),
        std::string(33, 'a')}) {
    EXPECT_FALSE(service::valid_tenant(bad));
    expect_throw_with<bad_argument>([&] { registry.submit(bad, spec, 7.0); },
                                    "tenant");
  }
  expect_throw_with<bad_argument>(
      [&] { registry.set_state("alice", "c9999", "done", 8.0); }, "c9999");
}

TEST(registry, rescan_names_a_corrupt_manifest_id_instead_of_aborting_blind) {
  const fs::path data = fresh_dir("registry_bad_id");
  {  // a valid manifest first, so the failure is clearly about the bad record
    service::campaign_registry registry({data.string(), 8});
    registry.submit("alice", synthetic_campaign(), 1.0);
  }
  io::json_value record = io::json_value::object();
  record["id"] = "zzz9";  // not 'c<digits>': corrupt or foreign
  record["tenant"] = "alice";
  record["name"] = "synthetic";
  record["state"] = "queued";
  record["dir"] = (data / "alice" / "zzz9").string();
  record["total_jobs"] = 12;
  record["submitted_at"] = 2.0;
  record["updated_at"] = 2.0;
  std::ofstream(data / "registry.jsonl", std::ios::app) << record.dump(-1) << "\n";

  expect_throw_with<io_error>(
      [&] { service::campaign_registry reopened({data.string(), 8}); }, "zzz9");
  expect_throw_with<io_error>(
      [&] { service::campaign_registry reopened({data.string(), 8}); },
      "registry.jsonl");
}

// ---------------------------------------------------------------- service ----

service::service_options fast_options(const fs::path& data,
                                      std::atomic<std::size_t>& executed,
                                      bool slow = false) {
  service::service_options options;
  options.data_dir = data.string();
  options.runners = 2;
  options.poll_interval = 0.01;
  options.write_artifacts = false;
  options.executor = slow ? slow_executor(executed) : counting_executor(executed);
  return options;
}

TEST(campaign_service, runs_a_submitted_campaign_to_done) {
  const fs::path data = fresh_dir("service_done");
  std::atomic<std::size_t> executed{0};
  service::campaign_service service(fast_options(data, executed));
  service.start();

  const service::campaign_record record =
      service.submit("alice", synthetic_campaign());
  EXPECT_EQ(record.id, "c0001");
  ASSERT_TRUE(wait_until([&] {
    return service.registry().find("alice", record.id)->state == "done";
  })) << "campaign never finished";
  EXPECT_EQ(executed.load(), 12u);

  const service::campaign_status status = service.status("alice", record.id, true);
  EXPECT_TRUE(status.all_completed());
  EXPECT_EQ(status.service_state, "done");
  EXPECT_EQ(status.result_rows, 12u);
  EXPECT_EQ(status.jobs.size(), 12u);
  // include_jobs = false keeps the summary but drops the per-job vector.
  EXPECT_TRUE(service.status("alice", record.id, false).jobs.empty());

  const io::json_value report = service.report_json("alice", record.id);
  EXPECT_EQ(report.at("rows_stored").as_number(), 12.0);
  EXPECT_EQ(report.at("rows").size(), 12u);
  EXPECT_NE(service.report_text("alice", record.id).find("12/12"),
            std::string::npos);

  // The event stream pages by byte cursor and drains exactly once.
  service::event_page page = service.events("alice", record.id, 0, 0.0);
  EXPECT_FALSE(page.lines.empty());
  for (const std::string& line : page.lines)
    EXPECT_NO_THROW(io::json_value::parse(line)) << line;
  const std::streamoff cursor = page.next_cursor;
  EXPECT_GT(cursor, 0);
  page = service.events("alice", record.id, cursor, 0.0);
  EXPECT_TRUE(page.lines.empty());
  EXPECT_EQ(page.next_cursor, cursor);

  const service::service_metrics metrics = service.metrics();
  EXPECT_EQ(metrics.campaigns_done, 1u);
  EXPECT_EQ(metrics.jobs_completed, 12u);
  EXPECT_GT(metrics.jobs_per_second(), 0.0);

  service.stop();
}

TEST(campaign_service, user_cancel_interrupts_a_running_campaign) {
  const fs::path data = fresh_dir("service_cancel_running");
  std::atomic<std::size_t> executed{0};
  service::campaign_service service(fast_options(data, executed, /*slow=*/true));
  service.start();

  const service::campaign_record record =
      service.submit("alice", synthetic_campaign());
  ASSERT_TRUE(wait_until([&] {
    return service.registry().find("alice", record.id)->state == "running";
  }));
  service.cancel("alice", record.id);
  ASSERT_TRUE(wait_until([&] {
    return service.registry().find("alice", record.id)->state == "cancelled";
  })) << "cancel never landed";
  EXPECT_EQ(service.registry().find("alice", record.id)->detail,
            "cancelled by request");

  // Cancelling a terminal campaign is a conflict, not a no-op.
  try {
    service.cancel("alice", record.id);
    FAIL() << "expected 409";
  } catch (const net::http_error& e) {
    EXPECT_EQ(e.status(), 409);
  }
  service.stop();
}

TEST(campaign_service, cancel_before_any_runner_claims_it) {
  const fs::path data = fresh_dir("service_cancel_queued");
  std::atomic<std::size_t> executed{0};
  // Never started: the campaign stays queued, cancel() must settle it alone.
  service::campaign_service service(fast_options(data, executed));
  const service::campaign_record record =
      service.submit("alice", synthetic_campaign());
  EXPECT_EQ(service.cancel("alice", record.id).state, "cancelled");
  EXPECT_EQ(executed.load(), 0u);
}

TEST(campaign_service, shutdown_requeues_and_a_restart_finishes_the_job) {
  const fs::path data = fresh_dir("service_requeue");
  std::atomic<std::size_t> executed{0};
  std::string id;
  {
    service::campaign_service service(fast_options(data, executed, /*slow=*/true));
    service.start();
    id = service.submit("alice", synthetic_campaign()).id;
    ASSERT_TRUE(wait_until([&] {
      return service.registry().find("alice", id)->state == "running";
    }));
    service.stop();
    // Shutdown is not an outcome: the campaign goes back to the queue.
    EXPECT_EQ(service.registry().find("alice", id)->state, "queued");
  }
  // A new process picks the queued campaign up and finishes it; journal
  // replay skips whatever the first life already completed.
  std::atomic<std::size_t> finished{0};
  service::campaign_service revived(fast_options(data, finished));
  revived.start();
  ASSERT_TRUE(wait_until([&] {
    return revived.registry().find("alice", id)->state == "done";
  })) << "revived service never finished the campaign";
  EXPECT_EQ(revived.status("alice", id, false).result_rows, 12u);
  revived.stop();
}

TEST(campaign_service, a_campaign_that_throws_mid_run_fails_without_dangling_state) {
  const fs::path data = fresh_dir("service_run_throws");
  std::atomic<std::size_t> executed{0};
  service::campaign_service service(fast_options(data, executed));

  // Submit while stopped, then corrupt the journal: a malformed line with a
  // valid successor makes the replay fold inside scheduler.run() throw —
  // *after* run_campaign registered the stack-local scheduler in active_.
  // The unwind must unregister it, or cancel()/stop() below would call into
  // a dead stack frame (the ASan job proves the absence of that UAF).
  const service::campaign_record record =
      service.submit("alice", synthetic_campaign());
  std::ofstream(runtime::journal_path(record.dir), std::ios::app)
      << "{broken\n"
      << R"({"job":0,"name":"j","state":"running","attempt":1})" << "\n";

  service.start();
  ASSERT_TRUE(wait_until([&] {
    return service.registry().find("alice", record.id)->state == "failed";
  })) << "corrupt campaign never failed";
  EXPECT_EQ(executed.load(), 0u);
  // The unwind unregistered the scheduler: nothing dangles in active_.
  EXPECT_EQ(service.active_runs(), 0u);

  // The registration is gone: cancel sees a terminal campaign (409), it does
  // not reach into a freed scheduler.
  try {
    service.cancel("alice", record.id);
    FAIL() << "expected 409";
  } catch (const net::http_error& e) {
    EXPECT_EQ(e.status(), 409);
  }

  // The runner survived the throw and serves the next campaign.
  const service::campaign_record healthy =
      service.submit("alice", synthetic_campaign());
  ASSERT_TRUE(wait_until([&] {
    return service.registry().find("alice", healthy.id)->state == "done";
  })) << "runner did not survive the failed campaign";
  service.stop();
}

TEST(campaign_service, drain_releases_event_long_polls_promptly) {
  const fs::path data = fresh_dir("service_drain");
  std::atomic<std::size_t> executed{0};
  service::campaign_service service(fast_options(data, executed));
  // Never started: the campaign stays queued and non-terminal, so a long
  // poll would otherwise sleep out its whole deadline.
  const service::campaign_record record =
      service.submit("alice", synthetic_campaign());

  std::atomic<bool> returned{false};
  std::thread poller([&] {
    service.events("alice", record.id, 0, /*max_wait=*/30.0);
    returned.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(returned.load());  // the poll is parked, waiting for events

  const auto drained_at = std::chrono::steady_clock::now();
  service.drain();
  poller.join();
  const double waited =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - drained_at)
          .count();
  EXPECT_TRUE(returned.load());
  EXPECT_LT(waited, 5.0) << "drain() did not release the long-poll";
}

// ----------------------------------------------------------- control plane ----

/// Build a request the way the server's parser would deliver it.
net::http_request make_request(const std::string& method, const std::string& target,
                               const std::string& body = "",
                               const std::string& tenant = "") {
  net::http_request req;
  req.method = method;
  req.target = target;
  const std::size_t q = target.find('?');
  req.path = target.substr(0, q);
  if (q != std::string::npos) req.query = net::parse_query(target.substr(q + 1));
  req.body = body;
  if (!tenant.empty()) req.headers.emplace_back("X-Boson-Tenant", tenant);
  return req;
}

/// Invoke the handler with the transport's exception mapping (http_server
/// does exactly this), so tests assert on final statuses.
net::http_response answer(const net::http_handler& handler,
                          const net::http_request& req) {
  try {
    return handler(req);
  } catch (const net::http_error& e) {
    return net::error_response(e.status(), e.what());
  } catch (const bad_argument& e) {
    return net::error_response(400, e.what());
  } catch (const std::exception& e) {
    return net::error_response(500, e.what());
  }
}

TEST(control_plane, routes_actions_and_rejects_abuse_with_structured_errors) {
  const fs::path data = fresh_dir("control_plane");
  std::atomic<std::size_t> executed{0};
  service::service_options options = fast_options(data, executed);
  options.tenant_quota = 1;
  service::campaign_service service(options);  // not started: campaigns queue
  const net::http_handler handler = service.handler();

  EXPECT_EQ(answer(handler, make_request("GET", "/healthz")).status, 200);
  EXPECT_NE(answer(handler, make_request("GET", "/healthz")).body.find("ok"),
            std::string::npos);
  EXPECT_EQ(answer(handler, make_request("POST", "/healthz")).status, 405);
  EXPECT_EQ(answer(handler, make_request("GET", "/nope")).status, 404);

  const io::json_value metrics = io::json_value::parse(
      answer(handler, make_request("GET", "/v1/metrics")).body);
  EXPECT_NE(metrics.find("campaigns"), nullptr);
  EXPECT_NE(metrics.find("engine_cache"), nullptr);
  EXPECT_NE(metrics.find("nearby_reuse"), nullptr);
  EXPECT_GE(metrics.at("requests").as_number(), 1.0);

  // Malformed and invalid submissions: structured 4xx, nothing registered.
  EXPECT_EQ(answer(handler, make_request("POST", "/v1/campaigns", "{oops")).status,
            400);
  io::json_value invalid = synthetic_campaign().to_json();
  invalid["axes"]["devices"] = io::json_value::array();
  EXPECT_EQ(
      answer(handler, make_request("POST", "/v1/campaigns", invalid.dump(-1))).status,
      400);
  EXPECT_EQ(answer(handler, make_request("GET", "/v1/campaigns", "", "Bad Tenant"))
                .status,
            400);
  EXPECT_EQ(answer(handler, make_request("GET", "/v1/campaigns/c1", "", "ghost"))
                .status,
            404);
  EXPECT_TRUE(service.registry().all().empty());

  // A good submission; the listing is tenant-scoped.
  const std::string body = synthetic_campaign().to_json().dump(-1);
  const net::http_response created =
      answer(handler, make_request("POST", "/v1/campaigns", body, "alice"));
  ASSERT_EQ(created.status, 201);
  const std::string id = io::json_value::parse(created.body).at("id").as_string();
  EXPECT_EQ(io::json_value::parse(
                answer(handler, make_request("GET", "/v1/campaigns", "", "alice")).body)
                .at("campaigns")
                .size(),
            1u);

  // Quota: tenant 'alice' is full (quota 1, campaign still queued) -> 429.
  EXPECT_EQ(
      answer(handler, make_request("POST", "/v1/campaigns", body, "alice")).status,
      429);
  // Another tenant is unaffected.
  EXPECT_EQ(answer(handler, make_request("POST", "/v1/campaigns", body, "bob")).status,
            201);

  const std::string base = "/v1/campaigns/" + id;
  EXPECT_EQ(answer(handler, make_request("GET", base, "", "alice")).status, 200);
  EXPECT_EQ(io::json_value::parse(
                answer(handler, make_request("GET", base + "/jobs", "", "alice")).body)
                .at("jobs")
                .size(),
            12u);
  EXPECT_EQ(answer(handler, make_request("GET", base, "", "bob")).status, 404);
  // DELETE is a real method now, but only for terminal campaigns: a queued
  // one answers 409, and other verbs are still 405.
  EXPECT_EQ(answer(handler, make_request("DELETE", base, "", "alice")).status, 409);
  EXPECT_EQ(answer(handler, make_request("PUT", base, "", "alice")).status, 405);
  EXPECT_EQ(answer(handler, make_request("GET", base + "/frobnicate", "", "alice"))
                .status,
            404);
  // Query numbers parse strictly: a numeric *prefix* ("1.2.3" is 1.2 to a
  // bare stod) or a digitless dot must be a clean 400, not a silent accept.
  EXPECT_EQ(answer(handler,
                   make_request("GET", base + "/events?cursor=abc", "", "alice"))
                .status,
            400);
  EXPECT_EQ(answer(handler,
                   make_request("GET", base + "/events?cursor=1.2.3", "", "alice"))
                .status,
            400);
  EXPECT_EQ(answer(handler,
                   make_request("GET", base + "/events?wait=.", "", "alice"))
                .status,
            400);
  EXPECT_EQ(answer(handler,
                   make_request("GET", base + "/report?format=xml", "", "alice"))
                .status,
            400);
  EXPECT_EQ(answer(handler, make_request("GET", base + "/report?format=text", "",
                                         "alice"))
                .content_type,
            "text/plain; charset=utf-8");

  // Events of a queued campaign: no journal yet, cursor parked at zero.
  const net::http_response events =
      answer(handler, make_request("GET", base + "/events", "", "alice"));
  EXPECT_EQ(events.status, 200);
  EXPECT_TRUE(events.chunked);
  ASSERT_NE(events.header("X-Boson-Cursor"), nullptr);
  EXPECT_EQ(*events.header("X-Boson-Cursor"), "0");

  EXPECT_EQ(answer(handler, make_request("POST", base + "/cancel", "", "alice"))
                .status,
            200);
  EXPECT_EQ(answer(handler, make_request("POST", base + "/cancel", "", "alice"))
                .status,
            409);

  // Every error above came back as the uniform envelope.
  const net::http_response not_found = answer(handler, make_request("GET", "/nope"));
  EXPECT_NE(not_found.body.find("{\"error\":{\"status\":404"), std::string::npos);
}

TEST(control_plane, prometheus_exposition_serves_request_series) {
  const fs::path data = fresh_dir("control_plane_prometheus");
  std::atomic<std::size_t> executed{0};
  service::campaign_service service(fast_options(data, executed));
  const net::http_handler handler = service.handler();

  // Traffic across endpoints and status classes, including 4xx abuse.
  EXPECT_EQ(answer(handler, make_request("GET", "/healthz")).status, 200);
  EXPECT_EQ(answer(handler, make_request("GET", "/nope")).status, 404);
  EXPECT_EQ(answer(handler, make_request("GET", "/v1/metrics?format=xml")).status,
            400);

  const net::http_response res =
      answer(handler, make_request("GET", "/v1/metrics?format=prometheus"));
  ASSERT_EQ(res.status, 200);
  EXPECT_NE(res.content_type.find("text/plain"), std::string::npos);

  // Per-endpoint x status-class counters and the latency histogram series.
  EXPECT_NE(res.body.find("# TYPE boson_http_requests_total counter"),
            std::string::npos);
  EXPECT_NE(res.body.find(
                "boson_http_requests_total{endpoint=\"healthz\",class=\"2xx\"}"),
            std::string::npos);
  EXPECT_NE(
      res.body.find("boson_http_requests_total{endpoint=\"unknown\",class=\"4xx\"}"),
      std::string::npos);
  EXPECT_NE(res.body.find("# TYPE boson_http_request_seconds histogram"),
            std::string::npos);
  EXPECT_NE(res.body.find("boson_http_request_seconds_bucket{endpoint=\"healthz\","),
            std::string::npos);

  // The migrated sim counters and the service gauges ride the same page.
  EXPECT_NE(res.body.find("boson_sim_engine_cache_hits"), std::string::npos);
  EXPECT_NE(res.body.find("boson_sim_reuse_prepares_avoided"), std::string::npos);
  EXPECT_NE(res.body.find("# TYPE boson_service_campaigns_running gauge"),
            std::string::npos);

  // The JSON total agrees with the labeled counters (>= the four requests
  // routed above; other tests in this process may add more).
  const io::json_value metrics = io::json_value::parse(
      answer(handler, make_request("GET", "/v1/metrics")).body);
  EXPECT_GE(metrics.at("requests").as_number(), 4.0);
}

TEST(control_plane, eight_concurrent_tenants_submit_and_watch_over_loopback) {
  const fs::path data = fresh_dir("control_plane_loopback");
  std::atomic<std::size_t> executed{0};
  service::campaign_service service(fast_options(data, executed));
  service.start();

  net::http_server_options server_options;
  server_options.threads = 8;
  net::http_server server(server_options, service.handler());
  server.start();

  const std::string body = synthetic_campaign().to_json().dump(-1);
  std::vector<std::thread> clients;
  std::atomic<std::size_t> finished{0};
  for (int t = 0; t < 8; ++t) {
    clients.emplace_back([&, t] {
      const std::string tenant = "tenant" + std::to_string(t);
      net::http_client client(server.base_url());
      const net::http_response created =
          client.post("/v1/campaigns", body, {{"X-Boson-Tenant", tenant}});
      if (created.status != 201) return;
      const std::string id =
          io::json_value::parse(created.body).at("id").as_string();
      const bool done = wait_until([&] {
        const net::http_response res = client.get("/v1/campaigns/" + id, {
            {"X-Boson-Tenant", tenant}});
        return res.status == 200 &&
               io::json_value::parse(res.body).at("state").as_string() == "done";
      });
      if (done) ++finished;
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(finished.load(), 8u) << "not every tenant's campaign completed";
  EXPECT_EQ(executed.load(), 8u * 12u);

  const net::http_response metrics =
      net::http_client(server.base_url()).get("/v1/metrics");
  EXPECT_EQ(io::json_value::parse(metrics.body)
                .at("campaigns")
                .at("done")
                .as_number(),
            8.0);

  server.stop();
  service.stop();
}

// ------------------------------------------- auth, retention, store layout ---

net::http_request with_header(net::http_request req, const std::string& name,
                              const std::string& value) {
  req.headers.emplace_back(name, value);
  return req;
}

TEST(control_plane, bearer_tokens_gate_the_campaign_routes) {
  const fs::path data = fresh_dir("control_plane_auth");
  std::ofstream(data / "tenants.json")
      << R"({"alice": "secret-a", "bob": "secret-b"})";
  std::atomic<std::size_t> executed{0};
  service::campaign_service service(fast_options(data, executed));  // not started
  const net::http_handler handler = service.handler();

  const std::string body = synthetic_campaign().to_json().dump(-1);
  const auto submit = [&](const net::http_request& req) {
    return answer(handler, req).status;
  };

  // No credentials / the legacy header alone / garbage — all 401. The
  // tenant header cannot stand in for the token once tokens exist.
  EXPECT_EQ(submit(make_request("POST", "/v1/campaigns", body)), 401);
  EXPECT_EQ(submit(make_request("POST", "/v1/campaigns", body, "alice")), 401);
  EXPECT_EQ(submit(with_header(make_request("POST", "/v1/campaigns", body),
                               "Authorization", "Token secret-a")),
            401);
  EXPECT_EQ(submit(with_header(make_request("POST", "/v1/campaigns", body),
                               "Authorization", "Bearer wrong")),
            401);

  // The right token resolves the tenant without any header.
  const net::http_response created =
      answer(handler, with_header(make_request("POST", "/v1/campaigns", body),
                                  "Authorization", "Bearer secret-a"));
  ASSERT_EQ(created.status, 201);
  const std::string id = io::json_value::parse(created.body).at("id").as_string();

  // Tenancy still isolates: bob's token cannot see alice's campaign, and a
  // tenant header that contradicts the token is a 401, not a crossover.
  EXPECT_EQ(submit(with_header(make_request("GET", "/v1/campaigns/" + id),
                               "Authorization", "Bearer secret-b")),
            404);
  EXPECT_EQ(submit(with_header(make_request("GET", "/v1/campaigns/" + id, "", "bob"),
                               "Authorization", "Bearer secret-a")),
            401);
  EXPECT_EQ(submit(with_header(make_request("GET", "/v1/campaigns/" + id, "", "alice"),
                               "Authorization", "Bearer secret-a")),
            200);

  // Unauthenticated infrastructure routes stay open.
  EXPECT_EQ(answer(handler, make_request("GET", "/healthz")).status, 200);
}

TEST(campaign_service, delete_removes_a_terminal_campaign_durably) {
  const fs::path data = fresh_dir("service_delete");
  std::atomic<std::size_t> executed{0};
  std::string id;
  {
    service::campaign_service service(fast_options(data, executed));
    service.start();
    const service::campaign_record record =
        service.submit("alice", synthetic_campaign());
    id = record.id;
    ASSERT_TRUE(wait_until([&] {
      return service.registry().find("alice", id)->state == "done";
    })) << "campaign never finished";
    const net::http_handler handler = service.handler();

    EXPECT_EQ(answer(handler, make_request("DELETE", "/v1/campaigns/nope", "",
                                           "alice"))
                  .status,
              404);
    const net::http_response deleted = answer(
        handler, make_request("DELETE", "/v1/campaigns/" + id, "", "alice"));
    EXPECT_EQ(deleted.status, 200);
    EXPECT_EQ(io::json_value::parse(deleted.body).at("state").as_string(),
              "deleted");

    // Gone from every read path, and from disk.
    EXPECT_EQ(
        answer(handler, make_request("GET", "/v1/campaigns/" + id, "", "alice"))
            .status,
        404);
    EXPECT_TRUE(service.list("alice").empty());
    EXPECT_FALSE(fs::exists(data / "alice" / id));
    service.stop();
  }

  // The tombstone survives a restart: the campaign stays gone and its id is
  // never reissued.
  service::campaign_service restarted(fast_options(data, executed));
  EXPECT_TRUE(restarted.list("alice").empty());
  const service::campaign_record next =
      restarted.submit("alice", synthetic_campaign());
  EXPECT_EQ(next.id, "c0002");
}

TEST(campaign_service, segmented_journal_campaign_completes_and_pages_events) {
  const fs::path data = fresh_dir("service_segmented");
  std::atomic<std::size_t> executed{0};
  service::service_options options = fast_options(data, executed);
  options.segment_records = 8;   // force several rotations across 12 jobs
  options.compact_segments = 2;  // and at least one compaction opportunity
  options.event_page_lines = 5;  // exercise the page cap
  service::campaign_service service(options);
  service.start();

  const service::campaign_record record =
      service.submit("alice", synthetic_campaign());
  ASSERT_TRUE(wait_until([&] {
    return service.registry().find("alice", record.id)->state == "done";
  })) << "campaign never finished";
  EXPECT_EQ(executed.load(), 12u);

  // The journal landed as a store directory.
  EXPECT_TRUE(fs::is_directory(data / "alice" / record.id / "journal"));

  // Event pages respect the cap and the cursor walks the chain without
  // gaps or duplicates.
  std::vector<std::string> lines;
  std::streamoff cursor = 0;
  while (true) {
    const service::event_page page = service.events("alice", record.id, cursor, 0.0);
    EXPECT_LE(page.lines.size(), 5u);
    if (page.lines.empty()) break;
    for (const std::string& line : page.lines) lines.push_back(line);
    cursor = page.next_cursor;
  }
  EXPECT_GE(lines.size(), 12u);
  std::size_t completed = 0;
  for (const std::string& line : lines) {
    const io::json_value v = io::json_value::parse(line);
    if (v.at("state").as_string() == "completed") ++completed;
  }
  EXPECT_EQ(completed, 12u);
  service.stop();
}

/// Fork a child running `fn`; the child never returns into gtest.
template <class Fn>
pid_t fork_child(Fn&& fn) {
  const pid_t pid = ::fork();
  if (pid == 0) {
    fn();
    std::_Exit(0);
  }
  return pid;
}

TEST(registry, concurrent_submitters_in_separate_processes_mint_unique_ids) {
  const fs::path data = fresh_dir("registry_race");
  constexpr int kChildren = 4;
  constexpr int kEach = 3;

  std::vector<pid_t> pids;
  for (int c = 0; c < kChildren; ++c) {
    pids.push_back(fork_child([&] {
      service::campaign_registry registry({data.string(), 64});
      for (int i = 0; i < kEach; ++i)
        registry.submit("alice", synthetic_campaign(), 1.0);
    }));
  }
  for (const pid_t pid : pids) {
    int status = 0;
    ::waitpid(pid, &status, 0);
    ASSERT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0)
        << "a submitting child did not exit cleanly";
  }

  // Every submit across every process got its own id and its own record —
  // the exclusive-lock section serialized the mints on the shared ledger.
  service::campaign_registry registry({data.string(), 64});
  const auto records = registry.list("alice");
  ASSERT_EQ(records.size(), static_cast<std::size_t>(kChildren * kEach));
  std::set<std::string> ids;
  for (const auto& r : records) ids.insert(r.id);
  EXPECT_EQ(ids.size(), records.size());
}

}  // namespace
}  // namespace boson
