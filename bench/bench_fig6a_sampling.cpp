// Fig. 6(a) of the paper: comparison of variation-sampling strategies for
// robust optimization of the optical isolator.
//
// Strategies: axial + worst-case (BOSON-1), axial + random (cost-matched),
// nominal-only, double-sided axial, single-sided axial, exhaustive corner
// sweeping. The bar value is the average post-fabrication contrast over the
// Monte-Carlo evaluation (lower is better). Expected shape: axial + worst
// wins; nominal-only and single-sided axial degrade; exhaustive sweeping is
// not better than the adaptive scheme despite its O(3^N) cost.

#include "bench_common.h"
#include "core/run.h"

int main() {
  using namespace boson;

  const stopwatch total;
  core::experiment_config cfg = core::default_config();

  bench::print_banner("Fig. 6(a): sampling strategies vs average contrast");

  const std::vector<std::pair<robust::sampling_strategy, const char*>> strategies{
      {robust::sampling_strategy::axial_plus_worst, "Axial + worst case"},
      {robust::sampling_strategy::axial_plus_random, "Axial + random"},
      {robust::sampling_strategy::nominal_only, "Nominal only"},
      {robust::sampling_strategy::axial_double, "Double-sided axial"},
      {robust::sampling_strategy::axial_single, "Single-sided axial"},
      {robust::sampling_strategy::exhaustive, "Corner sweeping"},
  };

  io::csv_writer csv("fig6a_sampling.csv",
                     {"strategy", "corners_per_iter", "avg_contrast", "contrast_std",
                      "fwd_mean", "bwd_mean"});
  io::console_table table(
      {"strategy", "corners/iter", "avg contrast (lower better)", "fwd T", "bwd T"});

  for (const auto& [strategy, label] : strategies) {
    const dev::device_spec device = dev::make_isolator();
    core::design_problem problem = core::make_problem(device, true, cfg);

    core::run_options ro;
    ro.iterations = cfg.scaled_iterations();
    ro.learning_rate = cfg.learning_rate;
    ro.fab_aware = true;
    ro.dense_objectives = true;
    ro.relax_epochs = cfg.scaled_relax();
    ro.sampling = strategy;
    ro.seed = cfg.seed;

    const core::run_result res =
        core::run_inverse_design(problem, core::concentrated_init(problem), ro);
    const array2d<double> mask = core::binarize(res.design_rho);
    const core::mc_stats mc =
        core::postfab_monte_carlo(problem, mask, cfg.scaled_samples(), cfg.seed + 3);

    const robust::corner_sampler sampler(strategy, problem.fab().space);
    table.add_row({label, std::to_string(sampler.corners_per_iteration()),
                   io::console_table::sci(mc.fom_mean),
                   io::console_table::num(mc.metric_means.at("fwd_transmission"), 4),
                   io::console_table::num(mc.metric_means.at("bwd_transmission"), 5)});
    csv.write_row(label, {static_cast<double>(sampler.corners_per_iteration()), mc.fom_mean,
                          mc.fom_std, mc.metric_means.at("fwd_transmission"),
                          mc.metric_means.at("bwd_transmission")});
    std::printf("  %-22s done (%zu corners/iter, avg contrast %.4g)\n", label,
                sampler.corners_per_iteration(), mc.fom_mean);
  }

  std::printf("\n");
  table.print("Sampling strategies (post-fab Monte Carlo)");
  std::printf("raw rows: fig6a_sampling.csv\n");
  bench::print_runtime(total);
  return 0;
}
