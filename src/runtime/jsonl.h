/// \file jsonl.h
/// The one JSONL append mechanism both durability files (journal.jsonl,
/// results.jsonl) share: heal-on-open (a crash-torn trailing fragment is
/// truncated away so fresh appends cannot merge into it) and line-atomic
/// appends (each record rendered into a single write under a mutex, flushed
/// before returning) so concurrent shard processes interleave whole lines
/// only.

#pragma once

#include <cstddef>
#include <fstream>
#include <functional>
#include <mutex>
#include <string>

#include "io/json.h"

namespace boson::runtime {

/// Replay a JSONL file in order, invoking `on_record` with each parsed line.
/// Shared torn-tail contract of every runtime durability file: a malformed
/// line (JSON parse failure or an `error` thrown by `on_record`) is only
/// fatal when a well-formed record follows it — the torn tail a crash
/// mid-append (or a live reader racing a writer's flush) leaves behind is
/// ignored, while corruption anywhere else throws `io_error` naming the
/// line. A missing file replays to an empty history.
void replay_jsonl(const std::string& path, const std::string& label,
                  const std::function<void(const io::json_value& record)>& on_record);

/// Raw-line variant of `replay_jsonl` with the identical torn-tail contract,
/// for consumers that can extract what they need from the line text without
/// paying for a full parse (e.g. `result_store::count_rows`). Blank lines are
/// skipped; `on_line` sees each non-blank line without its newline and may
/// throw `error` to mark it malformed.
void replay_jsonl_lines(const std::string& path, const std::string& label,
                        const std::function<void(const std::string& line)>& on_line);

class jsonl_appender {
 public:
  /// Opens `path` for appending (creating it if needed), first dropping any
  /// torn trailing fragment a crash mid-append left behind. `label` names
  /// the owner in error messages ("journal", "result_store").
  jsonl_appender(std::string path, std::string label);

  /// Append one record as a compact JSON line; thread-safe and flushed, so a
  /// crash after `append` returns never loses the record.
  void append(const io::json_value& record);

  const std::string& path() const { return path_; }

 private:
  std::mutex mutex_;
  std::string path_;
  std::string label_;
  std::ofstream out_;
};

}  // namespace boson::runtime
