#include "api/spec.h"

#include <cmath>

#include "api/registry.h"
#include "common/error.h"
#include "common/text.h"
#include "sim/backend.h"

namespace boson::api {

eval_step eval_step::monte_carlo(std::size_t samples) {
  eval_step s;
  s.kind = step_kind::postfab_monte_carlo;
  s.samples = samples;
  return s;
}

eval_step eval_step::sweep(dvec wavelengths_um) {
  eval_step s;
  s.kind = step_kind::wavelength_sweep;
  s.wavelengths_um = std::move(wavelengths_um);
  return s;
}

eval_step eval_step::window(dvec defocus_um, dvec dose) {
  eval_step s;
  s.kind = step_kind::process_window;
  s.defocus_um = std::move(defocus_um);
  s.dose = std::move(dose);
  return s;
}

const char* to_string(eval_step::step_kind kind) {
  switch (kind) {
    case eval_step::step_kind::postfab_monte_carlo: return "postfab_monte_carlo";
    case eval_step::step_kind::wavelength_sweep: return "wavelength_sweep";
    case eval_step::step_kind::process_window: return "process_window";
  }
  return "?";
}

std::string experiment_spec::display_name() const {
  return name.empty() ? device + "_" + method : name;
}

// ------------------------------------------------------------- to_json -----

io::json_value experiment_spec::to_json() const {
  io::json_value v = io::json_value::object();
  v["name"] = display_name();
  v["device"] = device;
  v["method"] = method;
  if (recipe) v["recipe"] = recipe_to_json(*recipe);
  v["objective"] = objective;
  v["resolution"] = resolution;

  io::json_value& run = v["run"] = io::json_value::object();
  run["iterations"] = iterations;
  run["relax_epochs"] = relax_epochs;
  run["learning_rate"] = learning_rate;
  run["seed"] = static_cast<double>(seed);
  run["backend"] = backend;
  run["use_operator_cache"] = use_operator_cache;
  run["record_trajectory"] = record_trajectory;

  // litho.pixel is intentionally absent: the fabrication context derives the
  // mask pixel pitch from the device grid (i.e. `resolution`).
  io::json_value& li = v["litho"] = io::json_value::object();
  li["wavelength"] = litho.wavelength;
  li["na"] = litho.na;
  li["sigma"] = litho.sigma;
  li["kernel_half"] = litho.kernel_half;
  li["max_kernels"] = litho.max_kernels;
  li["energy_capture"] = litho.energy_capture;
  li["corner_defocus"] = litho.corner_defocus;

  io::json_value& eo = v["eole"] = io::json_value::object();
  eo["anchors_x"] = eole.anchors_x;
  eo["anchors_y"] = eole.anchors_y;
  eo["num_terms"] = eole.num_terms;
  eo["corr_length"] = eole.corr_length;
  eo["sigma"] = eole.sigma;
  eo["eta0"] = eole.eta0;

  io::json_value& plan = v["evaluation"] = io::json_value::array();
  for (const auto& step : evaluation) {
    io::json_value s = io::json_value::object();
    s["type"] = to_string(step.kind);
    switch (step.kind) {
      case eval_step::step_kind::postfab_monte_carlo:
        s["samples"] = step.samples;
        break;
      case eval_step::step_kind::wavelength_sweep: {
        io::json_value& w = s["wavelengths_um"] = io::json_value::array();
        for (const double x : step.wavelengths_um) w.push_back(x);
        break;
      }
      case eval_step::step_kind::process_window: {
        io::json_value& d = s["defocus_um"] = io::json_value::array();
        for (const double x : step.defocus_um) d.push_back(x);
        io::json_value& o = s["dose"] = io::json_value::array();
        for (const double x : step.dose) o.push_back(x);
        break;
      }
    }
    plan.push_back(std::move(s));
  }
  return v;
}

// ----------------------------------------------------------- from_json -----

namespace {

[[noreturn]] void spec_fail(const std::string& message) {
  throw bad_argument("experiment_spec: " + message);
}

double read_number(const io::json_value& v, const std::string& path) {
  if (!v.is_number()) spec_fail("'" + path + "' must be a number, got " + v.kind_name());
  return v.as_number();
}

std::size_t read_count(const io::json_value& v, const std::string& path) {
  const double d = read_number(v, path);
  if (d < 0.0 || d != std::floor(d))
    spec_fail("'" + path + "' must be a non-negative integer, got " +
              io::json_value(d).dump(-1));
  // JSON numbers are doubles: integers above 2^53 would silently round and
  // break seed reproducibility.
  if (d > 9007199254740992.0)
    spec_fail("'" + path + "' exceeds 2^53 (not exactly representable in JSON)");
  return static_cast<std::size_t>(d);
}

bool read_bool(const io::json_value& v, const std::string& path) {
  if (!v.is_bool()) spec_fail("'" + path + "' must be a boolean, got " + v.kind_name());
  return v.as_bool();
}

std::string read_string(const io::json_value& v, const std::string& path) {
  if (!v.is_string()) spec_fail("'" + path + "' must be a string, got " + v.kind_name());
  return v.as_string();
}

dvec read_number_array(const io::json_value& v, const std::string& path) {
  if (!v.is_array()) spec_fail("'" + path + "' must be an array, got " + v.kind_name());
  dvec out;
  out.reserve(v.size());
  for (std::size_t i = 0; i < v.elements().size(); ++i)
    out.push_back(read_number(v.elements()[i], path + "[" + std::to_string(i) + "]"));
  return out;
}

const io::json_value& expect_object(const io::json_value& v, const std::string& path) {
  if (!v.is_object()) spec_fail("'" + path + "' must be an object, got " + v.kind_name());
  return v;
}

eval_step step_from_json(const io::json_value& v, const std::string& path) {
  expect_object(v, path);
  const io::json_value* type = v.find("type");
  if (type == nullptr) spec_fail("'" + path + "' is missing the 'type' key");
  const std::string type_name = read_string(*type, path + ".type");

  eval_step step;
  if (type_name == "postfab_monte_carlo") {
    step = eval_step::monte_carlo(20);
  } else if (type_name == "wavelength_sweep") {
    step.kind = eval_step::step_kind::wavelength_sweep;
  } else if (type_name == "process_window") {
    step.kind = eval_step::step_kind::process_window;
  } else {
    spec_fail("'" + path + ".type' must be one of postfab_monte_carlo, " +
              "wavelength_sweep, process_window (got '" + type_name + "')");
  }

  for (const auto& [key, value] : v.members()) {
    const std::string key_path = path + "." + key;
    if (key == "type") continue;
    if (step.kind == eval_step::step_kind::postfab_monte_carlo && key == "samples")
      step.samples = read_count(value, key_path);
    else if (step.kind == eval_step::step_kind::wavelength_sweep && key == "wavelengths_um")
      step.wavelengths_um = read_number_array(value, key_path);
    else if (step.kind == eval_step::step_kind::process_window && key == "defocus_um")
      step.defocus_um = read_number_array(value, key_path);
    else if (step.kind == eval_step::step_kind::process_window && key == "dose")
      step.dose = read_number_array(value, key_path);
    else
      spec_fail("unknown key '" + key + "' in " + path + " (a " + type_name + " step)");
  }
  return step;
}

}  // namespace

// -------------------------------------------------------------- recipes ----

io::json_value recipe_to_json(const core::method_recipe& recipe) {
  io::json_value v = io::json_value::object();
  v["label"] = recipe.label;
  v["parameterization"] = recipe.parameterization;
  if (recipe.density_blur_mfs)
    v["density_blur"] = "mfs";
  else
    v["density_blur"] = recipe.density_blur_cells;
  v["mfs_blur"] = recipe.mfs_blur;
  v["corners"] = recipe.corners;
  v["ed_radius_cells"] = recipe.ed_radius_cells;
  v["relaxation"] = recipe.relaxation;
  v["reshaping"] = recipe.reshaping;
  v["tv_weight"] = recipe.tv_weight;
  v["initialization"] = recipe.initialization;
  v["mask_correction"] = recipe.mask_correction;
  v["beta_schedule"] = recipe.beta_schedule;
  v["beta_start"] = recipe.beta_start;
  v["beta_end"] = recipe.beta_end;
  if (recipe.iterations > 0) v["iterations"] = recipe.iterations;
  if (recipe.learning_rate > 0.0) v["learning_rate"] = recipe.learning_rate;
  if (!recipe.objective_override.empty())
    v["objective_override"] = recipe.objective_override;
  return v;
}

namespace {

/// Every key `recipe_from_json` dispatches on, in schema order — the single
/// source for its unknown-key suggestions. A key added to the dispatch chain
/// must be added here (the unit tests exercise suggestions against it).
const std::vector<std::string> kRecipeKeys = {
    "label",          "parameterization", "density_blur",  "mfs_blur",
    "corners",        "ed_radius_cells",  "relaxation",    "reshaping",
    "tv_weight",      "initialization",   "mask_correction", "beta_schedule",
    "beta_start",     "beta_end",         "iterations",    "learning_rate",
    "objective_override"};

}  // namespace

core::method_recipe recipe_from_json(const io::json_value& v, const std::string& path) {
  expect_object(v, path);
  core::method_recipe recipe;
  for (const auto& [key, value] : v.members()) {
    const std::string key_path = path + "." + key;
    if (key == "label") recipe.label = read_string(value, key_path);
    else if (key == "parameterization") recipe.parameterization = read_string(value, key_path);
    else if (key == "density_blur") {
      // "mfs" resolves to the ~80 nm blur radius at run time; a number is a
      // fixed radius in design cells.
      if (value.is_string()) {
        if (value.as_string() != "mfs")
          spec_fail("'" + key_path + "' must be \"mfs\" or a cell radius, got '" +
                    value.as_string() + "'");
        recipe.density_blur_mfs = true;
        recipe.density_blur_cells = 0.0;
      } else {
        recipe.density_blur_mfs = false;
        recipe.density_blur_cells = read_number(value, key_path);
      }
    }
    else if (key == "mfs_blur") recipe.mfs_blur = read_bool(value, key_path);
    else if (key == "corners") recipe.corners = read_string(value, key_path);
    else if (key == "ed_radius_cells") recipe.ed_radius_cells = read_number(value, key_path);
    else if (key == "relaxation") recipe.relaxation = read_string(value, key_path);
    else if (key == "reshaping") recipe.reshaping = read_string(value, key_path);
    else if (key == "tv_weight") recipe.tv_weight = read_number(value, key_path);
    else if (key == "initialization") recipe.initialization = read_string(value, key_path);
    else if (key == "mask_correction") recipe.mask_correction = read_string(value, key_path);
    else if (key == "beta_schedule") recipe.beta_schedule = read_string(value, key_path);
    else if (key == "beta_start") recipe.beta_start = read_number(value, key_path);
    else if (key == "beta_end") recipe.beta_end = read_number(value, key_path);
    else if (key == "iterations") recipe.iterations = read_count(value, key_path);
    else if (key == "learning_rate") recipe.learning_rate = read_number(value, key_path);
    else if (key == "objective_override")
      recipe.objective_override = read_string(value, key_path);
    else
      spec_fail("unknown key '" + key + "' in " + path + did_you_mean(key, kRecipeKeys));
  }
  try {
    core::validate_recipe(recipe);
  } catch (const bad_argument& e) {
    throw bad_argument("experiment_spec: '" + path + "': " + e.what());
  }
  return recipe;
}

core::method_recipe resolved_recipe(const experiment_spec& spec) {
  if (spec.recipe) return *spec.recipe;
  return registry::global().method(spec.method);
}

experiment_spec experiment_spec::from_json(const io::json_value& v) {
  expect_object(v, "spec");
  experiment_spec spec;
  bool saw_method = false;

  for (const auto& [key, value] : v.members()) {
    if (key == "name") spec.name = read_string(value, "name");
    else if (key == "device") spec.device = read_string(value, "device");
    else if (key == "method") {
      spec.method = read_string(value, "method");
      saw_method = true;
    }
    else if (key == "recipe") spec.recipe = recipe_from_json(value, "recipe");
    else if (key == "objective") spec.objective = read_string(value, "objective");
    else if (key == "resolution") spec.resolution = read_number(value, "resolution");
    else if (key == "run") {
      expect_object(value, "run");
      for (const auto& [rk, rv] : value.members()) {
        const std::string path = "run." + rk;
        if (rk == "iterations") spec.iterations = read_count(rv, path);
        else if (rk == "relax_epochs") spec.relax_epochs = read_count(rv, path);
        else if (rk == "learning_rate") spec.learning_rate = read_number(rv, path);
        else if (rk == "seed") spec.seed = static_cast<std::uint64_t>(read_count(rv, path));
        else if (rk == "backend") spec.backend = read_string(rv, path);
        else if (rk == "use_operator_cache") spec.use_operator_cache = read_bool(rv, path);
        else if (rk == "record_trajectory") spec.record_trajectory = read_bool(rv, path);
        else spec_fail("unknown key '" + rk + "' in run");
      }
    } else if (key == "litho") {
      expect_object(value, "litho");
      for (const auto& [lk, lv] : value.members()) {
        const std::string path = "litho." + lk;
        if (lk == "wavelength") spec.litho.wavelength = read_number(lv, path);
        else if (lk == "na") spec.litho.na = read_number(lv, path);
        else if (lk == "sigma") spec.litho.sigma = read_number(lv, path);
        else if (lk == "kernel_half") spec.litho.kernel_half = read_count(lv, path);
        else if (lk == "max_kernels") spec.litho.max_kernels = read_count(lv, path);
        else if (lk == "energy_capture") spec.litho.energy_capture = read_number(lv, path);
        else if (lk == "corner_defocus") spec.litho.corner_defocus = read_number(lv, path);
        else spec_fail("unknown key '" + lk + "' in litho");
      }
    } else if (key == "eole") {
      expect_object(value, "eole");
      for (const auto& [ek, ev] : value.members()) {
        const std::string path = "eole." + ek;
        if (ek == "anchors_x") spec.eole.anchors_x = read_count(ev, path);
        else if (ek == "anchors_y") spec.eole.anchors_y = read_count(ev, path);
        else if (ek == "num_terms") spec.eole.num_terms = read_count(ev, path);
        else if (ek == "corr_length") spec.eole.corr_length = read_number(ev, path);
        else if (ek == "sigma") spec.eole.sigma = read_number(ev, path);
        else if (ek == "eta0") spec.eole.eta0 = read_number(ev, path);
        else spec_fail("unknown key '" + ek + "' in eole");
      }
    } else if (key == "evaluation") {
      if (!value.is_array())
        spec_fail("'evaluation' must be an array, got " + std::string(value.kind_name()));
      spec.evaluation.clear();
      for (std::size_t i = 0; i < value.elements().size(); ++i)
        spec.evaluation.push_back(
            step_from_json(value.elements()[i], "evaluation[" + std::to_string(i) + "]"));
    } else {
      spec_fail("unknown key '" + key + "'");
    }
  }

  // An inline recipe without an explicit method key gets a neutral label
  // instead of the registry default ("boson" would misattribute the hybrid).
  if (spec.recipe && !saw_method) spec.method = "custom";

  validate(spec);
  return spec;
}

// ------------------------------------------------------------- validate ----

void validate(const experiment_spec& spec) {
  const registry& reg = registry::global();
  // Unknown names: the registry lookups throw the canonical
  // "unknown X '...' (known: ...; did you mean ...?)" messages. make_device
  // is only reached when the name is absent, so nothing is built here. An
  // inline recipe replaces the method lookup (the policy keys are validated
  // instead; `method` is then only a label).
  if (!reg.has_device(spec.device)) (void)reg.make_device(spec.device, 0.1);
  const core::method_recipe recipe = resolved_recipe(spec);  // throws on unknown method
  core::validate_recipe(recipe);
  (void)reg.objective(spec.objective);

  if (!(spec.resolution > 0.0) || spec.resolution > 1.0)
    spec_fail("'resolution' must be in (0, 1] um, got " +
              io::json_value(spec.resolution).dump(-1));
  if (spec.iterations == 0) spec_fail("'run.iterations' must be at least 1");
  if (spec.seed > (std::uint64_t{1} << 53))
    spec_fail("'run.seed' exceeds 2^53 and would not survive the JSON round-trip");
  if (!(spec.learning_rate > 0.0))
    spec_fail("'run.learning_rate' must be positive, got " +
              io::json_value(spec.learning_rate).dump(-1));
  if (spec.backend != "default") {
    try {
      (void)sim::backend_from_string(spec.backend);
    } catch (const bad_argument&) {
      spec_fail("'run.backend' must be one of default, banded, bicgstab, gmres (got '" +
                spec.backend + "')");
    }
  }

  if (!(spec.litho.wavelength > 0.0)) spec_fail("'litho.wavelength' must be positive");
  if (!(spec.litho.energy_capture > 0.0) || spec.litho.energy_capture > 1.0)
    spec_fail("'litho.energy_capture' must be in (0, 1]");
  if (!(spec.eole.eta0 > 0.0) || !(spec.eole.eta0 < 1.0))
    spec_fail("'eole.eta0' must be in (0, 1)");
  if (!(spec.litho.na > 0.0)) spec_fail("'litho.na' must be positive");
  if (!(spec.litho.sigma > 0.0)) spec_fail("'litho.sigma' must be positive");
  if (spec.litho.kernel_half == 0) spec_fail("'litho.kernel_half' must be at least 1");
  if (spec.litho.max_kernels == 0) spec_fail("'litho.max_kernels' must be at least 1");
  if (spec.litho.corner_defocus < 0.0) spec_fail("'litho.corner_defocus' must be >= 0");
  if (spec.eole.anchors_x < 2 || spec.eole.anchors_y < 2)
    spec_fail("'eole.anchors_x'/'eole.anchors_y' must be at least 2");
  if (spec.eole.num_terms == 0) spec_fail("'eole.num_terms' must be at least 1");
  if (!(spec.eole.corr_length > 0.0)) spec_fail("'eole.corr_length' must be positive");
  if (!(spec.eole.sigma > 0.0)) spec_fail("'eole.sigma' must be positive");

  std::size_t mc_steps = 0;
  for (std::size_t i = 0; i < spec.evaluation.size(); ++i) {
    const eval_step& step = spec.evaluation[i];
    const std::string path = "evaluation[" + std::to_string(i) + "]";
    switch (step.kind) {
      case eval_step::step_kind::postfab_monte_carlo:
        if (step.samples == 0) spec_fail("'" + path + ".samples' must be at least 1");
        if (++mc_steps > 1)
          spec_fail("at most one postfab_monte_carlo step is allowed per spec");
        break;
      case eval_step::step_kind::wavelength_sweep:
        if (step.wavelengths_um.empty())
          spec_fail("'" + path + ".wavelengths_um' must not be empty");
        for (const double w : step.wavelengths_um)
          if (!(w > 0.0))
            spec_fail("'" + path + ".wavelengths_um' entries must be positive, got " +
                      io::json_value(w).dump(-1));
        break;
      case eval_step::step_kind::process_window:
        if (step.defocus_um.empty()) spec_fail("'" + path + ".defocus_um' must not be empty");
        if (step.dose.empty()) spec_fail("'" + path + ".dose' must not be empty");
        for (const double d : step.defocus_um)
          if (d < 0.0) spec_fail("'" + path + ".defocus_um' entries must be >= 0");
        for (const double d : step.dose)
          if (!(d > 0.0)) spec_fail("'" + path + ".dose' entries must be positive");
        break;
    }
  }

  // Objective overrides — whether from the objective registry or baked into
  // the method's recipe (the '-eff' variant) — only apply to ratio
  // objectives; reject the mismatch here so `boson_cli validate` catches it
  // instead of a mid-run throw.
  const std::string effective_override = recipe.objective_override.empty()
                                             ? reg.objective(spec.objective).override_metric
                                             : recipe.objective_override;
  if (!effective_override.empty() &&
      reg.make_device(spec.device, spec.resolution).objective.kind !=
          dev::objective_kind::minimize_ratio)
    spec_fail("method '" + spec.method + "' / objective '" + spec.objective +
              "' need an objective override, which only applies to "
              "ratio-objective devices; '" +
              spec.device + "' uses its own maximize objective");
}

std::vector<experiment_spec> load_specs(const std::string& path) {
  const io::json_value doc = io::json_value::parse_file(path);
  std::vector<experiment_spec> specs;
  if (doc.is_array()) {
    require(!doc.elements().empty(), "experiment_spec: '" + path + "' is an empty batch");
    for (const auto& v : doc.elements()) specs.push_back(experiment_spec::from_json(v));
  } else {
    specs.push_back(experiment_spec::from_json(doc));
  }
  return specs;
}

}  // namespace boson::api
