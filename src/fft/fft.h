#pragma once

#include <cstddef>

#include "common/array2d.h"
#include "common/types.h"

namespace boson::fft {

/// True when n is a power of two (n >= 1).
bool is_power_of_two(std::size_t n);

/// Smallest power of two >= n.
std::size_t next_power_of_two(std::size_t n);

/// In-place complex FFT of arbitrary length (radix-2 when possible, Bluestein
/// otherwise). `inverse` applies the conjugate transform *and* the 1/n scale,
/// so fft(fft(x), inverse) == x.
void fft_inplace(cvec& data, bool inverse);

/// Reference O(n^2) DFT used by tests.
cvec dft_reference(const cvec& data, bool inverse);

/// 2-D FFT over an array2d, transforming both axes.
void fft2d_inplace(array2d<cplx>& data, bool inverse);

}  // namespace boson::fft
