#include "core/recipe.h"

#include <algorithm>
#include <cstdio>

#include "core/methods.h"
#include "devices/builders.h"
#include "param/density.h"
#include "param/levelset.h"

namespace boson::core {

namespace {

/// The ~80 nm MFS blur radius of the '-M' density baseline, in design cells.
double auto_mfs_cells(const experiment_config& cfg) { return 0.08 / cfg.resolution; }

void register_builtins(recipe_policies& p) {
  p.parameterization.add(
      "levelset",
      {[](const dev::device_spec& spec, const method_recipe&, const experiment_config&)
           -> std::shared_ptr<param::parameterization> {
         // Knot pitch ~3 design cells (150 nm at the default pitch): coarse
         // enough to act as a feature-size prior, fine enough for the
         // benchmark topologies.
         const std::size_t kx = std::max<std::size_t>(4, spec.design.nx / 3 + 1);
         const std::size_t ky = std::max<std::size_t>(4, spec.design.ny / 3 + 1);
         return std::make_shared<param::levelset_param>(kx, ky, spec.design.nx,
                                                        spec.design.ny);
       },
       "B-spline level set, knot pitch ~3 cells (the paper's default)"});
  p.parameterization.add(
      "density",
      {[](const dev::device_spec& spec, const method_recipe& recipe,
          const experiment_config& cfg) -> std::shared_ptr<param::parameterization> {
         const double blur = recipe.density_blur_mfs ? auto_mfs_cells(cfg)
                                                     : recipe.density_blur_cells;
         return std::make_shared<param::density_param>(spec.design.nx, spec.design.ny,
                                                       blur);
       },
       "per-pixel density variables (density_blur selects built-in MFS blur)"});

  p.corners.add("none", {false, robust::sampling_strategy::nominal_only, false,
                         "no variation awareness (nominal design only)"});
  p.corners.add("erosion_dilation",
                {false, robust::sampling_strategy::nominal_only, true,
                 "geometry corners: co-optimize uniformly eroded/dilated variants"});
  p.corners.add("nominal", {true, robust::sampling_strategy::nominal_only, false,
                            "fabrication model in the loop, nominal corner only"});
  p.corners.add("fixed_axial", {true, robust::sampling_strategy::axial_single, false,
                                "fixed one-sided axial corners: O(N) per iteration"});
  p.corners.add("fixed_axial_double",
                {true, robust::sampling_strategy::axial_double, false,
                 "fixed double-sided axial corners: O(2N) per iteration"});
  p.corners.add("axial_plus_random",
                {true, robust::sampling_strategy::axial_plus_random, false,
                 "axial corners plus random draws (cost-matched control)"});
  p.corners.add("exhaustive", {true, robust::sampling_strategy::exhaustive, false,
                               "exhaustive corner sweep (prior art / ablation)"});
  p.corners.add("adaptive",
                {true, robust::sampling_strategy::axial_plus_worst, false,
                 "BOSON-1 adaptive variation-aware: axial + one-step ascent worst case"});

  p.relaxation.add("none", {[](const experiment_config&) -> std::size_t { return 0; },
                            "optimize purely in the fabricable subspace"});
  p.relaxation.add(
      "linear",
      {[](const experiment_config& cfg) { return cfg.scaled_relax(); },
       "fabrication-aware weight ramps 0 -> 1 over the config's relax epochs"});

  p.reshaping.add("none", {false, "sparse objective (transmission terms only)"});
  p.reshaping.add("dense",
                  {true, "landscape reshaping via auxiliary dense penalties"});

  p.initialization.add(
      "default",
      {[](const design_problem& problem, const method_recipe& recipe, std::uint64_t) {
         // Density-based topology optimization conventionally starts from a
         // uniform gray design; everything else uses the light-concentrated
         // heuristic.
         return recipe.parameterization == "density" ? gray_init(problem)
                                                     : concentrated_init(problem);
       },
       "light-concentrated for level-set recipes, uniform gray for density"});
  p.initialization.add(
      "concentrated",
      {[](const design_problem& problem, const method_recipe&, std::uint64_t) {
         return concentrated_init(problem);
       },
       "light-concentrated device heuristic"});
  p.initialization.add("gray",
                       {[](const design_problem& problem, const method_recipe&,
                           std::uint64_t) { return gray_init(problem); },
                        "uniform gray start (conventional topology optimization)"});
  p.initialization.add(
      "random",
      {[](const design_problem& problem, const method_recipe&, std::uint64_t seed) {
         return random_init(problem, seed);
       },
       "uniform random latent variables (the Table II init ablation)"});

  p.mask_correction.add("none", {0, "hand the binarized design straight to fab"});
  p.mask_correction.add(
      "nominal", {1, "two-stage InvFabCor flow matching the nominal litho corner"});
  p.mask_correction.add(
      "all_corners", {3, "two-stage InvFabCor flow matching all three litho corners"});

  p.beta_schedule.add("ramp", {true, "projection sharpness ramps beta_start -> beta_end"});
  p.beta_schedule.add(
      "fixed", {false, "projection sharpness held at beta_start (classical density flow)"});
}

}  // namespace

recipe_policies& recipe_policies::global() {
  static recipe_policies* instance = [] {
    auto* p = new recipe_policies();
    register_builtins(*p);
    return p;
  }();
  return *instance;
}

namespace {

/// Shortest %g form of a double, for signature strings ("0.01", "1.5").
std::string compact(double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", value);
  return buf;
}

}  // namespace

std::string method_recipe::signature() const {
  // Every field that changes what runs must land here — two recipes with
  // different behavior must never share a signature (it is the provenance
  // key in results.jsonl and the campaign report legend).
  // Numeric fields compare against the struct defaults (not literals), and
  // the beta endpoints are emitted for *any* non-default pair — also under
  // user-registered schedules — so the invariant survives default edits and
  // policy registrations.
  const method_recipe defaults;
  std::string out = parameterization;
  if (density_blur_mfs) out += "+mfs";
  else if (density_blur_cells > 0.0) out += "+blur:" + compact(density_blur_cells);
  if (mfs_blur) out += "+M";
  out += "|corners:" + corners;
  if (ed_radius_cells != defaults.ed_radius_cells) out += ":r" + compact(ed_radius_cells);
  out += "|relax:" + relaxation;
  out += "|reshape:" + reshaping;
  if (tv_weight > 0.0) out += "|tv:" + compact(tv_weight);
  out += "|init:" + initialization;
  if (mask_correction != "none") out += "|corr:" + mask_correction;
  if (beta_schedule != defaults.beta_schedule) out += "|beta:" + beta_schedule;
  if (beta_start != defaults.beta_start || beta_end != defaults.beta_end)
    out += "|beta_range:" + compact(beta_start) + ".." + compact(beta_end);
  if (iterations > 0) out += "|iters:" + std::to_string(iterations);
  if (learning_rate > 0.0) out += "|lr:" + compact(learning_rate);
  if (!objective_override.empty()) out += "|objective:" + objective_override;
  return out;
}

bool operator==(const method_recipe& a, const method_recipe& b) {
  return a.label == b.label && a.parameterization == b.parameterization &&
         a.density_blur_cells == b.density_blur_cells &&
         a.density_blur_mfs == b.density_blur_mfs && a.mfs_blur == b.mfs_blur &&
         a.corners == b.corners && a.ed_radius_cells == b.ed_radius_cells &&
         a.relaxation == b.relaxation && a.reshaping == b.reshaping &&
         a.tv_weight == b.tv_weight && a.initialization == b.initialization &&
         a.mask_correction == b.mask_correction && a.beta_schedule == b.beta_schedule &&
         a.beta_start == b.beta_start && a.beta_end == b.beta_end &&
         a.iterations == b.iterations && a.learning_rate == b.learning_rate &&
         a.objective_override == b.objective_override;
}

void validate_recipe(const method_recipe& recipe) {
  const recipe_policies& p = recipe_policies::global();
  const auto fail = [](const std::string& message) {
    throw bad_argument("method_recipe: " + message);
  };

  if (recipe.label.empty()) fail("'label' must not be empty");
  const corner_policy cp = p.corners.get(recipe.corners);
  (void)p.parameterization.get(recipe.parameterization);
  (void)p.relaxation.get(recipe.relaxation);
  (void)p.reshaping.get(recipe.reshaping);
  (void)p.initialization.get(recipe.initialization);
  (void)p.mask_correction.get(recipe.mask_correction);
  (void)p.beta_schedule.get(recipe.beta_schedule);

  if (recipe.density_blur_cells < 0.0) fail("'density_blur' must be >= 0 cells");
  if (recipe.density_blur_mfs && recipe.density_blur_cells > 0.0)
    fail("'density_blur' is either \"mfs\" or a cell radius, not both");
  if ((recipe.density_blur_mfs || recipe.density_blur_cells > 0.0) &&
      recipe.parameterization != "density")
    fail("'density_blur' only applies to the density parameterization");
  if (!(recipe.ed_radius_cells > 0.0)) fail("'ed_radius_cells' must be positive");
  if (cp.erosion_dilation && cp.fab_aware)
    fail("corner policy '" + recipe.corners +
         "' combines erosion_dilation with fab_aware (unsupported)");
  if (recipe.tv_weight < 0.0) fail("'tv_weight' must be >= 0");
  if (!(recipe.beta_start > 0.0)) fail("'beta_start' must be positive");
  if (!(recipe.beta_end > 0.0)) fail("'beta_end' must be positive");
  if (recipe.learning_rate < 0.0)
    fail("'learning_rate' must be positive (or 0 to inherit the run settings)");
}

}  // namespace boson::core
