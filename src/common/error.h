#pragma once

#include <stdexcept>
#include <string>

namespace boson {

/// Base class for every error raised by the BOSON-1 library.
class error : public std::runtime_error {
 public:
  explicit error(const std::string& what_arg) : std::runtime_error(what_arg) {}
};

/// A caller violated a documented precondition.
class bad_argument : public error {
 public:
  using error::error;
};

/// A numerical routine could not complete (singular pivot, no convergence, ...).
class numeric_error : public error {
 public:
  using error::error;
};

/// A file or stream operation failed.
class io_error : public error {
 public:
  using error::error;
};

/// Throw `bad_argument` with `msg` unless `cond` holds. Used to state
/// preconditions at public interfaces (C++ Core Guidelines I.5).
inline void require(bool cond, const std::string& msg) {
  if (!cond) throw bad_argument(msg);
}

/// Throw `numeric_error` with `msg` unless `cond` holds.
inline void check_numeric(bool cond, const std::string& msg) {
  if (!cond) throw numeric_error(msg);
}

}  // namespace boson
