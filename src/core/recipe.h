/// \file recipe.h
/// The composable method layer: a `method_recipe` is a first-class value
/// describing one design methodology as a composition of orthogonal,
/// string-keyed policies — parameterization, variation-corner strategy,
/// subspace-relaxation schedule, loss-landscape reshaping, initialization,
/// mask-correction stage, projection schedule, and optimizer overrides. The
/// fifteen paper methods are presets expressed as recipes (see
/// `core::preset_recipe` in methods.h); never-compiled hybrids are just new
/// recipe values, built in C++ or parsed from a spec's `"recipe"` object.
/// Every policy family is independently registrable through
/// `recipe_policies::global()`, so user code can add e.g. a new corner
/// strategy and reference it from JSON without touching this module.

#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/error.h"
#include "common/text.h"
#include "common/types.h"
#include "robust/sampler.h"

namespace boson::dev {
struct device_spec;
}  // namespace boson::dev

namespace boson::param {
class parameterization;
}  // namespace boson::param

namespace boson::core {

struct experiment_config;  // methods.h
class design_problem;      // design_problem.h

/// One design methodology as data. String fields name policies resolved
/// against `recipe_policies::global()` at run time; numeric fields tune the
/// selected policies. Field defaults describe the plain level-set baseline
/// ("LS"), so a recipe only states what it composes differently.
struct method_recipe {
  /// Display label carried into `method_result`, summaries and reports
  /// (the presets use the paper names, e.g. "BOSON-1").
  std::string label = "custom";

  // ----------------------------------------------------- parameterization --
  std::string parameterization = "levelset";  ///< parameterization-policy key
  double density_blur_cells = 0.0;  ///< density built-in MFS blur radius [cells]
  bool density_blur_mfs = false;    ///< resolve the blur to ~80 nm at run time
  bool mfs_blur = false;            ///< problem-level MFS blur ('-M' variants)

  // ------------------------------------------------------ corner strategy --
  std::string corners = "none";  ///< corner-policy key (none / fixed axial /
                                 ///< exhaustive / adaptive / erosion_dilation)
  double ed_radius_cells = 1.2;  ///< erosion/dilation radius [cells]

  // ------------------------------------------- subspace relaxation schedule --
  std::string relaxation = "none";  ///< relaxation-policy key

  // ----------------------------------------------- objective reshaping -----
  std::string reshaping = "none";  ///< reshaping-policy key
  double tv_weight = 0.0;          ///< total-variation (perimeter) penalty

  // --------------------------------------------------------- initialization --
  std::string initialization = "default";  ///< initialization-policy key

  // --------------------------------------------------- mask-correction stage --
  std::string mask_correction = "none";  ///< mask-correction-policy key

  // ------------------------------------------------ optimizer hyperparameters --
  std::string beta_schedule = "ramp";  ///< beta-policy key
  double beta_start = 8.0;             ///< projection sharpness at iteration 0
  double beta_end = 40.0;              ///< ... at the last iteration (ramp only)
  std::size_t iterations = 0;          ///< 0 inherits the experiment config
  double learning_rate = 0.0;          ///< 0 inherits the experiment config

  /// Objective override baked into the recipe ("" defers to the experiment
  /// config; "fwd_transmission" is the '-eff' variant). Ratio objectives only.
  std::string objective_override;

  /// Compact provenance string ("density+mfs|corners:adaptive|relax:linear|
  /// reshape:dense|init:gray|corr:all_corners") recorded in results.jsonl and
  /// the campaign report legend.
  std::string signature() const;
};

bool operator==(const method_recipe& a, const method_recipe& b);
inline bool operator!=(const method_recipe& a, const method_recipe& b) { return !(a == b); }

// ---------------------------------------------------------------- policies --

/// How variation corners enter the optimization loop: fabrication-aware
/// corner sampling (the BOSON-1 family), the geometry-corner prior art, or
/// nothing.
struct corner_policy {
  bool fab_aware = false;  ///< litho+etch simulated inside the loop
  robust::sampling_strategy sampling = robust::sampling_strategy::nominal_only;
  bool erosion_dilation = false;  ///< geometry corners (requires !fab_aware)
  std::string description;
};

/// Conditional subspace relaxation: how many warmup iterations blend in the
/// relaxed (ideal) gradient, as a function of the experiment config.
struct relaxation_policy {
  std::function<std::size_t(const experiment_config&)> epochs;
  std::string description;
};

/// Loss-landscape reshaping via auxiliary dense objectives.
struct reshaping_policy {
  bool dense_objectives = false;
  std::string description;
};

/// Initial latent variables. `seed` is the init stream (`cfg.seed + 1`, the
/// historical convention); deterministic policies ignore it.
struct initialization_policy {
  std::function<dvec(const design_problem&, const method_recipe&, std::uint64_t seed)> make;
  std::string description;
};

/// The InvFabCor-style second stage: how many lithography corners the
/// post-hoc mask optimization matches (0 disables the stage).
struct mask_correction_policy {
  std::size_t litho_corners = 0;
  std::string description;
};

/// Projection-sharpness schedule: ramp beta_start -> beta_end, or hold it
/// fixed at beta_start (the classical density flow).
struct beta_policy {
  bool ramp = true;
  std::string description;
};

/// Latent-variable parameterization factory for a device at a config.
struct parameterization_policy {
  std::function<std::shared_ptr<param::parameterization>(
      const dev::device_spec&, const method_recipe&, const experiment_config&)>
      make;
  std::string description;
};

/// Thread-safe name -> policy table for one recipe axis. Lookups throw
/// `bad_argument` listing the known keys plus a did-you-mean suggestion.
template <typename Policy>
class policy_table {
 public:
  explicit policy_table(std::string family) : family_(std::move(family)) {}

  /// Register (or replace) a policy under `name`.
  void add(const std::string& name, Policy policy) {
    require(!name.empty(), "recipe_policies: " + family_ + " policy name must not be empty");
    const std::lock_guard<std::mutex> lock(mutex_);
    entries_[name] = std::move(policy);
  }

  bool has(const std::string& name) const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return entries_.count(name) != 0;
  }

  /// Resolve a policy key; throws `bad_argument` naming the family, the
  /// known keys, and the closest match when `name` looks like a typo.
  Policy get(const std::string& name) const {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      const auto it = entries_.find(name);
      if (it != entries_.end()) return it->second;
    }
    const std::vector<std::string> known = names();
    throw bad_argument("method_recipe: unknown " + family_ + " policy '" + name +
                       "' (known: " + join_names(known) + did_you_mean(name, known) +
                       ")");
  }

  std::vector<std::string> names() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::string> out;
    out.reserve(entries_.size());
    for (const auto& [name, policy] : entries_) out.push_back(name);
    return out;
  }

 private:
  std::string family_;
  mutable std::mutex mutex_;
  std::map<std::string, Policy> entries_;
};

/// The per-axis policy tables a recipe resolves against. `global()` is
/// pre-populated with the built-in policies (listed in docs/METHODS.md);
/// every table accepts user registrations, which JSON recipes can then
/// reference by name without recompiling the dispatch layer.
class recipe_policies {
 public:
  /// Process-wide tables, pre-populated with the built-in policies.
  static recipe_policies& global();

  policy_table<parameterization_policy> parameterization{"parameterization"};
  policy_table<corner_policy> corners{"corners"};
  policy_table<relaxation_policy> relaxation{"relaxation"};
  policy_table<reshaping_policy> reshaping{"reshaping"};
  policy_table<initialization_policy> initialization{"initialization"};
  policy_table<mask_correction_policy> mask_correction{"mask_correction"};
  policy_table<beta_policy> beta_schedule{"beta_schedule"};

 private:
  recipe_policies() = default;
};

/// Check every policy key against `recipe_policies::global()` and every
/// numeric field against its range; throws `bad_argument` with the precise
/// offending field (policy lookups include the did-you-mean suggestion).
void validate_recipe(const method_recipe& recipe);

}  // namespace boson::core
