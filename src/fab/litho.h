/// \file litho.h
/// Differentiable Hopkins partially-coherent lithography model (SOCS
/// decomposition of the transmission cross-coefficient matrix). This is the
/// physical mechanism behind BOSON-1's fabricable subspace: the projection
/// pupil band-limits the aerial image, so sub-diffraction features of the
/// mask cannot reach the wafer. Process corners vary focus and dose.

#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "common/array2d.h"
#include "common/types.h"
#include "fft/conv2d.h"

namespace boson::fab {

/// Optical settings of the Hopkins partially-coherent imaging model.
///
/// The projection system is a circular pupil of numerical aperture `na` at
/// wavelength `wavelength`, illuminated by a conventional (disk) source of
/// coherence factor `sigma`. The transmission cross-coefficient (TCC) matrix
/// is assembled on a Cartesian frequency grid, eigendecomposed, and truncated
/// to the strongest coherent kernels (SOCS decomposition).
struct litho_settings {
  double wavelength = 0.193;       ///< exposure wavelength [um] (DUV)
  double na = 1.2;                 ///< numerical aperture (immersion)
  double sigma = 0.4;              ///< partial-coherence fill factor
  double pixel = 0.05;             ///< mask pixel pitch [um]
  std::size_t kernel_half = 10;    ///< spatial kernel half-width [pixels]
  std::size_t max_kernels = 8;     ///< cap on retained SOCS kernels
  double energy_capture = 0.98;    ///< keep kernels until this energy fraction
  double corner_defocus = 0.08;    ///< focus error [um] at the min/max corners
};

/// One lithography process corner: focus error and exposure dose.
/// The paper's three corners (l_min, l_nominal, l_max) map to
/// (defocus, 0.95), (0, 1.0), (defocus, 1.05).
struct litho_corner_params {
  double defocus = 0.0;  ///< [um]
  double dose = 1.0;     ///< multiplies the aerial intensity
};

/// Standard three-corner set used across the framework.
std::vector<litho_corner_params> standard_litho_corners(double defocus = 0.08);

/// Cached forward evaluation: the aerial image plus the per-kernel coherent
/// fields needed by the backward pass.
struct litho_forward {
  array2d<double> aerial;
  std::vector<array2d<cplx>> fields;
};

/// Differentiable Hopkins lithography model for one process corner on a
/// fixed mask shape (nx x ny pixels).
///
/// Forward: aerial(x) = dose/I_open * sum_k sigma_k |(h_k * mask)(x)|^2,
/// normalized so a fully open mask images to ~dose. The model is the
/// mechanism that restricts designs to the low-dimensional fabricable
/// subspace: kernels are band-limited by the pupil, so features below the
/// diffraction limit cannot survive.
class hopkins_litho {
 public:
  hopkins_litho(const litho_settings& settings, const litho_corner_params& corner,
                std::size_t nx, std::size_t ny);

  std::size_t nx() const { return nx_; }
  std::size_t ny() const { return ny_; }
  std::size_t kernel_count() const { return weights_.size(); }
  const litho_settings& settings() const { return settings_; }
  const litho_corner_params& corner() const { return corner_; }

  /// Aerial image of a mask in [0, 1]^(nx x ny).
  litho_forward forward(const array2d<double>& mask) const;

  /// Chain rule: d_mask = (d aerial / d mask)^T d_aerial, using the cached
  /// forward fields.
  array2d<double> backward(const litho_forward& fwd, const array2d<double>& d_aerial) const;

  /// Retained SOCS eigenvalues (diagnostics/tests).
  const dvec& kernel_weights() const { return weights_; }

 private:
  litho_settings settings_;
  litho_corner_params corner_;
  std::size_t nx_;
  std::size_t ny_;
  dvec weights_;                                ///< sigma_k, scaled by dose/I_open
  std::unique_ptr<fft::kernel_conv2d> conv_;
};

}  // namespace boson::fab
