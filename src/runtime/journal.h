/// \file journal.h
/// Append-only durability log of a campaign: every job state transition
/// (leased, running, checkpointed, completed, failed, cancelled, ...) is one
/// JSON line in `journal.jsonl`. Appends are mutex-serialized within a
/// process and line-buffered into a single O_APPEND write, so concurrent
/// worker processes sharing one campaign directory interleave whole lines
/// only. Replay reconstructs the latest state per job — the scheduler's
/// crash-recovery source of truth — and tolerates a torn (crash-truncated)
/// final line.
///
/// Since the elastic-scheduling rewrite the journal is also the
/// *coordination* medium: workers claim jobs by appending `leased` records,
/// keep them alive with `lease_renewed` heartbeats, and take over a dead
/// worker's jobs by appending `lease_expired` + a fresh claim. Because every
/// appender shares one file, replay order is a total order and resolves
/// every claim race deterministically (see `lease.h`).

#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "io/json.h"
#include "runtime/jsonl.h"

namespace boson::runtime {

/// Lifecycle states a job moves through in the journal.
enum class job_state {
  scheduled,      ///< admitted to a scheduler run's queue (legacy; informational)
  leased,         ///< a worker claimed the job (winner decided by replay order)
  lease_renewed,  ///< heartbeat: the owner extended its lease deadline
  lease_released, ///< the owner gave the job back without finishing it
  lease_expired,  ///< a worker observed the lease deadline passed (steal prologue)
  running,        ///< an attempt started
  checkpointed,   ///< a mid-run snapshot was persisted (detail = next iteration)
  completed,      ///< finished; results are in the store
  failed,         ///< an attempt threw (detail = error message)
  cancelled,      ///< interrupted by cooperative cancellation
};

const char* to_string(job_state state);
job_state job_state_from_string(const std::string& text);

/// One journal record. The lease fields (`worker`, `lease_id`, `deadline`,
/// `stamp`) are only serialized when set, so pre-lease journals replay (and
/// re-serialize) unchanged.
struct journal_entry {
  std::size_t job_index = 0;
  std::string job_name;
  job_state state = job_state::scheduled;
  std::size_t attempt = 0;   ///< 1-based attempt number; 0 for scheduled
  std::string detail;        ///< state-dependent payload (error, iteration, ...)
  double seconds = 0.0;      ///< wall-clock of the attempt (completed/failed)

  // Lease coordination fields.
  std::string worker;          ///< worker id that wrote (or is named by) the record
  std::uint64_t lease_id = 0;  ///< per-worker claim counter; (worker, lease_id) is unique
  double deadline = 0.0;       ///< absolute lease expiry time (leased / lease_renewed)
  double stamp = 0.0;          ///< the writer's clock when the record was appended

  io::json_value to_json() const;
  static journal_entry from_json(const io::json_value& v);
};

/// Resumable position in a journal file: how many bytes (and lines, for
/// error messages) have been consumed so far. Pollers — the event stream,
/// the lease manager — keep one per journal and fold only what appended
/// since, so poll cost tracks journal *growth* instead of journal size. The
/// byte offset is also the control plane's wire cursor (`?cursor=N`): it is
/// stable across processes because every appender shares one O_APPEND file.
struct journal_cursor {
  std::streamoff offset = 0;  ///< bytes already consumed
  std::size_t line = 0;       ///< complete lines already consumed
};

/// Append-only JSONL writer + replayer.
class journal {
 public:
  /// Opens `path` for appending (creating it if needed), healing any
  /// crash-torn trailing fragment first (see `jsonl_appender`).
  explicit journal(std::string path);

  /// Append one record; thread-safe, flushed before returning so a crash
  /// after `append` never loses the record.
  void append(const journal_entry& entry);

  const std::string& path() const { return out_.path(); }

  /// Parse every complete line of a journal file, in order. A torn trailing
  /// line (the single-line tail a crash mid-write can leave) is ignored; a
  /// malformed line anywhere else throws `io_error` naming the line number.
  /// A missing file replays to an empty history.
  static std::vector<journal_entry> replay(const std::string& path);

  /// Incremental replay: parse the records appended after `cursor` and
  /// advance it past every record returned. The torn-tail contract carries
  /// over — an unterminated final fragment, or a malformed final line (a
  /// racing writer's flush seen mid-append), is left *before* the cursor for
  /// the next poll; a malformed line with a successor throws `io_error`
  /// naming the line. A missing file returns no records and leaves the
  /// cursor untouched.
  static std::vector<journal_entry> since(const std::string& path,
                                          journal_cursor& cursor);

  /// Reduce a replayed history to the latest entry per job index. Note that
  /// with lease coordination the *latest* record can be a losing claim or a
  /// heartbeat; scheduling decisions go through `lease_table::resolve`
  /// instead, which folds the full history.
  static std::map<std::size_t, journal_entry> latest_states(
      const std::vector<journal_entry>& entries);

 private:
  jsonl_appender out_;
};

}  // namespace boson::runtime
