#include "optim/optimizer.h"

#include <cmath>
#include <utility>

#include "common/error.h"

namespace boson::opt {

adam::adam(double learning_rate, double beta1, double beta2, double epsilon)
    : lr_(learning_rate), beta1_(beta1), beta2_(beta2), eps_(epsilon) {
  require(learning_rate > 0.0, "adam: learning rate must be positive");
  require(beta1 >= 0.0 && beta1 < 1.0 && beta2 >= 0.0 && beta2 < 1.0, "adam: bad betas");
}

void adam::step(dvec& params, const dvec& grad) {
  require(params.size() == grad.size(), "adam::step: size mismatch");
  if (m_.size() != params.size()) {
    m_.assign(params.size(), 0.0);
    v_.assign(params.size(), 0.0);
    t_ = 0;
  }
  ++t_;
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  for (std::size_t i = 0; i < params.size(); ++i) {
    m_[i] = beta1_ * m_[i] + (1.0 - beta1_) * grad[i];
    v_[i] = beta2_ * v_[i] + (1.0 - beta2_) * grad[i] * grad[i];
    const double m_hat = m_[i] / bc1;
    const double v_hat = v_[i] / bc2;
    params[i] -= lr_ * m_hat / (std::sqrt(v_hat) + eps_);
  }
}

void adam::reset() {
  m_.clear();
  v_.clear();
  t_ = 0;
}

adam_state adam::state() const { return adam_state{m_, v_, t_}; }

void adam::restore(adam_state state) {
  require(state.m.size() == state.v.size(), "adam::restore: moment size mismatch");
  m_ = std::move(state.m);
  v_ = std::move(state.v);
  t_ = state.t;
}

sgd_momentum::sgd_momentum(double learning_rate, double momentum)
    : lr_(learning_rate), momentum_(momentum) {
  require(learning_rate > 0.0, "sgd_momentum: learning rate must be positive");
  require(momentum >= 0.0 && momentum < 1.0, "sgd_momentum: momentum in [0,1)");
}

void sgd_momentum::step(dvec& params, const dvec& grad) {
  require(params.size() == grad.size(), "sgd_momentum::step: size mismatch");
  if (velocity_.size() != params.size()) velocity_.assign(params.size(), 0.0);
  for (std::size_t i = 0; i < params.size(); ++i) {
    velocity_[i] = momentum_ * velocity_[i] - lr_ * grad[i];
    params[i] += velocity_[i];
  }
}

void sgd_momentum::reset() { velocity_.clear(); }

}  // namespace boson::opt
