#pragma once

#include <string>
#include <vector>

namespace boson::io {

/// Console table formatter used by bench binaries to print rows in the shape
/// of the paper's tables. Columns are padded to the widest cell.
class console_table {
 public:
  explicit console_table(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  /// Render with column alignment, header separator and optional title.
  std::string render(const std::string& title = "") const;

  /// Render and write to stdout.
  void print(const std::string& title = "") const;

  /// Format helper: fixed precision.
  static std::string num(double value, int precision = 4);
  /// Format helper: scientific notation (matches the paper's FoM rows).
  static std::string sci(double value, int precision = 2);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace boson::io
