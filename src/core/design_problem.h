/// \file design_problem.h
/// The end-to-end differentiable inverse-design pipeline of the paper's
/// Eq. (1): latent variables -> parameterization -> Hopkins lithography ->
/// EOLE etch -> temperature-dependent permittivity -> FDFD solve -> modal /
/// flux monitors -> scalar loss, with the adjoint backward pass. Owns the
/// immutable per-device `fab_context` (per-corner litho models, EOLE field,
/// variation space) so corner evaluations can run concurrently.

#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/array2d.h"
#include "common/types.h"
#include "devices/spec.h"
#include "fab/eole.h"
#include "fab/etch.h"
#include "fab/litho.h"
#include "param/filters.h"
#include "param/parameterization.h"
#include "robust/corners.h"
#include "sim/backend.h"

namespace boson::sim {
class simulation_engine;
}

namespace boson::modes {
struct slab_mode;
}

namespace boson::core {

/// Shared, immutable fabrication models for one device: per-corner Hopkins
/// lithography on the design region extended by a halo of fixed geometry,
/// the EOLE etch-threshold field, and the variation space. Safe to share
/// across threads once built.
struct fab_context {
  fab::litho_settings litho_cfg;
  std::vector<std::shared_ptr<const fab::hopkins_litho>> litho;  ///< per corner
  double etch_beta = 30.0;
  std::shared_ptr<const fab::eole_field> eole;
  robust::variation_space space;
  std::size_t halo = 0;  ///< halo width in cells (= litho kernel half-width)
};

/// Build the fabrication context for a device (lithography corners at the
/// device's pixel pitch, EOLE field over the extended design window).
fab_context make_fab_context(const dev::device_spec& spec,
                             const fab::litho_settings& litho_cfg,
                             const fab::eole_settings& eole_cfg,
                             const robust::variation_space& space);

/// Controls for one pipeline evaluation.
struct eval_options {
  bool fab_aware = true;        ///< run litho + etch inside the pipeline
  bool dense_objectives = true; ///< add the auxiliary penalty terms
  bool hard_etch = false;       ///< evaluation mode: hard threshold, no gradient
  bool soft_etch = false;       ///< smooth sigmoid etch (finite-difference-consistent)
  bool binarize_ideal = false;  ///< threshold the no-fab pattern at 0.5 (pre-fab eval)
  bool use_mfs_blur = false;    ///< classical MFS blur ('-M' baselines)
  bool compute_gradient = true;
  bool want_var_grads = false;  ///< also compute dLoss/dxi and dLoss/dT
  std::string objective_override;  ///< if set: maximize this metric instead

  /// Prior-art uniform geometry variation (refs [1],[7],[20]): apply a soft
  /// morphological erosion (-1) / dilation (+1) to the pattern instead of the
  /// lithography+etch chain. Only meaningful with fab_aware == false.
  int morphology_shift = 0;
  double morphology_radius_cells = 1.2;

  /// Linear-backend selection and iterative-solver controls for the FDFD
  /// solves of this evaluation (the BOSON_BACKEND environment variable sets
  /// the default backend).
  sim::engine_settings engine;

  /// Look up / insert the prepared operator in sim::engine_cache::global(),
  /// so evaluations that repeat an operator state (Monte-Carlo samples,
  /// sweep points) skip re-assembly and re-factorization. Ignored when
  /// BOSON_SIM_CACHE=0 disables caching globally.
  bool use_operator_cache = false;
};

/// Result of one evaluation: scalar loss, named metrics (including the
/// derived "contrast" for ratio objectives), gradients, and the realized
/// design-region pattern.
struct eval_result {
  double loss = 0.0;
  std::map<std::string, double> metrics;
  dvec grad;               ///< dLoss/dtheta (empty unless computed)
  dvec d_xi;               ///< dLoss/dxi (want_var_grads)
  double d_temperature = 0.0;
  array2d<double> pattern; ///< realized pattern on the design grid
};

/// The end-to-end differentiable inverse-design pipeline of Eq. (1):
///   theta -> P (parameterization) -> L (lithography) -> E (etching)
///         -> T (temperature)      -> eps -> FDFD -> monitors -> loss,
/// with the full chain-rule backward pass driven by FDFD adjoint solves.
///
/// `evaluate` is const and thread-safe: corners are simulated concurrently
/// during robust optimization.
class design_problem {
 public:
  /// `reference_opts` configures the construction-time reference
  /// normalization solve: its `engine` settings pick the backend and
  /// `use_operator_cache` opts the reference operator into the global
  /// engine cache (protocols that rebuild identical problems per scan
  /// point, e.g. the litho process window, share one factorization that
  /// way). Every other field is ignored.
  design_problem(dev::device_spec spec, std::shared_ptr<param::parameterization> param,
                 fab_context fab, double mfs_blur_radius_cells = 1.6,
                 const eval_options& reference_opts = {});

  const dev::device_spec& spec() const { return spec_; }
  const fab_context& fab() const { return fab_; }
  param::parameterization& parameterization() { return *param_; }
  const param::parameterization& parameterization() const { return *param_; }
  std::shared_ptr<param::parameterization> shared_parameterization() const { return param_; }

  /// Launched power per excitation, measured on the reference structure.
  double input_power(std::size_t excitation_index) const;

  /// Full pipeline from latent variables.
  eval_result evaluate(const dvec& theta, const robust::variation_corner& corner,
                       const eval_options& opts) const;

  /// Pipeline from an explicit design-region pattern/mask (no theta): used
  /// to evaluate corrected masks and for Monte-Carlo post-fab evaluation.
  eval_result evaluate_pattern(const array2d<double>& rho_design,
                               const robust::variation_corner& corner,
                               const eval_options& opts) const;

  /// Figure of merit extracted from a metric map per the device's objective.
  double fom_of(const std::map<std::string, double>& metrics) const;

  /// Clone this problem at a different operating wavelength. Shares the
  /// parameterization and fabrication context (lithography is independent of
  /// the operating wavelength); the reference normalization is recomputed.
  /// Enables spectral-response studies of finished designs.
  design_problem at_wavelength(double lambda_um) const;

  /// Binary occupancy of the fixed geometry around the design window, on the
  /// extended (halo) grid; interior cells are zero. Exposed for mask
  /// correction, which must image masks in the same context.
  const array2d<double>& halo_occupancy() const { return halo_occ_; }

  /// Embed a design-grid array into the extended halo grid (halo cells take
  /// the fixed-geometry occupancy).
  array2d<double> embed_in_halo(const array2d<double>& rho_design) const;

 private:
  /// Engine + solved forward fields for every excitation of the spec, in
  /// spec order. The single simulation pipeline behind both the reference
  /// normalization and `evaluate`.
  struct solved_excitations {
    std::shared_ptr<const sim::simulation_engine> engine;
    std::vector<array2d<cplx>> fields;
  };
  solved_excitations solve_excitations(const array2d<double>& eps,
                                       const eval_options& opts) const;

  eval_result evaluate_impl(const dvec* theta, const array2d<double>* rho_in,
                            const robust::variation_corner& corner,
                            const eval_options& opts) const;
  void compute_input_powers(const eval_options& reference_opts);

  /// Memoized lithography image of `mask_ext` under corner `corner_index`:
  /// warm Monte-Carlo samples and repeated corners re-image the same mask,
  /// and the Hopkins convolution stack dominates the non-solve time. The
  /// memo is bypassed (straight model call) unless `use_memo`.
  fab::litho_forward litho_forward_memo(std::size_t corner_index,
                                        const array2d<double>& mask_ext,
                                        bool use_memo) const;

  /// Memoized 1-D port mode, keyed on the port geometry, mode order, and the
  /// exact permittivity samples along the port line (the only eps the slab
  /// solve sees); same reuse pattern as the litho memo.
  modes::slab_mode port_mode_memo(const array2d<double>& eps, const dev::port& p,
                                  double spacing, int order, bool use_memo) const;

  dev::device_spec spec_;
  std::shared_ptr<param::parameterization> param_;
  fab_context fab_;
  param::gaussian_blur mfs_blur_;
  array2d<double> halo_occ_;
  dvec input_power_;

  /// Small FIFO memos behind `litho_forward_memo` / `port_mode_memo`,
  /// guarded by an internal mutex (evaluations run concurrently). Gated on
  /// `eval_options::use_operator_cache` and the BOSON_SIM_CACHE switch, so
  /// uncached evaluations measure the full pipeline honestly.
  struct memo_state;
  std::shared_ptr<memo_state> memo_;
};

}  // namespace boson::core
