// Fig. 5 of the paper: fabrication-aware optimization trajectories of the
// optical isolator, with no variation added.
//
//   (a) proposed: light-concentrated initialization + dense objectives
//   (b) light-concentrated initialization + single sparse objective
//   (c) random initialization + single sparse objective
//
// For each configuration the forward/backward transmission, radiation and
// reflection are recorded every iteration (the series plotted in the paper).
// Expected shape: (a) reaches high forward transmission with strong
// isolation; (b) stalls at mediocre forward efficiency; (c) never gets
// meaningful light through the device.

#include "bench_common.h"
#include "core/run.h"

int main() {
  using namespace boson;

  const stopwatch total;
  core::experiment_config cfg = core::default_config();

  bench::print_banner("Fig. 5: isolator optimization trajectories (no variation)");

  struct config {
    const char* key;
    const char* label;
    bool dense;
    bool random_init;
  };
  const std::vector<config> configs{
      {"a_proposed", "(a) concentrated init + dense objectives", true, false},
      {"b_sparse", "(b) concentrated init + sparse objective", false, false},
      {"c_random", "(c) random init + sparse objective", false, true},
  };

  io::csv_writer csv("fig5_trajectories.csv",
                     {"config", "iteration", "fwd_transmission", "fwd_radiation",
                      "fwd_reflection", "bwd_transmission", "bwd_radiation",
                      "bwd_reflection"});

  for (const auto& c : configs) {
    const dev::device_spec device = dev::make_isolator();
    core::design_problem problem = core::make_problem(device, true, cfg);

    core::run_options ro;
    ro.iterations = cfg.scaled_iterations();
    ro.learning_rate = cfg.learning_rate;
    ro.fab_aware = true;
    ro.dense_objectives = c.dense;
    ro.relax_epochs = c.dense ? cfg.scaled_relax() : 0;
    ro.sampling = robust::sampling_strategy::nominal_only;  // "no variation is added"
    ro.seed = cfg.seed;

    const dvec theta0 = c.random_init ? core::random_init(problem, cfg.seed + 1)
                                      : core::concentrated_init(problem);
    const core::run_result res = core::run_inverse_design(problem, theta0, ro);

    std::printf("\n%s\n", c.label);
    std::printf("%-5s %-9s %-9s %-9s %-9s %-9s %-9s\n", "iter", "fwdT", "fwdRad", "fwdRef",
                "bwdT", "bwdRad", "bwdRef");
    for (const auto& rec : res.trajectory) {
      const auto& m = rec.metrics;
      csv.write_row({c.key, std::to_string(rec.iteration),
                     io::csv_writer::format(m.at("fwd_transmission")),
                     io::csv_writer::format(m.at("fwd_radiation")),
                     io::csv_writer::format(m.at("fwd_reflection")),
                     io::csv_writer::format(m.at("bwd_transmission")),
                     io::csv_writer::format(m.at("bwd_radiation")),
                     io::csv_writer::format(m.at("bwd_reflection"))});
      if (rec.iteration % 5 == 0 || rec.iteration + 1 == res.trajectory.size())
        std::printf("%-5zu %-9.4f %-9.4f %-9.4f %-9.4f %-9.4f %-9.4f\n", rec.iteration,
                    m.at("fwd_transmission"), m.at("fwd_radiation"), m.at("fwd_reflection"),
                    m.at("bwd_transmission"), m.at("bwd_radiation"), m.at("bwd_reflection"));
    }
  }

  std::printf("\nseries: fig5_trajectories.csv\n");
  bench::print_runtime(total);
  return 0;
}
