#include "runtime/result_store.h"

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <utility>

#include "common/error.h"
#include "io/table.h"

namespace boson::runtime {

io::json_value job_result_row::to_json() const {
  io::json_value v = io::json_value::object();
  v["job"] = job_index;
  v["name"] = name;
  v["device"] = device;
  v["method"] = method;
  v["seed"] = static_cast<double>(seed);
  v["prefab_fom"] = prefab_fom;
  if (postfab_samples > 0) {
    io::json_value& mc = v["postfab"] = io::json_value::object();
    mc["samples"] = postfab_samples;
    mc["mean"] = postfab_mean;
    mc["std"] = postfab_std;
    mc["min"] = postfab_min;
    mc["max"] = postfab_max;
  }
  v["seconds"] = seconds;
  v["attempt"] = attempt;
  if (!artifact_dir.empty()) v["artifact_dir"] = artifact_dir;
  if (!recipe.empty()) v["recipe"] = recipe;
  return v;
}

job_result_row job_result_row::from_json(const io::json_value& v) {
  job_result_row row;
  row.job_index = static_cast<std::size_t>(v.at("job").as_number());
  row.name = v.at("name").as_string();
  row.device = v.at("device").as_string();
  row.method = v.at("method").as_string();
  row.seed = static_cast<std::uint64_t>(v.at("seed").as_number());
  row.prefab_fom = v.at("prefab_fom").as_number();
  if (const io::json_value* mc = v.find("postfab")) {
    row.postfab_samples = static_cast<std::size_t>(mc->at("samples").as_number());
    row.postfab_mean = mc->at("mean").as_number();
    row.postfab_std = mc->at("std").as_number();
    row.postfab_min = mc->at("min").as_number();
    row.postfab_max = mc->at("max").as_number();
  }
  row.seconds = v.at("seconds").as_number();
  row.attempt = static_cast<std::size_t>(v.at("attempt").as_number());
  if (const io::json_value* d = v.find("artifact_dir")) row.artifact_dir = d->as_string();
  if (const io::json_value* r = v.find("recipe")) row.recipe = r->as_string();
  return row;
}

std::string result_store::store_path(const std::string& campaign_dir) {
  return (std::filesystem::path(campaign_dir) / "results.jsonl").string();
}

namespace {

std::string prepared_store_path(const std::string& campaign_dir) {
  std::filesystem::create_directories(campaign_dir);
  return result_store::store_path(campaign_dir);
}

}  // namespace

result_store::result_store(const std::string& campaign_dir)
    : out_(prepared_store_path(campaign_dir), "result_store") {}

void result_store::append(const job_result_row& row) { out_.append(row.to_json()); }

std::vector<job_result_row> result_store::load(const std::string& campaign_dir) {
  std::map<std::size_t, job_result_row> latest;
  replay_jsonl(store_path(campaign_dir), "result_store",
               [&latest](const io::json_value& record) {
                 job_result_row row = job_result_row::from_json(record);
                 const std::size_t index = row.job_index;
                 latest.insert_or_assign(index, std::move(row));
               });
  std::vector<job_result_row> rows;
  rows.reserve(latest.size());
  for (auto& [index, row] : latest) {
    (void)index;
    rows.push_back(std::move(row));
  }
  return rows;
}

std::size_t result_store::count_rows(const std::string& campaign_dir) {
  std::set<std::size_t> jobs;
  replay_jsonl_lines(
      store_path(campaign_dir), "result_store", [&jobs](const std::string& line) {
        // Fast path: rows this store writes start exactly with {"job":N, —
        // peel the index straight off the text. Anything else (hand-edited
        // or foreign rows) goes through the full parser.
        const std::string prefix = "{\"job\":";
        if (line.rfind(prefix, 0) == 0) {
          std::size_t value = 0;
          std::size_t i = prefix.size();
          const std::size_t start = i;
          while (i < line.size() && line[i] >= '0' && line[i] <= '9')
            value = value * 10 + static_cast<std::size_t>(line[i++] - '0');
          if (i > start && i < line.size() && (line[i] == ',' || line[i] == '}')) {
            jobs.insert(value);
            return;
          }
        }
        jobs.insert(static_cast<std::size_t>(
            io::json_value::parse(line).at("job").as_number()));
      });
  return jobs.size();
}

// ------------------------------------------------------------------ report --

namespace {

struct aggregate {
  std::size_t n = 0;
  double prefab_sum = 0.0;
  double postfab_sum = 0.0;
  double postfab_std_sum = 0.0;
  std::size_t postfab_n = 0;

  void add(const job_result_row& row) {
    ++n;
    prefab_sum += row.prefab_fom;
    if (row.postfab_samples > 0) {
      ++postfab_n;
      postfab_sum += row.postfab_mean;
      postfab_std_sum += row.postfab_std;
    }
  }

  std::string cell() const {
    if (n == 0) return "-";
    if (postfab_n == 0) return io::console_table::sci(prefab_sum / static_cast<double>(n));
    return io::console_table::sci(postfab_sum / static_cast<double>(postfab_n)) + " +- " +
           io::console_table::sci(postfab_std_sum / static_cast<double>(postfab_n));
  }
};

}  // namespace

std::string render_report(const campaign_spec& spec,
                          const std::vector<job_result_row>& rows) {
  std::ostringstream out;
  const std::size_t total = spec.job_count();
  out << "campaign '" << spec.name << "': " << rows.size() << "/" << total
      << " jobs in the result store\n\n";

  // Table 1/3 layout: methods down, devices across, each cell the post-fab
  // FoM mean +- std aggregated over the seed/override axes (falling back to
  // the prefab FoM when no Monte Carlo was planned).
  std::map<std::string, std::map<std::string, aggregate>> grid;  // method -> device
  for (const job_result_row& row : rows) grid[row.method][row.device].add(row);

  std::vector<std::string> header{"method"};
  for (const std::string& device : spec.devices) header.push_back(device);
  io::console_table table(header);
  for (const std::string& method : spec.methods) {
    std::vector<std::string> cells{method};
    for (const std::string& device : spec.devices) cells.push_back(grid[method][device].cell());
    table.add_row(cells);
  }
  out << table.render("Post-fab FoM (mean +- std over seeds)") << "\n";

  // Method provenance legend: the resolved-recipe signature each method name
  // stands for (campaign-local hybrids are only defined here, so the report
  // stays interpretable without the campaign.json).
  std::map<std::string, std::string> signatures;
  for (const job_result_row& row : rows)
    if (!row.recipe.empty()) signatures.emplace(row.method, row.recipe);
  if (!signatures.empty()) {
    io::console_table legend({"method", "recipe"});
    for (const std::string& method : spec.methods) {
      const auto it = signatures.find(method);
      if (it != signatures.end()) legend.add_row({method, it->second});
    }
    out << "\n" << legend.render("Method recipes") << "\n";
  }

  // Per-device detail: the Table 2-style per-job statistics.
  for (const std::string& device : spec.devices) {
    io::console_table detail(
        {"method", "seed", "prefab FoM", "postfab mean", "postfab std", "worst", "s"});
    bool any = false;
    for (const job_result_row& row : rows) {
      if (row.device != device) continue;
      any = true;
      const bool mc = row.postfab_samples > 0;
      // "worst" is the Monte-Carlo extreme on the bad side; the FoM direction
      // is device-specific, so report the wider |deviation| from the mean.
      const double worst =
          mc ? (std::abs(row.postfab_max - row.postfab_mean) >
                        std::abs(row.postfab_mean - row.postfab_min)
                    ? row.postfab_max
                    : row.postfab_min)
             : 0.0;
      detail.add_row({row.method, std::to_string(row.seed),
                      io::console_table::sci(row.prefab_fom),
                      mc ? io::console_table::sci(row.postfab_mean) : "-",
                      mc ? io::console_table::sci(row.postfab_std) : "-",
                      mc ? io::console_table::sci(worst) : "-",
                      io::console_table::num(row.seconds, 1)});
    }
    if (any) out << "\n" << detail.render("Device: " + device);
  }
  return out.str();
}

}  // namespace boson::runtime
