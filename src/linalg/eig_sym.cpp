#include "linalg/eig_sym.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.h"

namespace boson::la {

namespace {

/// Sort eigenpairs ascending by eigenvalue (columns of `vectors` follow).
template <class T>
void sort_eigenpairs(eig_result<T>& r) {
  const std::size_t n = r.values.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return r.values[a] < r.values[b]; });
  dvec sorted_values(n);
  dense_matrix<T> sorted_vectors(r.vectors.rows(), n);
  for (std::size_t j = 0; j < n; ++j) {
    sorted_values[j] = r.values[order[j]];
    for (std::size_t i = 0; i < r.vectors.rows(); ++i)
      sorted_vectors(i, j) = r.vectors(i, order[j]);
  }
  r.values = std::move(sorted_values);
  r.vectors = std::move(sorted_vectors);
}

double sign_with(double magnitude, double sign_of) {
  return sign_of >= 0.0 ? std::abs(magnitude) : -std::abs(magnitude);
}

/// Householder reduction of a real symmetric matrix to tridiagonal form
/// (classic EISPACK "tred2"). On return `a` holds the accumulated orthogonal
/// transform Q, `d` the diagonal and `e` the subdiagonal (e[0] = 0).
void tred2(dmat& a, dvec& d, dvec& e) {
  const std::size_t n = a.rows();
  d.assign(n, 0.0);
  e.assign(n, 0.0);
  if (n == 1) {
    d[0] = a(0, 0);
    a(0, 0) = 1.0;
    return;
  }

  for (std::size_t i = n - 1; i >= 1; --i) {
    const std::size_t l = i - 1;
    double h = 0.0;
    double scale = 0.0;
    if (l > 0) {
      for (std::size_t k = 0; k <= l; ++k) scale += std::abs(a(i, k));
      if (scale == 0.0) {
        e[i] = a(i, l);
      } else {
        for (std::size_t k = 0; k <= l; ++k) {
          a(i, k) /= scale;
          h += a(i, k) * a(i, k);
        }
        double f = a(i, l);
        double g = (f >= 0.0) ? -std::sqrt(h) : std::sqrt(h);
        e[i] = scale * g;
        h -= f * g;
        a(i, l) = f - g;
        f = 0.0;
        for (std::size_t j = 0; j <= l; ++j) {
          a(j, i) = a(i, j) / h;
          g = 0.0;
          for (std::size_t k = 0; k <= j; ++k) g += a(j, k) * a(i, k);
          for (std::size_t k = j + 1; k <= l; ++k) g += a(k, j) * a(i, k);
          e[j] = g / h;
          f += e[j] * a(i, j);
        }
        const double hh = f / (h + h);
        for (std::size_t j = 0; j <= l; ++j) {
          f = a(i, j);
          e[j] = g = e[j] - hh * f;
          for (std::size_t k = 0; k <= j; ++k) a(j, k) -= f * e[k] + g * a(i, k);
        }
      }
    } else {
      e[i] = a(i, l);
    }
    d[i] = h;
  }

  d[0] = 0.0;
  e[0] = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    if (d[i] != 0.0) {
      for (std::size_t j = 0; j < i; ++j) {
        double g = 0.0;
        for (std::size_t k = 0; k < i; ++k) g += a(i, k) * a(k, j);
        for (std::size_t k = 0; k < i; ++k) a(k, j) -= g * a(k, i);
      }
    }
    d[i] = a(i, i);
    a(i, i) = 1.0;
    for (std::size_t j = 0; j < i; ++j) {
      a(j, i) = 0.0;
      a(i, j) = 0.0;
    }
  }
}

/// Implicit-shift QL iteration on a symmetric tridiagonal matrix with
/// eigenvector accumulation (classic EISPACK "tql2"). `z` must contain the
/// transform that produced the tridiagonal form (identity for a matrix that
/// is already tridiagonal).
void tql2(dvec& d, dvec& e, dmat& z) {
  const std::size_t n = d.size();
  if (n <= 1) return;
  for (std::size_t i = 1; i < n; ++i) e[i - 1] = e[i];
  e[n - 1] = 0.0;

  for (std::size_t l = 0; l < n; ++l) {
    std::size_t iterations = 0;
    std::size_t m;
    do {
      for (m = l; m + 1 < n; ++m) {
        const double dd = std::abs(d[m]) + std::abs(d[m + 1]);
        if (std::abs(e[m]) <= 1e-300 + std::numeric_limits<double>::epsilon() * dd) break;
      }
      if (m != l) {
        check_numeric(iterations++ < 64, "tql2: QL iteration failed to converge");
        double g = (d[l + 1] - d[l]) / (2.0 * e[l]);
        double r = std::hypot(g, 1.0);
        g = d[m] - d[l] + e[l] / (g + sign_with(r, g));
        double s = 1.0;
        double c = 1.0;
        double p = 0.0;
        for (std::size_t ii = m; ii-- > l;) {
          const std::size_t i = ii;
          double f = s * e[i];
          const double b = c * e[i];
          r = std::hypot(f, g);
          e[i + 1] = r;
          if (r == 0.0) {
            d[i + 1] -= p;
            e[m] = 0.0;
            break;
          }
          s = f / r;
          c = g / r;
          g = d[i + 1] - p;
          r = (d[i] - g) * s + 2.0 * c * b;
          p = s * r;
          d[i + 1] = g + p;
          g = c * r - b;
          for (std::size_t k = 0; k < n; ++k) {
            f = z(k, i + 1);
            z(k, i + 1) = s * z(k, i) + c * f;
            z(k, i) = c * z(k, i) - s * f;
          }
        }
        if (r == 0.0 && m - l > 1) continue;
        d[l] -= p;
        e[l] = g;
        e[m] = 0.0;
      }
    } while (m != l);
  }
}

}  // namespace

eig_result<double> jacobi_eig(dmat a, double tol, std::size_t max_sweeps) {
  require(a.rows() == a.cols(), "jacobi_eig: matrix must be square");
  const std::size_t n = a.rows();
  eig_result<double> result;
  result.vectors = dmat::identity(n);
  result.values.assign(n, 0.0);
  if (n == 0) return result;

  double initial_off = 0.0;
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i + 1; j < n; ++j) initial_off += a(i, j) * a(i, j);
  initial_off = std::sqrt(initial_off);
  const double threshold = std::max(tol * (initial_off + 1e-300), 1e-300);

  for (std::size_t sweep = 0; sweep < max_sweeps; ++sweep) {
    double off = 0.0;
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = i + 1; j < n; ++j) off += a(i, j) * a(i, j);
    if (std::sqrt(off) <= threshold) break;

    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const double apq = a(p, q);
        if (std::abs(apq) <= 1e-300) continue;
        const double theta = (a(q, q) - a(p, p)) / (2.0 * apq);
        const double t = sign_with(1.0, theta) /
                         (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        for (std::size_t k = 0; k < n; ++k) {
          const double akp = a(k, p);
          const double akq = a(k, q);
          a(k, p) = c * akp - s * akq;
          a(k, q) = s * akp + c * akq;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double apk = a(p, k);
          const double aqk = a(q, k);
          a(p, k) = c * apk - s * aqk;
          a(q, k) = s * apk + c * aqk;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double vkp = result.vectors(k, p);
          const double vkq = result.vectors(k, q);
          result.vectors(k, p) = c * vkp - s * vkq;
          result.vectors(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }

  for (std::size_t i = 0; i < n; ++i) result.values[i] = a(i, i);
  sort_eigenpairs(result);
  return result;
}

eig_result<double> tridiag_eig(dvec diag, dvec sub) {
  require(diag.size() == sub.size(), "tridiag_eig: diag/sub size mismatch");
  const std::size_t n = diag.size();
  eig_result<double> result;
  result.vectors = dmat::identity(n);
  result.values = std::move(diag);
  tql2(result.values, sub, result.vectors);
  sort_eigenpairs(result);
  return result;
}

eig_result<double> sym_eig(dmat a) {
  require(a.rows() == a.cols(), "sym_eig: matrix must be square");
  eig_result<double> result;
  if (a.rows() == 0) return result;
  dvec d;
  dvec e;
  tred2(a, d, e);
  tql2(d, e, a);
  result.values = std::move(d);
  result.vectors = std::move(a);
  sort_eigenpairs(result);
  return result;
}

eig_result<cplx> hermitian_eig(const cmat& a) {
  require(a.rows() == a.cols(), "hermitian_eig: matrix must be square");
  const std::size_t n = a.rows();
  eig_result<cplx> result;
  if (n == 0) return result;

  dmat embedded(2 * n, 2 * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      const double re = a(i, j).real();
      const double im = a(i, j).imag();
      embedded(i, j) = re;
      embedded(n + i, n + j) = re;
      embedded(i, n + j) = -im;
      embedded(n + i, j) = im;
    }
  }

  eig_result<double> real_eig = sym_eig(std::move(embedded));

  // Every eigenvalue of A shows up twice in the embedding. Walk the sorted
  // spectrum in groups of (numerically) equal eigenvalues and Gram-Schmidt
  // the reconstructed complex candidates down to half the group size.
  double scale = 0.0;
  for (const double v : real_eig.values) scale = std::max(scale, std::abs(v));
  const double group_tol = std::max(1e-12, 1e-9 * scale);

  result.values.reserve(n);
  result.vectors = cmat(n, n);
  std::size_t out = 0;

  std::size_t begin = 0;
  while (begin < 2 * n && out < n) {
    std::size_t end = begin + 1;
    while (end < 2 * n &&
           std::abs(real_eig.values[end] - real_eig.values[begin]) <= group_tol)
      ++end;
    const std::size_t expected = (end - begin) / 2;

    std::vector<cvec> accepted;
    for (std::size_t j = begin; j < end && accepted.size() < expected; ++j) {
      cvec candidate(n);
      for (std::size_t i = 0; i < n; ++i)
        candidate[i] = cplx(real_eig.vectors(i, j), real_eig.vectors(n + i, j));
      for (const auto& q : accepted) {
        cplx proj{};
        for (std::size_t i = 0; i < n; ++i) proj += std::conj(q[i]) * candidate[i];
        for (std::size_t i = 0; i < n; ++i) candidate[i] -= proj * q[i];
      }
      double norm = 0.0;
      for (const auto& v : candidate) norm += std::norm(v);
      norm = std::sqrt(norm);
      if (norm > 1e-6) {
        for (auto& v : candidate) v /= norm;
        accepted.push_back(std::move(candidate));
      }
    }
    check_numeric(accepted.size() == expected,
                  "hermitian_eig: failed to reconstruct complex eigenvectors");

    for (const auto& q : accepted) {
      if (out >= n) break;
      result.values.push_back(real_eig.values[begin]);
      for (std::size_t i = 0; i < n; ++i) result.vectors(i, out) = q[i];
      ++out;
    }
    begin = end;
  }
  check_numeric(out == n, "hermitian_eig: eigenvalue pairing failed");
  return result;
}

}  // namespace boson::la
