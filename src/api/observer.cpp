#include "api/observer.h"

#include "common/log.h"

namespace boson::api {

void log_observer::on_event(const progress_event& event) {
  switch (event.kind) {
    case progress_event::phase::experiment_started:
      log_info("session[", event.experiment, "]: started");
      break;
    case progress_event::phase::stage_started:
      log_info("session[", event.experiment, "]: ", event.message);
      break;
    case progress_event::phase::iteration_finished:
      log_debug("session[", event.experiment, "]: iteration ", event.iteration + 1, "/",
                event.total_iterations, " loss=", event.loss);
      break;
    case progress_event::phase::artifact_written:
      log_info("session[", event.experiment, "]: wrote ", event.message);
      break;
    case progress_event::phase::experiment_finished:
      log_info("session[", event.experiment, "]: finished");
      break;
  }
}

}  // namespace boson::api
