// Quickstart: inverse-design a 90-degree waveguide bend with BOSON-1.
//
// Demonstrates the minimal end-to-end flow of the declarative API:
//   1. describe the experiment as an `api::experiment_spec` (device +
//      method + evaluation plan — the same structure boson_cli reads from
//      JSON),
//   2. execute it through an `api::session`, which streams progress through
//      common/log and writes the artifact directory,
//   3. read the results back from the returned `experiment_result`.
//
// Run time: a couple of minutes at the default settings; set
// BOSON_BENCH_SCALE=0.2 for a ~20 s smoke run.

#include <cstdio>

#include "api/session.h"
#include "sim/backend.h"
#include "sim/cache.h"

int main() {
  using namespace boson;

  // 1. The experiment as data: the 90-degree bend benchmark, the full
  //    BOSON-1 recipe, and a post-fabrication Monte Carlo. The equivalent
  //    JSON could be executed with `boson_cli run`.
  api::experiment_spec spec;
  spec.name = "quickstart_bend";
  spec.device = "bend";
  spec.method = "boson";
  spec.evaluation = {api::eval_step::monte_carlo(20)};

  // 2. Execute. The session validates the spec, resolves the registries,
  //    runs the variation-aware optimization and the evaluation plan, and
  //    writes summary.json / trajectory.csv / mask.pgm under ./quickstart_out.
  api::session_options options;
  options.output_dir = "quickstart_out";
  api::session session(options);
  const api::experiment_result result = session.run(spec);

  // 3. Report.
  const auto& method = result.method;
  std::printf("\nBOSON-1 on the %s benchmark\n", spec.device.c_str());
  std::printf("  FDFD backend         : %s (BOSON_BACKEND selects banded|bicgstab|gmres)\n",
              sim::to_string(sim::default_backend()));
  std::printf("  pre-fab transmission : %.4f\n", method.prefab_fom);
  std::printf("  post-fab transmission: %.4f +- %.4f  (%zu Monte-Carlo samples)\n",
              method.postfab.fom_mean, method.postfab.fom_std, method.postfab.samples);
  std::printf("  post-fab reflection  : %.4f\n",
              method.postfab.metric_means.at("reflection"));

  const auto cache = sim::engine_cache::global().stats();
  std::printf("  operator cache       : %zu hits / %zu misses (capacity %zu)\n",
              cache.hits, cache.misses, sim::engine_cache::global().capacity());

  std::printf("  artifacts            : %s (summary.json, trajectory.csv, mask.pgm)\n",
              result.artifact_dir.c_str());
  return 0;
}
