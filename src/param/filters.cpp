#include "param/filters.h"

#include <cmath>

#include "common/error.h"

namespace boson::param {

gaussian_blur::gaussian_blur(std::size_t nx, std::size_t ny, double radius_cells)
    : nx_(nx), ny_(ny) {
  require(nx > 0 && ny > 0, "gaussian_blur: empty shape");
  if (radius_cells <= 0.0) {
    half_ = 0;
    kernel_ = {1.0};
    weights_ = array2d<double>(nx, ny, 1.0);
    return;
  }
  half_ = static_cast<std::size_t>(std::ceil(3.0 * radius_cells));
  kernel_.resize(2 * half_ + 1);
  double sum = 0.0;
  for (std::size_t i = 0; i < kernel_.size(); ++i) {
    const double u = static_cast<double>(i) - static_cast<double>(half_);
    kernel_[i] = std::exp(-0.5 * (u * u) / (radius_cells * radius_cells));
    sum += kernel_[i];
  }
  for (auto& k : kernel_) k /= sum;

  array2d<double> ones(nx, ny, 1.0);
  weights_ = array2d<double>(nx, ny);
  convolve(ones, weights_);
}

void gaussian_blur::convolve(const array2d<double>& in, array2d<double>& out) const {
  require(in.nx() == nx_ && in.ny() == ny_, "gaussian_blur: shape mismatch");
  const auto h = static_cast<std::ptrdiff_t>(half_);
  array2d<double> tmp(nx_, ny_, 0.0);
  // x pass (zero extension outside the domain)
  for (std::ptrdiff_t ix = 0; ix < static_cast<std::ptrdiff_t>(nx_); ++ix) {
    for (std::size_t iy = 0; iy < ny_; ++iy) {
      double acc = 0.0;
      for (std::ptrdiff_t u = -h; u <= h; ++u) {
        const std::ptrdiff_t sx = ix + u;
        if (sx < 0 || sx >= static_cast<std::ptrdiff_t>(nx_)) continue;
        acc += kernel_[static_cast<std::size_t>(u + h)] *
               in(static_cast<std::size_t>(sx), iy);
      }
      tmp(static_cast<std::size_t>(ix), iy) = acc;
    }
  }
  // y pass
  if (out.nx() != nx_ || out.ny() != ny_) out = array2d<double>(nx_, ny_);
  for (std::size_t ix = 0; ix < nx_; ++ix) {
    for (std::ptrdiff_t iy = 0; iy < static_cast<std::ptrdiff_t>(ny_); ++iy) {
      double acc = 0.0;
      for (std::ptrdiff_t u = -h; u <= h; ++u) {
        const std::ptrdiff_t sy = iy + u;
        if (sy < 0 || sy >= static_cast<std::ptrdiff_t>(ny_)) continue;
        acc += kernel_[static_cast<std::size_t>(u + h)] *
               tmp(ix, static_cast<std::size_t>(sy));
      }
      out(ix, static_cast<std::size_t>(iy)) = acc;
    }
  }
}

void gaussian_blur::forward(const array2d<double>& in, array2d<double>& out) const {
  if (is_identity()) {
    out = in;
    return;
  }
  convolve(in, out);
  for (std::size_t i = 0; i < out.size(); ++i) out.data()[i] /= weights_.data()[i];
}

void gaussian_blur::adjoint(const array2d<double>& g, array2d<double>& out) const {
  if (is_identity()) {
    out = g;
    return;
  }
  array2d<double> scaled(nx_, ny_);
  for (std::size_t i = 0; i < scaled.size(); ++i)
    scaled.data()[i] = g.data()[i] / weights_.data()[i];
  convolve(scaled, out);
}

}  // namespace boson::param
