/// \file cache.h
/// LRU cache of prepared simulation engines, keyed by a digest of the
/// operator state (permittivity bytes, k0, PML, grid, backend settings).
/// Post-fab Monte Carlo and process-window scans repeat identical operators
/// — hard-binarized lithography corners collide across samples, and every
/// scan point re-runs the same reference-normalization solve — so reusing
/// the factorization amortizes the dominant per-sample cost. Digest
/// collisions are guarded by a full key comparison on hit.
///
/// On a miss with the banded backend and reuse enabled, the cache also scans
/// its entries for a *nearby* operator — same grid/PML/k0/settings, with an
/// RMS permittivity change within `settings.reuse_max_delta` of the cached
/// nominal — and, when one is found, builds a reuse engine that serves the
/// perturbed operator through the nominal's factorization instead of
/// preparing its own (see `make_nearby_backend`).

#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "common/array2d.h"
#include "grid/grid2d.h"
#include "grid/pml.h"
#include "sim/engine.h"

namespace boson::sim {

/// Global operator-cache kill switch: false when the BOSON_SIM_CACHE
/// environment variable is set to 0, true otherwise. Re-read on every call
/// so drivers and tests can toggle caching at runtime; every
/// `use_operator_cache` option in the library is gated on this.
bool operator_cache_enabled();

/// Thread-safe LRU cache of shared, immutable simulation engines.
class engine_cache {
 public:
  /// `capacity` bounds the number of retained engines (each holds a full
  /// factorization, so keep this small). Must be at least 1.
  explicit engine_cache(std::size_t capacity);

  /// Process-wide cache used by the evaluation protocols. Capacity comes
  /// from BOSON_SIM_CACHE (default 4).
  static engine_cache& global();

  /// Return the cached engine for this operator state, or build, insert and
  /// return a new one (evicting the least-recently-used entry at capacity).
  std::shared_ptr<const simulation_engine> acquire(const grid2d& grid, const pml_spec& pml,
                                                   double k0, const array2d<double>& eps,
                                                   const engine_settings& settings);

  struct cache_stats {
    std::size_t hits = 0;
    std::size_t misses = 0;
    std::size_t evictions = 0;
    std::size_t entries = 0;
    std::size_t reuse_hits = 0;  ///< misses served by a nearby-operator engine
  };
  cache_stats stats() const;

  /// Drop every cached engine (in-flight shared_ptrs stay valid) and reset
  /// the statistics.
  void clear();

  std::size_t capacity() const { return capacity_; }

 private:
  struct entry {
    std::uint64_t digest = 0;
    std::shared_ptr<const simulation_engine> engine;
  };

  bool matches(const entry& e, const grid2d& grid, const pml_spec& pml, double k0,
               const array2d<double>& eps, const engine_settings& settings) const;

  /// Best nominal engine for serving `eps` through the reuse path, or null
  /// when no cached entry is close enough. Reuse entries contribute their
  /// own nominal, so a chain of perturbations never stacks preconditioners.
  /// Caller holds `mutex_`.
  std::shared_ptr<const simulation_engine> find_nominal(
      const grid2d& grid, const pml_spec& pml, double k0, const array2d<double>& eps,
      const engine_settings& settings) const;

  std::size_t capacity_;
  mutable std::mutex mutex_;
  std::list<entry> lru_;  ///< front = most recently used
  std::unordered_map<std::uint64_t, std::list<entry>::iterator> index_;
  cache_stats stats_;
};

}  // namespace boson::sim
