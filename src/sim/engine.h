/// \file engine.h
/// The simulation engine: one assembled FDFD operator (grid + PML + k0 +
/// permittivity) prepared behind a pluggable linear backend. The engine
/// batches all excitations and adjoints of one variation corner through a
/// single preparation (multi-RHS substitution on the banded path), and is
/// immutable after construction so `engine_cache` can share one instance
/// across threads.

#pragma once

#include <memory>
#include <vector>

#include "common/array2d.h"
#include "common/types.h"
#include "fdfd/solver.h"
#include "grid/grid2d.h"
#include "grid/pml.h"
#include "sim/backend.h"

namespace boson::sim {

/// One prepared FDFD simulation: operator state plus a ready linear backend.
/// All solve methods are const and thread-safe; construction does the
/// expensive work (assembly + factorization / ILU setup) eagerly.
class simulation_engine {
 public:
  simulation_engine(const grid2d& grid, const pml_spec& pml, double k0,
                    const array2d<double>& eps, engine_settings settings = {});

  simulation_engine(const simulation_engine&) = delete;
  simulation_engine& operator=(const simulation_engine&) = delete;

  const grid2d& grid() const { return solver_.grid(); }
  const pml_spec& pml() const { return pml_; }
  double k0() const { return solver_.k0(); }
  const array2d<double>& eps() const { return solver_.eps(); }
  const engine_settings& settings() const { return settings_; }
  const char* backend_name() const { return backend_->name(); }

  /// The wrapped FDFD solver (stretch profiles, CSR assembly, gradients).
  const fdfd::fdfd_solver& solver() const { return solver_; }

  /// Solve A e = b for one current-density excitation.
  array2d<cplx> solve_excitation(const array2d<cplx>& current_density) const;

  /// Batched forward solves: one field per excitation, all pushed through
  /// the prepared operator together.
  std::vector<array2d<cplx>> solve_excitations(
      const std::vector<array2d<cplx>>& current_densities) const;

  /// Solve the adjoint system A lambda = g for one sparse field gradient.
  array2d<cplx> solve_adjoint(const fdfd::field_gradient& g) const;

  /// Batched adjoint solves for the monitor gradients of one corner.
  std::vector<array2d<cplx>> solve_adjoints(
      const std::vector<fdfd::field_gradient>& gradients) const;

  /// Accumulate dF/deps from one (forward, adjoint) field pair.
  void accumulate_eps_gradient(const array2d<cplx>& field,
                               const array2d<cplx>& adjoint_field,
                               array2d<double>& grad) const {
    solver_.accumulate_eps_gradient(field, adjoint_field, grad);
  }

 private:
  std::vector<array2d<cplx>> solve_batch(std::vector<cvec> rhs) const;

  pml_spec pml_;
  engine_settings settings_;
  fdfd::fdfd_solver solver_;
  std::unique_ptr<linear_backend> backend_;
};

}  // namespace boson::sim
