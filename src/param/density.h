#pragma once

#include <cstddef>

#include "param/filters.h"
#include "param/parameterization.h"

namespace boson::param {

/// Pixel-wise density parameterization (the paper's 'Density' baseline).
///
/// Each design cell carries one latent variable; the chain is
///     x = sigmoid(theta)            (box constraint without clipping)
///     x_bar = blur(x)               (optional MFS control, '-M' variants)
///     rho = tanh_project(x_bar)     (pushes toward binary with sharpness beta)
class density_param : public parameterization {
 public:
  /// `blur_radius_cells` <= 0 disables MFS control.
  density_param(std::size_t design_nx, std::size_t design_ny, double blur_radius_cells,
                double beta = 8.0, double eta = 0.5);

  std::size_t num_params() const override { return design_nx_ * design_ny_; }
  std::size_t nx() const override { return design_nx_; }
  std::size_t ny() const override { return design_ny_; }

  void forward(const dvec& theta, array2d<double>& rho) const override;
  void backward(const dvec& theta, const array2d<double>& d_rho,
                dvec& d_theta) const override;

  void set_sharpness(double beta) override { project_.beta = beta; }
  double sharpness() const override { return project_.beta; }

  bool has_mfs_blur() const { return !blur_.is_identity(); }

 private:
  std::size_t design_nx_;
  std::size_t design_ny_;
  gaussian_blur blur_;
  tanh_projection project_;
};

}  // namespace boson::param
