#pragma once

#include <cstddef>

#include "common/types.h"
#include "sparse/csr.h"

namespace boson::sp {

/// Zero-fill incomplete LU factorization of a complex CSR matrix, used to
/// precondition BiCGSTAB. Kept as an alternative solve path for grids whose
/// bandwidth makes the direct banded factorization unattractive.
class ilu0 {
 public:
  explicit ilu0(const csr_c& a);

  /// Apply z = (LU)^{-1} r.
  cvec apply(const cvec& r) const;

 private:
  csr_c factors_;               // L (unit diagonal, strictly lower) and U share the pattern of A
  std::vector<std::size_t> diag_;  // position of the diagonal entry in each row
};

/// Outcome of an iterative solve.
struct krylov_result {
  bool converged = false;
  std::size_t iterations = 0;
  double relative_residual = 0.0;
};

/// Preconditioned BiCGSTAB for complex non-Hermitian systems. `x` carries the
/// initial guess in and the solution out.
krylov_result bicgstab(const csr_c& a, const cvec& b, cvec& x, const ilu0* precond,
                       double tol = 1e-8, std::size_t max_iterations = 2000);

/// Restarted GMRES(m) with optional left ILU(0) preconditioning. More robust
/// than BiCGSTAB on strongly indefinite Helmholtz systems at the cost of
/// storing `restart` basis vectors.
krylov_result gmres(const csr_c& a, const cvec& b, cvec& x, const ilu0* precond,
                    std::size_t restart = 60, double tol = 1e-8,
                    std::size_t max_iterations = 2000);

}  // namespace boson::sp
