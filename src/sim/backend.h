/// \file backend.h
/// Pluggable linear-solver backends for the FDFD simulation engine. One
/// `linear_backend` wraps one prepared operator (banded LU factorization or
/// CSR + ILU(0)) and answers batched solves; `backend_kind` selects among the
/// banded direct solver and the ILU(0)-preconditioned Krylov methods, with a
/// `BOSON_BACKEND` environment override for experiments.

#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "common/types.h"

namespace boson::fdfd {
class fdfd_solver;
}

namespace boson::sim {

/// Which linear solver answers the FDFD systems of one engine.
enum class backend_kind {
  banded,    ///< direct banded LU with partial pivoting (default)
  bicgstab,  ///< ILU(0)-preconditioned BiCGSTAB on the CSR operator
  gmres,     ///< ILU(0)-preconditioned restarted GMRES on the CSR operator
};

const char* to_string(backend_kind kind);

/// Parse a backend name ("banded"/"direct"/"lu", "bicgstab", "gmres").
/// Throws `bad_argument` on anything else.
backend_kind backend_from_string(const std::string& name);

/// Backend selected by the BOSON_BACKEND environment variable, `banded` when
/// unset. Re-read on every call so drivers and tests can switch at runtime.
backend_kind default_backend();

/// Per-engine solver configuration. The iterative controls are ignored by
/// the banded direct backend.
struct engine_settings {
  backend_kind backend = default_backend();
  double tol = 1e-10;                ///< iterative relative-residual target
  std::size_t max_iterations = 4000; ///< iterative iteration cap
  std::size_t gmres_restart = 80;    ///< GMRES restart length

  /// Nearby-operator reuse: allow the engine cache to serve a perturbed
  /// operator from a cached *nominal* preparation (the nominal banded LU
  /// preconditions a short GMRES outer loop on the perturbed operator), and
  /// allow the Krylov backends to recycle solutions across adjacent solves.
  /// Also gated globally by the BOSON_SIM_REUSE environment kill switch.
  bool reuse = true;
  /// Perturbation-size heuristic: a cached nominal is only reused when the
  /// RMS permittivity change relative to the nominal's RMS permittivity is
  /// at most this fraction; larger perturbations re-prepare from scratch.
  double reuse_max_delta = 0.5;
  /// Outer-iteration cap of the reuse path before it falls back to a full
  /// re-preparation of the perturbed operator.
  std::size_t reuse_max_iterations = 32;
};

/// Nearby-operator reuse kill switch: false when the BOSON_SIM_REUSE
/// environment variable is set to 0, true otherwise (reuse is on by
/// default). Re-read on every call so drivers and tests can toggle the
/// reuse path at runtime without rebuilding engines.
bool operator_reuse_enabled();

/// Process-wide statistics of the nearby-operator reuse and Krylov
/// recycling paths, surfaced through the engine-cache stats block of
/// summary.json / batch_summary.json and the solver benchmarks.
struct reuse_stats {
  std::size_t prepares_avoided = 0;     ///< perturbed solves served off a nominal LU
  std::size_t refinement_solves = 0;    ///< right-hand sides pushed through the reuse path
  std::size_t refinement_iterations = 0;///< total outer iterations across those solves
  std::size_t fallbacks = 0;            ///< reuse solves that re-prepared after non-convergence
  std::size_t recycle_guesses = 0;      ///< Krylov warm starts served from a recycle space
  std::size_t solution_reuses = 0;      ///< identical solve batches answered from an engine memo
};

/// Snapshot / reset of the global reuse counters (monotonic atomics).
reuse_stats reuse_statistics();
void reset_reuse_statistics();

/// A prepared linear solver for one FDFD operator. Preparation (banded
/// factorization or ILU(0) setup) happens in `make_backend`; `solve` is
/// const and safe to call from several threads concurrently.
class linear_backend {
 public:
  virtual ~linear_backend() = default;

  virtual const char* name() const = 0;

  /// Solve A x = b for every right-hand side of one batch; returns the
  /// solutions in order. Iterative backends throw `numeric_error` when a
  /// solve fails to reach the residual target.
  virtual std::vector<cvec> solve(const std::vector<cvec>& rhs) const = 0;
};

/// Prepare the backend selected by `settings` for the solver's operator.
/// The returned backend references `solver` and must not outlive it.
std::unique_ptr<linear_backend> make_backend(const fdfd::fdfd_solver& solver,
                                             const engine_settings& settings);

class simulation_engine;

/// Nearby-operator backend: serves `solver`'s (perturbed) operator without
/// factoring it, by applying the `nominal` engine's banded LU as a left
/// preconditioner inside a short GMRES outer loop on the perturbed CSR
/// operator. Non-convergence within `settings.reuse_max_iterations` falls
/// back to a full preparation of the perturbed operator (counted in the
/// reuse statistics); results agree with the re-prepare path to the solver
/// tolerance either way. The returned backend references `solver` and keeps
/// `nominal` alive.
std::unique_ptr<linear_backend> make_nearby_backend(
    const fdfd::fdfd_solver& solver, const engine_settings& settings,
    std::shared_ptr<const simulation_engine> nominal);

/// Increment helpers for the global reuse counters (internal use by the
/// backends, the engine cache, and the engine's solved-batch memo).
namespace reuse_counter {
void prepares_avoided(std::size_t n = 1);
void refinement(std::size_t solves, std::size_t iterations);
void fallback(std::size_t n = 1);
void recycle_guess(std::size_t n = 1);
void solution_reuse(std::size_t n = 1);
}  // namespace reuse_counter

}  // namespace boson::sim
