#include "core/mask_correction.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/log.h"
#include "fab/etch.h"
#include "optim/optimizer.h"
#include "param/filters.h"

namespace boson::core {

namespace {

double logit(double p) {
  const double q = std::clamp(p, 0.02, 0.98);
  return std::log(q / (1.0 - q));
}

}  // namespace

mask_correction_result correct_mask(const design_problem& problem,
                                    const array2d<double>& target,
                                    const mask_correction_options& options) {
  const auto& design = problem.spec().design;
  require(target.nx() == design.nx && target.ny() == design.ny,
          "correct_mask: target shape mismatch");
  const std::size_t corners =
      std::min(options.litho_corners, problem.fab().litho.size());
  require(corners >= 1, "correct_mask: need at least one lithography corner");

  const std::size_t h = problem.fab().halo;
  const std::size_t n = target.size();

  // Latent mask variables; the mask starts as (a softened copy of) the target.
  dvec theta(n);
  for (std::size_t i = 0; i < n; ++i) theta[i] = logit(target.data()[i]);

  const fab::etch_model etch(options.etch_beta, fab::etch_mode::soft);
  const array2d<double> eta_nominal =
      problem.fab().eole->field(dvec(problem.fab().eole->num_terms(), 0.0), 0.0);

  opt::adam optimizer(options.learning_rate);
  mask_correction_result result;

  auto mismatch_and_grad = [&](const dvec& th, dvec* grad) -> double {
    array2d<double> mask(design.nx, design.ny);
    for (std::size_t i = 0; i < n; ++i) mask.data()[i] = param::sigmoid(th[i]);
    const array2d<double> mask_ext = problem.embed_in_halo(mask);

    double loss = 0.0;
    array2d<double> d_mask_total(design.nx, design.ny, 0.0);
    for (std::size_t c = 0; c < corners; ++c) {
      const auto& litho = *problem.fab().litho[c];
      const fab::litho_forward fwd = litho.forward(mask_ext);
      const array2d<double> pattern = etch.forward(fwd.aerial, eta_nominal);

      // L2 mismatch over the design interior only.
      array2d<double> d_pattern(pattern.nx(), pattern.ny(), 0.0);
      for (std::size_t i = 0; i < design.nx; ++i) {
        for (std::size_t j = 0; j < design.ny; ++j) {
          const double r = pattern(h + i, h + j) - target(i, j);
          loss += r * r / static_cast<double>(n * corners);
          d_pattern(h + i, h + j) = 2.0 * r / static_cast<double>(n * corners);
        }
      }
      if (grad == nullptr) continue;

      array2d<double> d_aerial;
      array2d<double> d_eta;
      etch.backward(fwd.aerial, eta_nominal, d_pattern, d_aerial, d_eta);
      const array2d<double> d_mask_ext = litho.backward(fwd, d_aerial);
      for (std::size_t i = 0; i < design.nx; ++i)
        for (std::size_t j = 0; j < design.ny; ++j)
          d_mask_total(i, j) += d_mask_ext(h + i, h + j);
    }

    if (grad != nullptr) {
      grad->assign(n, 0.0);
      for (std::size_t i = 0; i < n; ++i) {
        const double s = mask.data()[i];
        (*grad)[i] = d_mask_total.data()[i] * param::sigmoid_derivative_from_value(s);
      }
    }
    return loss;
  };

  result.initial_mismatch = mismatch_and_grad(theta, nullptr);

  dvec grad;
  for (std::size_t it = 0; it < options.iterations; ++it) {
    const double loss = mismatch_and_grad(theta, &grad);
    optimizer.step(theta, grad);
    if (it + 1 == options.iterations) result.final_mismatch = loss;
    log_debug("correct_mask iter ", it, ": mismatch=", loss);
  }

  result.mask = array2d<double>(design.nx, design.ny);
  for (std::size_t i = 0; i < n; ++i) result.mask.data()[i] = param::sigmoid(theta[i]);
  return result;
}

}  // namespace boson::core
