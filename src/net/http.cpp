#include "net/http.h"

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <cstdio>

namespace boson::net {

namespace {

constexpr const char* kCrlf = "\r\n";

bool is_token_char(char c) {
  // RFC 7230 tchar: the characters legal in methods and header field names.
  static const std::string extra = "!#$%&'*+-.^_`|~";
  return std::isalnum(static_cast<unsigned char>(c)) != 0 ||
         extra.find(c) != std::string::npos;
}

bool is_token(const std::string& text) {
  if (text.empty()) return false;
  return std::all_of(text.begin(), text.end(), is_token_char);
}

std::string trim_ows(const std::string& text) {
  std::size_t b = text.find_first_not_of(" \t");
  if (b == std::string::npos) return "";
  std::size_t e = text.find_last_not_of(" \t");
  return text.substr(b, e - b + 1);
}

/// Strict non-negative decimal parse (Content-Length); rejects signs,
/// blanks, and trailing garbage — all of which smuggle framing ambiguity.
std::size_t parse_decimal(const std::string& text, const char* what) {
  if (text.empty()) throw http_error(400, std::string("http: empty ") + what);
  std::size_t value = 0;
  for (char c : text) {
    if (c < '0' || c > '9')
      throw http_error(400, std::string("http: malformed ") + what + " '" + text + "'");
    const std::size_t digit = static_cast<std::size_t>(c - '0');
    if (value > (SIZE_MAX - digit) / 10)
      throw http_error(413, std::string("http: ") + what + " overflows");
    value = value * 10 + digit;
  }
  return value;
}

std::size_t parse_chunk_size(const std::string& line) {
  // Chunk extensions (";ext=...") are tolerated and ignored.
  const std::string text = trim_ows(line.substr(0, line.find(';')));
  if (text.empty()) throw http_error(400, "http: empty chunk size");
  std::size_t value = 0;
  for (char c : text) {
    int digit;
    if (c >= '0' && c <= '9') digit = c - '0';
    else if (c >= 'a' && c <= 'f') digit = c - 'a' + 10;
    else if (c >= 'A' && c <= 'F') digit = c - 'A' + 10;
    else throw http_error(400, "http: malformed chunk size '" + text + "'");
    if (value > (SIZE_MAX - static_cast<std::size_t>(digit)) / 16)
      throw http_error(413, "http: chunk size overflows");
    value = value * 16 + static_cast<std::size_t>(digit);
  }
  return value;
}

/// Split one "Name: value" header line; shared by both parsers.
std::pair<std::string, std::string> split_header(const std::string& line) {
  const std::size_t colon = line.find(':');
  if (colon == std::string::npos)
    throw http_error(400, "http: header line without ':' ('" + line + "')");
  const std::string name = line.substr(0, colon);
  if (!is_token(name))
    throw http_error(400, "http: malformed header name '" + name + "'");
  return {name, trim_ows(line.substr(colon + 1))};
}

const std::string* find_header(
    const std::vector<std::pair<std::string, std::string>>& headers,
    const std::string& name) {
  for (const auto& [key, value] : headers)
    if (iequals(key, name)) return &value;
  return nullptr;
}

void append_chunk(std::string& out, const std::string& payload) {
  char size[32];
  std::snprintf(size, sizeof size, "%zx\r\n", payload.size());
  out += size;
  out += payload;
  out += kCrlf;
}

}  // namespace

bool iequals(const std::string& a, const std::string& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i])))
      return false;
  return true;
}

std::string percent_decode(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (c == '+') {
      out += ' ';
    } else if (c == '%') {
      if (i + 2 >= text.size() ||
          !std::isxdigit(static_cast<unsigned char>(text[i + 1])) ||
          !std::isxdigit(static_cast<unsigned char>(text[i + 2])))
        throw http_error(400, "http: malformed percent escape in '" + text + "'");
      const auto hex = [](char h) {
        if (h >= '0' && h <= '9') return h - '0';
        if (h >= 'a' && h <= 'f') return h - 'a' + 10;
        return h - 'A' + 10;
      };
      out += static_cast<char>(hex(text[i + 1]) * 16 + hex(text[i + 2]));
      i += 2;
    } else {
      out += c;
    }
  }
  return out;
}

std::map<std::string, std::string> parse_query(const std::string& query) {
  std::map<std::string, std::string> out;
  std::size_t pos = 0;
  while (pos < query.size()) {
    std::size_t amp = query.find('&', pos);
    if (amp == std::string::npos) amp = query.size();
    const std::string pair = query.substr(pos, amp - pos);
    if (!pair.empty()) {
      const std::size_t eq = pair.find('=');
      if (eq == std::string::npos)
        out[percent_decode(pair)] = "";
      else
        out[percent_decode(pair.substr(0, eq))] = percent_decode(pair.substr(eq + 1));
    }
    pos = amp + 1;
  }
  return out;
}

const std::string* http_request::header(const std::string& name) const {
  return find_header(headers, name);
}

bool http_request::keep_alive() const {
  const std::string* connection = header("Connection");
  if (connection != nullptr) {
    if (iequals(*connection, "close")) return false;
    if (iequals(*connection, "keep-alive")) return true;
  }
  return version_minor >= 1;
}

const std::string* http_response::header(const std::string& name) const {
  return find_header(headers, name);
}

const char* status_reason(int status) {
  switch (status) {
    case 200: return "OK";
    case 201: return "Created";
    case 202: return "Accepted";
    case 204: return "No Content";
    case 400: return "Bad Request";
    case 403: return "Forbidden";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 409: return "Conflict";
    case 411: return "Length Required";
    case 413: return "Payload Too Large";
    case 429: return "Too Many Requests";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    case 505: return "HTTP Version Not Supported";
    default: return "Unknown";
  }
}

http_response error_response(int status, const std::string& message) {
  http_response r;
  r.status = status;
  // Hand-rolled rather than io::json to keep the envelope available to the
  // transport layer (which must answer peers io::json would choke on).
  std::string escaped;
  escaped.reserve(message.size());
  for (char c : message) {
    switch (c) {
      case '"': escaped += "\\\""; break;
      case '\\': escaped += "\\\\"; break;
      case '\n': escaped += "\\n"; break;
      case '\r': escaped += "\\r"; break;
      case '\t': escaped += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          escaped += buf;
        } else {
          escaped += c;
        }
    }
  }
  r.body = "{\"error\":{\"status\":" + std::to_string(status) + ",\"message\":\"" +
           escaped + "\"}}\n";
  return r;
}

std::string serialize(const http_response& r, bool keep_alive, int version_minor) {
  std::string out = "HTTP/1.1 " + std::to_string(r.status) + " " +
                    status_reason(r.status) + kCrlf;
  out += "Content-Type: " + r.content_type + kCrlf;
  out += std::string("Connection: ") + (keep_alive ? "keep-alive" : "close") + kCrlf;
  for (const auto& [name, value] : r.headers) out += name + ": " + value + kCrlf;
  if (r.chunked && version_minor >= 1) {
    out += "Transfer-Encoding: chunked";
    out += kCrlf;
    out += kCrlf;
    // One chunk per line (journal records are lines), so a reader sees whole
    // records even when it processes chunk payloads individually.
    std::size_t pos = 0;
    while (pos < r.body.size()) {
      std::size_t nl = r.body.find('\n', pos);
      if (nl == std::string::npos) nl = r.body.size() - 1;
      append_chunk(out, r.body.substr(pos, nl - pos + 1));
      pos = nl + 1;
    }
    out += "0\r\n\r\n";
  } else {
    out += "Content-Length: " + std::to_string(r.body.size()) + kCrlf;
    out += kCrlf;
    out += r.body;
  }
  return out;
}

std::string serialize(const std::string& method, const std::string& target,
                      const std::vector<std::pair<std::string, std::string>>& headers,
                      const std::string& body) {
  std::string out = method + " " + target + " HTTP/1.1" + kCrlf;
  for (const auto& [name, value] : headers) out += name + ": " + value + kCrlf;
  out += "Content-Length: " + std::to_string(body.size()) + kCrlf;
  out += kCrlf;
  out += body;
  return out;
}

// ----------------------------------------------------- http_request_parser --

http_request_parser::http_request_parser(http_limits limits) : limits_(limits) {}

void http_request_parser::reset() {
  state_ = state::start_line;
  request_ = http_request{};
  line_.clear();
  header_bytes_ = 0;
  body_expected_ = 0;
  chunked_ = false;
}

bool http_request_parser::take_line(const char*& p, const char* end, std::size_t limit,
                                    int overflow_status) {
  while (p < end) {
    const char c = *p++;
    if (c == '\n') {
      if (!line_.empty() && line_.back() == '\r') line_.pop_back();
      return true;
    }
    line_ += c;
    if (line_.size() > limit)
      throw http_error(overflow_status, "http: line exceeds " + std::to_string(limit) +
                                            " bytes");
  }
  return false;
}

void http_request_parser::parse_start_line() {
  const std::size_t sp1 = line_.find(' ');
  const std::size_t sp2 = sp1 == std::string::npos ? sp1 : line_.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos ||
      line_.find(' ', sp2 + 1) != std::string::npos)
    throw http_error(400, "http: malformed request line '" + line_ + "'");
  request_.method = line_.substr(0, sp1);
  request_.target = line_.substr(sp1 + 1, sp2 - sp1 - 1);
  const std::string version = line_.substr(sp2 + 1);
  if (!is_token(request_.method))
    throw http_error(400, "http: malformed method '" + request_.method + "'");
  if (request_.target.empty() || request_.target[0] != '/')
    throw http_error(400, "http: request target must be absolute ('" +
                              request_.target + "')");
  if (version == "HTTP/1.1") request_.version_minor = 1;
  else if (version == "HTTP/1.0") request_.version_minor = 0;
  else throw http_error(505, "http: unsupported version '" + version + "'");

  const std::size_t q = request_.target.find('?');
  request_.path = percent_decode(request_.target.substr(0, q));
  if (q != std::string::npos)
    request_.query = parse_query(request_.target.substr(q + 1));
}

void http_request_parser::parse_header_line() {
  if (request_.headers.size() >= limits_.max_headers)
    throw http_error(431, "http: more than " + std::to_string(limits_.max_headers) +
                              " header fields");
  request_.headers.push_back(split_header(line_));
}

void http_request_parser::finish_headers() {
  const std::string* te = request_.header("Transfer-Encoding");
  const std::string* cl = request_.header("Content-Length");
  if (te != nullptr) {
    if (!iequals(*te, "chunked"))
      throw http_error(501, "http: unsupported transfer coding '" + *te + "'");
    if (cl != nullptr)
      throw http_error(400, "http: both Content-Length and Transfer-Encoding");
    chunked_ = true;
    state_ = state::chunk_size;
    return;
  }
  body_expected_ = cl != nullptr ? parse_decimal(*cl, "Content-Length") : 0;
  if (body_expected_ > limits_.max_body_bytes)
    throw http_error(413, "http: body of " + std::to_string(body_expected_) +
                              " bytes exceeds the " +
                              std::to_string(limits_.max_body_bytes) + " byte limit");
  state_ = body_expected_ > 0 ? state::body : state::done;
}

std::size_t http_request_parser::feed(const char* data, std::size_t n) {
  const char* p = data;
  const char* const end = data + n;
  while (p < end && state_ != state::done) {
    switch (state_) {
      case state::start_line:
        if (take_line(p, end, limits_.max_start_line, 431)) {
          if (line_.empty()) { line_.clear(); break; }  // tolerate a stray CRLF
          parse_start_line();
          line_.clear();
          state_ = state::headers;
        }
        break;
      case state::headers:
      case state::trailers:
        if (take_line(p, end, limits_.max_header_bytes, 431)) {
          header_bytes_ += line_.size() + 2;
          if (header_bytes_ > limits_.max_header_bytes)
            throw http_error(431, "http: header block exceeds " +
                                      std::to_string(limits_.max_header_bytes) +
                                      " bytes");
          if (line_.empty()) {
            if (state_ == state::trailers) state_ = state::done;
            else finish_headers();
          } else if (state_ == state::headers) {
            parse_header_line();
          }
          line_.clear();
        }
        break;
      case state::body: {
        const std::size_t take =
            std::min(body_expected_ - request_.body.size(),
                     static_cast<std::size_t>(end - p));
        request_.body.append(p, take);
        p += take;
        if (request_.body.size() == body_expected_) state_ = state::done;
        break;
      }
      case state::chunk_size:
        if (take_line(p, end, limits_.max_start_line, 400)) {
          body_expected_ = parse_chunk_size(line_);
          line_.clear();
          if (request_.body.size() + body_expected_ > limits_.max_body_bytes)
            throw http_error(413, "http: chunked body exceeds the " +
                                      std::to_string(limits_.max_body_bytes) +
                                      " byte limit");
          state_ = body_expected_ == 0 ? state::trailers : state::chunk_data;
        }
        break;
      case state::chunk_data: {
        const std::size_t take =
            std::min(body_expected_, static_cast<std::size_t>(end - p));
        request_.body.append(p, take);
        p += take;
        body_expected_ -= take;
        if (body_expected_ == 0) state_ = state::chunk_end;
        break;
      }
      case state::chunk_end:
        if (take_line(p, end, limits_.max_start_line, 400)) {
          if (!line_.empty())
            throw http_error(400, "http: chunk payload not followed by CRLF");
          line_.clear();
          state_ = state::chunk_size;
        }
        break;
      case state::done:
        break;
    }
  }
  return static_cast<std::size_t>(p - data);
}

// ---------------------------------------------------- http_response_parser --

http_response_parser::http_response_parser(http_limits limits) : limits_(limits) {}

bool http_response_parser::take_line(const char*& p, const char* end, std::size_t limit,
                                     int overflow_status) {
  while (p < end) {
    const char c = *p++;
    if (c == '\n') {
      if (!line_.empty() && line_.back() == '\r') line_.pop_back();
      return true;
    }
    line_ += c;
    if (line_.size() > limit)
      throw http_error(overflow_status, "http: line exceeds " + std::to_string(limit) +
                                            " bytes");
  }
  return false;
}

void http_response_parser::parse_status_line() {
  // "HTTP/1.x NNN reason..."
  if (line_.rfind("HTTP/1.", 0) != 0 || line_.size() < 12 || line_[8] != ' ')
    throw http_error(400, "http: malformed status line '" + line_ + "'");
  version_minor_ = line_[7] == '0' ? 0 : 1;
  const std::string code = line_.substr(9, 3);
  response_.status = static_cast<int>(parse_decimal(code, "status code"));
}

void http_response_parser::parse_header_line() {
  if (response_.headers.size() >= limits_.max_headers)
    throw http_error(431, "http: more than " + std::to_string(limits_.max_headers) +
                              " header fields");
  auto [name, value] = split_header(line_);
  if (iequals(name, "Content-Type")) response_.content_type = value;
  response_.headers.emplace_back(std::move(name), std::move(value));
}

void http_response_parser::finish_headers() {
  const std::string* te = find_header(response_.headers, "Transfer-Encoding");
  if (te != nullptr) {
    if (!iequals(*te, "chunked"))
      throw http_error(501, "http: unsupported transfer coding '" + *te + "'");
    state_ = state::chunk_size;
    return;
  }
  const std::string* cl = find_header(response_.headers, "Content-Length");
  if (cl == nullptr) {
    // No framing header: the body runs until the peer closes the connection.
    state_ = state::until_eof;
    return;
  }
  body_expected_ = parse_decimal(*cl, "Content-Length");
  if (body_expected_ > limits_.max_body_bytes)
    throw http_error(413, "http: body exceeds the response size limit");
  state_ = body_expected_ > 0 ? state::body : state::done;
}

std::size_t http_response_parser::feed(const char* data, std::size_t n) {
  const char* p = data;
  const char* const end = data + n;
  while (p < end && state_ != state::done) {
    switch (state_) {
      case state::status_line:
        if (take_line(p, end, limits_.max_start_line, 431)) {
          parse_status_line();
          line_.clear();
          state_ = state::headers;
        }
        break;
      case state::headers:
      case state::trailers:
        if (take_line(p, end, limits_.max_header_bytes, 431)) {
          if (line_.empty()) {
            if (state_ == state::trailers) state_ = state::done;
            else finish_headers();
          } else if (state_ == state::headers) {
            parse_header_line();
          }
          line_.clear();
        }
        break;
      case state::body: {
        const std::size_t take =
            std::min(body_expected_ - response_.body.size(),
                     static_cast<std::size_t>(end - p));
        response_.body.append(p, take);
        p += take;
        if (response_.body.size() == body_expected_) state_ = state::done;
        break;
      }
      case state::until_eof:
        response_.body.append(p, static_cast<std::size_t>(end - p));
        p = end;
        if (response_.body.size() > limits_.max_body_bytes)
          throw http_error(413, "http: body exceeds the response size limit");
        break;
      case state::chunk_size:
        if (take_line(p, end, limits_.max_start_line, 400)) {
          body_expected_ = parse_chunk_size(line_);
          line_.clear();
          if (response_.body.size() + body_expected_ > limits_.max_body_bytes)
            throw http_error(413, "http: chunked body exceeds the size limit");
          state_ = body_expected_ == 0 ? state::trailers : state::chunk_data;
        }
        break;
      case state::chunk_data: {
        const std::size_t take =
            std::min(body_expected_, static_cast<std::size_t>(end - p));
        response_.body.append(p, take);
        p += take;
        body_expected_ -= take;
        if (body_expected_ == 0) state_ = state::chunk_end;
        break;
      }
      case state::chunk_end:
        if (take_line(p, end, limits_.max_start_line, 400)) {
          if (!line_.empty())
            throw http_error(400, "http: chunk payload not followed by CRLF");
          line_.clear();
          state_ = state::chunk_size;
        }
        break;
      case state::done:
        break;
    }
  }
  return static_cast<std::size_t>(p - data);
}

void http_response_parser::finish() {
  if (state_ == state::until_eof) {
    state_ = state::done;
    return;
  }
  if (state_ != state::done)
    throw http_error(400, "http: connection closed mid-response");
}

bool http_response_parser::keep_alive() const {
  const std::string* connection = find_header(response_.headers, "Connection");
  if (connection != nullptr) {
    if (iequals(*connection, "close")) return false;
    if (iequals(*connection, "keep-alive")) return true;
  }
  return version_minor_ >= 1;
}

}  // namespace boson::net
