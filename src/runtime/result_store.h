/// \file result_store.h
/// Persistent campaign-level results: every completed job appends one JSON
/// line to `<campaign_dir>/results.jsonl` (thread-safe, latest-attempt-wins
/// on reload), and `render_report` pivots the stored rows into the paper's
/// Table 1/2/3 layouts — a method x device grid of post-fab FoM mean +- std
/// aggregated over seeds/overrides, plus a per-device detail table — via
/// `io::table`.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "runtime/campaign.h"
#include "runtime/jsonl.h"

namespace boson::runtime {

/// One stored job result (the summary fields reports aggregate over).
struct job_result_row {
  std::size_t job_index = 0;
  std::string name;
  std::string device;
  std::string method;
  std::uint64_t seed = 0;
  double prefab_fom = 0.0;
  std::size_t postfab_samples = 0;  ///< 0 when the job planned no Monte Carlo
  double postfab_mean = 0.0;
  double postfab_std = 0.0;
  double postfab_min = 0.0;
  double postfab_max = 0.0;
  double seconds = 0.0;
  std::size_t attempt = 1;
  std::string artifact_dir;
  std::string recipe;  ///< resolved-recipe signature (method provenance)

  io::json_value to_json() const;
  static job_result_row from_json(const io::json_value& v);
};

/// Append-only JSONL store of job results inside a campaign directory.
class result_store {
 public:
  /// Opens (and heals, see `jsonl_appender`) the store for appending.
  explicit result_store(const std::string& campaign_dir);

  /// Append one row; thread-safe and flushed (same line-atomic contract as
  /// the journal, so concurrent shards share one store).
  void append(const job_result_row& row);

  const std::string& path() const { return out_.path(); }

  /// Load every row of a campaign's store; duplicate job indices (retries,
  /// re-runs) collapse to the latest row. A missing store loads empty; a
  /// torn trailing line (crash mid-append, or a live reader racing a
  /// writer's flush) is ignored, corruption anywhere else throws.
  static std::vector<job_result_row> load(const std::string& campaign_dir);

  /// What `load(campaign_dir).size()` would return — the number of distinct
  /// jobs with a stored result — without materializing a single row.
  /// Status polls (CLI `campaign status`, the service control plane) call
  /// this per request, so it scans the store once, extracting only each
  /// line's job index: the canonical rows the store itself writes yield it
  /// from the leading `"job":` field; foreign-but-valid rows fall back to a
  /// full parse. Same torn-tail tolerance as `load`.
  static std::size_t count_rows(const std::string& campaign_dir);

  /// The store file inside `campaign_dir`.
  static std::string store_path(const std::string& campaign_dir);

 private:
  jsonl_appender out_;
};

/// Render the paper-shaped report: a coverage line ("N/M jobs"), the
/// Table 1/3-style method x device post-fab grid, and one detail table per
/// device (prefab / post-fab statistics per method x seed).
std::string render_report(const campaign_spec& spec,
                          const std::vector<job_result_row>& rows);

}  // namespace boson::runtime
