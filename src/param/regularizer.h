#pragma once

#include "common/array2d.h"
#include "common/types.h"

namespace boson::param {

/// Smoothed isotropic total-variation (perimeter) regularizer:
///   TV(rho) = sum_cells sqrt(|grad rho|^2 + eps^2) * cell_area-ish weight.
///
/// This is the classical curvature / feature-size *heuristic* that prior
/// inverse-design work adds to discourage fine features (the paper's
/// Section II-B discussion). BOSON-1 replaces it with explicit fabrication
/// modeling; the regularizer is provided for baseline studies and as an
/// optional extra term (`run_options::tv_weight`).
///
/// Returns the TV value; when `d_rho` is non-null, accumulates the exact
/// gradient of the smoothed functional into it.
double total_variation(const array2d<double>& rho, array2d<double>* d_rho,
                       double smoothing = 1e-3);

}  // namespace boson::param
