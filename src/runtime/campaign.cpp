#include "runtime/campaign.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <utility>

#include "api/registry.h"
#include "api/session.h"
#include "common/error.h"
#include "common/text.h"

namespace boson::runtime {

namespace {

[[noreturn]] void campaign_fail(const std::string& message) {
  throw bad_argument("campaign_spec: " + message);
}

std::string read_string(const io::json_value& v, const std::string& path) {
  if (!v.is_string())
    campaign_fail("'" + path + "' must be a string, got " + v.kind_name());
  return v.as_string();
}

std::size_t read_count(const io::json_value& v, const std::string& path) {
  if (!v.is_number())
    campaign_fail("'" + path + "' must be a number, got " + v.kind_name());
  const double d = v.as_number();
  if (d < 0.0 || d != std::floor(d))
    campaign_fail("'" + path + "' must be a non-negative integer, got " +
                  io::json_value(d).dump(-1));
  if (d > 9007199254740992.0)
    campaign_fail("'" + path + "' exceeds 2^53 (not exactly representable in JSON)");
  return static_cast<std::size_t>(d);
}

std::vector<std::string> read_string_array(const io::json_value& v, const std::string& path) {
  if (!v.is_array())
    campaign_fail("'" + path + "' must be an array, got " + v.kind_name());
  std::vector<std::string> out;
  out.reserve(v.size());
  for (std::size_t i = 0; i < v.elements().size(); ++i)
    out.push_back(read_string(v.elements()[i], path + "[" + std::to_string(i) + "]"));
  return out;
}

/// Recursive JSON merge: objects merge member-wise, everything else (arrays,
/// scalars) replaces. This is how an override patch lands on the base spec.
void deep_merge(io::json_value& base, const io::json_value& patch) {
  if (!base.is_object() || !patch.is_object()) {
    base = patch;
    return;
  }
  for (const auto& [key, value] : patch.members()) {
    if (base.find(key) != nullptr && base.at(key).is_object() && value.is_object()) {
      deep_merge(base[key], value);
    } else {
      base[key] = value;
    }
  }
}

/// Sections of an experiment spec an override patch may touch. The identity
/// axes (name/device/method) and the seed axis belong to the campaign.
bool patchable_spec_key(const std::string& key) {
  return key == "run" || key == "litho" || key == "eole" || key == "resolution" ||
         key == "objective" || key == "evaluation";
}

}  // namespace

// --------------------------------------------------------------- sharding --

shard_range shard_range::parse(const std::string& text) {
  const std::size_t slash = text.find('/');
  const auto malformed = [&text]() {
    return bad_argument("shard_range: expected the form 'i/N' (e.g. '0/2'), got '" +
                        text + "'");
  };
  if (slash == std::string::npos || slash == 0 || slash + 1 >= text.size())
    throw malformed();
  // Digits only: std::stoul would silently wrap "-2" to 2^64-2, turning a
  // typo into a shard that owns almost nothing.
  for (std::size_t i = 0; i < text.size(); ++i)
    if (i != slash && (text[i] < '0' || text[i] > '9')) throw malformed();
  shard_range shard;
  try {
    shard.index = std::stoul(text.substr(0, slash));
    shard.count = std::stoul(text.substr(slash + 1));
  } catch (const std::logic_error&) {
    throw malformed();
  }
  require(shard.count >= 1, "shard_range: shard count must be at least 1 (got '" +
                                text + "')");
  require(shard.index < shard.count,
          "shard_range: shard index must be below the count (got '" + text + "')");
  return shard;
}

std::string shard_range::to_string() const {
  return std::to_string(index) + "/" + std::to_string(count);
}

// -------------------------------------------------------------- expansion --

namespace {

std::vector<std::uint64_t> effective_seeds(const campaign_spec& spec) {
  return spec.seeds.empty() ? std::vector<std::uint64_t>{spec.base.seed} : spec.seeds;
}

std::vector<campaign_override> effective_overrides(const campaign_spec& spec) {
  if (!spec.overrides.empty()) return spec.overrides;
  return {campaign_override{"", io::json_value()}};
}

}  // namespace

std::size_t campaign_spec::job_count() const {
  return devices.size() * methods.size() * effective_seeds(*this).size() *
         effective_overrides(*this).size();
}

std::vector<campaign_job> campaign_spec::expand() const {
  require(!devices.empty(), "campaign_spec: 'axes.devices' must not be empty");
  require(!methods.empty(), "campaign_spec: 'axes.methods' must not be empty");

  // Resolve the method axis up front: every entry must be a campaign-local
  // recipe or a registry key, and every campaign-local recipe must be swept —
  // a declared-but-unlisted recipe is almost certainly an axis typo, and
  // silently running the campaign without it would be worse than failing.
  for (const std::string& method : methods) {
    const bool is_recipe = std::any_of(recipes.begin(), recipes.end(),
                                       [&](const campaign_recipe& cr) {
                                         return cr.name == method;
                                       });
    if (is_recipe || api::registry::global().has_method(method)) continue;
    std::vector<std::string> known = api::registry::global().method_names();
    for (const campaign_recipe& cr : recipes) known.push_back(cr.name);
    throw bad_argument("campaign_spec: unknown method '" + method + "' in axes.methods"
                       " (known: " + join_names(known) + did_you_mean(method, known) +
                       ")");
  }
  for (const campaign_recipe& cr : recipes)
    if (std::find(methods.begin(), methods.end(), cr.name) == methods.end())
      throw bad_argument("campaign_spec: recipe '" + cr.name +
                         "' is not listed in axes.methods (declared recipes "
                         "must be swept)");

  const std::vector<std::uint64_t> seed_axis = effective_seeds(*this);
  const std::vector<campaign_override> override_axis = effective_overrides(*this);

  // The method axis owns the recipe; a base- or override-carried recipe
  // would misattribute every job it touches. from_json rejects both forms,
  // so this only guards programmatically-built specs — loudly, not by
  // silently dropping the recipe.
  if (base.recipe)
    throw bad_argument(
        "campaign_spec: 'base' must not carry a recipe; declare it under "
        "'recipes' and list its name in axes.methods");

  // One strict re-parse per override (not per job): the patch merges over the
  // canonical base JSON, so unknown keys and out-of-range values inside a
  // patch get the same precise errors a hand-written spec would.
  std::vector<api::experiment_spec> patched;
  patched.reserve(override_axis.size());
  for (const campaign_override& ov : override_axis) {
    if (ov.patch.is_null() || ov.patch.size() == 0) {
      patched.push_back(base);
      continue;
    }
    io::json_value doc = base.to_json();
    deep_merge(doc, ov.patch);
    try {
      patched.push_back(api::experiment_spec::from_json(doc));
    } catch (const bad_argument& e) {
      throw bad_argument("campaign_spec: override '" + ov.name + "': " + e.what());
    }
    if (patched.back().recipe)
      throw bad_argument("campaign_spec: override '" + ov.name +
                         "' must not patch 'recipe'; the method axis owns recipes");
  }

  std::vector<campaign_job> jobs;
  jobs.reserve(job_count());
  std::map<std::string, bool> names;
  for (const std::string& device : devices) {
    for (const std::string& method : methods) {
      for (const std::uint64_t seed : seed_axis) {
        for (std::size_t oi = 0; oi < override_axis.size(); ++oi) {
          campaign_job job;
          job.index = jobs.size();
          job.name = device + "_" + method + "_s" + std::to_string(seed) +
                     (override_axis[oi].name.empty() ? "" : "_" + override_axis[oi].name);
          job.spec = patched[oi];
          job.spec.name = job.name;
          job.spec.device = device;
          job.spec.method = method;
          // Campaign-local recipes shadow the registry for their axis entry;
          // every other name resolves against the registry (checked above).
          // Unlabeled recipes take the axis name here — not only in
          // from_json — so programmatic campaigns report hybrids by name
          // instead of as "custom".
          for (const campaign_recipe& cr : recipes)
            if (cr.name == method) {
              job.spec.recipe = cr.recipe;
              if (job.spec.recipe->label == core::method_recipe{}.label)
                job.spec.recipe->label = cr.name;
              break;
            }
          job.spec.seed = seed;
          try {
            api::validate(job.spec);
          } catch (const bad_argument& e) {
            throw bad_argument("campaign_spec: job '" + job.name + "': " + e.what());
          }
          // Key uniqueness on the *sanitized* name: jobs share the artifact
          // directory derived by api::artifact_name, and two jobs colliding
          // there would clobber each other's artifacts and checkpoints.
          const auto [it, inserted] = names.emplace(api::artifact_name(job.name), true);
          (void)it;
          require(inserted, "campaign_spec: jobs '" + job.name +
                                "' and another entry resolve to the same artifact "
                                "directory (override names must stay distinct "
                                "after filesystem sanitization)");
          jobs.push_back(std::move(job));
        }
      }
    }
  }
  return jobs;
}

// ---------------------------------------------------------------- to_json --

io::json_value campaign_spec::to_json() const {
  io::json_value v = io::json_value::object();
  v["name"] = name;

  io::json_value& axes = v["axes"] = io::json_value::object();
  io::json_value& dv = axes["devices"] = io::json_value::array();
  for (const auto& d : devices) dv.push_back(d);
  io::json_value& mv = axes["methods"] = io::json_value::array();
  for (const auto& m : methods) mv.push_back(m);
  io::json_value& sv = axes["seeds"] = io::json_value::array();
  for (const auto s : effective_seeds(*this)) sv.push_back(static_cast<double>(s));

  const std::vector<campaign_override> override_axis = effective_overrides(*this);
  if (override_axis.size() > 1 || !override_axis.front().name.empty()) {
    io::json_value& ov = v["overrides"] = io::json_value::array();
    for (const campaign_override& o : override_axis) {
      io::json_value e = io::json_value::object();
      e["name"] = o.name;
      if (o.patch.is_object())
        for (const auto& [key, value] : o.patch.members()) e[key] = value;
      ov.push_back(std::move(e));
    }
  }

  if (!recipes.empty()) {
    io::json_value& rv = v["recipes"] = io::json_value::array();
    for (const campaign_recipe& r : recipes) {
      io::json_value e = io::json_value::object();
      e["name"] = r.name;
      e["recipe"] = api::recipe_to_json(r.recipe);
      rv.push_back(std::move(e));
    }
  }

  // The base is a template, not an experiment: the identity keys the axes
  // own (and from_json rejects) are stripped from the canonical form.
  const io::json_value base_json = base.to_json();
  io::json_value& b = v["base"] = io::json_value::object();
  for (const auto& [key, value] : base_json.members())
    if (key != "name" && key != "device" && key != "method" && key != "recipe")
      b[key] = value;

  io::json_value& sch = v["scheduler"] = io::json_value::object();
  sch["workers"] = scheduler.workers;
  sch["max_retries"] = scheduler.max_retries;
  sch["checkpoint_every"] = scheduler.checkpoint_every;
  sch["lease_ttl"] = scheduler.lease_ttl;
  return v;
}

// -------------------------------------------------------------- from_json --

campaign_spec campaign_spec::from_json(const io::json_value& v) {
  if (!v.is_object()) campaign_fail("document must be an object, got " + std::string(v.kind_name()));
  campaign_spec spec;
  bool saw_axes = false;

  for (const auto& [key, value] : v.members()) {
    if (key == "name") {
      spec.name = read_string(value, "name");
    } else if (key == "axes") {
      saw_axes = true;
      if (!value.is_object())
        campaign_fail("'axes' must be an object, got " + std::string(value.kind_name()));
      for (const auto& [ak, av] : value.members()) {
        if (ak == "devices") spec.devices = read_string_array(av, "axes.devices");
        else if (ak == "methods") spec.methods = read_string_array(av, "axes.methods");
        else if (ak == "seeds") {
          if (!av.is_array())
            campaign_fail("'axes.seeds' must be an array, got " + std::string(av.kind_name()));
          for (std::size_t i = 0; i < av.elements().size(); ++i)
            spec.seeds.push_back(read_count(av.elements()[i],
                                            "axes.seeds[" + std::to_string(i) + "]"));
        } else {
          campaign_fail("unknown key '" + ak + "' in axes");
        }
      }
    } else if (key == "base") {
      if (!value.is_object())
        campaign_fail("'base' must be an object, got " + std::string(value.kind_name()));
      for (const auto& [bk, bv] : value.members()) {
        (void)bv;
        if (bk == "name" || bk == "device" || bk == "method")
          campaign_fail("'base." + bk + "' is campaign-owned; use the axes instead");
        if (bk == "recipe")
          campaign_fail("'base.recipe' is campaign-owned; declare it under "
                        "'recipes' and list its name in axes.methods");
      }
      try {
        spec.base = api::experiment_spec::from_json(value);
      } catch (const bad_argument& e) {
        throw bad_argument("campaign_spec: base: " + std::string(e.what()));
      }
    } else if (key == "recipes") {
      if (!value.is_array())
        campaign_fail("'recipes' must be an array, got " + std::string(value.kind_name()));
      for (std::size_t i = 0; i < value.elements().size(); ++i) {
        const std::string path = "recipes[" + std::to_string(i) + "]";
        const io::json_value& entry = value.elements()[i];
        if (!entry.is_object())
          campaign_fail("'" + path + "' must be an object, got " +
                        std::string(entry.kind_name()));
        campaign_recipe cr;
        bool has_recipe = false;
        for (const auto& [rk, rvalue] : entry.members()) {
          if (rk == "name") {
            cr.name = read_string(rvalue, path + ".name");
          } else if (rk == "recipe") {
            try {
              cr.recipe = api::recipe_from_json(rvalue, path + ".recipe");
            } catch (const bad_argument& e) {
              throw bad_argument("campaign_spec: " + std::string(e.what()));
            }
            has_recipe = true;
          } else {
            campaign_fail("unknown key '" + rk + "' in " + path +
                          " (expected 'name' and 'recipe')");
          }
        }
        if (cr.name.empty()) campaign_fail("'" + path + "' needs a non-empty 'name'");
        if (!has_recipe) campaign_fail("'" + path + "' is missing the 'recipe' object");
        // An unlabeled recipe would report as "custom" in every summary and
        // log line; the axis name is the natural display label.
        if (cr.recipe.label == core::method_recipe{}.label) cr.recipe.label = cr.name;
        spec.recipes.push_back(std::move(cr));
      }
    } else if (key == "overrides") {
      if (!value.is_array())
        campaign_fail("'overrides' must be an array, got " + std::string(value.kind_name()));
      for (std::size_t i = 0; i < value.elements().size(); ++i) {
        const std::string path = "overrides[" + std::to_string(i) + "]";
        const io::json_value& entry = value.elements()[i];
        if (!entry.is_object())
          campaign_fail("'" + path + "' must be an object, got " +
                        std::string(entry.kind_name()));
        campaign_override ov;
        ov.patch = io::json_value::object();
        bool has_name = false;
        for (const auto& [ok, ovalue] : entry.members()) {
          if (ok == "name") {
            ov.name = read_string(ovalue, path + ".name");
            has_name = true;
          } else if (patchable_spec_key(ok)) {
            ov.patch[ok] = ovalue;
          } else {
            campaign_fail("unknown key '" + ok + "' in " + path +
                          " (patches may touch run, litho, eole, resolution, "
                          "objective, evaluation)");
          }
        }
        if (!has_name || ov.name.empty())
          campaign_fail("'" + path + "' needs a non-empty 'name'");
        spec.overrides.push_back(std::move(ov));
      }
    } else if (key == "scheduler") {
      if (!value.is_object())
        campaign_fail("'scheduler' must be an object, got " + std::string(value.kind_name()));
      for (const auto& [sk, sv] : value.members()) {
        const std::string path = "scheduler." + sk;
        if (sk == "workers") spec.scheduler.workers = read_count(sv, path);
        else if (sk == "max_retries") spec.scheduler.max_retries = read_count(sv, path);
        else if (sk == "checkpoint_every") spec.scheduler.checkpoint_every = read_count(sv, path);
        else if (sk == "lease_ttl") {
          if (!sv.is_number())
            campaign_fail("'" + path + "' must be a number, got " + std::string(sv.kind_name()));
          spec.scheduler.lease_ttl = sv.as_number();
        }
        else campaign_fail("unknown key '" + sk + "' in scheduler");
      }
      if (spec.scheduler.workers == 0)
        campaign_fail("'scheduler.workers' must be at least 1");
      if (!(spec.scheduler.lease_ttl > 0.0))
        campaign_fail("'scheduler.lease_ttl' must be positive");
    } else {
      campaign_fail("unknown key '" + key + "'");
    }
  }

  if (!saw_axes) campaign_fail("missing the 'axes' object");
  if (spec.devices.empty()) campaign_fail("'axes.devices' must not be empty");
  if (spec.methods.empty()) campaign_fail("'axes.methods' must not be empty");
  {
    std::map<std::string, bool> names;
    for (const campaign_override& ov : spec.overrides)
      if (!names.emplace(ov.name, true).second)
        campaign_fail("duplicate override name '" + ov.name + "'");
  }
  {
    std::map<std::string, bool> names;
    for (const campaign_recipe& cr : spec.recipes)
      if (!names.emplace(cr.name, true).second)
        campaign_fail("duplicate recipe name '" + cr.name + "'");
  }
  return spec;
}

campaign_spec campaign_spec::load(const std::string& path) {
  return from_json(io::json_value::parse_file(path));
}

}  // namespace boson::runtime
