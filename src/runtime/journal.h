/// \file journal.h
/// Append-only durability log of a campaign: every job state transition
/// (leased, running, checkpointed, completed, failed, cancelled, ...) is one
/// JSON line. Appends are mutex-serialized within a process and
/// line-buffered into a single O_APPEND write, so concurrent worker
/// processes sharing one campaign directory interleave whole lines only.
/// Replay reconstructs the latest state per job — the scheduler's
/// crash-recovery source of truth — and tolerates a torn (crash-truncated)
/// final line.
///
/// Since the elastic-scheduling rewrite the journal is also the
/// *coordination* medium: workers claim jobs by appending `leased` records,
/// keep them alive with `lease_renewed` heartbeats, and take over a dead
/// worker's jobs by appending `lease_expired` + a fresh claim. Because every
/// appender shares one file, replay order is a total order and resolves
/// every claim race deterministically (see `lease.h`).
///
/// Two on-disk layouts, one API:
///  - legacy: a single ever-growing `journal.jsonl` (the default);
///  - segmented: a `journal/` store directory (`store::segment_log`) with
///    rotation, compaction, and GC, for campaigns whose histories outgrow a
///    single file. Chosen at campaign creation via `journal_options`
///    (or the BOSON_JOURNAL_* environment variables) and auto-detected
///    thereafter: `journal_path` and the `journal(path)` constructor attach
///    to whichever layout exists.

#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "io/json.h"
#include "runtime/jsonl.h"

namespace boson::store {
class segment_log;
}

namespace boson::runtime {

/// Lifecycle states a job moves through in the journal.
enum class job_state {
  scheduled,      ///< admitted to a scheduler run's queue (legacy; informational)
  leased,         ///< a worker claimed the job (winner decided by replay order)
  lease_renewed,  ///< heartbeat: the owner extended its lease deadline
  lease_released, ///< the owner gave the job back without finishing it
  lease_expired,  ///< a worker observed the lease deadline passed (steal prologue)
  running,        ///< an attempt started
  checkpointed,   ///< a mid-run snapshot was persisted (detail = next iteration)
  completed,      ///< finished; results are in the store
  failed,         ///< an attempt threw (detail = error message)
  cancelled,      ///< interrupted by cooperative cancellation
};

const char* to_string(job_state state);
job_state job_state_from_string(const std::string& text);

/// One journal record. The lease fields (`worker`, `lease_id`, `deadline`,
/// `stamp`) are only serialized when set, so pre-lease journals replay (and
/// re-serialize) unchanged.
struct journal_entry {
  std::size_t job_index = 0;
  std::string job_name;
  job_state state = job_state::scheduled;
  std::size_t attempt = 0;   ///< 1-based attempt number; 0 for scheduled
  std::string detail;        ///< state-dependent payload (error, iteration, ...)
  double seconds = 0.0;      ///< wall-clock of the attempt (completed/failed)

  // Lease coordination fields.
  std::string worker;          ///< worker id that wrote (or is named by) the record
  std::uint64_t lease_id = 0;  ///< per-worker claim counter; (worker, lease_id) is unique
  double deadline = 0.0;       ///< absolute lease expiry time (leased / lease_renewed)
  double stamp = 0.0;          ///< the writer's clock when the record was appended

  io::json_value to_json() const;
  static journal_entry from_json(const io::json_value& v);
};

/// Resumable position in a journal: how much has been consumed so far.
/// Pollers — the event stream, the lease manager — keep one per journal and
/// fold only what appended since, so poll cost tracks journal *growth*
/// instead of journal size. The offset is also the control plane's wire
/// cursor (`?cursor=N`): in the legacy layout it is a byte offset into the
/// shared O_APPEND file (< 2^33); in the segmented layout it is a
/// `store::segment_log` cursor (seq+offset encoded above 2^33), so the two
/// ranges never collide and a cursor is self-describing. Segmented cursors
/// survive rotation and compaction: a cursor into a compacted-away segment
/// resumes at the covering snapshot (at-least-once re-delivery — safe for
/// the latest-wins / lease-fold consumers, see `compaction_fold`).
struct journal_cursor {
  std::streamoff offset = 0;  ///< bytes (legacy) or encoded cursor (segmented)
  std::size_t line = 0;       ///< complete lines already consumed
};

/// Segmented-layout knobs for a *new* campaign journal. All zero (the
/// default) keeps the legacy single-file layout; any nonzero value creates
/// a `journal/` store directory instead. Existing campaigns auto-detect and
/// keep their layout regardless of these options.
struct journal_options {
  std::size_t segment_bytes = 0;    ///< rotate the active segment at >= bytes
  std::size_t segment_records = 0;  ///< rotate at >= records
  std::size_t compact_segments = 0; ///< compact once sealed segments reach this

  /// Copy with zero-valued fields filled from BOSON_JOURNAL_SEGMENT_BYTES,
  /// BOSON_JOURNAL_SEGMENT_RECORDS, and BOSON_JOURNAL_COMPACT_SEGMENTS.
  journal_options with_env_defaults() const;

  bool segmented() const {
    return segment_bytes != 0 || segment_records != 0 || compact_segments != 0;
  }
};

/// Append-only JSONL writer + replayer over either layout.
class journal {
 public:
  /// Attach to an existing journal at `path`: a store directory opens in
  /// segmented mode, anything else opens (creating if needed) the legacy
  /// single file, healing any crash-torn trailing fragment first (see
  /// `jsonl_appender`). `journal_path` produces the right `path` value.
  explicit journal(std::string path);

  /// Layout-deciding constructor for a campaign directory: attaches to
  /// whichever layout already exists; for a fresh campaign creates the
  /// segmented store when `opts` (after environment defaults) asks for it,
  /// the legacy file otherwise.
  journal(const std::string& campaign_dir, const journal_options& opts);

  ~journal();

  /// Append one record; thread-safe, flushed before returning so a crash
  /// after `append` never loses the record. In segmented mode this also
  /// rotates the active segment past its thresholds and opportunistically
  /// compacts (every 64th append) once enough sealed segments accumulate.
  void append(const journal_entry& entry);

  /// Legacy: the journal file. Segmented: the store directory.
  const std::string& path() const { return path_; }

  /// True when this journal writes the segmented store layout.
  bool segmented() const { return store_ != nullptr; }

  /// Segmented mode: compact now if the sealed-segment threshold is
  /// reached. Returns the number of records folded away (0 otherwise or in
  /// legacy mode). The scheduler calls this once per scheduling pass.
  std::size_t maybe_compact();

  /// Segmented mode: compact unconditionally (still a no-op with fewer than
  /// two sealed segments). Returns the number of records folded away.
  std::size_t compact();

  /// Parse every complete line of a journal file, in order. A torn trailing
  /// line (the single-line tail a crash mid-write can leave) is ignored; a
  /// malformed line anywhere else throws `io_error` naming the line number.
  /// A missing file replays to an empty history.
  static std::vector<journal_entry> replay(const std::string& path);

  /// Incremental replay: parse the records appended after `cursor` and
  /// advance it past every record returned. The torn-tail contract carries
  /// over — an unterminated final fragment, or a malformed final line (a
  /// racing writer's flush seen mid-append), is left *before* the cursor for
  /// the next poll; a malformed line with a successor throws `io_error`
  /// naming the line. A missing file returns no records and leaves the
  /// cursor untouched.
  static std::vector<journal_entry> since(const std::string& path,
                                          journal_cursor& cursor);

  /// Raw-line incremental read for consumers that forward journal lines
  /// verbatim (the control plane's NDJSON event stream): complete non-blank
  /// lines after `cursor`, advancing it, without parsing. `max_lines` 0 = no
  /// cap — the event stream passes its page size so one slow consumer never
  /// buffers an unbounded backlog. Works on both layouts; a missing journal
  /// returns no lines and leaves the cursor untouched.
  static std::vector<std::string> raw_since(const std::string& path,
                                            std::uint64_t& cursor,
                                            std::size_t max_lines = 0);

  /// Reduce a replayed history to the latest entry per job index. Note that
  /// with lease coordination the *latest* record can be a losing claim or a
  /// heartbeat; scheduling decisions go through `lease_table::resolve`
  /// instead, which folds the full history.
  static std::map<std::size_t, journal_entry> latest_states(
      const std::vector<journal_entry>& entries);

  /// The journal's compaction fold (see `store::compaction_fold`): keeps,
  /// per job, the records that reproduce every consumer's fold state —
  /// the latest record (`latest_states`), the live lease's claim +
  /// deadline-setting heartbeat, the completing/releasing transition, and
  /// the max-attempt record (`lease_table`). The result is *self-verified*:
  /// for each job the kept subsequence is re-folded and must (a) resolve to
  /// the identical lease view and (b) be idempotent when re-applied onto
  /// the final state — because a poller whose cursor fell inside a
  /// compacted segment gets the snapshot re-delivered. Any job failing
  /// verification keeps its full history; an unparseable history is
  /// returned unchanged (compaction degrades to a pure segment merge).
  static std::vector<std::string> compaction_fold(
      const std::vector<std::string>& lines);

 private:
  void open_legacy(const std::string& file);
  void open_store(const std::string& dir, const journal_options& opts);

  std::string path_;
  std::unique_ptr<jsonl_appender> out_;          ///< legacy layout
  std::unique_ptr<store::segment_log> store_;    ///< segmented layout
  std::atomic<std::size_t> appends_{0};          ///< compaction-check pacing
};

}  // namespace boson::runtime
