#include "core/evaluate.h"

#include <cmath>

#include "common/parallel.h"
#include "common/rng.h"
#include "robust/sampler.h"

namespace boson::core {

std::map<std::string, double> prefab_metrics(const design_problem& problem,
                                             const array2d<double>& rho_design) {
  eval_options o;
  o.fab_aware = false;
  o.binarize_ideal = true;
  o.dense_objectives = false;
  o.compute_gradient = false;
  robust::variation_corner nominal;
  nominal.xi.assign(problem.fab().space.eole_terms, 0.0);
  return problem.evaluate_pattern(rho_design, nominal, o).metrics;
}

mc_stats postfab_monte_carlo(const design_problem& problem, const array2d<double>& mask,
                             std::size_t num_samples, std::uint64_t seed,
                             bool use_operator_cache) {
  require(num_samples > 0, "postfab_monte_carlo: need at least one sample");
  const rng base(seed);

  std::vector<std::map<std::string, double>> metric_samples(num_samples);
  parallel_for(num_samples, [&](std::size_t s) {
    rng r = base.fork(s);
    const robust::variation_corner corner =
        robust::random_corner(r, problem.fab().space, "mc" + std::to_string(s));
    eval_options o;
    o.fab_aware = true;
    o.hard_etch = true;
    o.dense_objectives = false;
    o.compute_gradient = false;
    // Hard-binarized samples collide across draws (identical litho corner +
    // nearby etch fields realize the same pattern); reuse their operators.
    o.use_operator_cache = use_operator_cache;
    metric_samples[s] = problem.evaluate_pattern(mask, corner, o).metrics;
  });

  mc_stats stats;
  stats.samples = num_samples;
  dvec foms(num_samples);
  for (std::size_t s = 0; s < num_samples; ++s) {
    foms[s] = problem.fom_of(metric_samples[s]);
    for (const auto& [name, value] : metric_samples[s]) stats.metric_means[name] += value;
  }
  for (auto& [name, value] : stats.metric_means) value /= static_cast<double>(num_samples);

  double mean = 0.0;
  for (const double f : foms) mean += f;
  mean /= static_cast<double>(num_samples);
  double var = 0.0;
  stats.fom_min = foms[0];
  stats.fom_max = foms[0];
  for (const double f : foms) {
    var += (f - mean) * (f - mean);
    stats.fom_min = std::min(stats.fom_min, f);
    stats.fom_max = std::max(stats.fom_max, f);
  }
  stats.fom_mean = mean;
  stats.fom_std = num_samples > 1 ? std::sqrt(var / static_cast<double>(num_samples - 1)) : 0.0;
  return stats;
}

std::vector<process_window_point> litho_process_window(const design_problem& problem,
                                                       const array2d<double>& mask,
                                                       const dvec& defocus_values_um,
                                                       const dvec& dose_values) {
  require(!defocus_values_um.empty() && !dose_values.empty(),
          "litho_process_window: empty scan axes");
  std::vector<process_window_point> window(defocus_values_um.size() * dose_values.size());
  parallel_for(window.size(), [&](std::size_t idx) {
    const double defocus = defocus_values_um[idx / dose_values.size()];
    const double dose = dose_values[idx % dose_values.size()];

    // A fabrication context whose single (nominal-slot) corner is this
    // process point; EOLE/variation space are shared.
    fab_context ctx = problem.fab();
    const std::size_t ext_nx = problem.spec().design.nx + 2 * ctx.halo;
    const std::size_t ext_ny = problem.spec().design.ny + 2 * ctx.halo;
    ctx.litho = {std::make_shared<const fab::hopkins_litho>(
        ctx.litho_cfg, fab::litho_corner_params{defocus, dose}, ext_nx, ext_ny)};
    ctx.space.num_litho_corners = 1;
    // Every scan point rebuilds the same reference operator; cache it so the
    // whole window shares one factorization.
    eval_options reference_opts;
    reference_opts.use_operator_cache = true;
    const design_problem scanned(problem.spec(), problem.shared_parameterization(),
                                 std::move(ctx), 1.6, reference_opts);

    robust::variation_corner nominal;
    nominal.xi.assign(scanned.fab().space.eole_terms, 0.0);
    eval_options o;
    o.fab_aware = true;
    o.hard_etch = true;
    o.dense_objectives = false;
    o.compute_gradient = false;
    o.use_operator_cache = true;
    const auto ev = scanned.evaluate_pattern(mask, nominal, o);
    window[idx] = {defocus, dose, scanned.fom_of(ev.metrics)};
  });
  return window;
}

std::vector<spectrum_point> wavelength_sweep(const design_problem& problem,
                                             const array2d<double>& mask,
                                             const dvec& wavelengths_um) {
  require(!wavelengths_um.empty(), "wavelength_sweep: no wavelengths");
  std::vector<spectrum_point> spectrum(wavelengths_um.size());
  parallel_for(wavelengths_um.size(), [&](std::size_t i) {
    const design_problem shifted = problem.at_wavelength(wavelengths_um[i]);
    robust::variation_corner nominal;
    nominal.xi.assign(shifted.fab().space.eole_terms, 0.0);
    eval_options o;
    o.fab_aware = true;
    o.hard_etch = true;
    o.dense_objectives = false;
    o.compute_gradient = false;
    // No operator cache here: every sweep point has a unique k0, so caching
    // would only insert zero-reuse entries that evict useful ones.
    const auto ev = shifted.evaluate_pattern(mask, nominal, o);
    spectrum[i].lambda_um = wavelengths_um[i];
    spectrum[i].fom = shifted.fom_of(ev.metrics);
    spectrum[i].metrics = ev.metrics;
  });
  return spectrum;
}

}  // namespace boson::core
