#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "fab/temperature.h"
#include "fdfd/monitor.h"
#include "fdfd/solver.h"
#include "fdfd/source.h"
#include "modes/slab.h"
#include "sparse/krylov.h"

namespace boson::fdfd {
namespace {

constexpr double k0_default = 2.0 * pi / 1.55;

/// Straight silicon waveguide through a small domain.
struct waveguide_fixture {
  grid2d g;
  pml_spec pml;
  array2d<double> eps;
  std::size_t wg_lo, wg_hi;  // core cells in y

  explicit waveguide_fixture(std::size_t nx = 70, std::size_t ny = 48, double d = 0.05) {
    g.nx = nx;
    g.ny = ny;
    g.dx = g.dy = d;
    pml.cells = 8;
    eps = array2d<double>(nx, ny, 1.0);
    wg_lo = ny / 2 - 4;
    wg_hi = ny / 2 + 4;
    const double eps_si = fab::eps_si(300.0);
    for (std::size_t ix = 0; ix < nx; ++ix)
      for (std::size_t iy = wg_lo; iy < wg_hi; ++iy) eps(ix, iy) = eps_si;
  }

  modes::slab_mode mode(std::size_t order = 1) const {
    dvec line(g.ny - 2 * pml.cells);
    for (std::size_t t = 0; t < line.size(); ++t) line[t] = eps(0, pml.cells + t);
    auto ms = modes::solve_slab_modes(line, g.dy, k0_default, order + 2);
    return ms.at(order - 1);
  }

  std::size_t span_start() const { return pml.cells; }
  std::size_t span_count() const { return g.ny - 2 * pml.cells; }

  array2d<cplx> solve_with_source(const fdfd_solver& solver, std::size_t src_ix,
                                  int direction) const {
    array2d<cplx> current(g.nx, g.ny, cplx{});
    mode_source_spec ss;
    ss.axis = port_axis::vertical;
    ss.line_index = src_ix;
    ss.span_start = span_start();
    ss.direction = direction;
    add_mode_source(current, ss, mode(), g.dx);
    return solver.solve(current);
  }
};

// ------------------------------------------------------------- operator ----

class operator_grids : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(operator_grids, scaled_helmholtz_matrix_is_complex_symmetric) {
  const auto [nx, ny] = GetParam();
  grid2d g;
  g.nx = nx;
  g.ny = ny;
  g.dx = 0.05;
  g.dy = 0.04;
  pml_spec pml;
  pml.cells = 6;
  rng r(nx + ny);
  array2d<double> eps(nx, ny);
  for (auto& v : eps) v = 1.0 + 11.0 * r.uniform(0, 1);
  fdfd_solver solver(g, pml, k0_default, eps);
  EXPECT_LT(solver.assemble_csr().asymmetry(), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(grids, operator_grids,
                         ::testing::Values(std::pair<std::size_t, std::size_t>{24, 20},
                                           std::pair<std::size_t, std::size_t>{40, 16},
                                           std::pair<std::size_t, std::size_t>{16, 40}));

TEST(fdfd_solver, solution_satisfies_csr_residual) {
  waveguide_fixture f(48, 36);
  fdfd_solver solver(f.g, f.pml, k0_default, f.eps);
  array2d<cplx> current(f.g.nx, f.g.ny, cplx{});
  current(20, f.g.ny / 2) = cplx{1.0};
  const auto field = solver.solve(current);

  // Rebuild b exactly as the solver does and check A e = b in CSR form.
  const auto a = solver.assemble_csr();
  cvec e(field.raw());
  const auto ae = a.matvec(e);
  cvec b(f.g.cell_count(), cplx{});
  const std::size_t idx = 20 * f.g.ny + f.g.ny / 2;
  b[idx] = -imag_unit * k0_default * solver.stretch_x().center[20] *
           solver.stretch_y().center[f.g.ny / 2];
  double err = 0.0, scale = 0.0;
  for (std::size_t i = 0; i < ae.size(); ++i) {
    err = std::max(err, std::abs(ae[i] - b[i]));
    scale = std::max(scale, std::abs(b[i]));
  }
  EXPECT_LT(err, 1e-10 * scale);
}

TEST(fdfd_solver, validates_inputs) {
  grid2d g;
  g.nx = g.ny = 30;
  g.dx = g.dy = 0.05;
  pml_spec pml;
  pml.cells = 6;
  array2d<double> eps(30, 30, 1.0);
  EXPECT_THROW(fdfd_solver(g, pml, -1.0, eps), bad_argument);
  array2d<double> wrong(29, 30, 1.0);
  EXPECT_THROW(fdfd_solver(g, pml, k0_default, wrong), bad_argument);
  fdfd_solver solver(g, pml, k0_default, eps);
  array2d<cplx> bad_src(29, 30);
  EXPECT_THROW(solver.solve(bad_src), bad_argument);
}

// -------------------------------------------------------------- physics ----

TEST(physics, pml_absorbs_outgoing_waves) {
  // Homogeneous medium, point source at the center: the field near the
  // domain boundary (inside the PML) must be strongly attenuated.
  grid2d g;
  g.nx = g.ny = 60;
  g.dx = g.dy = 0.05;
  pml_spec pml;
  pml.cells = 10;
  array2d<double> eps(60, 60, 1.0);
  fdfd_solver solver(g, pml, k0_default, eps);
  array2d<cplx> current(60, 60, cplx{});
  current(30, 30) = cplx{1.0};
  const auto field = solver.solve(current);

  // Compare against the field just outside the source, where the cylindrical
  // wave is still strong; the PML plus 1/sqrt(r) spreading must attenuate the
  // boundary field by more than three orders of magnitude.
  const double center_mag = std::abs(field(33, 30));
  const double edge_mag = std::abs(field(59, 30));
  EXPECT_GT(center_mag, 0.0);
  EXPECT_LT(edge_mag, 1e-3 * center_mag);
}

TEST(physics, free_space_wavelength_matches_k0) {
  // 1-D-like propagation: a full-height line source in vacuum creates a
  // quasi-plane wave; the discrete phase advance per cell approximates k0 dx.
  grid2d g;
  g.nx = 100;
  g.ny = 40;
  g.dx = g.dy = 0.05;
  pml_spec pml;
  pml.cells = 10;
  array2d<double> eps(g.nx, g.ny, 1.0);
  fdfd_solver solver(g, pml, k0_default, eps);
  array2d<cplx> current(g.nx, g.ny, cplx{});
  for (std::size_t iy = 0; iy < g.ny; ++iy) current(30, iy) = cplx{1.0};
  const auto field = solver.solve(current);

  const std::size_t iy = g.ny / 2;
  double total_phase = 0.0;
  int counted = 0;
  for (std::size_t ix = 45; ix < 80; ++ix) {
    const cplx ratio = field(ix + 1, iy) / field(ix, iy);
    total_phase += std::arg(ratio);
    ++counted;
  }
  const double phase_per_cell = total_phase / counted;
  // Discrete dispersion: q dx = 2 asin(k0 dx / 2).
  const double expected = 2.0 * std::asin(k0_default * g.dx / 2.0);
  EXPECT_NEAR(std::abs(phase_per_cell), expected, 0.01 * expected);
}

class pml_strengths : public ::testing::TestWithParam<std::size_t> {};

TEST_P(pml_strengths, thicker_pml_never_reflects_more) {
  // Launch a guided mode at a wall of PML and measure the reflected flux.
  const std::size_t cells = GetParam();
  waveguide_fixture f(70, 48);
  f.pml.cells = cells;
  fdfd_solver solver(f.g, f.pml, k0_default, f.eps);
  const auto field = f.solve_with_source(solver, 30, +1);
  // Net flux between source and right PML = incident - reflected; compare
  // against the flux right next to the source (the launched power).
  flux_monitor near(port_axis::vertical, 35, f.span_start(), f.span_count(), f.g.dx,
                    f.g.dy, k0_default);
  flux_monitor far(port_axis::vertical, 69 - cells - 2, f.span_start(), f.span_count(),
                   f.g.dx, f.g.dy, k0_default);
  const double p_near = near.evaluate(field).value;
  const double p_far = far.evaluate(field).value;
  ASSERT_GT(p_near, 0.0);
  // Power is conserved down the guide into the absorber: any PML reflection
  // would show as a standing-wave mismatch between the two planes.
  EXPECT_NEAR(p_far / p_near, 1.0, 0.02) << "pml cells = " << cells;
}

INSTANTIATE_TEST_SUITE_P(thickness, pml_strengths, ::testing::Values(8, 12, 16));

TEST(physics, rectangular_cells_preserve_transmission) {
  // dx != dy: a straight waveguide must still transmit unit power.
  grid2d g;
  g.nx = 90;
  g.ny = 48;
  g.dx = 0.04;
  g.dy = 0.05;
  pml_spec pml;
  pml.cells = 10;
  array2d<double> eps(g.nx, g.ny, 1.0);
  const double eps_si = fab::eps_si(300.0);
  for (std::size_t ix = 0; ix < g.nx; ++ix)
    for (std::size_t iy = 20; iy < 28; ++iy) eps(ix, iy) = eps_si;
  fdfd_solver solver(g, pml, k0_default, eps);

  dvec line(28);
  for (std::size_t t = 0; t < 28; ++t) line[t] = eps(0, 10 + t);
  const auto ms = modes::solve_slab_modes(line, g.dy, k0_default, 2);
  ASSERT_GE(ms.size(), 1u);

  array2d<cplx> current(g.nx, g.ny, cplx{});
  mode_source_spec ss;
  ss.axis = port_axis::vertical;
  ss.line_index = 25;
  ss.span_start = 10;
  ss.direction = +1;
  add_mode_source(current, ss, ms[0], g.dx);
  const auto field = solver.solve(current);

  mode_power_monitor near(port_axis::vertical, 35, 10, ms[0], g.dy, k0_default, g.dx);
  mode_power_monitor far(port_axis::vertical, 70, 10, ms[0], g.dy, k0_default, g.dx);
  const double p_near = near.evaluate(field).value;
  ASSERT_GT(p_near, 0.0);
  EXPECT_NEAR(far.evaluate(field).value / p_near, 1.0, 0.02);
}

TEST(physics, mode_source_is_unidirectional) {
  waveguide_fixture f;
  fdfd_solver solver(f.g, f.pml, k0_default, f.eps);
  const auto field = f.solve_with_source(solver, 25, +1);
  flux_monitor right(port_axis::vertical, 45, f.span_start(), f.span_count(), f.g.dx, f.g.dy,
                     k0_default);
  flux_monitor left(port_axis::vertical, 14, f.span_start(), f.span_count(), f.g.dx, f.g.dy,
                    k0_default);
  const double p_right = right.evaluate(field).value;
  const double p_left = left.evaluate(field).value;
  EXPECT_GT(p_right, 0.0);
  EXPECT_GT(p_right / std::max(std::abs(p_left), 1e-30), 100.0);
}

TEST(physics, backward_mode_source_mirrors_forward) {
  waveguide_fixture f;
  fdfd_solver solver(f.g, f.pml, k0_default, f.eps);
  const auto field = f.solve_with_source(solver, 45, -1);
  flux_monitor left(port_axis::vertical, 20, f.span_start(), f.span_count(), f.g.dx, f.g.dy,
                    k0_default);
  const double p_left = left.evaluate(field).value;  // net +x flux; must be negative
  EXPECT_LT(p_left, 0.0);
}

TEST(physics, straight_waveguide_transmits_unit_power) {
  waveguide_fixture f;
  fdfd_solver solver(f.g, f.pml, k0_default, f.eps);
  const auto field = f.solve_with_source(solver, 20, +1);
  const auto mode = f.mode();
  mode_power_monitor near(port_axis::vertical, 30, f.span_start(), mode, f.g.dy, k0_default,
                          f.g.dx);
  mode_power_monitor far(port_axis::vertical, 55, f.span_start(), mode, f.g.dy, k0_default,
                         f.g.dx);
  const double p_near = near.evaluate(field).value;
  const double p_far = far.evaluate(field).value;
  ASSERT_GT(p_near, 0.0);
  EXPECT_NEAR(p_far / p_near, 1.0, 0.01);
}

TEST(physics, modal_power_matches_poynting_flux) {
  waveguide_fixture f;
  fdfd_solver solver(f.g, f.pml, k0_default, f.eps);
  const auto field = f.solve_with_source(solver, 20, +1);
  mode_power_monitor mode_mon(port_axis::vertical, 50, f.span_start(), f.mode(), f.g.dy,
                              k0_default, f.g.dx);
  flux_monitor flux_mon(port_axis::vertical, 50, f.span_start(), f.span_count(), f.g.dx,
                        f.g.dy, k0_default);
  const double p_mode = mode_mon.evaluate(field).value;
  const double p_flux = flux_mon.evaluate(field).value;
  EXPECT_NEAR(p_mode / p_flux, 1.0, 0.02);
}

TEST(physics, scatterer_conserves_power) {
  // Power in = transmitted + reflected + radiated: check net flux through a
  // closed box around a scatterer is ~zero (lossless medium).
  waveguide_fixture f(80, 56);
  // A silicon post partially blocking the guide.
  for (std::size_t ix = 40; ix < 44; ++ix)
    for (std::size_t iy = f.wg_lo - 4; iy < f.wg_lo + 2; ++iy) f.eps(ix, iy) = 12.1;
  fdfd_solver solver(f.g, f.pml, k0_default, f.eps);
  const auto field = f.solve_with_source(solver, 20, +1);

  const std::size_t lo = f.pml.cells + 1, hi_x = f.g.nx - f.pml.cells - 2,
                    hi_y = f.g.ny - f.pml.cells - 2;
  flux_monitor right(port_axis::vertical, hi_x, lo, hi_y - lo, f.g.dx, f.g.dy, k0_default);
  flux_monitor left(port_axis::vertical, 25, lo, hi_y - lo, f.g.dx, f.g.dy, k0_default);
  flux_monitor top(port_axis::horizontal, hi_y, 26, hi_x - 26, f.g.dy, f.g.dx, k0_default);
  flux_monitor bottom(port_axis::horizontal, lo, 26, hi_x - 26, f.g.dy, f.g.dx, k0_default);

  const double in = left.evaluate(field).value;
  const double out = right.evaluate(field).value + top.evaluate(field).value -
                     bottom.evaluate(field).value;
  ASSERT_GT(in, 0.0);
  EXPECT_NEAR(out / in, 1.0, 0.03);
}

TEST(physics, reciprocity_of_point_sources) {
  // With the symmetric scaled operator, G(p, q) = G(q, p) exactly for
  // interior points (s = 1 at both).
  waveguide_fixture f(60, 44);
  for (std::size_t ix = 28; ix < 33; ++ix)
    for (std::size_t iy = 18; iy < 23; ++iy) f.eps(ix, iy) = 8.0;  // arbitrary scatterer
  fdfd_solver solver(f.g, f.pml, k0_default, f.eps);

  array2d<cplx> ja(f.g.nx, f.g.ny, cplx{});
  ja(18, 22) = cplx{1.0};
  const auto ea = solver.solve(ja);
  array2d<cplx> jb(f.g.nx, f.g.ny, cplx{});
  jb(42, 24) = cplx{1.0};
  const auto eb = solver.solve(jb);
  EXPECT_NEAR(std::abs(ea(42, 24) - eb(18, 22)), 0.0, 1e-10 * std::abs(ea(42, 24)));
}

// ------------------------------------------------------------ gradients ----

/// Wirtinger FD check: for real F(e), dF = 2 Re(g_i de_i).
template <class Monitor>
void expect_monitor_gradient_matches_fd(const Monitor& mon, array2d<cplx> field) {
  const auto base = mon.evaluate(field);
  const double h = 1e-6;
  ASSERT_FALSE(base.grad.empty());
  for (std::size_t t = 0; t < std::min<std::size_t>(base.grad.size(), 6); ++t) {
    const auto [idx, gval] = base.grad[t];
    // Real perturbation.
    field.raw()[idx] += h;
    const double f_re = mon.evaluate(field).value;
    field.raw()[idx] -= h;
    EXPECT_NEAR((f_re - base.value) / h, 2.0 * gval.real(),
                1e-4 * (std::abs(gval) + 1.0) + 1e-8);
    // Imaginary perturbation.
    field.raw()[idx] += cplx(0.0, h);
    const double f_im = mon.evaluate(field).value;
    field.raw()[idx] -= cplx(0.0, h);
    EXPECT_NEAR((f_im - base.value) / h, -2.0 * gval.imag(),
                1e-4 * (std::abs(gval) + 1.0) + 1e-8);
  }
}

TEST(gradients, flux_monitor_gradient_matches_fd) {
  waveguide_fixture f;
  fdfd_solver solver(f.g, f.pml, k0_default, f.eps);
  const auto field = f.solve_with_source(solver, 20, +1);
  flux_monitor mon(port_axis::vertical, 40, f.span_start(), f.span_count(), f.g.dx, f.g.dy,
                   k0_default);
  expect_monitor_gradient_matches_fd(mon, field);
}

TEST(gradients, horizontal_flux_monitor_gradient_matches_fd) {
  waveguide_fixture f;
  fdfd_solver solver(f.g, f.pml, k0_default, f.eps);
  const auto field = f.solve_with_source(solver, 20, +1);
  flux_monitor mon(port_axis::horizontal, f.g.ny - f.pml.cells - 3, 20, 30, f.g.dy, f.g.dx,
                   k0_default);
  expect_monitor_gradient_matches_fd(mon, field);
}

TEST(gradients, mode_monitor_gradient_matches_fd) {
  waveguide_fixture f;
  fdfd_solver solver(f.g, f.pml, k0_default, f.eps);
  const auto field = f.solve_with_source(solver, 20, +1);
  mode_power_monitor mon(port_axis::vertical, 45, f.span_start(), f.mode(), f.g.dy,
                         k0_default, f.g.dx);
  expect_monitor_gradient_matches_fd(mon, field);
}

TEST(gradients, adjoint_eps_gradient_matches_fd) {
  // Objective: modal power at the output of a perturbed waveguide.
  waveguide_fixture f(56, 40);
  const auto mode = f.mode();
  const std::size_t src = 16, mon_ix = 44;

  auto objective = [&](const array2d<double>& eps) {
    fdfd_solver solver(f.g, f.pml, k0_default, eps);
    const auto field = f.solve_with_source(solver, src, +1);
    mode_power_monitor mon(port_axis::vertical, mon_ix, f.span_start(), mode, f.g.dy,
                           k0_default, f.g.dx);
    return mon.evaluate(field).value;
  };

  fdfd_solver solver(f.g, f.pml, k0_default, f.eps);
  const auto field = f.solve_with_source(solver, src, +1);
  mode_power_monitor mon(port_axis::vertical, mon_ix, f.span_start(), mode, f.g.dy,
                         k0_default, f.g.dx);
  const auto res = mon.evaluate(field);
  const auto lambda = solver.solve_adjoint(res.grad);
  array2d<double> grad(f.g.nx, f.g.ny, 0.0);
  solver.accumulate_eps_gradient(field, lambda, grad);

  const double h = 1e-5;
  for (const auto& [ix, iy] : {std::pair<std::size_t, std::size_t>{30, f.wg_lo + 2},
                              std::pair<std::size_t, std::size_t>{32, f.wg_lo - 2},
                              std::pair<std::size_t, std::size_t>{28, f.wg_hi + 1}}) {
    array2d<double> ep = f.eps;
    ep(ix, iy) += h;
    array2d<double> em = f.eps;
    em(ix, iy) -= h;
    const double fd = (objective(ep) - objective(em)) / (2.0 * h);
    EXPECT_NEAR(grad(ix, iy), fd, 2e-3 * (std::abs(fd) + std::abs(grad(ix, iy))) + 1e-12)
        << "cell (" << ix << "," << iy << ")";
  }
}

TEST(fdfd_solver, iterative_path_matches_direct_solver) {
  // The CSR + ILU(0) + BiCGSTAB alternative solve path must reproduce the
  // banded-LU solution on a real (indefinite, PML-damped) Helmholtz system.
  waveguide_fixture f(40, 30);
  fdfd_solver solver(f.g, f.pml, k0_default, f.eps);
  array2d<cplx> current(f.g.nx, f.g.ny, cplx{});
  current(14, f.g.ny / 2) = cplx{1.0};
  const auto direct = solver.solve(current);

  const auto a = solver.assemble_csr();
  cvec b(f.g.cell_count(), cplx{});
  b[14 * f.g.ny + f.g.ny / 2] = -imag_unit * k0_default *
                                solver.stretch_x().center[14] *
                                solver.stretch_y().center[f.g.ny / 2];
  const sp::ilu0 prec(a);
  cvec x;
  const auto res = sp::bicgstab(a, b, x, &prec, 1e-10, 4000);
  ASSERT_TRUE(res.converged) << "residual " << res.relative_residual;

  double worst = 0.0;
  double scale = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    worst = std::max(worst, std::abs(x[i] - direct.raw()[i]));
    scale = std::max(scale, std::abs(direct.raw()[i]));
  }
  EXPECT_LT(worst, 1e-6 * scale);

  // GMRES on the same preconditioned system.
  cvec xg;
  const auto gres = sp::gmres(a, b, xg, &prec, 80, 1e-10, 4000);
  ASSERT_TRUE(gres.converged) << "residual " << gres.relative_residual;
  double worst_g = 0.0;
  for (std::size_t i = 0; i < xg.size(); ++i)
    worst_g = std::max(worst_g, std::abs(xg[i] - direct.raw()[i]));
  EXPECT_LT(worst_g, 1e-6 * scale);
}

TEST(gradients, adjoint_reuses_factorization) {
  // Two adjoint solves after a forward solve must agree with fresh solves.
  waveguide_fixture f(48, 36);
  fdfd_solver solver(f.g, f.pml, k0_default, f.eps);
  const auto field = f.solve_with_source(solver, 16, +1);
  (void)field;
  field_gradient g1{{200, cplx{1.0, 0.5}}};
  const auto l1 = solver.solve_adjoint(g1);
  fdfd_solver fresh(f.g, f.pml, k0_default, f.eps);
  const auto l2 = fresh.solve_adjoint(g1);
  for (std::size_t i = 0; i < l1.size(); ++i)
    EXPECT_NEAR(std::abs(l1.raw()[i] - l2.raw()[i]), 0.0, 1e-12);
}

}  // namespace
}  // namespace boson::fdfd
