#include "sim/cache.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

#include "common/env.h"
#include "common/error.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace boson::sim {

namespace {

/// Process-wide mirrors of the per-instance cache statistics, so cache
/// behaviour shows up in /v1/metrics and the Prometheus exposition without
/// a handle on the cache instance.
struct cache_counter_block {
  obs::counter& hits;
  obs::counter& misses;
  obs::counter& evictions;
  obs::counter& reuse_hits;
};

cache_counter_block& cache_counters() {
  auto& reg = obs::registry::global();
  static cache_counter_block block{reg.get_counter("sim.engine_cache.hits"),
                                   reg.get_counter("sim.engine_cache.misses"),
                                   reg.get_counter("sim.engine_cache.evictions"),
                                   reg.get_counter("sim.engine_cache.reuse_hits")};
  return block;
}

/// FNV-1a over raw bytes; the digest accumulates every field that determines
/// the prepared operator.
std::uint64_t fnv1a(const void* data, std::size_t bytes, std::uint64_t h) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= 1099511628211ULL;
  }
  return h;
}

template <class T>
std::uint64_t fnv_value(const T& v, std::uint64_t h) {
  return fnv1a(&v, sizeof(v), h);
}

std::uint64_t operator_digest(const grid2d& grid, const pml_spec& pml, double k0,
                              const array2d<double>& eps, const engine_settings& settings) {
  std::uint64_t h = 14695981039346656037ULL;
  h = fnv_value(grid.nx, h);
  h = fnv_value(grid.ny, h);
  h = fnv_value(grid.dx, h);
  h = fnv_value(grid.dy, h);
  h = fnv_value(pml.cells, h);
  h = fnv_value(pml.order, h);
  h = fnv_value(pml.r0, h);
  h = fnv_value(k0, h);
  h = fnv_value(settings.backend, h);
  h = fnv_value(settings.tol, h);
  h = fnv_value(settings.max_iterations, h);
  h = fnv_value(settings.gmres_restart, h);
  h = fnv_value(settings.reuse, h);
  h = fnv_value(settings.reuse_max_delta, h);
  h = fnv_value(settings.reuse_max_iterations, h);
  h = fnv1a(eps.data(), eps.size() * sizeof(double), h);
  return h;
}

/// RMS permittivity change of `eps` against `nominal`, relative to the
/// nominal's RMS level (floored at 1 so vacuum-dominated grids are judged on
/// the absolute change). This is the reuse heuristic: small scores mean the
/// nominal LU preconditions the perturbed operator in a few iterations.
double perturbation_score(const array2d<double>& nominal, const array2d<double>& eps) {
  if (nominal.size() != eps.size() || nominal.size() == 0)
    return std::numeric_limits<double>::infinity();
  double dd = 0.0;
  double nn = 0.0;
  for (std::size_t i = 0; i < eps.size(); ++i) {
    const double d = eps.data()[i] - nominal.data()[i];
    dd += d * d;
    nn += nominal.data()[i] * nominal.data()[i];
  }
  const double inv_n = 1.0 / static_cast<double>(eps.size());
  return std::sqrt(dd * inv_n) / std::max(1.0, std::sqrt(nn * inv_n));
}

/// Everything of the operator key except the permittivity itself.
bool same_operator_family(const simulation_engine& eng, const grid2d& grid,
                          const pml_spec& pml, double k0,
                          const engine_settings& settings) {
  if (eng.k0() != k0 || eng.grid().nx != grid.nx || eng.grid().ny != grid.ny ||
      eng.grid().dx != grid.dx || eng.grid().dy != grid.dy)
    return false;
  const pml_spec& p = eng.pml();
  if (p.cells != pml.cells || p.order != pml.order || p.r0 != pml.r0) return false;
  const engine_settings& s = eng.settings();
  return s.backend == settings.backend && s.tol == settings.tol &&
         s.max_iterations == settings.max_iterations &&
         s.gmres_restart == settings.gmres_restart && s.reuse == settings.reuse &&
         s.reuse_max_delta == settings.reuse_max_delta &&
         s.reuse_max_iterations == settings.reuse_max_iterations;
}

}  // namespace

engine_cache::engine_cache(std::size_t capacity) : capacity_(capacity) {
  require(capacity >= 1, "engine_cache: capacity must be at least 1");
  cache_counters();  // register the family even before the first acquire()
}

bool operator_cache_enabled() { return env_int("BOSON_SIM_CACHE", 4) != 0; }

engine_cache& engine_cache::global() {
  static engine_cache cache(
      static_cast<std::size_t>(std::max(1L, env_int("BOSON_SIM_CACHE", 4))));
  return cache;
}

bool engine_cache::matches(const entry& e, const grid2d& grid, const pml_spec& pml,
                           double k0, const array2d<double>& eps,
                           const engine_settings& settings) const {
  const simulation_engine& eng = *e.engine;
  if (!same_operator_family(eng, grid, pml, k0, settings)) return false;
  const array2d<double>& cached = eng.eps();
  return cached.size() == eps.size() &&
         std::memcmp(cached.data(), eps.data(), eps.size() * sizeof(double)) == 0;
}

std::shared_ptr<const simulation_engine> engine_cache::find_nominal(
    const grid2d& grid, const pml_spec& pml, double k0, const array2d<double>& eps,
    const engine_settings& settings) const {
  std::shared_ptr<const simulation_engine> best;
  double best_score = 0.0;
  for (const entry& e : lru_) {
    const simulation_engine& eng = *e.engine;
    if (!same_operator_family(eng, grid, pml, k0, settings)) continue;
    const std::shared_ptr<const simulation_engine>& root =
        eng.is_reuse() ? eng.nominal() : e.engine;
    const double score = perturbation_score(root->eps(), eps);
    if (score > settings.reuse_max_delta) continue;
    if (!best || score < best_score) {
      best_score = score;
      best = root;
    }
  }
  return best;
}

std::shared_ptr<const simulation_engine> engine_cache::acquire(
    const grid2d& grid, const pml_spec& pml, double k0, const array2d<double>& eps,
    const engine_settings& settings) {
  const std::uint64_t digest = operator_digest(grid, pml, k0, eps, settings);
  std::shared_ptr<const simulation_engine> nominal;

  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = index_.find(digest);
    if (it != index_.end() && matches(*it->second, grid, pml, k0, eps, settings)) {
      ++stats_.hits;
      cache_counters().hits.inc();
      lru_.splice(lru_.begin(), lru_, it->second);  // promote to most-recent
      return it->second->engine;
    }
    ++stats_.misses;
    cache_counters().misses.inc();
    // A miss may still be close to a cached preparation: the nearby-operator
    // path only needs the nominal factorization, not an exact eps match.
    if (settings.backend == backend_kind::banded && settings.reuse &&
        operator_reuse_enabled())
      nominal = find_nominal(grid, pml, k0, eps, settings);
  }

  // Build outside the lock: concurrent misses on the same key may duplicate
  // the preparation, but never block each other behind it.
  std::shared_ptr<const simulation_engine> engine;
  {
    obs::span sp("sim.prepare", "sim");
    if (nominal != nullptr) {
      if (sp.active()) sp.arg("mode", "nearby_reuse");
      engine = std::make_shared<const simulation_engine>(std::move(nominal), eps);
      reuse_counter::prepares_avoided();
    } else {
      if (sp.active()) sp.arg("mode", "full");
      engine = std::make_shared<const simulation_engine>(grid, pml, k0, eps, settings);
    }
  }

  const std::lock_guard<std::mutex> lock(mutex_);
  if (engine->is_reuse()) {
    ++stats_.reuse_hits;
    cache_counters().reuse_hits.inc();
  }
  const auto it = index_.find(digest);
  if (it != index_.end()) {
    if (matches(*it->second, grid, pml, k0, eps, settings)) {
      // Another thread inserted the same operator while we were building.
      lru_.splice(lru_.begin(), lru_, it->second);
      return it->second->engine;
    }
    // Digest collision with a different operator: replace the old entry.
    lru_.erase(it->second);
    index_.erase(it);
    ++stats_.evictions;
    cache_counters().evictions.inc();
  }
  lru_.push_front(entry{digest, engine});
  index_[digest] = lru_.begin();
  while (lru_.size() > capacity_) {
    index_.erase(lru_.back().digest);
    lru_.pop_back();
    ++stats_.evictions;
    cache_counters().evictions.inc();
  }
  return engine;
}

engine_cache::cache_stats engine_cache::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  cache_stats s = stats_;
  s.entries = lru_.size();
  return s;
}

void engine_cache::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  lru_.clear();
  index_.clear();
  stats_ = cache_stats{};
}

}  // namespace boson::sim
