#include "sparse/banded.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace boson::sp {

namespace {

/// c[t] -= s[t] * a for t in [0, n): the shared inner loop of the
/// factorization's rank-1 updates and of forward/back substitution. Written
/// in explicit real arithmetic — the same products and sums as the complex
/// expression, so results are bit-identical for finite values — because
/// std::complex multiplies compile to scalar code with a NaN-recovery
/// branch that blocks vectorization.
inline void sub_scaled(cplx* dst, const cplx* src, cplx a, std::size_t n) {
  double* __restrict__ d = reinterpret_cast<double*>(dst);
  const double* __restrict__ s = reinterpret_cast<const double*>(src);
  const double ar = a.real();
  const double ai = a.imag();
  for (std::size_t t = 0; t < n; ++t) {
    const double sr = s[2 * t];
    const double si = s[2 * t + 1];
    d[2 * t] -= sr * ar - si * ai;
    d[2 * t + 1] -= sr * ai + si * ar;
  }
}

}  // namespace

banded_lu::banded_lu(std::size_t n, std::size_t kl, std::size_t ku)
    : n_(n), kl_(kl), ku_(ku), ab_(n, 2 * kl + ku + 1, cplx{}), pivot_(n, 0) {
  require(n > 0, "banded_lu: empty system");
  require(kl < n && ku < n, "banded_lu: bandwidth must be smaller than n");
}

void banded_lu::add(std::size_t i, std::size_t j, cplx v) {
  require(!factored_, "banded_lu::add: matrix already factored");
  require(i < n_ && j < n_, "banded_lu::add: index out of range");
  require(j + kl_ >= i && i + ku_ >= j, "banded_lu::add: entry outside band");
  ab_(j, offset(i, j)) += v;
}

cplx banded_lu::at(std::size_t i, std::size_t j) const {
  if (i >= n_ || j >= n_) return cplx{};
  if (j + kl_ < i || i + ku_ + kl_ < j) return cplx{};
  return ab_(j, offset(i, j));
}

void banded_lu::factor() {
  require(!factored_, "banded_lu::factor: already factored");
  const std::size_t band_hi = ku_ + kl_;  // widest upper offset after pivoting
  // Cache-blocked right-looking elimination: pivot columns are processed in
  // panels, and each trailing column receives the whole panel's interchanges
  // and rank-1 updates in one pass while it is resident in cache. The
  // per-element operation sequence is exactly that of the unblocked
  // column-by-column algorithm, so the factorization is bit-identical; only
  // the loop order over trailing columns changes.
  const std::size_t panel = std::min<std::size_t>(8, band_hi + 1);

  for (std::size_t j0 = 0; j0 < n_; j0 += panel) {
    const std::size_t j1 = std::min(j0 + panel, n_);

    // Panel factorization: columns [j0, j1) are updated eagerly so every
    // pivot search sees a fully eliminated column.
    for (std::size_t j = j0; j < j1; ++j) {
      const std::size_t last_row = std::min(j + kl_, n_ - 1);
      std::size_t p = j;
      double best = std::abs(ab_(j, offset(j, j)));
      for (std::size_t i = j + 1; i <= last_row; ++i) {
        const double mag = std::abs(ab_(j, offset(i, j)));
        if (mag > best) {
          best = mag;
          p = i;
        }
      }
      check_numeric(best > 1e-300, "banded_lu::factor: singular pivot");
      pivot_[j] = p;

      const std::size_t panel_col = std::min({j + band_hi, j1 - 1, n_ - 1});
      if (p != j) {
        for (std::size_t c = j; c <= panel_col; ++c)
          std::swap(ab_(c, offset(j, c)), ab_(c, offset(p, c)));
      }

      // Multipliers for column j (contiguous in the column-compact storage).
      const cplx inv_pivot = 1.0 / ab_(j, offset(j, j));
      const std::size_t rows_below = last_row - j;
      if (rows_below == 0) continue;
      cplx* col_j = &ab_(j, offset(j + 1, j));
      for (std::size_t t = 0; t < rows_below; ++t) col_j[t] *= inv_pivot;

      for (std::size_t c = j + 1; c <= panel_col; ++c) {
        const cplx ajc = ab_(c, offset(j, c));
        if (ajc == cplx{}) continue;
        sub_scaled(&ab_(c, offset(j + 1, c)), col_j, ajc, rows_below);
      }
    }

    // Trailing update: replay the panel's row interchanges and eliminations
    // on each column past the panel, in pivot order, while the column stays
    // hot in cache (the panel's multiplier columns fit in L1 together).
    if (j1 == n_) break;
    const std::size_t last_col = std::min(j1 - 1 + band_hi, n_ - 1);
    for (std::size_t c = j1; c <= last_col; ++c) {
      const std::size_t first_j = (c > band_hi && c - band_hi > j0) ? c - band_hi : j0;
      for (std::size_t j = first_j; j < j1; ++j) {
        if (pivot_[j] != j)
          std::swap(ab_(c, offset(j, c)), ab_(c, offset(pivot_[j], c)));
        const cplx ajc = ab_(c, offset(j, c));
        if (ajc == cplx{}) continue;
        const std::size_t rows_below = std::min(j + kl_, n_ - 1) - j;
        if (rows_below == 0) continue;
        sub_scaled(&ab_(c, offset(j + 1, c)), &ab_(j, offset(j + 1, j)), ajc,
                   rows_below);
      }
    }
  }
  factored_ = true;
}

cvec banded_lu::solve(const cvec& b) const {
  require(factored_, "banded_lu::solve: factor() first");
  require(b.size() == n_, "banded_lu::solve: rhs size mismatch");
  cvec x = b;

  // Forward substitution with on-the-fly row interchanges (L has unit
  // diagonal; multipliers are stored below the diagonal of each column).
  for (std::size_t j = 0; j < n_; ++j) {
    if (pivot_[j] != j) std::swap(x[j], x[pivot_[j]]);
    const std::size_t last_row = std::min(j + kl_, n_ - 1);
    const cplx xj = x[j];
    if (xj == cplx{} || last_row == j) continue;
    sub_scaled(&x[j + 1], &ab_(j, offset(j + 1, j)), xj, last_row - j);
  }

  // Back substitution on U (bandwidth ku + kl).
  const std::size_t band_hi = ku_ + kl_;
  for (std::size_t jj = n_; jj-- > 0;) {
    x[jj] /= ab_(jj, offset(jj, jj));
    const cplx xj = x[jj];
    if (xj == cplx{}) continue;
    const std::size_t first_row = (jj > band_hi) ? jj - band_hi : 0;
    if (first_row == jj) continue;
    sub_scaled(&x[first_row], &ab_(jj, offset(first_row, jj)), xj, jj - first_row);
  }
  return x;
}

std::vector<cvec> banded_lu::solve(const std::vector<cvec>& bs) const {
  require(factored_, "banded_lu::solve: factor() first");
  for (const auto& b : bs) require(b.size() == n_, "banded_lu::solve: rhs size mismatch");
  const std::size_t m = bs.size();
  if (m == 0) return {};
  // A one-RHS batch takes the scalar substitution verbatim, so batched and
  // scalar callers agree bit-for-bit (and the block pack/unpack is skipped).
  if (m == 1) {
    std::vector<cvec> xs;
    xs.push_back(solve(bs[0]));
    return xs;
  }

  // Pack the batch into one contiguous row-major n x m block: element
  // (i, k) is RHS k at row i, so every inner loop below streams over the
  // batch with unit stride and vectorizes.
  cvec x(n_ * m);
  for (std::size_t k = 0; k < m; ++k) {
    const cvec& b = bs[k];
    for (std::size_t i = 0; i < n_; ++i) x[i * m + k] = b[i];
  }

  // Forward substitution, all RHS per column: each stored multiplier is read
  // once and applied to the whole block row.
  for (std::size_t j = 0; j < n_; ++j) {
    if (pivot_[j] != j) {
      cplx* row_j = &x[j * m];
      cplx* row_p = &x[pivot_[j] * m];
      for (std::size_t k = 0; k < m; ++k) std::swap(row_j[k], row_p[k]);
    }
    const std::size_t last_row = std::min(j + kl_, n_ - 1);
    if (last_row == j) continue;
    const cplx* col_j = &ab_(j, offset(j + 1, j));
    const cplx* row_j = &x[j * m];
    for (std::size_t i = j + 1; i <= last_row; ++i) {
      const cplx a = col_j[i - j - 1];
      if (a == cplx{}) continue;
      sub_scaled(&x[i * m], row_j, a, m);
    }
  }

  // Back substitution on U (bandwidth ku + kl).
  const std::size_t band_hi = ku_ + kl_;
  for (std::size_t jj = n_; jj-- > 0;) {
    const cplx inv_diag = 1.0 / ab_(jj, offset(jj, jj));
    cplx* row_j = &x[jj * m];
    for (std::size_t k = 0; k < m; ++k) row_j[k] *= inv_diag;
    const std::size_t first_row = (jj > band_hi) ? jj - band_hi : 0;
    if (first_row == jj) continue;
    const cplx* col = &ab_(jj, offset(first_row, jj));
    for (std::size_t i = first_row; i < jj; ++i) {
      const cplx a = col[i - first_row];
      if (a == cplx{}) continue;
      sub_scaled(&x[i * m], row_j, a, m);
    }
  }

  std::vector<cvec> xs(m);
  for (std::size_t k = 0; k < m; ++k) {
    cvec& out = xs[k];
    out.resize(n_);
    for (std::size_t i = 0; i < n_; ++i) out[i] = x[i * m + k];
  }
  return xs;
}

cvec banded_lu::matvec(const cvec& x) const {
  require(!factored_, "banded_lu::matvec: matrix already factored");
  require(x.size() == n_, "banded_lu::matvec: size mismatch");
  cvec y(n_, cplx{});
  for (std::size_t j = 0; j < n_; ++j) {
    const std::size_t first_row = (j > ku_) ? j - ku_ : 0;
    const std::size_t last_row = std::min(j + kl_, n_ - 1);
    const cplx xj = x[j];
    if (xj == cplx{}) continue;
    for (std::size_t i = first_row; i <= last_row; ++i)
      y[i] += ab_(j, offset(i, j)) * xj;
  }
  return y;
}

}  // namespace boson::sp
