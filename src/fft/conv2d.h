#pragma once

#include <cstddef>
#include <vector>

#include "common/array2d.h"
#include "common/types.h"

namespace boson::fft {

/// FFT-based "same"-size 2-D convolution against a fixed bank of kernels.
///
/// This implements the linear map  out_k(x) = sum_u kernel_k(u) * in(x - u + c)
/// (c = kernel center) together with its *exact adjoint*, which is what the
/// lithography model differentiates through. Inputs of shape (nx, ny) are
/// zero-padded to a power-of-two grid large enough that circular wrap-around
/// never contaminates the cropped output, so the circular convolution equals
/// the linear one.
///
/// The padded input FFT is computed once and shared across kernels
/// (`transform_input` / `apply`), which matters because the Hopkins SOCS
/// model evaluates 6-10 kernels per lithography corner.
class kernel_conv2d {
 public:
  /// `nx`, `ny`: input/output shape. Kernels must share one odd square shape.
  kernel_conv2d(std::size_t nx, std::size_t ny, std::vector<array2d<cplx>> kernels);

  std::size_t num_kernels() const { return kernel_ffts_.size(); }
  std::size_t nx() const { return nx_; }
  std::size_t ny() const { return ny_; }

  /// FFT of the zero-padded input; pass the result to `apply`.
  array2d<cplx> transform_input(const array2d<double>& in) const;

  /// out_k = conv(in, kernel_k), given `transform_input(in)`.
  array2d<cplx> apply(const array2d<cplx>& in_fft, std::size_t k) const;

  /// Adjoint of kernel k: crop(IFFT(FFT(pad(g)) .* conj(H_k))).
  array2d<cplx> adjoint(const array2d<cplx>& g, std::size_t k) const;

  /// sum_k adjoint_k(g[k]) with a single inverse transform.
  array2d<cplx> adjoint_sum(const std::vector<array2d<cplx>>& g) const;

 private:
  array2d<cplx> pad_complex(const array2d<cplx>& in) const;
  array2d<cplx> crop(const array2d<cplx>& padded) const;
  array2d<cplx> adjoint_sum_impl(const std::vector<const array2d<cplx>*>& g,
                                 const std::vector<std::size_t>& kernel_idx) const;

  std::size_t nx_;
  std::size_t ny_;
  std::size_t px_;
  std::size_t py_;
  std::vector<array2d<cplx>> kernel_ffts_;
};

}  // namespace boson::fft
