#pragma once

#include <cstddef>
#include <vector>

#include "common/array2d.h"
#include "common/types.h"

namespace boson::sp {

/// Complex banded matrix with LU factorization and partial pivoting, in the
/// style of LAPACK's gbtrf/gbtrs. This is the direct solver behind every
/// FDFD simulation: the 2-D Helmholtz operator with unknowns ordered along
/// the shorter grid axis is banded with kl = ku = (transverse extent), and a
/// banded LU factors it in O(n * kl * (kl + ku)) time.
///
/// Storage reserves kl extra superdiagonals for pivoting fill, so entries may
/// be set for column offsets j - i in [-kl, ku] and the factorization can
/// grow the upper band to ku + kl.
class banded_lu {
 public:
  /// n unknowns, kl subdiagonals, ku superdiagonals.
  banded_lu(std::size_t n, std::size_t kl, std::size_t ku);

  std::size_t size() const { return n_; }
  std::size_t lower_bandwidth() const { return kl_; }
  std::size_t upper_bandwidth() const { return ku_; }

  /// Add `v` to A(i, j). Must satisfy -kl <= j - i <= ku. Only valid before
  /// `factor`.
  void add(std::size_t i, std::size_t j, cplx v);

  /// Read A(i, j) (zero outside the band). Before factor: the assembled
  /// matrix; after factor: the LU data (used by tests only).
  cplx at(std::size_t i, std::size_t j) const;

  /// LU-factor in place with partial pivoting, using a cache-blocked
  /// right-looking elimination (panels of pivot columns are applied to each
  /// trailing column in one resident pass; bit-identical to the unblocked
  /// column-by-column algorithm). Throws `numeric_error` on a singular pivot.
  void factor();

  bool factored() const { return factored_; }

  /// Solve A x = b using the factorization; returns x.
  cvec solve(const cvec& b) const;

  /// Blocked multi-RHS solve: the batch is packed into one contiguous
  /// row-major n x m block and forward/back-substituted together, so each LU
  /// coefficient is loaded once per column and the innermost loops stream
  /// over the batch with unit stride. This is how one variation corner's
  /// excitations and adjoints share the factorization. An empty batch
  /// returns an empty result; a one-RHS batch matches the scalar `solve`
  /// bit-for-bit.
  std::vector<cvec> solve(const std::vector<cvec>& bs) const;

  /// y = A x with the *unfactored* matrix (for residual checks).
  cvec matvec(const cvec& x) const;

 private:
  // Column-compact storage: ab_(j, kl + ku + i - j) holds A(i, j) for
  // i - j in [-(ku + kl), kl]. The extra kl rows above the assembled band
  // absorb pivoting fill, exactly as in LAPACK band storage.
  std::size_t offset(std::size_t i, std::size_t j) const { return kl_ + ku_ + i - j; }

  std::size_t n_;
  std::size_t kl_;
  std::size_t ku_;
  array2d<cplx> ab_;
  std::vector<std::size_t> pivot_;
  bool factored_ = false;
};

}  // namespace boson::sp
