#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "api/registry.h"
#include "api/session.h"
#include "api/spec.h"
#include "io/json.h"

namespace boson {
namespace {

namespace fs = std::filesystem;

/// EXPECT that `fn` throws `Exception` whose message contains `fragment`.
template <class Exception, class Fn>
void expect_throw_with(Fn&& fn, const std::string& fragment) {
  try {
    fn();
    FAIL() << "expected an exception containing \"" << fragment << "\"";
  } catch (const Exception& e) {
    EXPECT_NE(std::string(e.what()).find(fragment), std::string::npos)
        << "message was: " << e.what();
  }
}

// ------------------------------------------------------------ json parse ---

TEST(json_parse, scalars) {
  EXPECT_TRUE(io::json_value::parse("null").is_null());
  EXPECT_TRUE(io::json_value::parse("true").as_bool());
  EXPECT_FALSE(io::json_value::parse("false").as_bool());
  EXPECT_DOUBLE_EQ(io::json_value::parse("42").as_number(), 42.0);
  EXPECT_DOUBLE_EQ(io::json_value::parse("-3.5e2").as_number(), -350.0);
  EXPECT_DOUBLE_EQ(io::json_value::parse("0.125").as_number(), 0.125);
  EXPECT_EQ(io::json_value::parse("\"hi\"").as_string(), "hi");
}

TEST(json_parse, string_escapes) {
  EXPECT_EQ(io::json_value::parse(R"("a\nb\t\"q\"\\")").as_string(), "a\nb\t\"q\"\\");
  EXPECT_EQ(io::json_value::parse(R"("Aé")").as_string(), "A\xC3\xA9");
  // Surrogate pairs combine into one 4-byte UTF-8 code point.
  EXPECT_EQ(io::json_value::parse(R"("😀")").as_string(),
            "\xF0\x9F\x98\x80");
  expect_throw_with<io::json_parse_error>(
      [] { io::json_value::parse(R"("\ud83d oops")"); }, "unpaired high surrogate");
  expect_throw_with<io::json_parse_error>(
      [] { io::json_value::parse(R"("\ude00")"); }, "unpaired low surrogate");
}

TEST(json_parse, nested_structures) {
  const auto v = io::json_value::parse(
      R"({"a": [1, 2, {"b": true}], "c": {"d": null}, "e": "x"})");
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.size(), 3u);
  const auto& a = v.at("a");
  ASSERT_TRUE(a.is_array());
  ASSERT_EQ(a.size(), 3u);
  EXPECT_DOUBLE_EQ(a.elements()[1].as_number(), 2.0);
  EXPECT_TRUE(a.elements()[2].at("b").as_bool());
  EXPECT_TRUE(v.at("c").at("d").is_null());
  EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(json_parse, round_trips_through_dump) {
  const std::string text =
      R"({"name":"x","values":[1,2.5,-3],"nested":{"flag":false},"s":"a b"})";
  const auto v = io::json_value::parse(text);
  const auto again = io::json_value::parse(v.dump(2));
  EXPECT_EQ(v.dump(-1), again.dump(-1));
}

TEST(json_parse, tolerates_whitespace) {
  const auto v = io::json_value::parse("  {\n\t\"a\" :\r [ 1 , 2 ]\n}  ");
  EXPECT_EQ(v.at("a").size(), 2u);
}

TEST(json_parse, truncated_input) {
  expect_throw_with<io::json_parse_error>(
      [] { io::json_value::parse(R"({"a": 1)"); }, "unterminated object");
  expect_throw_with<io::json_parse_error>(
      [] { io::json_value::parse(R"([1, 2)"); }, "unterminated array");
  expect_throw_with<io::json_parse_error>(
      [] { io::json_value::parse(R"("abc)"); }, "unterminated string");
  expect_throw_with<io::json_parse_error>([] { io::json_value::parse(""); },
                                          "unexpected end of input");
}

TEST(json_parse, malformed_input) {
  expect_throw_with<io::json_parse_error>([] { io::json_value::parse("{} x"); },
                                          "trailing characters");
  expect_throw_with<io::json_parse_error>([] { io::json_value::parse("tru"); },
                                          "expected 'true'");
  expect_throw_with<io::json_parse_error>([] { io::json_value::parse("[1 2]"); },
                                          "expected ',' or ']'");
  expect_throw_with<io::json_parse_error>(
      [] { io::json_value::parse(R"({"a" 1})"); }, "expected ':'");
  expect_throw_with<io::json_parse_error>(
      [] { io::json_value::parse(R"({"a": 1, "a": 2})"); }, "duplicate object key 'a'");
  expect_throw_with<io::json_parse_error>([] { io::json_value::parse("1.2.3"); },
                                          "invalid number");
  // Laxer-than-JSON number forms strtod would accept are rejected.
  for (const char* bad : {"01", "1.", ".5", "+1", "1e"})
    expect_throw_with<io::json_parse_error>([&] { io::json_value::parse(bad); },
                                            "invalid");
  EXPECT_DOUBLE_EQ(io::json_value::parse("-0.5e+2").as_number(), -50.0);
  expect_throw_with<io::json_parse_error>(
      [] { io::json_value::parse(R"("bad \x escape")"); }, "invalid escape");
}

TEST(json_parse, reports_line_and_column) {
  expect_throw_with<io::json_parse_error>(
      [] { io::json_value::parse("{\n  \"a\": @\n}"); }, "2:8");
}

// -------------------------------------------------------------- registry ---

TEST(api_registry, built_in_scenarios_are_registered) {
  auto& reg = api::registry::global();
  for (const char* device : {"bend", "crossing", "isolator"})
    EXPECT_TRUE(reg.has_device(device)) << device;
  EXPECT_GE(reg.method_names().size(), 15u);
  EXPECT_EQ(reg.method("boson"), core::preset_recipe(core::method_id::boson));
  EXPECT_EQ(reg.method("boson_no_relax"),
            core::preset_recipe(core::method_id::boson_no_relax));
  EXPECT_TRUE(reg.has_objective("device_default"));
  EXPECT_EQ(reg.objective("fwd_transmission").override_metric, "fwd_transmission");
}

TEST(api_registry, unknown_names_list_known_entries) {
  auto& reg = api::registry::global();
  expect_throw_with<bad_argument>([&] { reg.make_device("warp_core", 0.1); },
                                  "unknown device 'warp_core'");
  expect_throw_with<bad_argument>([&] { reg.make_device("warp_core", 0.1); }, "bend");
  expect_throw_with<bad_argument>([&] { reg.method("sgd"); }, "unknown method 'sgd'");
  expect_throw_with<bad_argument>([&] { reg.objective("q"); }, "unknown objective 'q'");
}

TEST(api_registry, custom_device_registration) {
  api::registry reg;  // private registry: no built-ins
  EXPECT_FALSE(reg.has_device("tiny"));
  reg.register_device("tiny", [](double res) { return dev::make_bend(res); }, "test");
  EXPECT_TRUE(reg.has_device("tiny"));
  const auto spec = reg.make_device("tiny", 0.1);
  EXPECT_FALSE(spec.name.empty());
  EXPECT_EQ(reg.device_description("tiny"), "test");
}

// ------------------------------------------------------------------ spec ---

api::experiment_spec full_plan_spec() {
  api::experiment_spec spec;
  spec.name = "roundtrip";
  spec.device = "isolator";
  spec.method = "invfabcor_m_3";
  spec.resolution = 0.1;
  spec.iterations = 12;
  spec.relax_epochs = 3;
  spec.seed = 99;
  spec.backend = "gmres";
  spec.use_operator_cache = false;
  spec.evaluation = {
      api::eval_step::monte_carlo(7),
      api::eval_step::sweep({1.53, 1.55}),
      api::eval_step::window({0.0, 0.08}, {0.95, 1.05}),
  };
  return spec;
}

TEST(experiment_spec, json_round_trip_is_identity) {
  const api::experiment_spec spec = full_plan_spec();
  const auto first = spec.to_json();
  const api::experiment_spec parsed = api::experiment_spec::from_json(first);
  const auto second = parsed.to_json();
  EXPECT_EQ(first.dump(), second.dump());

  EXPECT_EQ(parsed.device, "isolator");
  EXPECT_EQ(parsed.method, "invfabcor_m_3");
  EXPECT_EQ(parsed.backend, "gmres");
  EXPECT_EQ(parsed.seed, 99u);
  EXPECT_FALSE(parsed.use_operator_cache);
  ASSERT_EQ(parsed.evaluation.size(), 3u);
  EXPECT_EQ(parsed.evaluation[0].samples, 7u);
  ASSERT_EQ(parsed.evaluation[1].wavelengths_um.size(), 2u);
  EXPECT_DOUBLE_EQ(parsed.evaluation[1].wavelengths_um[1], 1.55);
  ASSERT_EQ(parsed.evaluation[2].dose.size(), 2u);
}

TEST(experiment_spec, defaults_round_trip_and_derive_a_name) {
  const api::experiment_spec spec;  // all defaults
  EXPECT_EQ(spec.display_name(), "bend_boson");
  const auto parsed = api::experiment_spec::from_json(spec.to_json());
  EXPECT_EQ(parsed.name, "bend_boson");
  EXPECT_EQ(parsed.to_json().dump(), spec.to_json().dump());
}

TEST(experiment_spec, rejects_unknown_registry_names) {
  expect_throw_with<bad_argument>(
      [] {
        api::experiment_spec::from_json(io::json_value::parse(R"({"device": "warp"})"));
      },
      "unknown device 'warp'");
  expect_throw_with<bad_argument>(
      [] {
        api::experiment_spec::from_json(io::json_value::parse(R"({"method": "sgd"})"));
      },
      "unknown method 'sgd'");
  expect_throw_with<bad_argument>(
      [] {
        api::experiment_spec::from_json(io::json_value::parse(R"({"objective": "x"})"));
      },
      "unknown objective 'x'");
}

TEST(experiment_spec, rejects_unknown_keys) {
  expect_throw_with<bad_argument>(
      [] {
        api::experiment_spec::from_json(io::json_value::parse(R"({"devcie": "bend"})"));
      },
      "unknown key 'devcie'");
  expect_throw_with<bad_argument>(
      [] {
        api::experiment_spec::from_json(
            io::json_value::parse(R"({"run": {"momentum": 0.9}})"));
      },
      "unknown key 'momentum' in run");
  expect_throw_with<bad_argument>(
      [] {
        api::experiment_spec::from_json(io::json_value::parse(
            R"({"evaluation": [{"type": "postfab_monte_carlo", "n": 3}]})"));
      },
      "unknown key 'n' in evaluation[0]");
}

TEST(experiment_spec, rejects_wrong_types) {
  expect_throw_with<bad_argument>(
      [] {
        api::experiment_spec::from_json(
            io::json_value::parse(R"({"run": {"iterations": "many"}})"));
      },
      "'run.iterations' must be a number, got string");
  expect_throw_with<bad_argument>(
      [] {
        api::experiment_spec::from_json(
            io::json_value::parse(R"({"run": {"iterations": 2.5}})"));
      },
      "non-negative integer");
  expect_throw_with<bad_argument>(
      [] {
        api::experiment_spec::from_json(io::json_value::parse(R"({"name": 7})"));
      },
      "'name' must be a string, got number");
  expect_throw_with<bad_argument>(
      [] {
        api::experiment_spec::from_json(io::json_value::parse(R"({"evaluation": {}})"));
      },
      "'evaluation' must be an array");
}

TEST(experiment_spec, rejects_out_of_range_values) {
  expect_throw_with<bad_argument>(
      [] {
        api::experiment_spec::from_json(io::json_value::parse(R"({"resolution": 0})"));
      },
      "'resolution' must be in (0, 1]");
  expect_throw_with<bad_argument>(
      [] {
        api::experiment_spec::from_json(
            io::json_value::parse(R"({"run": {"iterations": 0}})"));
      },
      "'run.iterations' must be at least 1");
  expect_throw_with<bad_argument>(
      [] {
        api::experiment_spec::from_json(io::json_value::parse(
            R"({"evaluation": [{"type": "postfab_monte_carlo", "samples": 0}]})"));
      },
      "samples' must be at least 1");
  expect_throw_with<bad_argument>(
      [] {
        api::experiment_spec::from_json(io::json_value::parse(
            R"({"evaluation": [{"type": "wavelength_sweep", "wavelengths_um": []}]})"));
      },
      "must not be empty");
  expect_throw_with<bad_argument>(
      [] {
        api::experiment_spec::from_json(
            io::json_value::parse(R"({"run": {"backend": "cg"}})"));
      },
      "'run.backend' must be one of");
  expect_throw_with<bad_argument>(
      [] {
        api::experiment_spec::from_json(io::json_value::parse(
            R"({"evaluation": [{"type": "teleport"}]})"));
      },
      "'evaluation[0].type' must be one of");
}

TEST(experiment_spec, fab_model_fields_round_trip) {
  api::experiment_spec spec;
  spec.litho.wavelength = 0.248;
  spec.litho.energy_capture = 0.95;
  spec.eole.eta0 = 0.45;
  const auto parsed = api::experiment_spec::from_json(spec.to_json());
  EXPECT_DOUBLE_EQ(parsed.litho.wavelength, 0.248);
  EXPECT_DOUBLE_EQ(parsed.litho.energy_capture, 0.95);
  EXPECT_DOUBLE_EQ(parsed.eole.eta0, 0.45);
  EXPECT_EQ(parsed.to_json().dump(), spec.to_json().dump());
}

TEST(experiment_spec, rejects_objective_override_on_non_ratio_devices) {
  api::experiment_spec spec;
  spec.device = "bend";
  spec.objective = "fwd_transmission";
  spec.resolution = 0.1;
  expect_throw_with<bad_argument>([&] { api::validate(spec); },
                                  "only applies to ratio-objective devices");
  spec.device = "isolator";
  EXPECT_NO_THROW(api::validate(spec));

  // The '-eff' method bakes the same override into its recipe.
  api::experiment_spec eff;
  eff.device = "bend";
  eff.method = "invfabcor_m_3_eff";
  eff.resolution = 0.1;
  expect_throw_with<bad_argument>([&] { api::validate(eff); },
                                  "only applies to ratio-objective devices");
}

TEST(experiment_spec, rejects_seeds_that_cannot_round_trip) {
  api::experiment_spec spec;
  spec.seed = (std::uint64_t{1} << 53) + 2;
  expect_throw_with<bad_argument>([&] { api::validate(spec); }, "exceeds 2^53");
  expect_throw_with<bad_argument>(
      [] {
        api::experiment_spec::from_json(
            io::json_value::parse(R"({"run": {"seed": 9007199254740994}})"));
      },
      "exceeds 2^53");
}

TEST(experiment_spec, rejects_duplicate_monte_carlo_steps) {
  api::experiment_spec spec;
  spec.evaluation = {api::eval_step::monte_carlo(2), api::eval_step::monte_carlo(3)};
  expect_throw_with<bad_argument>([&] { api::validate(spec); },
                                  "at most one postfab_monte_carlo");
}

TEST(experiment_spec, load_specs_handles_single_and_batch) {
  const fs::path dir = fs::path(testing::TempDir()) / "boson_spec_io";
  fs::create_directories(dir);

  const fs::path single = dir / "single.json";
  api::experiment_spec spec;
  spec.to_json().write_file(single.string());
  const auto one = api::load_specs(single.string());
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0].device, "bend");

  const fs::path batch = dir / "batch.json";
  io::json_value arr = io::json_value::array();
  arr.push_back(api::experiment_spec{}.to_json());
  arr.push_back(full_plan_spec().to_json());
  arr.write_file(batch.string());
  const auto two = api::load_specs(batch.string());
  ASSERT_EQ(two.size(), 2u);
  EXPECT_EQ(two[1].name, "roundtrip");

  expect_throw_with<io_error>([&] { api::load_specs((dir / "absent.json").string()); },
                              "cannot open");

  const fs::path bad = dir / "bad.json";
  {
    std::ofstream f(bad);
    f << "{\"device\": ";
  }
  expect_throw_with<io::json_parse_error>([&] { api::load_specs(bad.string()); },
                                          "bad.json");
}

// --------------------------------------------------------------- session ---

/// Coarse, fast spec mirroring the core test configuration (100 nm pixels,
/// small pupil, few SOCS kernels / EOLE terms).
api::experiment_spec smoke_spec() {
  api::experiment_spec spec;
  spec.name = "api_smoke";
  spec.device = "bend";
  spec.method = "boson_no_relax";
  spec.resolution = 0.1;
  spec.iterations = 4;
  spec.relax_epochs = 0;
  spec.litho.na = 0.65;
  spec.litho.sigma = 0.35;
  spec.litho.kernel_half = 5;
  spec.litho.max_kernels = 5;
  spec.eole.anchors_x = 4;
  spec.eole.anchors_y = 4;
  spec.eole.num_terms = 5;
  spec.evaluation = {api::eval_step::monte_carlo(2)};
  return spec;
}

struct counting_observer : api::observer {
  std::vector<api::progress_event> events;
  void on_event(const api::progress_event& event) override { events.push_back(event); }

  std::size_t count(api::progress_event::phase kind) const {
    std::size_t n = 0;
    for (const auto& e : events) n += e.kind == kind ? 1 : 0;
    return n;
  }
};

TEST(api_session, config_for_maps_spec_fields) {
  api::experiment_spec spec = smoke_spec();
  spec.backend = "gmres";
  spec.use_operator_cache = false;
  const core::experiment_config cfg = api::session::config_for(spec);
  EXPECT_EQ(cfg.iterations, 4u);
  EXPECT_EQ(cfg.mc_samples, 2u);
  EXPECT_DOUBLE_EQ(cfg.resolution, 0.1);
  EXPECT_EQ(cfg.engine.backend, sim::backend_kind::gmres);
  EXPECT_FALSE(cfg.use_operator_cache);
  EXPECT_EQ(cfg.litho.kernel_half, 5u);
  EXPECT_EQ(cfg.eole.num_terms, 5u);
}

TEST(api_session, problem_for_builds_the_described_problem) {
  const core::design_problem problem = api::session::problem_for(smoke_spec());
  EXPECT_GT(problem.spec().design.nx, 0u);
  EXPECT_GT(problem.parameterization().num_params(), 0u);
}

TEST(api_session, runs_a_spec_end_to_end_with_artifacts_and_events) {
  const fs::path out = fs::path(testing::TempDir()) / "boson_api_session";
  fs::remove_all(out);

  counting_observer watcher;
  api::session_options options;
  options.output_dir = out.string();
  options.watcher = &watcher;
  api::session session(options);

  const api::experiment_result result = session.run(smoke_spec());

  EXPECT_EQ(result.spec.name, "api_smoke");
  EXPECT_EQ(result.method.postfab.samples, 2u);
  EXPECT_FALSE(result.method.run.trajectory.empty());
  EXPECT_GT(result.seconds, 0.0);

  const fs::path dir = out / "api_smoke";
  EXPECT_EQ(result.artifact_dir, dir.string());
  for (const char* file : {"summary.json", "trajectory.csv", "mask.pgm"})
    EXPECT_TRUE(fs::exists(dir / file)) << file;

  // The summary parses back and echoes the normalized spec.
  const auto summary = io::json_value::parse_file((dir / "summary.json").string());
  EXPECT_EQ(summary.at("spec").at("name").as_string(), "api_smoke");
  EXPECT_TRUE(summary.at("results").at("postfab_monte_carlo").at("fom_mean").is_number());

  using phase = api::progress_event::phase;
  EXPECT_EQ(watcher.count(phase::experiment_started), 1u);
  EXPECT_EQ(watcher.count(phase::experiment_finished), 1u);
  EXPECT_EQ(watcher.count(phase::iteration_finished), 4u);
  EXPECT_GE(watcher.count(phase::stage_started), 2u);
  EXPECT_GE(watcher.count(phase::artifact_written), 3u);
  for (const auto& e : watcher.events) EXPECT_EQ(e.experiment, "api_smoke");
}

TEST(api_session, batch_shares_a_session_and_writes_batch_summary) {
  const fs::path out = fs::path(testing::TempDir()) / "boson_api_batch";
  fs::remove_all(out);

  api::session_options options;
  options.output_dir = out.string();
  api::session session(options);

  api::experiment_spec second = smoke_spec();
  second.name = "api_smoke_2";
  second.record_trajectory = false;
  const auto results = session.run_all({smoke_spec(), second});

  ASSERT_EQ(results.size(), 2u);
  EXPECT_TRUE(results[1].method.run.trajectory.empty());
  EXPECT_FALSE(fs::exists(out / "api_smoke_2" / "trajectory.csv"));
  const auto batch = io::json_value::parse_file((out / "batch_summary.json").string());
  const auto& experiments = batch.at("experiments");
  ASSERT_EQ(experiments.size(), 2u);
  EXPECT_EQ(experiments.elements()[0].at("name").as_string(), "api_smoke");
  EXPECT_EQ(experiments.elements()[1].at("name").as_string(), "api_smoke_2");
  // The batch-level aggregate: wall clock dominates the per-experiment sum
  // (sequential execution) and the shared engine-cache traffic is reported
  // once for the whole batch instead of sliced per spec.
  EXPECT_GE(batch.at("wall_seconds").as_number(), batch.at("total_seconds").as_number() * 0.5);
  EXPECT_GT(batch.at("total_seconds").as_number(), 0.0);
  EXPECT_TRUE(batch.at("engine_cache").at("hits").is_number());
  EXPECT_TRUE(batch.at("engine_cache").at("misses").is_number());
}

TEST(api_session, dot_names_cannot_escape_the_output_directory) {
  const fs::path out = fs::path(testing::TempDir()) / "boson_api_escape" / "root";
  fs::remove_all(out.parent_path());

  api::session_options options;
  options.output_dir = out.string();
  api::session session(options);

  api::experiment_spec spec = smoke_spec();
  spec.name = "..";
  const auto result = session.run(spec);

  EXPECT_EQ(result.artifact_dir, (out / "experiment").string());
  EXPECT_TRUE(fs::exists(out / "experiment" / "summary.json"));
  EXPECT_FALSE(fs::exists(out.parent_path() / "summary.json"));
}

TEST(api_session, rejects_batches_with_colliding_artifact_names) {
  api::session session;
  api::experiment_spec a = smoke_spec();
  api::experiment_spec b = smoke_spec();
  b.name = "api smoke";  // sanitizes to the same directory as "api_smoke"
  expect_throw_with<bad_argument>([&] { session.run_all({a, b}); },
                                  "same artifact directory");
}

TEST(api_session, no_artifacts_mode_writes_nothing) {
  const fs::path out = fs::path(testing::TempDir()) / "boson_api_noart";
  fs::remove_all(out);

  api::session_options options;
  options.output_dir = out.string();
  options.write_artifacts = false;
  api::session session(options);
  const auto result = session.run(smoke_spec());
  EXPECT_TRUE(result.artifact_dir.empty());
  EXPECT_FALSE(fs::exists(out));
}

// ------------------------------------------------------- trajectory csv ----

TEST(trajectory_csv, exports_iteration_loss_and_metric_columns) {
  std::vector<core::iteration_record> trajectory(3);
  for (std::size_t i = 0; i < trajectory.size(); ++i) {
    trajectory[i].iteration = i;
    trajectory[i].loss = 1.0 / static_cast<double>(i + 1);
    trajectory[i].metrics = {{"transmission", 0.5 + 0.1 * static_cast<double>(i)},
                             {"reflection", 0.1}};
  }

  const fs::path path = fs::path(testing::TempDir()) / "trajectory_test.csv";
  api::write_trajectory_csv(path.string(), trajectory);

  std::ifstream f(path);
  ASSERT_TRUE(f.good());
  std::string line;
  std::getline(f, line);
  EXPECT_EQ(line, "iteration,loss,reflection,transmission");
  std::getline(f, line);
  EXPECT_EQ(line.substr(0, 4), "0,1,");
  std::size_t rows = 1;
  while (std::getline(f, line) && !line.empty()) ++rows;
  EXPECT_EQ(rows, 3u);

  expect_throw_with<bad_argument>([&] { api::write_trajectory_csv(path.string(), {}); },
                                  "empty trajectory");
}

// -------------------------------------------------------------- recipes ----

TEST(recipe_json, all_fifteen_presets_round_trip) {
  for (const core::method_id id : core::all_method_ids()) {
    const core::method_recipe preset = core::preset_recipe(id);
    const io::json_value v = api::recipe_to_json(preset);
    const core::method_recipe parsed = api::recipe_from_json(v);
    EXPECT_EQ(parsed, preset) << preset.label;
    // The canonical form itself is stable.
    EXPECT_EQ(api::recipe_to_json(parsed).dump(), v.dump()) << preset.label;
  }
}

TEST(recipe_json, density_blur_accepts_mfs_or_cells) {
  core::method_recipe r = api::recipe_from_json(io::json_value::parse(
      R"({"parameterization": "density", "density_blur": "mfs"})"));
  EXPECT_TRUE(r.density_blur_mfs);
  r = api::recipe_from_json(io::json_value::parse(
      R"({"parameterization": "density", "density_blur": 1.5})"));
  EXPECT_FALSE(r.density_blur_mfs);
  EXPECT_DOUBLE_EQ(r.density_blur_cells, 1.5);
  expect_throw_with<bad_argument>(
      [] {
        (void)api::recipe_from_json(io::json_value::parse(
            R"({"parameterization": "density", "density_blur": "big"})"));
      },
      "must be \"mfs\" or a cell radius");
}

TEST(recipe_json, rejects_unknown_keys_and_policies_with_suggestions) {
  expect_throw_with<bad_argument>(
      [] { (void)api::recipe_from_json(io::json_value::parse(R"({"cornerz": "none"})")); },
      "unknown key 'cornerz' in recipe; did you mean 'corners'?");
  expect_throw_with<bad_argument>(
      [] {
        (void)api::recipe_from_json(
            io::json_value::parse(R"({"initialization": "grey"})"));
      },
      "did you mean 'gray'?");
  expect_throw_with<bad_argument>(
      [] { (void)api::recipe_from_json(io::json_value::parse(R"({"corners": 3})")); },
      "'recipe.corners' must be a string");
}

TEST(experiment_spec, inline_recipe_round_trips_and_labels_the_method) {
  const io::json_value doc = io::json_value::parse(R"({
    "device": "bend",
    "recipe": {
      "label": "Hybrid",
      "parameterization": "density",
      "density_blur": "mfs",
      "corners": "adaptive",
      "relaxation": "linear",
      "reshaping": "dense",
      "initialization": "gray",
      "mask_correction": "all_corners"
    }
  })");
  const api::experiment_spec spec = api::experiment_spec::from_json(doc);
  ASSERT_TRUE(spec.recipe.has_value());
  EXPECT_EQ(spec.method, "custom");  // no explicit method key: neutral label
  EXPECT_EQ(spec.display_name(), "bend_custom");
  EXPECT_EQ(spec.recipe->mask_correction, "all_corners");

  const api::experiment_spec again = api::experiment_spec::from_json(spec.to_json());
  ASSERT_TRUE(again.recipe.has_value());
  EXPECT_EQ(*again.recipe, *spec.recipe);
  EXPECT_EQ(again.to_json().dump(), spec.to_json().dump());

  // The inline recipe wins over the method registry: the label need not be
  // (and here is not) a registered method name.
  api::experiment_spec labeled = spec;
  labeled.method = "never_registered_hybrid";
  EXPECT_NO_THROW(api::validate(labeled));
  EXPECT_EQ(api::resolved_recipe(labeled).label, "Hybrid");

  // Without the inline recipe the same label is an unknown method.
  labeled.recipe.reset();
  expect_throw_with<bad_argument>([&] { api::validate(labeled); },
                                  "unknown method 'never_registered_hybrid'");
}

TEST(experiment_spec, inline_recipe_policy_errors_carry_the_json_path) {
  expect_throw_with<bad_argument>(
      [] {
        (void)api::experiment_spec::from_json(io::json_value::parse(
            R"({"device": "bend", "recipe": {"corners": "adaptve"}})"));
      },
      "unknown corners policy 'adaptve'");
  expect_throw_with<bad_argument>(
      [] {
        (void)api::experiment_spec::from_json(io::json_value::parse(
            R"({"device": "bend", "recipe": {"density_blur": "mfs"}})"));
      },
      "only applies to the density parameterization");
}

TEST(experiment_spec, inline_recipe_objective_override_is_validated) {
  // A recipe-baked override needs a ratio-objective device, exactly like the
  // preset '-eff' variant.
  io::json_value doc = io::json_value::parse(R"({
    "device": "bend",
    "recipe": {"objective_override": "fwd_transmission"}
  })");
  expect_throw_with<bad_argument>(
      [&] { (void)api::experiment_spec::from_json(doc); },
      "only applies to ratio-objective devices");
}

TEST(api_registry, lookup_errors_suggest_the_closest_name) {
  auto& reg = api::registry::global();
  expect_throw_with<bad_argument>([&] { (void)reg.method("boson_norelax"); },
                                  "did you mean 'boson_no_relax'?");
  expect_throw_with<bad_argument>([&] { (void)reg.make_device("bendd", 0.1); },
                                  "did you mean 'bend'?");
  expect_throw_with<bad_argument>([&] { (void)reg.objective("device_defautl"); },
                                  "did you mean 'device_default'?");
}

TEST(api_registry, custom_recipes_register_and_validate) {
  auto& reg = api::registry::global();
  core::method_recipe hybrid = core::preset_recipe(core::method_id::boson);
  hybrid.label = "BOSON-1 (TV)";
  hybrid.tv_weight = 0.01;
  reg.register_method("test_boson_tv", hybrid);
  EXPECT_TRUE(reg.has_method("test_boson_tv"));
  EXPECT_EQ(reg.method("test_boson_tv"), hybrid);

  core::method_recipe broken;
  broken.corners = "no_such_policy";
  expect_throw_with<bad_argument>([&] { reg.register_method("test_broken", broken); },
                                  "unknown corners policy 'no_such_policy'");
  EXPECT_FALSE(reg.has_method("test_broken"));
}

TEST(api_session, inline_recipe_runs_bit_identical_to_its_preset_name) {
  // The acceptance property behind all fifteen presets: naming a method and
  // inlining its (JSON round-tripped) recipe are the same experiment. One
  // end-to-end pair proves the spec/session plumbing; the per-preset mapping
  // equivalence lives in test_core's golden table.
  api::experiment_spec named = smoke_spec();
  named.name = "recipe_e2e";

  api::experiment_spec inlined = named;
  inlined.recipe = api::recipe_from_json(
      api::recipe_to_json(api::registry::global().method(named.method)));

  api::session_options options;
  options.write_artifacts = false;
  api::session session(options);
  const api::experiment_result a = session.run(named);
  const api::experiment_result b = session.run(inlined);

  ASSERT_EQ(a.method.run.trajectory.size(), b.method.run.trajectory.size());
  for (std::size_t i = 0; i < a.method.run.trajectory.size(); ++i)
    EXPECT_EQ(a.method.run.trajectory[i].loss, b.method.run.trajectory[i].loss);
  ASSERT_EQ(a.method.run.theta.size(), b.method.run.theta.size());
  for (std::size_t i = 0; i < a.method.run.theta.size(); ++i)
    EXPECT_EQ(a.method.run.theta[i], b.method.run.theta[i]);
  for (std::size_t i = 0; i < a.method.mask.size(); ++i)
    EXPECT_EQ(a.method.mask.data()[i], b.method.mask.data()[i]);
  EXPECT_EQ(a.method.postfab.fom_mean, b.method.postfab.fom_mean);
}

TEST(api_session, summary_records_recipe_provenance) {
  const fs::path out = fs::path(testing::TempDir()) / "boson_api_recipe_prov";
  fs::remove_all(out);
  api::experiment_spec spec = smoke_spec();
  spec.name = "prov";
  api::session_options options;
  options.output_dir = out.string();
  api::session session(options);
  (void)session.run(spec);

  const io::json_value summary =
      io::json_value::parse_file((out / "prov" / "summary.json").string());
  ASSERT_NE(summary.find("resolved_recipe"), nullptr);
  EXPECT_EQ(summary.at("resolved_recipe").at("label").as_string(),
            "BOSON-1 (- subspace relax)");
  EXPECT_EQ(summary.at("recipe_signature").as_string(),
            api::registry::global().method(spec.method).signature());
}

}  // namespace
}  // namespace boson
