#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "linalg/dense.h"
#include "linalg/vec.h"
#include "sparse/banded.h"
#include "sparse/csr.h"
#include "sparse/krylov.h"

namespace boson::sp {
namespace {

// ------------------------------------------------------------------ csr ----

TEST(csr, builds_and_sums_duplicates) {
  std::vector<triplet<double>> t{{0, 0, 1.0}, {0, 0, 2.0}, {1, 2, 4.0}};
  csr_d a(2, 3, t);
  EXPECT_EQ(a.nnz(), 2u);
  EXPECT_DOUBLE_EQ(a.at(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(a.at(1, 2), 4.0);
  EXPECT_DOUBLE_EQ(a.at(1, 1), 0.0);
}

TEST(csr, matvec_matches_dense) {
  rng r(5);
  const std::size_t n = 12;
  std::vector<triplet<cplx>> t;
  la::cmat dense(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      if (r.uniform(0, 1) < 0.3) {
        const cplx v(r.uniform(-1, 1), r.uniform(-1, 1));
        t.push_back({i, j, v});
        dense(i, j) = v;
      }
  csr_c a(n, n, t);
  cvec x(n);
  for (auto& v : x) v = cplx(r.uniform(-1, 1), r.uniform(-1, 1));
  const auto ys = a.matvec(x);
  const auto yd = dense.matvec(x);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(std::abs(ys[i] - yd[i]), 0.0, 1e-12);
}

TEST(csr, matvec_transpose_is_adjoint_of_matvec) {
  rng r(6);
  const std::size_t n = 10;
  std::vector<triplet<cplx>> t;
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      if (r.uniform(0, 1) < 0.4) t.push_back({i, j, cplx(r.uniform(-1, 1), r.uniform(-1, 1))});
  csr_c a(n, n, t);
  cvec x(n), y(n);
  for (auto& v : x) v = cplx(r.uniform(-1, 1), r.uniform(-1, 1));
  for (auto& v : y) v = cplx(r.uniform(-1, 1), r.uniform(-1, 1));
  // <A x, y>_u = <x, A^T y>_u with the unconjugated pairing.
  const cplx lhs = la::dotu(a.matvec(x), y);
  const cplx rhs = la::dotu(x, a.matvec_transpose(y));
  EXPECT_NEAR(std::abs(lhs - rhs), 0.0, 1e-12);
}

TEST(csr, rejects_out_of_range_entries) {
  std::vector<triplet<double>> t{{2, 0, 1.0}};
  EXPECT_THROW(csr_d(2, 2, t), bad_argument);
}

TEST(csr, asymmetry_of_symmetric_matrix_is_zero) {
  std::vector<triplet<cplx>> t{
      {0, 1, {1.0, 2.0}}, {1, 0, {1.0, 2.0}}, {0, 0, {3.0, 0.0}}, {1, 1, {4.0, 1.0}}};
  csr_c a(2, 2, t);
  EXPECT_NEAR(a.asymmetry(), 0.0, 1e-15);
  std::vector<triplet<cplx>> t2{{0, 1, {1.0, 0.0}}, {1, 0, {2.0, 0.0}}};
  // Need diagonals for at() lookups to stay in range — they are optional.
  csr_c b(2, 2, t2);
  EXPECT_NEAR(b.asymmetry(), 1.0, 1e-15);
}

// --------------------------------------------------------------- banded ----

struct band_case {
  std::size_t n;
  std::size_t kl;
  std::size_t ku;
};

class banded_sizes : public ::testing::TestWithParam<band_case> {};

TEST_P(banded_sizes, lu_matches_dense_solution) {
  const auto [n, kl, ku] = GetParam();
  rng r(1000 + n + kl);
  banded_lu banded(n, kl, ku);
  la::cmat dense(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (j + kl < i || i + ku < j) continue;
      cplx v(r.uniform(-1, 1), r.uniform(-1, 1));
      if (i == j) v += cplx(4.0, 0.0);
      banded.add(i, j, v);
      dense(i, j) = v;
    }
  }
  cvec b(n);
  for (auto& v : b) v = cplx(r.uniform(-1, 1), r.uniform(-1, 1));

  banded.factor();
  const cvec x = banded.solve(b);
  const cvec x_ref = la::lu_solve(dense, b);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(std::abs(x[i] - x_ref[i]), 0.0, 1e-9);
}

TEST_P(banded_sizes, residual_is_small_without_diagonal_dominance) {
  const auto [n, kl, ku] = GetParam();
  rng r(2000 + n + ku);
  banded_lu banded(n, kl, ku);
  la::cmat dense(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (j + kl < i || i + ku < j) continue;
      const cplx v(r.uniform(-1, 1), r.uniform(-1, 1));
      banded.add(i, j, v);
      dense(i, j) = v;
    }
  }
  cvec b(n);
  for (auto& v : b) v = cplx(r.uniform(-1, 1), r.uniform(-1, 1));
  banded.factor();  // partial pivoting must handle weak diagonals
  const cvec x = banded.solve(b);
  const auto ax = dense.matvec(x);
  double res = 0.0;
  for (std::size_t i = 0; i < n; ++i) res = std::max(res, std::abs(ax[i] - b[i]));
  EXPECT_LT(res, 1e-8 * (1.0 + la::max_abs(x)));
}

INSTANTIATE_TEST_SUITE_P(shapes, banded_sizes,
                         ::testing::Values(band_case{6, 1, 1}, band_case{20, 3, 3},
                                           band_case{40, 5, 2}, band_case{40, 2, 5},
                                           band_case{100, 10, 10}, band_case{64, 8, 8}));

TEST(banded, multi_rhs_solve_matches_single_rhs_solves) {
  rng r(321);
  const std::size_t n = 60, kl = 6, ku = 4, nrhs = 5;
  banded_lu banded(n, kl, ku);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (j + kl < i || i + ku < j) continue;
      cplx v(r.uniform(-1, 1), r.uniform(-1, 1));
      if (i == j) v += cplx(3.0, 0.0);
      banded.add(i, j, v);
    }
  }
  banded.factor();

  std::vector<cvec> bs(nrhs, cvec(n));
  for (auto& b : bs)
    for (auto& v : b) v = cplx(r.uniform(-1, 1), r.uniform(-1, 1));

  const std::vector<cvec> xs = banded.solve(bs);
  ASSERT_EQ(xs.size(), nrhs);
  for (std::size_t k = 0; k < nrhs; ++k) {
    const cvec x_single = banded.solve(bs[k]);
    for (std::size_t i = 0; i < n; ++i)
      EXPECT_NEAR(std::abs(xs[k][i] - x_single[i]), 0.0, 1e-10)
          << "rhs " << k << " row " << i;
  }
}

TEST(banded, multi_rhs_solve_handles_empty_and_singleton_batches) {
  banded_lu banded(4, 1, 1);
  for (std::size_t i = 0; i < 4; ++i) banded.add(i, i, cplx{2.0});
  banded.factor();
  EXPECT_TRUE(banded.solve(std::vector<cvec>{}).empty());
  const auto xs = banded.solve(std::vector<cvec>{cvec(4, cplx{1.0})});
  ASSERT_EQ(xs.size(), 1u);
  for (const auto& v : xs[0]) EXPECT_NEAR(std::abs(v - cplx{0.5}), 0.0, 1e-14);
}

TEST(banded, matvec_matches_dense) {
  const std::size_t n = 15, k = 3;
  rng r(9);
  banded_lu banded(n, k, k);
  la::cmat dense(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = (i > k ? i - k : 0); j <= std::min(i + k, n - 1); ++j) {
      const cplx v(r.uniform(-1, 1), r.uniform(-1, 1));
      banded.add(i, j, v);
      dense(i, j) = v;
    }
  cvec x(n);
  for (auto& v : x) v = cplx(r.uniform(-1, 1), r.uniform(-1, 1));
  const auto yb = banded.matvec(x);
  const auto yd = dense.matvec(x);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(std::abs(yb[i] - yd[i]), 0.0, 1e-12);
}

TEST(banded, add_outside_band_throws) {
  banded_lu a(10, 2, 2);
  EXPECT_THROW(a.add(0, 5, cplx{1.0}), bad_argument);
  EXPECT_THROW(a.add(5, 0, cplx{1.0}), bad_argument);
  EXPECT_NO_THROW(a.add(0, 2, cplx{1.0}));
}

TEST(banded, solve_requires_factorization) {
  banded_lu a(4, 1, 1);
  for (std::size_t i = 0; i < 4; ++i) a.add(i, i, cplx{1.0});
  EXPECT_THROW(a.solve(cvec(4)), bad_argument);
  a.factor();
  EXPECT_TRUE(a.factored());
  EXPECT_THROW(a.add(0, 0, cplx{1.0}), bad_argument);  // frozen after factor
}

TEST(banded, singular_matrix_throws) {
  banded_lu a(3, 1, 1);
  a.add(0, 0, cplx{1.0});
  a.add(2, 2, cplx{1.0});  // row/col 1 entirely zero
  EXPECT_THROW(a.factor(), numeric_error);
}

TEST(banded, identity_solve_is_identity) {
  const std::size_t n = 8;
  banded_lu a(n, 2, 2);
  for (std::size_t i = 0; i < n; ++i) a.add(i, i, cplx{1.0});
  a.factor();
  cvec b(n);
  for (std::size_t i = 0; i < n; ++i) b[i] = cplx(static_cast<double>(i), -1.0);
  const auto x = a.solve(b);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(std::abs(x[i] - b[i]), 0.0, 1e-14);
}

TEST(banded, pivoting_handles_zero_leading_diagonal) {
  // [[0, 1], [1, 0]] requires an interchange at the first step.
  banded_lu a(2, 1, 1);
  a.add(0, 1, cplx{1.0});
  a.add(1, 0, cplx{1.0});
  a.factor();
  const auto x = a.solve(cvec{cplx{3.0}, cplx{5.0}});
  EXPECT_NEAR(std::abs(x[0] - cplx{5.0}), 0.0, 1e-14);
  EXPECT_NEAR(std::abs(x[1] - cplx{3.0}), 0.0, 1e-14);
}

// --------------------------------------------------------------- krylov ----

csr_c random_banded_csr(std::size_t n, std::size_t band, std::uint64_t seed,
                        double diag_boost) {
  rng r(seed);
  std::vector<triplet<cplx>> t;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = (i > band ? i - band : 0); j <= std::min(i + band, n - 1); ++j) {
      cplx v(r.uniform(-1, 1), r.uniform(-1, 1));
      if (i == j) v += cplx(diag_boost, 0.0);
      t.push_back({i, j, v});
    }
  }
  return csr_c(n, n, t);
}

TEST(krylov, bicgstab_unpreconditioned_converges) {
  const std::size_t n = 60;
  const auto a = random_banded_csr(n, 2, 31, 6.0);
  rng r(32);
  cvec x_true(n);
  for (auto& v : x_true) v = cplx(r.uniform(-1, 1), r.uniform(-1, 1));
  const auto b = a.matvec(x_true);
  cvec x;
  const auto res = bicgstab(a, b, x, nullptr, 1e-10, 500);
  EXPECT_TRUE(res.converged);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(std::abs(x[i] - x_true[i]), 0.0, 1e-6);
}

TEST(krylov, ilu0_preconditioning_reduces_iterations) {
  const std::size_t n = 150;
  const auto a = random_banded_csr(n, 3, 77, 4.0);
  rng r(78);
  cvec x_true(n);
  for (auto& v : x_true) v = cplx(r.uniform(-1, 1), r.uniform(-1, 1));
  const auto b = a.matvec(x_true);

  cvec x_plain, x_prec;
  const auto plain = bicgstab(a, b, x_plain, nullptr, 1e-10, 2000);
  const ilu0 prec(a);
  const auto preconditioned = bicgstab(a, b, x_prec, &prec, 1e-10, 2000);
  ASSERT_TRUE(plain.converged);
  ASSERT_TRUE(preconditioned.converged);
  EXPECT_LT(preconditioned.iterations, plain.iterations);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(std::abs(x_prec[i] - x_true[i]), 0.0, 1e-6);
}

TEST(krylov, ilu0_exact_for_triangular_pattern) {
  // For a lower-triangular matrix ILU(0) is an exact factorization, so one
  // application solves the system.
  const std::size_t n = 20;
  rng r(55);
  std::vector<triplet<cplx>> t;
  for (std::size_t i = 0; i < n; ++i) {
    t.push_back({i, i, cplx(3.0 + r.uniform(0, 1), r.uniform(-1, 1))});
    if (i > 0) t.push_back({i, i - 1, cplx(r.uniform(-1, 1), 0.0)});
  }
  csr_c a(n, n, t);
  cvec x_true(n);
  for (auto& v : x_true) v = cplx(r.uniform(-1, 1), r.uniform(-1, 1));
  const auto b = a.matvec(x_true);
  const ilu0 prec(a);
  const auto x = prec.apply(b);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(std::abs(x[i] - x_true[i]), 0.0, 1e-10);
}

TEST(krylov, zero_rhs_returns_zero) {
  const auto a = random_banded_csr(10, 2, 3, 5.0);
  cvec x(10, cplx{1.0});
  const auto res = bicgstab(a, cvec(10), x, nullptr);
  EXPECT_TRUE(res.converged);
  for (const auto& v : x) EXPECT_EQ(v, cplx{});
}

TEST(krylov, ilu0_requires_diagonal) {
  std::vector<triplet<cplx>> t{{0, 1, cplx{1.0}}, {1, 0, cplx{1.0}}};
  csr_c a(2, 2, t);
  EXPECT_THROW(ilu0 prec(a), numeric_error);
}

class gmres_systems : public ::testing::TestWithParam<std::size_t> {};

TEST_P(gmres_systems, converges_and_matches_truth) {
  const std::size_t n = GetParam();
  const auto a = random_banded_csr(n, 3, 400 + n, 5.0);
  rng r(401 + n);
  cvec x_true(n);
  for (auto& v : x_true) v = cplx(r.uniform(-1, 1), r.uniform(-1, 1));
  const auto b = a.matvec(x_true);
  cvec x;
  const auto res = gmres(a, b, x, nullptr, 40, 1e-10, 2000);
  ASSERT_TRUE(res.converged) << "residual " << res.relative_residual;
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(std::abs(x[i] - x_true[i]), 0.0, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(sizes, gmres_systems, ::testing::Values(10, 50, 120));

TEST(krylov, gmres_with_ilu0_preconditioning) {
  const std::size_t n = 150;
  const auto a = random_banded_csr(n, 3, 501, 4.0);
  rng r(502);
  cvec x_true(n);
  for (auto& v : x_true) v = cplx(r.uniform(-1, 1), r.uniform(-1, 1));
  const auto b = a.matvec(x_true);
  const ilu0 prec(a);
  cvec x_plain, x_prec;
  const auto plain = gmres(a, b, x_plain, nullptr, 30, 1e-10, 2000);
  const auto preconditioned = gmres(a, b, x_prec, &prec, 30, 1e-10, 2000);
  ASSERT_TRUE(plain.converged);
  ASSERT_TRUE(preconditioned.converged);
  EXPECT_LE(preconditioned.iterations, plain.iterations);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(std::abs(x_prec[i] - x_true[i]), 0.0, 1e-6);
}

TEST(krylov, gmres_restart_still_converges) {
  // A restart shorter than the natural Krylov dimension must still reach the
  // solution through repeated cycles.
  const std::size_t n = 80;
  const auto a = random_banded_csr(n, 2, 600, 6.0);
  rng r(601);
  cvec x_true(n);
  for (auto& v : x_true) v = cplx(r.uniform(-1, 1), r.uniform(-1, 1));
  const auto b = a.matvec(x_true);
  cvec x;
  const auto res = gmres(a, b, x, nullptr, 5, 1e-9, 4000);
  ASSERT_TRUE(res.converged);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(std::abs(x[i] - x_true[i]), 0.0, 1e-5);
}

TEST(krylov, gmres_zero_rhs_returns_zero) {
  const auto a = random_banded_csr(12, 2, 700, 5.0);
  cvec x(12, cplx{1.0});
  const auto res = gmres(a, cvec(12), x, nullptr);
  EXPECT_TRUE(res.converged);
  for (const auto& v : x) EXPECT_EQ(v, cplx{});
}

TEST(krylov, gmres_and_bicgstab_agree) {
  const std::size_t n = 60;
  const auto a = random_banded_csr(n, 3, 800, 5.0);
  rng r(801);
  cvec b(n);
  for (auto& v : b) v = cplx(r.uniform(-1, 1), r.uniform(-1, 1));
  cvec xg, xb;
  ASSERT_TRUE(gmres(a, b, xg, nullptr, 40, 1e-11, 2000).converged);
  ASSERT_TRUE(bicgstab(a, b, xb, nullptr, 1e-11, 2000).converged);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(std::abs(xg[i] - xb[i]), 0.0, 1e-6);
}

}  // namespace
}  // namespace boson::sp
