#include "service/status.h"

#include "io/table.h"
#include "runtime/journal.h"
#include "runtime/lease.h"
#include "runtime/result_store.h"
#include "runtime/scheduler.h"

namespace boson::service {

io::json_value job_status::to_json() const {
  io::json_value v = io::json_value::object();
  v["index"] = index;
  v["name"] = name;
  v["state"] = state;
  v["attempt"] = attempt;
  if (!owner.empty()) {
    v["owner"] = owner;
    v["lease_remaining_s"] = lease_remaining;
  }
  if (!detail.empty()) v["detail"] = detail;
  return v;
}

bool campaign_status::all_completed() const {
  const auto it = counts.find("completed");
  return it != counts.end() && it->second == total_jobs;
}

bool campaign_status::settled() const {
  std::size_t terminal = 0;
  for (const char* state : {"completed", "failed", "cancelled"}) {
    const auto it = counts.find(state);
    if (it != counts.end()) terminal += it->second;
  }
  if (terminal != total_jobs) return false;
  for (const job_status& job : jobs)
    if (!job.owner.empty() && job.lease_remaining > 0.0) return false;
  return true;
}

io::json_value campaign_status::to_json(bool include_jobs) const {
  io::json_value v = io::json_value::object();
  if (!id.empty()) {
    v["id"] = id;
    v["tenant"] = tenant;
    v["state"] = service_state;
  }
  v["name"] = name;
  v["total_jobs"] = total_jobs;
  v["journal_events"] = journal_events;
  v["result_rows"] = result_rows;
  io::json_value& c = v["counts"] = io::json_value::object();
  for (const auto& [state, n] : counts) c[state] = n;
  v["all_completed"] = all_completed();
  v["settled"] = settled();
  if (include_jobs) {
    io::json_value& arr = v["jobs"] = io::json_value::array();
    for (const job_status& job : jobs) arr.push_back(job.to_json());
  }
  return v;
}

std::string campaign_status::render_text() const {
  io::console_table table({"#", "job", "state", "attempt", "owner", "lease", "detail"});
  for (const job_status& job : jobs) {
    std::string lease_text = "-";
    if (!job.owner.empty())
      lease_text = job.lease_remaining > 0.0
                       ? "live " + io::console_table::num(job.lease_remaining, 0) + "s"
                       : "expired";
    table.add_row({std::to_string(job.index), job.name, job.state,
                   job.attempt > 0 ? std::to_string(job.attempt) : "-",
                   job.owner.empty() ? "-" : job.owner, lease_text, job.detail});
  }
  std::string out =
      table.render("Campaign '" + name + "' (" + std::to_string(total_jobs) +
                   " jobs, journal: " + std::to_string(journal_events) + " events)");
  std::string summary;
  for (const auto& [state, n] : counts)
    summary += (summary.empty() ? "" : ", ") + std::to_string(n) + " " + state;
  out += "\n" + summary + "\n";
  return out;
}

campaign_status read_campaign_status(const runtime::campaign_spec& spec,
                                     const std::string& campaign_dir, double now) {
  const auto entries = runtime::journal::replay(runtime::journal_path(campaign_dir));
  const auto latest = runtime::journal::latest_states(entries);
  // Leases come from the resolved fold, not the latest record — the latest
  // line can be a losing claim or a stale heartbeat.
  const runtime::lease_table leases = runtime::lease_table::resolve(entries);

  campaign_status status;
  status.name = spec.name;
  status.total_jobs = spec.job_count();
  status.journal_events = entries.size();
  status.result_rows = runtime::result_store::count_rows(campaign_dir);

  for (const runtime::campaign_job& expanded : spec.expand()) {
    job_status job;
    job.index = expanded.index;
    job.name = expanded.name;
    const auto it = latest.find(job.index);
    if (it != latest.end()) {
      job.state = runtime::to_string(it->second.state);
      job.attempt = it->second.attempt;
      job.detail = it->second.detail;
    }
    const runtime::lease_view lease = leases.view(job.index);
    if (lease.state == runtime::lease_view::phase::done) {
      job.state = "completed";
    } else if (lease.state == runtime::lease_view::phase::leased) {
      job.owner = lease.worker;
      job.lease_remaining = lease.deadline - now;
    }
    ++status.counts[job.state];
    status.jobs.push_back(std::move(job));
  }
  return status;
}

campaign_status read_campaign_status(const std::string& campaign_dir, double now) {
  const runtime::campaign_spec spec =
      runtime::campaign_spec::load(runtime::campaign_spec_path(campaign_dir));
  return read_campaign_status(spec, campaign_dir, now);
}

}  // namespace boson::service
