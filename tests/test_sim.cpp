// Tests for the simulation-engine layer: backend selection and agreement,
// batched multi-RHS solves, the LRU operator cache, per-thread workspace
// reuse, and determinism of the Monte-Carlo protocol under varying
// BOSON_THREADS.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <memory>

#include "core/evaluate.h"
#include "core/methods.h"
#include "devices/builders.h"
#include "fab/temperature.h"
#include "fdfd/source.h"
#include "sim/backend.h"
#include "sim/cache.h"
#include "sim/engine.h"
#include "sim/workspace.h"

namespace boson {
namespace {

constexpr double k0_default = 2.0 * pi / 1.55;

/// Straight silicon waveguide through a small PML-bounded domain — the
/// Helmholtz system every backend must agree on.
struct waveguide_fixture {
  grid2d g;
  pml_spec pml;
  array2d<double> eps;

  explicit waveguide_fixture(std::size_t nx = 40, std::size_t ny = 30, double d = 0.05) {
    g.nx = nx;
    g.ny = ny;
    g.dx = g.dy = d;
    pml.cells = 8;
    eps = array2d<double>(nx, ny, 1.0);
    const double eps_si = fab::eps_si(300.0);
    for (std::size_t ix = 0; ix < nx; ++ix)
      for (std::size_t iy = ny / 2 - 4; iy < ny / 2 + 4; ++iy) eps(ix, iy) = eps_si;
  }

  array2d<cplx> point_source(std::size_t ix, std::size_t iy) const {
    array2d<cplx> current(g.nx, g.ny, cplx{});
    current(ix, iy) = cplx{1.0};
    return current;
  }
};

sim::engine_settings settings_for(sim::backend_kind kind) {
  sim::engine_settings s;
  s.backend = kind;
  return s;
}

double max_abs(const array2d<cplx>& f) {
  double m = 0.0;
  for (const auto& v : f) m = std::max(m, std::abs(v));
  return m;
}

double max_diff(const array2d<cplx>& a, const array2d<cplx>& b) {
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i)
    m = std::max(m, std::abs(a.raw()[i] - b.raw()[i]));
  return m;
}

// -------------------------------------------------------------- backend ----

TEST(backend, names_round_trip_and_aliases_parse) {
  EXPECT_EQ(sim::backend_from_string("banded"), sim::backend_kind::banded);
  EXPECT_EQ(sim::backend_from_string("direct"), sim::backend_kind::banded);
  EXPECT_EQ(sim::backend_from_string("LU"), sim::backend_kind::banded);
  EXPECT_EQ(sim::backend_from_string("BiCGSTAB"), sim::backend_kind::bicgstab);
  EXPECT_EQ(sim::backend_from_string("gmres"), sim::backend_kind::gmres);
  EXPECT_THROW(sim::backend_from_string("sparta"), bad_argument);
  for (const auto kind : {sim::backend_kind::banded, sim::backend_kind::bicgstab,
                          sim::backend_kind::gmres})
    EXPECT_EQ(sim::backend_from_string(sim::to_string(kind)), kind);
}

TEST(backend, boson_backend_env_selects_default) {
  unsetenv("BOSON_BACKEND");
  EXPECT_EQ(sim::default_backend(), sim::backend_kind::banded);
  ASSERT_EQ(setenv("BOSON_BACKEND", "gmres", 1), 0);
  EXPECT_EQ(sim::default_backend(), sim::backend_kind::gmres);
  EXPECT_EQ(sim::engine_settings{}.backend, sim::backend_kind::gmres);
  ASSERT_EQ(setenv("BOSON_BACKEND", "bicgstab", 1), 0);
  EXPECT_EQ(sim::default_backend(), sim::backend_kind::bicgstab);
  unsetenv("BOSON_BACKEND");
  EXPECT_EQ(sim::default_backend(), sim::backend_kind::banded);
}

// --------------------------------------------------------------- engine ----

TEST(engine, all_backends_agree_on_pml_helmholtz_system) {
  const waveguide_fixture f;
  const auto current = f.point_source(14, f.g.ny / 2);

  const sim::simulation_engine direct(f.g, f.pml, k0_default, f.eps,
                                      settings_for(sim::backend_kind::banded));
  const auto reference = direct.solve_excitation(current);
  const double scale = max_abs(reference);
  ASSERT_GT(scale, 0.0);

  for (const auto kind : {sim::backend_kind::bicgstab, sim::backend_kind::gmres}) {
    const sim::simulation_engine iterative(f.g, f.pml, k0_default, f.eps,
                                           settings_for(kind));
    const auto field = iterative.solve_excitation(current);
    EXPECT_LT(max_diff(field, reference), 1e-6 * scale)
        << "backend " << sim::to_string(kind);
  }
}

TEST(engine, batched_excitations_match_individual_solves) {
  const waveguide_fixture f;
  const sim::simulation_engine engine(f.g, f.pml, k0_default, f.eps,
                                      settings_for(sim::backend_kind::banded));
  const std::vector<array2d<cplx>> currents{f.point_source(12, f.g.ny / 2),
                                            f.point_source(20, f.g.ny / 2 + 2),
                                            f.point_source(27, f.g.ny / 2 - 3)};
  const auto batched = engine.solve_excitations(currents);
  ASSERT_EQ(batched.size(), currents.size());
  for (std::size_t k = 0; k < currents.size(); ++k) {
    const auto single = engine.solve_excitation(currents[k]);
    EXPECT_LT(max_diff(batched[k], single), 1e-10 * (1.0 + max_abs(single)))
        << "excitation " << k;
  }
}

TEST(engine, batched_adjoints_match_fdfd_solver) {
  const waveguide_fixture f;
  const sim::simulation_engine engine(f.g, f.pml, k0_default, f.eps,
                                      settings_for(sim::backend_kind::banded));
  const std::vector<fdfd::field_gradient> gradients{
      {{200, cplx{1.0, 0.5}}},
      {{310, cplx{-0.25, 0.0}}, {311, cplx{0.0, 1.0}}},
  };
  const auto lambdas = engine.solve_adjoints(gradients);
  ASSERT_EQ(lambdas.size(), gradients.size());
  fdfd::fdfd_solver plain(f.g, f.pml, k0_default, f.eps);
  for (std::size_t k = 0; k < gradients.size(); ++k) {
    const auto reference = plain.solve_adjoint(gradients[k]);
    EXPECT_LT(max_diff(lambdas[k], reference), 1e-10 * (1.0 + max_abs(reference)))
        << "adjoint " << k;
  }
}

TEST(engine, iterative_backend_reports_nonconvergence) {
  const waveguide_fixture f;
  sim::engine_settings s = settings_for(sim::backend_kind::bicgstab);
  s.tol = 1e-14;
  s.max_iterations = 1;
  const sim::simulation_engine engine(f.g, f.pml, k0_default, f.eps, s);
  EXPECT_THROW((void)engine.solve_excitation(f.point_source(14, f.g.ny / 2)),
               numeric_error);
}

// ---------------------------------------------------------------- cache ----

TEST(cache, hit_miss_and_lru_eviction) {
  const waveguide_fixture f;
  const auto s = settings_for(sim::backend_kind::banded);
  sim::engine_cache cache(2);

  array2d<double> eps_a = f.eps;
  array2d<double> eps_b = f.eps;
  eps_b(0, 0) += 0.5;
  array2d<double> eps_c = f.eps;
  eps_c(1, 1) += 0.5;

  const auto a1 = cache.acquire(f.g, f.pml, k0_default, eps_a, s);
  EXPECT_EQ(cache.stats().misses, 1u);
  const auto a2 = cache.acquire(f.g, f.pml, k0_default, eps_a, s);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(a1.get(), a2.get()) << "hit must return the shared engine";

  (void)cache.acquire(f.g, f.pml, k0_default, eps_b, s);
  EXPECT_EQ(cache.stats().entries, 2u);
  EXPECT_EQ(cache.stats().evictions, 0u);

  // Third distinct operator exceeds capacity 2: the least-recently-used
  // entry (eps_a, acquired before eps_b) is evicted.
  (void)cache.acquire(f.g, f.pml, k0_default, eps_c, s);
  EXPECT_EQ(cache.stats().entries, 2u);
  EXPECT_EQ(cache.stats().evictions, 1u);

  (void)cache.acquire(f.g, f.pml, k0_default, eps_b, s);
  EXPECT_EQ(cache.stats().hits, 2u) << "eps_b must still be resident";
  (void)cache.acquire(f.g, f.pml, k0_default, eps_a, s);
  EXPECT_EQ(cache.stats().misses, 4u) << "eps_a was evicted and must rebuild";

  cache.clear();
  const auto st = cache.stats();
  EXPECT_EQ(st.entries, 0u);
  EXPECT_EQ(st.hits + st.misses + st.evictions, 0u);
}

TEST(cache, key_separates_k0_and_backend_settings) {
  const waveguide_fixture f;
  sim::engine_cache cache(8);
  (void)cache.acquire(f.g, f.pml, k0_default, f.eps,
                      settings_for(sim::backend_kind::banded));
  (void)cache.acquire(f.g, f.pml, 1.1 * k0_default, f.eps,
                      settings_for(sim::backend_kind::banded));
  (void)cache.acquire(f.g, f.pml, k0_default, f.eps,
                      settings_for(sim::backend_kind::bicgstab));
  EXPECT_EQ(cache.stats().entries, 3u);
  EXPECT_EQ(cache.stats().hits, 0u);
}

TEST(cache, cached_engine_reproduces_fresh_solution) {
  const waveguide_fixture f;
  sim::engine_cache cache(2);
  const auto s = settings_for(sim::backend_kind::banded);
  const auto cached = cache.acquire(f.g, f.pml, k0_default, f.eps, s);
  const auto again = cache.acquire(f.g, f.pml, k0_default, f.eps, s);
  const sim::simulation_engine fresh(f.g, f.pml, k0_default, f.eps, s);
  const auto current = f.point_source(14, f.g.ny / 2);
  const auto a = again->solve_excitation(current);
  const auto b = fresh.solve_excitation(current);
  EXPECT_LT(max_diff(a, b), 1e-12 * (1.0 + max_abs(b)));
}

// ---------------------------------------------------- nearby-operator reuse ----

TEST(reuse, nearby_engine_agrees_with_full_reprepare_across_perturbations) {
  const waveguide_fixture f;
  const auto s = settings_for(sim::backend_kind::banded);
  const auto nominal = std::make_shared<const sim::simulation_engine>(
      f.g, f.pml, k0_default, f.eps, s);
  const auto current = f.point_source(14, f.g.ny / 2);
  const double eps_si = fab::eps_si(300.0);

  // Perturbation matrix: a wide-support temperature-like shift, a handful of
  // full-contrast cell flips, and both at once.
  std::vector<array2d<double>> corners;
  {
    array2d<double> thermal = f.eps;
    for (auto& v : thermal)
      if (v > 2.0) v += 0.02;
    corners.push_back(thermal);

    array2d<double> flips = f.eps;
    flips(10, f.g.ny / 2 - 6) = eps_si;
    flips(22, f.g.ny / 2 + 6) = eps_si;
    flips(30, f.g.ny / 2) = 1.0;
    corners.push_back(flips);

    array2d<double> both = thermal;
    both(18, f.g.ny / 2 - 6) = eps_si;
    both(25, f.g.ny / 2 + 7) = eps_si;
    corners.push_back(both);
  }

  const auto before = sim::reuse_statistics();
  for (std::size_t k = 0; k < corners.size(); ++k) {
    const sim::simulation_engine reused(nominal, corners[k]);
    const sim::simulation_engine fresh(f.g, f.pml, k0_default, corners[k], s);
    const auto a = reused.solve_excitation(current);
    const auto b = fresh.solve_excitation(current);
    const double scale = max_abs(b);
    ASSERT_GT(scale, 0.0);
    EXPECT_LT(max_diff(a, b), 1e-6 * scale) << "corner " << k;
  }
  const auto after = sim::reuse_statistics();
  EXPECT_GE(after.refinement_solves - before.refinement_solves, corners.size());
  EXPECT_EQ(after.fallbacks - before.fallbacks, 0u)
      << "every corner must be served by the nominal factorization";
}

TEST(reuse, large_perturbation_triggers_counted_fallback_and_still_agrees) {
  const waveguide_fixture f;
  auto s = settings_for(sim::backend_kind::banded);
  s.reuse_max_iterations = 2;  // starve the outer loop so refinement cannot win
  const auto nominal = std::make_shared<const sim::simulation_engine>(
      f.g, f.pml, k0_default, f.eps, s);

  array2d<double> eps2 = f.eps;
  const double eps_si = fab::eps_si(300.0);
  for (std::size_t ix = 4; ix < f.g.nx - 4; ix += 2)  // many full-contrast flips
    eps2(ix, f.g.ny / 2 - 7) = eps_si;

  const auto before = sim::reuse_statistics();
  const sim::simulation_engine reused(nominal, eps2);
  const auto current = f.point_source(14, f.g.ny / 2);
  const auto a = reused.solve_excitation(current);
  const auto after = sim::reuse_statistics();
  EXPECT_GE(after.fallbacks - before.fallbacks, 1u);

  const sim::simulation_engine fresh(f.g, f.pml, k0_default, eps2, s);
  const auto b = fresh.solve_excitation(current);
  EXPECT_LT(max_diff(a, b), 1e-10 * (1.0 + max_abs(b)))
      << "the fallback path is a full re-prepare and must match it";
}

TEST(reuse, cache_serves_perturbed_operator_from_nominal_factorization) {
  const waveguide_fixture f;
  const auto s = settings_for(sim::backend_kind::banded);
  sim::engine_cache cache(4);

  const auto nom = cache.acquire(f.g, f.pml, k0_default, f.eps, s);
  EXPECT_FALSE(nom->is_reuse());

  array2d<double> eps2 = f.eps;
  eps2(12, f.g.ny / 2 - 6) += 0.4;
  const auto e2 = cache.acquire(f.g, f.pml, k0_default, eps2, s);
  ASSERT_TRUE(e2->is_reuse());
  EXPECT_EQ(e2->nominal().get(), nom.get());
  EXPECT_EQ(cache.stats().reuse_hits, 1u);
  EXPECT_EQ(cache.stats().misses, 2u) << "a reuse build is still a cache miss";

  // A third perturbation whose best family match is the reuse engine must be
  // rooted at that engine's nominal — preconditioners never stack.
  array2d<double> eps3 = f.eps;
  eps3(13, f.g.ny / 2 - 6) += 0.4;
  const auto e3 = cache.acquire(f.g, f.pml, k0_default, eps3, s);
  ASSERT_TRUE(e3->is_reuse());
  EXPECT_EQ(e3->nominal().get(), nom.get());
  EXPECT_EQ(cache.stats().reuse_hits, 2u);
}

TEST(reuse, perturbation_heuristic_rejects_distant_operators) {
  const waveguide_fixture f;
  const auto s = settings_for(sim::backend_kind::banded);
  sim::engine_cache cache(4);
  (void)cache.acquire(f.g, f.pml, k0_default, f.eps, s);

  array2d<double> far = f.eps;
  for (auto& v : far) v += 6.0;  // rms delta well above reuse_max_delta
  const auto e = cache.acquire(f.g, f.pml, k0_default, far, s);
  EXPECT_FALSE(e->is_reuse()) << "distant operators must get a full prepare";
  EXPECT_EQ(cache.stats().reuse_hits, 0u);
}

TEST(reuse, boson_sim_reuse_env_disables_the_nearby_path) {
  const waveguide_fixture f;
  const auto s = settings_for(sim::backend_kind::banded);
  array2d<double> eps2 = f.eps;
  eps2(12, f.g.ny / 2 - 6) += 0.4;

  ASSERT_EQ(setenv("BOSON_SIM_REUSE", "0", 1), 0);
  EXPECT_FALSE(sim::operator_reuse_enabled());
  {
    sim::engine_cache cache(4);
    (void)cache.acquire(f.g, f.pml, k0_default, f.eps, s);
    const auto e = cache.acquire(f.g, f.pml, k0_default, eps2, s);
    EXPECT_FALSE(e->is_reuse());
    EXPECT_EQ(cache.stats().reuse_hits, 0u);
  }
  unsetenv("BOSON_SIM_REUSE");
  EXPECT_TRUE(sim::operator_reuse_enabled());
  {
    sim::engine_cache cache(4);
    (void)cache.acquire(f.g, f.pml, k0_default, f.eps, s);
    const auto e = cache.acquire(f.g, f.pml, k0_default, eps2, s);
    EXPECT_TRUE(e->is_reuse());
  }
}

TEST(reuse, repeated_excitation_batch_is_served_from_the_solution_memo) {
  const waveguide_fixture f;
  const sim::simulation_engine engine(f.g, f.pml, k0_default, f.eps,
                                      settings_for(sim::backend_kind::banded));
  const auto current = f.point_source(14, f.g.ny / 2);
  const auto before = sim::reuse_statistics();
  const auto a = engine.solve_excitation(current);
  const auto b = engine.solve_excitation(current);
  const auto after = sim::reuse_statistics();
  EXPECT_EQ(after.solution_reuses - before.solution_reuses, 1u);
  EXPECT_EQ(max_diff(a, b), 0.0) << "memoized fields must be bit-identical";
}

TEST(reuse, krylov_backend_recycles_solutions_across_solves) {
  const waveguide_fixture f;
  const sim::simulation_engine engine(f.g, f.pml, k0_default, f.eps,
                                      settings_for(sim::backend_kind::gmres));
  const auto before = sim::reuse_statistics();
  (void)engine.solve_excitation(f.point_source(14, f.g.ny / 2));
  (void)engine.solve_excitation(f.point_source(20, f.g.ny / 2 + 2));
  const auto after = sim::reuse_statistics();
  EXPECT_GE(after.recycle_guesses - before.recycle_guesses, 1u)
      << "the second solve must start from the recycled subspace";
}

// ------------------------------------------------------------ workspace ----

TEST(workspace, recycles_buffers_through_the_pool) {
  auto& ws = sim::workspace::local();

  cvec a = ws.take_cvec(128);
  const cplx* ptr = a.data();
  ws.give_cvec(std::move(a));
  cvec b = ws.take_cvec(100);  // smaller request reuses the same allocation
  EXPECT_EQ(b.data(), ptr);
  ws.give_cvec(std::move(b));

  array2d<double> g = ws.take_dgrid(8, 9);
  const double* gp = g.data();
  ws.give_dgrid(std::move(g));
  array2d<double> g2 = ws.take_dgrid(8, 9);
  EXPECT_EQ(g2.data(), gp);
  array2d<double> g3 = ws.take_dgrid(4, 4);  // different shape: fresh buffer
  EXPECT_EQ(g3.size(), 16u);
  ws.give_dgrid(std::move(g2));
  ws.give_dgrid(std::move(g3));

  array2d<cplx> c = ws.take_cgrid(5, 5);
  for (auto& v : c) v = cplx{1.0};
  ws.give_cgrid(std::move(c));
  array2d<cplx> c2 = ws.take_cgrid(5, 5);
  for (const auto& v : c2) EXPECT_EQ(v, cplx{}) << "complex grids are cleared on take";
  ws.give_cgrid(std::move(c2));
}

TEST(workspace, pools_are_capped) {
  auto& ws = sim::workspace::local();
  for (std::size_t k = 0; k < 3 * sim::workspace::max_pooled; ++k) {
    ws.give_cvec(cvec(4));
    ws.give_dgrid(array2d<double>(2, 2));
    ws.give_cgrid(array2d<cplx>(2, 2));
  }
  EXPECT_LE(ws.pooled_cvecs(), sim::workspace::max_pooled);
  EXPECT_LE(ws.pooled_dgrids(), sim::workspace::max_pooled);
  EXPECT_LE(ws.pooled_cgrids(), sim::workspace::max_pooled);
}

// ---------------------------------------------------- end-to-end protocol ----

/// Coarse, fast configuration (mirrors the core test suite).
core::experiment_config fast_config() {
  core::experiment_config cfg;
  cfg.resolution = 0.1;
  cfg.litho.na = 0.65;
  cfg.litho.sigma = 0.35;
  cfg.litho.kernel_half = 5;
  cfg.litho.max_kernels = 5;
  cfg.eole.anchors_x = 4;
  cfg.eole.anchors_y = 4;
  cfg.eole.num_terms = 5;
  return cfg;
}

TEST(integration, postfab_monte_carlo_is_deterministic_across_thread_counts) {
  const core::design_problem problem =
      core::make_problem(dev::make_bend(0.1), true, fast_config());
  array2d<double> mask(problem.spec().design.nx, problem.spec().design.ny, 0.0);
  for (std::size_t i = 0; i < mask.nx(); ++i)
    for (std::size_t j = mask.ny() / 3; j < 2 * mask.ny() / 3; ++j) mask(i, j) = 1.0;

  ASSERT_EQ(setenv("BOSON_THREADS", "1", 1), 0);
  const core::mc_stats serial = core::postfab_monte_carlo(problem, mask, 6, 99);
  ASSERT_EQ(setenv("BOSON_THREADS", "4", 1), 0);
  const core::mc_stats threaded = core::postfab_monte_carlo(problem, mask, 6, 99);
  unsetenv("BOSON_THREADS");

  EXPECT_DOUBLE_EQ(serial.fom_mean, threaded.fom_mean);
  EXPECT_DOUBLE_EQ(serial.fom_std, threaded.fom_std);
  EXPECT_DOUBLE_EQ(serial.fom_min, threaded.fom_min);
  EXPECT_DOUBLE_EQ(serial.fom_max, threaded.fom_max);
  ASSERT_EQ(serial.metric_means.size(), threaded.metric_means.size());
  for (const auto& [name, value] : serial.metric_means)
    EXPECT_DOUBLE_EQ(value, threaded.metric_means.at(name)) << name;
}

TEST(integration, evaluate_agrees_across_backends) {
  const core::design_problem problem =
      core::make_problem(dev::make_bend(0.1), true, fast_config());
  const dvec theta = core::concentrated_init(problem);
  robust::variation_corner nominal;
  nominal.xi.assign(problem.fab().space.eole_terms, 0.0);

  core::eval_options o;
  o.fab_aware = true;
  o.compute_gradient = true;
  o.engine = settings_for(sim::backend_kind::banded);
  const auto direct = problem.evaluate(theta, nominal, o);

  for (const auto kind : {sim::backend_kind::bicgstab, sim::backend_kind::gmres}) {
    o.engine = settings_for(kind);
    // Left-preconditioned GMRES reports the preconditioned residual, which
    // can understate the true one; tighten the target for the comparison.
    o.engine.tol = 1e-12;
    const auto ev = problem.evaluate(theta, nominal, o);
    EXPECT_NEAR(ev.loss, direct.loss, 1e-6 * (1.0 + std::abs(direct.loss)))
        << sim::to_string(kind);
    ASSERT_EQ(ev.grad.size(), direct.grad.size());
    double worst = 0.0, scale = 0.0;
    for (std::size_t i = 0; i < ev.grad.size(); ++i) {
      worst = std::max(worst, std::abs(ev.grad[i] - direct.grad[i]));
      scale = std::max(scale, std::abs(direct.grad[i]));
    }
    EXPECT_LT(worst, 1e-5 * (1.0 + scale)) << sim::to_string(kind);
  }
}

}  // namespace
}  // namespace boson
