#include "devices/builders.h"

#include <cmath>

#include "common/error.h"

namespace boson::dev {

const char* to_string(device_kind kind) {
  switch (kind) {
    case device_kind::bend: return "bending";
    case device_kind::crossing: return "crossing";
    case device_kind::isolator: return "isolator";
  }
  return "?";
}

namespace {

constexpr double lambda_c = 1.55;  ///< central wavelength [um]

std::size_t cell_of(double position, double res) {
  return static_cast<std::size_t>(std::llround(position / res));
}

std::size_t count_of(double length, double res) {
  return static_cast<std::size_t>(std::llround(length / res));
}

grid2d make_grid(double width, double height, double res) {
  grid2d g;
  g.nx = count_of(width, res);
  g.ny = count_of(height, res);
  g.dx = g.dy = res;
  g.x0 = g.y0 = 0.0;
  return g;
}

pml_spec make_pml(double res) {
  pml_spec p;
  p.cells = std::max<std::size_t>(6, count_of(0.6, res));
  return p;
}

/// Mark cells whose center lies in [x0, x1) x [y0, y1) as solid.
void paint_rect(array2d<double>& occ, const grid2d& g, double x0, double x1, double y0,
                double y1) {
  for (std::size_t ix = 0; ix < g.nx; ++ix) {
    const double x = g.x_center(ix);
    if (x < x0 || x >= x1) continue;
    for (std::size_t iy = 0; iy < g.ny; ++iy) {
      const double y = g.y_center(iy);
      if (y >= y0 && y < y1) occ(ix, iy) = 1.0;
    }
  }
}

cell_window window_of(const grid2d& g, double x0, double y0, double w, double h, double res) {
  cell_window win;
  win.ix0 = cell_of(x0, res);
  win.iy0 = cell_of(y0, res);
  win.nx = count_of(w, res);
  win.ny = count_of(h, res);
  win.validate_within(g);
  return win;
}

/// The design window belongs to the optimizer: fixed geometry must not
/// pre-populate it (the pattern overwrites those cells at simulation time).
void clear_window(array2d<double>& occ, const cell_window& win) {
  for (std::size_t i = 0; i < win.nx; ++i)
    for (std::size_t j = 0; j < win.ny; ++j) occ(win.ix0 + i, win.iy0 + j) = 0.0;
}

port vertical_port(double x, double y_lo, double y_hi, int direction, double res) {
  port p;
  p.axis = fdfd::port_axis::vertical;
  p.line = cell_of(x, res);
  p.span_start = cell_of(y_lo, res);
  p.span_count = count_of(y_hi - y_lo, res);
  p.direction = direction;
  return p;
}

port horizontal_port(double y, double x_lo, double x_hi, int direction, double res) {
  port p;
  p.axis = fdfd::port_axis::horizontal;
  p.line = cell_of(y, res);
  p.span_start = cell_of(x_lo, res);
  p.span_count = count_of(x_hi - x_lo, res);
  p.direction = direction;
  return p;
}

flux_monitor_def vertical_flux(const std::string& name, double x, double y_lo, double y_hi,
                               double sign, double res) {
  flux_monitor_def f;
  f.name = name;
  f.axis = fdfd::port_axis::vertical;
  f.index = cell_of(x, res);
  f.span_start = cell_of(y_lo, res);
  f.span_count = count_of(y_hi - y_lo, res);
  f.sign = sign;
  return f;
}

flux_monitor_def horizontal_flux(const std::string& name, double y, double x_lo, double x_hi,
                                 double sign, double res) {
  flux_monitor_def f;
  f.name = name;
  f.axis = fdfd::port_axis::horizontal;
  f.index = cell_of(y, res);
  f.span_start = cell_of(x_lo, res);
  f.span_count = count_of(x_hi - x_lo, res);
  f.sign = sign;
  return f;
}

}  // namespace

device_spec make_bend(double resolution) {
  require(resolution > 0.0 && resolution <= 0.1, "make_bend: resolution out of range");
  const double res = resolution;
  device_spec d;
  d.name = "bending";
  d.grid = make_grid(4.4, 4.4, res);
  d.pml = make_pml(res);
  d.k0 = 2.0 * pi / lambda_c;

  // Input waveguide from the left (centerline y = 1.8), output through the
  // top (centerline x = 2.6); both 0.4 um wide. Design region 1.6 x 1.6 um.
  d.background_occupancy = array2d<double>(d.grid.nx, d.grid.ny, 0.0);
  paint_rect(d.background_occupancy, d.grid, 0.0, 1.4, 1.6, 2.0);
  paint_rect(d.background_occupancy, d.grid, 2.4, 2.8, 3.0, 4.4);

  d.reference_occupancy = array2d<double>(d.grid.nx, d.grid.ny, 0.0);
  paint_rect(d.reference_occupancy, d.grid, 0.0, 4.4, 1.6, 2.0);

  d.design = window_of(d.grid, 1.4, 1.4, 1.6, 1.6, res);
  clear_window(d.background_occupancy, d.design);

  excitation fwd;
  fwd.name = "fwd";
  fwd.source = vertical_port(0.8, 0.8, 2.8, +1, res);
  fwd.source_mode_order = 1;
  fwd.mode_monitors.push_back({"out", horizontal_port(3.6, 1.6, 3.6, +1, res), 1});
  fwd.flux_monitors.push_back(vertical_flux("influx", 1.1, 0.8, 3.6, +1.0, res));
  fwd.reference_monitor = {"ref", vertical_port(3.6, 0.8, 2.8, +1, res), 1};
  d.excitations.push_back(std::move(fwd));

  objective_spec obj;
  obj.kind = objective_kind::maximize_metric;
  obj.primary = "transmission";
  obj.metrics = {
      {"transmission", 0.0, {{"fwd.out", 1.0}}},
      {"reflection", 1.0, {{"fwd.influx", -1.0}}},
      {"radiation", 0.0, {{"fwd.influx", 1.0}, {"fwd.out", -1.0}}},
  };
  obj.dense_penalties = {
      {"reflection", 0.5, 0.05, true},
      {"radiation", 0.5, 0.10, true},
  };
  obj.fom_metric = "transmission";
  obj.fom_lower_better = false;
  d.objective = std::move(obj);

  // Quarter-circle arc of radius 1.2 um around the design window's top-left
  // corner connects the two port centerlines.
  d.init_signed_field = array2d<double>(d.design.nx, d.design.ny);
  const double cx = 1.4, cy = 3.0, radius = 1.2, half_width = 0.2;
  for (std::size_t ix = 0; ix < d.design.nx; ++ix) {
    const double x = d.grid.x_center(d.design.ix0 + ix);
    for (std::size_t iy = 0; iy < d.design.ny; ++iy) {
      const double y = d.grid.y_center(d.design.iy0 + iy);
      const double r = std::hypot(x - cx, y - cy);
      d.init_signed_field(ix, iy) = (half_width - std::abs(r - radius)) / half_width;
    }
  }
  return d;
}

device_spec make_crossing(double resolution) {
  require(resolution > 0.0 && resolution <= 0.1, "make_crossing: resolution out of range");
  const double res = resolution;
  device_spec d;
  d.name = "crossing";
  d.grid = make_grid(4.4, 4.4, res);
  d.pml = make_pml(res);
  d.k0 = 2.0 * pi / lambda_c;

  // Two 0.4 um waveguides crossing at (2.2, 2.2); design region 1.6 x 1.6 um.
  d.background_occupancy = array2d<double>(d.grid.nx, d.grid.ny, 0.0);
  paint_rect(d.background_occupancy, d.grid, 0.0, 4.4, 2.0, 2.4);
  paint_rect(d.background_occupancy, d.grid, 2.0, 2.4, 0.0, 4.4);

  d.reference_occupancy = array2d<double>(d.grid.nx, d.grid.ny, 0.0);
  paint_rect(d.reference_occupancy, d.grid, 0.0, 4.4, 2.0, 2.4);

  d.design = window_of(d.grid, 1.4, 1.4, 1.6, 1.6, res);
  clear_window(d.background_occupancy, d.design);

  excitation fwd;
  fwd.name = "fwd";
  fwd.source = vertical_port(0.8, 1.2, 3.2, +1, res);
  fwd.source_mode_order = 1;
  fwd.mode_monitors.push_back({"out", vertical_port(3.6, 1.2, 3.2, +1, res), 1});
  fwd.flux_monitors.push_back(vertical_flux("influx", 1.1, 0.8, 3.6, +1.0, res));
  fwd.flux_monitors.push_back(horizontal_flux("xtalk_up", 3.6, 1.8, 2.6, +1.0, res));
  fwd.flux_monitors.push_back(horizontal_flux("xtalk_dn", 0.8, 1.8, 2.6, -1.0, res));
  fwd.reference_monitor = {"ref", vertical_port(3.6, 1.2, 3.2, +1, res), 1};
  d.excitations.push_back(std::move(fwd));

  objective_spec obj;
  obj.kind = objective_kind::maximize_metric;
  obj.primary = "transmission";
  obj.metrics = {
      {"transmission", 0.0, {{"fwd.out", 1.0}}},
      {"reflection", 1.0, {{"fwd.influx", -1.0}}},
      {"crosstalk", 0.0, {{"fwd.xtalk_up", 1.0}, {"fwd.xtalk_dn", 1.0}}},
      {"radiation",
       0.0,
       {{"fwd.influx", 1.0}, {"fwd.out", -1.0}, {"fwd.xtalk_up", -1.0}, {"fwd.xtalk_dn", -1.0}}},
  };
  obj.dense_penalties = {
      {"reflection", 0.5, 0.05, true},
      {"crosstalk", 1.0, 0.02, true},
      {"radiation", 0.5, 0.10, true},
  };
  obj.fom_metric = "transmission";
  obj.fom_lower_better = false;
  d.objective = std::move(obj);

  // Plain cross: solid where either arm passes.
  d.init_signed_field = array2d<double>(d.design.nx, d.design.ny);
  const double half_width = 0.2, center = 2.2;
  for (std::size_t ix = 0; ix < d.design.nx; ++ix) {
    const double x = d.grid.x_center(d.design.ix0 + ix);
    for (std::size_t iy = 0; iy < d.design.ny; ++iy) {
      const double y = d.grid.y_center(d.design.iy0 + iy);
      const double dist = std::min(std::abs(x - center), std::abs(y - center));
      d.init_signed_field(ix, iy) = (half_width - dist) / half_width;
    }
  }
  return d;
}

device_spec make_isolator(double resolution) {
  require(resolution > 0.0 && resolution <= 0.1, "make_isolator: resolution out of range");
  const double res = resolution;
  device_spec d;
  d.name = "isolator";
  d.grid = make_grid(5.6, 3.6, res);
  d.pml = make_pml(res);
  d.k0 = 2.0 * pi / lambda_c;

  // One wide (1.4 um) multimode waveguide through the domain; the design
  // region (2.4 x 2.0 um) straddles it.
  d.background_occupancy = array2d<double>(d.grid.nx, d.grid.ny, 0.0);
  paint_rect(d.background_occupancy, d.grid, 0.0, 5.6, 1.1, 2.5);

  d.reference_occupancy = d.background_occupancy;

  d.design = window_of(d.grid, 1.6, 0.8, 2.4, 2.0, res);
  clear_window(d.background_occupancy, d.design);

  excitation fwd;
  fwd.name = "fwd";
  fwd.source = vertical_port(0.8, 0.8, 2.8, +1, res);
  fwd.source_mode_order = 1;
  fwd.mode_monitors.push_back({"out3", vertical_port(4.6, 0.8, 2.8, +1, res), 3});
  fwd.flux_monitors.push_back(vertical_flux("influx", 1.2, 0.8, 2.8, +1.0, res));
  fwd.reference_monitor = {"ref", vertical_port(4.6, 0.8, 2.8, +1, res), 1};
  d.excitations.push_back(std::move(fwd));

  excitation bwd;
  bwd.name = "bwd";
  bwd.source = vertical_port(4.6, 0.8, 2.8, -1, res);
  bwd.source_mode_order = 1;
  bwd.mode_monitors.push_back({"out1", vertical_port(0.8, 0.8, 2.8, -1, res), 1});
  bwd.flux_monitors.push_back(vertical_flux("influx", 4.2, 0.8, 2.8, -1.0, res));
  bwd.reference_monitor = {"ref", vertical_port(0.8, 0.8, 2.8, -1, res), 1};
  d.excitations.push_back(std::move(bwd));

  objective_spec obj;
  obj.kind = objective_kind::minimize_ratio;
  obj.primary = "bwd_transmission";
  obj.secondary = "fwd_transmission";
  obj.metrics = {
      {"fwd_transmission", 0.0, {{"fwd.out3", 1.0}}},
      {"fwd_reflection", 1.0, {{"fwd.influx", -1.0}}},
      {"fwd_radiation", 0.0, {{"fwd.influx", 1.0}, {"fwd.out3", -1.0}}},
      {"bwd_transmission", 0.0, {{"bwd.out1", 1.0}}},
      {"bwd_reflection", 1.0, {{"bwd.influx", -1.0}}},
      {"bwd_radiation", 0.0, {{"bwd.influx", 1.0}, {"bwd.out1", -1.0}}},
  };
  // The paper's worked example (Section III-D1): forward transmission above
  // 80%, reflection below 10%, backward radiation above 90%, etc. — the
  // explicit backward-transmission cap belongs to the "etc." and keeps the
  // isolation pressure alive once the ratio term's gradient flattens.
  obj.dense_penalties = {
      {"fwd_transmission", 2.0, 0.80, false},
      {"fwd_reflection", 1.0, 0.10, true},
      {"bwd_radiation", 1.0, 0.90, false},
      {"bwd_transmission", 6.0, 0.005, true},
  };
  obj.fom_metric = "contrast";
  obj.fom_lower_better = true;
  d.objective = std::move(obj);

  // Straight wide guide through the design region concentrates the optical
  // path (the paper's initialization).
  d.init_signed_field = array2d<double>(d.design.nx, d.design.ny);
  const double half_width = 0.7, centerline = 1.8;
  for (std::size_t ix = 0; ix < d.design.nx; ++ix) {
    for (std::size_t iy = 0; iy < d.design.ny; ++iy) {
      const double y = d.grid.y_center(d.design.iy0 + iy);
      d.init_signed_field(ix, iy) = (half_width - std::abs(y - centerline)) / half_width;
    }
  }
  return d;
}

device_spec make_device(device_kind kind, double resolution) {
  switch (kind) {
    case device_kind::bend: return make_bend(resolution);
    case device_kind::crossing: return make_crossing(resolution);
    case device_kind::isolator: return make_isolator(resolution);
  }
  throw bad_argument("make_device: unknown kind");
}

}  // namespace boson::dev
