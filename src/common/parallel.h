#pragma once

#include <cstddef>
#include <functional>

namespace boson {

/// Number of worker threads used by `parallel_for`: min(hardware threads,
/// BOSON_THREADS when set). Always at least 1. BOSON_THREADS is re-read on
/// every call, so drivers and tests can vary it at runtime.
std::size_t worker_count();

/// Run `body(i)` for i in [0, n). Iterations must be independent; the call
/// blocks until all complete. Exceptions thrown by `body` are captured and
/// the first one captured is rethrown on the calling thread; once a failure
/// is recorded, iterations that have not started yet are skipped.
///
/// Indices are handed out dynamically through a shared atomic counter, so
/// workloads with uneven per-index cost (e.g. operator-cache hits next to
/// misses) keep every worker busy. This targets a moderate number of
/// coarse-grained tasks (variation-corner simulations, Monte-Carlo
/// samples), not fine-grained loops.
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body);

}  // namespace boson
