#pragma once

// Shared helpers for the experiment drivers that regenerate the paper's
// tables and figures. Every driver prints the paper-shaped rows to stdout
// and writes the raw series to a CSV next to the working directory.
//
// Environment knobs:
//   BOSON_BENCH_SCALE  scales iteration counts and Monte-Carlo samples
//   BOSON_SEED         experiment seed
//   BOSON_THREADS      caps worker threads (corners/samples run in parallel)

#include <cstdio>
#include <string>

#include "common/timer.h"
#include "core/methods.h"
#include "io/csv.h"
#include "io/table.h"

namespace boson::bench {

/// "[fwd, bwd]" cell in the style of the paper's isolator tables.
inline std::string fwd_bwd_cell(const std::map<std::string, double>& metrics) {
  if (!metrics.count("fwd_transmission")) return "N/A";
  return "[" + io::console_table::num(metrics.at("fwd_transmission"), 4) + ", " +
         io::console_table::num(metrics.at("bwd_transmission"), 5) + "]";
}

/// "pre -> post" arrow cell.
inline std::string arrow_cell(double pre, double post, bool lower_better) {
  (void)lower_better;
  return io::console_table::sci(pre) + " -> " + io::console_table::sci(post);
}

inline void print_banner(const char* title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title);
  std::printf("================================================================\n");
}

inline void print_runtime(const stopwatch& sw) {
  std::printf("\n[total runtime: %.1f s]\n", sw.seconds());
}

}  // namespace boson::bench
