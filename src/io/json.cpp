#include "io/json.h"

#include <cmath>
#include <cstdio>
#include <fstream>

#include "common/error.h"

namespace boson::io {

json_value& json_value::operator[](const std::string& key) {
  if (kind_ == kind::null) kind_ = kind::object;
  require(kind_ == kind::object, "json_value: operator[] on a non-object");
  for (auto& [k, v] : members_)
    if (k == key) return v;
  members_.emplace_back(key, json_value());
  return members_.back().second;
}

json_value& json_value::push_back(json_value v) {
  if (kind_ == kind::null) kind_ = kind::array;
  require(kind_ == kind::array, "json_value: push_back on a non-array");
  elements_.push_back(std::move(v));
  return elements_.back();
}

json_value json_value::from_map(const std::map<std::string, double>& m) {
  json_value obj = object();
  for (const auto& [k, v] : m) obj[k] = v;
  return obj;
}

namespace {

void escape_into(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default: out += c;
    }
  }
  out += '"';
}

void number_into(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "null";  // JSON has no NaN/inf
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  out += buf;
}

}  // namespace

void json_value::dump_impl(std::string& out, int indent, int depth) const {
  const bool pretty = indent >= 0;
  const std::string pad = pretty ? std::string(static_cast<std::size_t>(indent * (depth + 1)), ' ') : "";
  const std::string pad_close = pretty ? std::string(static_cast<std::size_t>(indent * depth), ' ') : "";
  const char* nl = pretty ? "\n" : "";

  switch (kind_) {
    case kind::null: out += "null"; break;
    case kind::boolean: out += bool_ ? "true" : "false"; break;
    case kind::number: number_into(out, number_); break;
    case kind::string: escape_into(out, string_); break;
    case kind::object: {
      if (members_.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      out += nl;
      for (std::size_t i = 0; i < members_.size(); ++i) {
        out += pad;
        escape_into(out, members_[i].first);
        out += pretty ? ": " : ":";
        members_[i].second.dump_impl(out, indent, depth + 1);
        if (i + 1 < members_.size()) out += ',';
        out += nl;
      }
      out += pad_close;
      out += '}';
      break;
    }
    case kind::array: {
      if (elements_.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      out += nl;
      for (std::size_t i = 0; i < elements_.size(); ++i) {
        out += pad;
        elements_[i].dump_impl(out, indent, depth + 1);
        if (i + 1 < elements_.size()) out += ',';
        out += nl;
      }
      out += pad_close;
      out += ']';
      break;
    }
  }
}

std::string json_value::dump(int indent) const {
  std::string out;
  dump_impl(out, indent, 0);
  return out;
}

void json_value::write_file(const std::string& path, int indent) const {
  std::ofstream f(path);
  if (!f) throw io_error("json_value: cannot open " + path);
  f << dump(indent) << '\n';
  if (!f) throw io_error("json_value: write failed for " + path);
}

}  // namespace boson::io
