#include "fdfd/source.h"

#include <cmath>

#include "common/error.h"

namespace boson::fdfd {

void add_mode_source(array2d<cplx>& current, const mode_source_spec& spec,
                     const modes::slab_mode& mode, double spacing_along_axis) {
  require(spec.direction == 1 || spec.direction == -1, "add_mode_source: direction must be +-1");
  const std::size_t span = mode.profile.size();
  const std::size_t companion =
      spec.direction > 0 ? spec.line_index + 1 : spec.line_index - 1;
  // Phase that cancels the wave radiated opposite to `direction`. The wave
  // propagates with the *discrete* wavenumber q = (2/d) asin(beta d / 2), so
  // using q (not beta) keeps the source unidirectional on coarse grids.
  const double half_bd = 0.5 * mode.beta * spacing_along_axis;
  require(half_bd < 1.0, "add_mode_source: mode not resolvable at this spacing");
  const double discrete_phase = 2.0 * std::asin(half_bd);
  const cplx companion_amp = -std::polar(1.0, -discrete_phase);

  if (spec.axis == port_axis::vertical) {
    require(spec.line_index > 0 && companion < current.nx(), "add_mode_source: line out of range");
    require(spec.span_start + span <= current.ny(), "add_mode_source: span out of range");
    for (std::size_t t = 0; t < span; ++t) {
      current(spec.line_index, spec.span_start + t) += mode.profile[t];
      current(companion, spec.span_start + t) += companion_amp * mode.profile[t];
    }
  } else {
    require(spec.line_index > 0 && companion < current.ny(), "add_mode_source: line out of range");
    require(spec.span_start + span <= current.nx(), "add_mode_source: span out of range");
    for (std::size_t t = 0; t < span; ++t) {
      current(spec.span_start + t, spec.line_index) += mode.profile[t];
      current(spec.span_start + t, companion) += companion_amp * mode.profile[t];
    }
  }
}

}  // namespace boson::fdfd
