#include "fab/etch.h"

#include "common/error.h"
#include "param/filters.h"

namespace boson::fab {

array2d<double> etch_model::forward(const array2d<double>& post_litho,
                                    const array2d<double>& eta) const {
  require(post_litho.same_shape(eta), "etch_model: shape mismatch");
  array2d<double> pattern(post_litho.nx(), post_litho.ny());
  for (std::size_t i = 0; i < pattern.size(); ++i) {
    const double margin = post_litho.data()[i] - eta.data()[i];
    if (mode_ == etch_mode::soft) {
      pattern.data()[i] = param::sigmoid(beta_ * margin);
    } else {
      pattern.data()[i] = margin > 0.0 ? 1.0 : 0.0;
    }
  }
  return pattern;
}

void etch_model::backward(const array2d<double>& post_litho, const array2d<double>& eta,
                          const array2d<double>& d_pattern, array2d<double>& d_post_litho,
                          array2d<double>& d_eta) const {
  require(post_litho.same_shape(eta) && post_litho.same_shape(d_pattern),
          "etch_model: shape mismatch");
  if (!d_post_litho.same_shape(post_litho))
    d_post_litho = array2d<double>(post_litho.nx(), post_litho.ny(), 0.0);
  if (!d_eta.same_shape(post_litho))
    d_eta = array2d<double>(post_litho.nx(), post_litho.ny(), 0.0);

  // `hard` is evaluation-only; its gradient is defined as zero.
  if (mode_ == etch_mode::hard) return;

  for (std::size_t i = 0; i < post_litho.size(); ++i) {
    const double margin = post_litho.data()[i] - eta.data()[i];
    const double s = param::sigmoid(beta_ * margin);
    const double chain = d_pattern.data()[i] * beta_ * param::sigmoid_derivative_from_value(s);
    d_post_litho.data()[i] += chain;
    d_eta.data()[i] -= chain;
  }
}

}  // namespace boson::fab
