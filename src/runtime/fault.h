/// \file fault.h
/// Deterministic fault injection for the elastic scheduler. The scheduler
/// calls `hit(point, ...)` at a handful of named *kill points* in every job's
/// lifecycle; a test (or the CLI's `--fault point:n` flag) arms an action at
/// the nth occurrence of a point, and the armed action fires exactly there —
/// no wall-clock sleeps, no signals-from-outside races. The stock action is
/// `kill_process`, a raw `SIGKILL` to self, which gives multi-process tests
/// real kill semantics (no destructors, no flushes beyond what already
/// happened) at a replayable location.

#pragma once

#include <cstddef>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

namespace boson::runtime {

/// Named scheduler locations where faults can fire.
enum class fault_point {
  after_lease,       ///< claim won, before the attempt starts
  mid_run,           ///< inside the attempt, at an iteration boundary
  after_checkpoint,  ///< a checkpoint was persisted and journaled
  before_result,     ///< ownership verified, before the result row is stored
};

const char* to_string(fault_point point);
fault_point fault_point_from_string(const std::string& text);

/// Context handed to a fault action when its site fires.
struct fault_site {
  fault_point point = fault_point::after_lease;
  std::size_t occurrence = 0;  ///< 1-based count of this point, process-wide
  std::size_t job_index = 0;
  std::size_t attempt = 0;
  std::string job_name;
};

using fault_action = std::function<void(const fault_site&)>;

/// SIGKILL the calling process — the action behind `--fault`.
void kill_process(const fault_site& site);

/// Arms actions at (point, nth-occurrence) sites and fires them from `hit`.
/// Occurrences are counted per point across the whole process, so a seeded
/// schedule like {mid_run:2, after_checkpoint:1} replays identically given
/// the same scheduling order. Thread-safe; an unarmed injector is free.
class fault_injector {
 public:
  /// Fire `action` at the `occurrence`-th (1-based) hit of `point`.
  void arm(fault_point point, std::size_t occurrence, fault_action action);

  /// Arm from the CLI form "point:n" (e.g. "mid_run:2"), with `kill_process`
  /// as the action. A bare "point" means occurrence 1.
  void arm(const std::string& spec);

  /// Count an occurrence of `point`; fires the matching armed action (if
  /// any). Actions may throw or never return (SIGKILL).
  void hit(fault_point point, std::size_t job_index, const std::string& job_name,
           std::size_t attempt);

  /// Occurrences of `point` counted so far.
  std::size_t count(fault_point point) const;

 private:
  struct armed {
    fault_point point;
    std::size_t occurrence;
    fault_action action;
  };

  mutable std::mutex mutex_;
  std::size_t counts_[4] = {0, 0, 0, 0};
  std::vector<armed> armed_;
};

}  // namespace boson::runtime
