/// \file service.h
/// Campaign-as-a-service: the control plane that turns the elastic runtime
/// into a long-lived daemon. A `campaign_service` owns a `campaign_registry`
/// (per-tenant campaign directories under one data root) and a small pool of
/// *runner* threads that execute queued campaigns through the lease
/// scheduler. Because coordination lives in the shared journal, the
/// in-process runners are just workers like any other: external
/// `boson_cli campaign resume <dir>` processes can attach to a service-owned
/// campaign directory and claim jobs side by side.
///
/// The HTTP surface (`handler()`) is transport-agnostic: it is a plain
/// `net::http_handler`, served by `net::http_server` in `boson_serve` and
/// called directly (no sockets) by unit tests.
///
///   POST /v1/campaigns                 submit (body: campaign.json) -> 201
///   GET  /v1/campaigns                 list this tenant's campaigns
///   GET  /v1/campaigns/{id}            status summary (no per-job detail)
///   GET  /v1/campaigns/{id}/jobs       status with per-job detail
///   GET  /v1/campaigns/{id}/events     journal records since ?cursor=N
///                                      (chunked NDJSON long-poll, ?wait=S)
///   GET  /v1/campaigns/{id}/report     result tables (?format=json|text)
///   POST /v1/campaigns/{id}/cancel     cooperative cancellation
///   DELETE /v1/campaigns/{id}          retention: delete a terminal campaign
///   GET  /healthz                      liveness
///   GET  /v1/metrics                   queue/lease/throughput/cache gauges
///
/// Tenancy: with a `tenants.json` token file in the data root, requests
/// authenticate with `Authorization: Bearer <token>` and the token *is* the
/// tenant identity (the legacy X-Boson-Tenant header, if also present, must
/// agree). Without a token file the legacy bare header (default "default")
/// picks the tenant. Either way the tenant selects the registry namespace,
/// the artifact subtree, and the quota bucket.

#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "net/http.h"
#include "runtime/scheduler.h"
#include "service/registry.h"
#include "service/status.h"

namespace boson::service {

struct service_options {
  std::string data_dir = "boson_service";
  std::size_t runners = 2;       ///< campaigns executed concurrently in-process
  std::size_t tenant_quota = 8;  ///< max queued+running campaigns per tenant
  bool write_artifacts = true;

  /// Per-campaign scheduler overrides (unset: each spec's own settings).
  std::optional<std::size_t> workers;
  std::optional<double> lease_ttl;

  /// Seconds a runner sleeps between scheduler passes while external workers
  /// hold live leases, and the floor of the events long-poll granularity.
  double poll_interval = 0.2;

  /// Segmented-journal layout for campaigns this service creates (see
  /// `runtime::journal_options`): all zero keeps the legacy single-file
  /// journal; any nonzero value gives new campaigns a rotating/compacting
  /// `journal/` store directory.
  std::size_t segment_bytes = 0;
  std::size_t segment_records = 0;
  std::size_t compact_segments = 0;

  /// Max journal lines one events() poll returns (backpressure: a slow
  /// consumer pages through history instead of buffering it all at once).
  std::size_t event_page_lines = 512;

  /// Test hooks, forwarded to every scheduler this service constructs.
  runtime::job_executor executor;
  runtime::clock_fn clock;  ///< also stamps registry records / lease liveness
};

/// Events long-poll result: raw journal lines (exactly as appended, no
/// re-serialization) and the cursor to pass next time.
struct event_page {
  std::vector<std::string> lines;
  std::streamoff next_cursor = 0;
};

/// Service throughput counters (the /v1/metrics source).
struct service_metrics {
  std::size_t campaigns_queued = 0;
  std::size_t campaigns_running = 0;
  std::size_t campaigns_done = 0;
  std::size_t campaigns_failed = 0;
  std::size_t campaigns_cancelled = 0;
  std::size_t live_leases = 0;        ///< live-leased jobs across running campaigns
  std::size_t jobs_completed = 0;     ///< by in-process runners, service lifetime
  double run_seconds = 0.0;           ///< scheduler wall time behind those jobs
  std::size_t requests = 0;           ///< control-plane requests handled

  /// Derived at read time from the counters above, so a snapshot can never
  /// carry a stale precomputed rate.
  double jobs_per_second() const {
    return run_seconds > 0.0 ? static_cast<double>(jobs_completed) / run_seconds
                             : 0.0;
  }
};

class campaign_service {
 public:
  explicit campaign_service(service_options options);
  ~campaign_service();  ///< stop()s

  campaign_service(const campaign_service&) = delete;
  campaign_service& operator=(const campaign_service&) = delete;

  /// Launch the runner pool. Queued campaigns recovered from a previous
  /// process (and ones interrupted mid-run) start executing immediately.
  void start();

  /// Cancel running campaigns cooperatively, then join every runner. A
  /// stopped service still answers reads; submits queue for the next start.
  void stop();

  /// Begin shutdown without stopping anything yet: in-flight `events()`
  /// long-polls return promptly instead of sleeping out their deadline.
  /// Call before stopping the HTTP transport, whose stop() joins the worker
  /// threads those long-polls are running on; `stop()` implies it.
  void drain();

  // --- control-plane operations (handler() routes here; tests call direct) --
  campaign_record submit(const std::string& tenant, const runtime::campaign_spec& spec);
  std::vector<campaign_record> list(const std::string& tenant) const;
  campaign_status status(const std::string& tenant, const std::string& id,
                         bool include_jobs) const;
  event_page events(const std::string& tenant, const std::string& id,
                    std::streamoff cursor, double max_wait);
  std::string report_text(const std::string& tenant, const std::string& id) const;
  io::json_value report_json(const std::string& tenant, const std::string& id) const;
  campaign_record cancel(const std::string& tenant, const std::string& id);

  /// Retention: delete a campaign — journal a registry tombstone and remove
  /// its directory (spec, journal, results, artifacts). Refuses non-terminal
  /// campaigns (409): cancel first, then delete.
  campaign_record remove(const std::string& tenant, const std::string& id);

  service_metrics metrics() const;

  /// Schedulers currently registered by runners (the cancel() targets).
  /// Every registration must be unwound when its campaign settles — a
  /// nonzero count with no campaign running means a dangling pointer.
  std::size_t active_runs() const;

  /// The full JSON control plane as one transport-agnostic handler. The
  /// handler wraps `route` with request telemetry: per-endpoint ×
  /// status-class counters and per-endpoint latency histograms in the
  /// process-wide obs registry.
  net::http_handler handler();

  campaign_registry& registry() { return registry_; }
  const std::string& data_dir() const { return registry_.data_dir(); }

 private:
  /// Resolve (tenant, id) to its record or throw the proper http_error
  /// (404 for unknown tenant/id).
  campaign_record resolve(const std::string& tenant, const std::string& id) const;

  /// The request's tenant identity. With bearer tokens configured
  /// (`tenants.json` in the data root): resolve `Authorization: Bearer` by
  /// constant-time comparison against every tenant's token, throwing 401 on
  /// a missing/unknown token (and on an X-Boson-Tenant header that
  /// disagrees). Without tokens: the legacy X-Boson-Tenant header.
  std::string authenticate(const net::http_request& req) const;

  /// Dispatch one request to the matching control-plane operation (the
  /// uninstrumented core of `handler()`).
  net::http_response route(const net::http_request& req);

  void runner_loop();
  void run_campaign(const campaign_record& record);

  /// The run loop of `run_campaign`, entered with `scheduler` registered in
  /// `active_` — every exit (including a throw) must unregister it before
  /// the scheduler's stack frame unwinds.
  void run_registered(const campaign_record& record, runtime::scheduler& scheduler,
                      std::string& final_state, std::string& detail);
  double now() const;

  service_options options_;
  campaign_registry registry_;
  /// tenant -> bearer token, from `<data_dir>/tenants.json` (empty: legacy
  /// header auth). Loaded once at construction.
  std::map<std::string, std::string> tenant_tokens_;

  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<bool> draining_{false};  ///< releases events() long-polls early
  std::vector<std::thread> runners_;
  mutable std::mutex wake_mutex_;
  std::condition_variable wake_cv_;  ///< submit/cancel/stop kick idle runners

  mutable std::mutex active_mutex_;
  /// Schedulers currently executing, keyed tenant/id — the cancel() path.
  std::map<std::string, runtime::scheduler*> active_;
  /// Campaigns claimed by a runner (set before the registry flips to
  /// "running", so two runners never pick the same queued campaign).
  std::map<std::string, bool> claimed_;
  /// Running campaigns cancelled *by request* — distinguishes a user cancel
  /// (terminal) from a shutdown cancel (requeued for the next start).
  std::set<std::string> user_cancelled_;

  mutable std::mutex metrics_mutex_;
  std::size_t jobs_completed_ = 0;
  double run_seconds_ = 0.0;
};

}  // namespace boson::service
