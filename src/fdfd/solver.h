#pragma once

#include <cstddef>
#include <memory>
#include <utility>
#include <vector>

#include "common/array2d.h"
#include "common/types.h"
#include "grid/grid2d.h"
#include "grid/pml.h"
#include "sparse/banded.h"
#include "sparse/csr.h"

namespace boson::fdfd {

/// Sparse Wirtinger gradient of a real scalar with respect to the field:
/// pairs (flat cell index, dF/dE at that cell). The total differential is
/// dF = 2 Re(sum_i g_i dE_i).
using field_gradient = std::vector<std::pair<std::size_t, cplx>>;

/// 2-D frequency-domain Helmholtz solver (Ez polarization) with
/// stretched-coordinate PML.
///
/// The discrete operator is scaled by s_x(i) s_y(j) per row, which makes it
/// *complex symmetric*; a single banded LU factorization therefore serves
/// both the forward solve A e = b and every adjoint solve A lambda = g.
/// Unknowns are ordered ix * ny + iy, so the bandwidth equals ny: build
/// domains with the transverse (y) extent as the shorter axis when possible.
///
/// Units: lengths in um, c = eps0 = mu0 = 1, k0 = omega = 2 pi / lambda.
class fdfd_solver {
 public:
  /// `eps` holds the relative permittivity per cell (shape nx x ny).
  fdfd_solver(const grid2d& grid, const pml_spec& pml, double k0,
              const array2d<double>& eps);

  const grid2d& grid() const { return grid_; }
  double k0() const { return k0_; }
  const array2d<double>& eps() const { return eps_; }

  /// Solve A e = b for current density J (b = -i k0 J s_x s_y). Factorizes
  /// on first use; subsequent solves (other sources, adjoints) reuse the LU.
  array2d<cplx> solve(const array2d<cplx>& current_density) const;

  /// Solve the adjoint system A lambda = g for a sparse field gradient g.
  array2d<cplx> solve_adjoint(const field_gradient& g) const;

  /// Build the scaled right-hand side b = -i k0 J s_x s_y of A e = b.
  /// `b` is assigned (resized and overwritten); a recycled buffer keeps its
  /// allocation. Shared by `solve` and the sim-engine batched path.
  void build_rhs(const array2d<cplx>& current_density, cvec& b) const;

  /// Build the adjoint right-hand side by scattering a sparse field
  /// gradient; same buffer contract as `build_rhs`.
  void build_adjoint_rhs(const field_gradient& g, cvec& b) const;

  /// Accumulate dF/deps(i,j) += -2 Re(lambda_ij k0^2 s_xc(i) s_yc(j) e_ij)
  /// given the forward field and one adjoint field.
  void accumulate_eps_gradient(const array2d<cplx>& field,
                               const array2d<cplx>& adjoint_field,
                               array2d<double>& grad) const;

  /// Assemble the same (scaled) operator in CSR form — used by tests to
  /// verify residuals/symmetry and by the iterative solve path.
  sp::csr_c assemble_csr() const;

  /// Banded LU of the scaled operator, assembling and factoring on first
  /// use. Not thread-safe on the first call; sim::simulation_engine forces
  /// the factorization eagerly before sharing a solver across threads.
  const sp::banded_lu& factorization() const;

  /// Per-axis complex stretch profiles (exposed for monitors and tests).
  const stretch_profile& stretch_x() const { return sx_; }
  const stretch_profile& stretch_y() const { return sy_; }

 private:
  void assemble_and_factor() const;
  std::size_t flat(std::size_t ix, std::size_t iy) const { return ix * grid_.ny + iy; }

  grid2d grid_;
  pml_spec pml_;
  double k0_;
  array2d<double> eps_;
  stretch_profile sx_;
  stretch_profile sy_;
  mutable std::unique_ptr<sp::banded_lu> lu_;  // lazily factored
};

}  // namespace boson::fdfd
