#include "sparse/banded.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace boson::sp {

banded_lu::banded_lu(std::size_t n, std::size_t kl, std::size_t ku)
    : n_(n), kl_(kl), ku_(ku), ab_(n, 2 * kl + ku + 1, cplx{}), pivot_(n, 0) {
  require(n > 0, "banded_lu: empty system");
  require(kl < n && ku < n, "banded_lu: bandwidth must be smaller than n");
}

void banded_lu::add(std::size_t i, std::size_t j, cplx v) {
  require(!factored_, "banded_lu::add: matrix already factored");
  require(i < n_ && j < n_, "banded_lu::add: index out of range");
  require(j + kl_ >= i && i + ku_ >= j, "banded_lu::add: entry outside band");
  ab_(j, offset(i, j)) += v;
}

cplx banded_lu::at(std::size_t i, std::size_t j) const {
  if (i >= n_ || j >= n_) return cplx{};
  if (j + kl_ < i || i + ku_ + kl_ < j) return cplx{};
  return ab_(j, offset(i, j));
}

void banded_lu::factor() {
  require(!factored_, "banded_lu::factor: already factored");
  const std::size_t band_hi = ku_ + kl_;  // widest upper offset after pivoting

  for (std::size_t j = 0; j < n_; ++j) {
    // Pivot search in column j among rows j .. j+kl.
    const std::size_t last_row = std::min(j + kl_, n_ - 1);
    std::size_t p = j;
    double best = std::abs(ab_(j, offset(j, j)));
    for (std::size_t i = j + 1; i <= last_row; ++i) {
      const double mag = std::abs(ab_(j, offset(i, j)));
      if (mag > best) {
        best = mag;
        p = i;
      }
    }
    check_numeric(best > 1e-300, "banded_lu::factor: singular pivot");
    pivot_[j] = p;

    const std::size_t last_col = std::min(j + band_hi, n_ - 1);
    if (p != j) {
      for (std::size_t c = j; c <= last_col; ++c)
        std::swap(ab_(c, offset(j, c)), ab_(c, offset(p, c)));
    }

    // Multipliers for column j (contiguous in the column-compact storage).
    const cplx inv_pivot = 1.0 / ab_(j, offset(j, j));
    cplx* col_j = &ab_(j, offset(j + 1, j));
    const std::size_t rows_below = last_row - j;
    for (std::size_t t = 0; t < rows_below; ++t) col_j[t] *= inv_pivot;

    // Rank-1 trailing update, column by column so the inner loop is
    // contiguous: A(i, c) -= m_i * A(j, c) for i in (j, last_row].
    for (std::size_t c = j + 1; c <= last_col; ++c) {
      const cplx ajc = ab_(c, offset(j, c));
      if (ajc == cplx{}) continue;
      cplx* col_c = &ab_(c, offset(j + 1, c));
      for (std::size_t t = 0; t < rows_below; ++t) col_c[t] -= col_j[t] * ajc;
    }
  }
  factored_ = true;
}

cvec banded_lu::solve(const cvec& b) const {
  require(factored_, "banded_lu::solve: factor() first");
  require(b.size() == n_, "banded_lu::solve: rhs size mismatch");
  cvec x = b;

  // Forward substitution with on-the-fly row interchanges (L has unit
  // diagonal; multipliers are stored below the diagonal of each column).
  for (std::size_t j = 0; j < n_; ++j) {
    if (pivot_[j] != j) std::swap(x[j], x[pivot_[j]]);
    const std::size_t last_row = std::min(j + kl_, n_ - 1);
    const cplx xj = x[j];
    if (xj == cplx{}) continue;
    for (std::size_t i = j + 1; i <= last_row; ++i)
      x[i] -= ab_(j, offset(i, j)) * xj;
  }

  // Back substitution on U (bandwidth ku + kl).
  const std::size_t band_hi = ku_ + kl_;
  for (std::size_t jj = n_; jj-- > 0;) {
    x[jj] /= ab_(jj, offset(jj, jj));
    const cplx xj = x[jj];
    if (xj == cplx{}) continue;
    const std::size_t first_row = (jj > band_hi) ? jj - band_hi : 0;
    for (std::size_t i = first_row; i < jj; ++i)
      x[i] -= ab_(jj, offset(i, jj)) * xj;
  }
  return x;
}

std::vector<cvec> banded_lu::solve(const std::vector<cvec>& bs) const {
  require(factored_, "banded_lu::solve: factor() first");
  for (const auto& b : bs) require(b.size() == n_, "banded_lu::solve: rhs size mismatch");
  std::vector<cvec> xs = bs;
  const std::size_t m = xs.size();
  if (m == 0) return xs;
  if (m == 1) {
    xs[0] = solve(bs[0]);
    return xs;
  }

  // Forward substitution, all RHS per column: each stored multiplier is read
  // once and applied to every column of the block.
  for (std::size_t j = 0; j < n_; ++j) {
    if (pivot_[j] != j)
      for (auto& x : xs) std::swap(x[j], x[pivot_[j]]);
    const std::size_t last_row = std::min(j + kl_, n_ - 1);
    for (std::size_t i = j + 1; i <= last_row; ++i) {
      const cplx a = ab_(j, offset(i, j));
      if (a == cplx{}) continue;
      for (auto& x : xs) x[i] -= a * x[j];
    }
  }

  // Back substitution on U (bandwidth ku + kl).
  const std::size_t band_hi = ku_ + kl_;
  for (std::size_t jj = n_; jj-- > 0;) {
    const cplx inv_diag = 1.0 / ab_(jj, offset(jj, jj));
    for (auto& x : xs) x[jj] *= inv_diag;
    const std::size_t first_row = (jj > band_hi) ? jj - band_hi : 0;
    for (std::size_t i = first_row; i < jj; ++i) {
      const cplx a = ab_(jj, offset(i, jj));
      if (a == cplx{}) continue;
      for (auto& x : xs) x[i] -= a * x[jj];
    }
  }
  return xs;
}

cvec banded_lu::matvec(const cvec& x) const {
  require(!factored_, "banded_lu::matvec: matrix already factored");
  require(x.size() == n_, "banded_lu::matvec: size mismatch");
  cvec y(n_, cplx{});
  for (std::size_t j = 0; j < n_; ++j) {
    const std::size_t first_row = (j > ku_) ? j - ku_ : 0;
    const std::size_t last_row = std::min(j + kl_, n_ - 1);
    const cplx xj = x[j];
    if (xj == cplx{}) continue;
    for (std::size_t i = first_row; i <= last_row; ++i)
      y[i] += ab_(j, offset(i, j)) * xj;
  }
  return y;
}

}  // namespace boson::sp
