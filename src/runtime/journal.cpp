#include "runtime/journal.h"

#include <fstream>
#include <utility>

#include "common/error.h"

namespace boson::runtime {

const char* to_string(job_state state) {
  switch (state) {
    case job_state::scheduled: return "scheduled";
    case job_state::leased: return "leased";
    case job_state::lease_renewed: return "lease_renewed";
    case job_state::lease_released: return "lease_released";
    case job_state::lease_expired: return "lease_expired";
    case job_state::running: return "running";
    case job_state::checkpointed: return "checkpointed";
    case job_state::completed: return "completed";
    case job_state::failed: return "failed";
    case job_state::cancelled: return "cancelled";
  }
  return "?";
}

job_state job_state_from_string(const std::string& text) {
  if (text == "scheduled") return job_state::scheduled;
  if (text == "leased") return job_state::leased;
  if (text == "lease_renewed") return job_state::lease_renewed;
  if (text == "lease_released") return job_state::lease_released;
  if (text == "lease_expired") return job_state::lease_expired;
  if (text == "running") return job_state::running;
  if (text == "checkpointed") return job_state::checkpointed;
  if (text == "completed") return job_state::completed;
  if (text == "failed") return job_state::failed;
  if (text == "cancelled") return job_state::cancelled;
  throw bad_argument("journal: unknown job state '" + text + "'");
}

io::json_value journal_entry::to_json() const {
  io::json_value v = io::json_value::object();
  v["job"] = job_index;
  v["name"] = job_name;
  v["state"] = to_string(state);
  v["attempt"] = attempt;
  if (!detail.empty()) v["detail"] = detail;
  if (seconds > 0.0) v["seconds"] = seconds;
  if (!worker.empty()) v["worker"] = worker;
  if (lease_id != 0) v["lease"] = static_cast<double>(lease_id);
  if (deadline != 0.0) v["deadline"] = deadline;
  if (stamp != 0.0) v["t"] = stamp;
  return v;
}

journal_entry journal_entry::from_json(const io::json_value& v) {
  journal_entry e;
  e.job_index = static_cast<std::size_t>(v.at("job").as_number());
  e.job_name = v.at("name").as_string();
  e.state = job_state_from_string(v.at("state").as_string());
  e.attempt = static_cast<std::size_t>(v.at("attempt").as_number());
  if (const io::json_value* d = v.find("detail")) e.detail = d->as_string();
  if (const io::json_value* s = v.find("seconds")) e.seconds = s->as_number();
  if (const io::json_value* w = v.find("worker")) e.worker = w->as_string();
  if (const io::json_value* l = v.find("lease"))
    e.lease_id = static_cast<std::uint64_t>(l->as_number());
  if (const io::json_value* dl = v.find("deadline")) e.deadline = dl->as_number();
  if (const io::json_value* t = v.find("t")) e.stamp = t->as_number();
  return e;
}

journal::journal(std::string path) : out_(std::move(path), "journal") {}

void journal::append(const journal_entry& entry) { out_.append(entry.to_json()); }

std::vector<journal_entry> journal::replay(const std::string& path) {
  std::vector<journal_entry> entries;
  replay_jsonl(path, "journal", [&entries](const io::json_value& record) {
    entries.push_back(journal_entry::from_json(record));
  });
  return entries;
}

std::map<std::size_t, journal_entry> journal::latest_states(
    const std::vector<journal_entry>& entries) {
  std::map<std::size_t, journal_entry> latest;
  for (const journal_entry& e : entries) latest[e.job_index] = e;
  return latest;
}

}  // namespace boson::runtime
