#include "net/http_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "common/log.h"

namespace boson::net {

namespace {

void set_socket_timeout(int fd, int option, double seconds) {
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(seconds);
  tv.tv_usec = static_cast<suseconds_t>((seconds - static_cast<double>(tv.tv_sec)) * 1e6);
  ::setsockopt(fd, SOL_SOCKET, option, &tv, sizeof tv);
}

}  // namespace

http_server::http_server(http_server_options options, http_handler handler)
    : options_(std::move(options)), handler_(std::move(handler)) {
  require(static_cast<bool>(handler_), "http_server: handler must not be empty");
  options_.threads = std::max<std::size_t>(1, options_.threads);
  options_.max_queue = std::max<std::size_t>(1, options_.max_queue);
  require(options_.read_timeout > 0.0, "http_server: read timeout must be positive");
  require(options_.write_timeout >= 0.0,
          "http_server: write timeout must not be negative");
}

http_server::~http_server() { stop(); }

void http_server::start() {
  require(!running_.load(), "http_server: already started");
  stopping_.store(false);

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw io_error("http_server: socket() failed");

  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw io_error("http_server: '" + options_.host + "' is not an IPv4 address");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(listen_fd_, options_.backlog) != 0) {
    const std::string reason = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw io_error("http_server: cannot listen on " + options_.host + ":" +
                   std::to_string(options_.port) + " (" + reason + ")");
  }

  socklen_t len = sizeof addr;
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);

  running_.store(true);
  acceptor_ = std::thread(&http_server::accept_loop, this);
  workers_.reserve(options_.threads);
  for (std::size_t i = 0; i < options_.threads; ++i)
    workers_.emplace_back(&http_server::worker_loop, this);
  log_info("http_server: listening on ", base_url(), " (", options_.threads,
           " workers)");
}

void http_server::stop() {
  if (!running_.exchange(false)) return;
  stopping_.store(true);

  // Closing the listener unblocks accept(); shutting down active fds
  // unblocks workers sitting in recv() on idle keep-alive connections.
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  {
    const std::lock_guard<std::mutex> lock(active_mutex_);
    for (int fd : active_) ::shutdown(fd, SHUT_RD);
  }
  queue_cv_.notify_all();

  if (acceptor_.joinable()) acceptor_.join();
  for (std::thread& t : workers_)
    if (t.joinable()) t.join();
  workers_.clear();

  // Connections accepted but never served get closed, not answered: their
  // clients see a clean connection reset instead of a hung socket.
  const std::lock_guard<std::mutex> lock(queue_mutex_);
  for (int fd : queue_) ::close(fd);
  queue_.clear();
  log_info("http_server: stopped");
}

std::string http_server::base_url() const {
  return "http://" + options_.host + ":" + std::to_string(port_);
}

http_server_stats http_server::stats() const {
  const std::lock_guard<std::mutex> lock(stats_mutex_);
  return stats_;
}

void http_server::accept_loop() {
  while (!stopping_.load()) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (stopping_.load()) return;
      if (errno == EINTR || errno == ECONNABORTED) continue;
      return;  // listener died
    }
    {
      const std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.accepted;
    }
    bool reject = false;
    {
      const std::lock_guard<std::mutex> lock(queue_mutex_);
      if (queue_.size() >= options_.max_queue) reject = true;
      else queue_.push_back(fd);
    }
    if (reject) {
      // Overload: answer 503 inline rather than queueing unboundedly; the
      // accept loop never blocks on a slow peer (best-effort single send).
      send_all(fd, serialize(error_response(503, "server is at capacity"), false));
      ::close(fd);
      const std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.rejected;
    } else {
      queue_cv_.notify_one();
    }
  }
}

void http_server::worker_loop() {
  while (true) {
    int fd = -1;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock, [this] { return stopping_.load() || !queue_.empty(); });
      if (stopping_.load()) return;
      fd = queue_.front();
      queue_.pop_front();
    }
    track(fd, true);
    try {
      serve_connection(fd);
    } catch (const std::exception& e) {
      // Transport-level surprises (send failures mid-response) end the
      // connection; the server itself must keep serving.
      log_warn("http_server: connection aborted: ", e.what());
    }
    track(fd, false);
    ::close(fd);
  }
}

void http_server::track(int fd, bool add) {
  const std::lock_guard<std::mutex> lock(active_mutex_);
  if (add) active_.insert(fd);
  else active_.erase(fd);
}

bool http_server::send_all(int fd, const std::string& bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n =
        ::send(fd, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;  // peer went away mid-response
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

void http_server::serve_connection(int fd) {
  set_socket_timeout(fd, SO_RCVTIMEO, options_.read_timeout);
  if (options_.write_timeout > 0.0)
    set_socket_timeout(fd, SO_SNDTIMEO, options_.write_timeout);
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);

  char buf[8192];
  std::size_t buffered = 0;  ///< bytes of `buf` not yet consumed by the parser
  std::size_t offset = 0;
  std::size_t served = 0;

  http_request_parser parser(options_.limits);
  while (!stopping_.load()) {
    // Assemble one request: drain leftover (pipelined) bytes first, then
    // block in recv until the parser has a complete message.
    try {
      while (!parser.complete()) {
        if (offset == buffered) {
          const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
          if (n == 0) return;  // peer closed between requests
          if (n < 0) {
            if (errno == EINTR) continue;
            // Read timeout (EAGAIN/EWOULDBLOCK) or shutdown. A peer that
            // stalled mid-request gets 408 so it knows the request was
            // dropped; an idle keep-alive connection just closes.
            if (parser.started() && !stopping_.load()) {
              {
                const std::lock_guard<std::mutex> lock(stats_mutex_);
                ++stats_.protocol_errors;
              }
              send_all(fd, serialize(error_response(408, "request timed out"), false));
            }
            return;
          }
          buffered = static_cast<std::size_t>(n);
          offset = 0;
        }
        offset += parser.feed(buf + offset, buffered - offset);
      }
    } catch (const http_error& e) {
      {
        const std::lock_guard<std::mutex> lock(stats_mutex_);
        ++stats_.protocol_errors;
      }
      send_all(fd, serialize(error_response(e.status(), e.what()), false));
      return;  // framing is unrecoverable: close
    }

    http_request request = std::move(parser.request());
    parser.reset();
    {
      const std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.requests;
    }

    http_response response;
    try {
      response = handler_(request);
    } catch (const http_error& e) {
      response = error_response(e.status(), e.what());
    } catch (const bad_argument& e) {
      response = error_response(400, e.what());
    } catch (const std::exception& e) {
      response = error_response(500, e.what());
    }

    const bool keep = request.keep_alive() && !stopping_.load() &&
                      ++served < options_.max_keepalive_requests;
    if (!send_all(fd, serialize(response, keep, request.version_minor))) return;
    if (!keep) return;
  }
}

}  // namespace boson::net
