// Robust optical-isolator design: the paper's most challenging benchmark.
//
// Forward TM1 light must convert to TM3 with high efficiency while backward
// TM1 light is rejected; the figure of merit is the isolation contrast
// E_bwd / E_fwd (lower is better). This example runs the full BOSON-1 recipe
// through the session façade and prints the optimization trajectory (the
// series behind the paper's Fig. 5a), then stress-tests the final design
// with a post-fabrication Monte Carlo. The same trajectory lands in the
// artifact directory as trajectory.csv.

#include <cstdio>

#include "api/session.h"

int main() {
  using namespace boson;

  api::experiment_spec spec;
  spec.name = "robust_isolator";
  spec.device = "isolator";
  spec.method = "boson";
  spec.evaluation = {api::eval_step::monte_carlo(20)};

  api::session_options options;
  options.output_dir = "isolator_out";
  api::session session(options);
  const api::experiment_result result = session.run(spec);
  const auto& r = result.method;

  std::printf("\n%-5s %-10s %-12s %-12s %-12s\n", "iter", "loss", "fwd T", "bwd T",
              "contrast");
  for (const auto& rec : r.run.trajectory) {
    if (rec.iteration % 5 == 0 || rec.iteration + 1 == r.run.trajectory.size())
      std::printf("%-5zu %-10.4f %-12.4f %-12.5f %-12.5f\n", rec.iteration, rec.loss,
                  rec.metrics.at("fwd_transmission"), rec.metrics.at("bwd_transmission"),
                  rec.metrics.at("contrast"));
  }

  std::printf("\nPost-fabrication Monte Carlo (%zu samples):\n", r.postfab.samples);
  std::printf("  contrast        : %.4g (mean)  [%.4g, %.4g]\n", r.postfab.fom_mean,
              r.postfab.fom_min, r.postfab.fom_max);
  std::printf("  fwd transmission: %.4f\n",
              r.postfab.metric_means.at("fwd_transmission"));
  std::printf("  bwd transmission: %.5f\n",
              r.postfab.metric_means.at("bwd_transmission"));

  std::printf("\nArtifacts (summary.json, trajectory.csv, mask.pgm): %s\n",
              result.artifact_dir.c_str());
  return 0;
}
