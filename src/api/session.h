/// \file session.h
/// The execution façade of the declarative API: a `session` validates an
/// `experiment_spec`, resolves it against the registries, runs the
/// optimization + evaluation plan (single spec or a batch sharing the
/// process-global engine cache and worker pool), streams progress through an
/// `observer`, and writes a structured artifact directory per experiment
/// (summary JSON, trajectory CSV, mask PGM, plus spectrum / process-window
/// CSVs when those steps are planned).

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "api/observer.h"
#include "api/spec.h"
#include "core/design_problem.h"
#include "core/evaluate.h"
#include "core/methods.h"

namespace boson::api {

struct session_options {
  /// Artifact root; each experiment writes into `<output_dir>/<name>/`.
  std::string output_dir = "boson_out";

  /// Skip all file output (results are still returned in memory).
  bool write_artifacts = true;

  /// Progress receiver (not owned). nullptr falls back to a `log_observer`.
  observer* watcher = nullptr;
};

/// Per-run durability control (the campaign runtime's hook into a session):
/// forwarded to `core::method_hooks`, so the optimization loop emits
/// resumable snapshots and/or restores one before the first iteration.
struct run_control {
  /// Emit a checkpoint every K optimizer iterations (0 disables).
  std::size_t checkpoint_every = 0;

  /// Checkpoint consumer; invoked from the thread driving this run.
  core::checkpoint_callback on_checkpoint;

  /// Snapshot to resume from (captured by an identical spec), or nullptr.
  std::shared_ptr<const core::run_checkpoint> resume;
};

/// Everything one executed experiment produced.
struct experiment_result {
  experiment_spec spec;        ///< normalized spec echo
  core::method_result method;  ///< optimize + prefab metrics (+ MC when planned)
  std::vector<core::spectrum_point> spectrum;      ///< wavelength_sweep output
  std::vector<core::process_window_point> window;  ///< process_window output
  double seconds = 0.0;        ///< wall-clock time of this experiment
  std::string artifact_dir;    ///< empty when artifact writing is disabled
};

/// Validates, executes, observes, and archives experiments.
class session {
 public:
  explicit session(session_options options = {});

  /// Validate and execute one spec end to end. The `control` overload wires
  /// checkpoint emission / resume into the optimization loop.
  experiment_result run(const experiment_spec& spec);
  experiment_result run(const experiment_spec& spec, const run_control& control);

  /// Execute a batch sequentially (each spec's corners/samples already
  /// saturate the worker pool). Every spec goes through the same execution
  /// path as `run`, sharing the process-global engine cache, so batches that
  /// repeat devices/operators amortize the one warm-up. The batch summary
  /// JSON written next to the per-experiment directories reports the
  /// aggregate: per-experiment rows plus batch wall-clock, summed experiment
  /// seconds, and the batch-level engine-cache traffic.
  std::vector<experiment_result> run_all(const std::vector<experiment_spec>& specs);

  /// The `experiment_config` a spec resolves to (BOSON_BENCH_SCALE and
  /// BOSON_SEED still apply, exactly as in `core::default_config`).
  static core::experiment_config config_for(const experiment_spec& spec);

  /// Build the design problem a spec describes — registry device,
  /// method-matched parameterization, fabrication models — for downstream
  /// studies that evaluate patterns directly (e.g. per-axis variation
  /// scans).
  static core::design_problem problem_for(const experiment_spec& spec);

 private:
  void emit(const progress_event& event);

  session_options options_;
  log_observer fallback_;
};

/// Export a run trajectory as CSV: iteration, loss, then one column per
/// metric (the Fig. 5 series). Columns follow the first record's metric set.
void write_trajectory_csv(const std::string& path,
                          const std::vector<core::iteration_record>& trajectory);

/// The filesystem-safe directory name a session derives from an experiment's
/// display name. Exposed so layers that place files next to session
/// artifacts (the campaign runtime's checkpoints) resolve the same path.
std::string artifact_name(const std::string& display_name);

}  // namespace boson::api
