#include "io/pgm.h"

#include <algorithm>
#include <fstream>

#include "common/error.h"

namespace boson::io {

void write_pgm(const std::string& path, const array2d<double>& data, double lo, double hi) {
  require(hi > lo, "write_pgm: hi must exceed lo");
  std::ofstream out(path, std::ios::binary);
  if (!out) throw io_error("write_pgm: cannot open " + path);

  // Image rows run top-to-bottom; emit the highest iy first so +y is up.
  out << "P5\n" << data.nx() << ' ' << data.ny() << "\n255\n";
  for (std::size_t row = 0; row < data.ny(); ++row) {
    const std::size_t iy = data.ny() - 1 - row;
    for (std::size_t ix = 0; ix < data.nx(); ++ix) {
      const double t = std::clamp((data(ix, iy) - lo) / (hi - lo), 0.0, 1.0);
      const unsigned char byte = static_cast<unsigned char>(t * 255.0 + 0.5);
      out.put(static_cast<char>(byte));
    }
  }
  if (!out) throw io_error("write_pgm: write failed for " + path);
}

}  // namespace boson::io
