#pragma once

#include <cstddef>
#include <functional>

#include "common/types.h"
#include "sparse/csr.h"

namespace boson::sp {

/// Matrix-free linear operator (or preconditioner application) used by the
/// flexible solver entry points: the nearby-operator reuse path passes the
/// perturbed operator as a CSR matvec and a *nominal* banded LU solve as the
/// preconditioner. An empty function means the identity.
using linear_op = std::function<cvec(const cvec&)>;

/// Zero-fill incomplete LU factorization of a complex CSR matrix, used to
/// precondition BiCGSTAB. Kept as an alternative solve path for grids whose
/// bandwidth makes the direct banded factorization unattractive.
class ilu0 {
 public:
  explicit ilu0(const csr_c& a);

  /// Apply z = (LU)^{-1} r.
  cvec apply(const cvec& r) const;

 private:
  csr_c factors_;               // L (unit diagonal, strictly lower) and U share the pattern of A
  std::vector<std::size_t> diag_;  // position of the diagonal entry in each row
};

/// Outcome of an iterative solve.
struct krylov_result {
  bool converged = false;
  std::size_t iterations = 0;
  double relative_residual = 0.0;
};

/// Preconditioned BiCGSTAB for complex non-Hermitian systems. `x` carries the
/// initial guess in and the solution out.
krylov_result bicgstab(const csr_c& a, const cvec& b, cvec& x, const ilu0* precond,
                       double tol = 1e-8, std::size_t max_iterations = 2000);

/// Restarted GMRES(m) with optional left ILU(0) preconditioning. More robust
/// than BiCGSTAB on strongly indefinite Helmholtz systems at the cost of
/// storing `restart` basis vectors.
krylov_result gmres(const csr_c& a, const cvec& b, cvec& x, const ilu0* precond,
                    std::size_t restart = 60, double tol = 1e-8,
                    std::size_t max_iterations = 2000);

/// Matrix-free restarted GMRES(m) with optional left preconditioning (empty
/// `precond` = none). This is the outer loop of the nearby-operator reuse
/// path: with M = LU of a *nominal* operator and A a diagonally-perturbed
/// corner operator, M^{-1} A is a low-rank perturbation of the identity and
/// the iteration converges in roughly one step per perturbed cell or better.
/// `x` carries the initial guess in and the solution out; the convergence
/// test is on the preconditioned residual (callers that need the true
/// residual check it on return).
krylov_result gmres(const linear_op& a, const cvec& b, cvec& x, const linear_op& precond,
                    std::size_t restart = 60, double tol = 1e-8,
                    std::size_t max_iterations = 2000);

/// A small recycled subspace carried across the adjacent solves of a
/// corner/sample sweep. Stores up to `capacity` pairs (u, w = A u) with the
/// w's kept orthonormal by modified Gram-Schmidt, so `guess` can serve the
/// least-squares minimizer of ||b - A x|| over the recycled span as a
/// warm-start: adjacent corners repeat (or barely perturb) their right-hand
/// sides, and the previous solution then starts the iteration at (or near)
/// the answer. Not thread-safe; callers serialize access.
class recycle_space {
 public:
  explicit recycle_space(std::size_t capacity = 8);

  std::size_t size() const { return u_.size(); }
  std::size_t capacity() const { return capacity_; }
  void clear();

  /// Best initial guess for A x = b available in the recycled span:
  /// x = U y with y = W^H b, which leaves the residual b - A x orthogonal
  /// to span(W). Returns the zero vector when the space is empty or b has
  /// a different length than the stored pairs.
  cvec guess(const cvec& b) const;

  /// Deposit a converged solution pair (u = x, w = A x). The pair is
  /// orthonormalized against the stored space (the same combination is
  /// applied to u and w, preserving w = A u); near-dependent directions are
  /// discarded and the oldest pair is dropped at capacity.
  void add(cvec u, cvec w);

 private:
  std::size_t capacity_;
  std::vector<cvec> u_;
  std::vector<cvec> w_;
};

}  // namespace boson::sp
