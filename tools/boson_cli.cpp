// boson_cli — the declarative experiment driver of the BOSON-1 library.
//
// Experiments are JSON specs (see docs/API.md for the schema) executed
// through the boson::api session façade:
//
//   boson_cli run <spec.json> [--out <dir>] [--no-artifacts]
//   boson_cli validate <spec.json>
//   boson_cli list devices|methods|objectives [--json]
//   boson_cli describe method <name>
//
// Campaigns (see docs/RUNTIME.md) are whole experiment matrices executed by
// the boson::runtime scheduler — elastic (lease-coordinated), journaled, and
// resumable. Any number of worker processes can share one campaign
// directory; each claims jobs through journal leases and dead workers' jobs
// are re-leased automatically:
//
//   boson_cli campaign run <campaign.json> [--out <dir>] [--worker <id>]
//                          [--workers N] [--lease-ttl <s>] [--no-artifacts]
//   boson_cli campaign resume <dir> [--worker <id>] [--workers N]
//                          [--lease-ttl <s>]
//   boson_cli campaign status <dir>
//   boson_cli campaign report <dir>
//
// (`--shard i/N` is still accepted as a deprecated filter; `--fault
// point[:n]` SIGKILLs the process at a named scheduler kill point, for
// fault-injection tests.)
//
// `run` accepts a single spec (JSON object) or a batch (JSON array) and
// writes one artifact directory per experiment (summary.json,
// trajectory.csv, mask.pgm, plus spectrum / process-window CSVs when those
// evaluation steps are planned). Progress streams through common/log on
// stderr; result tables go to stdout. BOSON_BENCH_SCALE, BOSON_THREADS,
// BOSON_BACKEND and BOSON_SIM_CACHE apply as everywhere else.

#include <chrono>
#include <cstdio>
#include <exception>
#include <filesystem>
#include <fstream>
#include <map>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "api/registry.h"
#include "api/session.h"
#include "api/spec.h"
#include "common/env.h"
#include "common/log.h"
#include "core/methods.h"
#include "io/table.h"
#include "net/http_client.h"
#include "obs/trace.h"
#include "runtime/campaign.h"
#include "runtime/journal.h"
#include "runtime/lease.h"
#include "runtime/result_store.h"
#include "runtime/scheduler.h"
#include "service/status.h"

namespace {

using namespace boson;

int usage(std::FILE* out) {
  std::fprintf(out,
               "boson_cli — declarative experiment driver for the BOSON-1 library\n"
               "\n"
               "usage:\n"
               "  boson_cli run <spec.json> [--out <dir>] [--no-artifacts]\n"
               "                         [--trace <trace.json>]\n"
               "  boson_cli validate <spec.json>\n"
               "  boson_cli list devices|methods|objectives [--json]\n"
               "  boson_cli describe method <name>\n"
               "  boson_cli campaign run <campaign.json> [--out <dir>] [--worker <id>]\n"
               "                         [--workers N] [--lease-ttl <s>] [--no-artifacts]\n"
               "                         [--trace]\n"
               "  boson_cli campaign resume <dir> [--worker <id>] [--workers N]\n"
               "                         [--lease-ttl <s>] [--trace]\n"
               "  boson_cli campaign status <dir> [--json]\n"
               "  boson_cli campaign report <dir>\n"
               "  boson_cli campaign submit <campaign.json> --server <url> [--tenant <t>]\n"
               "                         [--token <token>]\n"
               "  boson_cli campaign status|watch|report|cancel|delete <id> --server <url>\n"
               "                         [--tenant <t>] [--token <token>] [--json]\n"
               "\n"
               "run       execute one spec (JSON object) or a batch (JSON array);\n"
               "          artifacts land in --out (default: boson_out)\n"
               "validate  parse + validate a spec file without running it\n"
               "list      show the registered scenario names (--json emits a\n"
               "          machine-readable array for campaign generators)\n"
               "describe  print a registered method's fully-resolved recipe\n"
               "campaign  elastic, journaled, resumable execution of a whole\n"
               "          experiment matrix (see docs/RUNTIME.md). Point any\n"
               "          number of workers (--worker <id>) at one --out dir;\n"
               "          jobs are claimed through journal leases and a dead\n"
               "          worker's jobs are re-leased after --lease-ttl:\n"
               "            run     expand + execute claimable jobs\n"
               "            resume  continue a killed/partial campaign directory\n"
               "                    (also attaches to a boson_serve campaign dir)\n"
               "            status  replay the journal into a per-job state table\n"
               "                    (owner + lease column for live/expired leases);\n"
               "                    --json emits the service's status snapshot\n"
               "            report  render the paper-style tables from the store\n"
               "          with --server <url>, campaigns run on a boson_serve\n"
               "          daemon instead (docs/SERVICE.md): submit posts the spec,\n"
               "          watch streams journal events to completion, status/\n"
               "          report/cancel hit the matching endpoints; delete removes\n"
               "          a terminal campaign (registry tombstone + artifacts);\n"
               "          --tenant selects the namespace (default: \"default\");\n"
               "          --token (or BOSON_TOKEN) sends Authorization: Bearer,\n"
               "          required when the server has a tenants.json\n"
               "          --shard i/N still filters the visible jobs (deprecated);\n"
               "          --fault point[:n] SIGKILLs at a named kill point\n"
               "          (after_lease, mid_run, after_checkpoint, before_result)\n"
               "          for fault-injection tests\n"
               "tracing   'run --trace <file>' writes one Chrome trace_event JSON\n"
               "          for the whole run; 'campaign ... --trace' (or BOSON_TRACE=1)\n"
               "          writes a per-job trace.json next to each summary.json\n");
  return out == stdout ? 0 : 2;
}

int cmd_list(const std::string& what, bool as_json) {
  const api::registry& reg = api::registry::global();
  if (what == "devices") {
    if (as_json) {
      io::json_value arr = io::json_value::array();
      for (const auto& name : reg.device_names()) {
        io::json_value e = io::json_value::object();
        e["name"] = name;
        e["description"] = reg.device_description(name);
        arr.push_back(std::move(e));
      }
      std::printf("%s\n", arr.dump(2).c_str());
      return 0;
    }
    io::console_table table({"device", "description"});
    for (const auto& name : reg.device_names())
      table.add_row({name, reg.device_description(name)});
    table.print("Registered devices");
    return 0;
  }
  if (what == "methods") {
    if (as_json) {
      // The machine-readable form campaign generators consume: identity,
      // the spec-validation-relevant facts, and the full preset recipe.
      io::json_value arr = io::json_value::array();
      for (const auto& name : reg.method_names()) {
        const core::method_recipe recipe = reg.method(name);
        io::json_value e = io::json_value::object();
        e["name"] = name;
        e["label"] = recipe.label;
        e["parameterization"] = recipe.parameterization;
        e["objective_override"] = recipe.objective_override;
        e["signature"] = recipe.signature();
        e["recipe"] = api::recipe_to_json(recipe);
        arr.push_back(std::move(e));
      }
      std::printf("%s\n", arr.dump(2).c_str());
      return 0;
    }
    io::console_table table({"method", "label", "recipe"});
    for (const auto& name : reg.method_names()) {
      const core::method_recipe recipe = reg.method(name);
      table.add_row({name, recipe.label, recipe.signature()});
    }
    table.print("Registered methods");
    return 0;
  }
  if (what == "objectives") {
    if (as_json) {
      io::json_value arr = io::json_value::array();
      for (const auto& name : reg.objective_names()) {
        const api::objective_entry entry = reg.objective(name);
        io::json_value e = io::json_value::object();
        e["name"] = name;
        e["override_metric"] = entry.override_metric;
        e["description"] = entry.description;
        arr.push_back(std::move(e));
      }
      std::printf("%s\n", arr.dump(2).c_str());
      return 0;
    }
    io::console_table table({"objective", "description"});
    for (const auto& name : reg.objective_names())
      table.add_row({name, reg.objective(name).description});
    table.print("Registered objectives");
    return 0;
  }
  std::fprintf(stderr,
               "boson_cli: unknown list target '%s' (expected devices, methods or "
               "objectives)\n",
               what.c_str());
  return 2;
}

int cmd_describe(const std::string& kind, const std::string& name) {
  if (kind != "method") {
    std::fprintf(stderr, "boson_cli: unknown describe target '%s' (expected method)\n",
                 kind.c_str());
    return 2;
  }
  // Throws the registry's did-you-mean error for unknown names.
  const core::method_recipe recipe = api::registry::global().method(name);
  io::json_value v = io::json_value::object();
  v["name"] = name;
  v["label"] = recipe.label;
  v["signature"] = recipe.signature();
  v["recipe"] = api::recipe_to_json(recipe);
  std::printf("%s\n", v.dump(2).c_str());
  return 0;
}

int cmd_validate(const std::string& path) {
  const std::vector<api::experiment_spec> specs = api::load_specs(path);
  std::printf("%s: %zu valid spec%s\n", path.c_str(), specs.size(),
              specs.size() == 1 ? "" : "s");
  for (const auto& spec : specs)
    std::printf("  %-24s %s x %s @ %g um\n", spec.display_name().c_str(),
                spec.device.c_str(), spec.method.c_str(), spec.resolution);
  return 0;
}

int cmd_run(const std::string& path, const api::session_options& options) {
  const std::vector<api::experiment_spec> specs = api::load_specs(path);

  api::session session(options);
  const std::vector<api::experiment_result> results = session.run_all(specs);

  io::console_table table(
      {"experiment", "prefab FoM", "postfab FoM", "runtime [s]", "artifacts"});
  for (const auto& r : results) {
    const std::string postfab =
        r.method.postfab.samples > 0
            ? io::console_table::sci(r.method.postfab.fom_mean) + " +- " +
                  io::console_table::sci(r.method.postfab.fom_std)
            : "-";
    table.add_row({r.spec.name, io::console_table::sci(r.method.prefab_fom), postfab,
                   io::console_table::num(r.seconds, 1),
                   r.artifact_dir.empty() ? "-" : r.artifact_dir});
  }
  std::printf("\n");
  table.print("Executed " + std::to_string(results.size()) + " experiment" +
              (results.size() == 1 ? "" : "s") + " from " + path);
  return 0;
}

// ----------------------------------------------------------- campaigns ----

/// Execute one scheduler pass over a campaign directory and print the
/// outcome. Returns a process exit code (failures -> 1).
int run_campaign(const runtime::campaign_spec& spec, runtime::scheduler_options options) {
  runtime::scheduler scheduler(spec, options);
  const std::string worker = scheduler.worker_id();
  const runtime::scheduler_report report = scheduler.run();

  io::console_table table({"jobs", "completed", "skipped", "resumed", "failed",
                           "cancelled", "claimed", "stolen", "lost", "left leased",
                           "wall [s]"});
  table.add_row({std::to_string(report.shard_jobs), std::to_string(report.completed),
                 std::to_string(report.skipped), std::to_string(report.resumed),
                 std::to_string(report.failed), std::to_string(report.cancelled),
                 std::to_string(report.claimed), std::to_string(report.stolen),
                 std::to_string(report.lost), std::to_string(report.left_leased),
                 io::console_table::num(report.wall_seconds, 1)});
  std::printf("\n");
  table.print("Campaign '" + spec.name + "' worker " + worker);
  if (report.left_leased > 0)
    std::fprintf(stderr,
                 "boson_cli: %zu job(s) are leased to other workers; re-run "
                 "'campaign resume' (after their lease TTL) to pick up leftovers\n",
                 report.left_leased);
  for (const std::string& message : report.errors)
    std::fprintf(stderr, "boson_cli: job failed: %s\n", message.c_str());
  return report.failed == 0 && report.errors.empty() ? 0 : 1;
}

int cmd_campaign_run(const std::string& spec_path, runtime::scheduler_options options) {
  const runtime::campaign_spec spec = runtime::campaign_spec::load(spec_path);
  std::filesystem::create_directories(options.campaign_dir);
  // Persist the canonical spec next to the journal so status/resume/report
  // need only the directory. Shards of one campaign write identical bytes —
  // but a *different* campaign aimed at a used directory would inherit a
  // journal/store keyed by the old expansion (wrongly-skipped jobs, reports
  // mixing stale rows), so that is refused outright.
  const std::string canonical_path = runtime::campaign_spec_path(options.campaign_dir);
  if (std::filesystem::exists(canonical_path)) {
    if (io::json_value::parse_file(canonical_path).dump() != spec.to_json().dump()) {
      std::fprintf(stderr,
                   "boson_cli: '%s' already holds a different campaign; use a fresh "
                   "--out directory, or 'campaign resume %s' to continue the "
                   "existing one\n",
                   options.campaign_dir.c_str(), options.campaign_dir.c_str());
      return 2;
    }
  } else {
    spec.to_json().write_file(canonical_path);
  }
  return run_campaign(spec, std::move(options));
}

int cmd_campaign_resume(runtime::scheduler_options options) {
  const std::string path = runtime::campaign_spec_path(options.campaign_dir);
  if (!std::filesystem::exists(path)) {
    std::fprintf(stderr, "boson_cli: '%s' is not a campaign directory (no campaign.json)\n",
                 options.campaign_dir.c_str());
    return 2;
  }
  return run_campaign(runtime::campaign_spec::load(path), std::move(options));
}

int cmd_campaign_status(const std::string& dir, bool as_json) {
  // One snapshot type serves the CLI and the service control plane (see
  // service/status.h), so `status --json` here and GET /v1/campaigns/{id}
  // describe a campaign in the same shape.
  const service::campaign_status status =
      service::read_campaign_status(dir, runtime::wall_clock_seconds());
  if (as_json) std::printf("%s\n", status.to_json(true).dump(2).c_str());
  else std::fputs(status.render_text().c_str(), stdout);
  return 0;
}

int cmd_campaign_report(const std::string& dir) {
  const runtime::campaign_spec spec =
      runtime::campaign_spec::load(runtime::campaign_spec_path(dir));
  const std::vector<runtime::job_result_row> rows = runtime::result_store::load(dir);
  const std::string report = runtime::render_report(spec, rows);
  std::fputs(report.c_str(), stdout);

  const std::string report_path = (std::filesystem::path(dir) / "report.txt").string();
  std::ofstream out(report_path);
  out << report;
  out.flush();
  if (!out) {
    std::fprintf(stderr, "boson_cli: failed to write %s\n", report_path.c_str());
    return 1;
  }
  std::printf("\nreport written to %s\n", report_path.c_str());
  return 0;
}

// ------------------------------------------------- remote campaign mode ----

/// True for 2xx; otherwise surface the control plane's JSON error envelope
/// (falling back to the raw body) on stderr.
bool remote_ok(const net::http_response& res) {
  if (res.status >= 200 && res.status < 300) return true;
  std::string message = res.body;
  try {
    message = io::json_value::parse(res.body).at("error").at("message").as_string();
  } catch (const std::exception&) {
  }
  std::fprintf(stderr, "boson_cli: server answered %d %s: %s\n", res.status,
               net::status_reason(res.status), message.c_str());
  return false;
}

/// Credentials for remote mode: --tenant names the namespace, --token (or
/// BOSON_TOKEN) authenticates it when the server has a tenants.json. The
/// token travels as `Authorization: Bearer <token>`; the tenant header
/// stays as a cross-check (the server 401s on a mismatch).
struct remote_auth {
  std::string tenant;
  std::string token;

  std::vector<std::pair<std::string, std::string>> headers() const {
    std::vector<std::pair<std::string, std::string>> h;
    if (!tenant.empty()) h.emplace_back("X-Boson-Tenant", tenant);
    if (!token.empty()) h.emplace_back("Authorization", "Bearer " + token);
    return h;
  }
};

int cmd_remote_submit(const std::string& server, const remote_auth& auth,
                      const std::string& spec_path) {
  std::ifstream in(spec_path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "boson_cli: cannot read '%s'\n", spec_path.c_str());
    return 2;
  }
  const std::string body((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
  net::http_client client(server);
  const net::http_response res =
      client.post("/v1/campaigns", body, auth.headers());
  if (!remote_ok(res)) return 1;
  const io::json_value record = io::json_value::parse(res.body);
  std::printf("%s\n", record.dump(2).c_str());
  std::fprintf(stderr, "boson_cli: submitted campaign %s (%s)\n",
               record.at("id").as_string().c_str(), server.c_str());
  return 0;
}

int cmd_remote_status(const std::string& server, const remote_auth& auth,
                      const std::string& id, bool as_json) {
  net::http_client client(server);
  const net::http_response res =
      client.get("/v1/campaigns/" + id + "/jobs", auth.headers());
  if (!remote_ok(res)) return 1;
  if (as_json) {
    std::fputs(res.body.c_str(), stdout);
    return 0;
  }
  const io::json_value v = io::json_value::parse(res.body);
  std::printf("campaign %s '%s': %s, %zu/%zu result rows\n",
              v.at("id").as_string().c_str(), v.at("name").as_string().c_str(),
              v.at("state").as_string().c_str(),
              static_cast<std::size_t>(v.at("result_rows").as_number()),
              static_cast<std::size_t>(v.at("total_jobs").as_number()));
  std::string summary;
  for (const auto& [state, n] : v.at("counts").members())
    summary += (summary.empty() ? "" : ", ") +
               std::to_string(static_cast<std::size_t>(n.as_number())) + " " + state;
  std::printf("%s\n", summary.c_str());
  return 0;
}

int cmd_remote_watch(const std::string& server, const remote_auth& auth,
                     const std::string& id) {
  net::http_client client(server);
  const auto headers = auth.headers();
  std::string cursor = "0";
  int transport_failures = 0;

  // One GET with bounded retry on transport errors: the server's write
  // timeout drops consumers that stop reading, and our cursor makes the
  // reconnect gap-free (X-Boson-Cursor only advances past delivered
  // lines, so re-asking from `cursor` re-delivers nothing and skips
  // nothing). HTTP-level errors (404, 401, ...) are not retried.
  const auto fetch = [&](const std::string& path) -> std::optional<net::http_response> {
    while (true) {
      try {
        net::http_response res = client.get(path, headers);
        transport_failures = 0;
        return res;
      } catch (const std::exception& e) {
        if (++transport_failures > 5) {
          std::fprintf(stderr, "boson_cli: giving up after repeated transport errors: %s\n",
                       e.what());
          return std::nullopt;
        }
        std::fprintf(stderr, "boson_cli: transport error (%s); retrying from cursor %s\n",
                     e.what(), cursor.c_str());
        std::this_thread::sleep_for(std::chrono::milliseconds(200 * transport_failures));
      }
    }
  };

  // Long-poll the journal stream; after each page, check the lifecycle
  // state. On a terminal state, drain one final page (records appended
  // between our last read and the state flip) before returning.
  const auto fetch_events = [&](const std::string& wait) -> std::optional<bool> {
    const auto res = fetch("/v1/campaigns/" + id + "/events?cursor=" + cursor +
                           "&wait=" + wait);
    if (!res || !remote_ok(*res)) return std::nullopt;
    if (const std::string* next = res->header("X-Boson-Cursor")) cursor = *next;
    if (!res->body.empty()) {
      std::fputs(res->body.c_str(), stdout);
      std::fflush(stdout);
    }
    return true;
  };

  while (true) {
    if (!fetch_events("20")) return 1;
    const auto status = fetch("/v1/campaigns/" + id);
    if (!status || !remote_ok(*status)) return 1;
    const std::string state =
        io::json_value::parse(status->body).at("state").as_string();
    if (state == "done" || state == "failed" || state == "cancelled") {
      if (!fetch_events("0")) return 1;
      std::fprintf(stderr, "boson_cli: campaign %s %s\n", id.c_str(), state.c_str());
      return state == "done" ? 0 : 1;
    }
  }
}

int cmd_remote_report(const std::string& server, const remote_auth& auth,
                      const std::string& id, bool as_json) {
  net::http_client client(server);
  const std::string path =
      "/v1/campaigns/" + id + "/report" + (as_json ? "?format=json" : "?format=text");
  const net::http_response res = client.get(path, auth.headers());
  if (!remote_ok(res)) return 1;
  std::fputs(res.body.c_str(), stdout);
  return 0;
}

int cmd_remote_cancel(const std::string& server, const remote_auth& auth,
                      const std::string& id) {
  net::http_client client(server);
  const net::http_response res =
      client.post("/v1/campaigns/" + id + "/cancel", "", auth.headers());
  if (!remote_ok(res)) return 1;
  std::fputs(res.body.c_str(), stdout);
  std::printf("\n");
  return 0;
}

int cmd_remote_delete(const std::string& server, const remote_auth& auth,
                      const std::string& id) {
  net::http_client client(server);
  const net::http_response res =
      client.del("/v1/campaigns/" + id, auth.headers());
  if (!remote_ok(res)) return 1;
  std::fputs(res.body.c_str(), stdout);
  std::printf("\n");
  std::fprintf(stderr, "boson_cli: campaign %s deleted\n", id.c_str());
  return 0;
}

int cmd_campaign(const std::vector<std::string>& args) {
  if (args.size() < 2) return usage(stderr);
  const std::string& action = args[0];
  const bool known_local = action == "run" || action == "resume" ||
                           action == "status" || action == "report";
  const bool known_remote = action == "submit" || action == "watch" ||
                            action == "cancel" || action == "delete" ||
                            known_local;
  if (!known_remote) {
    std::fprintf(stderr, "boson_cli: unknown campaign action '%s'\n", action.c_str());
    return usage(stderr);
  }

  std::string target;
  std::string server;
  remote_auth auth;
  auth.token = env_string("BOSON_TOKEN", "");
  bool as_json = false;
  runtime::scheduler_options options;
  // Lives past run(): fault actions fire from inside scheduler worker
  // threads (the kill action never returns anyway, but keep the lifetime
  // honest).
  static runtime::fault_injector faults;
  bool saw_out = false;
  for (std::size_t i = 1; i < args.size(); ++i) {
    if (args[i] == "--out") {
      if (i + 1 >= args.size()) return usage(stderr);
      options.campaign_dir = args[++i];
      saw_out = true;
    } else if (args[i] == "--server") {
      if (i + 1 >= args.size()) return usage(stderr);
      server = args[++i];
    } else if (args[i] == "--tenant") {
      if (i + 1 >= args.size()) return usage(stderr);
      auth.tenant = args[++i];
    } else if (args[i] == "--token") {
      if (i + 1 >= args.size()) return usage(stderr);
      auth.token = args[++i];
    } else if (args[i] == "--json") {
      as_json = true;
    } else if (args[i] == "--shard") {
      if (i + 1 >= args.size()) return usage(stderr);
      options.shard = runtime::shard_range::parse(args[++i]);
      std::fprintf(stderr,
                   "boson_cli: --shard is deprecated; leases already keep "
                   "concurrent workers disjoint — point them at one --out "
                   "directory with distinct --worker ids instead\n");
    } else if (args[i] == "--worker") {
      if (i + 1 >= args.size()) return usage(stderr);
      options.worker_id = args[++i];
    } else if (args[i] == "--lease-ttl") {
      if (i + 1 >= args.size()) return usage(stderr);
      options.lease_ttl = std::stod(args[++i]);
    } else if (args[i] == "--fault") {
      if (i + 1 >= args.size()) return usage(stderr);
      faults.arm(args[++i]);
      options.faults = &faults;
    } else if (args[i] == "--workers") {
      if (i + 1 >= args.size()) return usage(stderr);
      options.workers = static_cast<std::size_t>(std::stoul(args[++i]));
    } else if (args[i] == "--no-artifacts") {
      options.write_artifacts = false;
    } else if (args[i] == "--trace") {
      options.trace = true;
    } else if (!args[i].empty() && args[i][0] == '-') {
      std::fprintf(stderr, "boson_cli: unknown option '%s'\n", args[i].c_str());
      return 2;
    } else if (target.empty()) {
      target = args[i];
    } else {
      return usage(stderr);
    }
  }
  if (target.empty()) return usage(stderr);

  if (!server.empty()) {
    // Remote mode: the target is a spec file (submit) or a campaign id.
    if (action == "submit") return cmd_remote_submit(server, auth, target);
    if (action == "status") return cmd_remote_status(server, auth, target, as_json);
    if (action == "watch") return cmd_remote_watch(server, auth, target);
    if (action == "report") return cmd_remote_report(server, auth, target, as_json);
    if (action == "cancel") return cmd_remote_cancel(server, auth, target);
    if (action == "delete") return cmd_remote_delete(server, auth, target);
    std::fprintf(stderr,
                 "boson_cli: campaign %s is local-only (did you mean 'campaign "
                 "submit --server'?)\n",
                 action.c_str());
    return 2;
  }
  if (!known_local) {
    std::fprintf(stderr, "boson_cli: campaign %s needs --server <url>\n", action.c_str());
    return 2;
  }
  if (!auth.tenant.empty()) {
    std::fprintf(stderr, "boson_cli: --tenant only applies with --server\n");
    return 2;
  }

  if (action == "status") return cmd_campaign_status(target, as_json);
  if (action == "report") return cmd_campaign_report(target);
  if (action == "resume") {
    if (saw_out) return usage(stderr);  // resume takes the directory directly
    options.campaign_dir = target;
    return cmd_campaign_resume(std::move(options));
  }
  return cmd_campaign_run(target, std::move(options));
}

}  // namespace

int main(int argc, char** argv) {
  using namespace boson;

  // Progress is the CLI's interface: default to info-level logging unless
  // the user pinned a level via BOSON_LOG.
  if (env_string("BOSON_LOG", "").empty()) set_log_level(log_level::info);

  const std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty() || args[0] == "--help" || args[0] == "-h") {
    return usage(args.empty() ? stderr : stdout);
  }

  try {
    const std::string& command = args[0];
    if (command == "list") {
      std::string what;
      bool as_json = false;
      for (std::size_t i = 1; i < args.size(); ++i) {
        if (args[i] == "--json") as_json = true;
        else if (!args[i].empty() && args[i][0] == '-') {
          std::fprintf(stderr, "boson_cli: unknown option '%s'\n", args[i].c_str());
          return 2;
        } else if (what.empty()) what = args[i];
        else return usage(stderr);
      }
      if (what.empty()) return usage(stderr);
      return cmd_list(what, as_json);
    }
    if (command == "describe") {
      if (args.size() != 3) return usage(stderr);
      return cmd_describe(args[1], args[2]);
    }
    if (command == "campaign") {
      return cmd_campaign({args.begin() + 1, args.end()});
    }
    if (command == "validate") {
      if (args.size() != 2) return usage(stderr);
      return cmd_validate(args[1]);
    }
    if (command == "run") {
      std::string spec_path;
      std::string trace_path;
      api::session_options options;
      for (std::size_t i = 1; i < args.size(); ++i) {
        if (args[i] == "--out") {
          if (i + 1 >= args.size()) return usage(stderr);
          options.output_dir = args[++i];
        } else if (args[i] == "--no-artifacts") {
          options.write_artifacts = false;
        } else if (args[i] == "--trace") {
          if (i + 1 >= args.size()) return usage(stderr);
          trace_path = args[++i];
        } else if (!args[i].empty() && args[i][0] == '-') {
          std::fprintf(stderr, "boson_cli: unknown option '%s'\n", args[i].c_str());
          return 2;
        } else if (spec_path.empty()) {
          spec_path = args[i];
        } else {
          return usage(stderr);
        }
      }
      if (spec_path.empty()) return usage(stderr);
      if (trace_path.empty()) return cmd_run(spec_path, options);

      // Whole-run tracing: every span of the process (prepare, factorize,
      // solve, ...) lands in one Chrome trace_event file.
      obs::trace_collector collector;
      obs::set_global_trace(&collector);
      const int rc = cmd_run(spec_path, options);
      obs::set_global_trace(nullptr);
      collector.write_chrome_json(trace_path);
      std::fprintf(stderr, "boson_cli: wrote %zu span(s) to %s\n",
                   collector.size(), trace_path.c_str());
      return rc;
    }
    std::fprintf(stderr, "boson_cli: unknown command '%s'\n", command.c_str());
    return usage(stderr);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "boson_cli: %s\n", e.what());
    return 1;
  }
}
