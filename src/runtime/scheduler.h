/// \file scheduler.h
/// The campaign execution engine: expands a `campaign_spec`, filters the
/// job list to this process's `--shard i/N` slice, and runs the remaining
/// jobs across a bounded pool of worker threads with per-job retry,
/// cooperative cancellation, and durability. Every state transition lands in
/// the append-only journal and every completed job in the result store, so a
/// killed scheduler resumes by replaying the journal: completed jobs are
/// skipped outright and mid-flight jobs restart from their last persisted
/// checkpoint instead of iteration zero.

#pragma once

#include <atomic>
#include <cstddef>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "api/observer.h"
#include "api/session.h"
#include "common/error.h"
#include "runtime/campaign.h"
#include "runtime/result_store.h"

namespace boson::runtime {

/// Thrown through a job when `scheduler::cancel` interrupts it at an
/// iteration/stage boundary. The job's last checkpoint stays on disk, so a
/// later `resume` continues where the cancellation struck.
class cancelled_error : public error {
 public:
  using error::error;
};

/// Pluggable job execution: the default runs the spec through an
/// `api::session` into `<campaign_dir>/jobs/<name>/`; tests and benchmarks
/// substitute synthetic executors to exercise the scheduling machinery
/// without simulations. `watcher` is the scheduler's per-job observer (it
/// enforces cancellation — executors should forward progress through it).
using job_executor = std::function<api::experiment_result(
    const campaign_job& job, const api::run_control& control, api::observer* watcher)>;

struct scheduler_options {
  /// Campaign working directory: journal, result store, and job artifacts.
  std::string campaign_dir = "boson_campaign";

  /// This process's slice of the job list (default: everything).
  shard_range shard;

  /// Overrides of the campaign's scheduler settings (unset: use the spec's).
  std::optional<std::size_t> workers;
  std::optional<std::size_t> max_retries;
  std::optional<std::size_t> checkpoint_every;

  bool write_artifacts = true;

  /// Shared progress receiver; must be thread-safe (see `api::observer`).
  /// nullptr: each worker logs through a shard/worker-prefixed
  /// `log_observer`.
  api::observer* watcher = nullptr;

  /// Execution override for tests/benchmarks (empty: the api::session path).
  job_executor executor;
};

/// What one `scheduler::run` call did to its shard.
struct scheduler_report {
  std::size_t shard_jobs = 0;  ///< jobs in this shard
  std::size_t completed = 0;   ///< finished during this run
  std::size_t skipped = 0;     ///< already completed per the journal
  std::size_t failed = 0;      ///< exhausted their retry budget
  std::size_t cancelled = 0;   ///< interrupted by `cancel`
  std::size_t resumed = 0;     ///< restarted from a mid-flight checkpoint
  double wall_seconds = 0.0;
  std::vector<job_result_row> rows;    ///< result-store rows appended this run
  std::vector<std::string> errors;     ///< messages of permanently-failed jobs
};

/// Sharded, journaled, resumable campaign runner.
class scheduler {
 public:
  scheduler(campaign_spec spec, scheduler_options options);

  /// Execute this shard's pending jobs; blocks until done (or cancelled).
  /// Safe to call again on the same campaign directory — completed jobs are
  /// skipped, failed/cancelled jobs get a fresh retry budget.
  scheduler_report run();

  /// Cooperative cancellation, callable from any thread (or from a job's
  /// observer callback): no new jobs are dispatched and running jobs stop at
  /// their next iteration/stage boundary, leaving their checkpoints behind.
  void cancel() { cancel_.store(true); }
  bool cancel_requested() const { return cancel_.load(); }

  const campaign_spec& spec() const { return spec_; }

  /// Effective settings after applying option overrides to the spec.
  scheduler_settings effective_settings() const;

 private:
  api::experiment_result execute_with_session(const campaign_job& job,
                                              const api::run_control& control,
                                              api::observer* watcher);

  campaign_spec spec_;
  scheduler_options options_;
  std::atomic<bool> cancel_{false};
};

/// Path helpers shared by the scheduler and the CLI.
std::string journal_path(const std::string& campaign_dir);
std::string campaign_spec_path(const std::string& campaign_dir);
std::string job_directory(const std::string& campaign_dir, const std::string& job_name);

}  // namespace boson::runtime
