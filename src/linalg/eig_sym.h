#pragma once

#include <cstddef>

#include "common/types.h"
#include "linalg/dense.h"

namespace boson::la {

/// Result of a symmetric/Hermitian eigendecomposition: eigenvalues ascending,
/// eigenvectors stored as matrix columns (column j pairs with values[j]).
template <class T>
struct eig_result {
  dvec values;
  dense_matrix<T> vectors;
};

/// Eigendecomposition of a real symmetric matrix by cyclic Jacobi rotations.
/// Robust and simple; O(n^3) per sweep, intended for n up to a few hundred
/// and as an independent cross-check of `sym_eig`.
eig_result<double> jacobi_eig(dmat a, double tol = 1e-12, std::size_t max_sweeps = 64);

/// Eigendecomposition of a symmetric tridiagonal matrix (diag, sub) using the
/// implicit-shift QL algorithm (TQL2). `sub[0]` is ignored; `sub[i]` couples
/// rows i-1 and i. Used directly by the slab-waveguide mode solver.
eig_result<double> tridiag_eig(dvec diag, dvec sub);

/// Eigendecomposition of a real symmetric matrix via Householder
/// tridiagonalization followed by TQL2. O(n^3) with a small constant; this is
/// the production path for the lithography TCC operator.
eig_result<double> sym_eig(dmat a);

/// Eigendecomposition of a complex Hermitian matrix via the real 2n x 2n
/// embedding [[Re A, -Im A], [Im A, Re A]]. Each eigenvalue of A appears
/// twice in the embedding; one complex eigenvector is reconstructed per pair.
eig_result<cplx> hermitian_eig(const cmat& a);

}  // namespace boson::la
