/// \file corners.h
/// The variation space: one `variation_corner` fixes every modelled
/// fabrication/operating error (lithography focus+dose corner, temperature,
/// uniform etch-threshold shift, EOLE coefficients); `variation_space` gives
/// the ranges that axial corners and Monte-Carlo evaluation draw from.

#pragma once

#include <string>

#include "common/types.h"

namespace boson::robust {

/// One realization of every variation source the framework models:
/// lithography corner index (into `fab::standard_litho_corners`), operating
/// temperature, a uniform shift of the etch threshold, and EOLE coefficients
/// for the spatially varying part of the threshold field.
struct variation_corner {
  int litho = 0;
  double temperature = 300.0;
  double eta_shift = 0.0;
  dvec xi;                 ///< empty means all-zero coefficients
  double weight = 1.0;     ///< relative weight in the robust objective
  std::string name = "nominal";

  bool is_nominal() const {
    if (litho != 0 || temperature != 300.0 || eta_shift != 0.0) return false;
    for (const double v : xi)
      if (v != 0.0) return false;
    return true;
  }
};

/// Ranges of the variation distribution; axial corners sit at the extremes
/// and Monte-Carlo evaluation samples uniformly within.
struct variation_space {
  double temp_min = 260.0;
  double temp_max = 340.0;
  double eta_delta = 0.05;          ///< global threshold corner offset
  std::size_t num_litho_corners = 3;
  std::size_t eole_terms = 8;       ///< length of xi
  double worst_xi_scale = 1.5;      ///< magnitude of the one-step xi ascent
};

}  // namespace boson::robust
