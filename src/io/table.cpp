#include "io/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace boson::io {

console_table::console_table(std::vector<std::string> header) : header_(std::move(header)) {}

void console_table::add_row(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

std::string console_table::render(const std::string& title) const {
  std::vector<std::size_t> width(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c) width[c] = std::max(width[c], row[c].size());

  std::ostringstream os;
  if (!title.empty()) os << title << '\n';
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << "| " << row[c];
      os << std::string(width[c] - row[c].size() + 1, ' ');
    }
    os << "|\n";
  };
  emit(header_);
  os << '|';
  for (const std::size_t w : width) os << std::string(w + 2, '-') << '|';
  os << '\n';
  for (const auto& row : rows_) emit(row);
  return os.str();
}

void console_table::print(const std::string& title) const {
  const std::string text = render(title);
  std::fwrite(text.data(), 1, text.size(), stdout);
  std::fflush(stdout);
}

std::string console_table::num(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string console_table::sci(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*e", precision, value);
  return buf;
}

}  // namespace boson::io
