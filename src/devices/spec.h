#pragma once

#include <string>
#include <vector>

#include "common/array2d.h"
#include "common/types.h"
#include "fdfd/source.h"
#include "grid/grid2d.h"
#include "grid/pml.h"
#include "optim/penalty.h"

namespace boson::dev {

/// A port cross-section: a line of cells transverse to propagation, used for
/// mode sources and modal monitors. For a vertical port, `line` is the ix of
/// the (first) source/monitor column and the span walks iy.
struct port {
  fdfd::port_axis axis = fdfd::port_axis::vertical;
  std::size_t line = 0;
  std::size_t span_start = 0;
  std::size_t span_count = 0;
  int direction = +1;  ///< launch direction for sources (+1 = +x/+y)
};

/// Modal power monitor definition. The monitor value is normalized by the
/// excitation's input power before metrics consume it.
struct mode_monitor_def {
  std::string name;
  port p;
  int mode_order = 1;  ///< 1-based (TM1 = fundamental)
};

/// Net Poynting-flux monitor through the interface between `index` and
/// `index + 1`. `sign` flips the positive direction (e.g. -1 measures power
/// flowing toward -x).
struct flux_monitor_def {
  std::string name;
  fdfd::port_axis axis = fdfd::port_axis::vertical;
  std::size_t index = 0;
  std::size_t span_start = 0;
  std::size_t span_count = 0;
  double sign = 1.0;
};

/// One simulation pass: a mode source plus the monitors evaluated on the
/// resulting field. The reference monitor measures the launched power on the
/// device's straight-waveguide reference structure (normalization run).
struct excitation {
  std::string name;
  port source;
  int source_mode_order = 1;
  std::vector<mode_monitor_def> mode_monitors;
  std::vector<flux_monitor_def> flux_monitors;
  mode_monitor_def reference_monitor;
};

/// Metrics are affine combinations of normalized monitor values:
/// metric = constant + sum coeff * value("excitation.monitor").
struct metric_term {
  std::string monitor;  ///< fully qualified "excitation.monitor"
  double coeff = 1.0;
};

struct metric_def {
  std::string name;
  double constant = 0.0;
  std::vector<metric_term> terms;
};

/// Shape of the primary objective.
enum class objective_kind {
  maximize_metric,  ///< loss = 1 - metric(primary)
  minimize_ratio,   ///< loss = metric(primary) / metric(secondary)  (isolation contrast)
};

struct objective_spec {
  objective_kind kind = objective_kind::maximize_metric;
  std::string primary;
  std::string secondary;  ///< denominator for minimize_ratio
  std::vector<metric_def> metrics;
  opt::penalty_set dense_penalties;  ///< the paper's auxiliary dense objectives
  std::string fom_metric;            ///< reported figure of merit
  bool fom_lower_better = false;
};

/// Complete description of one benchmark device.
struct device_spec {
  std::string name;
  grid2d grid;
  pml_spec pml;
  double k0 = 0.0;

  /// Binary occupancy (0 = void, 1 = silicon) of the fixed geometry; the
  /// design window is left empty and is overwritten by the optimized pattern.
  array2d<double> background_occupancy;

  /// Straight-through reference structure used to normalize input power.
  array2d<double> reference_occupancy;

  cell_window design;
  std::vector<excitation> excitations;
  objective_spec objective;

  /// Light-concentrated initialization: a signed field on the design grid
  /// (positive = solid) whose zero level set traces a simple connected
  /// optical path between the ports.
  array2d<double> init_signed_field;
};

}  // namespace boson::dev
