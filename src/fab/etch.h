#pragma once

#include "common/array2d.h"
#include "common/types.h"

namespace boson::fab {

/// How the etch binarization is evaluated / differentiated.
enum class etch_mode {
  soft,  ///< smooth sigmoid projection (fully differentiable relaxation)
  ste,   ///< hard threshold forward, sigmoid gradient backward (the paper's
         ///< "gradient-estimated etching"; straight-through estimator)
  hard,  ///< hard threshold, no gradient — evaluation / Monte-Carlo mode
};

/// Etching model: binarization of the continuous post-lithography pattern
/// around a (possibly spatially varying) threshold field eta.
class etch_model {
 public:
  explicit etch_model(double beta = 30.0, etch_mode mode = etch_mode::ste)
      : beta_(beta), mode_(mode) {}

  double beta() const { return beta_; }
  etch_mode mode() const { return mode_; }
  void set_mode(etch_mode m) { mode_ = m; }

  /// pattern = step/sigmoid(post_litho - eta).
  array2d<double> forward(const array2d<double>& post_litho,
                          const array2d<double>& eta) const;

  /// Chain rule through the (soft or straight-through) projection:
  /// d_post_litho += d_pattern . beta s'(...);  d_eta -= the same.
  void backward(const array2d<double>& post_litho, const array2d<double>& eta,
                const array2d<double>& d_pattern, array2d<double>& d_post_litho,
                array2d<double>& d_eta) const;

 private:
  double beta_;
  etch_mode mode_;
};

}  // namespace boson::fab
