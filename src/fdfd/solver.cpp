#include "fdfd/solver.h"

#include "common/error.h"

namespace boson::fdfd {

fdfd_solver::fdfd_solver(const grid2d& grid, const pml_spec& pml, double k0,
                         const array2d<double>& eps)
    : grid_(grid), pml_(pml), k0_(k0), eps_(eps) {
  require(grid.nx >= 8 && grid.ny >= 8, "fdfd_solver: grid too small");
  require(eps.nx() == grid.nx && eps.ny() == grid.ny, "fdfd_solver: eps shape mismatch");
  require(k0 > 0.0, "fdfd_solver: k0 must be positive");
  sx_ = build_stretch(grid.nx, grid.dx, k0, pml);
  sy_ = build_stretch(grid.ny, grid.dy, k0, pml);
}

namespace {

/// Stencil coefficients for cell (ix, iy) of the s_x s_y - scaled operator.
struct stencil {
  cplx east, west, north, south, diag;
};

stencil stencil_at(const grid2d& g, double k0, const array2d<double>& eps,
                   const stretch_profile& sx, const stretch_profile& sy,
                   std::size_t ix, std::size_t iy) {
  const double inv_dx2 = 1.0 / (g.dx * g.dx);
  const double inv_dy2 = 1.0 / (g.dy * g.dy);
  const cplx sxc = sx.center[ix];
  const cplx syc = sy.center[iy];
  // iface[i] separates cells i-1 and i.
  const cplx sx_w = sx.iface[ix];
  const cplx sx_e = sx.iface[ix + 1];
  const cplx sy_s = sy.iface[iy];
  const cplx sy_n = sy.iface[iy + 1];

  stencil st;
  st.east = syc / sx_e * inv_dx2;
  st.west = syc / sx_w * inv_dx2;
  st.north = sxc / sy_n * inv_dy2;
  st.south = sxc / sy_s * inv_dy2;
  st.diag = k0 * k0 * eps(ix, iy) * sxc * syc - st.east - st.west - st.north - st.south;
  return st;
}

}  // namespace

void fdfd_solver::assemble_and_factor() const {
  const std::size_t n = grid_.cell_count();
  const std::size_t band = grid_.ny;
  auto lu = std::make_unique<sp::banded_lu>(n, band, band);

  for (std::size_t ix = 0; ix < grid_.nx; ++ix) {
    for (std::size_t iy = 0; iy < grid_.ny; ++iy) {
      const stencil st = stencil_at(grid_, k0_, eps_, sx_, sy_, ix, iy);
      const std::size_t row = flat(ix, iy);
      lu->add(row, row, st.diag);
      if (ix + 1 < grid_.nx) lu->add(row, flat(ix + 1, iy), st.east);
      if (ix > 0) lu->add(row, flat(ix - 1, iy), st.west);
      if (iy + 1 < grid_.ny) lu->add(row, flat(ix, iy + 1), st.north);
      if (iy > 0) lu->add(row, flat(ix, iy - 1), st.south);
    }
  }
  lu->factor();
  lu_ = std::move(lu);
}

const sp::banded_lu& fdfd_solver::factorization() const {
  if (!lu_) assemble_and_factor();
  return *lu_;
}

void fdfd_solver::build_rhs(const array2d<cplx>& current_density, cvec& b) const {
  require(current_density.nx() == grid_.nx && current_density.ny() == grid_.ny,
          "fdfd_solver::build_rhs: source shape mismatch");
  b.assign(grid_.cell_count(), cplx{});
  const cplx factor = -imag_unit * k0_;
  for (std::size_t ix = 0; ix < grid_.nx; ++ix) {
    for (std::size_t iy = 0; iy < grid_.ny; ++iy) {
      const cplx j = current_density(ix, iy);
      if (j != cplx{}) b[flat(ix, iy)] = factor * j * sx_.center[ix] * sy_.center[iy];
    }
  }
}

void fdfd_solver::build_adjoint_rhs(const field_gradient& g, cvec& b) const {
  b.assign(grid_.cell_count(), cplx{});
  for (const auto& [idx, val] : g) {
    require(idx < b.size(), "fdfd_solver::build_adjoint_rhs: index out of range");
    b[idx] += val;
  }
}

array2d<cplx> fdfd_solver::solve(const array2d<cplx>& current_density) const {
  if (!lu_) assemble_and_factor();
  cvec b;
  build_rhs(current_density, b);
  const cvec x = lu_->solve(b);

  array2d<cplx> field(grid_.nx, grid_.ny);
  for (std::size_t i = 0; i < x.size(); ++i) field.raw()[i] = x[i];
  return field;
}

array2d<cplx> fdfd_solver::solve_adjoint(const field_gradient& g) const {
  if (!lu_) assemble_and_factor();
  cvec rhs;
  build_adjoint_rhs(g, rhs);
  const cvec x = lu_->solve(rhs);
  array2d<cplx> lambda(grid_.nx, grid_.ny);
  for (std::size_t i = 0; i < x.size(); ++i) lambda.raw()[i] = x[i];
  return lambda;
}

void fdfd_solver::accumulate_eps_gradient(const array2d<cplx>& field,
                                          const array2d<cplx>& adjoint_field,
                                          array2d<double>& grad) const {
  require(field.same_shape(eps_) && adjoint_field.same_shape(eps_) && grad.same_shape(eps_),
          "fdfd_solver::accumulate_eps_gradient: shape mismatch");
  const double k02 = k0_ * k0_;
  for (std::size_t ix = 0; ix < grid_.nx; ++ix) {
    const cplx sxc = sx_.center[ix];
    for (std::size_t iy = 0; iy < grid_.ny; ++iy) {
      const cplx scale = k02 * sxc * sy_.center[iy];
      grad(ix, iy) += -2.0 * std::real(adjoint_field(ix, iy) * scale * field(ix, iy));
    }
  }
}

sp::csr_c fdfd_solver::assemble_csr() const {
  const std::size_t n = grid_.cell_count();
  std::vector<sp::triplet<cplx>> entries;
  entries.reserve(5 * n);
  for (std::size_t ix = 0; ix < grid_.nx; ++ix) {
    for (std::size_t iy = 0; iy < grid_.ny; ++iy) {
      const stencil st = stencil_at(grid_, k0_, eps_, sx_, sy_, ix, iy);
      const std::size_t row = flat(ix, iy);
      entries.push_back({row, row, st.diag});
      if (ix + 1 < grid_.nx) entries.push_back({row, flat(ix + 1, iy), st.east});
      if (ix > 0) entries.push_back({row, flat(ix - 1, iy), st.west});
      if (iy + 1 < grid_.ny) entries.push_back({row, flat(ix, iy + 1), st.north});
      if (iy > 0) entries.push_back({row, flat(ix, iy - 1), st.south});
    }
  }
  return sp::csr_c(n, n, std::move(entries));
}

}  // namespace boson::fdfd
