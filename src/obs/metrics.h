/// \file metrics.h
/// Process-wide metrics registry: named counters, gauges, and fixed-bucket
/// histograms backed by relaxed atomics, cheap enough to live on solver hot
/// paths. Series are identified by a metric name plus an optional label set
/// (`{"endpoint","events"}, {"class","2xx"}`); the registry hands out stable
/// references, so hot paths resolve a series once (function-local static)
/// and afterwards pay one relaxed atomic op per update.
///
/// Exposition: `to_prometheus()` renders the whole registry in the
/// Prometheus text format (histograms as `_bucket`/`_sum`/`_count` series,
/// dotted names mapped to `boson_*` underscore names), `samples()` returns a
/// typed snapshot for JSON rendering, and `digest()` is the one-line
/// shutdown summary `boson_serve` logs on SIGTERM. The registry is
/// dependency-free (common only) so every module above `common` can record
/// into it.

#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace boson::obs {

/// Label set of one series, rendered in the given order ([{k,v},...]).
using label_set = std::vector<std::pair<std::string, std::string>>;

/// Monotonic event count. All operations are relaxed atomics: totals are
/// exact, ordering against other memory is not implied.
class counter {
 public:
  void inc(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-written instantaneous value (queue depth, cache entries).
class gauge {
 public:
  void set(double v) { bits_.store(pack(v), std::memory_order_relaxed); }
  void add(double delta);
  double value() const { return unpack(bits_.load(std::memory_order_relaxed)); }
  void reset() { set(0.0); }

 private:
  static std::uint64_t pack(double v);
  static double unpack(std::uint64_t bits);
  std::atomic<std::uint64_t> bits_{0};  // 0 packs 0.0
};

/// Fixed-bucket histogram: `bounds` are the inclusive upper edges of the
/// finite buckets (strictly increasing); one implicit +Inf bucket catches
/// the tail. `observe` is one bucket search plus three relaxed atomic ops.
class histogram {
 public:
  explicit histogram(std::vector<double> bounds);

  void observe(double v);

  struct snapshot_t {
    std::vector<double> bounds;        ///< finite upper edges
    std::vector<std::uint64_t> counts; ///< bounds.size()+1 buckets (last: +Inf)
    std::uint64_t count = 0;           ///< total observations
    double sum = 0.0;                  ///< sum of observed values
  };
  snapshot_t snapshot() const;
  void reset();

  const std::vector<double>& bounds() const { return bounds_; }

  /// Default latency buckets in seconds: 10 us .. 30 s, roughly
  /// logarithmic — fits both solver kernels and HTTP round trips.
  static std::vector<double> latency_buckets_seconds();

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> counts_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_bits_{0};
};

enum class metric_kind { counter, gauge, histogram };

/// One series of the registry snapshot.
struct metric_sample {
  std::string name;
  label_set labels;
  metric_kind kind = metric_kind::counter;
  double value = 0.0;              ///< counter / gauge
  histogram::snapshot_t hist;      ///< kind == histogram only
};

/// Thread-safe registry of named metric families. Lookup takes a mutex;
/// the returned references stay valid (and lock-free to update) for the
/// registry's lifetime, including across `reset()`.
class registry {
 public:
  registry() = default;
  registry(const registry&) = delete;
  registry& operator=(const registry&) = delete;

  /// The process-wide registry every subsystem records into.
  static registry& global();

  /// Find or create a series. A name registered under one kind cannot be
  /// re-registered under another (`bad_argument`). The first histogram
  /// registration of a name fixes its bucket bounds; `bounds` empty means
  /// `latency_buckets_seconds()`.
  counter& get_counter(const std::string& name, const label_set& labels = {});
  gauge& get_gauge(const std::string& name, const label_set& labels = {});
  histogram& get_histogram(const std::string& name, const label_set& labels = {},
                           const std::vector<double>& bounds = {});

  /// Typed snapshot of every series, sorted by (name, labels).
  std::vector<metric_sample> samples() const;

  /// Sum of one counter family across its label sets (0 when absent).
  std::uint64_t counter_total(const std::string& name) const;

  /// Prometheus text exposition of the whole registry. Dotted metric names
  /// become `boson_`-prefixed underscore names; histogram series get the
  /// `_bucket{le=...}` / `_sum` / `_count` expansion.
  std::string to_prometheus() const;

  /// One-line digest of every non-zero counter and gauge (shutdown logs).
  std::string digest() const;

  /// Zero every value; series stay registered and references stay valid.
  void reset();

 private:
  struct series {
    std::unique_ptr<counter> c;
    std::unique_ptr<gauge> g;
    std::unique_ptr<histogram> h;
    label_set labels;
  };
  struct family {
    metric_kind kind = metric_kind::counter;
    std::map<std::string, series> by_labels;  ///< key: rendered label string
  };

  family& family_of(const std::string& name, metric_kind kind);

  mutable std::mutex mutex_;
  std::map<std::string, family> families_;
};

/// `name{k="v",...}` (or just `name`) — the rendered series identity used by
/// the exposition formats and the registry's internal keys.
std::string render_labels(const label_set& labels);

/// Prometheus-legal name: non-[a-zA-Z0-9_] mapped to '_', prefixed with
/// `boson_` unless already so prefixed.
std::string prometheus_name(const std::string& name);

}  // namespace boson::obs
