// Tests of the net module: the incremental HTTP/1.1 request/response
// parsers (fed byte-by-byte, chunked framing, percent/query decoding, every
// http_limits ceiling), the serializers, URL parsing, and the blocking
// loopback server — keep-alive pipelining, concurrent clients, a
// malformed-request corpus speaking raw bytes (a well-formed client cannot
// produce a bad request), handler exception mapping, and clean stop(). Every
// server binds port 0 (ephemeral), so the suite cannot collide with itself
// or anything else on the machine.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "net/http.h"
#include "net/http_client.h"
#include "net/http_server.h"

namespace boson {
namespace {

using namespace boson::net;

/// EXPECT that `fn` throws `Exception` whose message contains `fragment`.
template <class Exception, class Fn>
void expect_throw_with(Fn&& fn, const std::string& fragment) {
  try {
    fn();
    FAIL() << "expected an exception containing \"" << fragment << "\"";
  } catch (const Exception& e) {
    EXPECT_NE(std::string(e.what()).find(fragment), std::string::npos)
        << "message was: " << e.what();
  }
}

/// Parse a full request in one feed; must consume everything and complete.
http_request parse_request(const std::string& bytes, http_limits limits = {}) {
  http_request_parser parser(limits);
  const std::size_t used = parser.feed(bytes.data(), bytes.size());
  EXPECT_EQ(used, bytes.size());
  EXPECT_TRUE(parser.complete());
  return parser.request();
}

// ------------------------------------------------------- request parser ----

TEST(http_parser, parses_a_simple_get) {
  const http_request req =
      parse_request("GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n");
  EXPECT_EQ(req.method, "GET");
  EXPECT_EQ(req.target, "/healthz");
  EXPECT_EQ(req.path, "/healthz");
  EXPECT_TRUE(req.query.empty());
  EXPECT_TRUE(req.body.empty());
  EXPECT_EQ(req.version_minor, 1);
  ASSERT_NE(req.header("host"), nullptr);  // case-insensitive
  EXPECT_EQ(*req.header("HOST"), "x");
  EXPECT_TRUE(req.keep_alive());
}

TEST(http_parser, byte_by_byte_feeding_reaches_the_same_message) {
  const std::string bytes =
      "POST /v1/campaigns?x=1 HTTP/1.1\r\nContent-Length: 4\r\n\r\nbody";
  http_request_parser parser;
  for (const char c : bytes) {
    ASSERT_FALSE(parser.complete());
    EXPECT_EQ(parser.feed(&c, 1), 1u);
  }
  ASSERT_TRUE(parser.complete());
  EXPECT_EQ(parser.request().body, "body");
  EXPECT_EQ(parser.request().query.at("x"), "1");
}

TEST(http_parser, decodes_query_and_percent_escapes) {
  const http_request req = parse_request(
      "GET /v1/x%20y?name=a%2Fb&flag&n=2 HTTP/1.1\r\n\r\n");
  EXPECT_EQ(req.path, "/v1/x y");
  EXPECT_EQ(req.query.at("name"), "a/b");
  EXPECT_EQ(req.query.at("flag"), "");
  EXPECT_EQ(req.query.at("n"), "2");
  expect_throw_with<http_error>([] { percent_decode("%zz"); }, "escape");
}

TEST(http_parser, decodes_chunked_request_bodies) {
  const http_request req = parse_request(
      "POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
      "4\r\nWiki\r\n5\r\npedia\r\n0\r\n\r\n");
  EXPECT_EQ(req.body, "Wikipedia");
}

TEST(http_parser, chunk_extensions_are_tolerated) {
  const http_request req = parse_request(
      "POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
      "4;ext=1\r\nWiki\r\n0\r\n\r\n");
  EXPECT_EQ(req.body, "Wiki");
}

TEST(http_parser, leftover_bytes_stay_for_the_next_message) {
  const std::string two =
      "GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n";
  http_request_parser parser;
  const std::size_t used = parser.feed(two.data(), two.size());
  ASSERT_TRUE(parser.complete());
  EXPECT_EQ(parser.request().path, "/a");
  parser.reset();
  EXPECT_EQ(parser.feed(two.data() + used, two.size() - used), two.size() - used);
  ASSERT_TRUE(parser.complete());
  EXPECT_EQ(parser.request().path, "/b");
}

TEST(http_parser, started_distinguishes_idle_from_mid_request) {
  http_request_parser parser;
  EXPECT_FALSE(parser.started());
  const char byte = 'G';
  parser.feed(&byte, 1);
  EXPECT_TRUE(parser.started());
}

TEST(http_parser, http10_defaults_to_close) {
  const http_request req = parse_request("GET / HTTP/1.0\r\n\r\n");
  EXPECT_FALSE(req.keep_alive());
  const http_request keep = parse_request(
      "GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n");
  EXPECT_TRUE(keep.keep_alive());
  const http_request close = parse_request(
      "GET / HTTP/1.1\r\nConnection: close\r\n\r\n");
  EXPECT_FALSE(close.keep_alive());
}

// Protocol violations carry the status the server must answer with.
struct violation {
  const char* bytes;
  int status;
};

TEST(http_parser, violations_carry_their_status_code) {
  const std::vector<violation> corpus = {
      {"GARBAGE\r\n\r\n", 400},                                    // no target
      {"GET /x HTTP/2.0\r\n\r\n", 505},                            // version
      {"GET /x HTTP/1.1\r\nNoColon\r\n\r\n", 400},                 // bad header
      {"GET /x HTTP/1.1\r\nContent-Length: -1\r\n\r\n", 400},      // bad length
      {"GET /x HTTP/1.1\r\nContent-Length: 9999999999999999999\r\n\r\n", 413},
      {"POST /x HTTP/1.1\r\nTransfer-Encoding: gzip\r\n\r\n", 501},
      {"POST /x HTTP/1.1\r\nContent-Length: 1\r\nTransfer-Encoding: chunked\r\n\r\n",
       400},  // ambiguous framing
      {"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\nzz\r\n", 400},
  };
  for (const violation& v : corpus) {
    http_request_parser parser;
    const std::string bytes = v.bytes;
    try {
      parser.feed(bytes.data(), bytes.size());
      FAIL() << "expected http_error for: " << v.bytes;
    } catch (const http_error& e) {
      EXPECT_EQ(e.status(), v.status) << "for: " << v.bytes;
    }
  }
}

TEST(http_parser, limits_bound_every_dimension) {
  http_limits tight;
  tight.max_start_line = 32;
  tight.max_header_bytes = 64;
  tight.max_headers = 2;
  tight.max_body_bytes = 8;

  const auto feed = [&tight](const std::string& bytes) {
    http_request_parser parser(tight);
    parser.feed(bytes.data(), bytes.size());
  };
  try {
    feed("GET /" + std::string(64, 'x') + " HTTP/1.1\r\n\r\n");
    FAIL() << "oversized start line accepted";
  } catch (const http_error& e) {
    EXPECT_EQ(e.status(), 431);
  }
  try {
    feed("GET /x HTTP/1.1\r\nA: " + std::string(128, 'y') + "\r\n\r\n");
    FAIL() << "oversized header block accepted";
  } catch (const http_error& e) {
    EXPECT_EQ(e.status(), 431);
  }
  try {
    feed("GET /x HTTP/1.1\r\nA: 1\r\nB: 2\r\nC: 3\r\n\r\n");
    FAIL() << "too many headers accepted";
  } catch (const http_error& e) {
    EXPECT_EQ(e.status(), 431);
  }
  try {
    feed("POST /x HTTP/1.1\r\nContent-Length: 9\r\n\r\n123456789");
    FAIL() << "oversized body accepted";
  } catch (const http_error& e) {
    EXPECT_EQ(e.status(), 413);
  }
  // Chunked bodies hit the same ceiling even though no single chunk does.
  try {
    feed("POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
         "6\r\nabcdef\r\n6\r\nghijkl\r\n0\r\n\r\n");
    FAIL() << "oversized chunked body accepted";
  } catch (const http_error& e) {
    EXPECT_EQ(e.status(), 413);
  }
}

// ---------------------------------------------------- response round-trip ----

TEST(http_response, serializes_and_parses_back) {
  http_response res;
  res.status = 201;
  res.body = "{\"ok\":true}";
  res.headers.emplace_back("X-Boson-Cursor", "42");
  const std::string wire = serialize(res, /*keep_alive=*/true);

  http_response_parser parser;
  EXPECT_EQ(parser.feed(wire.data(), wire.size()), wire.size());
  ASSERT_TRUE(parser.complete());
  EXPECT_EQ(parser.response().status, 201);
  EXPECT_EQ(parser.response().body, res.body);
  ASSERT_NE(parser.response().header("x-boson-cursor"), nullptr);
  EXPECT_EQ(*parser.response().header("x-boson-cursor"), "42");
  EXPECT_TRUE(parser.keep_alive());
}

TEST(http_response, chunked_framing_is_one_chunk_per_line) {
  http_response res;
  res.chunked = true;
  res.body = "{\"a\":1}\n{\"b\":2}\n";
  const std::string wire = serialize(res, false);
  EXPECT_NE(wire.find("Transfer-Encoding: chunked"), std::string::npos);
  // Each journal record is its own chunk: "8\r\n{\"a\":1}\n\r\n".
  EXPECT_NE(wire.find("8\r\n{\"a\":1}\n\r\n"), std::string::npos);
  EXPECT_NE(wire.find("8\r\n{\"b\":2}\n\r\n"), std::string::npos);

  http_response_parser parser;
  parser.feed(wire.data(), wire.size());
  ASSERT_TRUE(parser.complete());
  EXPECT_EQ(parser.response().body, res.body);
}

TEST(http_response, chunked_downgrades_to_content_length_for_http_1_0_peers) {
  http_response res;
  res.chunked = true;
  res.body = "{\"a\":1}\n{\"b\":2}\n";
  // An HTTP/1.0 request cannot parse chunked framing: same body, but framed
  // with Content-Length.
  const std::string wire = serialize(res, false, /*version_minor=*/0);
  EXPECT_EQ(wire.find("Transfer-Encoding"), std::string::npos);
  EXPECT_NE(wire.find("Content-Length: 16\r\n"), std::string::npos);

  http_response_parser parser;
  parser.feed(wire.data(), wire.size());
  ASSERT_TRUE(parser.complete());
  EXPECT_EQ(parser.response().body, res.body);
}

TEST(http_response, eof_framed_bodies_complete_on_finish) {
  const std::string wire = "HTTP/1.0 200 OK\r\n\r\npartial";
  http_response_parser parser;
  parser.feed(wire.data(), wire.size());
  EXPECT_FALSE(parser.complete());
  parser.finish();
  ASSERT_TRUE(parser.complete());
  EXPECT_EQ(parser.response().body, "partial");
}

TEST(http_response, truncated_content_length_throws_on_finish) {
  const std::string wire = "HTTP/1.1 200 OK\r\nContent-Length: 10\r\n\r\nshort";
  http_response_parser parser;
  parser.feed(wire.data(), wire.size());
  expect_throw_with<http_error>([&parser] { parser.finish(); }, "mid-response");
}

TEST(http_error_envelope, is_the_uniform_json_shape) {
  const http_response res = error_response(404, "no route for '/nope'");
  EXPECT_EQ(res.status, 404);
  EXPECT_EQ(res.body,
            "{\"error\":{\"status\":404,\"message\":\"no route for '/nope'\"}}\n");
}

// ----------------------------------------------------------- url parsing ----

TEST(url_parts, parses_host_port_target) {
  const url_parts full = url_parts::parse("http://127.0.0.1:8080/v1/x");
  EXPECT_EQ(full.host, "127.0.0.1");
  EXPECT_EQ(full.port, 8080);
  EXPECT_EQ(full.target, "/v1/x");

  const url_parts defaults = url_parts::parse("http://localhost");
  EXPECT_EQ(defaults.host, "localhost");
  EXPECT_EQ(defaults.port, 80);
  EXPECT_EQ(defaults.target, "/");

  expect_throw_with<bad_argument>(
      [] { url_parts::parse("https://x"); }, "http://");
  expect_throw_with<bad_argument>(
      [] { url_parts::parse("http://x:notaport/"); }, "port");
  expect_throw_with<bad_argument>(
      [] { url_parts::parse("http://:80/"); }, "host");
}

// ------------------------------------------------------- loopback server ----

/// A server echoing method, path, and body — the loopback fixture.
class loopback : public testing::Test {
 protected:
  void SetUp() override {
    http_server_options options;  // port 0: ephemeral
    options.threads = 4;
    server_ = std::make_unique<http_server>(options, [this](const http_request& req) {
      ++handled_;
      if (req.path == "/boom") throw std::runtime_error("handler exploded");
      if (req.path == "/bad") throw bad_argument("no such thing");
      if (req.path == "/teapot") throw http_error(418, "short and stout");
      http_response res;
      res.content_type = "text/plain";
      res.body = req.method + " " + req.path + " " + req.body;
      return res;
    });
    server_->start();
  }

  std::unique_ptr<http_server> server_;
  std::atomic<std::size_t> handled_{0};
};

TEST_F(loopback, serves_get_and_post) {
  http_client client(server_->base_url());
  const http_response get = client.get("/hello");
  EXPECT_EQ(get.status, 200);
  EXPECT_EQ(get.body, "GET /hello ");
  const http_response post = client.post("/submit", "payload");
  EXPECT_EQ(post.status, 200);
  EXPECT_EQ(post.body, "POST /submit payload");
}

TEST_F(loopback, handler_exceptions_map_to_status_codes) {
  http_client client(server_->base_url());
  EXPECT_EQ(client.get("/boom").status, 500);
  EXPECT_EQ(client.get("/bad").status, 400);
  EXPECT_EQ(client.get("/teapot").status, 418);
  // The server survives all of it.
  EXPECT_EQ(client.get("/ok").status, 200);
  const http_server_stats stats = server_->stats();
  EXPECT_EQ(stats.requests, 4u);
  EXPECT_EQ(stats.protocol_errors, 0u);
}

TEST_F(loopback, keep_alive_pipelining_reuses_one_connection) {
  // Two pipelined requests in one write; both answers come back in order on
  // the same connection.
  const std::string two =
      "GET /a HTTP/1.1\r\nHost: x\r\n\r\n"
      "GET /b HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n";
  const std::string answer = raw_exchange("127.0.0.1", server_->port(), two, 10.0);
  const std::size_t first = answer.find("GET /a ");
  const std::size_t second = answer.find("GET /b ");
  EXPECT_NE(first, std::string::npos);
  EXPECT_NE(second, std::string::npos);
  EXPECT_LT(first, second);
  EXPECT_EQ(server_->stats().accepted, 1u);
  EXPECT_EQ(server_->stats().requests, 2u);
}

TEST_F(loopback, eight_concurrent_clients_all_get_their_own_answers) {
  std::vector<std::thread> clients;
  std::atomic<std::size_t> failures{0};
  for (int t = 0; t < 8; ++t) {
    clients.emplace_back([this, t, &failures] {
      http_client client(server_->base_url());
      for (int i = 0; i < 16; ++i) {
        const std::string path = "/t" + std::to_string(t) + "/" + std::to_string(i);
        const http_response res = client.get(path);
        if (res.status != 200 || res.body != "GET " + path + " ") ++failures;
      }
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0u);
  EXPECT_EQ(handled_.load(), 8u * 16u);
}

TEST_F(loopback, malformed_requests_get_4xx_json_envelopes) {
  const struct {
    std::string bytes;
    std::string expect;  // fragment of the response's first line / body
  } corpus[] = {
      {"GARBAGE\r\n\r\n", "HTTP/1.1 400 "},
      {"GET /x HTTP/2.0\r\n\r\n", "HTTP/1.1 505 "},
      {"GET /x HTTP/1.1\r\nNoColon\r\n\r\n", "HTTP/1.1 400 "},
      {"POST /x HTTP/1.1\r\nTransfer-Encoding: gzip\r\n\r\n", "HTTP/1.1 501 "},
      {"POST /x HTTP/1.1\r\nContent-Length: 99999999999\r\n\r\n", "HTTP/1.1 413 "},
      {"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\nzz\r\n", "HTTP/1.1 400 "},
  };
  std::uint64_t sent = 0;
  for (const auto& bad : corpus) {
    const std::string answer =
        raw_exchange("127.0.0.1", server_->port(), bad.bytes, 10.0);
    ++sent;
    EXPECT_EQ(answer.rfind(bad.expect, 0), 0u)
        << "request " << bad.bytes.substr(0, 40) << " answered: "
        << answer.substr(0, 60);
    // Every transport error wears the uniform JSON envelope.
    EXPECT_NE(answer.find("{\"error\":{\"status\":"), std::string::npos);
  }
  EXPECT_EQ(server_->stats().protocol_errors, sent);
  EXPECT_EQ(handled_.load(), 0u);  // none of it reached the handler
}

TEST(http_server_abuse, oversized_start_line_answers_431) {
  // Tight limit so the whole abusive request still fits one server read;
  // the 431 must come back before the connection closes.
  http_server_options options;
  options.limits.max_start_line = 64;
  http_server server(options, [](const http_request&) { return http_response{}; });
  server.start();
  const std::string answer = raw_exchange(
      "127.0.0.1", server.port(),
      "GET /" + std::string(200, 'a') + " HTTP/1.1\r\n\r\n", 10.0);
  EXPECT_EQ(answer.rfind("HTTP/1.1 431 ", 0), 0u) << answer.substr(0, 60);
  EXPECT_EQ(server.stats().protocol_errors, 1u);
}

TEST_F(loopback, oversized_body_is_rejected_even_with_honest_length) {
  http_server_options options;
  options.limits.max_body_bytes = 64;
  http_server small(options, [](const http_request&) { return http_response{}; });
  small.start();
  http_client client(small.base_url());
  const http_response res = client.post("/x", std::string(1024, 'b'));
  EXPECT_EQ(res.status, 413);
}

TEST_F(loopback, stop_is_clean_and_idempotent) {
  http_client client(server_->base_url());
  EXPECT_EQ(client.get("/x").status, 200);
  server_->stop();
  server_->stop();  // idempotent
  EXPECT_FALSE(server_->running());
  // The port no longer answers.
  EXPECT_THROW(client.get("/x"), io_error);
}

TEST(http_server_lifecycle, ephemeral_ports_do_not_collide) {
  const auto noop = [](const http_request&) { return http_response{}; };
  http_server a({}, noop);
  http_server b({}, noop);
  a.start();
  b.start();
  EXPECT_NE(a.port(), b.port());
  EXPECT_NE(a.port(), 0);
}

TEST(http_server_lifecycle, queue_overflow_answers_503) {
  // threads=1 and max_queue=1: hold the single worker hostage with a slow
  // request, fill the queue, and the next connection must be 503'd inline.
  http_server_options options;
  options.threads = 1;
  options.max_queue = 1;
  std::atomic<bool> release{false};
  http_server server(options, [&release](const http_request& req) {
    if (req.path == "/slow")
      while (!release.load()) std::this_thread::sleep_for(std::chrono::milliseconds(1));
    return http_response{};
  });
  server.start();

  std::thread slow([&server] {
    raw_exchange("127.0.0.1", server.port(),
                 "GET /slow HTTP/1.1\r\nConnection: close\r\n\r\n", 10.0);
  });
  // Wait until the worker picked up the slow request.
  while (server.stats().requests == 0)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));

  // One connection parks in the queue; the next one must bounce. Connections
  // race the acceptor, so allow a few tries for the 503 to materialize.
  std::string bounced;
  std::vector<std::thread> parked;
  for (int i = 0; i < 4 && bounced.empty(); ++i) {
    parked.emplace_back([&server] {
      raw_exchange("127.0.0.1", server.port(),
                   "GET /x HTTP/1.1\r\nConnection: close\r\n\r\n", 10.0);
    });
    const std::string answer = raw_exchange(
        "127.0.0.1", server.port(), "GET /x HTTP/1.1\r\nConnection: close\r\n\r\n", 2.0);
    if (answer.rfind("HTTP/1.1 503 ", 0) == 0) bounced = answer;
  }
  EXPECT_FALSE(bounced.empty()) << "queue overflow never answered 503";
  EXPECT_GE(server.stats().rejected, 1u);

  release.store(true);
  slow.join();
  for (std::thread& t : parked) t.join();
  server.stop();
}

}  // namespace
}  // namespace boson
