#include "api/observer.h"

#include "common/log.h"

namespace boson::api {

void log_observer::on_event(const progress_event& event) {
  // Each branch renders the whole line in one concat and hands it to the
  // mutex-serialized log_line, so concurrent jobs cannot interleave mid-line.
  const std::string& p = prefix_;
  switch (event.kind) {
    case progress_event::phase::experiment_started:
      log_info(p, "session[", event.experiment, "]: started");
      break;
    case progress_event::phase::stage_started:
      log_info(p, "session[", event.experiment, "]: ", event.message);
      break;
    case progress_event::phase::iteration_finished:
      log_debug(p, "session[", event.experiment, "]: iteration ", event.iteration + 1, "/",
                event.total_iterations, " loss=", event.loss);
      break;
    case progress_event::phase::artifact_written:
      log_info(p, "session[", event.experiment, "]: wrote ", event.message);
      break;
    case progress_event::phase::experiment_finished:
      log_info(p, "session[", event.experiment, "]: finished");
      break;
  }
}

}  // namespace boson::api
