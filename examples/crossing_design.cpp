// Waveguide-crossing design study: conventional density-based inverse design
// versus BOSON-1 on the same benchmark.
//
// The density baseline produces a numerically plausible design whose fine
// features do not survive lithography; BOSON-1 optimizes inside the
// fabricable subspace, so its post-fabrication performance holds up. This
// example reproduces that comparison (one row of the paper's Table I) and
// also reports crosstalk, which the crossing's dense objectives constrain.

#include <cstdio>

#include "core/methods.h"
#include "io/pgm.h"
#include "io/table.h"

int main() {
  using namespace boson;

  dev::device_spec device = dev::make_crossing();
  core::experiment_config cfg = core::default_config();

  io::console_table table(
      {"method", "pre-fab T", "post-fab T", "post-fab crosstalk", "post-fab reflection"});

  for (const auto id : {core::method_id::density, core::method_id::boson}) {
    const core::method_result r = core::run_method(device, id, cfg);
    table.add_row({r.method, io::console_table::num(r.prefab_fom, 4),
                   io::console_table::num(r.postfab.fom_mean, 4),
                   io::console_table::num(r.postfab.metric_means.at("crosstalk"), 4),
                   io::console_table::num(r.postfab.metric_means.at("reflection"), 4)});
    io::write_pgm("crossing_" + r.method + "_mask.pgm", r.mask);
  }

  std::printf("\n");
  table.print("Waveguide crossing: conventional density flow vs BOSON-1");
  std::printf("\nMasks written to crossing_<method>_mask.pgm\n");
  return 0;
}
