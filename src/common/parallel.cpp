#include "common/parallel.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "common/env.h"

namespace boson {

std::size_t worker_count() {
  // Deliberately not cached: BOSON_THREADS is consulted on every call so a
  // test or driver can change the worker budget between parallel sections.
  const std::size_t hw = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  const long requested = env_int("BOSON_THREADS", static_cast<long>(hw));
  return static_cast<std::size_t>(std::clamp<long>(requested, 1, static_cast<long>(hw)));
}

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  const std::size_t workers = std::min(worker_count(), n);
  if (workers <= 1) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }

  // Dynamic scheduling: workers pull the next index from a shared atomic
  // counter, so a long-running index never strands the remaining work on one
  // thread. After the first failure, not-yet-started indices are skipped.
  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex error_mutex;

  auto run = [&] {
    for (;;) {
      if (failed.load(std::memory_order_relaxed)) return;
      const std::size_t i = next.fetch_add(1);
      if (i >= n) return;
      try {
        body(i);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers - 1);
  for (std::size_t w = 1; w < workers; ++w) pool.emplace_back(run);
  run();
  for (auto& t : pool) t.join();

  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace boson
