#pragma once

#include <cstddef>

#include "common/types.h"

namespace boson {

/// Stretched-coordinate PML specification. A polynomial conductivity profile
/// sigma(u) = sigma_max * (u / d)^order ramps over `cells` grid cells at each
/// boundary; sigma_max is derived from the target normal-incidence
/// reflection `r0`.
struct pml_spec {
  std::size_t cells = 12;
  double order = 3.0;
  double r0 = 1e-8;
};

/// Complex coordinate-stretch factors s(u) = 1 + i sigma(u) / k0 along one
/// axis of n cells:
///  - `center[i]` samples s at the center of cell i (n entries);
///  - `iface[i]`  samples s at the boundary between cells i-1 and i
///    (n + 1 entries; iface[0] and iface[n] sit on the domain edge).
struct stretch_profile {
  cvec center;
  cvec iface;
};

/// Build the stretch factors along one axis of length n with spacing d for
/// wavenumber k0. PML occupies `spec.cells` cells at both ends.
stretch_profile build_stretch(std::size_t n, double d, double k0, const pml_spec& spec);

}  // namespace boson
