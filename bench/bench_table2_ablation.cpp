// Table II of the paper: ablation study of BOSON-1 on the optical isolator.
//
// Each row removes one ingredient: dense-objective landscape reshaping,
// conditional subspace relaxation, adaptive (axial + worst-case) sampling
// (replaced by the exhaustive 27-corner sweep), and the light-concentrated
// initialization (replaced by random). Degradation is relative contrast
// worsening versus full BOSON-1. The variants run as declarative specs
// through one boson::api session.

#include "api/session.h"
#include "bench_common.h"

int main() {
  using namespace boson;

  const stopwatch total;

  bench::print_banner("Table II: ablation study of BOSON-1 (optical isolator)");
  {
    const core::experiment_config cfg = api::session::config_for(api::experiment_spec{});
    std::printf("(iterations=%zu, MC samples=%zu, seed=%llu)\n", cfg.scaled_iterations(),
                cfg.scaled_samples(), static_cast<unsigned long long>(cfg.seed));
  }

  const std::vector<std::pair<std::string, const char*>> variants{
      {"boson", "BOSON-1"},
      {"boson_no_reshape", "- loss landscape reshaping"},
      {"boson_no_relax", "- subspace relax"},
      {"boson_exhaustive", "exhaustive sample"},
      {"boson_random_init", "random init"},
  };

  io::csv_writer csv("table2_ablation.csv",
                     {"model", "fwd", "bwd", "contrast", "degradation_pct"});
  io::console_table table({"model", "[fwd, bwd]", "contrast (lower better)", "degradation"});

  api::session_options so;
  so.write_artifacts = false;
  api::session session(so);

  double reference_contrast = 0.0;
  for (const auto& [method, label] : variants) {
    api::experiment_spec spec;
    spec.name = "isolator_" + method;
    spec.device = "isolator";
    spec.method = method;
    const core::method_result r = session.run(spec).method;
    const double contrast = r.postfab.fom_mean;
    const bool is_reference = method == "boson";
    if (is_reference) reference_contrast = contrast;
    // Degradation: how much of the variant's contrast is excess over full
    // BOSON-1 (the paper's definition yields 0..100%).
    const double degradation =
        is_reference
            ? 0.0
            : std::max(0.0, (contrast - reference_contrast) / std::max(contrast, 1e-12));
    table.add_row({label, bench::fwd_bwd_cell(r.postfab.metric_means),
                   io::console_table::sci(contrast),
                   is_reference
                       ? std::string("N/A")
                       : io::console_table::num(100.0 * degradation, 0) + "%"});
    csv.write_row(label, {r.postfab.metric_means.at("fwd_transmission"),
                          r.postfab.metric_means.at("bwd_transmission"), contrast,
                          100.0 * degradation});
  }

  std::printf("\n");
  table.print("Ablation (post-fab Monte-Carlo means)");
  std::printf("raw rows: table2_ablation.csv\n");
  bench::print_runtime(total);
  return 0;
}
