#include "service/registry.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <system_error>

#include "common/log.h"
#include "runtime/jsonl.h"
#include "runtime/scheduler.h"
#include "store/segment_log.h"

namespace boson::service {

io::json_value campaign_record::to_json() const {
  io::json_value v = io::json_value::object();
  v["id"] = id;
  v["tenant"] = tenant;
  v["name"] = name;
  v["state"] = state;
  v["dir"] = dir;
  v["total_jobs"] = total_jobs;
  v["submitted_at"] = submitted_at;
  v["updated_at"] = updated_at;
  if (!detail.empty()) v["detail"] = detail;
  return v;
}

campaign_record campaign_record::from_json(const io::json_value& v) {
  campaign_record r;
  r.id = v.at("id").as_string();
  r.tenant = v.at("tenant").as_string();
  r.name = v.at("name").as_string();
  r.state = v.at("state").as_string();
  r.dir = v.at("dir").as_string();
  r.total_jobs = static_cast<std::size_t>(v.at("total_jobs").as_number());
  r.submitted_at = v.at("submitted_at").as_number();
  r.updated_at = v.at("updated_at").as_number();
  if (const io::json_value* d = v.find("detail")) r.detail = d->as_string();
  return r;
}

bool valid_tenant(const std::string& tenant) {
  if (tenant.empty() || tenant.size() > 32) return false;
  for (const char c : tenant) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                    c == '-' || c == '_';
    if (!ok) return false;
  }
  return true;
}

namespace {

std::string legacy_manifest_path(const std::string& data_dir) {
  return (std::filesystem::path(data_dir) / "registry.jsonl").string();
}

std::string ledger_dir(const std::string& data_dir) {
  return (std::filesystem::path(data_dir) / "registry").string();
}

/// Ids this registry minted are all 'c<digits>'; anything else is a corrupt
/// or foreign ledger record — name it instead of letting std::stoul abort
/// the fold with a context-free invalid_argument.
std::size_t id_number(const std::string& id, const std::string& where) {
  if (id.size() < 2 || id[0] != 'c' ||
      id.find_first_not_of("0123456789", 1) != std::string::npos)
    throw io_error("campaign_registry: malformed campaign id '" + id + "' in " +
                   where);
  try {
    return static_cast<std::size_t>(std::stoul(id.substr(1)));
  } catch (const std::exception&) {  // out_of_range: an absurd digit run
    throw io_error("campaign_registry: campaign id '" + id + "' in " + where +
                   " is out of range");
  }
}

/// The ledger's compaction fold: the latest record per id, in original
/// order. Tombstones survive the fold — a compacted ledger must still prove
/// which ids were minted (id monotonicity) and which campaigns were deleted.
std::vector<std::string> registry_fold(const std::vector<std::string>& lines) {
  std::map<std::string, std::size_t> last;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    try {
      last[io::json_value::parse(lines[i]).at("id").as_string()] = i;
    } catch (...) {
      return lines;  // unparseable history: degrade to a pure segment merge
    }
  }
  std::vector<std::size_t> keep;
  keep.reserve(last.size());
  for (const auto& [id, i] : last) keep.push_back(i);
  std::sort(keep.begin(), keep.end());
  std::vector<std::string> kept;
  kept.reserve(keep.size());
  for (const std::size_t i : keep) kept.push_back(lines[i]);
  return kept;
}

}  // namespace

campaign_registry::campaign_registry(options opts) : options_(std::move(opts)) {
  require(!options_.data_dir.empty(), "campaign_registry: data_dir must not be empty");
  require(options_.tenant_quota >= 1, "campaign_registry: tenant quota must be >= 1");
  std::filesystem::create_directories(options_.data_dir);

  // Modest rotation keeps the ledger's replay cost proportional to live
  // campaigns (every state flip is one more line until the fold runs).
  store::log_options lo;
  lo.segment_bytes = 256 * 1024;
  lo.segment_records = 1024;
  lo.compact_segments = 4;
  log_ = std::make_unique<store::segment_log>(ledger_dir(options_.data_dir), lo,
                                              "registry");

  // One-shot migration of a pre-store data root: fold the legacy file's
  // complete records into the ledger, then move it aside. Idempotent — a
  // crash mid-migration re-appends the same latest-wins records, and a
  // concurrent migrating process just loses the rename race.
  const std::string legacy = legacy_manifest_path(options_.data_dir);
  std::error_code ec;
  if (std::filesystem::exists(legacy, ec) && std::filesystem::file_size(legacy, ec) > 0) {
    log_->with_exclusive([&] {
      // Replay first, append after: replay_jsonl's torn-tail contract
      // swallows a callback throw on the final line, and a corrupt id must
      // fail the migration loudly (blaming the legacy file) wherever it
      // sits — never silently enter the ledger.
      std::vector<io::json_value> legacy_records;
      runtime::replay_jsonl(legacy, "campaign_registry",
                            [&](const io::json_value& record) {
                              legacy_records.push_back(record);
                            });
      std::size_t migrated = 0;
      for (const io::json_value& record : legacy_records) {
        id_number(record.at("id").as_string(), legacy);
        log_->append(record.dump(-1));
        ++migrated;
      }
      std::filesystem::rename(legacy, legacy + ".migrated", ec);
      log_info("campaign_registry: migrated ", migrated, " records from ", legacy);
    });
  }

  const std::lock_guard<std::mutex> lock(mutex_);
  sync_locked();
}

campaign_registry::~campaign_registry() = default;

void campaign_registry::sync_locked() const {
  const store::read_batch batch = log_->read_since(cursor_);
  const std::string where = ledger_dir(options_.data_dir);
  for (std::size_t i = 0; i < batch.lines.size(); ++i) {
    campaign_record r;
    try {
      r = campaign_record::from_json(io::json_value::parse(batch.lines[i]));
    } catch (const error& e) {
      throw io_error("campaign_registry: malformed ledger record in " + where +
                     ": " + e.what());
    }
    next_id_ = std::max(next_id_, id_number(r.id, where) + 1);
    const auto it = index_.find(r.id);
    if (it != index_.end()) {
      records_[it->second] = std::move(r);
    } else {
      index_.emplace(r.id, records_.size());
      records_.push_back(std::move(r));
    }
    cursor_ = batch.cursors[i];
  }
  cursor_ = batch.end_cursor;
}

void campaign_registry::append_locked(const campaign_record& record) const {
  log_->append(record.to_json().dump(-1));
  if (log_->should_compact()) log_->compact(&registry_fold);
}

campaign_record campaign_registry::submit(const std::string& tenant,
                                          const runtime::campaign_spec& spec,
                                          double now) {
  require(valid_tenant(tenant), "campaign_registry: invalid tenant '" + tenant +
                                    "' (lowercase [a-z0-9_-], at most 32 chars)");

  const std::lock_guard<std::mutex> lock(mutex_);
  campaign_record record;
  // The whole submit — sync, quota check, id mint, append — is one
  // exclusive-lock section, so concurrent submitters in *other processes*
  // serialize here too: ids never collide and quotas hold fleet-wide.
  log_->with_exclusive([&] {
    sync_locked();
    std::size_t active = 0;
    for (const campaign_record& r : records_)
      if (r.tenant == tenant && r.state != "deleted" && !r.terminal()) ++active;
    if (active >= options_.tenant_quota)
      throw quota_error("campaign_registry: tenant '" + tenant +
                        "' is at its quota of " + std::to_string(options_.tenant_quota) +
                        " queued/running campaigns");

    char id[16];
    std::snprintf(id, sizeof id, "c%04zu", next_id_++);
    record.id = id;
    record.tenant = tenant;
    record.name = spec.name;
    record.state = "queued";
    record.dir =
        (std::filesystem::path(options_.data_dir) / tenant / record.id).string();
    record.total_jobs = spec.job_count();
    record.submitted_at = now;
    record.updated_at = now;

    std::filesystem::create_directories(record.dir);
    spec.to_json().write_file(runtime::campaign_spec_path(record.dir));
    append_locked(record);
    index_.emplace(record.id, records_.size());
    records_.push_back(record);
  });
  return record;
}

const campaign_record* campaign_registry::find_locked(const std::string& tenant,
                                                      const std::string& id) const {
  const auto it = index_.find(id);
  if (it == index_.end()) return nullptr;
  const campaign_record& r = records_[it->second];
  if (r.tenant != tenant || r.state == "deleted") return nullptr;
  return &r;
}

std::optional<campaign_record> campaign_registry::find(const std::string& tenant,
                                                       const std::string& id) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  sync_locked();
  const campaign_record* r = find_locked(tenant, id);
  return r ? std::optional<campaign_record>(*r) : std::nullopt;
}

std::vector<campaign_record> campaign_registry::list(const std::string& tenant) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  sync_locked();
  std::vector<campaign_record> out;
  for (const campaign_record& r : records_)
    if (r.tenant == tenant && r.state != "deleted") out.push_back(r);
  return out;
}

std::vector<campaign_record> campaign_registry::all() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  sync_locked();
  std::vector<campaign_record> out;
  for (const campaign_record& r : records_)
    if (r.state != "deleted") out.push_back(r);
  return out;
}

bool campaign_registry::known_tenant(const std::string& tenant) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  sync_locked();
  for (const campaign_record& r : records_)
    if (r.tenant == tenant && r.state != "deleted") return true;
  return false;
}

campaign_record campaign_registry::set_state(const std::string& tenant,
                                             const std::string& id,
                                             const std::string& state, double now,
                                             const std::string& detail) {
  const std::lock_guard<std::mutex> lock(mutex_);
  campaign_record out;
  log_->with_exclusive([&] {
    sync_locked();
    const campaign_record* r = find_locked(tenant, id);
    require(r != nullptr,
            "campaign_registry: no campaign '" + id + "' for tenant '" + tenant + "'");
    campaign_record& slot = records_[index_.at(id)];
    slot.state = state;
    slot.updated_at = now;
    slot.detail = detail;
    append_locked(slot);
    out = slot;
  });
  return out;
}

std::optional<campaign_record> campaign_registry::try_claim(const std::string& tenant,
                                                            const std::string& id,
                                                            double now) {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::optional<campaign_record> out;
  log_->with_exclusive([&] {
    sync_locked();
    const campaign_record* r = find_locked(tenant, id);
    if (r == nullptr || r->state != "queued") return;
    campaign_record& slot = records_[index_.at(id)];
    slot.state = "running";
    slot.updated_at = now;
    slot.detail.clear();
    append_locked(slot);
    out = slot;
  });
  return out;
}

campaign_record campaign_registry::remove(const std::string& tenant,
                                          const std::string& id, double now) {
  const std::lock_guard<std::mutex> lock(mutex_);
  campaign_record out;
  log_->with_exclusive([&] {
    sync_locked();
    const campaign_record* r = find_locked(tenant, id);
    require(r != nullptr,
            "campaign_registry: no campaign '" + id + "' for tenant '" + tenant + "'");
    campaign_record& slot = records_[index_.at(id)];
    slot.state = "deleted";
    slot.updated_at = now;
    append_locked(slot);
    out = slot;
  });
  return out;
}

std::size_t campaign_registry::active_count(const std::string& tenant) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  sync_locked();
  std::size_t active = 0;
  for (const campaign_record& r : records_)
    if (r.tenant == tenant && r.state != "deleted" && !r.terminal()) ++active;
  return active;
}

std::optional<campaign_record> campaign_registry::oldest_queued() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  sync_locked();
  for (const campaign_record& r : records_)  // records_ is id (submit) order
    if (r.state == "queued") return r;
  return std::nullopt;
}

}  // namespace boson::service
