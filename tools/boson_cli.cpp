// boson_cli — the declarative experiment driver of the BOSON-1 library.
//
// Experiments are JSON specs (see docs/API.md for the schema) executed
// through the boson::api session façade:
//
//   boson_cli run <spec.json> [--out <dir>] [--no-artifacts]
//   boson_cli validate <spec.json>
//   boson_cli list devices|methods|objectives
//
// `run` accepts a single spec (JSON object) or a batch (JSON array) and
// writes one artifact directory per experiment (summary.json,
// trajectory.csv, mask.pgm, plus spectrum / process-window CSVs when those
// evaluation steps are planned). Progress streams through common/log on
// stderr; result tables go to stdout. BOSON_BENCH_SCALE, BOSON_THREADS,
// BOSON_BACKEND and BOSON_SIM_CACHE apply as everywhere else.

#include <cstdio>
#include <exception>
#include <string>
#include <vector>

#include "api/registry.h"
#include "api/session.h"
#include "api/spec.h"
#include "common/env.h"
#include "common/log.h"
#include "core/methods.h"
#include "io/table.h"

namespace {

using namespace boson;

int usage(std::FILE* out) {
  std::fprintf(out,
               "boson_cli — declarative experiment driver for the BOSON-1 library\n"
               "\n"
               "usage:\n"
               "  boson_cli run <spec.json> [--out <dir>] [--no-artifacts]\n"
               "  boson_cli validate <spec.json>\n"
               "  boson_cli list devices|methods|objectives\n"
               "\n"
               "run       execute one spec (JSON object) or a batch (JSON array);\n"
               "          artifacts land in --out (default: boson_out)\n"
               "validate  parse + validate a spec file without running it\n"
               "list      show the registered scenario names\n");
  return out == stdout ? 0 : 2;
}

int cmd_list(const std::string& what) {
  const api::registry& reg = api::registry::global();
  if (what == "devices") {
    io::console_table table({"device", "description"});
    for (const auto& name : reg.device_names())
      table.add_row({name, reg.device_description(name)});
    table.print("Registered devices");
    return 0;
  }
  if (what == "methods") {
    io::console_table table({"method", "paper name"});
    for (const auto& name : reg.method_names())
      table.add_row({name, core::method_name(reg.method(name))});
    table.print("Registered methods");
    return 0;
  }
  if (what == "objectives") {
    io::console_table table({"objective", "description"});
    for (const auto& name : reg.objective_names())
      table.add_row({name, reg.objective(name).description});
    table.print("Registered objectives");
    return 0;
  }
  std::fprintf(stderr,
               "boson_cli: unknown list target '%s' (expected devices, methods or "
               "objectives)\n",
               what.c_str());
  return 2;
}

int cmd_validate(const std::string& path) {
  const std::vector<api::experiment_spec> specs = api::load_specs(path);
  std::printf("%s: %zu valid spec%s\n", path.c_str(), specs.size(),
              specs.size() == 1 ? "" : "s");
  for (const auto& spec : specs)
    std::printf("  %-24s %s x %s @ %g um\n", spec.display_name().c_str(),
                spec.device.c_str(), spec.method.c_str(), spec.resolution);
  return 0;
}

int cmd_run(const std::string& path, const api::session_options& options) {
  const std::vector<api::experiment_spec> specs = api::load_specs(path);

  api::session session(options);
  const std::vector<api::experiment_result> results = session.run_all(specs);

  io::console_table table(
      {"experiment", "prefab FoM", "postfab FoM", "runtime [s]", "artifacts"});
  for (const auto& r : results) {
    const std::string postfab =
        r.method.postfab.samples > 0
            ? io::console_table::sci(r.method.postfab.fom_mean) + " +- " +
                  io::console_table::sci(r.method.postfab.fom_std)
            : "-";
    table.add_row({r.spec.name, io::console_table::sci(r.method.prefab_fom), postfab,
                   io::console_table::num(r.seconds, 1),
                   r.artifact_dir.empty() ? "-" : r.artifact_dir});
  }
  std::printf("\n");
  table.print("Executed " + std::to_string(results.size()) + " experiment" +
              (results.size() == 1 ? "" : "s") + " from " + path);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace boson;

  // Progress is the CLI's interface: default to info-level logging unless
  // the user pinned a level via BOSON_LOG.
  if (env_string("BOSON_LOG", "").empty()) set_log_level(log_level::info);

  const std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty() || args[0] == "--help" || args[0] == "-h") {
    return usage(args.empty() ? stderr : stdout);
  }

  try {
    const std::string& command = args[0];
    if (command == "list") {
      if (args.size() != 2) return usage(stderr);
      return cmd_list(args[1]);
    }
    if (command == "validate") {
      if (args.size() != 2) return usage(stderr);
      return cmd_validate(args[1]);
    }
    if (command == "run") {
      std::string spec_path;
      api::session_options options;
      for (std::size_t i = 1; i < args.size(); ++i) {
        if (args[i] == "--out") {
          if (i + 1 >= args.size()) return usage(stderr);
          options.output_dir = args[++i];
        } else if (args[i] == "--no-artifacts") {
          options.write_artifacts = false;
        } else if (!args[i].empty() && args[i][0] == '-') {
          std::fprintf(stderr, "boson_cli: unknown option '%s'\n", args[i].c_str());
          return 2;
        } else if (spec_path.empty()) {
          spec_path = args[i];
        } else {
          return usage(stderr);
        }
      }
      if (spec_path.empty()) return usage(stderr);
      return cmd_run(spec_path, options);
    }
    std::fprintf(stderr, "boson_cli: unknown command '%s'\n", command.c_str());
    return usage(stderr);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "boson_cli: %s\n", e.what());
    return 1;
  }
}
