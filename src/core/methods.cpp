#include "core/methods.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "common/env.h"
#include "common/error.h"
#include "common/log.h"
#include "common/rng.h"
#include "core/mask_correction.h"
#include "param/density.h"
#include "param/levelset.h"

namespace boson::core {

std::string method_name(method_id id) {
  switch (id) {
    case method_id::density: return "Density";
    case method_id::density_m: return "Density-M";
    case method_id::ls: return "LS";
    case method_id::ls_m: return "LS-M";
    case method_id::invfabcor_1: return "InvFabCor-1";
    case method_id::invfabcor_3: return "InvFabCor-3";
    case method_id::invfabcor_m_1: return "InvFabCor-M-1";
    case method_id::invfabcor_m_3: return "InvFabCor-M-3";
    case method_id::invfabcor_m_3_eff: return "InvFabCor-M-3-eff";
    case method_id::ls_ed: return "LS-ED";
    case method_id::boson: return "BOSON-1";
    case method_id::boson_no_reshape: return "BOSON-1 (- landscape reshaping)";
    case method_id::boson_no_relax: return "BOSON-1 (- subspace relax)";
    case method_id::boson_exhaustive: return "BOSON-1 (exhaustive sample)";
    case method_id::boson_random_init: return "BOSON-1 (random init)";
  }
  return "?";
}

std::size_t experiment_config::scaled_iterations() const {
  return std::max<std::size_t>(4, static_cast<std::size_t>(std::lround(
                                      static_cast<double>(iterations) * scale)));
}

std::size_t experiment_config::scaled_samples() const {
  return std::max<std::size_t>(2, static_cast<std::size_t>(std::lround(
                                      static_cast<double>(mc_samples) * scale)));
}

std::size_t experiment_config::scaled_relax() const {
  return static_cast<std::size_t>(std::lround(static_cast<double>(relax_epochs) * scale));
}

experiment_config default_config() {
  experiment_config cfg;
  cfg.scale = env_double("BOSON_BENCH_SCALE", 1.0);
  cfg.seed = static_cast<std::uint64_t>(env_int("BOSON_SEED", 7));
  return cfg;
}

design_problem make_problem(const dev::device_spec& spec, bool use_levelset,
                            const experiment_config& cfg, double density_blur_cells) {
  std::shared_ptr<param::parameterization> p;
  if (use_levelset) {
    // Knot pitch ~3 design cells (150 nm at the default pitch): coarse enough
    // to act as a feature-size prior, fine enough for the benchmark
    // topologies.
    const std::size_t kx = std::max<std::size_t>(4, spec.design.nx / 3 + 1);
    const std::size_t ky = std::max<std::size_t>(4, spec.design.ny / 3 + 1);
    p = std::make_shared<param::levelset_param>(kx, ky, spec.design.nx, spec.design.ny);
  } else {
    p = std::make_shared<param::density_param>(spec.design.nx, spec.design.ny,
                                               density_blur_cells);
  }
  fab_context fab = make_fab_context(spec, cfg.litho, cfg.eole, cfg.space);
  return design_problem(std::move(spec), std::move(p), std::move(fab));
}

dvec concentrated_init(const design_problem& problem) {
  const auto& field = problem.spec().init_signed_field;
  const auto* ls = dynamic_cast<const param::levelset_param*>(&problem.parameterization());
  if (ls != nullptr) return ls->fit_from_field(field);
  // Density: push sigmoid(theta) toward the binary target shape.
  dvec theta(field.size());
  for (std::size_t i = 0; i < field.size(); ++i)
    theta[i] = 4.0 * std::clamp(field.data()[i], -1.0, 1.0);
  return theta;
}

dvec gray_init(const design_problem& problem) {
  return dvec(problem.parameterization().num_params(), 0.0);
}

dvec random_init(const design_problem& problem, std::uint64_t seed) {
  rng r(seed);
  dvec theta(problem.parameterization().num_params());
  for (auto& t : theta) t = r.uniform(-0.5, 0.5);
  return theta;
}

array2d<double> binarize(const array2d<double>& rho, double threshold) {
  array2d<double> out(rho.nx(), rho.ny());
  for (std::size_t i = 0; i < rho.size(); ++i)
    out.data()[i] = rho.data()[i] > threshold ? 1.0 : 0.0;
  return out;
}

double relative_improvement(double baseline_fom, double our_fom, bool lower_better) {
  if (lower_better) {
    if (baseline_fom <= 0.0) return 0.0;
    return (baseline_fom - our_fom) / baseline_fom;
  }
  if (our_fom <= 0.0) return 0.0;
  return (our_fom - baseline_fom) / our_fom;
}

namespace {

/// Ingredients of a method, resolved from its id.
struct method_recipe {
  bool levelset = true;
  double density_blur = 0.0;  ///< cells; >0 enables density built-in MFS blur
  bool mfs_blur = false;      ///< problem-level blur ('-M' for level set)
  bool fab_aware = false;
  bool dense = false;
  std::size_t relax = 0;
  robust::sampling_strategy sampling = robust::sampling_strategy::nominal_only;
  bool random_initialization = false;
  bool erosion_dilation = false;       ///< geometry-corner prior-art baseline
  bool beta_ramp = true;               ///< projection-sharpness schedule
  std::size_t correction_corners = 0;  ///< >0: two-stage InvFabCor flow
  std::string objective_override;
};

method_recipe recipe_for(method_id id, const experiment_config& cfg) {
  method_recipe r;
  const double mfs_cells = 0.08 / cfg.resolution;  // ~80 nm blur radius
  switch (id) {
    case method_id::density:
      // The classical density flow: per-pixel variables, moderate fixed
      // projection sharpness, final 0.5 thresholding. Without the modern
      // binarization ramp the converged design carries gray/fine structure —
      // the "numerically plausible, non-manufacturable" failure mode.
      r.levelset = false;
      r.beta_ramp = false;
      break;
    case method_id::density_m:
      r.levelset = false;
      r.density_blur = mfs_cells;
      r.beta_ramp = false;
      break;
    case method_id::ls:
      break;
    case method_id::ls_m:
      r.mfs_blur = true;
      break;
    case method_id::invfabcor_1:
      r.correction_corners = 1;
      break;
    case method_id::invfabcor_3:
      r.correction_corners = 3;
      break;
    case method_id::invfabcor_m_1:
      r.mfs_blur = true;
      r.correction_corners = 1;
      break;
    case method_id::invfabcor_m_3:
      r.mfs_blur = true;
      r.correction_corners = 3;
      break;
    case method_id::invfabcor_m_3_eff:
      r.mfs_blur = true;
      r.correction_corners = 3;
      r.objective_override = "fwd_transmission";
      break;
    case method_id::ls_ed:
      r.mfs_blur = true;  // geometry-corner flows pair with MFS control
      r.erosion_dilation = true;
      break;
    case method_id::boson:
      r.fab_aware = true;
      r.dense = true;
      r.relax = cfg.scaled_relax();
      r.sampling = robust::sampling_strategy::axial_plus_worst;
      break;
    case method_id::boson_no_reshape:
      r.fab_aware = true;
      r.relax = cfg.scaled_relax();
      r.sampling = robust::sampling_strategy::axial_plus_worst;
      break;
    case method_id::boson_no_relax:
      r.fab_aware = true;
      r.dense = true;
      r.sampling = robust::sampling_strategy::axial_plus_worst;
      break;
    case method_id::boson_exhaustive:
      r.fab_aware = true;
      r.dense = true;
      r.relax = cfg.scaled_relax();
      r.sampling = robust::sampling_strategy::exhaustive;
      break;
    case method_id::boson_random_init:
      r.fab_aware = true;
      r.dense = true;
      r.relax = cfg.scaled_relax();
      r.sampling = robust::sampling_strategy::axial_plus_worst;
      r.random_initialization = true;
      break;
  }
  return r;
}

}  // namespace

bool method_uses_levelset(method_id id) {
  return recipe_for(id, experiment_config{}).levelset;
}

std::string method_objective_override(method_id id) {
  return recipe_for(id, experiment_config{}).objective_override;
}

method_result run_method(const dev::device_spec& spec, method_id id,
                         const experiment_config& cfg, const method_hooks& hooks) {
  const method_recipe recipe = recipe_for(id, cfg);
  const std::string objective_override = recipe.objective_override.empty()
                                             ? cfg.objective_override
                                             : recipe.objective_override;
  require(objective_override.empty() ||
              spec.objective.kind == dev::objective_kind::minimize_ratio,
          "run_method: the objective override only applies to ratio objectives "
          "(the isolator)");

  design_problem problem = make_problem(spec, recipe.levelset, cfg, recipe.density_blur);

  run_options ro;
  ro.iterations = cfg.scaled_iterations();
  ro.learning_rate = cfg.learning_rate;
  ro.fab_aware = recipe.fab_aware;
  ro.dense_objectives = recipe.dense;
  ro.use_mfs_blur = recipe.mfs_blur;
  ro.relax_epochs = recipe.relax;
  ro.sampling = recipe.sampling;
  ro.erosion_dilation = recipe.erosion_dilation;
  if (!recipe.beta_ramp) ro.beta_end = ro.beta_start;
  ro.seed = cfg.seed;
  ro.objective_override = objective_override;
  ro.engine = cfg.engine;
  ro.use_operator_cache = cfg.use_operator_cache;
  ro.record_trajectory = cfg.record_trajectory;
  ro.on_iteration = hooks.on_iteration;
  ro.checkpoint_every = hooks.checkpoint_every;
  ro.on_checkpoint = hooks.on_checkpoint;
  ro.resume_state = hooks.resume;

  // Density-based topology optimization conventionally starts from a uniform
  // gray design; level-set methods (and BOSON-1) use the light-concentrated
  // heuristic initialization.
  const dvec theta0 = recipe.random_initialization
                          ? random_init(problem, cfg.seed + 1)
                          : (recipe.levelset ? concentrated_init(problem)
                                             : gray_init(problem));

  log_info("run_method[", spec.name, "]: ", method_name(id), " (",
           ro.iterations, " iterations)");
  const auto stage = [&](const char* name) {
    if (hooks.on_stage) hooks.on_stage(name);
  };

  stage("optimize");
  method_result out;
  out.method = method_name(id);
  out.run = run_inverse_design(problem, theta0, ro);

  // The design produced by the optimizer (pre-fab pattern).
  stage("prefab_eval");
  const array2d<double> design_binary = binarize(out.run.design_rho);
  out.prefab = prefab_metrics(problem, design_binary);
  out.prefab_fom = problem.fom_of(out.prefab);

  // The mask handed to fabrication.
  if (recipe.correction_corners > 0) {
    stage("mask_correction");
    mask_correction_options mo;
    mo.litho_corners = recipe.correction_corners;
    mo.iterations = std::max<std::size_t>(20, cfg.scaled_iterations());
    const mask_correction_result corrected = correct_mask(problem, design_binary, mo);
    log_info("run_method[", spec.name, "]: mask correction mismatch ",
             corrected.initial_mismatch, " -> ", corrected.final_mismatch);
    out.mask = binarize(corrected.mask);
  } else {
    out.mask = design_binary;
  }

  if (hooks.run_postfab_mc) {
    stage("postfab_monte_carlo");
    out.postfab = postfab_monte_carlo(problem, out.mask, cfg.scaled_samples(),
                                      cfg.seed + 3, cfg.use_operator_cache);
    log_info("run_method[", spec.name, "]: ", method_name(id), " prefab FoM=",
             out.prefab_fom, " postfab FoM=", out.postfab.fom_mean);
  }
  return out;
}

}  // namespace boson::core
