#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "linalg/dense.h"
#include "linalg/vec.h"
#include "sparse/banded.h"
#include "sparse/csr.h"
#include "sparse/krylov.h"

namespace boson::sp {
namespace {

// ------------------------------------------------------------------ csr ----

TEST(csr, builds_and_sums_duplicates) {
  std::vector<triplet<double>> t{{0, 0, 1.0}, {0, 0, 2.0}, {1, 2, 4.0}};
  csr_d a(2, 3, t);
  EXPECT_EQ(a.nnz(), 2u);
  EXPECT_DOUBLE_EQ(a.at(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(a.at(1, 2), 4.0);
  EXPECT_DOUBLE_EQ(a.at(1, 1), 0.0);
}

TEST(csr, matvec_matches_dense) {
  rng r(5);
  const std::size_t n = 12;
  std::vector<triplet<cplx>> t;
  la::cmat dense(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      if (r.uniform(0, 1) < 0.3) {
        const cplx v(r.uniform(-1, 1), r.uniform(-1, 1));
        t.push_back({i, j, v});
        dense(i, j) = v;
      }
  csr_c a(n, n, t);
  cvec x(n);
  for (auto& v : x) v = cplx(r.uniform(-1, 1), r.uniform(-1, 1));
  const auto ys = a.matvec(x);
  const auto yd = dense.matvec(x);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(std::abs(ys[i] - yd[i]), 0.0, 1e-12);
}

TEST(csr, matvec_transpose_is_adjoint_of_matvec) {
  rng r(6);
  const std::size_t n = 10;
  std::vector<triplet<cplx>> t;
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      if (r.uniform(0, 1) < 0.4) t.push_back({i, j, cplx(r.uniform(-1, 1), r.uniform(-1, 1))});
  csr_c a(n, n, t);
  cvec x(n), y(n);
  for (auto& v : x) v = cplx(r.uniform(-1, 1), r.uniform(-1, 1));
  for (auto& v : y) v = cplx(r.uniform(-1, 1), r.uniform(-1, 1));
  // <A x, y>_u = <x, A^T y>_u with the unconjugated pairing.
  const cplx lhs = la::dotu(a.matvec(x), y);
  const cplx rhs = la::dotu(x, a.matvec_transpose(y));
  EXPECT_NEAR(std::abs(lhs - rhs), 0.0, 1e-12);
}

TEST(csr, rejects_out_of_range_entries) {
  std::vector<triplet<double>> t{{2, 0, 1.0}};
  EXPECT_THROW(csr_d(2, 2, t), bad_argument);
}

TEST(csr, asymmetry_of_symmetric_matrix_is_zero) {
  std::vector<triplet<cplx>> t{
      {0, 1, {1.0, 2.0}}, {1, 0, {1.0, 2.0}}, {0, 0, {3.0, 0.0}}, {1, 1, {4.0, 1.0}}};
  csr_c a(2, 2, t);
  EXPECT_NEAR(a.asymmetry(), 0.0, 1e-15);
  std::vector<triplet<cplx>> t2{{0, 1, {1.0, 0.0}}, {1, 0, {2.0, 0.0}}};
  // Need diagonals for at() lookups to stay in range — they are optional.
  csr_c b(2, 2, t2);
  EXPECT_NEAR(b.asymmetry(), 1.0, 1e-15);
}

// --------------------------------------------------------------- banded ----

struct band_case {
  std::size_t n;
  std::size_t kl;
  std::size_t ku;
};

class banded_sizes : public ::testing::TestWithParam<band_case> {};

TEST_P(banded_sizes, lu_matches_dense_solution) {
  const auto [n, kl, ku] = GetParam();
  rng r(1000 + n + kl);
  banded_lu banded(n, kl, ku);
  la::cmat dense(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (j + kl < i || i + ku < j) continue;
      cplx v(r.uniform(-1, 1), r.uniform(-1, 1));
      if (i == j) v += cplx(4.0, 0.0);
      banded.add(i, j, v);
      dense(i, j) = v;
    }
  }
  cvec b(n);
  for (auto& v : b) v = cplx(r.uniform(-1, 1), r.uniform(-1, 1));

  banded.factor();
  const cvec x = banded.solve(b);
  const cvec x_ref = la::lu_solve(dense, b);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(std::abs(x[i] - x_ref[i]), 0.0, 1e-9);
}

TEST_P(banded_sizes, residual_is_small_without_diagonal_dominance) {
  const auto [n, kl, ku] = GetParam();
  rng r(2000 + n + ku);
  banded_lu banded(n, kl, ku);
  la::cmat dense(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (j + kl < i || i + ku < j) continue;
      const cplx v(r.uniform(-1, 1), r.uniform(-1, 1));
      banded.add(i, j, v);
      dense(i, j) = v;
    }
  }
  cvec b(n);
  for (auto& v : b) v = cplx(r.uniform(-1, 1), r.uniform(-1, 1));
  banded.factor();  // partial pivoting must handle weak diagonals
  const cvec x = banded.solve(b);
  const auto ax = dense.matvec(x);
  double res = 0.0;
  for (std::size_t i = 0; i < n; ++i) res = std::max(res, std::abs(ax[i] - b[i]));
  EXPECT_LT(res, 1e-8 * (1.0 + la::max_abs(x)));
}

INSTANTIATE_TEST_SUITE_P(shapes, banded_sizes,
                         ::testing::Values(band_case{6, 1, 1}, band_case{20, 3, 3},
                                           band_case{40, 5, 2}, band_case{40, 2, 5},
                                           band_case{100, 10, 10}, band_case{64, 8, 8}));

TEST(banded, multi_rhs_solve_matches_single_rhs_solves) {
  rng r(321);
  const std::size_t n = 60, kl = 6, ku = 4, nrhs = 5;
  banded_lu banded(n, kl, ku);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (j + kl < i || i + ku < j) continue;
      cplx v(r.uniform(-1, 1), r.uniform(-1, 1));
      if (i == j) v += cplx(3.0, 0.0);
      banded.add(i, j, v);
    }
  }
  banded.factor();

  std::vector<cvec> bs(nrhs, cvec(n));
  for (auto& b : bs)
    for (auto& v : b) v = cplx(r.uniform(-1, 1), r.uniform(-1, 1));

  const std::vector<cvec> xs = banded.solve(bs);
  ASSERT_EQ(xs.size(), nrhs);
  for (std::size_t k = 0; k < nrhs; ++k) {
    const cvec x_single = banded.solve(bs[k]);
    for (std::size_t i = 0; i < n; ++i)
      EXPECT_NEAR(std::abs(xs[k][i] - x_single[i]), 0.0, 1e-10)
          << "rhs " << k << " row " << i;
  }
}

TEST(banded, multi_rhs_solve_handles_empty_and_singleton_batches) {
  banded_lu banded(4, 1, 1);
  for (std::size_t i = 0; i < 4; ++i) banded.add(i, i, cplx{2.0});
  banded.factor();
  EXPECT_TRUE(banded.solve(std::vector<cvec>{}).empty());
  const auto xs = banded.solve(std::vector<cvec>{cvec(4, cplx{1.0})});
  ASSERT_EQ(xs.size(), 1u);
  for (const auto& v : xs[0]) EXPECT_NEAR(std::abs(v - cplx{0.5}), 0.0, 1e-14);
}

TEST(banded, matvec_matches_dense) {
  const std::size_t n = 15, k = 3;
  rng r(9);
  banded_lu banded(n, k, k);
  la::cmat dense(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = (i > k ? i - k : 0); j <= std::min(i + k, n - 1); ++j) {
      const cplx v(r.uniform(-1, 1), r.uniform(-1, 1));
      banded.add(i, j, v);
      dense(i, j) = v;
    }
  cvec x(n);
  for (auto& v : x) v = cplx(r.uniform(-1, 1), r.uniform(-1, 1));
  const auto yb = banded.matvec(x);
  const auto yd = dense.matvec(x);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(std::abs(yb[i] - yd[i]), 0.0, 1e-12);
}

TEST(banded, add_outside_band_throws) {
  banded_lu a(10, 2, 2);
  EXPECT_THROW(a.add(0, 5, cplx{1.0}), bad_argument);
  EXPECT_THROW(a.add(5, 0, cplx{1.0}), bad_argument);
  EXPECT_NO_THROW(a.add(0, 2, cplx{1.0}));
}

TEST(banded, solve_requires_factorization) {
  banded_lu a(4, 1, 1);
  for (std::size_t i = 0; i < 4; ++i) a.add(i, i, cplx{1.0});
  EXPECT_THROW(a.solve(cvec(4)), bad_argument);
  a.factor();
  EXPECT_TRUE(a.factored());
  EXPECT_THROW(a.add(0, 0, cplx{1.0}), bad_argument);  // frozen after factor
}

TEST(banded, singular_matrix_throws) {
  banded_lu a(3, 1, 1);
  a.add(0, 0, cplx{1.0});
  a.add(2, 2, cplx{1.0});  // row/col 1 entirely zero
  EXPECT_THROW(a.factor(), numeric_error);
}

TEST(banded, identity_solve_is_identity) {
  const std::size_t n = 8;
  banded_lu a(n, 2, 2);
  for (std::size_t i = 0; i < n; ++i) a.add(i, i, cplx{1.0});
  a.factor();
  cvec b(n);
  for (std::size_t i = 0; i < n; ++i) b[i] = cplx(static_cast<double>(i), -1.0);
  const auto x = a.solve(b);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(std::abs(x[i] - b[i]), 0.0, 1e-14);
}

TEST(banded, pivoting_handles_zero_leading_diagonal) {
  // [[0, 1], [1, 0]] requires an interchange at the first step.
  banded_lu a(2, 1, 1);
  a.add(0, 1, cplx{1.0});
  a.add(1, 0, cplx{1.0});
  a.factor();
  const auto x = a.solve(cvec{cplx{3.0}, cplx{5.0}});
  EXPECT_NEAR(std::abs(x[0] - cplx{5.0}), 0.0, 1e-14);
  EXPECT_NEAR(std::abs(x[1] - cplx{3.0}), 0.0, 1e-14);
}

// --------------------------------------------------------------- krylov ----

csr_c random_banded_csr(std::size_t n, std::size_t band, std::uint64_t seed,
                        double diag_boost) {
  rng r(seed);
  std::vector<triplet<cplx>> t;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = (i > band ? i - band : 0); j <= std::min(i + band, n - 1); ++j) {
      cplx v(r.uniform(-1, 1), r.uniform(-1, 1));
      if (i == j) v += cplx(diag_boost, 0.0);
      t.push_back({i, j, v});
    }
  }
  return csr_c(n, n, t);
}

TEST(krylov, bicgstab_unpreconditioned_converges) {
  const std::size_t n = 60;
  const auto a = random_banded_csr(n, 2, 31, 6.0);
  rng r(32);
  cvec x_true(n);
  for (auto& v : x_true) v = cplx(r.uniform(-1, 1), r.uniform(-1, 1));
  const auto b = a.matvec(x_true);
  cvec x;
  const auto res = bicgstab(a, b, x, nullptr, 1e-10, 500);
  EXPECT_TRUE(res.converged);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(std::abs(x[i] - x_true[i]), 0.0, 1e-6);
}

TEST(krylov, ilu0_preconditioning_reduces_iterations) {
  const std::size_t n = 150;
  const auto a = random_banded_csr(n, 3, 77, 4.0);
  rng r(78);
  cvec x_true(n);
  for (auto& v : x_true) v = cplx(r.uniform(-1, 1), r.uniform(-1, 1));
  const auto b = a.matvec(x_true);

  cvec x_plain, x_prec;
  const auto plain = bicgstab(a, b, x_plain, nullptr, 1e-10, 2000);
  const ilu0 prec(a);
  const auto preconditioned = bicgstab(a, b, x_prec, &prec, 1e-10, 2000);
  ASSERT_TRUE(plain.converged);
  ASSERT_TRUE(preconditioned.converged);
  EXPECT_LT(preconditioned.iterations, plain.iterations);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(std::abs(x_prec[i] - x_true[i]), 0.0, 1e-6);
}

TEST(krylov, ilu0_exact_for_triangular_pattern) {
  // For a lower-triangular matrix ILU(0) is an exact factorization, so one
  // application solves the system.
  const std::size_t n = 20;
  rng r(55);
  std::vector<triplet<cplx>> t;
  for (std::size_t i = 0; i < n; ++i) {
    t.push_back({i, i, cplx(3.0 + r.uniform(0, 1), r.uniform(-1, 1))});
    if (i > 0) t.push_back({i, i - 1, cplx(r.uniform(-1, 1), 0.0)});
  }
  csr_c a(n, n, t);
  cvec x_true(n);
  for (auto& v : x_true) v = cplx(r.uniform(-1, 1), r.uniform(-1, 1));
  const auto b = a.matvec(x_true);
  const ilu0 prec(a);
  const auto x = prec.apply(b);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(std::abs(x[i] - x_true[i]), 0.0, 1e-10);
}

TEST(krylov, zero_rhs_returns_zero) {
  const auto a = random_banded_csr(10, 2, 3, 5.0);
  cvec x(10, cplx{1.0});
  const auto res = bicgstab(a, cvec(10), x, nullptr);
  EXPECT_TRUE(res.converged);
  for (const auto& v : x) EXPECT_EQ(v, cplx{});
}

TEST(krylov, ilu0_requires_diagonal) {
  std::vector<triplet<cplx>> t{{0, 1, cplx{1.0}}, {1, 0, cplx{1.0}}};
  csr_c a(2, 2, t);
  EXPECT_THROW(ilu0 prec(a), numeric_error);
}

class gmres_systems : public ::testing::TestWithParam<std::size_t> {};

TEST_P(gmres_systems, converges_and_matches_truth) {
  const std::size_t n = GetParam();
  const auto a = random_banded_csr(n, 3, 400 + n, 5.0);
  rng r(401 + n);
  cvec x_true(n);
  for (auto& v : x_true) v = cplx(r.uniform(-1, 1), r.uniform(-1, 1));
  const auto b = a.matvec(x_true);
  cvec x;
  const auto res = gmres(a, b, x, nullptr, 40, 1e-10, 2000);
  ASSERT_TRUE(res.converged) << "residual " << res.relative_residual;
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(std::abs(x[i] - x_true[i]), 0.0, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(sizes, gmres_systems, ::testing::Values(10, 50, 120));

TEST(krylov, gmres_with_ilu0_preconditioning) {
  const std::size_t n = 150;
  const auto a = random_banded_csr(n, 3, 501, 4.0);
  rng r(502);
  cvec x_true(n);
  for (auto& v : x_true) v = cplx(r.uniform(-1, 1), r.uniform(-1, 1));
  const auto b = a.matvec(x_true);
  const ilu0 prec(a);
  cvec x_plain, x_prec;
  const auto plain = gmres(a, b, x_plain, nullptr, 30, 1e-10, 2000);
  const auto preconditioned = gmres(a, b, x_prec, &prec, 30, 1e-10, 2000);
  ASSERT_TRUE(plain.converged);
  ASSERT_TRUE(preconditioned.converged);
  EXPECT_LE(preconditioned.iterations, plain.iterations);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(std::abs(x_prec[i] - x_true[i]), 0.0, 1e-6);
}

TEST(krylov, gmres_restart_still_converges) {
  // A restart shorter than the natural Krylov dimension must still reach the
  // solution through repeated cycles.
  const std::size_t n = 80;
  const auto a = random_banded_csr(n, 2, 600, 6.0);
  rng r(601);
  cvec x_true(n);
  for (auto& v : x_true) v = cplx(r.uniform(-1, 1), r.uniform(-1, 1));
  const auto b = a.matvec(x_true);
  cvec x;
  const auto res = gmres(a, b, x, nullptr, 5, 1e-9, 4000);
  ASSERT_TRUE(res.converged);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(std::abs(x[i] - x_true[i]), 0.0, 1e-5);
}

TEST(krylov, gmres_zero_rhs_returns_zero) {
  const auto a = random_banded_csr(12, 2, 700, 5.0);
  cvec x(12, cplx{1.0});
  const auto res = gmres(a, cvec(12), x, nullptr);
  EXPECT_TRUE(res.converged);
  for (const auto& v : x) EXPECT_EQ(v, cplx{});
}

TEST(krylov, gmres_and_bicgstab_agree) {
  const std::size_t n = 60;
  const auto a = random_banded_csr(n, 3, 800, 5.0);
  rng r(801);
  cvec b(n);
  for (auto& v : b) v = cplx(r.uniform(-1, 1), r.uniform(-1, 1));
  cvec xg, xb;
  ASSERT_TRUE(gmres(a, b, xg, nullptr, 40, 1e-11, 2000).converged);
  ASSERT_TRUE(bicgstab(a, b, xb, nullptr, 1e-11, 2000).converged);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(std::abs(xg[i] - xb[i]), 0.0, 1e-6);
}

// ------------------------------------------------ batched solve identities ----

/// Random well-conditioned banded operator shared by the bit-identity tests.
banded_lu random_banded_lu(std::size_t n, std::size_t kl, std::size_t ku,
                           std::uint64_t seed) {
  rng r(seed);
  banded_lu a(n, kl, ku);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (j + kl < i || i + ku < j) continue;
      cplx v(r.uniform(-1, 1), r.uniform(-1, 1));
      if (i == j) v += cplx(4.0, 0.5);
      a.add(i, j, v);
    }
  }
  a.factor();
  return a;
}

TEST(banded, empty_batch_returns_empty_batch) {
  const banded_lu a = random_banded_lu(24, 4, 3, 1234);
  EXPECT_TRUE(a.solve(std::vector<cvec>{}).empty());
}

TEST(banded, singleton_batch_is_bit_identical_to_scalar_solve) {
  const banded_lu a = random_banded_lu(48, 6, 6, 77);
  rng r(78);
  cvec b(48);
  for (auto& v : b) v = cplx(r.uniform(-1, 1), r.uniform(-1, 1));
  const cvec scalar = a.solve(b);
  const auto batch = a.solve(std::vector<cvec>{b});
  ASSERT_EQ(batch.size(), 1u);
  for (std::size_t i = 0; i < scalar.size(); ++i)
    EXPECT_EQ(batch[0][i], scalar[i]) << "row " << i;
}

TEST(banded, packed_batch_matches_scalar_solves_to_rounding) {
  // The packed block substitution streams each LU coefficient across the
  // whole batch, so the accumulation order differs from the scalar path by
  // rounding only (the m == 1 case above is the bit-exact delegation).
  const banded_lu a = random_banded_lu(64, 8, 8, 555);
  rng r(556);
  std::vector<cvec> bs(7, cvec(64));
  for (auto& b : bs)
    for (auto& v : b) v = cplx(r.uniform(-1, 1), r.uniform(-1, 1));
  const auto batch = a.solve(bs);
  ASSERT_EQ(batch.size(), bs.size());
  for (std::size_t k = 0; k < bs.size(); ++k) {
    const cvec scalar = a.solve(bs[k]);
    for (std::size_t i = 0; i < scalar.size(); ++i)
      EXPECT_NEAR(std::abs(batch[k][i] - scalar[i]), 0.0, 1e-12)
          << "rhs " << k << " row " << i;
  }
}

// -------------------------------------------------- matrix-free gmres ------

TEST(krylov, matrix_free_gmres_matches_csr_overload) {
  const std::size_t n = 50;
  const auto a = random_banded_csr(n, 3, 900, 5.0);
  rng r(901);
  cvec b(n);
  for (auto& v : b) v = cplx(r.uniform(-1, 1), r.uniform(-1, 1));

  cvec x_csr, x_op;
  const auto res_csr = gmres(a, b, x_csr, nullptr, 30, 1e-10, 2000);
  const linear_op op = [&a](const cvec& v) { return a.matvec(v); };
  const auto res_op = gmres(op, b, x_op, linear_op{}, 30, 1e-10, 2000);
  ASSERT_TRUE(res_csr.converged);
  ASSERT_TRUE(res_op.converged);
  EXPECT_EQ(res_op.iterations, res_csr.iterations);
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(x_op[i], x_csr[i]) << "row " << i;
}

TEST(krylov, gmres_accepts_converged_initial_guess_without_touching_x) {
  const std::size_t n = 40;
  const auto a = random_banded_csr(n, 2, 910, 6.0);
  rng r(911);
  cvec x_true(n);
  for (auto& v : x_true) v = cplx(r.uniform(-1, 1), r.uniform(-1, 1));
  const cvec b = a.matvec(x_true);
  cvec x = x_true;  // start at the answer
  const linear_op op = [&a](const cvec& v) { return a.matvec(v); };
  const auto res = gmres(op, b, x, linear_op{}, 30, 1e-10, 2000);
  EXPECT_TRUE(res.converged);
  EXPECT_EQ(res.iterations, 0u);
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_EQ(x[i], x_true[i]) << "x must be returned untouched at row " << i;
}

TEST(krylov, nominal_lu_preconditioner_resolves_diagonal_perturbation_quickly) {
  // The nearby-operator reuse identity: with M = LU(A_nom) and
  // A = A_nom + D where D hits c diagonal entries, M^{-1} A is a rank-c
  // perturbation of the identity, so left-preconditioned GMRES needs about
  // c + 1 iterations regardless of the grid size.
  const std::size_t n = 100, band = 5, c = 4;
  rng r(920);
  banded_lu nominal(n, band, band);
  std::vector<triplet<cplx>> entries;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = (i > band ? i - band : 0); j <= std::min(i + band, n - 1);
         ++j) {
      cplx v(r.uniform(-1, 1), r.uniform(-1, 1));
      if (i == j) v += cplx(5.0, 0.5);
      nominal.add(i, j, v);
      entries.push_back({i, j, v});
    }
  }
  for (std::size_t k = 0; k < c; ++k)  // perturbed operator: c diagonal bumps
    entries.push_back({11 + 13 * k, 11 + 13 * k, cplx(2.5, -0.75)});
  const csr_c perturbed(n, n, entries);
  nominal.factor();

  cvec b(n);
  for (auto& v : b) v = cplx(r.uniform(-1, 1), r.uniform(-1, 1));
  cvec x = nominal.solve(b);  // warm start from the nominal factorization
  const linear_op op = [&perturbed](const cvec& v) { return perturbed.matvec(v); };
  const linear_op pre = [&nominal](const cvec& v) { return nominal.solve(v); };
  const auto res = gmres(op, b, x, pre, 32, 1e-11, 32);
  ASSERT_TRUE(res.converged);
  EXPECT_LE(res.iterations, c + 2);

  cvec ax = perturbed.matvec(x);
  double worst = 0.0;
  for (std::size_t i = 0; i < n; ++i) worst = std::max(worst, std::abs(ax[i] - b[i]));
  EXPECT_LT(worst, 1e-8 * (1.0 + la::nrm2(b)));
}

// --------------------------------------------------------- recycle space ----

TEST(recycle, empty_or_mismatched_space_guesses_zero) {
  recycle_space space(4);
  EXPECT_EQ(space.size(), 0u);
  EXPECT_EQ(space.capacity(), 4u);
  const cvec g0 = space.guess(cvec(10, cplx{1.0}));
  ASSERT_EQ(g0.size(), 10u);
  for (const auto& v : g0) EXPECT_EQ(v, cplx{});

  const auto a = random_banded_csr(10, 2, 930, 5.0);
  cvec u(10, cplx{1.0});
  space.add(u, a.matvec(u));
  EXPECT_EQ(space.size(), 1u);
  const cvec g1 = space.guess(cvec(7, cplx{1.0}));  // wrong length
  ASSERT_EQ(g1.size(), 7u);
  for (const auto& v : g1) EXPECT_EQ(v, cplx{});
}

TEST(recycle, repeated_rhs_is_served_from_the_space) {
  const std::size_t n = 40;
  const auto a = random_banded_csr(n, 3, 940, 6.0);
  rng r(941);
  cvec b(n);
  for (auto& v : b) v = cplx(r.uniform(-1, 1), r.uniform(-1, 1));
  cvec x;
  ASSERT_TRUE(gmres(a, b, x, nullptr, 40, 1e-12, 4000).converged);

  recycle_space space(4);
  space.add(x, a.matvec(x));
  const cvec guess = space.guess(b);
  cvec residual = a.matvec(guess);
  for (std::size_t i = 0; i < n; ++i) residual[i] = b[i] - residual[i];
  // The recycled projection leaves the residual orthogonal to span(w); for a
  // repeated right-hand side it starts essentially at the answer.
  EXPECT_LT(la::nrm2(residual), 1e-9 * la::nrm2(b));
}

TEST(recycle, orthonormalization_discards_dependent_directions_and_evicts_fifo) {
  const std::size_t n = 20;
  const auto a = random_banded_csr(n, 2, 950, 5.0);
  rng r(951);
  recycle_space space(2);

  cvec u1(n);
  for (auto& v : u1) v = cplx(r.uniform(-1, 1), r.uniform(-1, 1));
  space.add(u1, a.matvec(u1));
  EXPECT_EQ(space.size(), 1u);
  space.add(u1, a.matvec(u1));  // same direction again: discarded
  EXPECT_EQ(space.size(), 1u);

  cvec u2(n), u3(n);
  for (auto& v : u2) v = cplx(r.uniform(-1, 1), r.uniform(-1, 1));
  for (auto& v : u3) v = cplx(r.uniform(-1, 1), r.uniform(-1, 1));
  space.add(u2, a.matvec(u2));
  EXPECT_EQ(space.size(), 2u);
  space.add(u3, a.matvec(u3));  // capacity 2: the oldest pair is dropped
  EXPECT_EQ(space.size(), 2u);

  space.clear();
  EXPECT_EQ(space.size(), 0u);
}

TEST(recycle, guess_warm_start_cuts_gmres_iterations_on_a_nearby_rhs) {
  const std::size_t n = 80;
  const auto a = random_banded_csr(n, 4, 960, 4.0);
  rng r(961);
  cvec b(n);
  for (auto& v : b) v = cplx(r.uniform(-1, 1), r.uniform(-1, 1));
  cvec x_cold;
  const auto cold = gmres(a, b, x_cold, nullptr, 60, 1e-10, 4000);
  ASSERT_TRUE(cold.converged);

  recycle_space space(4);
  space.add(x_cold, a.matvec(x_cold));
  cvec b2 = b;  // a small perturbation of the previous right-hand side
  for (auto& v : b2) v += cplx(1e-3 * r.uniform(-1, 1), 1e-3 * r.uniform(-1, 1));
  cvec x_warm = space.guess(b2);
  const auto warm = gmres(a, b2, x_warm, nullptr, 60, 1e-10, 4000);
  ASSERT_TRUE(warm.converged);
  EXPECT_LT(warm.iterations, cold.iterations);
}

}  // namespace
}  // namespace boson::sp
