// bench_service — wall-clocks the campaign control plane and the status-path
// primitives it leans on, writing BENCH_service.json for bench_compare:
//
//   http.*            requests/s through the full loopback stack (client ->
//                     http_server -> handler -> service) on the two hot
//                     endpoints: GET status and POST submit
//   journal_cursor.*  polling a growing journal via journal::since versus a
//                     full replay per poll (the event stream / lease manager
//                     economics)
//   result_store.*    result_store::count_rows versus materializing every row
//                     with load (the per-status-request row count)
//
// No simulations run anywhere: executors are no-ops, so the numbers isolate
// the service machinery. BOSON_BENCH_SCALE scales the operation counts.

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "common/env.h"
#include "common/timer.h"
#include "io/json.h"
#include "net/http_client.h"
#include "net/http_server.h"
#include "runtime/journal.h"
#include "runtime/result_store.h"
#include "service/service.h"

namespace {

namespace fs = std::filesystem;
using boson::io::json_value;

std::size_t scaled(std::size_t n) {
  const double scale = boson::env_double("BOSON_BENCH_SCALE", 1.0);
  return std::max<std::size_t>(8, static_cast<std::size_t>(n * scale));
}

/// A 6-job campaign spec that is cheap to expand and serialize.
boson::runtime::campaign_spec small_campaign() {
  boson::runtime::campaign_spec spec;
  spec.name = "bench_service";
  spec.devices = {"bend"};
  spec.methods = {"density", "ls", "boson_no_relax"};
  spec.seeds = {1, 2};
  spec.base.resolution = 0.1;
  spec.base.iterations = 6;
  spec.base.relax_epochs = 0;
  spec.base.litho.na = 0.65;
  spec.base.litho.sigma = 0.35;
  spec.base.litho.kernel_half = 5;
  spec.base.litho.max_kernels = 5;
  spec.base.eole.anchors_x = 4;
  spec.base.eole.anchors_y = 4;
  spec.base.eole.num_terms = 5;
  spec.scheduler.workers = 2;
  spec.scheduler.max_retries = 0;
  return spec;
}

/// HTTP request/s on the status and submit paths through a real socket.
json_value time_http(const fs::path& root) {
  using namespace boson;

  service::service_options options;
  options.data_dir = (root / "http").string();
  options.runners = 2;
  options.poll_interval = 0.005;
  options.write_artifacts = false;
  const std::size_t submits = scaled(64);
  options.tenant_quota = submits + 8;
  options.executor = [](const runtime::campaign_job& job, const api::run_control&,
                        api::observer*) {
    api::experiment_result result;
    result.spec = job.spec;
    return result;
  };
  service::campaign_service service(options);
  service.start();

  net::http_server_options server_options;
  server_options.threads = 4;
  net::http_server server(server_options, service.handler());
  server.start();
  net::http_client client(server.base_url());

  const std::string body = small_campaign().to_json().dump(-1);
  json_value report = json_value::object();

  {  // submit path: POST spec -> registry + spec persisted + 201 record.
    stopwatch sw;
    for (std::size_t i = 0; i < submits; ++i) {
      const net::http_response res = client.post("/v1/campaigns", body);
      if (res.status != 201) {
        std::fprintf(stderr, "bench_service: submit answered %d\n", res.status);
        std::exit(1);
      }
    }
    const double seconds = sw.seconds();
    report["submit_requests"] = submits;
    report["submit_seconds"] = seconds;
    report["submit_requests_per_second"] = static_cast<double>(submits) / seconds;
    std::printf("http submit: %zu requests in %.3f s => %.0f req/s\n", submits,
                seconds, static_cast<double>(submits) / seconds);
  }

  {  // status path: GET the first campaign until the clock says enough.
    const std::size_t reads = scaled(512);
    stopwatch sw;
    for (std::size_t i = 0; i < reads; ++i) {
      const net::http_response res = client.get("/v1/campaigns/c0001");
      if (res.status != 200) {
        std::fprintf(stderr, "bench_service: status answered %d\n", res.status);
        std::exit(1);
      }
    }
    const double seconds = sw.seconds();
    report["status_requests"] = reads;
    report["status_seconds"] = seconds;
    report["status_requests_per_second"] = static_cast<double>(reads) / seconds;
    std::printf("http status: %zu requests in %.3f s => %.0f req/s\n", reads,
                seconds, static_cast<double>(reads) / seconds);
  }

  server.stop();
  service.stop();
  return report;
}

/// Poll a growing journal: cursor (`journal::since`) vs full replay per poll.
json_value time_journal_cursor(const fs::path& root) {
  using namespace boson;

  const fs::path dir = root / "journal";
  fs::create_directories(dir);
  const std::size_t entries = scaled(20000);
  const std::size_t batches = 100;

  const auto grow = [&](const std::string& path, std::size_t count) {
    runtime::journal log(path);
    runtime::journal_entry e;
    e.job_name = "bench_job";
    e.state = runtime::job_state::checkpointed;
    e.attempt = 1;
    e.detail = "iteration 10/50";
    for (std::size_t i = 0; i < count; ++i) {
      e.job_index = i;
      log.append(e);
    }
  };

  json_value report = json_value::object();
  report["entries"] = entries;
  report["polls"] = batches;

  {  // a poller that folds with journal::since pays only for the growth.
    const std::string path = (dir / "since.jsonl").string();
    runtime::journal_cursor cursor;
    runtime::journal log(path);
    runtime::journal_entry e;
    e.job_name = "bench_job";
    e.state = runtime::job_state::checkpointed;
    e.attempt = 1;
    double poll_seconds = 0.0;
    std::size_t seen = 0;
    for (std::size_t b = 0; b < batches; ++b) {
      for (std::size_t i = 0; i < entries / batches; ++i) {
        e.job_index = b * (entries / batches) + i;
        log.append(e);
      }
      stopwatch sw;
      seen += runtime::journal::since(path, cursor).size();
      poll_seconds += sw.seconds();
    }
    report["since_poll_seconds"] = poll_seconds;
    report["since_entries_seen"] = seen;
    std::printf("journal since: %zu polls over %zu entries in %.3f s\n", batches,
                seen, poll_seconds);
  }

  {  // the naive poller replays the whole file every time (O(n^2) total).
    const std::string path = (dir / "replay.jsonl").string();
    runtime::journal log(path);
    runtime::journal_entry e;
    e.job_name = "bench_job";
    e.state = runtime::job_state::checkpointed;
    e.attempt = 1;
    double poll_seconds = 0.0;
    std::size_t seen = 0;
    for (std::size_t b = 0; b < batches; ++b) {
      for (std::size_t i = 0; i < entries / batches; ++i) {
        e.job_index = b * (entries / batches) + i;
        log.append(e);
      }
      stopwatch sw;
      seen = runtime::journal::replay(path).size();
      poll_seconds += sw.seconds();
    }
    report["replay_poll_seconds"] = poll_seconds;
    std::printf("journal replay-per-poll: %zu polls to %zu entries in %.3f s\n",
                batches, seen, poll_seconds);
    report["speedup_since_vs_replay"] =
        poll_seconds / report.at("since_poll_seconds").as_number();
  }

  {  // one-shot drain of a finished journal: since and replay should tie.
    const std::string path = (dir / "drain.jsonl").string();
    grow(path, entries);
    stopwatch sw;
    const std::size_t replayed = runtime::journal::replay(path).size();
    const double replay_s = sw.seconds();
    runtime::journal_cursor cursor;
    sw.reset();
    const std::size_t drained = runtime::journal::since(path, cursor).size();
    const double since_s = sw.seconds();
    report["full_replay_seconds"] = replay_s;
    report["full_since_seconds"] = since_s;
    std::printf("journal full drain: replay %.3f s (%zu), since %.3f s (%zu)\n",
                replay_s, replayed, since_s, drained);
  }
  return report;
}

/// Distinct-job counting: count_rows vs materializing every row with load.
json_value time_count_rows(const fs::path& root) {
  using namespace boson;

  const fs::path dir = root / "store";
  fs::create_directories(dir);
  const std::size_t rows = scaled(10000);
  {
    runtime::result_store store(dir.string());
    runtime::job_result_row row;
    row.name = "bench_job";
    row.device = "bend";
    row.method = "density";
    row.postfab_samples = 16;
    for (std::size_t i = 0; i < rows; ++i) {
      row.job_index = i;
      row.prefab_fom = static_cast<double>(i);
      store.append(row);
    }
  }

  stopwatch sw;
  const std::size_t counted = runtime::result_store::count_rows(dir.string());
  const double count_s = sw.seconds();
  sw.reset();
  const std::size_t loaded = runtime::result_store::load(dir.string()).size();
  const double load_s = sw.seconds();

  json_value report = json_value::object();
  report["rows"] = rows;
  report["counted"] = counted;
  report["count_rows_seconds"] = count_s;
  report["load_seconds"] = load_s;
  report["speedup_count_vs_load"] = load_s / count_s;
  std::printf("result store: count_rows %.4f s, load %.4f s (%zu/%zu rows)\n",
              count_s, load_s, counted, loaded);
  return report;
}

}  // namespace

int main() {
  const fs::path root = fs::temp_directory_path() / "boson_bench_service";
  fs::remove_all(root);
  fs::create_directories(root);

  json_value report = json_value::object();
  try {
    report["http"] = time_http(root);
    report["journal_cursor"] = time_journal_cursor(root);
    report["result_store"] = time_count_rows(root);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_service: %s\n", e.what());
    return 1;
  }
  report.write_file("BENCH_service.json");
  std::printf("service timings written to BENCH_service.json\n");
  fs::remove_all(root);
  return 0;
}
