/// \file text.h
/// Small string utilities shared by the registries and the recipe policy
/// tables: Levenshtein edit distance and the "did you mean" suggestion every
/// unknown-name error message appends.

#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace boson {

/// Classic Levenshtein edit distance (insert/delete/substitute, each cost 1).
std::size_t edit_distance(const std::string& a, const std::string& b);

/// The candidate closest to `name` by edit distance, or "" when no candidate
/// is plausibly a typo (distance must not exceed `max_distance` nor half of
/// `name`'s length, so "xyz" never suggests an unrelated key).
std::string closest_match(const std::string& name,
                          const std::vector<std::string>& candidates,
                          std::size_t max_distance = 3);

/// "; did you mean 'X'?" when a plausible candidate exists, "" otherwise —
/// appended verbatim to unknown-name `bad_argument` messages.
std::string did_you_mean(const std::string& name,
                         const std::vector<std::string>& candidates);

/// Comma-join ("a, b, c") — the "(known: ...)" list of unknown-name errors.
std::string join_names(const std::vector<std::string>& names);

}  // namespace boson
