#pragma once

#include <string>

#include "common/array2d.h"

namespace boson::io {

/// Write a real-valued array as an 8-bit PGM image, linearly mapping
/// [lo, hi] -> [0, 255] (values clamped). Device patterns and aerial images
/// are dumped this way for visual inspection of the optimized structures.
void write_pgm(const std::string& path, const array2d<double>& data, double lo = 0.0,
               double hi = 1.0);

}  // namespace boson::io
