/// \file segment_log.h
/// Durable segmented append-only log — the storage subsystem under
/// `runtime/journal` and `service/registry`. One log is a *store directory*
/// holding:
///
///   manifest.jsonl        the segment chain protocol (see below)
///   segment-<seq>.jsonl   immutable-once-sealed record segments
///   lock                  flock(2) coordination file
///
/// Records are JSONL lines appended with a single O_APPEND write(2), so any
/// number of processes sharing the directory interleave whole lines only —
/// the same total-order property the single-file journal relied on for
/// lease append-then-verify. What the single file could not do is *rotate*:
/// here the active segment is rotated once it exceeds a byte/record
/// threshold, sealed segments can be *compacted* (folded into a snapshot
/// segment, crash-safe via temp+rename), and replaced segments are GC'd —
/// so replay and poll cost track live state, not total history.
///
/// Concurrency protocol (multi-process, crash-safe):
///  - appenders hold a SHARED flock on `lock` for the duration of one
///    append (verify the active segment, write one line);
///  - rotation, compaction, healing, and manifest writes hold the EXCLUSIVE
///    flock. The kernel releases flocks when a process dies, so a crashed
///    rotator never wedges the store.
///  - manifest appends are append-then-verify: the writer re-reads its own
///    record from the file before acting on it.
///
/// Manifest records (fold in file order; duplicates are idempotent):
///   {"op":"config", "segment_bytes":B, "segment_records":R,
///    "compact_segments":C}            creation-time defaults attachers adopt
///   {"op":"open", "seq":N}           segment N is the new active tail
///                                    (implicitly seals the previous one)
///   {"op":"compact", "seq":S, "first":A, "last":B, ...}
///                                    snapshot S replaces the contiguous
///                                    chain run A..B
///
/// Segment sequence numbers are minted monotonically and NEVER reused
/// (snapshots get fresh seqs), so a cursor's seq uniquely identifies one
/// file ever created; chain order comes from the manifest, not seq order.
///
/// Cursors are a single integer: 0 means "start of the chain"; otherwise
/// `((seq + 1) << 33) | byte_offset` — under 2^53, so they survive the
/// JSON/double round-trip of the control plane's `?cursor=` parameter, and
/// they never collide with a legacy single-file byte offset (< 2^33).
/// Because segments are immutable once sealed and seqs are never reused, a
/// cursor into any still-existing segment stays exactly valid across
/// rotation *and* compaction; a cursor into a compacted-away segment
/// resolves to the start of the covering snapshot (at-least-once
/// re-delivery, convergent for latest-wins/fold consumers).

#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace boson::store {

struct log_options {
  std::size_t segment_bytes = 0;    ///< rotate the active segment at >= bytes (0: never)
  std::size_t segment_records = 0;  ///< rotate at >= records (0: never)
  std::size_t compact_segments = 0; ///< `should_compact` once sealed count >= (0: never)
};

/// Compaction fold: receives every line of the sealed segments in replay
/// order and returns the subsequence to keep (verbatim lines — a snapshot
/// must preserve its consumers' fold state bit-for-bit; see
/// `runtime::journal::compaction_fold` for the journal's self-verifying
/// fold). Returning the input unchanged degrades compaction to a pure
/// segment merge, which is always safe.
using compaction_fold =
    std::function<std::vector<std::string>(const std::vector<std::string>&)>;

/// Test-only crash hook, called at named fault points ("rotate:before_manifest",
/// "compact:after_tmp", ...). Forked test children install a hook that
/// SIGKILLs themselves to exercise crash-during-rotation/compaction healing.
void set_crash_hook(std::function<void(const char*)> hook);

/// Encode/decode the (segment seq, byte offset) pair into the single-integer
/// wire cursor. Exposed for tests; 0 is "start of chain" and never encoded.
std::uint64_t encode_cursor(std::uint64_t seq, std::uint64_t offset);
void decode_cursor(std::uint64_t cursor, std::uint64_t& seq, std::uint64_t& offset);

/// One incremental read: complete (newline-terminated), non-blank lines
/// after a cursor, each paired with the cursor positioned *after* it —
/// what a caller must persist to make that line the last one consumed.
struct read_batch {
  std::vector<std::string> lines;
  std::vector<std::uint64_t> cursors;  ///< cursors[i] = position after lines[i]
  std::uint64_t end_cursor = 0;        ///< position after everything consumed
};

/// The fold of `manifest.jsonl` (implementation detail; see segment_log.cpp).
struct manifest_state;

/// A segmented append-only log over one store directory. Instances are the
/// *writer* handle (append / rotate / compact); reads go through the static
/// functions so pollers in other processes never need an instance.
class segment_log {
 public:
  /// True when `path` is a store directory (its manifest exists).
  static bool is_store_dir(const std::string& path);

  /// Open (creating if needed) the store at `dir`. Creation writes the
  /// config + first `open` manifest records; attaching adopts the creator's
  /// config for every option left zero, so attaching workers rotate and
  /// compact the way the creator configured without their own flags.
  /// Healing (torn active-segment/manifest tails) and orphan GC run under
  /// the exclusive lock before the constructor returns.
  segment_log(std::string dir, log_options opts = {}, std::string label = "store");
  ~segment_log();

  segment_log(const segment_log&) = delete;
  segment_log& operator=(const segment_log&) = delete;

  /// Append one record (`line` has no trailing newline): a single O_APPEND
  /// write under the shared lock, flushed to the fd before returning.
  /// Rotates afterwards when the active segment crossed a threshold.
  void append(const std::string& line);

  /// Run `fn` holding the store's exclusive lock (and the instance mutex).
  /// `append`/read calls from inside `fn` skip re-locking — this is how the
  /// registry serializes cross-process submits (sync, mint id, append) as
  /// one atomic section.
  void with_exclusive(const std::function<void()>& fn);

  /// True when the sealed-segment count reached `compact_segments`.
  bool should_compact();

  /// Fold every sealed segment into one snapshot segment: read their lines,
  /// apply `fold`, write the snapshot via temp+rename, append the manifest
  /// `compact` record (append-then-verify), then unlink the replaced
  /// segments. Crash-safe at every step — until the manifest record lands
  /// the store replays exactly as before. Returns the number of records
  /// compacted away (0 when there was nothing to do).
  std::size_t compact(const compaction_fold& fold);

  /// Instance read (usable inside `with_exclusive` without self-deadlock):
  /// complete lines after `cursor`, advancing it. `max_lines` 0 = no cap.
  read_batch read_since(std::uint64_t cursor, std::size_t max_lines = 0);

  const std::string& dir() const { return dir_; }
  const log_options& options() const { return opts_; }

  /// Segments currently in the chain (sealed + active). Fresh manifest fold.
  std::size_t segment_count();

  // ---- static readers (any process; shared lock per call) ----

  /// Every complete line of the whole chain, in replay order.
  static std::vector<std::string> read_all(const std::string& dir,
                                           const std::string& label);

  /// Complete lines after `cursor` (0 = chain start), `max_lines` 0 = no
  /// cap. The returned batch carries per-line cursors so callers with a
  /// deferred-failure contract (journal::since) can stop mid-batch.
  static read_batch read_since_dir(const std::string& dir, const std::string& label,
                                   std::uint64_t cursor, std::size_t max_lines = 0);

 private:
  void acquire(bool exclusive);
  void release();
  void refresh_locked();
  bool ensure_active_locked();  ///< false: active tail is torn, heal under EX
  void heal_active_locked();    ///< requires the exclusive lock
  void rotate_locked();         ///< requires the exclusive lock
  void append_manifest_locked(const std::string& line);  ///< EX; append-then-verify
  std::size_t gc_locked();      ///< unlink non-chain segments + temps (EX)

  std::string dir_;
  std::string label_;
  log_options opts_;

  std::recursive_mutex mutex_;
  int lock_fd_ = -1;
  int lock_depth_ = 0;          ///< nested acquire() count (mutex-protected)
  bool lock_exclusive_ = false; ///< the held flock is LOCK_EX

  int active_fd_ = -1;
  std::uint64_t active_seq_ = 0;
  std::size_t active_bytes_ = 0;
  std::size_t active_records_ = 0;

  std::unique_ptr<manifest_state> state_;  ///< cached manifest fold
  std::uintmax_t manifest_bytes_ = 0;      ///< manifest size at last fold
};

}  // namespace boson::store
