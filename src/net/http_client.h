/// \file http_client.h
/// Minimal blocking HTTP/1.1 client for the control plane: one connection
/// per request (Connection: close), Content-Length uploads, Content-Length /
/// chunked / EOF-framed downloads, per-read socket timeouts. This is the
/// transport behind `boson_cli campaign submit|watch|report --server` and
/// the loopback test harness — not a general-purpose user agent (no TLS, no
/// redirects, no proxies, IPv4 + literal hosts and "localhost" only).

#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "net/http.h"

namespace boson::net {

/// Pieces of an "http://host[:port]/path" URL. Only the http scheme is
/// accepted; the port defaults to 80; the target defaults to "/".
struct url_parts {
  std::string host;
  std::uint16_t port = 80;
  std::string target = "/";

  static url_parts parse(const std::string& url);  ///< throws bad_argument
};

struct http_client_options {
  double timeout = 30.0;  ///< seconds a connect or single read may block
  http_limits limits;     ///< response size ceilings
};

class http_client {
 public:
  /// `base_url` names the server ("http://127.0.0.1:8080"); request paths
  /// are appended to it.
  explicit http_client(const std::string& base_url, http_client_options options = {});

  /// Issue one request. `path` must start with '/'. Throws `io_error` when
  /// the server is unreachable or the connection dies mid-response,
  /// `http_error` when the response itself is malformed. Non-2xx responses
  /// are returned, not thrown — the control plane's error envelopes carry
  /// meaning.
  http_response get(const std::string& path,
                    const std::vector<std::pair<std::string, std::string>>& headers = {});
  http_response post(const std::string& path, const std::string& body,
                     const std::vector<std::pair<std::string, std::string>>& headers = {});
  http_response del(const std::string& path,
                    const std::vector<std::pair<std::string, std::string>>& headers = {});

  const std::string& host() const { return parts_.host; }
  std::uint16_t port() const { return parts_.port; }

 private:
  http_response request(const std::string& method, const std::string& path,
                        const std::string& body,
                        std::vector<std::pair<std::string, std::string>> headers);

  url_parts parts_;
  http_client_options options_;
};

/// Raw exchange: connect, write `bytes` verbatim, read until the peer
/// closes or `timeout` passes, return everything received. The malformed-
/// request test corpus speaks through this (a well-formed client cannot
/// *produce* a bad request).
std::string raw_exchange(const std::string& host, std::uint16_t port,
                         const std::string& bytes, double timeout = 10.0);

}  // namespace boson::net
