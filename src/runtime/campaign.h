/// \file campaign.h
/// The campaign layer's declarative input: a `campaign_spec` names a base
/// `experiment_spec` plus axes (devices x methods x seeds x named overrides)
/// and expands into the cross product of jobs with deterministic indices and
/// names — the paper's "15 methods x 3 devices x variation corners" sweeps
/// as one JSON file. `shard_range` partitions the expansion round-robin for
/// multi-machine fan-out: shards of the same campaign are disjoint and
/// together cover every job, whatever N is.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "api/spec.h"
#include "io/json.h"

namespace boson::runtime {

/// Deterministic "i/N" partition of a campaign's job list. Job j belongs to
/// shard i iff j % N == i, so shards are disjoint, cover every index, and do
/// not depend on which jobs have already completed.
struct shard_range {
  std::size_t index = 0;
  std::size_t count = 1;

  bool contains(std::size_t job_index) const { return job_index % count == index; }

  /// Parse the CLI form "i/N" (e.g. "0/2"); requires i < N and N >= 1.
  static shard_range parse(const std::string& text);
  std::string to_string() const;
};

/// One expanded job: its position in the deterministic expansion order, a
/// unique filesystem-safe name, and the fully-resolved experiment spec.
struct campaign_job {
  std::size_t index = 0;
  std::string name;
  api::experiment_spec spec;
};

/// A named partial-spec patch forming the campaign's fourth axis (variation
/// and lithography override studies). The patch is a JSON object deep-merged
/// over the base spec; only spec-owned sections (run / litho / eole /
/// resolution / objective / evaluation) may appear in it.
struct campaign_override {
  std::string name;      ///< suffixed onto job names; "" for the no-op axis
  io::json_value patch;  ///< JSON object merged over the base spec
};

/// A campaign-local named recipe. `axes.methods` entries resolve against
/// these *before* the method registry, so one campaign.json can sweep
/// never-registered hybrid recipes next to the built-in presets.
struct campaign_recipe {
  std::string name;            ///< the axes.methods key this recipe answers to
  core::method_recipe recipe;  ///< attached to every job the axis entry expands
};

/// Scheduler knobs declared in campaign.json (CLI flags override them).
struct scheduler_settings {
  std::size_t workers = 2;           ///< concurrent jobs
  std::size_t max_retries = 1;       ///< extra attempts after a job failure
  std::size_t checkpoint_every = 0;  ///< optimizer iterations between snapshots
  double lease_ttl = 30.0;           ///< seconds a job lease stays live between heartbeats
};

/// Declarative description of a whole campaign.
struct campaign_spec {
  std::string name = "campaign";
  std::vector<std::string> devices;         ///< device-registry keys (required)
  std::vector<std::string> methods;         ///< method-registry keys (required)
  std::vector<std::uint64_t> seeds;         ///< defaults to {base.seed}
  std::vector<campaign_override> overrides; ///< defaults to one no-op override
  std::vector<campaign_recipe> recipes;     ///< campaign-local method recipes
  api::experiment_spec base;                ///< template every job starts from
  scheduler_settings scheduler;

  /// Jobs in the deterministic expansion order (device-major, then method,
  /// seed, override). Every job spec is validated against the registries;
  /// the first invalid combination throws `bad_argument` naming the job.
  std::vector<campaign_job> expand() const;

  /// devices x methods x seeds x overrides, without building the specs.
  std::size_t job_count() const;

  io::json_value to_json() const;

  /// Strict parse mirroring `experiment_spec::from_json`: unknown keys,
  /// wrong types, empty axes and axis-owned keys inside `base` all produce
  /// precise `bad_argument` messages.
  static campaign_spec from_json(const io::json_value& v);

  /// Parse a campaign.json file.
  static campaign_spec load(const std::string& path);
};

}  // namespace boson::runtime
