// Fig. 6(b) of the paper: effect of the conditional subspace relaxation
// schedule (the "high-dimensional tunnel") on the optical isolator.
//
// The fabrication-aware weight p ramps 0 -> 1 over `relax_epochs`
// iterations; "w/o" disables the tunnel entirely. As in the paper, the
// hyperparameter is evaluated on the nominal corner without variation.
// Expected shape: no relaxation is markedly worse (stuck in the fabricable
// subspace's local optima); a ramp of roughly half the run is best; ramping
// until the very end leaves too little time to consolidate.

#include "bench_common.h"
#include "core/run.h"

int main() {
  using namespace boson;

  const stopwatch total;
  core::experiment_config cfg = core::default_config();
  const std::size_t iters = cfg.scaled_iterations();

  bench::print_banner("Fig. 6(b): subspace relaxation epochs vs contrast");

  std::vector<std::pair<std::size_t, std::string>> settings{{0, "w/o"}};
  for (const std::size_t e : {10, 20, 30, 40, 50}) {
    const auto scaled = static_cast<std::size_t>(
        std::lround(static_cast<double>(e) * cfg.scale));
    settings.emplace_back(std::min(scaled, iters), std::to_string(e));
  }

  io::csv_writer csv("fig6b_relaxation.csv",
                     {"relax_epochs", "nominal_contrast", "fwd", "bwd"});
  io::console_table table({"relax epochs", "contrast (nominal corner)", "fwd T", "bwd T"});

  for (const auto& [epochs, label] : settings) {
    const dev::device_spec device = dev::make_isolator();
    core::design_problem problem = core::make_problem(device, true, cfg);

    core::run_options ro;
    ro.iterations = iters;
    ro.learning_rate = cfg.learning_rate;
    ro.fab_aware = true;
    ro.dense_objectives = true;
    ro.relax_epochs = epochs;
    ro.sampling = robust::sampling_strategy::nominal_only;  // searched without variation
    ro.seed = cfg.seed;

    const core::run_result res =
        core::run_inverse_design(problem, core::concentrated_init(problem), ro);

    // Nominal-corner post-fab evaluation (hard etch).
    robust::variation_corner nominal;
    nominal.xi.assign(problem.fab().space.eole_terms, 0.0);
    core::eval_options o;
    o.fab_aware = true;
    o.hard_etch = true;
    o.dense_objectives = false;
    o.compute_gradient = false;
    const auto ev =
        problem.evaluate_pattern(core::binarize(res.design_rho), nominal, o);

    table.add_row({label, io::console_table::sci(ev.metrics.at("contrast")),
                   io::console_table::num(ev.metrics.at("fwd_transmission"), 4),
                   io::console_table::num(ev.metrics.at("bwd_transmission"), 5)});
    csv.write_row(label, {ev.metrics.at("contrast"), ev.metrics.at("fwd_transmission"),
                          ev.metrics.at("bwd_transmission")});
    std::printf("  relax=%-4s contrast=%.4g\n", label.c_str(), ev.metrics.at("contrast"));
  }

  std::printf("\n");
  table.print("Conditional subspace relaxation sweep");
  std::printf("raw rows: fig6b_relaxation.csv\n");
  bench::print_runtime(total);
  return 0;
}
