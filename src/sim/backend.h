/// \file backend.h
/// Pluggable linear-solver backends for the FDFD simulation engine. One
/// `linear_backend` wraps one prepared operator (banded LU factorization or
/// CSR + ILU(0)) and answers batched solves; `backend_kind` selects among the
/// banded direct solver and the ILU(0)-preconditioned Krylov methods, with a
/// `BOSON_BACKEND` environment override for experiments.

#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "common/types.h"

namespace boson::fdfd {
class fdfd_solver;
}

namespace boson::sim {

/// Which linear solver answers the FDFD systems of one engine.
enum class backend_kind {
  banded,    ///< direct banded LU with partial pivoting (default)
  bicgstab,  ///< ILU(0)-preconditioned BiCGSTAB on the CSR operator
  gmres,     ///< ILU(0)-preconditioned restarted GMRES on the CSR operator
};

const char* to_string(backend_kind kind);

/// Parse a backend name ("banded"/"direct"/"lu", "bicgstab", "gmres").
/// Throws `bad_argument` on anything else.
backend_kind backend_from_string(const std::string& name);

/// Backend selected by the BOSON_BACKEND environment variable, `banded` when
/// unset. Re-read on every call so drivers and tests can switch at runtime.
backend_kind default_backend();

/// Per-engine solver configuration. The iterative controls are ignored by
/// the banded direct backend.
struct engine_settings {
  backend_kind backend = default_backend();
  double tol = 1e-10;                ///< iterative relative-residual target
  std::size_t max_iterations = 4000; ///< iterative iteration cap
  std::size_t gmres_restart = 80;    ///< GMRES restart length
};

/// A prepared linear solver for one FDFD operator. Preparation (banded
/// factorization or ILU(0) setup) happens in `make_backend`; `solve` is
/// const and safe to call from several threads concurrently.
class linear_backend {
 public:
  virtual ~linear_backend() = default;

  virtual const char* name() const = 0;

  /// Solve A x = b for every right-hand side of one batch; returns the
  /// solutions in order. Iterative backends throw `numeric_error` when a
  /// solve fails to reach the residual target.
  virtual std::vector<cvec> solve(const std::vector<cvec>& rhs) const = 0;
};

/// Prepare the backend selected by `settings` for the solver's operator.
/// The returned backend references `solver` and must not outlive it.
std::unique_ptr<linear_backend> make_backend(const fdfd::fdfd_solver& solver,
                                             const engine_settings& settings);

}  // namespace boson::sim
