#include "fft/fft.h"

#include <cmath>

#include "common/error.h"

namespace boson::fft {

bool is_power_of_two(std::size_t n) { return n >= 1 && (n & (n - 1)) == 0; }

std::size_t next_power_of_two(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

namespace {

/// Iterative radix-2 Cooley-Tukey; length must be a power of two.
void fft_pow2(cvec& a, bool inverse) {
  const std::size_t n = a.size();
  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(a[i], a[j]);
  }
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle = (inverse ? 2.0 : -2.0) * pi / static_cast<double>(len);
    const cplx wn = std::polar(1.0, angle);
    for (std::size_t start = 0; start < n; start += len) {
      cplx w{1.0, 0.0};
      for (std::size_t k = 0; k < len / 2; ++k) {
        const cplx u = a[start + k];
        const cplx v = a[start + k + len / 2] * w;
        a[start + k] = u + v;
        a[start + k + len / 2] = u - v;
        w *= wn;
      }
    }
  }
  if (inverse) {
    const double scale = 1.0 / static_cast<double>(n);
    for (auto& v : a) v *= scale;
  }
}

/// Bluestein's chirp-z algorithm: expresses an arbitrary-length DFT as a
/// convolution, which is evaluated with power-of-two FFTs.
void fft_bluestein(cvec& a, bool inverse) {
  const std::size_t n = a.size();
  const std::size_t m = next_power_of_two(2 * n - 1);
  const double sign = inverse ? 1.0 : -1.0;

  cvec chirp(n);
  for (std::size_t k = 0; k < n; ++k) {
    // Split k^2 mod 2n to avoid precision loss for large k.
    const double phase = sign * pi * static_cast<double>((k * k) % (2 * n)) /
                         static_cast<double>(n);
    chirp[k] = std::polar(1.0, phase);
  }

  cvec x(m, cplx{});
  for (std::size_t k = 0; k < n; ++k) x[k] = a[k] * chirp[k];

  cvec y(m, cplx{});
  y[0] = std::conj(chirp[0]);
  for (std::size_t k = 1; k < n; ++k) {
    y[k] = std::conj(chirp[k]);
    y[m - k] = std::conj(chirp[k]);
  }

  fft_pow2(x, false);
  fft_pow2(y, false);
  for (std::size_t k = 0; k < m; ++k) x[k] *= y[k];
  fft_pow2(x, true);

  for (std::size_t k = 0; k < n; ++k) a[k] = x[k] * chirp[k];
  if (inverse) {
    const double scale = 1.0 / static_cast<double>(n);
    for (auto& v : a) v *= scale;
  }
}

}  // namespace

void fft_inplace(cvec& data, bool inverse) {
  const std::size_t n = data.size();
  if (n <= 1) return;
  if (is_power_of_two(n)) {
    fft_pow2(data, inverse);
  } else {
    fft_bluestein(data, inverse);
  }
}

cvec dft_reference(const cvec& data, bool inverse) {
  const std::size_t n = data.size();
  cvec out(n, cplx{});
  const double sign = inverse ? 2.0 : -2.0;
  for (std::size_t k = 0; k < n; ++k) {
    cplx acc{};
    for (std::size_t j = 0; j < n; ++j) {
      const double angle = sign * pi * static_cast<double>(k * j) / static_cast<double>(n);
      acc += data[j] * std::polar(1.0, angle);
    }
    out[k] = inverse ? acc / static_cast<double>(n) : acc;
  }
  return out;
}

void fft2d_inplace(array2d<cplx>& data, bool inverse) {
  const std::size_t nx = data.nx();
  const std::size_t ny = data.ny();
  if (nx == 0 || ny == 0) return;

  // Rows (contiguous along y).
  cvec row(ny);
  for (std::size_t ix = 0; ix < nx; ++ix) {
    for (std::size_t iy = 0; iy < ny; ++iy) row[iy] = data(ix, iy);
    fft_inplace(row, inverse);
    for (std::size_t iy = 0; iy < ny; ++iy) data(ix, iy) = row[iy];
  }
  // Columns (strided along x).
  cvec column(nx);
  for (std::size_t iy = 0; iy < ny; ++iy) {
    for (std::size_t ix = 0; ix < nx; ++ix) column[ix] = data(ix, iy);
    fft_inplace(column, inverse);
    for (std::size_t ix = 0; ix < nx; ++ix) data(ix, iy) = column[ix];
  }
}

}  // namespace boson::fft
