// Tests of the durable segmented log store (src/store) and the journal's
// ride on top of it: rotation + replay order, incremental cursors across
// rotation and compaction, config adoption by attaching processes, torn-tail
// healing, SIGKILL crashes at named fault points inside rotation and
// compaction (forked children; the parent verifies the survivors replay
// bit-identically), multi-process append interleaving, and the journal's
// self-verifying compaction fold.

#include <gtest/gtest.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "io/json.h"
#include "runtime/journal.h"
#include "runtime/lease.h"
#include "store/segment_log.h"

namespace boson {
namespace {

namespace fs = std::filesystem;

fs::path fresh_dir(const std::string& name) {
  const fs::path dir = fs::path(testing::TempDir()) / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

/// Fork a child running `fn`; the child never returns into gtest.
template <class Fn>
pid_t fork_child(Fn&& fn) {
  const pid_t pid = ::fork();
  if (pid == 0) {
    fn();
    std::_Exit(0);
  }
  return pid;
}

enum class child_end { clean_exit, sigkilled, other };

child_end wait_child(pid_t pid) {
  int status = 0;
  ::waitpid(pid, &status, 0);
  if (WIFEXITED(status) && WEXITSTATUS(status) == 0) return child_end::clean_exit;
  if (WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL) return child_end::sigkilled;
  return child_end::other;
}

/// SIGKILL the calling process when the named fault point is reached —
/// installed inside forked children to simulate a crash mid-operation.
void crash_at(const std::string& point) {
  store::set_crash_hook([point](const char* at) {
    if (point == at) ::kill(::getpid(), SIGKILL);
  });
}

std::string rec(int i) { return "{\"i\":" + std::to_string(i) + "}"; }

/// Keyed record for fold tests: latest line per key wins.
std::string keyed(int key, int round) {
  return "{\"k\":" + std::to_string(key) + ",\"round\":" + std::to_string(round) + "}";
}

std::vector<std::string> latest_per_key(const std::vector<std::string>& lines) {
  std::map<std::string, std::size_t> last;
  for (std::size_t i = 0; i < lines.size(); ++i)
    last[io::json_value::parse(lines[i]).at("k").dump(-1)] = i;
  std::vector<std::size_t> keep;
  for (const auto& [k, i] : last) keep.push_back(i);
  std::sort(keep.begin(), keep.end());
  std::vector<std::string> kept;
  for (const std::size_t i : keep) kept.push_back(lines[i]);
  return kept;
}

// ------------------------------------------------------ rotation + cursors ---

TEST(segment_log, rotates_by_record_count_and_replays_in_order) {
  const fs::path dir = fresh_dir("store_rotate");
  store::segment_log log(dir.string(), {0, 4, 0});
  for (int i = 0; i < 10; ++i) log.append(rec(i));
  EXPECT_GE(log.segment_count(), 3u);

  const auto lines = store::segment_log::read_all(dir.string(), "test");
  ASSERT_EQ(lines.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(lines[static_cast<std::size_t>(i)], rec(i));
}

TEST(segment_log, incremental_cursors_stay_exact_across_rotation) {
  const fs::path dir = fresh_dir("store_cursors");
  store::segment_log log(dir.string(), {0, 3, 0});

  std::uint64_t cursor = 0;
  std::vector<std::string> seen;
  for (int i = 0; i < 11; ++i) {
    log.append(rec(i));
    const store::read_batch batch =
        store::segment_log::read_since_dir(dir.string(), "test", cursor);
    for (const std::string& line : batch.lines) seen.push_back(line);
    cursor = batch.end_cursor;
  }
  ASSERT_EQ(seen.size(), 11u);
  for (int i = 0; i < 11; ++i) EXPECT_EQ(seen[static_cast<std::size_t>(i)], rec(i));
  EXPECT_TRUE(
      store::segment_log::read_since_dir(dir.string(), "test", cursor).lines.empty());
}

TEST(segment_log, max_lines_pages_through_the_chain_without_gaps) {
  const fs::path dir = fresh_dir("store_pages");
  store::segment_log log(dir.string(), {0, 3, 0});
  for (int i = 0; i < 10; ++i) log.append(rec(i));

  std::uint64_t cursor = 0;
  std::vector<std::string> seen;
  while (true) {
    const store::read_batch page =
        store::segment_log::read_since_dir(dir.string(), "test", cursor, 4);
    if (page.lines.empty()) break;
    EXPECT_LE(page.lines.size(), 4u);
    for (const std::string& line : page.lines) seen.push_back(line);
    cursor = page.end_cursor;
  }
  ASSERT_EQ(seen.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(seen[static_cast<std::size_t>(i)], rec(i));
}

TEST(segment_log, attacher_adopts_the_creators_config) {
  const fs::path dir = fresh_dir("store_config");
  { store::segment_log creator(dir.string(), {1024, 7, 3}); }

  store::segment_log attached(dir.string());  // all options zero
  EXPECT_EQ(attached.options().segment_bytes, 1024u);
  EXPECT_EQ(attached.options().segment_records, 7u);
  EXPECT_EQ(attached.options().compact_segments, 3u);
}

TEST(segment_log, heals_a_torn_active_tail_on_attach) {
  const fs::path dir = fresh_dir("store_torn");
  { // no rotation: all records land in segment 0
    store::segment_log log(dir.string());
    for (int i = 0; i < 3; ++i) log.append(rec(i));
  }
  std::ofstream(dir / "segment-000000.jsonl", std::ios::app) << "{\"torn\": tr";

  store::segment_log reopened(dir.string());
  reopened.append(rec(3));
  const auto lines = store::segment_log::read_all(dir.string(), "test");
  ASSERT_EQ(lines.size(), 4u);
  EXPECT_EQ(lines[3], rec(3));
}

// ------------------------------------------------------------- compaction ---

TEST(segment_log, compaction_preserves_fold_state_and_live_cursors) {
  const fs::path dir = fresh_dir("store_compact");
  store::segment_log log(dir.string(), {0, 4, 2});
  for (int round = 0; round < 4; ++round)
    for (int key = 0; key < 4; ++key) log.append(keyed(key, round));

  const store::read_batch before =
      store::segment_log::read_since_dir(dir.string(), "test", 0);
  ASSERT_EQ(before.lines.size(), 16u);
  const std::uint64_t tail = before.end_cursor;
  const std::uint64_t early = before.cursors[0];  // inside the first segment

  ASSERT_TRUE(log.should_compact());
  const std::size_t folded = log.compact(&latest_per_key);
  EXPECT_GT(folded, 0u);

  // Whole-chain replay after compaction folds to the same latest-per-key
  // state as the full pre-compaction history.
  const auto after = store::segment_log::read_all(dir.string(), "test");
  EXPECT_LT(after.size(), before.lines.size());
  EXPECT_EQ(latest_per_key(after), latest_per_key(before.lines));

  // A cursor at the live tail stays exactly valid: only records appended
  // after it are delivered.
  log.append(keyed(7, 7));
  const store::read_batch resumed =
      store::segment_log::read_since_dir(dir.string(), "test", tail);
  ASSERT_EQ(resumed.lines.size(), 1u);
  EXPECT_EQ(resumed.lines[0], keyed(7, 7));

  // A cursor into a compacted-away segment re-delivers from the covering
  // snapshot: at-least-once, and convergent for a latest-wins consumer.
  const store::read_batch redelivered =
      store::segment_log::read_since_dir(dir.string(), "test", early);
  EXPECT_GE(redelivered.lines.size(), 4u);
  std::vector<std::string> full = before.lines;
  full.push_back(keyed(7, 7));
  EXPECT_EQ(latest_per_key(redelivered.lines), latest_per_key(full));
}

// ------------------------------------------------------- crash resilience ---

TEST(segment_log, sigkill_during_rotation_heals_and_loses_nothing) {
  for (const char* point : {"rotate:before_manifest", "rotate:after_manifest"}) {
    const fs::path dir = fresh_dir(std::string("store_crash_rotate_") +
                                   (std::string(point).find("before") !=
                                            std::string::npos
                                        ? "before"
                                        : "after"));
    {
      store::segment_log log(dir.string(), {0, 4, 0});
      for (int i = 0; i < 3; ++i) log.append(rec(i));
    }

    const pid_t pid = fork_child([&] {
      crash_at(point);
      store::segment_log log(dir.string());
      log.append(rec(3));  // crosses the threshold: rotation dies at `point`
    });
    ASSERT_EQ(wait_child(pid), child_end::sigkilled) << point;

    // Reattach: healing + GC run in the constructor; every append before the
    // crash survives exactly once and new appends continue.
    store::segment_log log(dir.string());
    log.append(rec(4));
    const auto lines = store::segment_log::read_all(dir.string(), "test");
    ASSERT_EQ(lines.size(), 5u) << point;
    for (int i = 0; i < 5; ++i)
      EXPECT_EQ(lines[static_cast<std::size_t>(i)], rec(i)) << point;
  }
}

TEST(segment_log, sigkill_before_compaction_commits_replays_bit_identical) {
  for (const char* point :
       {"compact:before_tmp", "compact:after_tmp", "compact:before_manifest"}) {
    const fs::path dir = fresh_dir("store_crash_compact");
    std::vector<std::string> expected;
    {
      store::segment_log log(dir.string(), {0, 3, 2});
      for (int round = 0; round < 3; ++round)
        for (int key = 0; key < 3; ++key) log.append(keyed(key, round));
      expected = store::segment_log::read_all(dir.string(), "test");
    }
    ASSERT_EQ(expected.size(), 9u);

    const pid_t pid = fork_child([&] {
      crash_at(point);
      store::segment_log log(dir.string());
      log.compact(&latest_per_key);
    });
    ASSERT_EQ(wait_child(pid), child_end::sigkilled) << point;

    // Until the manifest compact record lands, the chain replays exactly as
    // before — bit for bit.
    EXPECT_EQ(store::segment_log::read_all(dir.string(), "test"), expected) << point;

    // Reattaching GCs any snapshot temp the crash left behind.
    store::segment_log reopened(dir.string());
    for (const auto& entry : fs::directory_iterator(dir)) {
      if (entry.path().filename() == "lock") continue;
      EXPECT_EQ(entry.path().extension(), ".jsonl") << entry.path() << " at " << point;
    }
  }
}

TEST(segment_log, sigkill_after_compaction_commits_keeps_the_snapshot) {
  const fs::path dir = fresh_dir("store_crash_compact_commit");
  std::vector<std::string> full;
  {
    store::segment_log log(dir.string(), {0, 3, 2});
    for (int round = 0; round < 3; ++round)
      for (int key = 0; key < 3; ++key) log.append(keyed(key, round));
    full = store::segment_log::read_all(dir.string(), "test");
  }

  const pid_t pid = fork_child([&] {
    crash_at("compact:after_manifest");
    store::segment_log log(dir.string());
    log.compact(&latest_per_key);
  });
  ASSERT_EQ(wait_child(pid), child_end::sigkilled);

  // The manifest committed the snapshot before the crash: replay is the
  // folded state even though the replaced segments may still be on disk.
  EXPECT_EQ(latest_per_key(store::segment_log::read_all(dir.string(), "test")),
            latest_per_key(full));

  // Reattach GCs the replaced segments; replay is unchanged by GC.
  store::segment_log reopened(dir.string());
  EXPECT_EQ(latest_per_key(store::segment_log::read_all(dir.string(), "test")),
            latest_per_key(full));
}

// --------------------------------------------------- multi-process appends ---

TEST(segment_log, concurrent_appenders_interleave_whole_lines_across_rotation) {
  const fs::path dir = fresh_dir("store_concurrent");
  { store::segment_log creator(dir.string(), {0, 8, 0}); }

  constexpr int kChildren = 4;
  constexpr int kEach = 25;
  std::vector<pid_t> pids;
  for (int c = 0; c < kChildren; ++c) {
    pids.push_back(fork_child([&, c] {
      store::segment_log log(dir.string());
      for (int i = 0; i < kEach; ++i)
        log.append("{\"child\":" + std::to_string(c) + ",\"i\":" + std::to_string(i) +
                   "}");
    }));
  }
  for (const pid_t pid : pids) ASSERT_EQ(wait_child(pid), child_end::clean_exit);

  // Every line is complete and parseable; each child's lines appear in its
  // own append order; nothing was lost or torn by concurrent rotation.
  const auto lines = store::segment_log::read_all(dir.string(), "test");
  ASSERT_EQ(lines.size(), static_cast<std::size_t>(kChildren * kEach));
  std::map<int, int> next;
  for (const std::string& line : lines) {
    const io::json_value v = io::json_value::parse(line);
    const int child = static_cast<int>(v.at("child").as_number());
    EXPECT_EQ(static_cast<int>(v.at("i").as_number()), next[child]);
    ++next[child];
  }
  for (int c = 0; c < kChildren; ++c) EXPECT_EQ(next[c], kEach);
}

// ------------------------------------------------------ journal-on-store ---

runtime::journal_entry entry(std::size_t job, runtime::job_state state,
                             const std::string& worker = "", std::uint64_t lease = 0,
                             double deadline = 0.0, double stamp = 0.0,
                             std::size_t attempt = 0) {
  runtime::journal_entry e;
  e.job_index = job;
  e.job_name = "job" + std::to_string(job);
  e.state = state;
  e.worker = worker;
  e.lease_id = lease;
  e.deadline = deadline;
  e.stamp = stamp;
  e.attempt = attempt;
  return e;
}

TEST(journal_store, segmented_journal_round_trips_and_compacts) {
  const fs::path dir = fresh_dir("journal_store");
  runtime::journal_options jo;
  jo.segment_records = 4;
  jo.compact_segments = 2;

  runtime::journal log(dir.string(), jo);
  ASSERT_TRUE(log.segmented());

  // A three-job history with enough traffic to rotate several times.
  using runtime::job_state;
  std::vector<runtime::journal_entry> history;
  for (std::size_t job = 0; job < 3; ++job) {
    history.push_back(entry(job, job_state::leased, "w1", job + 1, 10.0, 1.0, 1));
    history.push_back(entry(job, job_state::running, "w1", job + 1, 0.0, 1.5, 1));
    history.push_back(
        entry(job, job_state::lease_renewed, "w1", job + 1, 20.0, 2.0, 1));
    history.push_back(entry(job, job_state::checkpointed, "w1", job + 1, 0.0, 3.0, 1));
  }
  history.push_back(entry(0, job_state::completed, "w1", 1, 0.0, 4.0, 1));
  history.push_back(entry(1, job_state::lease_released, "w1", 2, 0.0, 4.5, 1));
  for (const auto& e : history) log.append(e);

  // Replay sees the full history in order through the store directory.
  const auto replayed = runtime::journal::replay(log.path());
  ASSERT_EQ(replayed.size(), history.size());
  for (std::size_t i = 0; i < history.size(); ++i) {
    EXPECT_EQ(replayed[i].job_index, history[i].job_index);
    EXPECT_EQ(replayed[i].state, history[i].state);
  }

  // An incremental cursor parked at the tail stays valid across compaction.
  runtime::journal_cursor cursor;
  (void)runtime::journal::since(log.path(), cursor);
  EXPECT_GT(log.compact(), 0u);
  EXPECT_TRUE(runtime::journal::since(log.path(), cursor).empty());
  log.append(entry(2, job_state::completed, "w1", 3, 0.0, 5.0, 1));
  const auto fresh = runtime::journal::since(log.path(), cursor);
  ASSERT_EQ(fresh.size(), 1u);
  EXPECT_EQ(fresh[0].state, job_state::completed);

  // The compacted chain resolves to the same lease state as the full one.
  runtime::lease_table folded;
  for (const auto& e : runtime::journal::replay(log.path())) folded.apply(e);
  runtime::lease_table truth;
  for (const auto& e : history) truth.apply(e);
  truth.apply(entry(2, job_state::completed, "w1", 3, 0.0, 5.0, 1));
  for (std::size_t job = 0; job < 3; ++job) {
    const auto a = folded.view(job);
    const auto b = truth.view(job);
    EXPECT_EQ(a.state, b.state) << "job " << job;
    EXPECT_EQ(a.worker, b.worker) << "job " << job;
    EXPECT_EQ(a.attempts, b.attempts) << "job " << job;
  }
}

TEST(journal_store, compaction_fold_is_lease_equivalent_and_idempotent) {
  using runtime::job_state;
  std::vector<runtime::journal_entry> history;
  // Job 0: full happy path with heartbeats — fold should drop the chatter.
  history.push_back(entry(0, job_state::leased, "w1", 1, 10.0, 1.0, 1));
  history.push_back(entry(0, job_state::running, "w1", 1, 0.0, 1.1, 1));
  for (int i = 0; i < 8; ++i)
    history.push_back(entry(0, job_state::lease_renewed, "w1", 1, 12.0 + i, 2.0 + i, 1));
  history.push_back(entry(0, job_state::completed, "w1", 1, 0.0, 11.0, 1));
  // Job 1: expiry + re-lease by another worker, still live.
  history.push_back(entry(1, job_state::leased, "w1", 2, 5.0, 1.0, 1));
  history.push_back(entry(1, job_state::lease_expired, "w2", 0, 0.0, 6.0, 1));
  history.push_back(entry(1, job_state::leased, "w2", 1, 16.0, 6.1, 2));
  history.push_back(entry(1, job_state::running, "w2", 1, 0.0, 6.2, 2));
  // Job 2: released back to pending.
  history.push_back(entry(2, job_state::leased, "w3", 1, 9.0, 1.0, 1));
  history.push_back(entry(2, job_state::lease_released, "w3", 1, 0.0, 2.0, 1));

  std::vector<std::string> lines;
  for (const auto& e : history) lines.push_back(e.to_json().dump(-1));
  const std::vector<std::string> kept = runtime::journal::compaction_fold(lines);
  EXPECT_LT(kept.size(), lines.size());  // the heartbeats folded away

  std::vector<runtime::journal_entry> kept_entries;
  for (const auto& line : kept)
    kept_entries.push_back(
        runtime::journal_entry::from_json(io::json_value::parse(line)));

  runtime::lease_table truth;
  for (const auto& e : history) truth.apply(e);
  runtime::lease_table folded;
  for (const auto& e : kept_entries) folded.apply(e);
  for (std::size_t job = 0; job < 3; ++job) {
    const auto a = folded.view(job);
    const auto b = truth.view(job);
    EXPECT_EQ(a.state, b.state) << "job " << job;
    EXPECT_EQ(a.worker, b.worker) << "job " << job;
    EXPECT_EQ(a.lease_id, b.lease_id) << "job " << job;
    EXPECT_EQ(a.deadline, b.deadline) << "job " << job;
    EXPECT_EQ(a.attempts, b.attempts) << "job " << job;
  }

  // Snapshot re-delivery: applying the kept records again onto the final
  // state must change nothing (a poller whose cursor fell inside a
  // compacted segment replays the snapshot on top of what it already saw).
  runtime::lease_table redelivered = truth;
  for (const auto& e : kept_entries) redelivered.apply(e);
  for (std::size_t job = 0; job < 3; ++job) {
    EXPECT_EQ(redelivered.view(job).state, truth.view(job).state) << "job " << job;
    EXPECT_EQ(redelivered.view(job).worker, truth.view(job).worker) << "job " << job;
  }

  // latest_states is preserved too (the status table's fold).
  const auto latest_full = runtime::journal::latest_states(history);
  const auto latest_kept = runtime::journal::latest_states(kept_entries);
  ASSERT_EQ(latest_full.size(), latest_kept.size());
  for (const auto& [job, e] : latest_full) {
    ASSERT_TRUE(latest_kept.count(job));
    EXPECT_EQ(latest_kept.at(job).state, e.state) << "job " << job;
  }
}

}  // namespace
}  // namespace boson
