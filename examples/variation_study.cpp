// Variation sensitivity study: how a finished design behaves across the
// fabrication / operation variation space.
//
// This is the downstream-user workflow: take a mask (here: a quickly
// optimized bend), then sweep each variation axis in isolation —
// lithography corner, temperature, global etch threshold — and sample the
// spatially correlated etch field, reporting the figure of merit at every
// point. It exercises the library's variation models directly, without the
// optimizer in the loop.

#include <cstdio>

#include "core/evaluate.h"
#include "core/methods.h"
#include "io/table.h"

int main() {
  using namespace boson;

  core::experiment_config cfg = core::default_config();
  cfg.iterations = 20;  // a quick design is enough for the study

  dev::device_spec device = dev::make_bend();
  const core::method_result designed =
      core::run_method(device, core::method_id::boson, cfg);
  core::design_problem problem = core::make_problem(dev::make_bend(), true, cfg);

  auto fom_at = [&](const robust::variation_corner& corner) {
    core::eval_options o;
    o.fab_aware = true;
    o.hard_etch = true;
    o.compute_gradient = false;
    o.dense_objectives = false;
    const auto ev = problem.evaluate_pattern(designed.mask, corner, o);
    return problem.fom_of(ev.metrics);
  };

  auto nominal = [&] {
    robust::variation_corner c;
    c.xi.assign(problem.fab().space.eole_terms, 0.0);
    return c;
  };

  io::console_table table({"variation", "setting", "transmission"});
  table.add_row({"nominal", "-", io::console_table::num(fom_at(nominal()), 4)});

  for (int litho = 1; litho <= 2; ++litho) {
    auto c = nominal();
    c.litho = litho;
    table.add_row({"lithography", litho == 1 ? "l_min (defocus, -5% dose)"
                                             : "l_max (defocus, +5% dose)",
                   io::console_table::num(fom_at(c), 4)});
  }
  for (const double t : {260.0, 280.0, 320.0, 340.0}) {
    auto c = nominal();
    c.temperature = t;
    table.add_row(
        {"temperature", io::console_table::num(t, 0) + " K",
         io::console_table::num(fom_at(c), 4)});
  }
  for (const double shift : {-0.05, 0.05}) {
    auto c = nominal();
    c.eta_shift = shift;
    table.add_row({"etch threshold", (shift > 0 ? "+" : "") + io::console_table::num(shift, 2),
                   io::console_table::num(fom_at(c), 4)});
  }
  rng r(42);
  for (int s = 0; s < 3; ++s) {
    auto c = nominal();
    c.xi = r.normal_vector(problem.fab().space.eole_terms);
    table.add_row({"etch field (EOLE)", "random draw " + std::to_string(s + 1),
                   io::console_table::num(fom_at(c), 4)});
  }

  std::printf("\n");
  table.print("Post-fabrication sensitivity of the optimized bend");

  // Spectral response: how the design behaves off the central wavelength.
  const dvec lambdas{1.50, 1.525, 1.55, 1.575, 1.60};
  const auto spectrum = core::wavelength_sweep(problem, designed.mask, lambdas);
  io::console_table spectral({"wavelength [um]", "transmission"});
  for (const auto& pt : spectrum)
    spectral.add_row({io::console_table::num(pt.lambda_um, 3),
                      io::console_table::num(pt.fom, 4)});
  std::printf("\n");
  spectral.print("Spectral response (nominal fabrication corner)");

  // Lithography process window: transmission across the (defocus, dose)
  // plane — the classical fab-engineering view of the same robustness the
  // BOSON-1 corners optimize.
  const auto window = core::litho_process_window(problem, designed.mask,
                                                 dvec{0.0, 0.08, 0.16},
                                                 dvec{0.95, 1.0, 1.05});
  io::console_table pw({"defocus [um]", "dose", "transmission"});
  for (const auto& pt : window)
    pw.add_row({io::console_table::num(pt.defocus_um, 2),
                io::console_table::num(pt.dose, 2), io::console_table::num(pt.fom, 4)});
  std::printf("\n");
  pw.print("Lithography process window");
  return 0;
}
