#include "service/registry.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>

#include "runtime/scheduler.h"

namespace boson::service {

io::json_value campaign_record::to_json() const {
  io::json_value v = io::json_value::object();
  v["id"] = id;
  v["tenant"] = tenant;
  v["name"] = name;
  v["state"] = state;
  v["dir"] = dir;
  v["total_jobs"] = total_jobs;
  v["submitted_at"] = submitted_at;
  v["updated_at"] = updated_at;
  if (!detail.empty()) v["detail"] = detail;
  return v;
}

campaign_record campaign_record::from_json(const io::json_value& v) {
  campaign_record r;
  r.id = v.at("id").as_string();
  r.tenant = v.at("tenant").as_string();
  r.name = v.at("name").as_string();
  r.state = v.at("state").as_string();
  r.dir = v.at("dir").as_string();
  r.total_jobs = static_cast<std::size_t>(v.at("total_jobs").as_number());
  r.submitted_at = v.at("submitted_at").as_number();
  r.updated_at = v.at("updated_at").as_number();
  if (const io::json_value* d = v.find("detail")) r.detail = d->as_string();
  return r;
}

bool valid_tenant(const std::string& tenant) {
  if (tenant.empty() || tenant.size() > 32) return false;
  for (const char c : tenant) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                    c == '-' || c == '_';
    if (!ok) return false;
  }
  return true;
}

namespace {

std::string manifest_path(const std::string& data_dir) {
  return (std::filesystem::path(data_dir) / "registry.jsonl").string();
}

}  // namespace

campaign_registry::campaign_registry(options opts) : options_(std::move(opts)) {
  require(!options_.data_dir.empty(), "campaign_registry: data_dir must not be empty");
  require(options_.tenant_quota >= 1, "campaign_registry: tenant quota must be >= 1");
  std::filesystem::create_directories(options_.data_dir);

  // Rescan: fold the manifest to the latest record per id, then restore
  // submit order. Ids are monotone, so the next id is max + 1.
  std::map<std::string, campaign_record> latest;
  runtime::replay_jsonl(manifest_path(options_.data_dir), "campaign_registry",
                        [&latest](const io::json_value& record) {
                          campaign_record r = campaign_record::from_json(record);
                          std::string id = r.id;
                          latest.insert_or_assign(std::move(id), std::move(r));
                        });
  for (auto& [id, record] : latest) {
    // Ids this registry minted are all 'c<digits>'; anything else is a
    // corrupt or foreign manifest record — name it instead of letting
    // std::stoul abort the rescan with a context-free invalid_argument.
    if (id.size() < 2 || id[0] != 'c' ||
        id.find_first_not_of("0123456789", 1) != std::string::npos)
      throw io_error("campaign_registry: malformed campaign id '" + id + "' in " +
                     manifest_path(options_.data_dir));
    std::size_t number = 0;
    try {
      number = static_cast<std::size_t>(std::stoul(id.substr(1)));
    } catch (const std::exception&) {  // out_of_range: an absurd digit run
      throw io_error("campaign_registry: campaign id '" + id + "' in " +
                     manifest_path(options_.data_dir) + " is out of range");
    }
    next_id_ = std::max(next_id_, number + 1);
    records_.push_back(std::move(record));
  }
  std::sort(records_.begin(), records_.end(),
            [](const campaign_record& a, const campaign_record& b) {
              // Zero-padded ids compare lexicographically until they outgrow
              // the pad width; length-first keeps c10000 after c9999.
              return a.id.size() != b.id.size() ? a.id.size() < b.id.size()
                                                : a.id < b.id;
            });

  // Open the appender last: heal-on-open must not race the rescan read.
  manifest_ =
      std::make_unique<runtime::jsonl_appender>(manifest_path(options_.data_dir),
                                                "campaign_registry");
}

campaign_record campaign_registry::submit(const std::string& tenant,
                                          const runtime::campaign_spec& spec,
                                          double now) {
  require(valid_tenant(tenant), "campaign_registry: invalid tenant '" + tenant +
                                    "' (lowercase [a-z0-9_-], at most 32 chars)");

  const std::lock_guard<std::mutex> lock(mutex_);
  std::size_t active = 0;
  for (const campaign_record& r : records_)
    if (r.tenant == tenant && !r.terminal()) ++active;
  if (active >= options_.tenant_quota)
    throw quota_error("campaign_registry: tenant '" + tenant + "' is at its quota of " +
                      std::to_string(options_.tenant_quota) +
                      " queued/running campaigns");

  campaign_record record;
  char id[16];
  std::snprintf(id, sizeof id, "c%04zu", next_id_++);
  record.id = id;
  record.tenant = tenant;
  record.name = spec.name;
  record.state = "queued";
  record.dir = (std::filesystem::path(options_.data_dir) / tenant / record.id).string();
  record.total_jobs = spec.job_count();
  record.submitted_at = now;
  record.updated_at = now;

  std::filesystem::create_directories(record.dir);
  spec.to_json().write_file(runtime::campaign_spec_path(record.dir));
  manifest_->append(record.to_json());
  records_.push_back(record);
  return record;
}

campaign_record* campaign_registry::find_locked(const std::string& tenant,
                                                const std::string& id) {
  for (campaign_record& r : records_)
    if (r.tenant == tenant && r.id == id) return &r;
  return nullptr;
}

const campaign_record* campaign_registry::find_locked(const std::string& tenant,
                                                      const std::string& id) const {
  for (const campaign_record& r : records_)
    if (r.tenant == tenant && r.id == id) return &r;
  return nullptr;
}

std::optional<campaign_record> campaign_registry::find(const std::string& tenant,
                                                       const std::string& id) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const campaign_record* r = find_locked(tenant, id);
  return r ? std::optional<campaign_record>(*r) : std::nullopt;
}

std::vector<campaign_record> campaign_registry::list(const std::string& tenant) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<campaign_record> out;
  for (const campaign_record& r : records_)
    if (r.tenant == tenant) out.push_back(r);
  return out;
}

std::vector<campaign_record> campaign_registry::all() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return records_;
}

bool campaign_registry::known_tenant(const std::string& tenant) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const campaign_record& r : records_)
    if (r.tenant == tenant) return true;
  return false;
}

campaign_record campaign_registry::set_state(const std::string& tenant,
                                             const std::string& id,
                                             const std::string& state, double now,
                                             const std::string& detail) {
  const std::lock_guard<std::mutex> lock(mutex_);
  campaign_record* r = find_locked(tenant, id);
  require(r != nullptr,
          "campaign_registry: no campaign '" + id + "' for tenant '" + tenant + "'");
  r->state = state;
  r->updated_at = now;
  r->detail = detail;
  manifest_->append(r->to_json());
  return *r;
}

std::size_t campaign_registry::active_count(const std::string& tenant) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::size_t active = 0;
  for (const campaign_record& r : records_)
    if (r.tenant == tenant && !r.terminal()) ++active;
  return active;
}

std::optional<campaign_record> campaign_registry::oldest_queued() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const campaign_record& r : records_)  // records_ is id (submit) order
    if (r.state == "queued") return r;
  return std::nullopt;
}

}  // namespace boson::service
