#include "sim/workspace.h"

#include <utility>

namespace boson::sim {

workspace& workspace::local() {
  thread_local workspace ws;
  return ws;
}

cvec workspace::take_cvec(std::size_t n) {
  if (cvecs_.empty()) return cvec(n);
  cvec v = std::move(cvecs_.back());
  cvecs_.pop_back();
  v.resize(n);
  return v;
}

void workspace::give_cvec(cvec v) {
  if (cvecs_.size() < max_pooled) cvecs_.push_back(std::move(v));
}

namespace {

/// Pop a pooled grid of the requested shape, or a default-constructed one.
/// Grids of other shapes stay pooled for callers that still need them.
template <class T>
array2d<T> pop_matching(std::vector<array2d<T>>& pool, std::size_t nx, std::size_t ny) {
  for (std::size_t k = pool.size(); k-- > 0;) {
    if (pool[k].nx() == nx && pool[k].ny() == ny) {
      array2d<T> g = std::move(pool[k]);
      pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(k));
      return g;
    }
  }
  return array2d<T>(nx, ny);
}

}  // namespace

array2d<cplx> workspace::take_cgrid(std::size_t nx, std::size_t ny) {
  array2d<cplx> g = pop_matching(cgrids_, nx, ny);
  g.fill(cplx{});
  return g;
}

void workspace::give_cgrid(array2d<cplx> g) {
  if (!g.empty() && cgrids_.size() < max_pooled) cgrids_.push_back(std::move(g));
}

array2d<double> workspace::take_dgrid(std::size_t nx, std::size_t ny) {
  return pop_matching(dgrids_, nx, ny);
}

void workspace::give_dgrid(array2d<double> g) {
  if (!g.empty() && dgrids_.size() < max_pooled) dgrids_.push_back(std::move(g));
}

}  // namespace boson::sim
