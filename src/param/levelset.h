#pragma once

#include <cstddef>

#include "param/parameterization.h"

namespace boson::param {

/// Parameterized level-set topology description (the paper's default 'LS').
///
/// theta holds a coarse grid of level-set knot values; bilinear interpolation
/// lifts them to a continuous level-set function phi on the design grid, and
/// a sigmoid with sharpness beta converts phi to occupancy:
///     rho = sigmoid(beta * phi),   phi = interp(theta).
/// Coarse knots act as an implicit feature-size prior, and the smoothed
/// Heaviside keeps the map differentiable for adjoint optimization.
class levelset_param : public parameterization {
 public:
  levelset_param(std::size_t knots_x, std::size_t knots_y, std::size_t design_nx,
                 std::size_t design_ny, double beta = 8.0);

  std::size_t num_params() const override { return knots_x_ * knots_y_; }
  std::size_t nx() const override { return design_nx_; }
  std::size_t ny() const override { return design_ny_; }

  void forward(const dvec& theta, array2d<double>& rho) const override;
  void backward(const dvec& theta, const array2d<double>& d_rho,
                dvec& d_theta) const override;

  void set_sharpness(double beta) override { beta_ = beta; }
  double sharpness() const override { return beta_; }

  std::size_t knots_x() const { return knots_x_; }
  std::size_t knots_y() const { return knots_y_; }

  /// Interpolated level-set function phi (before the sigmoid); used by
  /// diagnostics and by initializers that fit theta to a target shape.
  void interpolate(const dvec& theta, array2d<double>& phi) const;

  /// Initialize theta by sampling a signed field defined on the design grid
  /// at the knot positions (positive = solid).
  dvec fit_from_field(const array2d<double>& signed_field) const;

 private:
  struct weight4 {
    std::size_t k00, k01, k10, k11;
    double w00, w01, w10, w11;
  };
  weight4 weights_at(std::size_t ix, std::size_t iy) const;

  std::size_t knots_x_;
  std::size_t knots_y_;
  std::size_t design_nx_;
  std::size_t design_ny_;
  double beta_;
};

}  // namespace boson::param
