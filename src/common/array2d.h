#pragma once

#include <algorithm>
#include <cstddef>
#include <vector>

#include "common/error.h"

namespace boson {

/// Dense 2-D array with (ix, iy) indexing, stored x-major (contiguous in iy).
///
/// This is the workhorse container for permittivity maps, design patterns,
/// aerial images and field grids. The (ix, iy) convention matches the
/// simulation grid: ix walks along the propagation (x) axis, iy along the
/// transverse (y) axis.
template <class T>
class array2d {
 public:
  array2d() = default;

  array2d(std::size_t nx, std::size_t ny, T fill_value = T{})
      : nx_(nx), ny_(ny), data_(nx * ny, fill_value) {}

  std::size_t nx() const { return nx_; }
  std::size_t ny() const { return ny_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  /// Flat index of cell (ix, iy); the FDFD unknown ordering uses the same map.
  std::size_t index(std::size_t ix, std::size_t iy) const { return ix * ny_ + iy; }

  T& operator()(std::size_t ix, std::size_t iy) { return data_[index(ix, iy)]; }
  const T& operator()(std::size_t ix, std::size_t iy) const { return data_[index(ix, iy)]; }

  /// Bounds-checked access, for non-hot paths.
  T& at(std::size_t ix, std::size_t iy) {
    require(ix < nx_ && iy < ny_, "array2d::at: index out of range");
    return data_[index(ix, iy)];
  }
  const T& at(std::size_t ix, std::size_t iy) const {
    require(ix < nx_ && iy < ny_, "array2d::at: index out of range");
    return data_[index(ix, iy)];
  }

  T* data() { return data_.data(); }
  const T* data() const { return data_.data(); }

  std::vector<T>& raw() { return data_; }
  const std::vector<T>& raw() const { return data_; }

  auto begin() { return data_.begin(); }
  auto end() { return data_.end(); }
  auto begin() const { return data_.begin(); }
  auto end() const { return data_.end(); }

  void fill(const T& value) { std::fill(data_.begin(), data_.end(), value); }

  template <class U>
  bool same_shape(const array2d<U>& other) const {
    return nx_ == other.nx() && ny_ == other.ny();
  }

 private:
  std::size_t nx_ = 0;
  std::size_t ny_ = 0;
  std::vector<T> data_;
};

/// Elementwise a += s * b (shapes must match).
template <class T, class S>
void add_scaled(array2d<T>& a, S s, const array2d<T>& b) {
  require(a.same_shape(b), "add_scaled: shape mismatch");
  for (std::size_t i = 0; i < a.size(); ++i) a.data()[i] += s * b.data()[i];
}

/// Sum of all entries.
template <class T>
T total(const array2d<T>& a) {
  T acc{};
  for (const auto& v : a) acc += v;
  return acc;
}

/// Minimum and maximum entry (array must be non-empty).
template <class T>
std::pair<T, T> min_max(const array2d<T>& a) {
  require(!a.empty(), "min_max: empty array");
  auto [lo, hi] = std::minmax_element(a.begin(), a.end());
  return {*lo, *hi};
}

}  // namespace boson
