#include "runtime/journal.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <set>
#include <utility>

#include "common/env.h"
#include "common/error.h"
#include "runtime/lease.h"
#include "store/segment_log.h"

namespace fs = std::filesystem;

namespace boson::runtime {

const char* to_string(job_state state) {
  switch (state) {
    case job_state::scheduled: return "scheduled";
    case job_state::leased: return "leased";
    case job_state::lease_renewed: return "lease_renewed";
    case job_state::lease_released: return "lease_released";
    case job_state::lease_expired: return "lease_expired";
    case job_state::running: return "running";
    case job_state::checkpointed: return "checkpointed";
    case job_state::completed: return "completed";
    case job_state::failed: return "failed";
    case job_state::cancelled: return "cancelled";
  }
  return "?";
}

job_state job_state_from_string(const std::string& text) {
  if (text == "scheduled") return job_state::scheduled;
  if (text == "leased") return job_state::leased;
  if (text == "lease_renewed") return job_state::lease_renewed;
  if (text == "lease_released") return job_state::lease_released;
  if (text == "lease_expired") return job_state::lease_expired;
  if (text == "running") return job_state::running;
  if (text == "checkpointed") return job_state::checkpointed;
  if (text == "completed") return job_state::completed;
  if (text == "failed") return job_state::failed;
  if (text == "cancelled") return job_state::cancelled;
  throw bad_argument("journal: unknown job state '" + text + "'");
}

io::json_value journal_entry::to_json() const {
  io::json_value v = io::json_value::object();
  v["job"] = job_index;
  v["name"] = job_name;
  v["state"] = to_string(state);
  v["attempt"] = attempt;
  if (!detail.empty()) v["detail"] = detail;
  if (seconds > 0.0) v["seconds"] = seconds;
  if (!worker.empty()) v["worker"] = worker;
  if (lease_id != 0) v["lease"] = static_cast<double>(lease_id);
  if (deadline != 0.0) v["deadline"] = deadline;
  if (stamp != 0.0) v["t"] = stamp;
  return v;
}

journal_entry journal_entry::from_json(const io::json_value& v) {
  journal_entry e;
  e.job_index = static_cast<std::size_t>(v.at("job").as_number());
  e.job_name = v.at("name").as_string();
  e.state = job_state_from_string(v.at("state").as_string());
  e.attempt = static_cast<std::size_t>(v.at("attempt").as_number());
  if (const io::json_value* d = v.find("detail")) e.detail = d->as_string();
  if (const io::json_value* s = v.find("seconds")) e.seconds = s->as_number();
  if (const io::json_value* w = v.find("worker")) e.worker = w->as_string();
  if (const io::json_value* l = v.find("lease"))
    e.lease_id = static_cast<std::uint64_t>(l->as_number());
  if (const io::json_value* dl = v.find("deadline")) e.deadline = dl->as_number();
  if (const io::json_value* t = v.find("t")) e.stamp = t->as_number();
  return e;
}

journal_options journal_options::with_env_defaults() const {
  journal_options o = *this;
  auto from_env = [](const char* name) {
    const long v = env_int(name, 0);
    return v > 0 ? static_cast<std::size_t>(v) : std::size_t{0};
  };
  if (o.segment_bytes == 0) o.segment_bytes = from_env("BOSON_JOURNAL_SEGMENT_BYTES");
  if (o.segment_records == 0)
    o.segment_records = from_env("BOSON_JOURNAL_SEGMENT_RECORDS");
  if (o.compact_segments == 0)
    o.compact_segments = from_env("BOSON_JOURNAL_COMPACT_SEGMENTS");
  return o;
}

void journal::open_legacy(const std::string& file) {
  out_ = std::make_unique<jsonl_appender>(file, "journal");
  path_ = out_->path();
}

void journal::open_store(const std::string& dir, const journal_options& opts) {
  store::log_options lo;
  lo.segment_bytes = opts.segment_bytes;
  lo.segment_records = opts.segment_records;
  lo.compact_segments = opts.compact_segments;
  store_ = std::make_unique<store::segment_log>(dir, lo, "journal");
  path_ = dir;
}

journal::journal(std::string path) {
  if (store::segment_log::is_store_dir(path))
    open_store(path, journal_options{}.with_env_defaults());
  else
    open_legacy(path);
}

journal::journal(const std::string& campaign_dir, const journal_options& opts) {
  const journal_options eff = opts.with_env_defaults();
  const std::string seg_dir = (fs::path(campaign_dir) / "journal").string();
  const std::string legacy = (fs::path(campaign_dir) / "journal.jsonl").string();
  std::error_code ec;
  if (store::segment_log::is_store_dir(seg_dir)) {
    open_store(seg_dir, eff);  // existing segmented campaign
  } else if (fs::exists(legacy, ec) && fs::file_size(legacy, ec) > 0) {
    open_legacy(legacy);  // existing legacy campaign keeps its layout
  } else if (eff.segmented()) {
    open_store(seg_dir, eff);
  } else {
    open_legacy(legacy);
  }
}

journal::~journal() = default;

void journal::append(const journal_entry& entry) {
  if (store_) {
    store_->append(entry.to_json().dump(-1));
    // Opportunistic compaction: cheap threshold probe every 64th append so
    // long-running appenders bound their own history even when no scheduler
    // pass (maybe_compact) is running in this process.
    if (((appends_.fetch_add(1) + 1) & 63) == 0) maybe_compact();
  } else {
    out_->append(entry.to_json());
  }
}

std::size_t journal::maybe_compact() {
  if (!store_ || !store_->should_compact()) return 0;
  return compact();
}

std::size_t journal::compact() {
  if (!store_) return 0;
  return store_->compact(&journal::compaction_fold);
}

std::vector<journal_entry> journal::replay(const std::string& path) {
  std::vector<journal_entry> entries;
  if (store::segment_log::is_store_dir(path)) {
    const std::vector<std::string> lines = store::segment_log::read_all(path, "journal");
    for (std::size_t i = 0; i < lines.size(); ++i) {
      try {
        entries.push_back(journal_entry::from_json(io::json_value::parse(lines[i])));
      } catch (const error& e) {
        // Same deferred-failure contract as replay_jsonl: a malformed final
        // line is a racing writer's in-flight record, corruption with a
        // successor is fatal.
        if (i + 1 == lines.size()) break;
        throw io_error("journal: '" + path + "' line " + std::to_string(i + 1) +
                       ": " + e.what());
      }
    }
    return entries;
  }
  replay_jsonl(path, "journal", [&entries](const io::json_value& record) {
    entries.push_back(journal_entry::from_json(record));
  });
  return entries;
}

std::vector<journal_entry> journal::since(const std::string& path,
                                          journal_cursor& cursor) {
  std::vector<journal_entry> entries;
  if (store::segment_log::is_store_dir(path)) {
    const store::read_batch batch = store::segment_log::read_since_dir(
        path, "journal", static_cast<std::uint64_t>(cursor.offset));
    // Per-line cursors let the deferred-failure contract carry over: a
    // malformed line only becomes fatal once a successor proves the store
    // kept going; as the batch tail it stays ahead of the cursor for the
    // next poll (segment appends are line-atomic, so this never resolves to
    // a half-record the way a racing legacy flush can — but the uniform
    // contract keeps the two layouts interchangeable for callers).
    std::string pending_error;
    for (std::size_t i = 0; i < batch.lines.size(); ++i) {
      if (!pending_error.empty()) throw io_error(pending_error);
      try {
        entries.push_back(
            journal_entry::from_json(io::json_value::parse(batch.lines[i])));
      } catch (const error& e) {
        pending_error = "journal: '" + path + "' line " +
                        std::to_string(cursor.line + 1) + ": " + e.what();
        continue;  // cursor stays before the suspect line
      }
      cursor.offset = static_cast<std::streamoff>(batch.cursors[i]);
      cursor.line += 1;
    }
    return entries;
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) return entries;  // no journal yet
  in.seekg(cursor.offset);

  // Mirrors replay_jsonl's deferred-failure contract, incrementally: a
  // malformed line is fatal only once a later line proves the file kept
  // going. Until then it is indistinguishable from a racing writer's append
  // observed mid-flush, so it stays *ahead* of the cursor and the next poll
  // re-reads it.
  std::string pending_error;
  std::string line;
  while (std::getline(in, line)) {
    // A line without its trailing newline is a torn tail or another
    // process's append racing our read: leave it for the next poll.
    if (in.eof()) break;
    if (!pending_error.empty()) throw io_error(pending_error);
    const std::streamoff consumed =
        cursor.offset + static_cast<std::streamoff>(line.size()) + 1;
    const std::size_t line_number = cursor.line + 1;
    if (line.find_first_not_of(" \t\r") != std::string::npos) {
      try {
        entries.push_back(journal_entry::from_json(io::json_value::parse(line)));
      } catch (const error& e) {
        pending_error = "journal: '" + path + "' line " +
                        std::to_string(line_number) + ": " + e.what();
        continue;  // cursor stays before the suspect line
      }
    }
    cursor.offset = consumed;
    cursor.line = line_number;
  }
  return entries;
}

std::vector<std::string> journal::raw_since(const std::string& path,
                                            std::uint64_t& cursor,
                                            std::size_t max_lines) {
  if (store::segment_log::is_store_dir(path)) {
    store::read_batch batch =
        store::segment_log::read_since_dir(path, "journal", cursor, max_lines);
    cursor = batch.end_cursor;
    return std::move(batch.lines);
  }
  std::vector<std::string> lines;
  std::ifstream in(path, std::ios::binary);
  if (!in) return lines;
  in.seekg(static_cast<std::streamoff>(cursor));
  std::string line;
  while (std::getline(in, line)) {
    if (in.eof()) break;  // torn tail / racing writer: leave for next poll
    cursor += static_cast<std::uint64_t>(line.size()) + 1;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    lines.push_back(line);
    if (max_lines != 0 && lines.size() >= max_lines) break;
  }
  return lines;
}

namespace {

bool same_view(const lease_view& a, const lease_view& b) {
  return a.state == b.state && a.worker == b.worker && a.lease_id == b.lease_id &&
         a.deadline == b.deadline && a.attempts == b.attempts;
}

}  // namespace

std::vector<std::string> journal::compaction_fold(
    const std::vector<std::string>& lines) {
  std::vector<journal_entry> entries;
  entries.reserve(lines.size());
  for (const std::string& line : lines) {
    try {
      entries.push_back(journal_entry::from_json(io::json_value::parse(line)));
    } catch (...) {
      return lines;  // unparseable history: degrade to a pure segment merge
    }
  }

  lease_table full;
  for (const journal_entry& e : entries) full.apply(e);

  std::map<std::size_t, std::vector<std::size_t>> by_job;
  for (std::size_t i = 0; i < entries.size(); ++i)
    by_job[entries[i].job_index].push_back(i);

  std::vector<char> keep(entries.size(), 0);
  for (const auto& [job, idxs] : by_job) {
    const lease_view ref = full.view(job);

    // Walk this job's records once, tracking which record created the
    // current live lease, which one last set its deadline, and which one
    // last released a lease back to pending.
    constexpr std::size_t npos = static_cast<std::size_t>(-1);
    std::size_t claim_idx = npos, deadline_idx = npos, release_idx = npos;
    std::size_t completed_idx = npos, max_attempt_idx = npos;
    lease_table walk;
    for (const std::size_t i : idxs) {
      const lease_view before = walk.view(job);
      walk.apply(entries[i]);
      const lease_view after = walk.view(job);
      if (after.state == lease_view::phase::leased) {
        if (before.state != lease_view::phase::leased ||
            before.worker != after.worker || before.lease_id != after.lease_id) {
          claim_idx = deadline_idx = i;
        } else if (after.deadline != before.deadline) {
          deadline_idx = i;
        }
      } else if (after.state == lease_view::phase::pending &&
                 before.state == lease_view::phase::leased) {
        release_idx = i;
      }
      if (completed_idx == npos && entries[i].state == job_state::completed)
        completed_idx = i;
      if (max_attempt_idx == npos && ref.attempts != 0 &&
          entries[i].attempt == ref.attempts)
        max_attempt_idx = i;
    }

    std::set<std::size_t> chosen;
    chosen.insert(idxs.back());  // preserves journal::latest_states
    if (max_attempt_idx != npos) chosen.insert(max_attempt_idx);
    if (ref.state == lease_view::phase::done) {
      if (completed_idx != npos) chosen.insert(completed_idx);
    } else if (ref.state == lease_view::phase::leased) {
      if (claim_idx != npos) chosen.insert(claim_idx);
      if (deadline_idx != npos) chosen.insert(deadline_idx);
    } else if (release_idx != npos) {
      chosen.insert(release_idx);
    }

    // Self-verify: the kept subsequence must fold to the same lease view,
    // and re-applying it onto the final state must change nothing (a poller
    // whose cursor fell inside a compacted segment gets the snapshot
    // re-delivered into its already-folded table).
    lease_table kept_fold;
    for (const std::size_t i : chosen) kept_fold.apply(entries[i]);
    bool ok = same_view(kept_fold.view(job), ref);
    if (ok) {
      lease_table redelivered = full;
      for (const std::size_t i : chosen) redelivered.apply(entries[i]);
      ok = same_view(redelivered.view(job), ref);
    }
    if (ok) {
      for (const std::size_t i : chosen) keep[i] = 1;
    } else {
      for (const std::size_t i : idxs) keep[i] = 1;  // fallback: keep history
    }
  }

  std::vector<std::string> kept;
  for (std::size_t i = 0; i < lines.size(); ++i)
    if (keep[i]) kept.push_back(lines[i]);
  return kept;
}

std::map<std::size_t, journal_entry> journal::latest_states(
    const std::vector<journal_entry>& entries) {
  std::map<std::size_t, journal_entry> latest;
  for (const journal_entry& e : entries) latest[e.job_index] = e;
  return latest;
}

}  // namespace boson::runtime
