#include "sim/backend.h"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <mutex>

#include "common/env.h"
#include "common/error.h"
#include "fdfd/solver.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "linalg/vec.h"
#include "sim/engine.h"
#include "sparse/banded.h"
#include "sparse/csr.h"
#include "sparse/krylov.h"

namespace boson::sim {

bool operator_reuse_enabled() { return env_int("BOSON_SIM_REUSE", 1) != 0; }

namespace {

/// The reuse counters live in the process-wide obs registry (so they appear
/// in /v1/metrics and the Prometheus exposition); series lookup happens once
/// and the hot-path cost is one relaxed atomic add.
struct reuse_counter_block {
  obs::counter& prepares_avoided;
  obs::counter& refinement_solves;
  obs::counter& refinement_iterations;
  obs::counter& fallbacks;
  obs::counter& recycle_guesses;
  obs::counter& solution_reuses;
};

reuse_counter_block& counters() {
  auto& reg = obs::registry::global();
  static reuse_counter_block block{
      reg.get_counter("sim.reuse.prepares_avoided"),
      reg.get_counter("sim.reuse.refinement_solves"),
      reg.get_counter("sim.reuse.refinement_iterations"),
      reg.get_counter("sim.reuse.fallbacks"),
      reg.get_counter("sim.reuse.recycle_guesses"),
      reg.get_counter("sim.reuse.solution_reuses")};
  return block;
}

}  // namespace

namespace reuse_counter {
void prepares_avoided(std::size_t n) { counters().prepares_avoided.inc(n); }
void refinement(std::size_t solves, std::size_t iterations) {
  counters().refinement_solves.inc(solves);
  counters().refinement_iterations.inc(iterations);
}
void fallback(std::size_t n) { counters().fallbacks.inc(n); }
void recycle_guess(std::size_t n) { counters().recycle_guesses.inc(n); }
void solution_reuse(std::size_t n) { counters().solution_reuses.inc(n); }
}  // namespace reuse_counter

reuse_stats reuse_statistics() {
  const reuse_counter_block& c = counters();
  reuse_stats s;
  s.prepares_avoided = c.prepares_avoided.value();
  s.refinement_solves = c.refinement_solves.value();
  s.refinement_iterations = c.refinement_iterations.value();
  s.fallbacks = c.fallbacks.value();
  s.recycle_guesses = c.recycle_guesses.value();
  s.solution_reuses = c.solution_reuses.value();
  return s;
}

void reset_reuse_statistics() {
  reuse_counter_block& c = counters();
  c.prepares_avoided.reset();
  c.refinement_solves.reset();
  c.refinement_iterations.reset();
  c.fallbacks.reset();
  c.recycle_guesses.reset();
  c.solution_reuses.reset();
}

const char* to_string(backend_kind kind) {
  switch (kind) {
    case backend_kind::banded: return "banded";
    case backend_kind::bicgstab: return "bicgstab";
    case backend_kind::gmres: return "gmres";
  }
  return "?";
}

backend_kind backend_from_string(const std::string& name) {
  std::string s = name;
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  if (s == "banded" || s == "direct" || s == "lu") return backend_kind::banded;
  if (s == "bicgstab") return backend_kind::bicgstab;
  if (s == "gmres") return backend_kind::gmres;
  throw bad_argument("unknown backend '" + name +
                     "' (expected banded|direct|lu|bicgstab|gmres)");
}

backend_kind default_backend() {
  const std::string name = env_string("BOSON_BACKEND", "banded");
  return backend_from_string(name);
}

namespace {

/// Direct path: the solver's own banded LU, shared by every excitation and
/// adjoint of the corner through the blocked multi-RHS substitution.
class banded_backend final : public linear_backend {
 public:
  explicit banded_backend(const fdfd::fdfd_solver& solver) : solver_(solver) {
    const obs::span sp("sim.factorize", "sim");
    (void)solver_.factorization();  // factor eagerly so solves are thread-safe
  }

  const char* name() const override { return "banded"; }

  std::vector<cvec> solve(const std::vector<cvec>& rhs) const override {
    return solver_.factorization().solve(rhs);
  }

 private:
  const fdfd::fdfd_solver& solver_;
};

/// Iterative path: CSR operator + ILU(0), BiCGSTAB or restarted GMRES. When
/// reuse is enabled, converged solutions feed a small recycle space whose
/// least-squares projection warm-starts the next solve — adjacent corners
/// and samples repeat (or barely perturb) their right-hand sides, so the
/// iteration often starts at the answer.
class krylov_backend final : public linear_backend {
 public:
  krylov_backend(const fdfd::fdfd_solver& solver, const engine_settings& settings)
      : settings_(settings), a_(solver.assemble_csr()), precond_(a_) {}

  const char* name() const override { return to_string(settings_.backend); }

  std::vector<cvec> solve(const std::vector<cvec>& rhs) const override {
    const bool recycle = settings_.reuse && operator_reuse_enabled();
    std::vector<cvec> xs(rhs.size());
    for (std::size_t k = 0; k < rhs.size(); ++k) {
      cvec x;
      if (recycle) {
        const std::lock_guard<std::mutex> lock(recycle_mutex_);
        if (recycle_.size() > 0) {
          x = recycle_.guess(rhs[k]);
          reuse_counter::recycle_guess();
        }
      }
      const sp::krylov_result res =
          settings_.backend == backend_kind::gmres
              ? sp::gmres(a_, rhs[k], x, &precond_, settings_.gmres_restart,
                          settings_.tol, settings_.max_iterations)
              : sp::bicgstab(a_, rhs[k], x, &precond_, settings_.tol,
                             settings_.max_iterations);
      check_numeric(res.converged,
                    std::string(name()) + " backend failed to converge (residual " +
                        std::to_string(res.relative_residual) + ")");
      if (recycle) {
        cvec ax = a_.matvec(x);
        const std::lock_guard<std::mutex> lock(recycle_mutex_);
        recycle_.add(x, std::move(ax));
      }
      xs[k] = std::move(x);
    }
    return xs;
  }

 private:
  engine_settings settings_;
  sp::csr_c a_;
  sp::ilu0 precond_;
  mutable std::mutex recycle_mutex_;
  mutable sp::recycle_space recycle_{8};
};

/// Nearby-operator path: the perturbed operator is never factored. The
/// nominal engine's banded LU substitutes a warm start for the whole batch,
/// then left-preconditions a short GMRES outer loop on the perturbed CSR
/// operator (M^{-1} A is a low-rank perturbation of the identity when the
/// permittivity change is localized, so a handful of iterations reach the
/// solver tolerance). Acceptance is checked on the *true* residual; any
/// right-hand side that misses it triggers a one-time fallback to a full
/// preparation of the perturbed operator, which then serves this and every
/// later batch.
class nearby_backend final : public linear_backend {
 public:
  nearby_backend(const fdfd::fdfd_solver& solver, const engine_settings& settings,
                 std::shared_ptr<const simulation_engine> nominal)
      : solver_(solver),
        settings_(settings),
        nominal_(std::move(nominal)),
        a_(solver.assemble_csr()) {}

  const char* name() const override { return "banded-reuse"; }

  std::vector<cvec> solve(const std::vector<cvec>& rhs) const override {
    if (fell_back_.load(std::memory_order_acquire)) return fallback().solve(rhs);
    if (rhs.empty()) return {};

    const sp::banded_lu& lu = nominal_->solver().factorization();
    std::vector<cvec> xs = lu.solve(rhs);  // blocked warm start for the batch

    const sp::linear_op op = [this](const cvec& v) { return a_.matvec(v); };
    const sp::linear_op pre = [&lu](const cvec& r) { return lu.solve(r); };
    const std::size_t cap = std::max<std::size_t>(2, settings_.reuse_max_iterations);

    std::size_t iterations = 0;
    for (std::size_t k = 0; k < rhs.size(); ++k) {
      const sp::krylov_result res =
          sp::gmres(op, rhs[k], xs[k], pre, cap, settings_.tol, cap);
      iterations += res.iterations;
      // Accept on the true residual so agreement with the re-prepare path
      // holds regardless of the preconditioned convergence metric.
      cvec r = a_.matvec(xs[k]);
      for (std::size_t i = 0; i < r.size(); ++i) r[i] = rhs[k][i] - r[i];
      const double b_norm = la::nrm2(rhs[k]);
      const double rel = b_norm > 0.0 ? la::nrm2(r) / b_norm : 0.0;
      if (!(rel <= settings_.tol * 100.0)) {
        reuse_counter::refinement(k, iterations);
        reuse_counter::fallback();
        return fallback().solve(rhs);
      }
    }
    reuse_counter::refinement(rhs.size(), iterations);
    return xs;
  }

 private:
  const linear_backend& fallback() const {
    std::call_once(fallback_once_, [this] {
      fallback_backend_ = make_backend(solver_, settings_);
      fell_back_.store(true, std::memory_order_release);
    });
    return *fallback_backend_;
  }

  const fdfd::fdfd_solver& solver_;
  engine_settings settings_;
  std::shared_ptr<const simulation_engine> nominal_;
  sp::csr_c a_;
  mutable std::once_flag fallback_once_;
  mutable std::unique_ptr<linear_backend> fallback_backend_;
  mutable std::atomic<bool> fell_back_{false};
};

}  // namespace

std::unique_ptr<linear_backend> make_backend(const fdfd::fdfd_solver& solver,
                                             const engine_settings& settings) {
  if (settings.backend == backend_kind::banded)
    return std::make_unique<banded_backend>(solver);
  return std::make_unique<krylov_backend>(solver, settings);
}

std::unique_ptr<linear_backend> make_nearby_backend(
    const fdfd::fdfd_solver& solver, const engine_settings& settings,
    std::shared_ptr<const simulation_engine> nominal) {
  require(nominal != nullptr, "make_nearby_backend: nominal engine required");
  require(settings.backend == backend_kind::banded,
          "make_nearby_backend: reuse preconditioning needs the banded backend");
  return std::make_unique<nearby_backend>(solver, settings, std::move(nominal));
}

}  // namespace boson::sim
