#include "sparse/krylov.h"

#include <cmath>

#include "common/error.h"
#include "linalg/vec.h"

namespace boson::sp {

ilu0::ilu0(const csr_c& a) : factors_(a), diag_(a.rows(), 0) {
  require(a.rows() == a.cols(), "ilu0: matrix must be square");
  const auto& row_ptr = factors_.row_ptr();
  const auto& col = factors_.col_index();
  auto& val = factors_.values();
  const std::size_t n = factors_.rows();

  for (std::size_t i = 0; i < n; ++i) {
    bool found = false;
    for (std::size_t k = row_ptr[i]; k < row_ptr[i + 1]; ++k) {
      if (col[k] == i) {
        diag_[i] = k;
        found = true;
        break;
      }
    }
    check_numeric(found, "ilu0: missing diagonal entry");
  }

  // IKJ-variant incomplete factorization restricted to the pattern of A.
  for (std::size_t i = 1; i < n; ++i) {
    for (std::size_t k = row_ptr[i]; k < row_ptr[i + 1] && col[k] < i; ++k) {
      const std::size_t j = col[k];
      const cplx pivot = val[diag_[j]];
      check_numeric(std::abs(pivot) > 1e-300, "ilu0: zero pivot");
      const cplx lij = val[k] / pivot;
      val[k] = lij;
      // Subtract lij * U(j, *) from row i, only where row i has entries.
      std::size_t pj = diag_[j] + 1;
      std::size_t pi = k + 1;
      while (pj < row_ptr[j + 1] && pi < row_ptr[i + 1]) {
        if (col[pj] == col[pi]) {
          val[pi] -= lij * val[pj];
          ++pj;
          ++pi;
        } else if (col[pj] < col[pi]) {
          ++pj;
        } else {
          ++pi;
        }
      }
    }
  }
}

cvec ilu0::apply(const cvec& r) const {
  const auto& row_ptr = factors_.row_ptr();
  const auto& col = factors_.col_index();
  const auto& val = factors_.values();
  const std::size_t n = factors_.rows();
  require(r.size() == n, "ilu0::apply: size mismatch");

  cvec z = r;
  // L z = r (unit lower triangular)
  for (std::size_t i = 0; i < n; ++i) {
    cplx acc = z[i];
    for (std::size_t k = row_ptr[i]; k < row_ptr[i + 1] && col[k] < i; ++k)
      acc -= val[k] * z[col[k]];
    z[i] = acc;
  }
  // U x = z
  for (std::size_t ii = n; ii-- > 0;) {
    cplx acc = z[ii];
    for (std::size_t k = diag_[ii] + 1; k < row_ptr[ii + 1]; ++k)
      acc -= val[k] * z[col[k]];
    z[ii] = acc / val[diag_[ii]];
  }
  return z;
}

krylov_result bicgstab(const csr_c& a, const cvec& b, cvec& x, const ilu0* precond,
                       double tol, std::size_t max_iterations) {
  require(a.rows() == a.cols(), "bicgstab: matrix must be square");
  require(b.size() == a.rows(), "bicgstab: rhs size mismatch");
  if (x.size() != b.size()) x.assign(b.size(), cplx{});

  const double b_norm = la::nrm2(b);
  krylov_result result;
  if (b_norm == 0.0) {
    x.assign(b.size(), cplx{});
    result.converged = true;
    return result;
  }

  cvec r = a.matvec(x);
  for (std::size_t i = 0; i < r.size(); ++i) r[i] = b[i] - r[i];
  cvec r_hat = r;
  cvec p(r.size(), cplx{});
  cvec v(r.size(), cplx{});
  cplx rho_prev{1.0};
  cplx alpha{1.0};
  cplx omega{1.0};

  for (std::size_t iter = 0; iter < max_iterations; ++iter) {
    const cplx rho = la::dot(r_hat, r);
    if (std::abs(rho) < 1e-300) break;  // breakdown
    if (iter == 0) {
      p = r;
    } else {
      const cplx beta = (rho / rho_prev) * (alpha / omega);
      for (std::size_t i = 0; i < p.size(); ++i)
        p[i] = r[i] + beta * (p[i] - omega * v[i]);
    }
    const cvec p_hat = precond ? precond->apply(p) : p;
    v = a.matvec(p_hat);
    const cplx denom = la::dot(r_hat, v);
    if (std::abs(denom) < 1e-300) break;
    alpha = rho / denom;

    cvec s = r;
    for (std::size_t i = 0; i < s.size(); ++i) s[i] -= alpha * v[i];
    if (la::nrm2(s) / b_norm < tol) {
      for (std::size_t i = 0; i < x.size(); ++i) x[i] += alpha * p_hat[i];
      result.converged = true;
      result.iterations = iter + 1;
      result.relative_residual = la::nrm2(s) / b_norm;
      return result;
    }

    const cvec s_hat = precond ? precond->apply(s) : s;
    const cvec t = a.matvec(s_hat);
    const double t_norm2 = la::nrm2(t);
    if (t_norm2 < 1e-300) break;
    omega = la::dot(t, s) / (t_norm2 * t_norm2);

    for (std::size_t i = 0; i < x.size(); ++i)
      x[i] += alpha * p_hat[i] + omega * s_hat[i];
    for (std::size_t i = 0; i < r.size(); ++i) r[i] = s[i] - omega * t[i];

    const double rel = la::nrm2(r) / b_norm;
    result.iterations = iter + 1;
    result.relative_residual = rel;
    if (rel < tol) {
      result.converged = true;
      return result;
    }
    if (std::abs(omega) < 1e-300) break;
    rho_prev = rho;
  }

  // Report the final residual even when not converged.
  cvec r_final = a.matvec(x);
  for (std::size_t i = 0; i < r_final.size(); ++i) r_final[i] = b[i] - r_final[i];
  result.relative_residual = la::nrm2(r_final) / b_norm;
  result.converged = result.relative_residual < tol;
  return result;
}

krylov_result gmres(const csr_c& a, const cvec& b, cvec& x, const ilu0* precond,
                    std::size_t restart, double tol, std::size_t max_iterations) {
  require(a.rows() == a.cols(), "gmres: matrix must be square");
  require(b.size() == a.rows(), "gmres: rhs size mismatch");
  const linear_op op = [&a](const cvec& v) { return a.matvec(v); };
  linear_op m;
  if (precond != nullptr) m = [precond](const cvec& r) { return precond->apply(r); };
  return gmres(op, b, x, m, restart, tol, max_iterations);
}

krylov_result gmres(const linear_op& a, const cvec& b, cvec& x, const linear_op& precond,
                    std::size_t restart, double tol, std::size_t max_iterations) {
  require(static_cast<bool>(a), "gmres: operator required");
  require(restart >= 2, "gmres: restart must be >= 2");
  const std::size_t n = b.size();
  if (x.size() != n) x.assign(n, cplx{});

  auto apply = [&](const cvec& v) {
    cvec av = a(v);
    return precond ? precond(av) : av;
  };
  const cvec pb = precond ? precond(b) : b;
  const double pb_norm = la::nrm2(pb);
  krylov_result result;
  if (pb_norm == 0.0) {
    x.assign(n, cplx{});
    result.converged = true;
    return result;
  }

  std::size_t total_iterations = 0;
  while (total_iterations < max_iterations) {
    // Arnoldi basis and Hessenberg factor for this cycle.
    cvec r = apply(x);
    for (std::size_t i = 0; i < n; ++i) r[i] = pb[i] - r[i];
    const double beta = la::nrm2(r);
    result.relative_residual = beta / pb_norm;
    if (result.relative_residual < tol) {
      result.converged = true;
      return result;
    }

    std::vector<cvec> basis;
    basis.reserve(restart + 1);
    basis.push_back(r);
    for (auto& v : basis[0]) v /= beta;

    std::vector<cvec> hessenberg;  // column j holds the rotated H(0..j, j)
    std::vector<cplx> givens_c(restart), givens_s(restart);
    cvec g(restart + 1, cplx{});
    g[0] = beta;

    std::size_t k = 0;
    while (k < restart && total_iterations < max_iterations) {
      ++total_iterations;
      cvec w = apply(basis[k]);
      cvec h(k + 2, cplx{});
      for (std::size_t j = 0; j <= k; ++j) {  // modified Gram-Schmidt
        h[j] = la::dot(basis[j], w);
        for (std::size_t i = 0; i < n; ++i) w[i] -= h[j] * basis[j][i];
      }
      const double w_norm = la::nrm2(w);
      h[k + 1] = w_norm;

      // Apply the accumulated Givens rotations to the new column.
      for (std::size_t j = 0; j < k; ++j) {
        const cplx t = givens_c[j] * h[j] + givens_s[j] * h[j + 1];
        h[j + 1] = -std::conj(givens_s[j]) * h[j] + givens_c[j] * h[j + 1];
        h[j] = t;
      }
      // New rotation annihilating h[k+1].
      const double denom = std::sqrt(std::norm(h[k]) + std::norm(h[k + 1]));
      check_numeric(denom > 1e-300, "gmres: Arnoldi breakdown with zero column");
      givens_c[k] = std::abs(h[k]) / denom;
      const cplx phase = h[k] != cplx{} ? h[k] / std::abs(h[k]) : cplx{1.0};
      givens_s[k] = phase * std::conj(h[k + 1]) / denom;
      h[k] = givens_c[k] * h[k] + givens_s[k] * h[k + 1];
      h[k + 1] = cplx{};
      const cplx gk = g[k];
      g[k] = givens_c[k] * gk;
      g[k + 1] = -std::conj(givens_s[k]) * gk;
      hessenberg.push_back(std::move(h));
      ++k;

      result.relative_residual = std::abs(g[k]) / pb_norm;
      if (result.relative_residual < tol) break;       // converged this cycle
      if (w_norm < 1e-300) break;                      // happy breakdown
      if (k < restart) {
        for (auto& v : w) v /= w_norm;
        basis.push_back(std::move(w));
      }
    }

    // Solve the small triangular system and update x.
    cvec y(k, cplx{});
    for (std::size_t jj = k; jj-- > 0;) {
      cplx acc = g[jj];
      for (std::size_t l = jj + 1; l < k; ++l) acc -= hessenberg[l][jj] * y[l];
      y[jj] = acc / hessenberg[jj][jj];
    }
    for (std::size_t j = 0; j < k; ++j)
      for (std::size_t i = 0; i < n; ++i) x[i] += y[j] * basis[j][i];

    if (result.relative_residual < tol) {
      result.converged = true;
      result.iterations = total_iterations;
      return result;
    }
  }

  result.iterations = total_iterations;
  cvec r_final = a(x);
  for (std::size_t i = 0; i < n; ++i) r_final[i] = b[i] - r_final[i];
  result.relative_residual = la::nrm2(r_final) / la::nrm2(b);
  result.converged = result.relative_residual < tol;
  return result;
}

recycle_space::recycle_space(std::size_t capacity) : capacity_(capacity) {
  require(capacity >= 1, "recycle_space: capacity must be at least 1");
}

void recycle_space::clear() {
  u_.clear();
  w_.clear();
}

cvec recycle_space::guess(const cvec& b) const {
  if (u_.empty() || w_[0].size() != b.size()) return cvec(b.size(), cplx{});
  cvec x(b.size(), cplx{});
  for (std::size_t j = 0; j < u_.size(); ++j) {
    const cplx y = la::dot(w_[j], b);
    if (y == cplx{}) continue;
    const cvec& uj = u_[j];
    for (std::size_t i = 0; i < x.size(); ++i) x[i] += y * uj[i];
  }
  return x;
}

void recycle_space::add(cvec u, cvec w) {
  require(u.size() == w.size(), "recycle_space::add: size mismatch");
  if (!u_.empty() && u_[0].size() != u.size()) clear();  // new problem size

  const double w0 = la::nrm2(w);
  if (w0 == 0.0) return;
  // Modified Gram-Schmidt against the stored space; the same coefficients
  // are applied to u so the invariant w_j = A u_j survives.
  for (std::size_t j = 0; j < w_.size(); ++j) {
    const cplx h = la::dot(w_[j], w);
    if (h == cplx{}) continue;
    const cvec& wj = w_[j];
    const cvec& uj = u_[j];
    for (std::size_t i = 0; i < w.size(); ++i) {
      w[i] -= h * wj[i];
      u[i] -= h * uj[i];
    }
  }
  const double wn = la::nrm2(w);
  if (wn < 1e-12 * w0) return;  // direction already represented
  const double inv = 1.0 / wn;
  for (std::size_t i = 0; i < w.size(); ++i) {
    w[i] *= inv;
    u[i] *= inv;
  }
  if (u_.size() >= capacity_) {  // drop the oldest pair
    u_.erase(u_.begin());
    w_.erase(w_.begin());
  }
  u_.push_back(std::move(u));
  w_.push_back(std::move(w));
}

}  // namespace boson::sp
