#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>

#include "common/error.h"

namespace boson::obs {

namespace {

/// Shortest round-trip decimal of a metric value ("%g" loses precision on
/// sums; "%.17g" is noisy — %.10g is enough for exposition).
std::string format_number(double v) {
  if (v == static_cast<double>(static_cast<long long>(v)) && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    return buf;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  return buf;
}

/// Prometheus label-value escaping: backslash, double quote, newline.
std::string escape_label_value(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (const char c : v) {
    if (c == '\\') out += "\\\\";
    else if (c == '"') out += "\\\"";
    else if (c == '\n') out += "\\n";
    else out += c;
  }
  return out;
}

const char* kind_name(metric_kind kind) {
  switch (kind) {
    case metric_kind::counter: return "counter";
    case metric_kind::gauge: return "gauge";
    case metric_kind::histogram: return "histogram";
  }
  return "?";
}

}  // namespace

std::string render_labels(const label_set& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) out += ",";
    out += labels[i].first + "=\"" + escape_label_value(labels[i].second) + "\"";
  }
  out += "}";
  return out;
}

std::string prometheus_name(const std::string& name) {
  std::string out = name.rfind("boson_", 0) == 0 ? "" : "boson_";
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out += ok ? c : '_';
  }
  return out;
}

// ------------------------------------------------------------------ gauge ----

std::uint64_t gauge::pack(double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

double gauge::unpack(std::uint64_t bits) {
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

void gauge::add(double delta) {
  std::uint64_t expected = bits_.load(std::memory_order_relaxed);
  while (!bits_.compare_exchange_weak(expected, pack(unpack(expected) + delta),
                                      std::memory_order_relaxed,
                                      std::memory_order_relaxed)) {
  }
}

// -------------------------------------------------------------- histogram ----

std::vector<double> histogram::latency_buckets_seconds() {
  return {1e-5, 1e-4, 1e-3, 5e-3, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
          1.0,  2.5,  5.0,  10.0, 30.0};
}

histogram::histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), counts_(bounds_.size() + 1) {
  require(!bounds_.empty(), "histogram: at least one bucket bound required");
  for (std::size_t i = 1; i < bounds_.size(); ++i)
    require(bounds_[i - 1] < bounds_[i],
            "histogram: bucket bounds must be strictly increasing");
}

void histogram::observe(double v) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const auto index = static_cast<std::size_t>(it - bounds_.begin());
  counts_[index].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  std::uint64_t expected = sum_bits_.load(std::memory_order_relaxed);
  double current = 0.0;
  do {
    std::memcpy(&current, &expected, sizeof(current));
    const double next = current + v;
    std::uint64_t next_bits = 0;
    std::memcpy(&next_bits, &next, sizeof(next_bits));
    if (sum_bits_.compare_exchange_weak(expected, next_bits, std::memory_order_relaxed,
                                        std::memory_order_relaxed))
      break;
  } while (true);
}

histogram::snapshot_t histogram::snapshot() const {
  snapshot_t s;
  s.bounds = bounds_;
  s.counts.reserve(counts_.size());
  for (const auto& c : counts_) s.counts.push_back(c.load(std::memory_order_relaxed));
  s.count = count_.load(std::memory_order_relaxed);
  const std::uint64_t bits = sum_bits_.load(std::memory_order_relaxed);
  std::memcpy(&s.sum, &bits, sizeof(s.sum));
  return s;
}

void histogram::reset() {
  for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_bits_.store(0, std::memory_order_relaxed);
}

// --------------------------------------------------------------- registry ----

registry& registry::global() {
  static registry r;
  return r;
}

registry::family& registry::family_of(const std::string& name, metric_kind kind) {
  const auto it = families_.find(name);
  if (it == families_.end()) {
    family& f = families_[name];
    f.kind = kind;
    return f;
  }
  if (it->second.kind != kind)
    throw bad_argument("metric '" + name + "' is registered as a " +
                       kind_name(it->second.kind) + ", requested as a " +
                       kind_name(kind));
  return it->second;
}

counter& registry::get_counter(const std::string& name, const label_set& labels) {
  const std::lock_guard<std::mutex> lock(mutex_);
  series& s = family_of(name, metric_kind::counter).by_labels[render_labels(labels)];
  if (!s.c) {
    s.c = std::make_unique<counter>();
    s.labels = labels;
  }
  return *s.c;
}

gauge& registry::get_gauge(const std::string& name, const label_set& labels) {
  const std::lock_guard<std::mutex> lock(mutex_);
  series& s = family_of(name, metric_kind::gauge).by_labels[render_labels(labels)];
  if (!s.g) {
    s.g = std::make_unique<gauge>();
    s.labels = labels;
  }
  return *s.g;
}

histogram& registry::get_histogram(const std::string& name, const label_set& labels,
                                   const std::vector<double>& bounds) {
  const std::lock_guard<std::mutex> lock(mutex_);
  series& s = family_of(name, metric_kind::histogram).by_labels[render_labels(labels)];
  if (!s.h) {
    s.h = std::make_unique<histogram>(
        bounds.empty() ? histogram::latency_buckets_seconds() : bounds);
    s.labels = labels;
  }
  return *s.h;
}

std::vector<metric_sample> registry::samples() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<metric_sample> out;
  for (const auto& [name, fam] : families_) {
    for (const auto& [key, s] : fam.by_labels) {
      (void)key;
      metric_sample sample;
      sample.name = name;
      sample.labels = s.labels;
      sample.kind = fam.kind;
      if (s.c) sample.value = static_cast<double>(s.c->value());
      if (s.g) sample.value = s.g->value();
      if (s.h) sample.hist = s.h->snapshot();
      out.push_back(std::move(sample));
    }
  }
  return out;
}

std::uint64_t registry::counter_total(const std::string& name) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = families_.find(name);
  if (it == families_.end() || it->second.kind != metric_kind::counter) return 0;
  std::uint64_t total = 0;
  for (const auto& [key, s] : it->second.by_labels) {
    (void)key;
    if (s.c) total += s.c->value();
  }
  return total;
}

std::string registry::to_prometheus() const {
  const std::vector<metric_sample> all = samples();
  std::string out;
  std::string last_name;
  for (const metric_sample& s : all) {
    const std::string name = prometheus_name(s.name);
    const std::string labels = render_labels(s.labels);
    if (s.name != last_name) {
      out += "# TYPE " + name + " " + kind_name(s.kind) + "\n";
      last_name = s.name;
    }
    if (s.kind == metric_kind::histogram) {
      std::uint64_t cumulative = 0;
      for (std::size_t i = 0; i < s.hist.counts.size(); ++i) {
        cumulative += s.hist.counts[i];
        const std::string le =
            i < s.hist.bounds.size() ? format_number(s.hist.bounds[i]) : "+Inf";
        std::string bucket_labels = labels;
        if (bucket_labels.empty()) bucket_labels = "{le=\"" + le + "\"}";
        else bucket_labels.insert(bucket_labels.size() - 1, ",le=\"" + le + "\"");
        out += name + "_bucket" + bucket_labels + " " + format_number(static_cast<double>(cumulative)) + "\n";
      }
      out += name + "_sum" + labels + " " + format_number(s.hist.sum) + "\n";
      out += name + "_count" + labels + " " +
             format_number(static_cast<double>(s.hist.count)) + "\n";
    } else {
      out += name + labels + " " + format_number(s.value) + "\n";
    }
  }
  return out;
}

std::string registry::digest() const {
  std::string out;
  for (const metric_sample& s : samples()) {
    if (s.kind == metric_kind::histogram) {
      if (s.hist.count == 0) continue;
      out += (out.empty() ? "" : " ") + s.name + render_labels(s.labels) +
             "=count:" + format_number(static_cast<double>(s.hist.count));
      continue;
    }
    if (s.value == 0.0) continue;
    out += (out.empty() ? "" : " ") + s.name + render_labels(s.labels) + "=" +
           format_number(s.value);
  }
  return out.empty() ? "(no recorded metrics)" : out;
}

void registry::reset() {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, fam] : families_) {
    (void)name;
    for (auto& [key, s] : fam.by_labels) {
      (void)key;
      if (s.c) s.c->reset();
      if (s.g) s.g->reset();
      if (s.h) s.h->reset();
    }
  }
}

}  // namespace boson::obs
