/// \file http_server.h
/// A dependency-free blocking-socket HTTP/1.1 server: one acceptor thread
/// feeding a bounded connection queue drained by a fixed pool of worker
/// threads. Built for the campaign control plane — small JSON messages, a
/// bounded number of concurrent clients, long-poll event streams — not for
/// the open internet: no TLS, IPv4 only, and every limit deliberately low.
///
/// Abuse containment: request size limits (`http_limits`) are enforced while
/// bytes arrive, per-read socket timeouts bound how long a slow peer can
/// hold a worker, the connection queue rejects overload with 503 instead of
/// queueing unboundedly, and a protocol violation gets the `http_error`'s
/// status as a JSON error envelope before the connection closes. Handler
/// exceptions become 400 (`bad_argument`) / 500 (anything else) responses —
/// a throwing handler never wedges or kills a worker thread.
///
/// `stop()` (and the destructor) shuts down cleanly: the listener closes,
/// in-flight requests finish writing, blocked reads are shut down, and every
/// thread is joined — no torn responses, no leaked fds.

#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "net/http.h"

namespace boson::net {

struct http_server_options {
  std::string host = "127.0.0.1";  ///< IPv4 address to bind
  std::uint16_t port = 0;          ///< 0 picks an ephemeral port (see `port()`)
  std::size_t threads = 4;         ///< worker threads (concurrent requests)
  std::size_t max_queue = 64;      ///< accepted-but-unserved connection cap
  int backlog = 64;                ///< listen(2) backlog
  double read_timeout = 10.0;      ///< seconds a single socket read may block
  /// Seconds a single socket send may block before the connection is
  /// dropped (backpressure: a consumer that stops reading its event stream
  /// cannot pin a worker thread). 0 disables the bound (legacy behavior).
  double write_timeout = 0.0;
  std::size_t max_keepalive_requests = 1000;  ///< requests per connection
  http_limits limits;
};

/// Counters the metrics endpoint reports (monotonic since start).
struct http_server_stats {
  std::uint64_t accepted = 0;        ///< connections accepted
  std::uint64_t rejected = 0;        ///< connections 503-rejected at the queue
  std::uint64_t requests = 0;        ///< requests dispatched to the handler
  std::uint64_t protocol_errors = 0; ///< malformed/oversized requests answered 4xx
};

class http_server {
 public:
  http_server(http_server_options options, http_handler handler);

  /// `stop()`s if still running.
  ~http_server();

  http_server(const http_server&) = delete;
  http_server& operator=(const http_server&) = delete;

  /// Bind, listen, and spawn the acceptor + worker threads. Throws
  /// `io_error` when the address cannot be bound.
  void start();

  /// Graceful shutdown; idempotent and safe from any thread (including a
  /// signal-watcher). Blocks until every thread is joined.
  void stop();

  bool running() const { return running_.load(); }

  /// The bound port (resolves an ephemeral `port = 0` request).
  std::uint16_t port() const { return port_; }

  /// "http://host:port" of the bound listener.
  std::string base_url() const;

  http_server_stats stats() const;

 private:
  void accept_loop();
  void worker_loop();
  void serve_connection(int fd);
  bool send_all(int fd, const std::string& bytes);
  void track(int fd, bool add);

  http_server_options options_;
  http_handler handler_;

  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};

  std::thread acceptor_;
  std::vector<std::thread> workers_;

  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<int> queue_;  ///< accepted fds awaiting a worker

  std::mutex active_mutex_;
  std::set<int> active_;  ///< fds currently held by workers (shut down on stop)

  mutable std::mutex stats_mutex_;
  http_server_stats stats_;
};

}  // namespace boson::net
