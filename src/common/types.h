#pragma once

#include <complex>
#include <cstddef>
#include <vector>

namespace boson {

/// Double-precision complex scalar used throughout the electromagnetic stack.
using cplx = std::complex<double>;

/// Dense complex vector (fields, adjoint states, right-hand sides).
using cvec = std::vector<cplx>;

/// Dense real vector (design variables, gradients, mode profiles).
using dvec = std::vector<double>;

/// Imaginary unit.
inline constexpr cplx imag_unit{0.0, 1.0};

/// Pi to double precision.
inline constexpr double pi = 3.14159265358979323846;

}  // namespace boson
