#include "net/http_client.h"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace boson::net {

namespace {

void set_timeouts(int fd, double seconds) {
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(seconds);
  tv.tv_usec = static_cast<suseconds_t>((seconds - static_cast<double>(tv.tv_sec)) * 1e6);
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
}

/// RAII socket connected to host:port, or io_error.
class connection {
 public:
  connection(const std::string& host, std::uint16_t port, double timeout) {
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    // Literal IPv4 addresses plus the one name every deployment note uses.
    const std::string node = host == "localhost" ? "127.0.0.1" : host;
    if (::inet_pton(AF_INET, node.c_str(), &addr.sin_addr) != 1)
      throw io_error("http_client: '" + host + "' is not an IPv4 address");
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) throw io_error("http_client: socket() failed");
    set_timeouts(fd_, timeout);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
      const std::string reason = std::strerror(errno);
      ::close(fd_);
      throw io_error("http_client: cannot connect to " + host + ":" +
                     std::to_string(port) + " (" + reason + ")");
    }
    const int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  }

  ~connection() { ::close(fd_); }

  connection(const connection&) = delete;
  connection& operator=(const connection&) = delete;

  void send_all(const std::string& bytes) {
    std::size_t sent = 0;
    while (sent < bytes.size()) {
      const ssize_t n =
          ::send(fd_, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
      if (n <= 0) {
        if (n < 0 && errno == EINTR) continue;
        throw io_error("http_client: send failed (peer closed?)");
      }
      sent += static_cast<std::size_t>(n);
    }
  }

  /// One read; 0 bytes means the peer closed. Throws on timeout.
  std::size_t read_some(char* buf, std::size_t n) {
    while (true) {
      const ssize_t got = ::recv(fd_, buf, n, 0);
      if (got >= 0) return static_cast<std::size_t>(got);
      if (errno == EINTR) continue;
      throw io_error("http_client: read timed out");
    }
  }

 private:
  int fd_;
};

}  // namespace

url_parts url_parts::parse(const std::string& url) {
  const std::string scheme = "http://";
  require(url.rfind(scheme, 0) == 0,
          "url: '" + url + "' must start with http:// (https is not supported)");
  url_parts parts;
  const std::string rest = url.substr(scheme.size());
  const std::size_t slash = rest.find('/');
  std::string authority = rest.substr(0, slash);
  if (slash != std::string::npos) parts.target = rest.substr(slash);
  const std::size_t colon = authority.rfind(':');
  if (colon != std::string::npos) {
    const std::string port_text = authority.substr(colon + 1);
    require(!port_text.empty() &&
                port_text.find_first_not_of("0123456789") == std::string::npos,
            "url: malformed port in '" + url + "'");
    const unsigned long port = std::stoul(port_text);
    require(port >= 1 && port <= 65535, "url: port out of range in '" + url + "'");
    parts.port = static_cast<std::uint16_t>(port);
    authority = authority.substr(0, colon);
  }
  require(!authority.empty(), "url: missing host in '" + url + "'");
  parts.host = authority;
  return parts;
}

http_client::http_client(const std::string& base_url, http_client_options options)
    : parts_(url_parts::parse(base_url)), options_(options) {
  require(options_.timeout > 0.0, "http_client: timeout must be positive");
}

http_response http_client::get(
    const std::string& path,
    const std::vector<std::pair<std::string, std::string>>& headers) {
  return request("GET", path, "", headers);
}

http_response http_client::post(
    const std::string& path, const std::string& body,
    const std::vector<std::pair<std::string, std::string>>& headers) {
  return request("POST", path, body, headers);
}

http_response http_client::del(
    const std::string& path,
    const std::vector<std::pair<std::string, std::string>>& headers) {
  return request("DELETE", path, "", headers);
}

http_response http_client::request(
    const std::string& method, const std::string& path, const std::string& body,
    std::vector<std::pair<std::string, std::string>> headers) {
  require(!path.empty() && path[0] == '/',
          "http_client: path '" + path + "' must start with '/'");
  headers.emplace_back("Host", parts_.host + ":" + std::to_string(parts_.port));
  headers.emplace_back("Connection", "close");

  connection conn(parts_.host, parts_.port, options_.timeout);
  conn.send_all(serialize(method, path, headers, body));

  http_response_parser parser(options_.limits);
  char buf[8192];
  while (!parser.complete()) {
    const std::size_t n = conn.read_some(buf, sizeof buf);
    if (n == 0) {
      parser.finish();  // EOF-framed body, or throws on truncation
      break;
    }
    parser.feed(buf, n);
  }
  return std::move(parser.response());
}

std::string raw_exchange(const std::string& host, std::uint16_t port,
                         const std::string& bytes, double timeout) {
  connection conn(host, port, timeout);
  conn.send_all(bytes);
  std::string received;
  char buf[8192];
  while (true) {
    std::size_t n;
    try {
      n = conn.read_some(buf, sizeof buf);
    } catch (const io_error&) {
      break;  // timeout: return what we have
    }
    if (n == 0) break;
    received.append(buf, n);
  }
  return received;
}

}  // namespace boson::net
