#include "api/session.h"

#include <algorithm>
#include <filesystem>
#include <map>
#include <optional>
#include <utility>

#include "api/registry.h"
#include "common/env.h"
#include "common/error.h"
#include "common/timer.h"
#include "io/csv.h"
#include "io/pgm.h"
#include "sim/backend.h"
#include "sim/cache.h"

namespace boson::api {

/// Experiment names become directory names; keep them filesystem-safe. A
/// name that is empty or all dots after sanitizing ("..") would escape the
/// output directory, so it maps to a fixed placeholder instead.
std::string artifact_name(const std::string& display_name) {
  std::string out = display_name;
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '-' || c == '_' || c == '.';
    if (!ok) c = '_';
  }
  if (out.find_first_not_of('.') == std::string::npos) return "experiment";
  return out;
}

namespace {

io::json_value stats_json(const core::mc_stats& stats) {
  io::json_value v = io::json_value::object();
  v["samples"] = stats.samples;
  v["fom_mean"] = stats.fom_mean;
  v["fom_std"] = stats.fom_std;
  v["fom_min"] = stats.fom_min;
  v["fom_max"] = stats.fom_max;
  v["metric_means"] = io::json_value::from_map(stats.metric_means);
  return v;
}

}  // namespace

session::session(session_options options) : options_(std::move(options)) {}

void session::emit(const progress_event& event) {
  observer* target = options_.watcher != nullptr ? options_.watcher : &fallback_;
  target->on_event(event);
}

core::experiment_config session::config_for(const experiment_spec& spec) {
  validate(spec);
  core::experiment_config cfg = core::default_config();
  cfg.resolution = spec.resolution;
  cfg.iterations = spec.iterations;
  cfg.relax_epochs = spec.relax_epochs;
  cfg.learning_rate = spec.learning_rate;
  // Like BOSON_BENCH_SCALE, an explicitly-set BOSON_SEED is an operator
  // knob that perturbs committed specs without editing them.
  if (env_string("BOSON_SEED", "").empty()) cfg.seed = spec.seed;
  cfg.litho = spec.litho;
  cfg.eole = spec.eole;
  cfg.use_operator_cache = spec.use_operator_cache;
  cfg.record_trajectory = spec.record_trajectory;
  cfg.objective_override =
      registry::global().objective(spec.objective).override_metric;
  if (spec.backend != "default")
    cfg.engine.backend = sim::backend_from_string(spec.backend);
  for (const eval_step& step : spec.evaluation)
    if (step.kind == eval_step::step_kind::postfab_monte_carlo)
      cfg.mc_samples = step.samples;
  return cfg;
}

core::design_problem session::problem_for(const experiment_spec& spec) {
  const core::experiment_config cfg = config_for(spec);
  return core::make_problem(registry::global().make_device(spec.device, spec.resolution),
                            resolved_recipe(spec), cfg);
}

experiment_result session::run(const experiment_spec& spec) { return run(spec, {}); }

experiment_result session::run(const experiment_spec& spec, const run_control& control) {
  const stopwatch sw;

  experiment_result out;
  out.spec = spec;
  out.spec.name = spec.display_name();
  const std::string& label = out.spec.name;

  const core::experiment_config cfg = config_for(out.spec);  // validates
  const core::method_recipe recipe = resolved_recipe(out.spec);
  const dev::device_spec device =
      registry::global().make_device(out.spec.device, out.spec.resolution);

  progress_event started;
  started.kind = progress_event::phase::experiment_started;
  started.experiment = label;
  started.message = label;
  emit(started);

  const auto cache_before = sim::engine_cache::global().stats();
  const auto reuse_before = sim::reuse_statistics();

  bool wants_mc = false;
  for (const eval_step& step : out.spec.evaluation)
    wants_mc |= step.kind == eval_step::step_kind::postfab_monte_carlo;

  core::method_hooks hooks;
  hooks.run_postfab_mc = wants_mc;
  hooks.checkpoint_every = control.checkpoint_every;
  hooks.on_checkpoint = control.on_checkpoint;
  hooks.resume = control.resume;
  hooks.on_stage = [&](const std::string& stage) {
    progress_event e;
    e.kind = progress_event::phase::stage_started;
    e.experiment = label;
    e.message = stage;
    emit(e);
  };
  hooks.on_iteration = [&](const core::iteration_record& rec, std::size_t total) {
    progress_event e;
    e.kind = progress_event::phase::iteration_finished;
    e.experiment = label;
    e.iteration = rec.iteration;
    e.total_iterations = total;
    e.loss = rec.loss;
    emit(e);
  };
  out.method = core::run_method(device, recipe, cfg, hooks);

  // The remaining evaluation plan runs on a problem matching the method's
  // parameterization (one extra reference solve; shared by all steps).
  std::optional<core::design_problem> problem;
  const auto ensure_problem = [&]() -> core::design_problem& {
    if (!problem) problem.emplace(problem_for(out.spec));
    return *problem;
  };

  for (const eval_step& step : out.spec.evaluation) {
    switch (step.kind) {
      case eval_step::step_kind::postfab_monte_carlo:
        break;  // already executed inside run_method
      case eval_step::step_kind::wavelength_sweep: {
        hooks.on_stage("wavelength_sweep");
        const auto points =
            core::wavelength_sweep(ensure_problem(), out.method.mask, step.wavelengths_um);
        out.spectrum.insert(out.spectrum.end(), points.begin(), points.end());
        break;
      }
      case eval_step::step_kind::process_window: {
        hooks.on_stage("process_window");
        const auto points = core::litho_process_window(ensure_problem(), out.method.mask,
                                                       step.defocus_um, step.dose);
        out.window.insert(out.window.end(), points.begin(), points.end());
        break;
      }
    }
  }

  out.seconds = sw.seconds();

  if (options_.write_artifacts) {
    namespace fs = std::filesystem;
    const fs::path dir = fs::path(options_.output_dir) / artifact_name(label);
    fs::create_directories(dir);
    out.artifact_dir = dir.string();

    const auto artifact = [&](const fs::path& path) {
      progress_event e;
      e.kind = progress_event::phase::artifact_written;
      e.experiment = label;
      e.message = path.string();
      emit(e);
    };

    io::json_value summary = io::json_value::object();
    summary["spec"] = out.spec.to_json();
    // Recipe provenance: the fully-resolved recipe this run executed, also
    // when the spec only named a preset — reports and replication need the
    // composition, not just the key.
    summary["resolved_recipe"] = recipe_to_json(recipe);
    summary["recipe_signature"] = recipe.signature();
    io::json_value& res = summary["results"] = io::json_value::object();
    res["prefab_metrics"] = io::json_value::from_map(out.method.prefab);
    res["prefab_fom"] = out.method.prefab_fom;
    res["final_loss"] = out.method.run.final_loss;
    if (out.method.postfab.samples > 0)
      res["postfab_monte_carlo"] = stats_json(out.method.postfab);
    if (!out.spectrum.empty()) {
      io::json_value& arr = res["wavelength_sweep"] = io::json_value::array();
      for (const auto& pt : out.spectrum) {
        io::json_value p = io::json_value::object();
        p["lambda_um"] = pt.lambda_um;
        p["fom"] = pt.fom;
        arr.push_back(std::move(p));
      }
    }
    if (!out.window.empty()) {
      io::json_value& arr = res["process_window"] = io::json_value::array();
      for (const auto& pt : out.window) {
        io::json_value p = io::json_value::object();
        p["defocus_um"] = pt.defocus_um;
        p["dose"] = pt.dose;
        p["fom"] = pt.fom;
        arr.push_back(std::move(p));
      }
    }
    summary["runtime_seconds"] = out.seconds;
    // This experiment's share of the process-global cache traffic.
    const auto cache = sim::engine_cache::global().stats();
    io::json_value& cj = summary["engine_cache"] = io::json_value::object();
    cj["hits"] = cache.hits - cache_before.hits;
    cj["misses"] = cache.misses - cache_before.misses;
    cj["entries"] = cache.entries;
    cj["reuse_hits"] = cache.reuse_hits - cache_before.reuse_hits;
    // Nearby-operator reuse and Krylov-recycling traffic of the same window.
    const auto reuse = sim::reuse_statistics();
    io::json_value& rj = cj["reuse"] = io::json_value::object();
    rj["prepares_avoided"] = reuse.prepares_avoided - reuse_before.prepares_avoided;
    rj["refinement_solves"] = reuse.refinement_solves - reuse_before.refinement_solves;
    rj["refinement_iterations"] =
        reuse.refinement_iterations - reuse_before.refinement_iterations;
    rj["fallbacks"] = reuse.fallbacks - reuse_before.fallbacks;
    rj["recycle_guesses"] = reuse.recycle_guesses - reuse_before.recycle_guesses;
    rj["solution_reuses"] = reuse.solution_reuses - reuse_before.solution_reuses;

    const fs::path summary_path = dir / "summary.json";
    summary.write_file(summary_path.string());
    artifact(summary_path);

    if (!out.method.run.trajectory.empty()) {
      const fs::path traj_path = dir / "trajectory.csv";
      write_trajectory_csv(traj_path.string(), out.method.run.trajectory);
      artifact(traj_path);
    }

    const fs::path mask_path = dir / "mask.pgm";
    io::write_pgm(mask_path.string(), out.method.mask);
    artifact(mask_path);

    if (!out.spectrum.empty()) {
      const fs::path path = dir / "spectrum.csv";
      io::csv_writer csv(path.string(), {"lambda_um", "fom"});
      for (const auto& pt : out.spectrum)
        csv.write_row({io::csv_writer::format(pt.lambda_um), io::csv_writer::format(pt.fom)});
      artifact(path);
    }
    if (!out.window.empty()) {
      const fs::path path = dir / "process_window.csv";
      io::csv_writer csv(path.string(), {"defocus_um", "dose", "fom"});
      for (const auto& pt : out.window)
        csv.write_row({io::csv_writer::format(pt.defocus_um),
                       io::csv_writer::format(pt.dose), io::csv_writer::format(pt.fom)});
      artifact(path);
    }
  }

  progress_event finished;
  finished.kind = progress_event::phase::experiment_finished;
  finished.experiment = label;
  finished.message = label;
  emit(finished);
  return out;
}

std::vector<experiment_result> session::run_all(const std::vector<experiment_spec>& specs) {
  require(!specs.empty(), "session: empty batch");
  for (const experiment_spec& spec : specs) validate(spec);

  // Artifact directories key on the sanitized display name; reject batches
  // whose entries would silently overwrite each other.
  std::map<std::string, std::string> dirs;
  for (const experiment_spec& spec : specs) {
    const std::string name = spec.display_name();
    const auto [it, inserted] = dirs.emplace(artifact_name(name), name);
    require(inserted, "session: batch entries '" + it->second + "' and '" + name +
                          "' resolve to the same artifact directory '" + it->first +
                          "' — give them distinct names");
  }

  // One stopwatch and one engine-cache snapshot around the whole batch: the
  // first experiment's cold misses are the shared warm-up every later
  // experiment benefits from, so the batch — not each spec independently —
  // is the meaningful accounting unit.
  const stopwatch batch_sw;
  const auto cache_before = sim::engine_cache::global().stats();
  const auto reuse_before = sim::reuse_statistics();

  std::vector<experiment_result> results;
  results.reserve(specs.size());
  for (const experiment_spec& spec : specs) results.push_back(run(spec));

  if (options_.write_artifacts) {
    namespace fs = std::filesystem;
    fs::create_directories(options_.output_dir);
    io::json_value batch = io::json_value::object();
    io::json_value& experiments = batch["experiments"] = io::json_value::array();
    double total_seconds = 0.0;
    for (const experiment_result& r : results) {
      io::json_value e = io::json_value::object();
      e["name"] = r.spec.name;
      e["device"] = r.spec.device;
      e["method"] = r.spec.method;
      e["prefab_fom"] = r.method.prefab_fom;
      if (r.method.postfab.samples > 0) e["postfab_fom_mean"] = r.method.postfab.fom_mean;
      e["seconds"] = r.seconds;
      e["artifact_dir"] = r.artifact_dir;
      experiments.push_back(std::move(e));
      total_seconds += r.seconds;
    }
    batch["total_seconds"] = total_seconds;
    batch["wall_seconds"] = batch_sw.seconds();
    const auto cache = sim::engine_cache::global().stats();
    io::json_value& cj = batch["engine_cache"] = io::json_value::object();
    cj["hits"] = cache.hits - cache_before.hits;
    cj["misses"] = cache.misses - cache_before.misses;
    cj["entries"] = cache.entries;
    cj["reuse_hits"] = cache.reuse_hits - cache_before.reuse_hits;
    // Nearby-operator reuse and Krylov-recycling traffic of the same window.
    const auto reuse = sim::reuse_statistics();
    io::json_value& rj = cj["reuse"] = io::json_value::object();
    rj["prepares_avoided"] = reuse.prepares_avoided - reuse_before.prepares_avoided;
    rj["refinement_solves"] = reuse.refinement_solves - reuse_before.refinement_solves;
    rj["refinement_iterations"] =
        reuse.refinement_iterations - reuse_before.refinement_iterations;
    rj["fallbacks"] = reuse.fallbacks - reuse_before.fallbacks;
    rj["recycle_guesses"] = reuse.recycle_guesses - reuse_before.recycle_guesses;
    rj["solution_reuses"] = reuse.solution_reuses - reuse_before.solution_reuses;
    const fs::path path = fs::path(options_.output_dir) / "batch_summary.json";
    batch.write_file(path.string());
    progress_event e;
    e.kind = progress_event::phase::artifact_written;
    e.experiment = "batch";
    e.message = path.string();
    emit(e);
  }
  return results;
}

void write_trajectory_csv(const std::string& path,
                          const std::vector<core::iteration_record>& trajectory) {
  require(!trajectory.empty(), "write_trajectory_csv: empty trajectory");
  std::vector<std::string> header{"iteration", "loss"};
  for (const auto& [metric, value] : trajectory.front().metrics) header.push_back(metric);

  io::csv_writer csv(path, header);
  for (const core::iteration_record& rec : trajectory) {
    std::vector<std::string> cells;
    cells.reserve(header.size());
    cells.push_back(std::to_string(rec.iteration));
    cells.push_back(io::csv_writer::format(rec.loss));
    for (std::size_t i = 2; i < header.size(); ++i) {
      const auto it = rec.metrics.find(header[i]);
      cells.push_back(it != rec.metrics.end() ? io::csv_writer::format(it->second) : "nan");
    }
    csv.write_row(cells);
  }
}

}  // namespace boson::api
