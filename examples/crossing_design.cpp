// Waveguide-crossing design study: conventional density-based inverse design
// versus BOSON-1 on the same benchmark.
//
// The density baseline produces a numerically plausible design whose fine
// features do not survive lithography; BOSON-1 optimizes inside the
// fabricable subspace, so its post-fabrication performance holds up. This
// example reproduces that comparison (one row of the paper's Table I) as a
// two-spec batch through the session façade: both experiments share the
// engine cache and worker pool, and each leaves its own artifact directory.

#include <cstdio>

#include "api/session.h"
#include "io/table.h"

int main() {
  using namespace boson;

  std::vector<api::experiment_spec> batch;
  for (const char* method : {"density", "boson"}) {
    api::experiment_spec spec;
    spec.name = std::string("crossing_") + method;
    spec.device = "crossing";
    spec.method = method;
    spec.evaluation = {api::eval_step::monte_carlo(20)};
    batch.push_back(spec);
  }

  api::session_options options;
  options.output_dir = "crossing_out";
  api::session session(options);
  const std::vector<api::experiment_result> results = session.run_all(batch);

  io::console_table table(
      {"method", "pre-fab T", "post-fab T", "post-fab crosstalk", "post-fab reflection"});
  for (const auto& r : results) {
    const auto& m = r.method;
    table.add_row({m.method, io::console_table::num(m.prefab_fom, 4),
                   io::console_table::num(m.postfab.fom_mean, 4),
                   io::console_table::num(m.postfab.metric_means.at("crosstalk"), 4),
                   io::console_table::num(m.postfab.metric_means.at("reflection"), 4)});
  }

  std::printf("\n");
  table.print("Waveguide crossing: conventional density flow vs BOSON-1");
  std::printf("\nArtifacts (masks, trajectories, summaries): crossing_out/\n");
  return 0;
}
