#include "fab/litho.h"

#include <cmath>

#include "common/error.h"
#include "common/log.h"
#include "linalg/eig_sym.h"

namespace boson::fab {

std::vector<litho_corner_params> standard_litho_corners(double defocus) {
  // Index 0 is the nominal corner; 1 and 2 are the under/over-exposure
  // corners at worst-case focus (the paper's l_min / l_max).
  return {{0.0, 1.0}, {defocus, 0.95}, {defocus, 1.05}};
}

namespace {

struct freq_point {
  double fx;
  double fy;
};

/// Pupil transmission with quadratic (Fresnel) defocus phase.
cplx pupil(const litho_settings& s, double defocus, double fx, double fy) {
  const double f2 = fx * fx + fy * fy;
  const double fmax = s.na / s.wavelength;
  if (f2 > fmax * fmax) return cplx{};
  const double phase = -pi * s.wavelength * defocus * f2;
  return std::polar(1.0, phase);
}

}  // namespace

hopkins_litho::hopkins_litho(const litho_settings& settings,
                             const litho_corner_params& corner, std::size_t nx,
                             std::size_t ny)
    : settings_(settings), corner_(corner), nx_(nx), ny_(ny) {
  require(nx > 0 && ny > 0, "hopkins_litho: empty mask shape");
  require(settings.wavelength > 0 && settings.na > 0 && settings.pixel > 0,
          "hopkins_litho: invalid optics");
  require(settings.kernel_half >= 2, "hopkins_litho: kernel too small");

  const double fmax = settings.na / settings.wavelength;
  const double fcap = (1.0 + settings.sigma) * fmax;
  const double span =
      static_cast<double>(2 * settings.kernel_half + 1) * settings.pixel;
  const double df = 1.0 / span;
  check_numeric(fcap < 0.5 / settings.pixel,
                "hopkins_litho: pupil exceeds the mask Nyquist frequency");

  // Mask-frequency samples inside the TCC support disk.
  const auto reach = static_cast<long>(std::floor(fcap / df));
  std::vector<freq_point> freqs;
  for (long mx = -reach; mx <= reach; ++mx) {
    for (long my = -reach; my <= reach; ++my) {
      const double fx = static_cast<double>(mx) * df;
      const double fy = static_cast<double>(my) * df;
      if (fx * fx + fy * fy <= fcap * fcap + 1e-12) freqs.push_back({fx, fy});
    }
  }
  const std::size_t n_freq = freqs.size();
  check_numeric(n_freq >= 5, "hopkins_litho: too few frequency samples");

  // Source samples (conventional disk illumination of radius sigma * fmax).
  std::vector<freq_point> source;
  const double fsrc = settings.sigma * fmax;
  const auto src_reach = static_cast<long>(std::floor(fsrc / df));
  for (long mx = -src_reach; mx <= src_reach; ++mx) {
    for (long my = -src_reach; my <= src_reach; ++my) {
      const double fx = static_cast<double>(mx) * df;
      const double fy = static_cast<double>(my) * df;
      if (fx * fx + fy * fy <= fsrc * fsrc + 1e-12) source.push_back({fx, fy});
    }
  }
  if (source.empty()) source.push_back({0.0, 0.0});

  // Hopkins TCC on the frequency samples.
  la::cmat tcc(n_freq, n_freq);
  const double source_weight = 1.0 / static_cast<double>(source.size());
  for (const auto& s_pt : source) {
    std::vector<cplx> p(n_freq);
    for (std::size_t a = 0; a < n_freq; ++a)
      p[a] = pupil(settings, corner.defocus, s_pt.fx + freqs[a].fx, s_pt.fy + freqs[a].fy);
    for (std::size_t a = 0; a < n_freq; ++a) {
      if (p[a] == cplx{}) continue;
      for (std::size_t b = 0; b < n_freq; ++b)
        tcc(a, b) += source_weight * p[a] * std::conj(p[b]);
    }
  }

  la::eig_result<cplx> eig = la::hermitian_eig(tcc);

  // Retain the strongest kernels (eigenvalues ascending -> walk backwards).
  double total_energy = 0.0;
  for (const double v : eig.values)
    if (v > 0.0) total_energy += v;
  check_numeric(total_energy > 0.0, "hopkins_litho: TCC has no positive spectrum");

  std::vector<std::size_t> kept;
  double captured = 0.0;
  for (std::size_t jj = eig.values.size(); jj-- > 0;) {
    const double lambda = eig.values[jj];
    if (lambda <= 0.0) break;
    kept.push_back(jj);
    captured += lambda;
    if (kept.size() >= settings.max_kernels || captured >= settings.energy_capture * total_energy)
      break;
  }
  log_debug("hopkins_litho: ", kept.size(), " kernels capture ",
            captured / total_energy * 100.0, "% of TCC energy (", n_freq,
            " freq samples, ", source.size(), " source points)");

  // Spatial kernels h_k(u) = sum_a phi_k(a) exp(i 2 pi f_a . u) on the pixel
  // lattice, and the open-frame intensity used for normalization.
  const std::size_t ks = 2 * settings.kernel_half + 1;
  std::vector<array2d<cplx>> kernels;
  kernels.reserve(kept.size());
  dvec raw_weights;
  raw_weights.reserve(kept.size());
  double open_intensity = 0.0;

  for (const std::size_t j : kept) {
    array2d<cplx> h(ks, ks, cplx{});
    cplx open_sum{};
    for (std::size_t ux = 0; ux < ks; ++ux) {
      const double x = (static_cast<double>(ux) - static_cast<double>(settings.kernel_half)) *
                       settings.pixel;
      for (std::size_t uy = 0; uy < ks; ++uy) {
        const double y = (static_cast<double>(uy) - static_cast<double>(settings.kernel_half)) *
                         settings.pixel;
        cplx acc{};
        for (std::size_t a = 0; a < n_freq; ++a) {
          const double phase = 2.0 * pi * (freqs[a].fx * x + freqs[a].fy * y);
          acc += eig.vectors(a, j) * std::polar(1.0, phase);
        }
        h(ux, uy) = acc;
        open_sum += acc;
      }
    }
    open_intensity += eig.values[j] * std::norm(open_sum);
    raw_weights.push_back(eig.values[j]);
    kernels.push_back(std::move(h));
  }
  check_numeric(open_intensity > 0.0, "hopkins_litho: degenerate open-frame intensity");

  weights_.resize(raw_weights.size());
  for (std::size_t k = 0; k < raw_weights.size(); ++k)
    weights_[k] = corner.dose * raw_weights[k] / open_intensity;

  conv_ = std::make_unique<fft::kernel_conv2d>(nx, ny, std::move(kernels));
}

litho_forward hopkins_litho::forward(const array2d<double>& mask) const {
  require(mask.nx() == nx_ && mask.ny() == ny_, "hopkins_litho: mask shape mismatch");
  litho_forward out;
  out.aerial = array2d<double>(nx_, ny_, 0.0);
  out.fields.reserve(weights_.size());

  const array2d<cplx> mask_fft = conv_->transform_input(mask);
  for (std::size_t k = 0; k < weights_.size(); ++k) {
    array2d<cplx> field = conv_->apply(mask_fft, k);
    for (std::size_t i = 0; i < field.size(); ++i)
      out.aerial.data()[i] += weights_[k] * std::norm(field.data()[i]);
    out.fields.push_back(std::move(field));
  }
  return out;
}

array2d<double> hopkins_litho::backward(const litho_forward& fwd,
                                        const array2d<double>& d_aerial) const {
  require(d_aerial.nx() == nx_ && d_aerial.ny() == ny_,
          "hopkins_litho: gradient shape mismatch");
  require(fwd.fields.size() == weights_.size(), "hopkins_litho: stale forward cache");

  std::vector<array2d<cplx>> g;
  g.reserve(weights_.size());
  for (std::size_t k = 0; k < weights_.size(); ++k) {
    array2d<cplx> gk(nx_, ny_);
    const auto& field = fwd.fields[k];
    for (std::size_t i = 0; i < gk.size(); ++i)
      gk.data()[i] = weights_[k] * d_aerial.data()[i] * field.data()[i];
    g.push_back(std::move(gk));
  }

  const array2d<cplx> adj = conv_->adjoint_sum(g);
  array2d<double> d_mask(nx_, ny_);
  for (std::size_t i = 0; i < d_mask.size(); ++i)
    d_mask.data()[i] = 2.0 * adj.data()[i].real();
  return d_mask;
}

}  // namespace boson::fab
