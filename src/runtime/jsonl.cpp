#include "runtime/jsonl.h"

#include <cstdint>
#include <filesystem>
#include <iterator>
#include <utility>

#include "common/error.h"
#include "common/log.h"

namespace boson::runtime {

namespace {

/// Drop a torn trailing fragment (what a crash mid-append leaves behind)
/// before appending: without this, the first record of a resumed run would
/// merge into the fragment and turn the tolerated torn tail into permanent
/// mid-file corruption. Concurrent shards opening one file heal to the same
/// boundary; only resuming *several* shards at the exact moment one of them
/// has already healed and appended could race — resume shards of a crashed
/// campaign one at a time.
void drop_torn_tail(const std::string& path, const std::string& label) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return;  // nothing to heal
  const std::string text((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
  if (text.empty() || text.back() == '\n') return;
  const std::size_t cut = text.find_last_of('\n');
  const std::uintmax_t keep = cut == std::string::npos ? 0 : cut + 1;
  log_warn(label, ": dropping torn trailing fragment of '", path, "' (",
           text.size() - keep, " bytes)");
  std::error_code ec;
  std::filesystem::resize_file(path, keep, ec);
  if (ec) throw io_error(label + ": cannot truncate torn tail of '" + path + "'");
}

}  // namespace

jsonl_appender::jsonl_appender(std::string path, std::string label)
    : path_(std::move(path)), label_(std::move(label)) {
  drop_torn_tail(path_, label_);
  out_.open(path_, std::ios::out | std::ios::app);
  if (!out_) throw io_error(label_ + ": cannot open '" + path_ + "' for appending");
}

void replay_jsonl_lines(const std::string& path, const std::string& label,
                        const std::function<void(const std::string& line)>& on_line) {
  std::ifstream in(path);
  if (!in) return;  // no file yet: empty history

  std::string line;
  std::size_t line_number = 0;
  bool pending_failure = false;
  std::string failure;
  while (std::getline(in, line)) {
    ++line_number;
    if (pending_failure) throw io_error(failure);
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    try {
      on_line(line);
    } catch (const error& e) {
      pending_failure = true;
      failure = label + ": '" + path + "' line " + std::to_string(line_number) +
                ": " + e.what();
    }
  }
}

void replay_jsonl(const std::string& path, const std::string& label,
                  const std::function<void(const io::json_value& record)>& on_record) {
  replay_jsonl_lines(path, label, [&on_record](const std::string& line) {
    on_record(io::json_value::parse(line));
  });
}

void jsonl_appender::append(const io::json_value& record) {
  // Render the whole line first: one write syscall per record under the
  // lock, so concurrent shard processes appending to the same file (append
  // mode -> O_APPEND) interleave whole lines only.
  const std::string line = record.dump(-1) + "\n";
  const std::lock_guard<std::mutex> lock(mutex_);
  out_ << line;
  out_.flush();
  if (!out_) throw io_error(label_ + ": append to '" + path_ + "' failed");
}

}  // namespace boson::runtime
