#include "sim/engine.h"

#include <deque>
#include <mutex>

#include "common/error.h"
#include "obs/trace.h"
#include "sim/workspace.h"

namespace boson::sim {

/// FIFO of recently solved batches, matched by exact right-hand-side
/// equality. Warm sweeps re-issue bit-identical batches, so a tiny window
/// suffices; a miss costs one vector comparison per entry (early-out on the
/// first differing element).
struct simulation_engine::batch_memo {
  struct entry {
    std::vector<cvec> rhs;
    std::vector<array2d<cplx>> fields;
  };
  static constexpr std::size_t capacity = 4;
  std::mutex mutex;
  std::deque<entry> entries;
};

simulation_engine::simulation_engine(const grid2d& grid, const pml_spec& pml, double k0,
                                     const array2d<double>& eps, engine_settings settings)
    : pml_(pml),
      settings_(settings),
      solver_(grid, pml, k0, eps),
      backend_(make_backend(solver_, settings_)),
      memo_(std::make_unique<batch_memo>()) {}

simulation_engine::simulation_engine(std::shared_ptr<const simulation_engine> nominal,
                                     const array2d<double>& eps)
    : pml_(nominal->pml_),
      settings_(nominal->settings_),
      solver_(nominal->grid(), pml_, nominal->k0(), eps),
      nominal_(std::move(nominal)),
      backend_(make_nearby_backend(solver_, settings_, nominal_)),
      memo_(std::make_unique<batch_memo>()) {}

simulation_engine::~simulation_engine() = default;

std::vector<array2d<cplx>> simulation_engine::solve_batch(std::vector<cvec> rhs) const {
  const grid2d& g = solver_.grid();
  auto& ws = workspace::local();

  const bool memoize = settings_.reuse && operator_reuse_enabled() && !rhs.empty();
  if (memoize) {
    const std::lock_guard<std::mutex> lock(memo_->mutex);
    for (const auto& e : memo_->entries) {
      if (e.rhs == rhs) {
        reuse_counter::solution_reuse();
        for (auto& b : rhs) ws.give_cvec(std::move(b));
        return e.fields;
      }
    }
  }

  std::vector<cvec> xs;
  {
    obs::span sp("sim.solve", "sim");
    if (sp.active()) {
      sp.arg("backend", backend_->name());
      sp.arg("batch", std::to_string(rhs.size()));
    }
    xs = backend_->solve(rhs);
  }

  std::vector<array2d<cplx>> fields;
  fields.reserve(xs.size());
  for (auto& x : xs) {
    array2d<cplx> field(g.nx, g.ny);
    for (std::size_t i = 0; i < x.size(); ++i) field.raw()[i] = x[i];
    ws.give_cvec(std::move(x));
    fields.push_back(std::move(field));
  }

  if (memoize) {
    // The batch retires into the memo (rhs buffers and all) instead of the
    // thread-local workspace, so a later identical batch can match it.
    const std::lock_guard<std::mutex> lock(memo_->mutex);
    if (memo_->entries.size() >= batch_memo::capacity) memo_->entries.pop_front();
    memo_->entries.push_back({std::move(rhs), fields});
  } else {
    for (auto& b : rhs) ws.give_cvec(std::move(b));
  }
  return fields;
}

std::vector<array2d<cplx>> simulation_engine::solve_excitations(
    const std::vector<array2d<cplx>>& current_densities) const {
  const grid2d& g = solver_.grid();
  auto& ws = workspace::local();

  std::vector<cvec> rhs;
  rhs.reserve(current_densities.size());
  for (const auto& current : current_densities) {
    cvec b = ws.take_cvec(g.cell_count());
    solver_.build_rhs(current, b);
    rhs.push_back(std::move(b));
  }
  return solve_batch(std::move(rhs));
}

array2d<cplx> simulation_engine::solve_excitation(const array2d<cplx>& current_density) const {
  return std::move(solve_excitations({current_density}).front());
}

std::vector<array2d<cplx>> simulation_engine::solve_adjoints(
    const std::vector<fdfd::field_gradient>& gradients) const {
  const grid2d& g = solver_.grid();
  auto& ws = workspace::local();

  std::vector<cvec> rhs;
  rhs.reserve(gradients.size());
  for (const auto& grad : gradients) {
    cvec b = ws.take_cvec(g.cell_count());
    solver_.build_adjoint_rhs(grad, b);
    rhs.push_back(std::move(b));
  }
  return solve_batch(std::move(rhs));
}

array2d<cplx> simulation_engine::solve_adjoint(const fdfd::field_gradient& g) const {
  return std::move(solve_adjoints({g}).front());
}

}  // namespace boson::sim
