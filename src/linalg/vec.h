#pragma once

#include <cmath>
#include <cstddef>

#include "common/error.h"
#include "common/types.h"

namespace boson::la {

/// Conjugated inner product conj(a)·b.
inline cplx dot(const cvec& a, const cvec& b) {
  require(a.size() == b.size(), "dot: size mismatch");
  cplx acc{};
  for (std::size_t i = 0; i < a.size(); ++i) acc += std::conj(a[i]) * b[i];
  return acc;
}

/// Unconjugated product aᵀ·b (used with complex-symmetric operators).
inline cplx dotu(const cvec& a, const cvec& b) {
  require(a.size() == b.size(), "dotu: size mismatch");
  cplx acc{};
  for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

inline double dot(const dvec& a, const dvec& b) {
  require(a.size() == b.size(), "dot: size mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

inline double nrm2(const cvec& a) {
  double acc = 0.0;
  for (const auto& v : a) acc += std::norm(v);
  return std::sqrt(acc);
}

inline double nrm2(const dvec& a) {
  double acc = 0.0;
  for (const auto& v : a) acc += v * v;
  return std::sqrt(acc);
}

inline double max_abs(const dvec& a) {
  double m = 0.0;
  for (const auto& v : a) m = std::max(m, std::abs(v));
  return m;
}

inline double max_abs(const cvec& a) {
  double m = 0.0;
  for (const auto& v : a) m = std::max(m, std::abs(v));
  return m;
}

/// y += alpha * x
inline void axpy(double alpha, const dvec& x, dvec& y) {
  require(x.size() == y.size(), "axpy: size mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

inline void axpy(cplx alpha, const cvec& x, cvec& y) {
  require(x.size() == y.size(), "axpy: size mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

inline void scale(dvec& x, double alpha) {
  for (auto& v : x) v *= alpha;
}

inline void scale(cvec& x, cplx alpha) {
  for (auto& v : x) v *= alpha;
}

}  // namespace boson::la
