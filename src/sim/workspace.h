/// \file workspace.h
/// Per-thread scratch-buffer pools. Monte-Carlo sampling and corner sweeps
/// evaluate the same-shaped systems thousands of times; recycling the
/// right-hand-side vectors and grid-sized scratch arrays through a
/// thread-local pool removes that per-sample allocation churn. Buffers move
/// in and out of the pool by value, so a buffer a caller forgets (or loses to
/// an exception) is simply freed instead of leaking.

#pragma once

#include <cstddef>
#include <vector>

#include "common/array2d.h"
#include "common/types.h"

namespace boson::sim {

/// Pool of reusable buffers. Use the thread-local instance from `local()`;
/// a `workspace` itself is not thread-safe. Each pool keeps at most
/// `max_pooled` buffers — solve batches return more vectors than they take
/// (solutions as well as right-hand sides), and the cap stops a long
/// Monte-Carlo run from accumulating parked grid-sized buffers without
/// bound; surplus gives simply free their buffer.
class workspace {
 public:
  /// Retained-buffer cap per pool; generously above the concurrent takes of
  /// one corner evaluation (excitations + adjoints).
  static constexpr std::size_t max_pooled = 16;

  /// The calling thread's workspace (created on first use).
  static workspace& local();

  /// Borrow a complex vector resized to `n`; contents are unspecified.
  cvec take_cvec(std::size_t n);
  /// Return a vector to the pool (its allocation is kept for reuse).
  void give_cvec(cvec v);

  /// Borrow a complex grid of shape (nx, ny), cleared to zero.
  array2d<cplx> take_cgrid(std::size_t nx, std::size_t ny);
  void give_cgrid(array2d<cplx> g);

  /// Borrow a real grid of shape (nx, ny); contents are unspecified.
  array2d<double> take_dgrid(std::size_t nx, std::size_t ny);
  void give_dgrid(array2d<double> g);

  /// Number of buffers currently parked in each pool (tests/diagnostics).
  std::size_t pooled_cvecs() const { return cvecs_.size(); }
  std::size_t pooled_cgrids() const { return cgrids_.size(); }
  std::size_t pooled_dgrids() const { return dgrids_.size(); }

 private:
  std::vector<cvec> cvecs_;
  std::vector<array2d<cplx>> cgrids_;
  std::vector<array2d<double>> dgrids_;
};

}  // namespace boson::sim
