#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "fft/conv2d.h"
#include "fft/fft.h"

namespace boson::fft {
namespace {

cvec random_signal(std::size_t n, std::uint64_t seed) {
  rng r(seed);
  cvec v(n);
  for (auto& x : v) x = cplx(r.uniform(-1, 1), r.uniform(-1, 1));
  return v;
}

// ---------------------------------------------------------------- utils ----

TEST(fft_util, power_of_two_predicates) {
  EXPECT_TRUE(is_power_of_two(1));
  EXPECT_TRUE(is_power_of_two(2));
  EXPECT_TRUE(is_power_of_two(64));
  EXPECT_FALSE(is_power_of_two(0));
  EXPECT_FALSE(is_power_of_two(3));
  EXPECT_FALSE(is_power_of_two(96));
  EXPECT_EQ(next_power_of_two(1), 1u);
  EXPECT_EQ(next_power_of_two(5), 8u);
  EXPECT_EQ(next_power_of_two(64), 64u);
  EXPECT_EQ(next_power_of_two(65), 128u);
}

// ------------------------------------------------------------------ 1-D ----

class fft_lengths : public ::testing::TestWithParam<std::size_t> {};

TEST_P(fft_lengths, matches_reference_dft) {
  const std::size_t n = GetParam();
  const cvec x = random_signal(n, 10 + n);
  cvec fast = x;
  fft_inplace(fast, false);
  const cvec slow = dft_reference(x, false);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(std::abs(fast[i] - slow[i]), 0.0, 1e-9) << i;
}

TEST_P(fft_lengths, inverse_round_trip) {
  const std::size_t n = GetParam();
  const cvec x = random_signal(n, 20 + n);
  cvec y = x;
  fft_inplace(y, false);
  fft_inplace(y, true);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(std::abs(y[i] - x[i]), 0.0, 1e-10);
}

TEST_P(fft_lengths, parseval_energy_conservation) {
  const std::size_t n = GetParam();
  const cvec x = random_signal(n, 30 + n);
  double time_energy = 0.0;
  for (const auto& v : x) time_energy += std::norm(v);
  cvec y = x;
  fft_inplace(y, false);
  double freq_energy = 0.0;
  for (const auto& v : y) freq_energy += std::norm(v);
  EXPECT_NEAR(freq_energy / static_cast<double>(n), time_energy, 1e-9 * (1.0 + time_energy));
}

// Power-of-two (radix-2 path) and awkward lengths (Bluestein path).
INSTANTIATE_TEST_SUITE_P(lengths, fft_lengths,
                         ::testing::Values(1, 2, 4, 8, 64, 3, 5, 7, 12, 30, 97, 100));

TEST(fft, impulse_transforms_to_constant) {
  cvec x(16, cplx{});
  x[0] = cplx{1.0};
  fft_inplace(x, false);
  for (const auto& v : x) EXPECT_NEAR(std::abs(v - cplx{1.0}), 0.0, 1e-12);
}

TEST(fft, single_tone_peaks_at_its_bin) {
  const std::size_t n = 32, bin = 5;
  cvec x(n);
  for (std::size_t t = 0; t < n; ++t)
    x[t] = std::polar(1.0, 2.0 * pi * static_cast<double>(bin * t) / static_cast<double>(n));
  fft_inplace(x, false);
  for (std::size_t k = 0; k < n; ++k) {
    if (k == bin) {
      EXPECT_NEAR(std::abs(x[k]), static_cast<double>(n), 1e-9);
    } else {
      EXPECT_NEAR(std::abs(x[k]), 0.0, 1e-9);
    }
  }
}

// ------------------------------------------------------------------ 2-D ----

TEST(fft2d, round_trip) {
  array2d<cplx> a(12, 20);
  rng r(44);
  for (auto& v : a) v = cplx(r.uniform(-1, 1), r.uniform(-1, 1));
  const array2d<cplx> original = a;
  fft2d_inplace(a, false);
  fft2d_inplace(a, true);
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_NEAR(std::abs(a.data()[i] - original.data()[i]), 0.0, 1e-10);
}

TEST(fft2d, separable_plane_wave_peak) {
  const std::size_t nx = 16, ny = 16;
  array2d<cplx> a(nx, ny);
  const std::size_t kx = 3, ky = 5;
  for (std::size_t ix = 0; ix < nx; ++ix)
    for (std::size_t iy = 0; iy < ny; ++iy)
      a(ix, iy) = std::polar(1.0, 2.0 * pi *
                                      (static_cast<double>(kx * ix) / nx +
                                       static_cast<double>(ky * iy) / ny));
  fft2d_inplace(a, false);
  for (std::size_t ix = 0; ix < nx; ++ix)
    for (std::size_t iy = 0; iy < ny; ++iy) {
      const double expected = (ix == kx && iy == ky) ? static_cast<double>(nx * ny) : 0.0;
      EXPECT_NEAR(std::abs(a(ix, iy)), expected, 1e-8);
    }
}

// ----------------------------------------------------------------- conv ----

/// Direct O(n^2 k^2) "same" convolution for reference.
array2d<cplx> conv_direct(const array2d<double>& in, const array2d<cplx>& kernel) {
  const std::ptrdiff_t c = static_cast<std::ptrdiff_t>(kernel.nx() / 2);
  array2d<cplx> out(in.nx(), in.ny(), cplx{});
  for (std::ptrdiff_t x = 0; x < static_cast<std::ptrdiff_t>(in.nx()); ++x) {
    for (std::ptrdiff_t y = 0; y < static_cast<std::ptrdiff_t>(in.ny()); ++y) {
      cplx acc{};
      for (std::ptrdiff_t ux = 0; ux < static_cast<std::ptrdiff_t>(kernel.nx()); ++ux) {
        for (std::ptrdiff_t uy = 0; uy < static_cast<std::ptrdiff_t>(kernel.ny()); ++uy) {
          const std::ptrdiff_t sx = x - (ux - c);
          const std::ptrdiff_t sy = y - (uy - c);
          if (sx < 0 || sy < 0 || sx >= static_cast<std::ptrdiff_t>(in.nx()) ||
              sy >= static_cast<std::ptrdiff_t>(in.ny()))
            continue;
          acc += kernel(static_cast<std::size_t>(ux), static_cast<std::size_t>(uy)) *
                 in(static_cast<std::size_t>(sx), static_cast<std::size_t>(sy));
        }
      }
      out(static_cast<std::size_t>(x), static_cast<std::size_t>(y)) = acc;
    }
  }
  return out;
}

struct conv_case {
  std::size_t nx, ny, ks;
};

class conv_shapes : public ::testing::TestWithParam<conv_case> {};

TEST_P(conv_shapes, fft_convolution_matches_direct) {
  const auto [nx, ny, ks] = GetParam();
  rng r(100 + nx + ks);
  array2d<double> in(nx, ny);
  for (auto& v : in) v = r.uniform(0, 1);
  array2d<cplx> kernel(ks, ks);
  for (auto& v : kernel) v = cplx(r.uniform(-1, 1), r.uniform(-1, 1));

  kernel_conv2d plan(nx, ny, {kernel});
  const auto in_fft = plan.transform_input(in);
  const auto fast = plan.apply(in_fft, 0);
  const auto slow = conv_direct(in, kernel);
  for (std::size_t i = 0; i < fast.size(); ++i)
    EXPECT_NEAR(std::abs(fast.data()[i] - slow.data()[i]), 0.0, 1e-9);
}

TEST_P(conv_shapes, adjoint_identity_holds) {
  // <conv(x), y> == <x, adjoint(y)> for the complex inner product.
  const auto [nx, ny, ks] = GetParam();
  rng r(200 + ny + ks);
  array2d<double> x(nx, ny);
  for (auto& v : x) v = r.uniform(-1, 1);
  array2d<cplx> kernel(ks, ks);
  for (auto& v : kernel) v = cplx(r.uniform(-1, 1), r.uniform(-1, 1));
  array2d<cplx> y(nx, ny);
  for (auto& v : y) v = cplx(r.uniform(-1, 1), r.uniform(-1, 1));

  kernel_conv2d plan(nx, ny, {kernel});
  const auto ax = plan.apply(plan.transform_input(x), 0);
  const auto aty = plan.adjoint(y, 0);

  cplx lhs{}, rhs{};
  for (std::size_t i = 0; i < ax.size(); ++i) lhs += std::conj(ax.data()[i]) * y.data()[i];
  for (std::size_t i = 0; i < x.size(); ++i) rhs += std::conj(cplx(x.data()[i])) * aty.data()[i];
  // <Ax, y> = <x, A^H y>  =>  conj(lhs) relation; compare accordingly.
  EXPECT_NEAR(std::abs(lhs - rhs), 0.0, 1e-9 * (1.0 + std::abs(lhs)));
}

INSTANTIATE_TEST_SUITE_P(shapes, conv_shapes,
                         ::testing::Values(conv_case{8, 8, 3}, conv_case{16, 12, 5},
                                           conv_case{20, 20, 7}, conv_case{9, 17, 5}));

TEST(conv, delta_kernel_is_identity) {
  const std::size_t n = 10, ks = 5;
  array2d<double> in(n, n);
  rng r(3);
  for (auto& v : in) v = r.uniform(0, 1);
  array2d<cplx> kernel(ks, ks, cplx{});
  kernel(ks / 2, ks / 2) = cplx{1.0};
  kernel_conv2d plan(n, n, {kernel});
  const auto out = plan.apply(plan.transform_input(in), 0);
  for (std::size_t i = 0; i < in.size(); ++i)
    EXPECT_NEAR(std::abs(out.data()[i] - cplx(in.data()[i])), 0.0, 1e-10);
}

TEST(conv, multiple_kernels_and_adjoint_sum) {
  const std::size_t n = 12, ks = 3;
  rng r(17);
  std::vector<array2d<cplx>> kernels;
  for (int k = 0; k < 3; ++k) {
    array2d<cplx> kk(ks, ks);
    for (auto& v : kk) v = cplx(r.uniform(-1, 1), r.uniform(-1, 1));
    kernels.push_back(kk);
  }
  kernel_conv2d plan(n, n, kernels);
  EXPECT_EQ(plan.num_kernels(), 3u);

  std::vector<array2d<cplx>> gs;
  for (int k = 0; k < 3; ++k) {
    array2d<cplx> g(n, n);
    for (auto& v : g) v = cplx(r.uniform(-1, 1), r.uniform(-1, 1));
    gs.push_back(g);
  }
  const auto summed = plan.adjoint_sum(gs);
  array2d<cplx> manual(n, n, cplx{});
  for (std::size_t k = 0; k < 3; ++k) {
    const auto each = plan.adjoint(gs[k], k);
    for (std::size_t i = 0; i < manual.size(); ++i) manual.data()[i] += each.data()[i];
  }
  for (std::size_t i = 0; i < manual.size(); ++i)
    EXPECT_NEAR(std::abs(summed.data()[i] - manual.data()[i]), 0.0, 1e-10);
}

TEST(conv, rejects_even_kernels_and_mismatched_shapes) {
  array2d<cplx> even(4, 4);
  EXPECT_THROW(kernel_conv2d(8, 8, {even}), bad_argument);
  array2d<cplx> k3(3, 3);
  array2d<cplx> k5(5, 5);
  EXPECT_THROW(kernel_conv2d(8, 8, {k3, k5}), bad_argument);
  kernel_conv2d plan(8, 8, {k3});
  array2d<double> wrong(9, 8);
  EXPECT_THROW(plan.transform_input(wrong), bad_argument);
}

}  // namespace
}  // namespace boson::fft
