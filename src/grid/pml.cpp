#include "grid/pml.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace boson {

stretch_profile build_stretch(std::size_t n, double d, double k0, const pml_spec& spec) {
  require(n > 2 * spec.cells, "build_stretch: grid too small for PML");
  require(k0 > 0.0 && d > 0.0, "build_stretch: invalid k0 or spacing");

  const double depth = static_cast<double>(spec.cells) * d;
  // Natural units (eta0 = 1): reflection R = exp(-2 sigma_max d / (order+1)).
  const double sigma_max = -(spec.order + 1.0) * std::log(spec.r0) / (2.0 * depth);

  auto stretch = [&](double position) -> cplx {
    // `position` measured in cells from the low boundary.
    const double cells = static_cast<double>(spec.cells);
    const double n_cells = static_cast<double>(n);
    double t = 0.0;
    if (position < cells) {
      t = (cells - position) / cells;
    } else if (position > n_cells - cells) {
      t = (position - (n_cells - cells)) / cells;
    } else {
      return cplx{1.0, 0.0};
    }
    t = std::min(t, 1.0);
    return cplx{1.0, sigma_max * std::pow(t, spec.order) / k0};
  };

  stretch_profile out;
  out.center.resize(n);
  out.iface.resize(n + 1);
  for (std::size_t i = 0; i < n; ++i)
    out.center[i] = stretch(static_cast<double>(i) + 0.5);
  for (std::size_t i = 0; i <= n; ++i)
    out.iface[i] = stretch(static_cast<double>(i));
  return out;
}

}  // namespace boson
