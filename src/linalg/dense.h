#pragma once

#include <cmath>
#include <cstddef>
#include <vector>

#include "common/error.h"
#include "common/types.h"

namespace boson::la {

/// Row-major dense matrix. Small and simple: it backs the TCC operator in the
/// lithography model, mode-solver cross-checks, and reference solutions in
/// tests; the FDFD system itself uses the banded sparse path.
template <class T>
class dense_matrix {
 public:
  dense_matrix() = default;

  dense_matrix(std::size_t rows, std::size_t cols, T fill_value = T{})
      : rows_(rows), cols_(cols), data_(rows * cols, fill_value) {}

  static dense_matrix identity(std::size_t n) {
    dense_matrix m(n, n);
    for (std::size_t i = 0; i < n; ++i) m(i, i) = T{1};
    return m;
  }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  T& operator()(std::size_t i, std::size_t j) { return data_[i * cols_ + j]; }
  const T& operator()(std::size_t i, std::size_t j) const { return data_[i * cols_ + j]; }

  T* data() { return data_.data(); }
  const T* data() const { return data_.data(); }

  void fill(const T& value) { std::fill(data_.begin(), data_.end(), value); }

  dense_matrix transpose() const {
    dense_matrix t(cols_, rows_);
    for (std::size_t i = 0; i < rows_; ++i)
      for (std::size_t j = 0; j < cols_; ++j) t(j, i) = (*this)(i, j);
    return t;
  }

  /// y = A x
  std::vector<T> matvec(const std::vector<T>& x) const {
    require(x.size() == cols_, "dense_matrix::matvec: size mismatch");
    std::vector<T> y(rows_, T{});
    for (std::size_t i = 0; i < rows_; ++i) {
      T acc{};
      const T* row = data_.data() + i * cols_;
      for (std::size_t j = 0; j < cols_; ++j) acc += row[j] * x[j];
      y[i] = acc;
    }
    return y;
  }

  dense_matrix matmul(const dense_matrix& b) const {
    require(cols_ == b.rows_, "dense_matrix::matmul: shape mismatch");
    dense_matrix c(rows_, b.cols_);
    for (std::size_t i = 0; i < rows_; ++i) {
      for (std::size_t k = 0; k < cols_; ++k) {
        const T aik = (*this)(i, k);
        if (aik == T{}) continue;
        for (std::size_t j = 0; j < b.cols_; ++j) c(i, j) += aik * b(k, j);
      }
    }
    return c;
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<T> data_;
};

using dmat = dense_matrix<double>;
using cmat = dense_matrix<cplx>;

namespace detail {
inline double magnitude(double v) { return std::abs(v); }
inline double magnitude(const cplx& v) { return std::abs(v); }
}  // namespace detail

/// Solve A x = b by LU with partial pivoting (A copied). Intended for small
/// systems and reference checks; throws `numeric_error` on singular pivots.
template <class T>
std::vector<T> lu_solve(dense_matrix<T> a, std::vector<T> b) {
  require(a.rows() == a.cols(), "lu_solve: matrix must be square");
  require(a.rows() == b.size(), "lu_solve: rhs size mismatch");
  const std::size_t n = a.rows();
  for (std::size_t k = 0; k < n; ++k) {
    std::size_t pivot = k;
    double best = detail::magnitude(a(k, k));
    for (std::size_t i = k + 1; i < n; ++i) {
      const double mag = detail::magnitude(a(i, k));
      if (mag > best) {
        best = mag;
        pivot = i;
      }
    }
    check_numeric(best > 0.0, "lu_solve: singular matrix");
    if (pivot != k) {
      for (std::size_t j = 0; j < n; ++j) std::swap(a(k, j), a(pivot, j));
      std::swap(b[k], b[pivot]);
    }
    for (std::size_t i = k + 1; i < n; ++i) {
      const T m = a(i, k) / a(k, k);
      a(i, k) = m;
      if (m == T{}) continue;
      for (std::size_t j = k + 1; j < n; ++j) a(i, j) -= m * a(k, j);
      b[i] -= m * b[k];
    }
  }
  for (std::size_t ii = n; ii-- > 0;) {
    T acc = b[ii];
    for (std::size_t j = ii + 1; j < n; ++j) acc -= a(ii, j) * b[j];
    b[ii] = acc / a(ii, ii);
  }
  return b;
}

}  // namespace boson::la
