#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "param/density.h"
#include "param/filters.h"
#include "param/levelset.h"
#include "param/regularizer.h"

namespace boson::param {
namespace {

// -------------------------------------------------------------- filters ----

TEST(filters, sigmoid_basic_properties) {
  EXPECT_DOUBLE_EQ(sigmoid(0.0), 0.5);
  EXPECT_NEAR(sigmoid(40.0), 1.0, 1e-12);
  EXPECT_NEAR(sigmoid(-40.0), 0.0, 1e-12);
  EXPECT_NEAR(sigmoid(2.0) + sigmoid(-2.0), 1.0, 1e-12);
  // Stable for extreme arguments (no overflow to NaN).
  EXPECT_TRUE(std::isfinite(sigmoid(1e4)));
  EXPECT_TRUE(std::isfinite(sigmoid(-1e4)));
}

TEST(filters, sigmoid_derivative_matches_fd) {
  for (const double x : {-3.0, -0.5, 0.0, 0.7, 2.5}) {
    const double h = 1e-6;
    const double fd = (sigmoid(x + h) - sigmoid(x - h)) / (2 * h);
    EXPECT_NEAR(sigmoid_derivative_from_value(sigmoid(x)), fd, 1e-8);
  }
}

TEST(filters, tanh_projection_limits_and_midpoint) {
  tanh_projection proj{12.0, 0.5};
  EXPECT_NEAR(proj.forward(0.0), 0.0, 1e-4);
  EXPECT_NEAR(proj.forward(1.0), 1.0, 1e-9);
  EXPECT_NEAR(proj.forward(0.5), std::tanh(6.0) / (std::tanh(6.0) + std::tanh(6.0)) * 1.0,
              0.5);  // = 0.5 for eta = 0.5
  EXPECT_NEAR(proj.forward(0.5), 0.5, 1e-9);
}

TEST(filters, tanh_projection_monotone_and_sharpens_with_beta) {
  tanh_projection soft{4.0, 0.5};
  tanh_projection sharp{40.0, 0.5};
  double prev = -1.0;
  for (double x = 0.0; x <= 1.0; x += 0.05) {
    const double v = soft.forward(x);
    EXPECT_GE(v, prev);
    prev = v;
  }
  EXPECT_GT(sharp.forward(0.6), soft.forward(0.6));
  EXPECT_LT(sharp.forward(0.4), soft.forward(0.4));
}

TEST(filters, tanh_projection_derivative_matches_fd) {
  tanh_projection proj{10.0, 0.45};
  for (const double x : {0.1, 0.4, 0.45, 0.6, 0.9}) {
    const double h = 1e-6;
    const double fd = (proj.forward(x + h) - proj.forward(x - h)) / (2 * h);
    EXPECT_NEAR(proj.derivative(x), fd, 1e-6 * (1.0 + std::abs(fd)));
  }
}

class blur_radii : public ::testing::TestWithParam<double> {};

TEST_P(blur_radii, preserves_constant_fields) {
  // The normalized blur must map a constant field to itself (partition of
  // unity), including at the boundary.
  gaussian_blur blur(17, 13, GetParam());
  array2d<double> in(17, 13, 0.7);
  array2d<double> out;
  blur.forward(in, out);
  for (const double v : out) EXPECT_NEAR(v, 0.7, 1e-12);
}

TEST_P(blur_radii, adjoint_identity) {
  const double radius = GetParam();
  gaussian_blur blur(11, 9, radius);
  rng r(static_cast<std::uint64_t>(radius * 10) + 3);
  array2d<double> x(11, 9), y(11, 9);
  for (auto& v : x) v = r.uniform(-1, 1);
  for (auto& v : y) v = r.uniform(-1, 1);
  array2d<double> bx, bty;
  blur.forward(x, bx);
  blur.adjoint(y, bty);
  double lhs = 0.0, rhs = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    lhs += bx.data()[i] * y.data()[i];
    rhs += x.data()[i] * bty.data()[i];
  }
  EXPECT_NEAR(lhs, rhs, 1e-10 * (1.0 + std::abs(lhs)));
}

INSTANTIATE_TEST_SUITE_P(radii, blur_radii, ::testing::Values(0.0, 0.8, 1.5, 3.0));

TEST(blur, removes_single_pixel_features) {
  gaussian_blur blur(21, 21, 2.0);
  array2d<double> in(21, 21, 0.0);
  in(10, 10) = 1.0;  // an isolated pixel: below the MFS
  array2d<double> out;
  blur.forward(in, out);
  EXPECT_LT(out(10, 10), 0.1);
}

TEST(blur, identity_when_radius_nonpositive) {
  gaussian_blur blur(7, 7, 0.0);
  EXPECT_TRUE(blur.is_identity());
  array2d<double> in(7, 7);
  rng r(5);
  for (auto& v : in) v = r.uniform(0, 1);
  array2d<double> out;
  blur.forward(in, out);
  for (std::size_t i = 0; i < in.size(); ++i) EXPECT_DOUBLE_EQ(out.data()[i], in.data()[i]);
}

// ------------------------------------------------------------- levelset ----

TEST(levelset, shape_and_param_count) {
  levelset_param p(5, 7, 20, 28);
  EXPECT_EQ(p.num_params(), 35u);
  EXPECT_EQ(p.nx(), 20u);
  EXPECT_EQ(p.ny(), 28u);
}

TEST(levelset, constant_knots_produce_constant_rho) {
  levelset_param p(4, 4, 16, 16, 8.0);
  dvec theta(16, 0.5);
  array2d<double> rho;
  p.forward(theta, rho);
  for (const double v : rho) EXPECT_NEAR(v, sigmoid(8.0 * 0.5), 1e-12);
}

TEST(levelset, interpolation_reproduces_knot_values_at_corners) {
  levelset_param p(3, 3, 9, 9, 1.0);
  rng r(8);
  dvec theta(9);
  for (auto& t : theta) t = r.uniform(-1, 1);
  array2d<double> phi;
  p.interpolate(theta, phi);
  // Design cell (0,0) coincides with knot (0,0), cell (8,8) with knot (2,2).
  EXPECT_NEAR(phi(0, 0), theta[0], 1e-12);
  EXPECT_NEAR(phi(8, 8), theta[8], 1e-12);
  EXPECT_NEAR(phi(4, 4), theta[4], 1e-12);  // center knot
}

TEST(levelset, sharpness_controls_binarization) {
  levelset_param p(4, 4, 12, 12, 4.0);
  rng r(21);
  dvec theta(16);
  for (auto& t : theta) t = r.uniform(0.3, 1.0);
  array2d<double> soft_rho;
  p.forward(theta, soft_rho);
  p.set_sharpness(60.0);
  EXPECT_DOUBLE_EQ(p.sharpness(), 60.0);
  array2d<double> hard_rho;
  p.forward(theta, hard_rho);
  for (std::size_t i = 0; i < soft_rho.size(); ++i)
    EXPECT_GE(hard_rho.data()[i], soft_rho.data()[i] - 1e-12);
  // With positive phi everywhere, high beta saturates near 1.
  for (const double v : hard_rho) EXPECT_GT(v, 0.99);
}

class param_gradient_check
    : public ::testing::TestWithParam<std::tuple<bool, double>> {};

TEST_P(param_gradient_check, backward_matches_fd) {
  const auto [use_levelset, beta] = GetParam();
  std::unique_ptr<parameterization> p;
  if (use_levelset) {
    p = std::make_unique<levelset_param>(4, 5, 12, 15, beta);
  } else {
    p = std::make_unique<density_param>(12, 15, 1.2, beta);
  }
  rng r(31);
  dvec theta(p->num_params());
  for (auto& t : theta) t = r.uniform(-1, 1);
  array2d<double> d_rho(12, 15);
  for (auto& v : d_rho) v = r.uniform(-1, 1);

  dvec grad(p->num_params(), 0.0);
  p->backward(theta, d_rho, grad);

  // FD of L = sum d_rho * rho(theta).
  auto loss = [&](const dvec& th) {
    array2d<double> rho;
    p->forward(th, rho);
    double acc = 0.0;
    for (std::size_t i = 0; i < rho.size(); ++i) acc += d_rho.data()[i] * rho.data()[i];
    return acc;
  };
  const double h = 1e-6;
  for (std::size_t k = 0; k < p->num_params(); k += 7) {
    dvec tp = theta, tm = theta;
    tp[k] += h;
    tm[k] -= h;
    const double fd = (loss(tp) - loss(tm)) / (2 * h);
    EXPECT_NEAR(grad[k], fd, 1e-5 * (1.0 + std::abs(fd))) << "param " << k;
  }
}

INSTANTIATE_TEST_SUITE_P(variants, param_gradient_check,
                         ::testing::Combine(::testing::Bool(),
                                            ::testing::Values(4.0, 12.0, 30.0)));

TEST(levelset, fit_from_field_reproduces_simple_shapes) {
  levelset_param p(9, 9, 33, 33, 20.0);
  array2d<double> field(33, 33);
  for (std::size_t ix = 0; ix < 33; ++ix)
    for (std::size_t iy = 0; iy < 33; ++iy)
      field(ix, iy) = iy < 16 ? 1.0 : -1.0;  // bottom half solid
  const dvec theta = p.fit_from_field(field);
  array2d<double> rho;
  p.forward(theta, rho);
  EXPECT_GT(rho(16, 4), 0.9);
  EXPECT_LT(rho(16, 30), 0.1);
}

// -------------------------------------------------------------- density ----

TEST(density, gray_theta_gives_intermediate_rho) {
  density_param p(8, 8, 0.0, 8.0);
  dvec theta(64, 0.0);
  array2d<double> rho;
  p.forward(theta, rho);
  for (const double v : rho) EXPECT_NEAR(v, 0.5, 1e-9);
}

TEST(density, blur_flag_reported) {
  density_param with(8, 8, 1.5);
  density_param without(8, 8, 0.0);
  EXPECT_TRUE(with.has_mfs_blur());
  EXPECT_FALSE(without.has_mfs_blur());
}

TEST(density, extreme_theta_saturates) {
  density_param p(6, 6, 0.0, 20.0);
  dvec theta(36, 8.0);
  array2d<double> rho;
  p.forward(theta, rho);
  for (const double v : rho) EXPECT_GT(v, 0.98);
  for (auto& t : theta) t = -8.0;
  p.forward(theta, rho);
  for (const double v : rho) EXPECT_LT(v, 0.02);
}

TEST(density, mfs_blur_suppresses_checkerboard) {
  // A checkerboard (the classical non-fabricable pattern) must collapse
  // toward gray under the '-M' blur, while a solid block survives.
  density_param with_mfs(16, 16, 1.5, 8.0);
  density_param without(16, 16, 0.0, 8.0);
  dvec checker(256);
  for (std::size_t ix = 0; ix < 16; ++ix)
    for (std::size_t iy = 0; iy < 16; ++iy) checker[ix * 16 + iy] = ((ix + iy) % 2) ? 6.0 : -6.0;
  array2d<double> rho_m, rho_free;
  with_mfs.forward(checker, rho_m);
  without.forward(checker, rho_free);
  double spread_m = 0.0, spread_free = 0.0;
  for (std::size_t i = 0; i < 256; ++i) {
    spread_m = std::max(spread_m, std::abs(rho_m.data()[i] - 0.5));
    spread_free = std::max(spread_free, std::abs(rho_free.data()[i] - 0.5));
  }
  EXPECT_LT(spread_m, 0.2);
  EXPECT_GT(spread_free, 0.45);
}

TEST(density, theta_size_validated) {
  density_param p(4, 4, 0.0);
  array2d<double> rho;
  EXPECT_THROW(p.forward(dvec(15), rho), bad_argument);
}

// ---------------------------------------------------------- regularizer ----

TEST(total_variation, zero_for_constant_patterns) {
  array2d<double> flat(10, 12, 0.37);
  EXPECT_NEAR(total_variation(flat, nullptr), 0.0, 1e-9);
}

TEST(total_variation, measures_edge_length) {
  // A vertical step edge of height 1 crossing n rows has TV ~= n.
  const std::size_t n = 16;
  array2d<double> step(n, n, 0.0);
  for (std::size_t ix = n / 2; ix < n; ++ix)
    for (std::size_t iy = 0; iy < n; ++iy) step(ix, iy) = 1.0;
  const double tv = total_variation(step, nullptr, 1e-6);
  EXPECT_NEAR(tv, static_cast<double>(n), 0.1);
}

TEST(total_variation, penalizes_checkerboard_more_than_solid) {
  const std::size_t n = 12;
  array2d<double> checker(n, n), solid(n, n, 0.0);
  for (std::size_t ix = 0; ix < n; ++ix)
    for (std::size_t iy = 0; iy < n; ++iy) checker(ix, iy) = (ix + iy) % 2 ? 1.0 : 0.0;
  for (std::size_t ix = 2; ix < n - 2; ++ix)
    for (std::size_t iy = 2; iy < n - 2; ++iy) solid(ix, iy) = 1.0;
  EXPECT_GT(total_variation(checker, nullptr), 4.0 * total_variation(solid, nullptr));
}

TEST(total_variation, gradient_matches_fd) {
  rng r(77);
  array2d<double> rho(8, 9);
  for (auto& v : rho) v = r.uniform(0, 1);
  array2d<double> grad(8, 9, 0.0);
  const double smoothing = 1e-2;  // smooth enough for clean finite differences
  total_variation(rho, &grad, smoothing);
  const double h = 1e-6;
  for (const std::size_t i : {0ul, 17ul, 40ul, 71ul}) {
    array2d<double> rp = rho, rm = rho;
    rp.data()[i] += h;
    rm.data()[i] -= h;
    const double fd = (total_variation(rp, nullptr, smoothing) -
                       total_variation(rm, nullptr, smoothing)) /
                      (2 * h);
    EXPECT_NEAR(grad.data()[i], fd, 1e-5 * (1.0 + std::abs(fd))) << i;
  }
}

TEST(total_variation, validates_input) {
  array2d<double> tiny(1, 5, 0.0);
  EXPECT_THROW(total_variation(tiny, nullptr), bad_argument);
  array2d<double> ok(4, 4, 0.0);
  EXPECT_THROW(total_variation(ok, nullptr, 0.0), bad_argument);
}

}  // namespace
}  // namespace boson::param
