#pragma once

#include <map>
#include <string>
#include <vector>

namespace boson::io {

/// Minimal JSON value/writer — enough to serialize experiment summaries
/// (nested objects, arrays, numbers, strings, booleans). Not a parser.
class json_value {
 public:
  json_value() : kind_(kind::null) {}
  json_value(bool b) : kind_(kind::boolean), bool_(b) {}               // NOLINT(google-explicit-constructor)
  json_value(double d) : kind_(kind::number), number_(d) {}            // NOLINT(google-explicit-constructor)
  json_value(int i) : kind_(kind::number), number_(i) {}               // NOLINT(google-explicit-constructor)
  json_value(std::size_t u)                                            // NOLINT(google-explicit-constructor)
      : kind_(kind::number), number_(static_cast<double>(u)) {}
  json_value(const char* s) : kind_(kind::string), string_(s) {}       // NOLINT(google-explicit-constructor)
  json_value(std::string s) : kind_(kind::string), string_(std::move(s)) {}  // NOLINT(google-explicit-constructor)

  static json_value object() {
    json_value v;
    v.kind_ = kind::object;
    return v;
  }
  static json_value array() {
    json_value v;
    v.kind_ = kind::array;
    return v;
  }

  /// Object member access (creates the member; value must be an object).
  json_value& operator[](const std::string& key);

  /// Append to an array.
  json_value& push_back(json_value v);

  /// Convenience: object from a metric map.
  static json_value from_map(const std::map<std::string, double>& m);

  bool is_object() const { return kind_ == kind::object; }
  bool is_array() const { return kind_ == kind::array; }

  /// Serialize; `indent` < 0 emits compact JSON.
  std::string dump(int indent = 2) const;

  /// Write to a file (throws io_error on failure).
  void write_file(const std::string& path, int indent = 2) const;

 private:
  enum class kind { null, boolean, number, string, object, array };
  void dump_impl(std::string& out, int indent, int depth) const;

  kind kind_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<std::pair<std::string, json_value>> members_;
  std::vector<json_value> elements_;
};

}  // namespace boson::io
