// Microbenchmarks (google-benchmark) of the computational kernels behind the
// inverse-design loop: banded LU factorization/solve (the FDFD direct
// solver), single- vs multi-RHS substitution, the direct and iterative
// simulation-engine backends, the FFT convolution engine, the Hopkins
// lithography model's forward/backward passes, slab mode solving and one
// full pipeline evaluation. These quantify where an optimization iteration's
// time goes. After the google-benchmark run the driver times the solver
// comparisons (single vs multi RHS, backend split, cached vs uncached
// Monte Carlo) with a wall clock and writes them to BENCH_solvers.json so
// the performance trajectory is recorded run over run.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "common/env.h"
#include "common/rng.h"
#include "common/timer.h"
#include "core/design_problem.h"
#include "core/evaluate.h"
#include "core/methods.h"
#include "devices/builders.h"
#include "fab/litho.h"
#include "fab/temperature.h"
#include "fdfd/solver.h"
#include "fft/conv2d.h"
#include "io/json.h"
#include "modes/slab.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/campaign.h"
#include "runtime/checkpoint.h"
#include "runtime/journal.h"
#include "runtime/lease.h"
#include "runtime/scheduler.h"
#include "sim/backend.h"
#include "sim/cache.h"
#include "sim/engine.h"
#include "store/segment_log.h"
#include "sparse/banded.h"

namespace {

using namespace boson;

// ------------------------------------------------------------- banded LU ----

void bm_banded_lu(benchmark::State& state) {
  const auto n_side = static_cast<std::size_t>(state.range(0));
  const std::size_t n = n_side * n_side;
  const std::size_t band = n_side;
  rng r(7);
  for (auto _ : state) {
    state.PauseTiming();
    sp::banded_lu lu(n, band, band);
    for (std::size_t i = 0; i < n; ++i) {
      lu.add(i, i, cplx(4.0 + r.uniform(0, 1), 1.0));
      if (i + 1 < n) lu.add(i, i + 1, cplx(-1.0, 0.0));
      if (i >= 1) lu.add(i, i - 1, cplx(-1.0, 0.0));
      if (i + band < n) lu.add(i, i + band, cplx(-1.0, 0.0));
      if (i >= band) lu.add(i, i - band, cplx(-1.0, 0.0));
    }
    state.ResumeTiming();
    lu.factor();
    cvec b(n, cplx{1.0});
    benchmark::DoNotOptimize(lu.solve(b));
  }
  state.SetComplexityN(static_cast<benchmark::IterationCount>(n));
}
BENCHMARK(bm_banded_lu)->Arg(32)->Arg(48)->Arg(64)->Arg(88)->Unit(benchmark::kMillisecond);

// ----------------------------------------------- single vs multi RHS -------

/// FDFD waveguide operator, factored once, plus a pool of right-hand sides.
struct solver_fixture {
  grid2d g;
  pml_spec pml;
  array2d<double> eps;
  std::unique_ptr<fdfd::fdfd_solver> solver;
  std::vector<cvec> rhs;

  explicit solver_fixture(std::size_t side = 88, std::size_t nrhs = 8) {
    g.nx = g.ny = side;
    g.dx = g.dy = 0.05;
    pml.cells = 10;
    eps = array2d<double>(side, side, 1.0);
    for (std::size_t ix = 0; ix < side; ++ix)
      for (std::size_t iy = side / 2 - 4; iy < side / 2 + 4; ++iy)
        eps(ix, iy) = fab::eps_si(300.0);
    solver = std::make_unique<fdfd::fdfd_solver>(g, pml, 2.0 * pi / 1.55, eps);
    (void)solver->factorization();  // factor outside every timed region
    rng r(11);
    rhs.assign(nrhs, cvec(g.cell_count(), cplx{}));
    for (auto& b : rhs)
      for (auto& v : b) v = cplx(r.uniform(-1, 1), r.uniform(-1, 1));
  }
};

void bm_banded_solve_single_rhs(benchmark::State& state) {
  static solver_fixture f;
  const auto nrhs = static_cast<std::size_t>(state.range(0));
  for (auto _ : state)
    for (std::size_t k = 0; k < nrhs; ++k)
      benchmark::DoNotOptimize(f.solver->factorization().solve(f.rhs[k]));
}
BENCHMARK(bm_banded_solve_single_rhs)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

void bm_banded_solve_multi_rhs(benchmark::State& state) {
  static solver_fixture f;
  const auto nrhs = static_cast<std::size_t>(state.range(0));
  const std::vector<cvec> batch(f.rhs.begin(),
                                f.rhs.begin() + static_cast<std::ptrdiff_t>(nrhs));
  for (auto _ : state) benchmark::DoNotOptimize(f.solver->factorization().solve(batch));
}
BENCHMARK(bm_banded_solve_multi_rhs)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

// ------------------------------------------------- engine backends ---------

void bm_engine_prepare(benchmark::State& state) {
  static solver_fixture f(64);
  sim::engine_settings s;
  s.backend = static_cast<sim::backend_kind>(state.range(0));
  for (auto _ : state) {
    const sim::simulation_engine engine(f.g, f.pml, 2.0 * pi / 1.55, f.eps, s);
    benchmark::DoNotOptimize(engine.backend_name());
  }
}
BENCHMARK(bm_engine_prepare)
    ->Arg(static_cast<int>(sim::backend_kind::banded))
    ->Arg(static_cast<int>(sim::backend_kind::bicgstab))
    ->Unit(benchmark::kMillisecond);

void bm_engine_solve(benchmark::State& state) {
  static solver_fixture f(64);
  sim::engine_settings s;
  s.backend = static_cast<sim::backend_kind>(state.range(0));
  s.tol = 1e-8;
  const sim::simulation_engine engine(f.g, f.pml, 2.0 * pi / 1.55, f.eps, s);
  array2d<cplx> current(f.g.nx, f.g.ny, cplx{});
  current(f.g.nx / 4, f.g.ny / 2) = cplx{1.0};
  for (auto _ : state) benchmark::DoNotOptimize(engine.solve_excitation(current));
}
BENCHMARK(bm_engine_solve)
    ->Arg(static_cast<int>(sim::backend_kind::banded))
    ->Arg(static_cast<int>(sim::backend_kind::bicgstab))
    ->Arg(static_cast<int>(sim::backend_kind::gmres))
    ->Unit(benchmark::kMillisecond);

// ----------------------------------------------------------- FDFD solve ----

void bm_fdfd_forward_solve(benchmark::State& state) {
  const auto side = static_cast<std::size_t>(state.range(0));
  grid2d g;
  g.nx = g.ny = side;
  g.dx = g.dy = 0.05;
  pml_spec pml;
  pml.cells = 10;
  array2d<double> eps(side, side, 1.0);
  for (std::size_t ix = 0; ix < side; ++ix)
    for (std::size_t iy = side / 2 - 4; iy < side / 2 + 4; ++iy)
      eps(ix, iy) = fab::eps_si(300.0);
  array2d<cplx> current(side, side, cplx{});
  current(side / 4, side / 2) = cplx{1.0};
  for (auto _ : state) {
    fdfd::fdfd_solver solver(g, pml, 2.0 * pi / 1.55, eps);
    benchmark::DoNotOptimize(solver.solve(current));
  }
}
BENCHMARK(bm_fdfd_forward_solve)->Arg(64)->Arg(88)->Arg(112)->Unit(benchmark::kMillisecond);

void bm_fdfd_extra_solve_reusing_factorization(benchmark::State& state) {
  const std::size_t side = 88;
  grid2d g;
  g.nx = g.ny = side;
  g.dx = g.dy = 0.05;
  pml_spec pml;
  pml.cells = 10;
  array2d<double> eps(side, side, 1.0);
  fdfd::fdfd_solver solver(g, pml, 2.0 * pi / 1.55, eps);
  array2d<cplx> current(side, side, cplx{});
  current(30, 44) = cplx{1.0};
  (void)solver.solve(current);  // factorize once
  for (auto _ : state) benchmark::DoNotOptimize(solver.solve(current));
}
BENCHMARK(bm_fdfd_extra_solve_reusing_factorization)->Unit(benchmark::kMillisecond);

// ------------------------------------------------------------------ FFT ----

void bm_fft_conv2d(benchmark::State& state) {
  const auto side = static_cast<std::size_t>(state.range(0));
  rng r(5);
  array2d<cplx> kernel(21, 21);
  for (auto& v : kernel) v = cplx(r.uniform(-1, 1), r.uniform(-1, 1));
  fft::kernel_conv2d plan(side, side, {kernel});
  array2d<double> in(side, side);
  for (auto& v : in) v = r.uniform(0, 1);
  for (auto _ : state) {
    const auto in_fft = plan.transform_input(in);
    benchmark::DoNotOptimize(plan.apply(in_fft, 0));
  }
}
BENCHMARK(bm_fft_conv2d)->Arg(48)->Arg(64)->Arg(96)->Unit(benchmark::kMicrosecond);

// ---------------------------------------------------------------- litho ----

struct litho_fixture {
  fab::litho_settings settings;
  std::unique_ptr<fab::hopkins_litho> model;
  array2d<double> mask;

  litho_fixture() {
    settings.kernel_half = 10;
    model = std::make_unique<fab::hopkins_litho>(settings, fab::litho_corner_params{0.0, 1.0},
                                                 56, 56);
    mask = array2d<double>(56, 56, 0.0);
    for (std::size_t ix = 16; ix < 40; ++ix)
      for (std::size_t iy = 16; iy < 40; ++iy) mask(ix, iy) = 1.0;
  }
};

void bm_litho_forward(benchmark::State& state) {
  static litho_fixture f;
  for (auto _ : state) benchmark::DoNotOptimize(f.model->forward(f.mask));
}
BENCHMARK(bm_litho_forward)->Unit(benchmark::kMillisecond);

void bm_litho_backward(benchmark::State& state) {
  static litho_fixture f;
  const auto fwd = f.model->forward(f.mask);
  array2d<double> d_aerial(56, 56, 1.0);
  for (auto _ : state) benchmark::DoNotOptimize(f.model->backward(fwd, d_aerial));
}
BENCHMARK(bm_litho_backward)->Unit(benchmark::kMillisecond);

void bm_litho_model_construction(benchmark::State& state) {
  fab::litho_settings s;
  s.kernel_half = 8;
  for (auto _ : state) {
    fab::hopkins_litho model(s, fab::litho_corner_params{0.08, 1.05}, 48, 48);
    benchmark::DoNotOptimize(model.kernel_count());
  }
}
BENCHMARK(bm_litho_model_construction)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------- modes ----

void bm_slab_modes(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  dvec eps(n, 1.0);
  for (std::size_t j = n / 2 - n / 8; j < n / 2 + n / 8; ++j) eps[j] = 12.1;
  for (auto _ : state)
    benchmark::DoNotOptimize(modes::solve_slab_modes(eps, 0.05, 2.0 * pi / 1.55, 4));
}
BENCHMARK(bm_slab_modes)->Arg(40)->Arg(80)->Arg(160)->Unit(benchmark::kMicrosecond);

// ------------------------------------------------------- full pipeline ----

void bm_pipeline_evaluate(benchmark::State& state) {
  static core::experiment_config cfg = [] {
    core::experiment_config c;
    c.resolution = 0.1;
    c.litho.na = 0.65;
    c.litho.sigma = 0.35;
    c.litho.kernel_half = 5;
    return c;
  }();
  static core::design_problem problem = core::make_problem(dev::make_bend(0.1), true, cfg);
  static const dvec theta = core::concentrated_init(problem);
  robust::variation_corner nominal;
  nominal.xi.assign(problem.fab().space.eole_terms, 0.0);
  core::eval_options o;
  o.fab_aware = true;
  o.compute_gradient = true;
  for (auto _ : state) benchmark::DoNotOptimize(problem.evaluate(theta, nominal, o));
}
BENCHMARK(bm_pipeline_evaluate)->Unit(benchmark::kMillisecond);

// ------------------------------------------- BENCH_solvers.json report ----

/// Wall-clock the solver-level comparisons the microbenchmarks sample —
/// single vs multi RHS through one factorization, the prepare/solve split of
/// every backend, and cold- vs warm-cache post-fab Monte Carlo — and write
/// them to BENCH_solvers.json so the perf trajectory is recorded run to run.
io::json_value time_solvers() {
  io::json_value report = io::json_value::object();

  {  // single- vs multi-RHS substitution through one banded factorization.
    solver_fixture f(88, 8);
    constexpr int reps = 10;
    stopwatch sw;
    for (int rep = 0; rep < reps; ++rep)
      for (const auto& b : f.rhs) benchmark::DoNotOptimize(f.solver->factorization().solve(b));
    const double single_s = sw.seconds() / reps;
    sw.reset();
    for (int rep = 0; rep < reps; ++rep)
      benchmark::DoNotOptimize(f.solver->factorization().solve(f.rhs));
    const double multi_s = sw.seconds() / reps;

    io::json_value j = io::json_value::object();
    j["grid"] = std::string("88x88");
    j["num_rhs"] = f.rhs.size();
    j["single_rhs_seconds"] = single_s;
    j["multi_rhs_seconds"] = multi_s;
    j["speedup"] = single_s / multi_s;
    report["banded_multi_rhs"] = std::move(j);
    std::printf("multi-RHS (8 rhs, 88x88): %.3f ms vs %.3f ms single => %.2fx\n",
                1e3 * multi_s, 1e3 * single_s, single_s / multi_s);
  }

  {  // prepare + solve per backend on the same operator.
    solver_fixture f(64);
    array2d<cplx> current(f.g.nx, f.g.ny, cplx{});
    current(f.g.nx / 4, f.g.ny / 2) = cplx{1.0};
    io::json_value backends = io::json_value::object();
    for (const auto kind : {sim::backend_kind::banded, sim::backend_kind::bicgstab,
                            sim::backend_kind::gmres}) {
      sim::engine_settings s;
      s.backend = kind;
      s.tol = 1e-8;
      stopwatch sw;
      const sim::simulation_engine engine(f.g, f.pml, 2.0 * pi / 1.55, f.eps, s);
      const double prepare_s = sw.seconds();
      constexpr int reps = 5;
      sw.reset();
      for (int rep = 0; rep < reps; ++rep)
        benchmark::DoNotOptimize(engine.solve_excitation(current));
      const double solve_s = sw.seconds() / reps;
      io::json_value j = io::json_value::object();
      j["prepare_seconds"] = prepare_s;
      j["solve_seconds"] = solve_s;
      backends[sim::to_string(kind)] = std::move(j);
      std::printf("backend %-9s (64x64): prepare %.3f ms, solve %.3f ms\n",
                  sim::to_string(kind), 1e3 * prepare_s, 1e3 * solve_s);
    }
    report["backends"] = std::move(backends);
  }

  {  // nearby-operator reuse vs full re-preparation of a perturbed corner.
    solver_fixture f(88);
    sim::engine_settings s;  // banded + reuse defaults
    const auto nominal = std::make_shared<const sim::simulation_engine>(
        f.g, f.pml, 2.0 * pi / 1.55, f.eps, s);
    array2d<double> eps2 = f.eps;  // temperature-like core shift
    for (std::size_t ix = 0; ix < f.g.nx; ++ix)
      for (std::size_t iy = f.g.ny / 2 - 4; iy < f.g.ny / 2 + 4; ++iy) eps2(ix, iy) += 0.05;
    array2d<cplx> current(f.g.nx, f.g.ny, cplx{});
    current(f.g.nx / 4, f.g.ny / 2) = cplx{1.0};

    constexpr int reps = 5;
    stopwatch sw;
    for (int rep = 0; rep < reps; ++rep) {
      const sim::simulation_engine full(f.g, f.pml, 2.0 * pi / 1.55, eps2, s);
      benchmark::DoNotOptimize(full.solve_excitation(current));
    }
    const double reprepare_s = sw.seconds() / reps;
    sim::reset_reuse_statistics();
    sw.reset();
    for (int rep = 0; rep < reps; ++rep) {
      const sim::simulation_engine near(nominal, eps2);
      benchmark::DoNotOptimize(near.solve_excitation(current));
    }
    const double reuse_s = sw.seconds() / reps;
    const auto rs = sim::reuse_statistics();

    io::json_value j = io::json_value::object();
    j["grid"] = std::string("88x88");
    j["reprepare_seconds"] = reprepare_s;
    j["reuse_seconds"] = reuse_s;
    j["speedup"] = reprepare_s / reuse_s;
    j["refinement_solves"] = rs.refinement_solves;
    j["refinement_iterations"] = rs.refinement_iterations;
    j["fallbacks"] = rs.fallbacks;
    report["nearby_reuse"] = std::move(j);
    std::printf("nearby reuse (88x88 perturbed corner): %.3f ms vs %.3f ms re-prepare "
                "=> %.2fx (%zu outer iters, %zu fallbacks)\n",
                1e3 * reuse_s, 1e3 * reprepare_s, reprepare_s / reuse_s,
                rs.refinement_iterations, rs.fallbacks);
  }

  {  // cold- vs warm-cache post-fab Monte Carlo on the bend benchmark.
    core::experiment_config cfg;
    cfg.resolution = 0.1;
    cfg.litho.na = 0.65;
    cfg.litho.sigma = 0.35;
    cfg.litho.kernel_half = 5;
    cfg.litho.max_kernels = 5;
    const core::design_problem problem = core::make_problem(dev::make_bend(0.1), true, cfg);
    array2d<double> mask(problem.spec().design.nx, problem.spec().design.ny, 0.0);
    for (std::size_t i = 0; i < mask.nx(); ++i)
      for (std::size_t j = mask.ny() / 3; j < 2 * mask.ny() / 3; ++j) mask(i, j) = 1.0;

    const auto samples = static_cast<std::size_t>(
        std::max(2.0, 8.0 * env_double("BOSON_BENCH_SCALE", 1.0)));
    stopwatch sw;
    (void)core::postfab_monte_carlo(problem, mask, samples, 42, /*use_operator_cache=*/false);
    const double uncached_s = sw.seconds();
    sim::engine_cache::global().clear();
    sim::reset_reuse_statistics();
    sw.reset();
    (void)core::postfab_monte_carlo(problem, mask, samples, 42);
    const double cold_s = sw.seconds();
    sw.reset();
    (void)core::postfab_monte_carlo(problem, mask, samples, 42);
    const double warm_s = sw.seconds();
    const auto cs = sim::engine_cache::global().stats();
    const auto rs = sim::reuse_statistics();

    io::json_value j = io::json_value::object();
    j["samples"] = samples;
    j["uncached_seconds"] = uncached_s;
    j["cached_cold_seconds"] = cold_s;
    j["cached_warm_seconds"] = warm_s;
    j["speedup_warm_vs_uncached"] = uncached_s / warm_s;
    j["cache_hits"] = cs.hits;
    j["cache_misses"] = cs.misses;
    j["cache_reuse_hits"] = cs.reuse_hits;
    j["reuse_prepares_avoided"] = rs.prepares_avoided;
    j["reuse_refinement_solves"] = rs.refinement_solves;
    j["reuse_refinement_iterations"] = rs.refinement_iterations;
    j["reuse_fallbacks"] = rs.fallbacks;
    j["reuse_solution_reuses"] = rs.solution_reuses;
    report["postfab_monte_carlo"] = std::move(j);
    std::printf("postfab MC (%zu samples): uncached %.3f s, cached cold %.3f s, "
                "cached warm %.3f s => %.2fx (%zu hits / %zu misses, %zu reuse hits, "
                "%zu solution reuses, %zu fallbacks)\n",
                samples, uncached_s, cold_s, warm_s, uncached_s / warm_s, cs.hits,
                cs.misses, cs.reuse_hits, rs.solution_reuses, rs.fallbacks);
  }

  return report;
}

// ------------------------------------------- BENCH_runtime.json report ----

/// Wall-clock the campaign runtime's overheads — scheduler dispatch
/// throughput across worker counts (no-op executors isolate the machinery
/// from the simulations), journal append/replay rates, and checkpoint
/// save+load latency at a realistic state size — and write them to
/// BENCH_runtime.json.
io::json_value time_runtime() {
  namespace fs = std::filesystem;
  io::json_value report = io::json_value::object();
  const fs::path root = fs::temp_directory_path() / "boson_bench_runtime";
  fs::remove_all(root);

  {  // scheduler throughput: dispatch + journal + store per no-op job.
    runtime::campaign_spec spec;
    spec.name = "throughput";
    spec.devices = {"bend"};
    spec.methods = {"density", "ls", "boson_no_relax", "boson"};
    spec.seeds.clear();
    for (std::uint64_t s = 1; s <= 16; ++s) spec.seeds.push_back(s);
    spec.base.resolution = 0.1;
    spec.scheduler.max_retries = 0;

    io::json_value workers_json = io::json_value::object();
    for (const std::size_t workers : {std::size_t{1}, std::size_t{4}, std::size_t{8}}) {
      const fs::path dir = root / ("sched_w" + std::to_string(workers));
      runtime::scheduler_options options;
      options.campaign_dir = dir.string();
      options.workers = workers;
      options.executor = [](const runtime::campaign_job& job, const api::run_control&,
                            api::observer*) {
        api::experiment_result result;
        result.spec = job.spec;
        return result;
      };
      stopwatch sw;
      const runtime::scheduler_report run = runtime::scheduler(spec, options).run();
      const double seconds = sw.seconds();
      const double rate = static_cast<double>(run.completed) / seconds;
      io::json_value j = io::json_value::object();
      j["jobs"] = run.completed;
      j["seconds"] = seconds;
      j["jobs_per_second"] = rate;
      workers_json["w" + std::to_string(workers)] = std::move(j);
      std::printf("scheduler (%zu no-op jobs, %zu workers): %.3f s => %.0f jobs/s\n",
                  run.completed, workers, seconds, rate);
    }
    report["scheduler_throughput"] = std::move(workers_json);
  }

  {  // journal append + replay rates.
    const fs::path dir = root / "journal";
    fs::create_directories(dir);
    const std::string path = (dir / "journal.jsonl").string();
    constexpr std::size_t appends = 20000;
    stopwatch sw;
    {
      runtime::journal log(path);
      runtime::journal_entry e;
      e.job_name = "bench_job";
      e.state = runtime::job_state::checkpointed;
      e.attempt = 1;
      e.detail = "iteration 10/50";
      for (std::size_t i = 0; i < appends; ++i) {
        e.job_index = i;
        log.append(e);
      }
    }
    const double append_s = sw.seconds();
    sw.reset();
    const std::size_t replayed = runtime::journal::replay(path).size();
    const double replay_s = sw.seconds();
    io::json_value j = io::json_value::object();
    j["appends"] = appends;
    j["append_seconds"] = append_s;
    j["appends_per_second"] = static_cast<double>(appends) / append_s;
    j["replay_seconds"] = replay_s;
    j["replayed"] = replayed;
    report["journal"] = std::move(j);
    std::printf("journal: %zu appends in %.3f s (%.0f/s), replay %.3f s\n", appends,
                append_s, static_cast<double>(appends) / append_s, replay_s);
  }

  {  // segmented store: append rate with rotation, chain replay, compaction.
    const fs::path dir = root / "store";
    constexpr std::size_t appends = 20000;
    stopwatch sw;
    {
      store::segment_log log(dir.string(), {0, 4096, 0}, "bench");
      for (std::size_t i = 0; i < appends; ++i)
        log.append("{\"k\":" + std::to_string(i % 128) + ",\"i\":" +
                   std::to_string(i) + ",\"detail\":\"iteration 10/50\"}");
    }
    const double append_s = sw.seconds();
    sw.reset();
    const std::size_t replayed =
        store::segment_log::read_all(dir.string(), "bench").size();
    const double replay_s = sw.seconds();

    // Latest-wins fold over ~5 sealed segments: the registry-style pattern.
    const auto fold = [](const std::vector<std::string>& lines) {
      std::map<std::string, std::size_t> last;
      for (std::size_t i = 0; i < lines.size(); ++i)
        last[io::json_value::parse(lines[i]).at("k").dump(-1)] = i;
      std::vector<std::size_t> keep;
      for (const auto& [k, i] : last) keep.push_back(i);
      std::sort(keep.begin(), keep.end());
      std::vector<std::string> kept;
      for (const std::size_t i : keep) kept.push_back(lines[i]);
      return kept;
    };
    sw.reset();
    std::size_t folded = 0;
    {
      store::segment_log log(dir.string(), {}, "bench");
      folded = log.compact(fold);
    }
    const double compact_s = sw.seconds();

    io::json_value j = io::json_value::object();
    j["appends"] = appends;
    j["append_seconds"] = append_s;
    j["appends_per_second"] = static_cast<double>(appends) / append_s;
    j["replay_seconds"] = replay_s;
    j["replayed"] = replayed;
    j["compact_seconds"] = compact_s;
    j["compacted_records"] = folded;
    j["compacted_per_second"] = static_cast<double>(folded) / compact_s;
    report["store"] = std::move(j);
    std::printf(
        "store: %zu appends in %.3f s (%.0f/s), replay %.3f s, compact folded "
        "%zu in %.3f s\n",
        appends, append_s, static_cast<double>(appends) / append_s, replay_s,
        folded, compact_s);
  }

  {  // lease claim / renew throughput — the elastic scheduler's hot path
     // (each claim is an append + incremental re-fold of the shared journal,
     // each renew an append + verify).
    const fs::path dir = root / "lease";
    fs::create_directories(dir);
    runtime::journal log((dir / "journal.jsonl").string());
    double now = 0.0;
    runtime::lease_manager manager(log, "bench", 1e9, [&now] { return now; });
    constexpr std::size_t jobs = 5000;
    std::vector<runtime::job_lease> held;
    held.reserve(jobs);
    stopwatch sw;
    for (std::size_t i = 0; i < jobs; ++i) {
      auto lease = manager.claim(i, "bench_job");
      if (lease) held.push_back(*lease);
    }
    const double claim_s = sw.seconds();
    sw.reset();
    std::size_t renewed = 0;
    for (runtime::job_lease& lease : held) renewed += manager.renew(lease) ? 1 : 0;
    const double renew_s = sw.seconds();
    io::json_value j = io::json_value::object();
    j["claims"] = held.size();
    j["claim_seconds"] = claim_s;
    j["claims_per_second"] = static_cast<double>(held.size()) / claim_s;
    j["renews"] = renewed;
    j["renew_seconds"] = renew_s;
    j["renews_per_second"] = static_cast<double>(renewed) / renew_s;
    report["lease"] = std::move(j);
    std::printf("lease: %zu claims in %.3f s (%.0f/s), %zu renews in %.3f s (%.0f/s)\n",
                held.size(), claim_s, static_cast<double>(held.size()) / claim_s,
                renewed, renew_s, static_cast<double>(renewed) / renew_s);
  }

  {  // checkpoint save + load latency at a realistic state size.
    const fs::path dir = root / "checkpoint";
    rng r(7);
    core::run_checkpoint ck;
    ck.next_iteration = 25;
    ck.total_iterations = 50;
    ck.theta = r.normal_vector(20000);
    ck.optimizer.m = r.normal_vector(20000);
    ck.optimizer.v = r.normal_vector(20000);
    ck.optimizer.t = 25;
    ck.rng_state = r.save_state();
    ck.design_rho = array2d<double>(141, 141, 0.5);
    for (std::size_t i = 0; i < 25; ++i) {
      core::iteration_record rec;
      rec.iteration = i;
      rec.loss = r.normal();
      rec.metrics["transmission"] = r.normal();
      ck.trajectory.push_back(rec);
    }
    constexpr int reps = 20;
    stopwatch sw;
    for (int rep = 0; rep < reps; ++rep)
      runtime::save_checkpoint(dir.string(), "bench_job", ck);
    const double save_s = sw.seconds() / reps;
    sw.reset();
    for (int rep = 0; rep < reps; ++rep)
      benchmark::DoNotOptimize(
          runtime::load_checkpoint(runtime::checkpoint_path(dir.string())));
    const double load_s = sw.seconds() / reps;
    io::json_value j = io::json_value::object();
    j["theta_size"] = ck.theta.size();
    j["save_seconds"] = save_s;
    j["load_seconds"] = load_s;
    report["checkpoint"] = std::move(j);
    std::printf("checkpoint (20k params): save %.3f ms, load %.3f ms\n", 1e3 * save_s,
                1e3 * load_s);
  }

  {  // telemetry overhead: the obs primitives the solver/scheduler hot paths
     // now carry. Rates use *_per_second keys so bench_compare gates them —
     // a regression here means instrumentation crept into the hot path.
    auto& reg = obs::registry::global();
    obs::counter& c = reg.get_counter("bench.telemetry.counter");
    obs::histogram& h = reg.get_histogram("bench.telemetry.hist");
    constexpr std::size_t ops = 2000000;
    stopwatch sw;
    for (std::size_t i = 0; i < ops; ++i) c.inc();
    const double counter_s = sw.seconds();
    sw.reset();
    for (std::size_t i = 0; i < ops; ++i)
      h.observe(1e-5 * static_cast<double>(i & 1023));
    const double hist_s = sw.seconds();

    // Spans without a sink — the compiled-in, disabled default every solve
    // pays — and with a live collector, the traced-job case.
    constexpr std::size_t span_ops = 1000000;
    sw.reset();
    for (std::size_t i = 0; i < span_ops; ++i) {
      obs::span sp("bench.telemetry.span", "bench");
      benchmark::DoNotOptimize(&sp);
    }
    const double span_off_s = sw.seconds();
    constexpr std::size_t traced_ops = 100000;
    obs::trace_collector collector;
    double span_on_s = 0.0;
    {
      const obs::scoped_trace_sink sink(&collector);
      sw.reset();
      for (std::size_t i = 0; i < traced_ops; ++i)
        obs::span sp("bench.telemetry.span", "bench");
      span_on_s = sw.seconds();
    }

    io::json_value j = io::json_value::object();
    j["counter_incs_per_second"] = static_cast<double>(ops) / counter_s;
    j["histogram_observes_per_second"] = static_cast<double>(ops) / hist_s;
    j["spans_disabled_per_second"] = static_cast<double>(span_ops) / span_off_s;
    j["spans_enabled_per_second"] = static_cast<double>(traced_ops) / span_on_s;
    report["telemetry"] = std::move(j);
    std::printf(
        "telemetry: counter %.0f M/s, histogram %.0f M/s, span off %.0f M/s, "
        "span on %.2f M/s (%zu events)\n",
        static_cast<double>(ops) / counter_s / 1e6,
        static_cast<double>(ops) / hist_s / 1e6,
        static_cast<double>(span_ops) / span_off_s / 1e6,
        static_cast<double>(traced_ops) / span_on_s / 1e6, collector.size());
  }

  fs::remove_all(root);
  return report;
}

}  // namespace

int main(int argc, char** argv) {
  // Keep the Monte-Carlo comparison's operators resident: one engine per
  // sample plus the reference operator must fit the cache.
  setenv("BOSON_SIM_CACHE", "24", /*overwrite=*/0);

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();

  const io::json_value report = time_solvers();
  report.write_file("BENCH_solvers.json");
  std::printf("solver timings written to BENCH_solvers.json\n");

  const io::json_value runtime_report = time_runtime();
  runtime_report.write_file("BENCH_runtime.json");
  std::printf("campaign-runtime timings written to BENCH_runtime.json\n");
  return 0;
}
