/// \file registry.h
/// String-keyed registries for the declarative experiment API: devices,
/// methods, and objectives are named as data (e.g. "bend", "boson_no_relax")
/// so serialized specs can reference any built-in or user-registered
/// scenario. Methods register as `core::method_recipe` values — the global
/// registry is pre-populated with the paper's three benchmark devices, the
/// fifteen preset recipes, and the standard objective overrides. Unknown
/// names throw `bad_argument` listing the known keys plus a did-you-mean
/// suggestion.

#pragma once

#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "core/methods.h"
#include "devices/builders.h"

namespace boson::api {

/// Factory for a named device scenario at a given grid pitch [um].
using device_factory = std::function<dev::device_spec(double resolution)>;

/// A named objective: the `objective_override` it maps to ("" keeps the
/// device's own objective) and a one-line description for `boson_cli list`.
struct objective_entry {
  std::string override_metric;
  std::string description;
};

/// Thread-safe name -> scenario tables. `global()` is the instance every
/// spec resolves against; tests may build private registries.
class registry {
 public:
  /// Process-wide registry, pre-populated with the built-in scenarios.
  static registry& global();

  /// Empty registry (no built-ins); useful for isolated tests.
  registry() = default;

  // ----------------------------------------------------------- devices ----
  /// Register (or replace) a device factory under `name`.
  void register_device(const std::string& name, device_factory factory,
                       const std::string& description);
  bool has_device(const std::string& name) const;
  /// Build the named device; throws `bad_argument` listing the known names
  /// when `name` is not registered.
  dev::device_spec make_device(const std::string& name, double resolution) const;
  std::vector<std::string> device_names() const;
  std::string device_description(const std::string& name) const;

  // ----------------------------------------------------------- methods ----
  /// Register (or replace) a method recipe under `name`. The recipe is
  /// validated against the policy tables first.
  void register_method(const std::string& name, core::method_recipe recipe);
  /// Deprecated alias: registers the preset recipe the enum id resolves to.
  void register_method(const std::string& name, core::method_id id);
  bool has_method(const std::string& name) const;
  /// Resolve a method key to its recipe; throws `bad_argument` listing the
  /// known names.
  core::method_recipe method(const std::string& name) const;
  std::vector<std::string> method_names() const;

  // -------------------------------------------------------- objectives ----
  void register_objective(const std::string& name, objective_entry entry);
  bool has_objective(const std::string& name) const;
  /// Resolve an objective key; throws `bad_argument` listing the known names.
  objective_entry objective(const std::string& name) const;
  std::vector<std::string> objective_names() const;

 private:
  struct device_entry {
    device_factory factory;
    std::string description;
  };

  mutable std::mutex mutex_;
  std::map<std::string, device_entry> devices_;
  std::map<std::string, core::method_recipe> methods_;
  std::map<std::string, objective_entry> objectives_;
};

}  // namespace boson::api
