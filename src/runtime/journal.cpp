#include "runtime/journal.h"

#include <fstream>
#include <utility>

#include "common/error.h"

namespace boson::runtime {

const char* to_string(job_state state) {
  switch (state) {
    case job_state::scheduled: return "scheduled";
    case job_state::leased: return "leased";
    case job_state::lease_renewed: return "lease_renewed";
    case job_state::lease_released: return "lease_released";
    case job_state::lease_expired: return "lease_expired";
    case job_state::running: return "running";
    case job_state::checkpointed: return "checkpointed";
    case job_state::completed: return "completed";
    case job_state::failed: return "failed";
    case job_state::cancelled: return "cancelled";
  }
  return "?";
}

job_state job_state_from_string(const std::string& text) {
  if (text == "scheduled") return job_state::scheduled;
  if (text == "leased") return job_state::leased;
  if (text == "lease_renewed") return job_state::lease_renewed;
  if (text == "lease_released") return job_state::lease_released;
  if (text == "lease_expired") return job_state::lease_expired;
  if (text == "running") return job_state::running;
  if (text == "checkpointed") return job_state::checkpointed;
  if (text == "completed") return job_state::completed;
  if (text == "failed") return job_state::failed;
  if (text == "cancelled") return job_state::cancelled;
  throw bad_argument("journal: unknown job state '" + text + "'");
}

io::json_value journal_entry::to_json() const {
  io::json_value v = io::json_value::object();
  v["job"] = job_index;
  v["name"] = job_name;
  v["state"] = to_string(state);
  v["attempt"] = attempt;
  if (!detail.empty()) v["detail"] = detail;
  if (seconds > 0.0) v["seconds"] = seconds;
  if (!worker.empty()) v["worker"] = worker;
  if (lease_id != 0) v["lease"] = static_cast<double>(lease_id);
  if (deadline != 0.0) v["deadline"] = deadline;
  if (stamp != 0.0) v["t"] = stamp;
  return v;
}

journal_entry journal_entry::from_json(const io::json_value& v) {
  journal_entry e;
  e.job_index = static_cast<std::size_t>(v.at("job").as_number());
  e.job_name = v.at("name").as_string();
  e.state = job_state_from_string(v.at("state").as_string());
  e.attempt = static_cast<std::size_t>(v.at("attempt").as_number());
  if (const io::json_value* d = v.find("detail")) e.detail = d->as_string();
  if (const io::json_value* s = v.find("seconds")) e.seconds = s->as_number();
  if (const io::json_value* w = v.find("worker")) e.worker = w->as_string();
  if (const io::json_value* l = v.find("lease"))
    e.lease_id = static_cast<std::uint64_t>(l->as_number());
  if (const io::json_value* dl = v.find("deadline")) e.deadline = dl->as_number();
  if (const io::json_value* t = v.find("t")) e.stamp = t->as_number();
  return e;
}

journal::journal(std::string path) : out_(std::move(path), "journal") {}

void journal::append(const journal_entry& entry) { out_.append(entry.to_json()); }

std::vector<journal_entry> journal::replay(const std::string& path) {
  std::vector<journal_entry> entries;
  replay_jsonl(path, "journal", [&entries](const io::json_value& record) {
    entries.push_back(journal_entry::from_json(record));
  });
  return entries;
}

std::vector<journal_entry> journal::since(const std::string& path,
                                          journal_cursor& cursor) {
  std::vector<journal_entry> entries;
  std::ifstream in(path, std::ios::binary);
  if (!in) return entries;  // no journal yet
  in.seekg(cursor.offset);

  // Mirrors replay_jsonl's deferred-failure contract, incrementally: a
  // malformed line is fatal only once a later line proves the file kept
  // going. Until then it is indistinguishable from a racing writer's append
  // observed mid-flush, so it stays *ahead* of the cursor and the next poll
  // re-reads it.
  std::string pending_error;
  std::string line;
  while (std::getline(in, line)) {
    // A line without its trailing newline is a torn tail or another
    // process's append racing our read: leave it for the next poll.
    if (in.eof()) break;
    if (!pending_error.empty()) throw io_error(pending_error);
    const std::streamoff consumed =
        cursor.offset + static_cast<std::streamoff>(line.size()) + 1;
    const std::size_t line_number = cursor.line + 1;
    if (line.find_first_not_of(" \t\r") != std::string::npos) {
      try {
        entries.push_back(journal_entry::from_json(io::json_value::parse(line)));
      } catch (const error& e) {
        pending_error = "journal: '" + path + "' line " +
                        std::to_string(line_number) + ": " + e.what();
        continue;  // cursor stays before the suspect line
      }
    }
    cursor.offset = consumed;
    cursor.line = line_number;
  }
  return entries;
}

std::map<std::size_t, journal_entry> journal::latest_states(
    const std::vector<journal_entry>& entries) {
  std::map<std::size_t, journal_entry> latest;
  for (const journal_entry& e : entries) latest[e.job_index] = e;
  return latest;
}

}  // namespace boson::runtime
