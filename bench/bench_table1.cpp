// Table I of the paper: main result across the three photonic benchmarks.
//
// For each device (crossing, bending, isolator) it runs the conventional
// density-based flow, the strongest two-stage prior art (InvFabCor-M-3) and
// BOSON-1, and reports pre-fab -> post-fab FoM plus the average improvement
// of BOSON-1 over the baselines. The whole matrix executes as declarative
// specs through the boson::api session façade — the same experiments could
// be run from a JSON batch with boson_cli. Expectation versus the paper:
// absolute numbers differ (different simulation substrate), the ordering and
// the collapse of the unconstrained baselines reproduce.

#include "api/registry.h"
#include "api/session.h"
#include "bench_common.h"

int main() {
  using namespace boson;

  const stopwatch total;

  bench::print_banner(
      "Table I: post-fabrication performance on the three benchmarks");
  {
    const core::experiment_config cfg = api::session::config_for(api::experiment_spec{});
    std::printf("(iterations=%zu, MC samples=%zu, seed=%llu, scale=%.2f)\n",
                cfg.scaled_iterations(), cfg.scaled_samples(),
                static_cast<unsigned long long>(cfg.seed), cfg.scale);
  }

  io::csv_writer csv("table1.csv", {"benchmark/model", "prefab_fom", "postfab_fom",
                                    "postfab_std", "fwd_mean", "bwd_mean"});

  const std::vector<std::string> methods{"density", "invfabcor_m_3", "boson"};

  api::session_options so;
  so.write_artifacts = false;  // the CSV/stdout rows are the artifact here
  api::session session(so);

  double improvement_sum = 0.0;
  std::size_t improvement_count = 0;

  for (const std::string device : {"crossing", "bend", "isolator"}) {
    const bool lower = api::registry::global()
                           .make_device(device, api::experiment_spec{}.resolution)
                           .objective.fom_lower_better;

    io::console_table table({"model", "fwd & bwd transmission", "avg FoM (pre -> post)"});
    std::vector<api::experiment_result> results;
    for (const std::string& method : methods) {
      api::experiment_spec spec;
      spec.name = device + "_" + method;
      spec.device = device;
      spec.method = method;
      results.push_back(session.run(spec));
    }

    for (const auto& res : results) {
      const core::method_result& r = res.method;
      const bool is_boson = r.method == "BOSON-1";
      std::string fom_cell =
          is_boson ? io::console_table::sci(r.postfab.fom_mean)
                   : bench::arrow_cell(r.prefab_fom, r.postfab.fom_mean, lower);
      std::string fwd_bwd = "N/A";
      if (r.postfab.metric_means.count("fwd_transmission"))
        fwd_bwd = bench::fwd_bwd_cell(r.postfab.metric_means);
      table.add_row({r.method, fwd_bwd, fom_cell});
      csv.write_row(device + "/" + r.method,
                    {r.prefab_fom, r.postfab.fom_mean, r.postfab.fom_std,
                     r.postfab.metric_means.count("fwd_transmission")
                         ? r.postfab.metric_means.at("fwd_transmission")
                         : r.postfab.fom_mean,
                     r.postfab.metric_means.count("bwd_transmission")
                         ? r.postfab.metric_means.at("bwd_transmission")
                         : 0.0});
    }

    const double boson_fom = results.back().method.postfab.fom_mean;
    double device_improvement = 0.0;
    for (std::size_t b = 0; b + 1 < results.size(); ++b)
      device_improvement += core::relative_improvement(
          results[b].method.postfab.fom_mean, boson_fom, lower);
    device_improvement /= static_cast<double>(results.size() - 1);
    improvement_sum += device_improvement;
    ++improvement_count;

    std::printf("\n");
    table.print("Benchmark: " + device);
    std::printf("avg improvement: %.0f%%\n", 100.0 * device_improvement);
  }

  std::printf("\ntotal avg improvement: %.1f%%   (paper reports 74.3%%)\n",
              100.0 * improvement_sum / static_cast<double>(improvement_count));
  std::printf("raw rows: table1.csv\n");
  bench::print_runtime(total);
  return 0;
}
