#include "robust/sampler.h"

#include <cmath>

#include "common/error.h"
#include "linalg/vec.h"

namespace boson::robust {

const char* to_string(sampling_strategy s) {
  switch (s) {
    case sampling_strategy::nominal_only: return "nominal-only";
    case sampling_strategy::axial_single: return "single-sided-axial";
    case sampling_strategy::axial_double: return "double-sided-axial";
    case sampling_strategy::exhaustive: return "corner-sweeping";
    case sampling_strategy::axial_plus_random: return "axial+random";
    case sampling_strategy::axial_plus_worst: return "axial+worst-case";
  }
  return "?";
}

corner_sampler::corner_sampler(sampling_strategy strategy, variation_space space)
    : strategy_(strategy), space_(space) {
  require(space.temp_max >= space.temp_min, "corner_sampler: bad temperature range");
}

namespace {

variation_corner nominal(const variation_space& space) {
  variation_corner c;
  c.xi.assign(space.eole_terms, 0.0);
  c.name = "nominal";
  return c;
}

std::vector<variation_corner> axial(const variation_space& space, bool double_sided) {
  std::vector<variation_corner> corners;
  corners.push_back(nominal(space));

  auto push = [&](variation_corner c, const std::string& name) {
    c.name = name;
    if (c.xi.empty()) c.xi.assign(space.eole_terms, 0.0);
    corners.push_back(std::move(c));
  };

  // Lithography axis.
  {
    variation_corner c = nominal(space);
    c.litho = 2;  // l_max
    push(c, "litho+");
    if (double_sided) {
      variation_corner d = nominal(space);
      d.litho = 1;  // l_min
      push(d, "litho-");
    }
  }
  // Temperature axis.
  {
    variation_corner c = nominal(space);
    c.temperature = space.temp_max;
    push(c, "temp+");
    if (double_sided) {
      variation_corner d = nominal(space);
      d.temperature = space.temp_min;
      push(d, "temp-");
    }
  }
  // Global etch-threshold axis.
  {
    variation_corner c = nominal(space);
    c.eta_shift = space.eta_delta;
    push(c, "eta+");
    if (double_sided) {
      variation_corner d = nominal(space);
      d.eta_shift = -space.eta_delta;
      push(d, "eta-");
    }
  }
  return corners;
}

std::vector<variation_corner> exhaustive_sweep(const variation_space& space) {
  std::vector<variation_corner> corners;
  const double temps[3] = {300.0, space.temp_min, space.temp_max};
  const double etas[3] = {0.0, -space.eta_delta, space.eta_delta};
  for (int l = 0; l < static_cast<int>(space.num_litho_corners); ++l) {
    for (int t = 0; t < 3; ++t) {
      for (int e = 0; e < 3; ++e) {
        variation_corner c;
        c.litho = l;
        c.temperature = temps[t];
        c.eta_shift = etas[e];
        c.xi.assign(space.eole_terms, 0.0);
        c.name = "sweep(l=" + std::to_string(l) + ",t=" + std::to_string(t) +
                 ",e=" + std::to_string(e) + ")";
        corners.push_back(std::move(c));
      }
    }
  }
  return corners;
}

}  // namespace

variation_corner random_corner(rng& r, const variation_space& space, const std::string& name) {
  variation_corner c;
  c.litho = static_cast<int>(
      r.uniform_int(0, static_cast<long>(space.num_litho_corners) - 1));
  c.temperature = r.uniform(space.temp_min, space.temp_max);
  c.eta_shift = 0.0;  // the random field already perturbs the threshold
  c.xi = r.normal_vector(space.eole_terms);
  c.name = name;
  return c;
}

variation_corner make_worst_corner(const worst_case_info& info, const variation_space& space) {
  variation_corner c;
  c.name = "worst-case";
  // Temperature: move to whichever extreme the loss gradient points at.
  c.temperature = info.d_temperature >= 0.0 ? space.temp_max : space.temp_min;
  // EOLE coefficients: one normalized ascent step (xi has unit variance, so
  // the step magnitude is expressed in standard deviations).
  c.xi.assign(space.eole_terms, 0.0);
  const std::size_t n = std::min(info.d_xi.size(), c.xi.size());
  double norm = 0.0;
  for (std::size_t m = 0; m < n; ++m) norm += info.d_xi[m] * info.d_xi[m];
  norm = std::sqrt(norm);
  if (norm > 1e-30) {
    for (std::size_t m = 0; m < n; ++m)
      c.xi[m] = space.worst_xi_scale * info.d_xi[m] / norm;
  }
  return c;
}

std::vector<variation_corner> corner_sampler::sample(
    rng& r, const std::optional<worst_case_info>& worst) const {
  switch (strategy_) {
    case sampling_strategy::nominal_only: {
      return {nominal(space_)};
    }
    case sampling_strategy::axial_single:
      return axial(space_, false);
    case sampling_strategy::axial_double:
      return axial(space_, true);
    case sampling_strategy::exhaustive:
      return exhaustive_sweep(space_);
    case sampling_strategy::axial_plus_random: {
      auto corners = axial(space_, true);
      corners.push_back(random_corner(r, space_, "random-extra"));
      return corners;
    }
    case sampling_strategy::axial_plus_worst: {
      auto corners = axial(space_, true);
      if (worst) {
        corners.push_back(make_worst_corner(*worst, space_));
      } else {
        // First iteration: no gradient info yet; duplicate nominal so the
        // simulation budget matches later iterations.
        corners.push_back(nominal(space_));
        corners.back().name = "worst-case(warmup)";
      }
      return corners;
    }
  }
  throw bad_argument("corner_sampler: unknown strategy");
}

std::size_t corner_sampler::corners_per_iteration() const {
  switch (strategy_) {
    case sampling_strategy::nominal_only: return 1;
    case sampling_strategy::axial_single: return 4;
    case sampling_strategy::axial_double: return 7;
    case sampling_strategy::exhaustive: return 9 * space_.num_litho_corners;
    case sampling_strategy::axial_plus_random: return 8;
    case sampling_strategy::axial_plus_worst: return 8;
  }
  return 0;
}

}  // namespace boson::robust
