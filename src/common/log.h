#pragma once

#include <sstream>
#include <string>

namespace boson {

/// Severity levels; messages below the active level are suppressed.
enum class log_level { debug = 0, info = 1, warn = 2, err = 3, off = 4 };

/// Set the process-wide log level. Defaults to the BOSON_LOG environment
/// variable ("debug", "info", "warn", "error", "off"), falling back to warn
/// so library consumers see problems but not progress chatter.
void set_log_level(log_level level);
log_level current_log_level();

/// Emit a single timestamped line to stderr if `level` is enabled.
void log_line(log_level level, const std::string& message);

namespace detail {
template <class... Args>
std::string concat(Args&&... args) {
  std::ostringstream os;
  (os << ... << args);
  return os.str();
}
}  // namespace detail

template <class... Args>
void log_debug(Args&&... args) {
  if (current_log_level() <= log_level::debug)
    log_line(log_level::debug, detail::concat(std::forward<Args>(args)...));
}

template <class... Args>
void log_info(Args&&... args) {
  if (current_log_level() <= log_level::info)
    log_line(log_level::info, detail::concat(std::forward<Args>(args)...));
}

template <class... Args>
void log_warn(Args&&... args) {
  if (current_log_level() <= log_level::warn)
    log_line(log_level::warn, detail::concat(std::forward<Args>(args)...));
}

template <class... Args>
void log_error(Args&&... args) {
  if (current_log_level() <= log_level::err)
    log_line(log_level::err, detail::concat(std::forward<Args>(args)...));
}

}  // namespace boson
