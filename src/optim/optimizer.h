#pragma once

#include <cstddef>
#include <memory>

#include "common/types.h"

namespace boson::opt {

/// First-order optimizer interface. The convention throughout the library is
/// *minimization*: objectives are losses and `step` moves against the
/// gradient.
class optimizer {
 public:
  virtual ~optimizer() = default;

  /// One update of `params` given dLoss/dparams.
  virtual void step(dvec& params, const dvec& grad) = 0;

  /// Clear optimizer state (moments, iteration counter).
  virtual void reset() = 0;
};

/// Snapshot of an Adam optimizer's mutable state (first/second moments and
/// the bias-correction step counter), exposed so checkpointed optimization
/// runs can resume with bit-identical update steps.
struct adam_state {
  dvec m;
  dvec v;
  std::size_t t = 0;
};

/// Adam (Kingma & Ba) — the default optimizer for inverse design here, as
/// its per-parameter scaling tolerates the widely varying gradient magnitudes
/// that adjoint fields produce across the design region.
class adam : public optimizer {
 public:
  explicit adam(double learning_rate = 0.02, double beta1 = 0.9, double beta2 = 0.999,
                double epsilon = 1e-8);

  void step(dvec& params, const dvec& grad) override;
  void reset() override;

  /// Copy out / restore the moment vectors and step counter. Restoring a
  /// state captured after step t continues the update sequence exactly as if
  /// the optimizer had never been destroyed.
  adam_state state() const;
  void restore(adam_state state);

  double learning_rate() const { return lr_; }
  void set_learning_rate(double lr) { lr_ = lr; }

 private:
  double lr_;
  double beta1_;
  double beta2_;
  double eps_;
  dvec m_;
  dvec v_;
  std::size_t t_ = 0;
};

/// Plain SGD with momentum, kept as a baseline optimizer.
class sgd_momentum : public optimizer {
 public:
  explicit sgd_momentum(double learning_rate = 0.1, double momentum = 0.9);

  void step(dvec& params, const dvec& grad) override;
  void reset() override;

 private:
  double lr_;
  double momentum_;
  dvec velocity_;
};

}  // namespace boson::opt
