#include "runtime/lease.h"

#include <chrono>
#include <utility>

#include "common/error.h"

namespace boson::runtime {

double wall_clock_seconds() {
  return std::chrono::duration<double>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

// ------------------------------------------------------------ lease_table --

void lease_table::apply(const journal_entry& e) {
  lease_view& v = jobs_[e.job_index];
  v.attempts = std::max(v.attempts, e.attempt);

  if (v.state == lease_view::phase::done) return;  // terminal: ignore stragglers

  const bool owner_matches = v.state == lease_view::phase::leased &&
                             v.worker == e.worker && v.lease_id == e.lease_id;
  const auto to_pending = [&v] {
    v.state = lease_view::phase::pending;
    v.worker.clear();
    v.lease_id = 0;
    v.deadline = 0.0;
  };
  switch (e.state) {
    case job_state::completed:
      to_pending();
      v.state = lease_view::phase::done;
      break;
    case job_state::leased:
      // A claim wins only from pending; claims over a live lease lose (the
      // claimant sees that on its verify pass). Takeover of an expired lease
      // goes through an explicit lease_expired record first.
      if (v.state == lease_view::phase::pending) {
        v.state = lease_view::phase::leased;
        v.worker = e.worker;
        v.lease_id = e.lease_id;
        v.deadline = e.deadline;
      }
      break;
    case job_state::lease_renewed:
      if (owner_matches) v.deadline = e.deadline;
      break;
    case job_state::lease_released:
      if (owner_matches) to_pending();
      break;
    case job_state::lease_expired:
      // Frees the job only when the record names the live lease and proves
      // the deadline passed at the writer's clock — a premature expiry
      // record (buggy clock, stale snapshot) is void.
      if (owner_matches && e.stamp >= v.deadline) to_pending();
      break;
    case job_state::failed:
    case job_state::cancelled:
      // The attempt is over: its lease is released. Legacy records carry no
      // worker (the pre-lease flow), so they release whatever is live.
      if (owner_matches || e.worker.empty()) to_pending();
      break;
    case job_state::scheduled:
    case job_state::running:
    case job_state::checkpointed:
      break;  // informational
  }
}

lease_table lease_table::resolve(const std::vector<journal_entry>& entries) {
  lease_table table;
  for (const journal_entry& e : entries) table.apply(e);
  return table;
}

lease_view lease_table::view(std::size_t job) const {
  const auto it = jobs_.find(job);
  return it != jobs_.end() ? it->second : lease_view{};
}

// ---------------------------------------------------------- lease_manager --

lease_manager::lease_manager(journal& log, std::string worker_id, double ttl,
                             clock_fn clock)
    : log_(log), worker_(std::move(worker_id)), ttl_(ttl),
      clock_(clock ? std::move(clock) : clock_fn(&wall_clock_seconds)) {
  require(!worker_.empty(), "lease_manager: worker id must not be empty");
  require(ttl_ > 0.0, "lease_manager: lease TTL must be positive");
}

void lease_manager::refresh_locked() {
  for (const journal_entry& e : journal::since(log_.path(), cursor_))
    table_.apply(e);
}

void lease_manager::refresh() {
  const std::lock_guard<std::mutex> lock(mutex_);
  refresh_locked();
}

lease_table lease_manager::snapshot() {
  const std::lock_guard<std::mutex> lock(mutex_);
  refresh_locked();
  return table_;
}

std::optional<job_lease> lease_manager::claim(std::size_t job,
                                              const std::string& job_name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  refresh_locked();

  const double now = clock_();
  const lease_view v = table_.view(job);
  if (v.state == lease_view::phase::done) return std::nullopt;

  job_lease lease;
  if (v.state == lease_view::phase::leased) {
    if (v.deadline > now) return std::nullopt;  // live: not ours to take
    // Expired: append the explicit takeover prologue. Resolution ignores it
    // unless the stamp proves expiry against the *current* deadline, so a
    // racing renewal that lands first simply voids our steal.
    journal_entry expire;
    expire.job_index = job;
    expire.job_name = job_name;
    expire.state = job_state::lease_expired;
    expire.attempt = v.attempts;
    expire.worker = v.worker;
    expire.lease_id = v.lease_id;
    expire.deadline = v.deadline;
    expire.stamp = now;
    expire.detail = "taken over by " + worker_;
    log_.append(expire);
    lease.stolen = true;
    lease.stolen_from = v.worker;
  }

  journal_entry claim;
  claim.job_index = job;
  claim.job_name = job_name;
  claim.state = job_state::leased;
  claim.attempt = v.attempts + 1;
  claim.worker = worker_;
  claim.lease_id = ++next_lease_id_;
  claim.deadline = now + ttl_;
  claim.stamp = now;
  log_.append(claim);

  // Verify: fold everything up to (at least) our own claim and check that it
  // won. Another worker's claim landing first makes ours a losing record
  // that resolution ignored.
  refresh_locked();
  const lease_view after = table_.view(job);
  if (after.state != lease_view::phase::leased || after.worker != worker_ ||
      after.lease_id != claim.lease_id)
    return std::nullopt;

  lease.job_index = job;
  lease.job_name = job_name;
  lease.lease_id = claim.lease_id;
  lease.deadline = after.deadline;
  lease.attempt = after.attempts;  // the claim record's attempt number
  return lease;
}

bool lease_manager::renew(job_lease& lease) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const double now = clock_();
  journal_entry renew;
  renew.job_index = lease.job_index;
  renew.job_name = lease.job_name;
  renew.state = job_state::lease_renewed;
  renew.attempt = lease.attempt;
  renew.worker = worker_;
  renew.lease_id = lease.lease_id;
  renew.deadline = now + ttl_;
  renew.stamp = now;
  log_.append(renew);

  refresh_locked();
  const lease_view v = table_.view(lease.job_index);
  if (v.state != lease_view::phase::leased || v.worker != worker_ ||
      v.lease_id != lease.lease_id)
    return false;
  lease.deadline = v.deadline;
  return true;
}

void lease_manager::release(const job_lease& lease) {
  const std::lock_guard<std::mutex> lock(mutex_);
  journal_entry e;
  e.job_index = lease.job_index;
  e.job_name = lease.job_name;
  e.state = job_state::lease_released;
  e.attempt = lease.attempt;
  e.worker = worker_;
  e.lease_id = lease.lease_id;
  e.stamp = clock_();
  log_.append(e);
}

bool lease_manager::still_owner(const job_lease& lease) {
  const std::lock_guard<std::mutex> lock(mutex_);
  refresh_locked();
  const lease_view v = table_.view(lease.job_index);
  return v.state == lease_view::phase::leased && v.worker == worker_ &&
         v.lease_id == lease.lease_id;
}

}  // namespace boson::runtime
