#pragma once

#include <cstddef>
#include <vector>

#include "common/array2d.h"
#include "common/types.h"

namespace boson::fab {

/// Settings for the EOLE (expansion optimal linear estimation) random-field
/// model of the spatially varying etch threshold (Schevenels et al. 2011,
/// the paper's ref [15]).
struct eole_settings {
  double corr_length = 0.4;    ///< Gaussian covariance correlation length [um]
  double sigma = 0.03;         ///< pointwise standard deviation of eta
  std::size_t anchors_x = 6;   ///< anchor-point grid across the design region
  std::size_t anchors_y = 6;
  std::size_t num_terms = 8;   ///< retained expansion terms
  double eta0 = 0.5;           ///< nominal etch threshold
};

/// Spatially correlated random field eta(x) = eta0 + global_shift
/// + sum_m xi_m B_m(x), where the basis fields B_m come from the
/// eigendecomposition of the anchor-point covariance:
/// B_m(x) = phi_m^T c(x) / sqrt(lambda_m), c_i(x) = Cov(x, anchor_i).
/// xi ~ N(0, I) reproduces the target covariance in the EOLE sense.
class eole_field {
 public:
  eole_field(std::size_t nx, std::size_t ny, double dx, double dy,
             const eole_settings& settings);

  std::size_t nx() const { return nx_; }
  std::size_t ny() const { return ny_; }
  std::size_t num_terms() const { return basis_.size(); }
  double eta0() const { return settings_.eta0; }
  const eole_settings& settings() const { return settings_; }

  /// Threshold map for expansion coefficients xi (size num_terms) and an
  /// optional uniform shift (the "global eta" axial corner).
  array2d<double> field(const dvec& xi, double global_shift = 0.0) const;

  const array2d<double>& basis(std::size_t m) const;

  /// Project a per-cell gradient d L / d eta onto the coefficients:
  /// (dL/dxi)_m = sum_cells dL/deta(c) B_m(c). Drives worst-case ascent.
  dvec project_gradient(const array2d<double>& d_eta) const;

 private:
  std::size_t nx_;
  std::size_t ny_;
  eole_settings settings_;
  std::vector<array2d<double>> basis_;
};

}  // namespace boson::fab
