#pragma once

#include <algorithm>
#include <cstddef>
#include <numeric>
#include <vector>

#include "common/error.h"
#include "common/types.h"

namespace boson::sp {

/// Coordinate-format triplet used while assembling operators.
template <class T>
struct triplet {
  std::size_t row;
  std::size_t col;
  T value;
};

/// Compressed-sparse-row matrix. Built once from triplets (duplicates are
/// summed), then used for matvecs, ILU(0) and iterative solves.
template <class T>
class csr_matrix {
 public:
  csr_matrix() = default;

  csr_matrix(std::size_t rows, std::size_t cols, std::vector<triplet<T>> entries)
      : rows_(rows), cols_(cols) {
    for (const auto& t : entries)
      require(t.row < rows && t.col < cols, "csr_matrix: entry out of range");
    std::sort(entries.begin(), entries.end(), [](const triplet<T>& a, const triplet<T>& b) {
      return a.row != b.row ? a.row < b.row : a.col < b.col;
    });
    row_ptr_.assign(rows + 1, 0);
    col_.reserve(entries.size());
    val_.reserve(entries.size());
    for (std::size_t k = 0; k < entries.size();) {
      std::size_t j = k;
      T acc{};
      while (j < entries.size() && entries[j].row == entries[k].row &&
             entries[j].col == entries[k].col) {
        acc += entries[j].value;
        ++j;
      }
      col_.push_back(entries[k].col);
      val_.push_back(acc);
      ++row_ptr_[entries[k].row + 1];
      k = j;
    }
    std::partial_sum(row_ptr_.begin(), row_ptr_.end(), row_ptr_.begin());
  }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t nnz() const { return val_.size(); }

  const std::vector<std::size_t>& row_ptr() const { return row_ptr_; }
  const std::vector<std::size_t>& col_index() const { return col_; }
  const std::vector<T>& values() const { return val_; }
  std::vector<T>& values() { return val_; }

  /// y = A x
  std::vector<T> matvec(const std::vector<T>& x) const {
    require(x.size() == cols_, "csr_matrix::matvec: size mismatch");
    std::vector<T> y(rows_, T{});
    for (std::size_t i = 0; i < rows_; ++i) {
      T acc{};
      for (std::size_t k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k)
        acc += val_[k] * x[col_[k]];
      y[i] = acc;
    }
    return y;
  }

  /// y = Aᵀ x (unconjugated transpose).
  std::vector<T> matvec_transpose(const std::vector<T>& x) const {
    require(x.size() == rows_, "csr_matrix::matvec_transpose: size mismatch");
    std::vector<T> y(cols_, T{});
    for (std::size_t i = 0; i < rows_; ++i)
      for (std::size_t k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k)
        y[col_[k]] += val_[k] * x[i];
    return y;
  }

  /// Entry lookup (binary search within the row); zero when absent.
  T at(std::size_t i, std::size_t j) const {
    require(i < rows_ && j < cols_, "csr_matrix::at: index out of range");
    const auto begin = col_.begin() + static_cast<std::ptrdiff_t>(row_ptr_[i]);
    const auto end = col_.begin() + static_cast<std::ptrdiff_t>(row_ptr_[i + 1]);
    const auto it = std::lower_bound(begin, end, j);
    if (it != end && *it == j) return val_[static_cast<std::size_t>(it - col_.begin())];
    return T{};
  }

  /// Maximum |A(i,j) - A(j,i)| — used to verify the FDFD operator is
  /// complex symmetric (which lets the adjoint reuse the factorization).
  double asymmetry() const {
    double worst = 0.0;
    for (std::size_t i = 0; i < rows_; ++i)
      for (std::size_t k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k)
        worst = std::max(worst, std::abs(val_[k] - at(col_[k], i)));
    return worst;
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<std::size_t> row_ptr_;
  std::vector<std::size_t> col_;
  std::vector<T> val_;
};

using csr_c = csr_matrix<cplx>;
using csr_d = csr_matrix<double>;

}  // namespace boson::sp
