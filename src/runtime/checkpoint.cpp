#include "runtime/checkpoint.h"

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <utility>

#include "common/error.h"
#include "io/json.h"
#include "io/pgm.h"

namespace boson::runtime {

namespace {

constexpr char kHexDigits[] = "0123456789abcdef";

std::uint64_t bits_of(double value) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(value), "IEEE-754 binary64 expected");
  std::memcpy(&bits, &value, sizeof(bits));
  return bits;
}

double double_of(std::uint64_t bits) {
  double value = 0.0;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

}  // namespace

std::string encode_double(double value) {
  const std::uint64_t bits = bits_of(value);
  std::string out(16, '0');
  for (int i = 0; i < 16; ++i)
    out[static_cast<std::size_t>(i)] = kHexDigits[(bits >> (60 - 4 * i)) & 0xF];
  return out;
}

double decode_double(const std::string& hex) {
  require(hex.size() == 16, "checkpoint: hex double must be 16 characters, got '" +
                                hex + "'");
  std::uint64_t bits = 0;
  for (const char c : hex) {
    bits <<= 4;
    if (c >= '0' && c <= '9') bits |= static_cast<std::uint64_t>(c - '0');
    else if (c >= 'a' && c <= 'f') bits |= static_cast<std::uint64_t>(c - 'a' + 10);
    else if (c >= 'A' && c <= 'F') bits |= static_cast<std::uint64_t>(c - 'A' + 10);
    else throw bad_argument("checkpoint: invalid hex double '" + hex + "'");
  }
  return double_of(bits);
}

std::string encode_dvec(const dvec& values) {
  std::string out;
  out.reserve(values.size() * 17);
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out.push_back(' ');
    out += encode_double(values[i]);
  }
  return out;
}

dvec decode_dvec(const std::string& text) {
  dvec out;
  out.reserve(text.size() / 17 + 1);
  std::size_t pos = 0;
  while (pos < text.size()) {
    const std::size_t space = text.find(' ', pos);
    const std::size_t end = space == std::string::npos ? text.size() : space;
    out.push_back(decode_double(text.substr(pos, end - pos)));
    pos = end + 1;
  }
  return out;
}

std::string checkpoint_path(const std::string& dir) {
  return (std::filesystem::path(dir) / "checkpoint.json").string();
}

void save_checkpoint(const std::string& dir, const std::string& job,
                     const core::run_checkpoint& state) {
  namespace fs = std::filesystem;
  fs::create_directories(dir);

  io::json_value v = io::json_value::object();
  v["job"] = job;
  v["next_iteration"] = state.next_iteration;
  v["total_iterations"] = state.total_iterations;
  v["theta"] = encode_dvec(state.theta);

  io::json_value& adam = v["adam"] = io::json_value::object();
  adam["m"] = encode_dvec(state.optimizer.m);
  adam["v"] = encode_dvec(state.optimizer.v);
  adam["t"] = state.optimizer.t;

  v["rng"] = state.rng_state;

  if (state.has_worst) {
    io::json_value& worst = v["worst"] = io::json_value::object();
    worst["d_xi"] = encode_dvec(state.worst.d_xi);
    worst["d_temperature"] = encode_double(state.worst.d_temperature);
  }

  v["final_loss"] = encode_double(state.final_loss);

  io::json_value& traj = v["trajectory"] = io::json_value::array();
  for (const core::iteration_record& rec : state.trajectory) {
    io::json_value r = io::json_value::object();
    r["iteration"] = rec.iteration;
    r["loss"] = encode_double(rec.loss);
    io::json_value& metrics = r["metrics"] = io::json_value::object();
    for (const auto& [key, value] : rec.metrics) metrics[key] = encode_double(value);
    traj.push_back(std::move(r));
  }

  // Write-then-rename: the previous snapshot stays intact if this one dies
  // mid-write, so resume always finds a complete checkpoint.
  const fs::path final_path = fs::path(dir) / "checkpoint.json";
  const fs::path tmp_path = fs::path(dir) / "checkpoint.json.tmp";
  v.write_file(tmp_path.string(), -1);
  fs::rename(tmp_path, final_path);

  if (state.design_rho.size() > 0)
    io::write_pgm((fs::path(dir) / "checkpoint.pgm").string(), state.design_rho);
}

checkpoint_file load_checkpoint(const std::string& path) {
  const io::json_value v = io::json_value::parse_file(path);
  checkpoint_file out;
  out.job = v.at("job").as_string();
  core::run_checkpoint& ck = out.state;
  ck.next_iteration = static_cast<std::size_t>(v.at("next_iteration").as_number());
  ck.total_iterations = static_cast<std::size_t>(v.at("total_iterations").as_number());
  ck.theta = decode_dvec(v.at("theta").as_string());
  ck.optimizer.m = decode_dvec(v.at("adam").at("m").as_string());
  ck.optimizer.v = decode_dvec(v.at("adam").at("v").as_string());
  ck.optimizer.t = static_cast<std::size_t>(v.at("adam").at("t").as_number());
  ck.rng_state = v.at("rng").as_string();
  if (const io::json_value* worst = v.find("worst")) {
    ck.has_worst = true;
    ck.worst.d_xi = decode_dvec(worst->at("d_xi").as_string());
    ck.worst.d_temperature = decode_double(worst->at("d_temperature").as_string());
  }
  ck.final_loss = decode_double(v.at("final_loss").as_string());
  for (const io::json_value& r : v.at("trajectory").elements()) {
    core::iteration_record rec;
    rec.iteration = static_cast<std::size_t>(r.at("iteration").as_number());
    rec.loss = decode_double(r.at("loss").as_string());
    for (const auto& [key, value] : r.at("metrics").members())
      rec.metrics[key] = decode_double(value.as_string());
    ck.trajectory.push_back(std::move(rec));
  }
  return out;
}

}  // namespace boson::runtime
