// bench_compare — regression gate over the committed benchmark baselines.
// Compares a freshly produced BENCH_*.json report against a baseline
// (bench/baselines/), walking every numeric leaf:
//
//   bench_compare <baseline.json> <current.json>
//                 [--threshold <frac>] [--only <path-prefix>]...
//
// Keys ending in `_per_s` / `_per_second` / `speedup*` are higher-is-better;
// keys ending in `_s` / `_seconds` / `_ms` are lower-is-better; counters
// (everything else) are reported but never gated. Exit 1 when any gated
// metric regressed by more than the threshold (default 0.50 — generous,
// because shared CI runners are noisy).
//
// `--only <prefix>` (repeatable) narrows the *gate* to dotted metric paths
// starting with a given prefix ("scheduler_throughput", "journal_cursor",
// "http.status_requests_per_second"); everything else is still printed, but
// demoted to informational. CI gates the stable micro-benchmarks this way
// while the noisier end-to-end timings stay advisory.

#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "io/json.h"

namespace {

using boson::io::json_value;

bool ends_with(const std::string& text, const char* suffix) {
  const std::size_t n = std::strlen(suffix);
  return text.size() >= n && text.compare(text.size() - n, n, suffix) == 0;
}

enum class direction { higher_better, lower_better, informational };

direction classify(const std::string& key) {
  if (ends_with(key, "_per_s") || ends_with(key, "_per_second") ||
      key.rfind("speedup", 0) == 0)
    return direction::higher_better;
  if (ends_with(key, "_s") || ends_with(key, "_seconds") || ends_with(key, "_ms"))
    return direction::lower_better;
  return direction::informational;
}

struct outcome {
  std::size_t compared = 0;
  std::size_t regressed = 0;
};

/// True when `path` is gated: no --only prefixes means everything is, else
/// the dotted path must start with one of them.
bool gated(const std::string& path, const std::vector<std::string>& only) {
  if (only.empty()) return true;
  for (const std::string& prefix : only)
    if (path.compare(0, prefix.size(), prefix) == 0) return true;
  return false;
}

void compare(const json_value& baseline, const json_value& current,
             const std::string& path, double threshold,
             const std::vector<std::string>& only, outcome& result) {
  if (baseline.is_object()) {
    if (!current.is_object()) {
      std::printf("  ? %-46s missing in the current report\n", path.c_str());
      return;
    }
    for (const auto& [key, value] : baseline.members()) {
      const json_value* cur = current.find(key);
      const std::string child = path.empty() ? key : path + "." + key;
      if (cur == nullptr) {
        std::printf("  ? %-46s missing in the current report\n", child.c_str());
        continue;
      }
      compare(value, *cur, child, threshold, only, result);
    }
    return;
  }
  if (!baseline.is_number() || !current.is_number()) return;

  const double base = baseline.as_number();
  const double now = current.as_number();
  const std::string leaf = path.substr(path.rfind('.') + 1);
  direction dir = classify(leaf);
  if (dir != direction::informational && !gated(path, only))
    dir = direction::informational;
  if (dir == direction::informational) {
    // Counters (cache hits, reuse/fallback tallies, sample counts) are shown
    // so a perf shift can be read against its cause, but never gated.
    std::printf("  · %-46s base %12.4g  now %12.4g  (counter)\n", path.c_str(), base,
                now);
    return;
  }
  if (base == 0.0 || !std::isfinite(base) || !std::isfinite(now)) return;

  ++result.compared;
  // ratio > 1 means "worse" in both directions.
  const double ratio = dir == direction::lower_better ? now / base : base / now;
  const bool regressed = ratio > 1.0 + threshold;
  if (regressed) ++result.regressed;
  std::printf("  %s %-46s base %12.4g  now %12.4g  (%.2fx %s)\n",
              regressed ? "!" : " ", path.c_str(), base, now, ratio,
              dir == direction::lower_better ? "slower" : "of baseline throughput");
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  double threshold = 0.50;
  std::vector<std::string> only;
  std::vector<std::string> files;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--threshold") {
      if (i + 1 >= args.size()) {
        std::fprintf(stderr, "bench_compare: --threshold needs a value\n");
        return 2;
      }
      threshold = std::stod(args[++i]);
    } else if (args[i] == "--only") {
      if (i + 1 >= args.size()) {
        std::fprintf(stderr, "bench_compare: --only needs a path prefix\n");
        return 2;
      }
      only.push_back(args[++i]);
    } else {
      files.push_back(args[i]);
    }
  }
  if (files.size() != 2) {
    std::fprintf(stderr,
                 "usage: bench_compare <baseline.json> <current.json> "
                 "[--threshold <frac>] [--only <path-prefix>]...\n");
    return 2;
  }

  try {
    const json_value baseline = json_value::parse_file(files[0]);
    const json_value current = json_value::parse_file(files[1]);
    std::printf("bench_compare: %s vs %s (threshold %.0f%%)\n", files[0].c_str(),
                files[1].c_str(), 100.0 * threshold);
    outcome result;
    compare(baseline, current, "", threshold, only, result);
    std::printf("%zu metrics compared, %zu regressed\n", result.compared,
                result.regressed);
    return result.regressed == 0 ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_compare: %s\n", e.what());
    return 2;
  }
}
