#include "io/csv.h"

#include <cmath>
#include <sstream>

#include "common/error.h"

namespace boson::io {

namespace {

std::string escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string quoted = "\"";
  for (const char c : cell) {
    if (c == '"') quoted += "\"\"";
    else quoted += c;
  }
  quoted += '"';
  return quoted;
}

}  // namespace

csv_writer::csv_writer(const std::string& path, const std::vector<std::string>& header)
    : path_(path), out_(path), columns_(header.size()) {
  if (!out_) throw io_error("csv_writer: cannot open " + path);
  write_row(header);
}

csv_writer::~csv_writer() = default;

void csv_writer::write_row(const std::vector<std::string>& cells) {
  require(cells.size() == columns_ || columns_ == 0, "csv_writer: column count mismatch");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ',';
    out_ << escape(cells[i]);
  }
  out_ << '\n';
  out_.flush();
}

void csv_writer::write_row(const std::string& label, const std::vector<double>& values) {
  std::vector<std::string> cells;
  cells.reserve(values.size() + 1);
  cells.push_back(label);
  for (const double v : values) cells.push_back(format(v));
  write_row(cells);
}

std::string csv_writer::format(double value) {
  std::ostringstream os;
  if (std::isfinite(value)) {
    os.precision(10);
    os << value;
  } else {
    os << "nan";
  }
  return os.str();
}

}  // namespace boson::io
