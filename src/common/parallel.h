#pragma once

#include <cstddef>
#include <functional>

namespace boson {

/// Number of worker threads used by `parallel_for`: min(hardware threads,
/// BOSON_THREADS when set). Always at least 1.
std::size_t worker_count();

/// Run `body(i)` for i in [0, n). Iterations must be independent; the call
/// blocks until all complete. Exceptions thrown by `body` are captured and
/// the first one is rethrown on the calling thread.
///
/// Work is distributed statically; this targets a small number of
/// coarse-grained tasks (variation-corner simulations), not fine-grained
/// loops.
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body);

}  // namespace boson
