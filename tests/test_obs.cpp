#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "common/error.h"
#include "common/log.h"
#include "io/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace boson {
namespace {

// -------------------------------------------------------------- counters ----

TEST(obs_counter, increments_and_resets) {
  obs::counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(obs_counter, concurrent_increments_are_exact) {
  obs::registry reg;
  obs::counter& c = reg.get_counter("test.hammer");
  constexpr std::size_t threads = 8;
  constexpr std::size_t per_thread = 20000;
  std::vector<std::thread> pool;
  for (std::size_t t = 0; t < threads; ++t)
    pool.emplace_back([&c] {
      for (std::size_t i = 0; i < per_thread; ++i) c.inc();
    });
  for (std::thread& t : pool) t.join();
  EXPECT_EQ(c.value(), threads * per_thread);
}

TEST(obs_gauge, set_and_add) {
  obs::gauge g;
  g.set(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
  g.add(-1.0);
  EXPECT_DOUBLE_EQ(g.value(), 1.5);
  g.reset();
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

// ------------------------------------------------------------- histogram ----

TEST(obs_histogram, buckets_values_cumulatively) {
  obs::histogram h({0.1, 1.0, 10.0});
  h.observe(0.05);   // <= 0.1
  h.observe(0.1);    // <= 0.1 (inclusive upper edge)
  h.observe(0.5);    // <= 1.0
  h.observe(100.0);  // +Inf
  const obs::histogram::snapshot_t s = h.snapshot();
  ASSERT_EQ(s.counts.size(), 4u);
  EXPECT_EQ(s.counts[0], 2u);
  EXPECT_EQ(s.counts[1], 1u);
  EXPECT_EQ(s.counts[2], 0u);
  EXPECT_EQ(s.counts[3], 1u);
  EXPECT_EQ(s.count, 4u);
  EXPECT_NEAR(s.sum, 100.65, 1e-9);
}

TEST(obs_histogram, rejects_bad_bounds) {
  EXPECT_THROW(obs::histogram({}), bad_argument);
  EXPECT_THROW(obs::histogram({1.0, 1.0}), bad_argument);
  EXPECT_THROW(obs::histogram({2.0, 1.0}), bad_argument);
}

TEST(obs_histogram, concurrent_observations_have_exact_totals) {
  obs::registry reg;
  obs::histogram& h = reg.get_histogram("test.lat", {}, {0.5});
  constexpr std::size_t threads = 8;
  constexpr std::size_t per_thread = 10000;
  std::vector<std::thread> pool;
  for (std::size_t t = 0; t < threads; ++t)
    pool.emplace_back([&h, t] {
      // Half the threads land below the bound, half above.
      const double v = t % 2 == 0 ? 0.25 : 1.0;
      for (std::size_t i = 0; i < per_thread; ++i) h.observe(v);
    });
  for (std::thread& t : pool) t.join();
  const obs::histogram::snapshot_t s = h.snapshot();
  EXPECT_EQ(s.count, threads * per_thread);
  EXPECT_EQ(s.counts[0], threads / 2 * per_thread);
  EXPECT_EQ(s.counts[1], threads / 2 * per_thread);
  EXPECT_NEAR(s.sum, (0.25 + 1.0) * (threads / 2 * per_thread), 1e-6);
}

// -------------------------------------------------------------- registry ----

TEST(obs_registry, series_are_stable_and_kind_checked) {
  obs::registry reg;
  obs::counter& a = reg.get_counter("x.count");
  obs::counter& b = reg.get_counter("x.count");
  EXPECT_EQ(&a, &b);  // same series, stable reference
  EXPECT_THROW(reg.get_gauge("x.count"), bad_argument);
  EXPECT_THROW(reg.get_histogram("x.count"), bad_argument);
}

TEST(obs_registry, counter_total_sums_label_sets) {
  obs::registry reg;
  reg.get_counter("req", {{"class", "2xx"}}).inc(3);
  reg.get_counter("req", {{"class", "4xx"}}).inc(2);
  EXPECT_EQ(reg.counter_total("req"), 5u);
  EXPECT_EQ(reg.counter_total("absent"), 0u);
}

TEST(obs_registry, reset_zeroes_but_keeps_series) {
  obs::registry reg;
  obs::counter& c = reg.get_counter("z");
  c.inc(7);
  reg.reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(&reg.get_counter("z"), &c);
}

TEST(obs_registry, prometheus_golden_output) {
  obs::registry reg;
  reg.get_counter("http.requests_total", {{"endpoint", "healthz"}, {"class", "2xx"}})
      .inc(3);
  reg.get_gauge("queue.depth").set(4.0);
  obs::histogram& h = reg.get_histogram("req.seconds", {}, {0.1, 1.0});
  h.observe(0.05);
  h.observe(0.5);
  h.observe(2.0);

  const std::string expected =
      "# TYPE boson_http_requests_total counter\n"
      "boson_http_requests_total{endpoint=\"healthz\",class=\"2xx\"} 3\n"
      "# TYPE boson_queue_depth gauge\n"
      "boson_queue_depth 4\n"
      "# TYPE boson_req_seconds histogram\n"
      "boson_req_seconds_bucket{le=\"0.1\"} 1\n"
      "boson_req_seconds_bucket{le=\"1\"} 2\n"
      "boson_req_seconds_bucket{le=\"+Inf\"} 3\n"
      "boson_req_seconds_sum 2.55\n"
      "boson_req_seconds_count 3\n";
  EXPECT_EQ(reg.to_prometheus(), expected);
}

TEST(obs_registry, prometheus_escapes_label_values) {
  obs::registry reg;
  reg.get_counter("esc", {{"k", "a\"b\\c\nd"}}).inc();
  EXPECT_EQ(reg.to_prometheus(),
            "# TYPE boson_esc counter\n"
            "boson_esc{k=\"a\\\"b\\\\c\\nd\"} 1\n");
}

TEST(obs_registry, digest_lists_nonzero_series) {
  obs::registry reg;
  EXPECT_EQ(reg.digest(), "(no recorded metrics)");
  reg.get_counter("a").inc(2);
  reg.get_counter("b");  // zero: omitted
  reg.get_gauge("g").set(1.5);
  EXPECT_EQ(reg.digest(), "a=2 g=1.5");
}

TEST(obs_registry, global_is_a_singleton) {
  EXPECT_EQ(&obs::registry::global(), &obs::registry::global());
}

// ----------------------------------------------------------------- spans ----

TEST(obs_span, inactive_without_a_sink) {
  ASSERT_EQ(obs::global_trace(), nullptr);
  EXPECT_FALSE(obs::tracing_active());
  obs::span sp("noop");
  EXPECT_FALSE(sp.active());
}

TEST(obs_span, records_parent_linkage_and_durations) {
  obs::trace_collector collector;
  {
    const obs::scoped_trace_sink sink(&collector);
    EXPECT_TRUE(obs::tracing_active());
    obs::span outer("outer", "test");
    { obs::span inner("inner", "test"); }
    { obs::span sibling("sibling", "test"); }
  }
  EXPECT_FALSE(obs::tracing_active());

  const std::vector<obs::trace_event> events = collector.events();
  ASSERT_EQ(events.size(), 3u);  // completion order: inner, sibling, outer
  const obs::trace_event& inner = events[0];
  const obs::trace_event& sibling = events[1];
  const obs::trace_event& outer = events[2];
  EXPECT_EQ(inner.name, "inner");
  EXPECT_EQ(outer.name, "outer");
  EXPECT_EQ(outer.parent, 0u);
  EXPECT_EQ(inner.parent, outer.id);
  EXPECT_EQ(sibling.parent, outer.id);
  EXPECT_GE(inner.start_us, outer.start_us);
  EXPECT_GE(outer.duration_us, inner.duration_us);
}

TEST(obs_span, scoped_sink_overrides_global_and_restores) {
  obs::trace_collector global_buf;
  obs::trace_collector local_buf;
  obs::set_global_trace(&global_buf);
  {
    const obs::scoped_trace_sink sink(&local_buf);
    obs::span sp("goes-local");
  }
  { obs::span sp("goes-global"); }
  obs::set_global_trace(nullptr);

  ASSERT_EQ(local_buf.size(), 1u);
  ASSERT_EQ(global_buf.size(), 1u);
  EXPECT_EQ(local_buf.events()[0].name, "goes-local");
  EXPECT_EQ(global_buf.events()[0].name, "goes-global");
}

TEST(obs_trace, chrome_json_is_well_formed) {
  obs::trace_collector collector;
  {
    const obs::scoped_trace_sink sink(&collector);
    obs::span sp("solve \"x\"", "sim");
    sp.arg("batch", "4");
  }
  const io::json_value doc = io::json_value::parse(collector.to_chrome_json());
  const std::vector<io::json_value>& events = doc.at("traceEvents").elements();
  ASSERT_EQ(events.size(), 1u);
  const io::json_value& e = events[0];
  EXPECT_EQ(e.at("name").as_string(), "solve \"x\"");
  EXPECT_EQ(e.at("cat").as_string(), "sim");
  EXPECT_EQ(e.at("ph").as_string(), "X");
  EXPECT_GE(e.at("ts").as_number(), 0.0);
  EXPECT_GE(e.at("dur").as_number(), 0.0);
  EXPECT_EQ(e.at("args").at("batch").as_string(), "4");
  EXPECT_GT(e.at("args").at("span_id").as_number(), 0.0);
}

TEST(obs_trace, ndjson_lines_parse_standalone) {
  obs::trace_collector collector;
  {
    const obs::scoped_trace_sink sink(&collector);
    obs::span a("a");
    obs::span b("b");
  }
  const std::string ndjson = collector.to_ndjson();
  std::size_t lines = 0;
  std::size_t start = 0;
  while (start < ndjson.size()) {
    const std::size_t end = ndjson.find('\n', start);
    ASSERT_NE(end, std::string::npos);
    const io::json_value line = io::json_value::parse(ndjson.substr(start, end - start));
    EXPECT_TRUE(line.at("name").is_string());
    ++lines;
    start = end + 1;
  }
  EXPECT_EQ(lines, 2u);
}

TEST(obs_trace, concurrent_spans_from_many_threads) {
  obs::trace_collector collector;
  obs::set_global_trace(&collector);
  constexpr std::size_t threads = 4;
  constexpr std::size_t per_thread = 500;
  std::vector<std::thread> pool;
  for (std::size_t t = 0; t < threads; ++t)
    pool.emplace_back([] {
      for (std::size_t i = 0; i < per_thread; ++i) obs::span sp("t");
    });
  for (std::thread& t : pool) t.join();
  obs::set_global_trace(nullptr);
  EXPECT_EQ(collector.size(), threads * per_thread);
}

// --------------------------------------------------------- structured log ----

std::vector<std::string>& captured_lines() {
  static std::vector<std::string> lines;
  return lines;
}

void capture_sink(const std::string& line) { captured_lines().push_back(line); }

struct log_capture {
  log_capture() {
    captured_lines().clear();
    previous_level = current_log_level();
    previous_format = current_log_format();
    set_log_level(log_level::info);
    set_log_sink(&capture_sink);
  }
  ~log_capture() {
    set_log_sink(nullptr);
    set_log_format(previous_format);
    set_log_level(previous_level);
  }
  log_level previous_level;
  log_format previous_format;
};

TEST(obs_log, text_lines_carry_ms_timestamp_and_thread_id) {
  log_capture capture;
  set_log_format(log_format::text);
  log_line(log_level::warn, "hello", {{"key", "value"}});
  ASSERT_EQ(captured_lines().size(), 1u);
  const std::string& line = captured_lines()[0];
  // 2026-08-09T12:34:56.789Z [T0] WARN  hello key=value
  EXPECT_EQ(line[4], '-');
  EXPECT_EQ(line[10], 'T');
  EXPECT_EQ(line[19], '.');
  EXPECT_EQ(line[23], 'Z');
  EXPECT_NE(line.find(" [T"), std::string::npos);
  EXPECT_NE(line.find("WARN  hello key=value"), std::string::npos);
}

TEST(obs_log, json_format_round_trips_through_strict_parser) {
  log_capture capture;
  set_log_format(log_format::json);
  log_line(log_level::info, "solve \"done\"\n",
           {{"job", "bend/density/s1"}, {"seconds", "1.25"}});
  ASSERT_EQ(captured_lines().size(), 1u);
  const io::json_value v = io::json_value::parse(captured_lines()[0]);
  EXPECT_EQ(v.at("level").as_string(), "info");
  EXPECT_EQ(v.at("msg").as_string(), "solve \"done\"\n");
  EXPECT_EQ(v.at("job").as_string(), "bend/density/s1");
  EXPECT_EQ(v.at("seconds").as_string(), "1.25");
  EXPECT_GE(v.at("thread").as_number(), 0.0);
  const std::string ts = v.at("ts").as_string();
  EXPECT_EQ(ts.size(), 24u);
  EXPECT_EQ(ts.back(), 'Z');
}

TEST(obs_log, suppressed_levels_skip_the_sink) {
  log_capture capture;
  set_log_level(log_level::err);
  log_line(log_level::info, "hidden");
  EXPECT_TRUE(captured_lines().empty());
  log_line(log_level::err, "visible");
  EXPECT_EQ(captured_lines().size(), 1u);
}

TEST(obs_log, thread_ordinals_are_small_and_distinct) {
  const std::uint32_t mine = thread_ordinal();
  EXPECT_EQ(mine, thread_ordinal());  // stable within a thread
  std::uint32_t other = mine;
  std::thread([&other] { other = thread_ordinal(); }).join();
  EXPECT_NE(other, mine);
}

}  // namespace
}  // namespace boson
