/// \file status.h
/// The one campaign-status snapshot both consoles share: `boson_cli campaign
/// status` renders it as a table (or `--json`), the service control plane
/// serves it from `GET /v1/campaigns/{id}`. It is computed purely from the
/// campaign directory — spec + journal replay + lease fold + result-store
/// count — so a status read never blocks on (or perturbs) the workers
/// executing the campaign, local or remote.

#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "io/json.h"
#include "runtime/campaign.h"

namespace boson::service {

/// Resolved state of one job, for display. `state` is the journal state of
/// the job's latest record ("pending" when it was never mentioned), except
/// that a job the lease fold proved terminal always reads "completed" — the
/// latest line can be a losing claim or a stale heartbeat.
struct job_status {
  std::size_t index = 0;
  std::string name;
  std::string state = "pending";
  std::size_t attempt = 0;
  std::string owner;              ///< live-lease holder ("" when unleased)
  double lease_remaining = 0.0;   ///< seconds until expiry (negative: expired)
  std::string detail;             ///< latest record's payload (error, iteration)

  io::json_value to_json() const;
};

/// Point-in-time snapshot of a whole campaign.
struct campaign_status {
  // Service identity — empty when the snapshot came from a bare directory
  // (local CLI use) rather than a registry-managed campaign.
  std::string id;
  std::string tenant;
  std::string service_state;  ///< registry lifecycle: queued/running/done/...

  std::string name;              ///< the campaign_spec's name
  std::size_t total_jobs = 0;
  std::size_t journal_events = 0;
  std::size_t result_rows = 0;   ///< result_store::count_rows (distinct jobs)
  std::map<std::string, std::size_t> counts;  ///< job-state string -> jobs
  std::vector<job_status> jobs;  ///< per-job detail, in expansion order

  /// Every job is terminal-successful (counts["completed"] == total_jobs).
  bool all_completed() const;

  /// No job can make further progress without operator action: every job is
  /// completed, failed, or cancelled and none holds a live lease.
  bool settled() const;

  io::json_value to_json(bool include_jobs = true) const;

  /// The CLI rendering: per-job table + one summary line.
  std::string render_text() const;
};

/// Snapshot `campaign_dir` at time `now` (epoch seconds; lease liveness is
/// judged against it). The directory must hold a campaign.json; journal and
/// result store may not exist yet (a queued campaign snapshots to all-pending).
campaign_status read_campaign_status(const runtime::campaign_spec& spec,
                                     const std::string& campaign_dir, double now);

/// Convenience overload loading the spec from `campaign_dir`/campaign.json.
campaign_status read_campaign_status(const std::string& campaign_dir, double now);

}  // namespace boson::service
