#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "core/design_problem.h"
#include "core/evaluate.h"
#include "core/mask_correction.h"
#include "core/methods.h"
#include "core/run.h"
#include "devices/builders.h"
#include "param/levelset.h"

namespace boson::core {
namespace {

/// Coarse, fast configuration used throughout the core tests: 100 nm pixels,
/// a small pupil (below the coarse-grid Nyquist) and few SOCS kernels.
experiment_config test_config() {
  experiment_config cfg;
  cfg.resolution = 0.1;
  cfg.litho.na = 0.65;
  cfg.litho.sigma = 0.35;
  cfg.litho.kernel_half = 5;
  cfg.litho.max_kernels = 5;
  cfg.iterations = 4;
  cfg.mc_samples = 3;
  cfg.eole.anchors_x = 4;
  cfg.eole.anchors_y = 4;
  cfg.eole.num_terms = 5;
  return cfg;
}

robust::variation_corner nominal_corner(const design_problem& p) {
  robust::variation_corner c;
  c.xi.assign(p.fab().space.eole_terms, 0.0);
  return c;
}

/// Shared problems (construction builds three lithography corner models, so
/// reuse across tests).
design_problem& bend_problem() {
  static design_problem p =
      make_problem(dev::make_bend(0.1), true, test_config());
  return p;
}

design_problem& isolator_problem() {
  static design_problem p =
      make_problem(dev::make_isolator(0.1), true, test_config());
  return p;
}

// ------------------------------------------------------------- problem -----

TEST(design_problem, embed_in_halo_keeps_fixed_geometry_and_interior) {
  auto& p = bend_problem();
  const std::size_t h = p.fab().halo;
  array2d<double> rho(p.spec().design.nx, p.spec().design.ny, 0.25);
  const auto ext = p.embed_in_halo(rho);
  EXPECT_EQ(ext.nx(), p.spec().design.nx + 2 * h);
  EXPECT_EQ(ext.ny(), p.spec().design.ny + 2 * h);
  // Interior carries the pattern verbatim.
  for (std::size_t i = 0; i < rho.nx(); ++i)
    for (std::size_t j = 0; j < rho.ny(); ++j) EXPECT_EQ(ext(h + i, h + j), 0.25);
  // Halo matches the device's fixed geometry around the window: the bend's
  // input waveguide enters the design window's left edge, so some halo cell
  // on the left must be solid and the halo must stay binary.
  double halo_solid = 0.0;
  for (std::size_t ey = 0; ey < ext.ny(); ++ey) halo_solid += ext(0, ey);
  EXPECT_GT(halo_solid, 0.0);
  for (std::size_t ex = 0; ex < ext.nx(); ++ex)
    for (std::size_t ey = 0; ey < ext.ny(); ++ey)
      if (ex < h || ex >= h + rho.nx() || ey < h || ey >= h + rho.ny()) {
        EXPECT_TRUE(ext(ex, ey) == 0.0 || ext(ex, ey) == 1.0);
      }
}

TEST(design_problem, metrics_are_affine_in_monitor_values) {
  // transmission + reflection + radiation must reconstruct exactly from the
  // two monitors' normalized values: t = out, r = 1 - influx,
  // rad = influx - out  =>  t + r + rad == 1 identically.
  auto& p = bend_problem();
  const dvec theta = concentrated_init(p);
  eval_options o;
  o.fab_aware = true;
  o.compute_gradient = false;
  const auto ev = p.evaluate(theta, nominal_corner(p), o);
  EXPECT_NEAR(ev.metrics.at("transmission") + ev.metrics.at("reflection") +
                  ev.metrics.at("radiation"),
              1.0, 1e-12);
}

TEST(design_problem, fom_orientation_per_device) {
  EXPECT_FALSE(bend_problem().spec().objective.fom_lower_better);
  EXPECT_TRUE(isolator_problem().spec().objective.fom_lower_better);
  std::map<std::string, double> m{{"transmission", 0.9}};
  EXPECT_DOUBLE_EQ(bend_problem().fom_of(m), 0.9);
}

TEST(design_problem, input_powers_are_positive) {
  EXPECT_GT(bend_problem().input_power(0), 0.0);
  EXPECT_GT(isolator_problem().input_power(0), 0.0);
  EXPECT_GT(isolator_problem().input_power(1), 0.0);
  EXPECT_THROW(bend_problem().input_power(5), bad_argument);
}

TEST(design_problem, isolator_input_powers_are_direction_symmetric) {
  const double fwd = isolator_problem().input_power(0);
  const double bwd = isolator_problem().input_power(1);
  EXPECT_NEAR(fwd / bwd, 1.0, 0.05);
}

TEST(design_problem, parameterization_shape_must_match_design) {
  auto cfg = test_config();
  auto spec = dev::make_bend(0.1);
  auto wrong = std::make_shared<param::levelset_param>(4, 4, spec.design.nx + 1,
                                                       spec.design.ny);
  auto fab = make_fab_context(spec, cfg.litho, cfg.eole, cfg.space);
  EXPECT_THROW(design_problem(spec, wrong, fab), bad_argument);
}

TEST(design_problem, concentrated_init_transmits_through_fab_pipeline) {
  auto& p = bend_problem();
  const dvec theta = concentrated_init(p);
  eval_options o;
  o.fab_aware = true;
  o.compute_gradient = false;
  const auto ev = p.evaluate(theta, nominal_corner(p), o);
  EXPECT_GT(ev.metrics.at("transmission"), 0.5);
  // At the coarse 100 nm test pitch the stair-cased arc reflects far more
  // than at production resolution (where reflection is < 1%); just require
  // the budget to be physical.
  EXPECT_LT(ev.metrics.at("reflection"), 0.5);
  // Pattern realized on the design grid, near-binary after the hard STE etch.
  ASSERT_EQ(ev.pattern.nx(), p.spec().design.nx);
  for (const double v : ev.pattern) EXPECT_TRUE(v == 0.0 || v == 1.0);
}

TEST(design_problem, isolator_metrics_include_contrast) {
  auto& p = isolator_problem();
  const dvec theta = concentrated_init(p);
  eval_options o;
  o.fab_aware = true;
  o.compute_gradient = false;
  const auto ev = p.evaluate(theta, nominal_corner(p), o);
  for (const char* name : {"fwd_transmission", "bwd_transmission", "fwd_reflection",
                           "bwd_radiation", "contrast"})
    EXPECT_TRUE(ev.metrics.count(name)) << name;
  // Straight-guide init: backward passes, forward barely converts to TM3.
  EXPECT_GT(ev.metrics.at("bwd_transmission"), 0.5);
  EXPECT_LT(ev.metrics.at("fwd_transmission"), 0.4);
  EXPECT_GT(ev.metrics.at("contrast"), 1.0);
}

TEST(design_problem, evaluate_pattern_matches_evaluate_at_same_pattern) {
  auto& p = bend_problem();
  const dvec theta = concentrated_init(p);
  array2d<double> rho;
  p.parameterization().forward(theta, rho);

  eval_options o;
  o.fab_aware = true;
  o.compute_gradient = false;
  const auto via_theta = p.evaluate(theta, nominal_corner(p), o);
  const auto via_pattern = p.evaluate_pattern(rho, nominal_corner(p), o);
  EXPECT_NEAR(via_theta.loss, via_pattern.loss, 1e-12);
  for (const auto& [name, value] : via_theta.metrics)
    EXPECT_NEAR(value, via_pattern.metrics.at(name), 1e-12) << name;
}

TEST(design_problem, dense_objectives_add_penalty_terms) {
  auto& p = isolator_problem();
  const dvec theta = concentrated_init(p);
  eval_options dense;
  dense.fab_aware = true;
  dense.compute_gradient = false;
  dense.dense_objectives = true;
  eval_options sparse = dense;
  sparse.dense_objectives = false;
  const double dense_loss = p.evaluate(theta, nominal_corner(p), dense).loss;
  const double sparse_loss = p.evaluate(theta, nominal_corner(p), sparse).loss;
  // The straight-guide init violates the fwd-transmission constraint, so the
  // dense objective must be strictly larger.
  EXPECT_GT(dense_loss, sparse_loss);
}

TEST(design_problem, objective_override_switches_to_efficiency) {
  auto& p = isolator_problem();
  const dvec theta = concentrated_init(p);
  eval_options o;
  o.fab_aware = true;
  o.compute_gradient = false;
  o.dense_objectives = false;
  o.objective_override = "fwd_transmission";
  const auto ev = p.evaluate(theta, nominal_corner(p), o);
  EXPECT_NEAR(ev.loss, 1.0 - ev.metrics.at("fwd_transmission"), 1e-12);
}

TEST(design_problem, litho_corners_change_the_pattern) {
  auto& p = bend_problem();
  const dvec theta = concentrated_init(p);
  eval_options o;
  o.fab_aware = true;
  o.compute_gradient = false;
  auto corner = nominal_corner(p);
  const auto nominal_pattern = p.evaluate(theta, corner, o).pattern;
  corner.litho = 1;  // under-exposure corner
  const auto under = p.evaluate(theta, corner, o).pattern;
  corner.litho = 2;  // over-exposure corner
  const auto over = p.evaluate(theta, corner, o).pattern;
  // Dose ordering: under-exposed area <= nominal <= over-exposed area.
  EXPECT_LE(total(under), total(nominal_pattern));
  EXPECT_LE(total(nominal_pattern), total(over));
}

TEST(design_problem, temperature_shifts_permittivity_and_metrics) {
  auto& p = bend_problem();
  const dvec theta = concentrated_init(p);
  eval_options o;
  o.fab_aware = true;
  o.compute_gradient = false;
  auto corner = nominal_corner(p);
  const double t_nominal = p.evaluate(theta, corner, o).metrics.at("transmission");
  corner.temperature = 340.0;
  const double t_hot = p.evaluate(theta, corner, o).metrics.at("transmission");
  EXPECT_NE(t_nominal, t_hot);  // thermo-optic drift must be visible
}

// ------------------------------------------------------------ gradients ----

TEST(design_problem, full_pipeline_gradient_matches_fd) {
  auto& p = bend_problem();
  p.parameterization().set_sharpness(10.0);
  const dvec theta = concentrated_init(p);
  eval_options o;
  o.fab_aware = true;
  o.soft_etch = true;  // finite-difference-consistent surrogate
  o.compute_gradient = true;
  const auto corner = nominal_corner(p);
  const auto ev = p.evaluate(theta, corner, o);
  ASSERT_EQ(ev.grad.size(), theta.size());

  eval_options of = o;
  of.compute_gradient = false;
  const double h = 1e-4;
  std::size_t checked = 0;
  for (std::size_t k = 0; k < theta.size() && checked < 4; k += theta.size() / 5) {
    dvec tp = theta, tm = theta;
    tp[k] += h;
    tm[k] -= h;
    const double fd =
        (p.evaluate(tp, corner, of).loss - p.evaluate(tm, corner, of).loss) / (2 * h);
    if (std::abs(fd) < 1e-7) continue;  // below solver precision
    EXPECT_NEAR(ev.grad[k], fd, 2e-3 * (std::abs(fd) + std::abs(ev.grad[k]))) << k;
    ++checked;
  }
  EXPECT_GE(checked, 2u);
}

TEST(design_problem, variation_gradients_match_fd) {
  auto& p = bend_problem();
  const dvec theta = concentrated_init(p);
  eval_options o;
  o.fab_aware = true;
  o.soft_etch = true;
  o.compute_gradient = true;
  o.want_var_grads = true;
  auto corner = nominal_corner(p);
  const auto ev = p.evaluate(theta, corner, o);
  ASSERT_EQ(ev.d_xi.size(), p.fab().space.eole_terms);

  eval_options of = o;
  of.compute_gradient = false;
  of.want_var_grads = false;

  // Temperature gradient.
  {
    const double h = 0.5;
    auto cp = corner, cm = corner;
    cp.temperature += h;
    cm.temperature -= h;
    const double fd =
        (p.evaluate(theta, cp, of).loss - p.evaluate(theta, cm, of).loss) / (2 * h);
    EXPECT_NEAR(ev.d_temperature, fd,
                0.05 * (std::abs(fd) + std::abs(ev.d_temperature)) + 1e-9);
  }
  // EOLE coefficient gradient (first two terms).
  for (std::size_t m = 0; m < 2; ++m) {
    const double h = 1e-3;
    auto cp = corner, cm = corner;
    cp.xi[m] += h;
    cm.xi[m] -= h;
    const double fd =
        (p.evaluate(theta, cp, of).loss - p.evaluate(theta, cm, of).loss) / (2 * h);
    EXPECT_NEAR(ev.d_xi[m], fd, 5e-3 * (std::abs(fd) + std::abs(ev.d_xi[m])) + 1e-9);
  }
}

// ------------------------------------------------------------ protocols ----

TEST(evaluate, prefab_metrics_use_binarized_ideal_pattern) {
  auto& p = bend_problem();
  const dvec theta = concentrated_init(p);
  array2d<double> rho;
  p.parameterization().forward(theta, rho);
  const auto metrics = prefab_metrics(p, rho);
  EXPECT_TRUE(metrics.count("transmission"));
  EXPECT_GT(metrics.at("transmission"), 0.5);
}

TEST(evaluate, monte_carlo_is_deterministic_given_seed) {
  auto& p = bend_problem();
  const dvec theta = concentrated_init(p);
  array2d<double> rho;
  p.parameterization().forward(theta, rho);
  const array2d<double> mask = binarize(rho);
  const auto a = postfab_monte_carlo(p, mask, 4, 99);
  const auto b = postfab_monte_carlo(p, mask, 4, 99);
  EXPECT_DOUBLE_EQ(a.fom_mean, b.fom_mean);
  EXPECT_DOUBLE_EQ(a.fom_std, b.fom_std);
  EXPECT_EQ(a.samples, 4u);
  EXPECT_LE(a.fom_min, a.fom_mean);
  EXPECT_GE(a.fom_max, a.fom_mean);
}

TEST(evaluate, different_seeds_draw_different_variations) {
  auto& p = bend_problem();
  const dvec theta = concentrated_init(p);
  array2d<double> rho;
  p.parameterization().forward(theta, rho);
  const array2d<double> mask = binarize(rho);
  const auto a = postfab_monte_carlo(p, mask, 3, 1);
  const auto b = postfab_monte_carlo(p, mask, 3, 2);
  EXPECT_NE(a.fom_mean, b.fom_mean);
}

// ------------------------------------------------------ mask correction ----

TEST(mask_correction, reduces_pattern_mismatch) {
  auto& p = bend_problem();
  const dvec theta = concentrated_init(p);
  array2d<double> rho;
  p.parameterization().forward(theta, rho);
  const array2d<double> target = binarize(rho);

  mask_correction_options mo;
  mo.iterations = 20;
  mo.litho_corners = 1;
  const auto result = correct_mask(p, target, mo);
  EXPECT_LT(result.final_mismatch, result.initial_mismatch);
  ASSERT_EQ(result.mask.nx(), target.nx());
  for (const double v : result.mask) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
}

TEST(mask_correction, multi_corner_matching_runs) {
  auto& p = bend_problem();
  const dvec theta = concentrated_init(p);
  array2d<double> rho;
  p.parameterization().forward(theta, rho);
  mask_correction_options mo;
  mo.iterations = 6;
  mo.litho_corners = 3;
  const auto result = correct_mask(p, binarize(rho), mo);
  EXPECT_LT(result.final_mismatch, result.initial_mismatch * 1.5);
}

// ----------------------------------------------------------------- runs ----

TEST(run, nominal_fab_aware_run_reduces_loss) {
  auto& p = bend_problem();
  run_options ro;
  ro.iterations = 8;
  ro.fab_aware = true;
  ro.dense_objectives = true;
  ro.sampling = robust::sampling_strategy::nominal_only;
  ro.learning_rate = 0.03;
  const auto res = run_inverse_design(p, concentrated_init(p), ro);
  ASSERT_EQ(res.trajectory.size(), 8u);
  // STE optimization on a coarse grid is noisy iteration-to-iteration; the
  // best loss seen must improve on (or match) the starting point and the end
  // must not have blown up.
  double best = res.trajectory.front().loss;
  for (const auto& rec : res.trajectory) best = std::min(best, rec.loss);
  EXPECT_LE(best, res.trajectory.front().loss);
  EXPECT_LT(res.trajectory.back().loss, res.trajectory.front().loss * 1.3);
  EXPECT_EQ(res.theta.size(), p.parameterization().num_params());
  ASSERT_EQ(res.design_rho.nx(), p.spec().design.nx);
}

TEST(run, robust_run_with_worst_case_sampling_executes) {
  auto& p = isolator_problem();
  run_options ro;
  ro.iterations = 3;
  ro.fab_aware = true;
  ro.dense_objectives = true;
  ro.relax_epochs = 2;
  ro.sampling = robust::sampling_strategy::axial_plus_worst;
  const auto res = run_inverse_design(p, concentrated_init(p), ro);
  EXPECT_EQ(res.trajectory.size(), 3u);
  for (const auto& rec : res.trajectory) {
    EXPECT_TRUE(std::isfinite(rec.loss));
    EXPECT_TRUE(rec.metrics.count("contrast"));
  }
}

TEST(run, trajectory_records_nominal_metrics_each_iteration) {
  auto& p = bend_problem();
  run_options ro;
  ro.iterations = 3;
  ro.sampling = robust::sampling_strategy::axial_double;
  const auto res = run_inverse_design(p, concentrated_init(p), ro);
  for (std::size_t i = 0; i < res.trajectory.size(); ++i) {
    EXPECT_EQ(res.trajectory[i].iteration, i);
    EXPECT_TRUE(res.trajectory[i].metrics.count("transmission"));
  }
}

TEST(run, rejects_bad_arguments) {
  auto& p = bend_problem();
  run_options ro;
  ro.iterations = 0;
  EXPECT_THROW(run_inverse_design(p, concentrated_init(p), ro), bad_argument);
  ro.iterations = 2;
  EXPECT_THROW(run_inverse_design(p, dvec(3, 0.0), ro), bad_argument);
}

// ----------------------------------------------------- wavelength sweep ----

TEST(spectrum, center_wavelength_matches_direct_evaluation) {
  auto& p = bend_problem();
  const dvec theta = concentrated_init(p);
  array2d<double> rho;
  p.parameterization().forward(theta, rho);
  const array2d<double> mask = binarize(rho);

  const auto spectrum = wavelength_sweep(p, mask, dvec{1.55});
  ASSERT_EQ(spectrum.size(), 1u);
  EXPECT_DOUBLE_EQ(spectrum[0].lambda_um, 1.55);

  eval_options o;
  o.fab_aware = true;
  o.hard_etch = true;
  o.dense_objectives = false;
  o.compute_gradient = false;
  const auto direct = p.evaluate_pattern(mask, nominal_corner(p), o);
  EXPECT_NEAR(spectrum[0].fom, p.fom_of(direct.metrics), 1e-10);
}

TEST(spectrum, sweep_returns_finite_values_across_band) {
  auto& p = bend_problem();
  const dvec theta = concentrated_init(p);
  array2d<double> rho;
  p.parameterization().forward(theta, rho);
  const array2d<double> mask = binarize(rho);

  const dvec lambdas{1.50, 1.55, 1.60};
  const auto spectrum = wavelength_sweep(p, mask, lambdas);
  ASSERT_EQ(spectrum.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(spectrum[i].lambda_um, lambdas[i]);
    EXPECT_TRUE(std::isfinite(spectrum[i].fom));
    EXPECT_GE(spectrum[i].fom, 0.0);
    EXPECT_LE(spectrum[i].fom, 1.2);
    EXPECT_TRUE(spectrum[i].metrics.count("transmission"));
  }
}

TEST(spectrum, at_wavelength_validates_input) {
  EXPECT_THROW(bend_problem().at_wavelength(0.0), bad_argument);
  EXPECT_THROW(wavelength_sweep(bend_problem(), array2d<double>(1, 1), dvec{}),
               bad_argument);
}

// ------------------------------------------------------------ relaxation ----

TEST(run, full_relaxation_start_equals_ideal_objective) {
  // At iteration 0 with relax_epochs > 0, p = 0: the blended loss must equal
  // the ideal (non-fabricated) dense objective at theta0.
  auto& p = bend_problem();
  const dvec theta0 = concentrated_init(p);

  run_options ro;
  ro.iterations = 1;
  ro.fab_aware = true;
  ro.dense_objectives = true;
  ro.relax_epochs = 10;
  ro.sampling = robust::sampling_strategy::nominal_only;
  ro.beta_start = ro.beta_end = 12.0;  // freeze the sharpness schedule
  const auto res = run_inverse_design(p, theta0, ro);

  p.parameterization().set_sharpness(12.0);
  eval_options ideal;
  ideal.fab_aware = false;
  ideal.dense_objectives = true;
  ideal.compute_gradient = false;
  const double ideal_loss = p.evaluate(theta0, nominal_corner(p), ideal).loss;
  EXPECT_NEAR(res.trajectory.front().loss, ideal_loss, 1e-9);
}

TEST(run, no_relaxation_start_equals_fab_objective) {
  auto& p = bend_problem();
  const dvec theta0 = concentrated_init(p);

  run_options ro;
  ro.iterations = 1;
  ro.fab_aware = true;
  ro.dense_objectives = true;
  ro.relax_epochs = 0;
  ro.sampling = robust::sampling_strategy::nominal_only;
  ro.beta_start = ro.beta_end = 12.0;
  const auto res = run_inverse_design(p, theta0, ro);

  p.parameterization().set_sharpness(12.0);
  eval_options fab;
  fab.fab_aware = true;
  fab.dense_objectives = true;
  fab.compute_gradient = false;
  const double fab_loss = p.evaluate(theta0, nominal_corner(p), fab).loss;
  EXPECT_NEAR(res.trajectory.front().loss, fab_loss, 1e-9);
}

TEST(run, erosion_dilation_baseline_executes) {
  auto& p = bend_problem();
  run_options ro;
  ro.iterations = 3;
  ro.fab_aware = false;
  ro.erosion_dilation = true;
  ro.dense_objectives = false;
  const auto res = run_inverse_design(p, concentrated_init(p), ro);
  ASSERT_EQ(res.trajectory.size(), 3u);
  for (const auto& rec : res.trajectory) EXPECT_TRUE(std::isfinite(rec.loss));
}

TEST(run, erosion_dilation_requires_non_fab_aware) {
  auto& p = bend_problem();
  run_options ro;
  ro.iterations = 1;
  ro.fab_aware = true;
  ro.erosion_dilation = true;
  EXPECT_THROW(run_inverse_design(p, concentrated_init(p), ro), bad_argument);
}

TEST(run, tv_regularization_increases_reported_loss) {
  auto& p = bend_problem();
  const dvec theta0 = concentrated_init(p);
  run_options base;
  base.iterations = 1;
  base.fab_aware = false;
  base.dense_objectives = false;
  base.sampling = robust::sampling_strategy::nominal_only;
  base.beta_start = base.beta_end = 12.0;
  run_options with_tv = base;
  with_tv.tv_weight = 0.01;
  const double plain = run_inverse_design(p, theta0, base).trajectory.front().loss;
  const double regularized = run_inverse_design(p, theta0, with_tv).trajectory.front().loss;
  // The arc pattern has nonzero perimeter, so the TV term must add loss.
  EXPECT_GT(regularized, plain);
}

TEST(design_problem, morphology_shift_changes_pattern_area) {
  auto& p = bend_problem();
  const dvec theta = concentrated_init(p);
  eval_options o;
  o.fab_aware = false;
  o.compute_gradient = false;
  auto corner = nominal_corner(p);
  o.morphology_shift = -1;
  const double eroded_area = total(p.evaluate(theta, corner, o).pattern);
  o.morphology_shift = 0;
  const double nominal_area = total(p.evaluate(theta, corner, o).pattern);
  o.morphology_shift = +1;
  const double dilated_area = total(p.evaluate(theta, corner, o).pattern);
  EXPECT_LT(eroded_area, nominal_area);
  EXPECT_LT(nominal_area, dilated_area);
}

TEST(design_problem, morphology_gradient_matches_fd) {
  auto& p = bend_problem();
  p.parameterization().set_sharpness(10.0);
  const dvec theta = concentrated_init(p);
  eval_options o;
  o.fab_aware = false;
  o.dense_objectives = true;
  o.compute_gradient = true;
  o.morphology_shift = -1;
  const auto corner = nominal_corner(p);
  const auto ev = p.evaluate(theta, corner, o);

  eval_options of = o;
  of.compute_gradient = false;
  const double h = 1e-4;
  std::size_t checked = 0;
  for (std::size_t k = 0; k < theta.size() && checked < 3; k += theta.size() / 4) {
    dvec tp = theta, tm = theta;
    tp[k] += h;
    tm[k] -= h;
    const double fd =
        (p.evaluate(tp, corner, of).loss - p.evaluate(tm, corner, of).loss) / (2 * h);
    if (std::abs(fd) < 1e-7) continue;
    EXPECT_NEAR(ev.grad[k], fd, 5e-3 * (std::abs(fd) + std::abs(ev.grad[k]))) << k;
    ++checked;
  }
  EXPECT_GE(checked, 1u);
}

TEST(process_window, nominal_point_matches_corner_zero) {
  auto& p = bend_problem();
  const dvec theta = concentrated_init(p);
  array2d<double> rho;
  p.parameterization().forward(theta, rho);
  const array2d<double> mask = binarize(rho);

  const auto window = litho_process_window(p, mask, dvec{0.0}, dvec{1.0});
  ASSERT_EQ(window.size(), 1u);

  eval_options o;
  o.fab_aware = true;
  o.hard_etch = true;
  o.dense_objectives = false;
  o.compute_gradient = false;
  const auto direct = p.evaluate_pattern(mask, nominal_corner(p), o);
  EXPECT_NEAR(window[0].fom, p.fom_of(direct.metrics), 1e-6);
}

TEST(process_window, scan_covers_the_grid) {
  auto& p = bend_problem();
  const dvec theta = concentrated_init(p);
  array2d<double> rho;
  p.parameterization().forward(theta, rho);
  const array2d<double> mask = binarize(rho);

  const dvec defocus{0.0, 0.15};
  const dvec dose{0.95, 1.0, 1.05};
  const auto window = litho_process_window(p, mask, defocus, dose);
  ASSERT_EQ(window.size(), 6u);
  for (const auto& pt : window) {
    EXPECT_TRUE(std::isfinite(pt.fom));
    EXPECT_GE(pt.fom, 0.0);
  }
  // Row-major ordering: defocus outer, dose inner.
  EXPECT_DOUBLE_EQ(window[0].defocus_um, 0.0);
  EXPECT_DOUBLE_EQ(window[0].dose, 0.95);
  EXPECT_DOUBLE_EQ(window[5].defocus_um, 0.15);
  EXPECT_DOUBLE_EQ(window[5].dose, 1.05);
}

TEST(run, trajectory_can_be_disabled) {
  auto& p = bend_problem();
  run_options ro;
  ro.iterations = 2;
  ro.record_trajectory = false;
  ro.sampling = robust::sampling_strategy::nominal_only;
  const auto res = run_inverse_design(p, concentrated_init(p), ro);
  EXPECT_TRUE(res.trajectory.empty());
  EXPECT_TRUE(std::isfinite(res.final_loss));
}

// -------------------------------------------------------------- methods ----

TEST(methods, names_are_unique_and_match_paper) {
  std::set<std::string> names;
  for (const auto id :
       {method_id::density, method_id::density_m, method_id::ls, method_id::ls_m,
        method_id::invfabcor_1, method_id::invfabcor_3, method_id::invfabcor_m_1,
        method_id::invfabcor_m_3, method_id::invfabcor_m_3_eff, method_id::ls_ed,
        method_id::boson, method_id::boson_no_reshape, method_id::boson_no_relax,
        method_id::boson_exhaustive, method_id::boson_random_init})
    names.insert(method_name(id));
  EXPECT_EQ(names.size(), 15u);
  EXPECT_EQ(method_name(method_id::boson), "BOSON-1");
  EXPECT_EQ(method_name(method_id::invfabcor_m_3), "InvFabCor-M-3");
}

TEST(methods, relative_improvement_orientation) {
  // Higher-better: ours 0.9 vs baseline 0.45 -> 50% of our FoM.
  EXPECT_NEAR(relative_improvement(0.45, 0.9, false), 0.5, 1e-12);
  // Lower-better: baseline 0.5 vs ours 0.005 -> 99%.
  EXPECT_NEAR(relative_improvement(0.5, 0.005, true), 0.99, 1e-12);
  EXPECT_DOUBLE_EQ(relative_improvement(0.0, 0.0, true), 0.0);
}

TEST(methods, binarize_thresholds_correctly) {
  array2d<double> rho(2, 2);
  rho(0, 0) = 0.2;
  rho(0, 1) = 0.8;
  rho(1, 0) = 0.5;
  rho(1, 1) = 0.51;
  const auto b = binarize(rho);
  EXPECT_EQ(b(0, 0), 0.0);
  EXPECT_EQ(b(0, 1), 1.0);
  EXPECT_EQ(b(1, 0), 0.0);
  EXPECT_EQ(b(1, 1), 1.0);
}

TEST(methods, config_scaling_applies_floors) {
  experiment_config cfg;
  cfg.iterations = 50;
  cfg.mc_samples = 20;
  cfg.relax_epochs = 20;
  cfg.scale = 0.1;
  EXPECT_EQ(cfg.scaled_iterations(), 5u);
  EXPECT_EQ(cfg.scaled_samples(), 2u);
  EXPECT_EQ(cfg.scaled_relax(), 2u);
  cfg.scale = 1.0;
  EXPECT_EQ(cfg.scaled_iterations(), 50u);
}

TEST(methods, end_to_end_density_baseline_runs) {
  auto cfg = test_config();
  cfg.scale = 1.0;
  const auto res = run_method(dev::make_bend(0.1), method_id::density, cfg);
  EXPECT_EQ(res.method, "Density");
  EXPECT_TRUE(res.prefab.count("transmission"));
  EXPECT_EQ(res.postfab.samples, cfg.scaled_samples());
  EXPECT_GT(res.prefab_fom, 0.0);
}

TEST(methods, end_to_end_boson_runs_and_reports) {
  auto cfg = test_config();
  cfg.scale = 1.0;
  const auto res = run_method(dev::make_bend(0.1), method_id::boson, cfg);
  EXPECT_EQ(res.method, "BOSON-1");
  EXPECT_EQ(res.run.trajectory.size(), cfg.scaled_iterations());
  EXPECT_GT(res.postfab.fom_mean, 0.0);
  // The fabricated mask is binary.
  for (const double v : res.mask) EXPECT_TRUE(v == 0.0 || v == 1.0);
}

TEST(methods, end_to_end_invfabcor_produces_corrected_mask) {
  auto cfg = test_config();
  cfg.scale = 1.0;
  const auto res = run_method(dev::make_bend(0.1), method_id::invfabcor_m_1, cfg);
  EXPECT_EQ(res.method, "InvFabCor-M-1");
  EXPECT_EQ(res.mask.nx(), res.run.design_rho.nx());
}

// -------------------------------------------------------------- recipes ----

/// The legacy (pre-recipe) per-method ingredient table, hand-copied from the
/// enum-era dispatch. The presets must keep resolving to exactly these
/// `run_options` — since `run_inverse_design` is a pure function of
/// (problem, theta0, options), equal options + parameterization + init are
/// what make the recipe path bit-identical to the old enum path.
struct legacy_expectation {
  method_id id;
  const char* parameterization;
  bool density_blur_mfs;
  bool mfs_blur;
  bool fab_aware;
  bool dense;
  bool relax;  ///< true: cfg.scaled_relax(), false: 0
  robust::sampling_strategy sampling;
  bool random_initialization;
  bool erosion_dilation;
  bool beta_ramp;
  std::size_t correction_corners;
  const char* objective_override;
};

TEST(recipe, presets_resolve_to_the_legacy_run_options) {
  using st = robust::sampling_strategy;
  const std::vector<legacy_expectation> table = {
      {method_id::density, "density", false, false, false, false, false,
       st::nominal_only, false, false, false, 0, ""},
      {method_id::density_m, "density", true, false, false, false, false,
       st::nominal_only, false, false, false, 0, ""},
      {method_id::ls, "levelset", false, false, false, false, false,
       st::nominal_only, false, false, true, 0, ""},
      {method_id::ls_m, "levelset", false, true, false, false, false,
       st::nominal_only, false, false, true, 0, ""},
      {method_id::invfabcor_1, "levelset", false, false, false, false, false,
       st::nominal_only, false, false, true, 1, ""},
      {method_id::invfabcor_3, "levelset", false, false, false, false, false,
       st::nominal_only, false, false, true, 3, ""},
      {method_id::invfabcor_m_1, "levelset", false, true, false, false, false,
       st::nominal_only, false, false, true, 1, ""},
      {method_id::invfabcor_m_3, "levelset", false, true, false, false, false,
       st::nominal_only, false, false, true, 3, ""},
      {method_id::invfabcor_m_3_eff, "levelset", false, true, false, false, false,
       st::nominal_only, false, false, true, 3, "fwd_transmission"},
      {method_id::ls_ed, "levelset", false, true, false, false, false,
       st::nominal_only, false, true, true, 0, ""},
      {method_id::boson, "levelset", false, false, true, true, true,
       st::axial_plus_worst, false, false, true, 0, ""},
      {method_id::boson_no_reshape, "levelset", false, false, true, false, true,
       st::axial_plus_worst, false, false, true, 0, ""},
      {method_id::boson_no_relax, "levelset", false, false, true, true, false,
       st::axial_plus_worst, false, false, true, 0, ""},
      {method_id::boson_exhaustive, "levelset", false, false, true, true, true,
       st::exhaustive, false, false, true, 0, ""},
      {method_id::boson_random_init, "levelset", false, false, true, true, true,
       st::axial_plus_worst, true, false, true, 0, ""},
  };
  ASSERT_EQ(table.size(), all_method_ids().size());

  experiment_config cfg = test_config();
  cfg.relax_epochs = 3;
  for (const legacy_expectation& e : table) {
    const method_recipe recipe = preset_recipe(e.id);
    const std::string label = recipe.label;
    EXPECT_NO_THROW(validate_recipe(recipe)) << label;
    EXPECT_EQ(recipe.parameterization, e.parameterization) << label;
    EXPECT_EQ(recipe.density_blur_mfs, e.density_blur_mfs) << label;
    EXPECT_EQ(recipe.initialization, e.random_initialization ? "random" : "default")
        << label;
    EXPECT_EQ(recipe_policies::global()
                  .mask_correction.get(recipe.mask_correction)
                  .litho_corners,
              e.correction_corners)
        << label;

    const run_options ro = resolved_run_options(recipe, cfg);
    EXPECT_EQ(ro.iterations, cfg.scaled_iterations()) << label;
    EXPECT_DOUBLE_EQ(ro.learning_rate, cfg.learning_rate) << label;
    EXPECT_EQ(ro.fab_aware, e.fab_aware) << label;
    EXPECT_EQ(ro.dense_objectives, e.dense) << label;
    EXPECT_EQ(ro.use_mfs_blur, e.mfs_blur) << label;
    EXPECT_EQ(ro.relax_epochs, e.relax ? cfg.scaled_relax() : 0u) << label;
    EXPECT_EQ(ro.sampling, e.sampling) << label;
    EXPECT_EQ(ro.erosion_dilation, e.erosion_dilation) << label;
    EXPECT_DOUBLE_EQ(ro.beta_start, 8.0) << label;
    EXPECT_DOUBLE_EQ(ro.beta_end, e.beta_ramp ? 40.0 : 8.0) << label;
    EXPECT_EQ(ro.objective_override, e.objective_override) << label;
    EXPECT_EQ(ro.seed, cfg.seed) << label;
  }
}

TEST(recipe, preset_labels_are_the_paper_names_and_unique) {
  std::set<std::string> labels;
  for (const method_id id : all_method_ids()) labels.insert(preset_recipe(id).label);
  EXPECT_EQ(labels.size(), 15u);
  EXPECT_EQ(preset_recipe(method_id::boson).label, "BOSON-1");
  EXPECT_EQ(preset_recipe(method_id::invfabcor_m_3).label, "InvFabCor-M-3");
}

/// Bit-identity of the enum alias vs an explicitly-composed recipe value:
/// trajectory, theta, mask, and Monte-Carlo statistics must match double for
/// double. Three presets cover the distinct pipelines (adaptive+relax+dense,
/// density+auto-blur+fixed-beta, and the two-stage mask correction).
void expect_bit_identical(const method_result& a, const method_result& b) {
  ASSERT_EQ(a.run.trajectory.size(), b.run.trajectory.size());
  for (std::size_t i = 0; i < a.run.trajectory.size(); ++i)
    EXPECT_EQ(a.run.trajectory[i].loss, b.run.trajectory[i].loss) << "iteration " << i;
  ASSERT_EQ(a.run.theta.size(), b.run.theta.size());
  for (std::size_t i = 0; i < a.run.theta.size(); ++i)
    EXPECT_EQ(a.run.theta[i], b.run.theta[i]) << "theta[" << i << "]";
  ASSERT_EQ(a.mask.size(), b.mask.size());
  for (std::size_t i = 0; i < a.mask.size(); ++i)
    EXPECT_EQ(a.mask.data()[i], b.mask.data()[i]) << "mask[" << i << "]";
  EXPECT_EQ(a.postfab.samples, b.postfab.samples);
  EXPECT_EQ(a.postfab.fom_mean, b.postfab.fom_mean);
  EXPECT_EQ(a.prefab_fom, b.prefab_fom);
}

TEST(recipe, enum_alias_and_recipe_value_run_bit_identical) {
  experiment_config cfg = test_config();
  cfg.iterations = 3;
  cfg.relax_epochs = 2;
  cfg.mc_samples = 2;
  const auto device = dev::make_bend(0.1);
  for (const method_id id :
       {method_id::boson, method_id::density_m, method_id::invfabcor_m_1}) {
    const method_result via_enum = run_method(device, id, cfg);
    const method_result via_recipe = run_method(device, preset_recipe(id), cfg);
    EXPECT_EQ(via_enum.method, via_recipe.method);
    expect_bit_identical(via_enum, via_recipe);
  }
}

TEST(recipe, policy_lookup_suggests_the_closest_key) {
  method_recipe recipe;
  recipe.corners = "adaptve";
  try {
    validate_recipe(recipe);
    FAIL() << "expected bad_argument";
  } catch (const bad_argument& e) {
    EXPECT_NE(std::string(e.what()).find("unknown corners policy 'adaptve'"),
              std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("did you mean 'adaptive'?"), std::string::npos)
        << e.what();
  }
}

TEST(recipe, validate_rejects_inconsistent_compositions) {
  const auto expect_fail = [](void (*mutate)(method_recipe&), const std::string& fragment) {
    method_recipe recipe;
    mutate(recipe);
    try {
      validate_recipe(recipe);
      FAIL() << "expected bad_argument containing \"" << fragment << "\"";
    } catch (const bad_argument& e) {
      EXPECT_NE(std::string(e.what()).find(fragment), std::string::npos) << e.what();
    }
  };
  expect_fail([](method_recipe& r) { r.density_blur_mfs = true; },
              "only applies to the density parameterization");
  expect_fail(
      [](method_recipe& r) {
        r.parameterization = "density";
        r.density_blur_mfs = true;
        r.density_blur_cells = 2.0;
      },
      "not both");
  expect_fail([](method_recipe& r) { r.beta_start = 0.0; }, "'beta_start'");
  expect_fail([](method_recipe& r) { r.label.clear(); }, "'label'");
  expect_fail([](method_recipe& r) { r.tv_weight = -1.0; }, "'tv_weight'");
}

TEST(recipe, registrable_policies_extend_the_dispatch) {
  // A user-registered corner policy becomes addressable from any recipe.
  recipe_policies::global().corners.add(
      "test_axial_double_alias",
      {true, robust::sampling_strategy::axial_double, false, "test alias"});
  method_recipe recipe;
  recipe.corners = "test_axial_double_alias";
  EXPECT_NO_THROW(validate_recipe(recipe));
  const run_options ro = resolved_run_options(recipe, test_config());
  EXPECT_TRUE(ro.fab_aware);
  EXPECT_EQ(ro.sampling, robust::sampling_strategy::axial_double);
}

TEST(recipe, signature_is_compact_provenance) {
  EXPECT_EQ(preset_recipe(method_id::boson).signature(),
            "levelset|corners:adaptive|relax:linear|reshape:dense|init:default");
  EXPECT_EQ(preset_recipe(method_id::invfabcor_m_3_eff).signature(),
            "levelset+M|corners:none|relax:none|reshape:none|init:default"
            "|corr:all_corners|objective:fwd_transmission");
}

TEST(recipe, signature_separates_recipes_that_run_differently) {
  // The provenance key must not collide for behaviorally distinct recipes:
  // every numeric field that changes the run lands in the signature.
  method_recipe a = preset_recipe(method_id::boson);
  method_recipe b = a;
  b.tv_weight = 0.01;
  EXPECT_NE(a.signature(), b.signature());
  method_recipe c = a;
  c.beta_end = 60.0;
  EXPECT_NE(a.signature(), c.signature());
  method_recipe d = preset_recipe(method_id::density_m);  // auto-MFS blur
  method_recipe e = d;
  e.density_blur_mfs = false;
  e.density_blur_cells = 1.5;  // fixed radius is not "+mfs"
  EXPECT_NE(d.signature(), e.signature());
  method_recipe f = a;
  f.iterations = 200;
  f.learning_rate = 0.1;
  EXPECT_NE(a.signature(), f.signature());
}

}  // namespace
}  // namespace boson::core
