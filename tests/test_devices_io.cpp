#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>

#include "devices/builders.h"
#include "io/csv.h"
#include "io/json.h"
#include "io/pgm.h"
#include "io/table.h"

namespace boson {
namespace {

// -------------------------------------------------------------- devices ----

struct device_case {
  dev::device_kind kind;
  double resolution;
};

class device_builders : public ::testing::TestWithParam<device_case> {};

TEST_P(device_builders, geometry_is_well_formed) {
  const auto [kind, res] = GetParam();
  const auto d = dev::make_device(kind, res);

  EXPECT_FALSE(d.name.empty());
  EXPECT_GT(d.k0, 0.0);
  ASSERT_EQ(d.background_occupancy.nx(), d.grid.nx);
  ASSERT_EQ(d.background_occupancy.ny(), d.grid.ny);
  ASSERT_EQ(d.reference_occupancy.nx(), d.grid.nx);
  EXPECT_NO_THROW(d.design.validate_within(d.grid));

  // Occupancy maps are binary.
  for (const double v : d.background_occupancy) EXPECT_TRUE(v == 0.0 || v == 1.0);
  for (const double v : d.reference_occupancy) EXPECT_TRUE(v == 0.0 || v == 1.0);

  // The design window itself is left empty in the background.
  for (std::size_t i = 0; i < d.design.nx; ++i)
    for (std::size_t j = 0; j < d.design.ny; ++j)
      EXPECT_EQ(d.background_occupancy(d.design.ix0 + i, d.design.iy0 + j), 0.0);

  // Init field has both solid and void regions.
  const auto [lo, hi] = min_max(d.init_signed_field);
  EXPECT_LT(lo, 0.0);
  EXPECT_GT(hi, 0.0);
  ASSERT_EQ(d.init_signed_field.nx(), d.design.nx);
  ASSERT_EQ(d.init_signed_field.ny(), d.design.ny);
}

TEST_P(device_builders, ports_are_inside_the_interior) {
  const auto [kind, res] = GetParam();
  const auto d = dev::make_device(kind, res);
  const std::size_t pml = d.pml.cells;

  auto check_port = [&](const dev::port& p) {
    if (p.axis == fdfd::port_axis::vertical) {
      EXPECT_GT(p.line, pml);
      EXPECT_LT(p.line, d.grid.nx - pml);
      EXPECT_GE(p.span_start, pml);
      EXPECT_LE(p.span_start + p.span_count, d.grid.ny - pml);
    } else {
      EXPECT_GT(p.line, pml);
      EXPECT_LT(p.line, d.grid.ny - pml);
      EXPECT_GE(p.span_start, pml);
      EXPECT_LE(p.span_start + p.span_count, d.grid.nx - pml);
    }
  };
  for (const auto& exc : d.excitations) {
    check_port(exc.source);
    check_port(exc.reference_monitor.p);
    for (const auto& mm : exc.mode_monitors) check_port(mm.p);
    for (const auto& fm : exc.flux_monitors) {
      EXPECT_GT(fm.index, pml);
      EXPECT_GE(fm.span_start, pml / 2);
    }
  }
}

TEST_P(device_builders, objective_references_defined_metrics_and_monitors) {
  const auto [kind, res] = GetParam();
  const auto d = dev::make_device(kind, res);

  std::set<std::string> monitor_names;
  for (const auto& exc : d.excitations) {
    for (const auto& mm : exc.mode_monitors) monitor_names.insert(exc.name + "." + mm.name);
    for (const auto& fm : exc.flux_monitors) monitor_names.insert(exc.name + "." + fm.name);
  }
  std::set<std::string> metric_names;
  for (const auto& m : d.objective.metrics) {
    metric_names.insert(m.name);
    for (const auto& t : m.terms)
      EXPECT_TRUE(monitor_names.count(t.monitor)) << "unknown monitor " << t.monitor;
  }
  if (d.objective.kind == dev::objective_kind::maximize_metric) {
    EXPECT_TRUE(metric_names.count(d.objective.primary));
    EXPECT_TRUE(metric_names.count(d.objective.fom_metric));
  } else {
    EXPECT_TRUE(metric_names.count(d.objective.primary));
    EXPECT_TRUE(metric_names.count(d.objective.secondary));
    EXPECT_EQ(d.objective.fom_metric, "contrast");
  }
  for (const auto& pen : d.objective.dense_penalties)
    EXPECT_TRUE(metric_names.count(pen.metric)) << "penalty on unknown metric " << pen.metric;
}

INSTANTIATE_TEST_SUITE_P(
    all, device_builders,
    ::testing::Values(device_case{dev::device_kind::bend, 0.05},
                      device_case{dev::device_kind::bend, 0.1},
                      device_case{dev::device_kind::crossing, 0.05},
                      device_case{dev::device_kind::crossing, 0.1},
                      device_case{dev::device_kind::isolator, 0.05},
                      device_case{dev::device_kind::isolator, 0.1}));

TEST(devices, names_match_paper_benchmarks) {
  EXPECT_STREQ(dev::to_string(dev::device_kind::bend), "bending");
  EXPECT_STREQ(dev::to_string(dev::device_kind::crossing), "crossing");
  EXPECT_STREQ(dev::to_string(dev::device_kind::isolator), "isolator");
}

TEST(devices, isolator_has_forward_and_backward_excitations) {
  const auto d = dev::make_isolator(0.1);
  ASSERT_EQ(d.excitations.size(), 2u);
  EXPECT_EQ(d.excitations[0].name, "fwd");
  EXPECT_EQ(d.excitations[1].name, "bwd");
  EXPECT_EQ(d.excitations[0].source.direction, +1);
  EXPECT_EQ(d.excitations[1].source.direction, -1);
  EXPECT_EQ(d.excitations[0].mode_monitors.at(0).mode_order, 3);  // TM3 out
  EXPECT_EQ(d.excitations[1].mode_monitors.at(0).mode_order, 1);  // TM1 back
  EXPECT_TRUE(d.objective.fom_lower_better);
}

TEST(devices, bend_init_traces_the_arc) {
  const auto d = dev::make_bend(0.05);
  const auto& f = d.init_signed_field;
  // Solid near the arc (e.g. bottom-left entry region aligned with the input
  // waveguide centerline), void in the far corner.
  EXPECT_GT(f(0, 7), 0.0);           // entry at y ~= 1.8 um (design-local)
  EXPECT_LT(f(f.nx() - 1, 0), 0.0);  // bottom-right far from the arc
}

TEST(devices, crossing_is_symmetric_under_xy_swap) {
  const auto d = dev::make_crossing(0.05);
  for (std::size_t i = 0; i < d.grid.nx; ++i)
    for (std::size_t j = 0; j < d.grid.ny; ++j)
      EXPECT_EQ(d.background_occupancy(i, j), d.background_occupancy(j, i));
}

TEST(devices, invalid_resolution_rejected) {
  EXPECT_THROW(dev::make_bend(0.0), bad_argument);
  EXPECT_THROW(dev::make_crossing(0.5), bad_argument);
}

// ------------------------------------------------------------------- io ----

TEST(csv, writes_header_and_rows) {
  const std::string path = ::testing::TempDir() + "boson_test.csv";
  {
    io::csv_writer w(path, {"name", "a", "b"});
    w.write_row({"row1", "1.5", "2"});
    w.write_row("row2", {3.25, -4.0});
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "name,a,b");
  std::getline(in, line);
  EXPECT_EQ(line, "row1,1.5,2");
  std::getline(in, line);
  EXPECT_EQ(line, "row2,3.25,-4");
  std::remove(path.c_str());
}

TEST(csv, escapes_cells_with_commas) {
  const std::string path = ::testing::TempDir() + "boson_escape.csv";
  {
    io::csv_writer w(path, {"x", "y"});
    w.write_row({"hello, world", "plain"});
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  std::getline(in, line);
  EXPECT_EQ(line, "\"hello, world\",plain");
  std::remove(path.c_str());
}

TEST(csv, column_mismatch_throws) {
  const std::string path = ::testing::TempDir() + "boson_cols.csv";
  io::csv_writer w(path, {"a", "b"});
  EXPECT_THROW(w.write_row({"only-one"}), bad_argument);
  std::remove(path.c_str());
}

TEST(table, renders_aligned_columns) {
  io::console_table t({"model", "fom"});
  t.add_row({"Density", io::console_table::sci(4.89e-6)});
  t.add_row({"BOSON-1", io::console_table::num(0.9671, 4)});
  const std::string text = t.render("Table X");
  EXPECT_NE(text.find("Table X"), std::string::npos);
  EXPECT_NE(text.find("Density"), std::string::npos);
  EXPECT_NE(text.find("4.89e-06"), std::string::npos);
  EXPECT_NE(text.find("0.9671"), std::string::npos);
  // All data lines share the same width.
  std::size_t first_len = std::string::npos;
  std::size_t pos = text.find('\n') + 1;  // skip title
  while (pos < text.size()) {
    const std::size_t next = text.find('\n', pos);
    if (next == std::string::npos) break;
    const std::size_t len = next - pos;
    if (first_len == std::string::npos) first_len = len;
    EXPECT_EQ(len, first_len);
    pos = next + 1;
  }
}

TEST(pgm, writes_valid_header_and_size) {
  const std::string path = ::testing::TempDir() + "boson_test.pgm";
  array2d<double> img(8, 4);
  for (std::size_t i = 0; i < img.size(); ++i) img.data()[i] = static_cast<double>(i) / 31.0;
  io::write_pgm(path, img);
  std::ifstream in(path, std::ios::binary);
  std::string magic;
  in >> magic;
  EXPECT_EQ(magic, "P5");
  std::size_t w, h, maxval;
  in >> w >> h >> maxval;
  EXPECT_EQ(w, 8u);
  EXPECT_EQ(h, 4u);
  EXPECT_EQ(maxval, 255u);
  in.get();  // single whitespace after header
  std::string pixels((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  EXPECT_EQ(pixels.size(), 32u);
  std::remove(path.c_str());
}

TEST(json, scalars_and_strings_serialize) {
  EXPECT_EQ(io::json_value(true).dump(), "true");
  EXPECT_EQ(io::json_value(2.5).dump(), "2.5");
  EXPECT_EQ(io::json_value(42).dump(), "42");
  EXPECT_EQ(io::json_value("hi").dump(), "\"hi\"");
  EXPECT_EQ(io::json_value().dump(), "null");
}

TEST(json, escapes_special_characters) {
  EXPECT_EQ(io::json_value("a\"b\\c\nd").dump(), "\"a\\\"b\\\\c\\nd\"");
}

TEST(json, nan_becomes_null) {
  EXPECT_EQ(io::json_value(std::nan("")).dump(), "null");
}

TEST(json, objects_preserve_insertion_order) {
  auto obj = io::json_value::object();
  obj["zeta"] = 1;
  obj["alpha"] = 2;
  const std::string compact = obj.dump(-1);
  EXPECT_EQ(compact, "{\"zeta\":1,\"alpha\":2}");
}

TEST(json, nested_structures) {
  auto root = io::json_value::object();
  root["name"] = "table1";
  auto& rows = root["rows"];
  auto row = io::json_value::object();
  row["model"] = "BOSON-1";
  row["fom"] = 0.967;
  rows.push_back(std::move(row));
  const std::string compact = root.dump(-1);
  EXPECT_EQ(compact, "{\"name\":\"table1\",\"rows\":[{\"model\":\"BOSON-1\",\"fom\":0.967}]}");
  // Pretty output contains newlines and indentation.
  const std::string pretty = root.dump(2);
  EXPECT_NE(pretty.find("\n  \"name\""), std::string::npos);
}

TEST(json, from_map_and_file_round_trip) {
  const std::map<std::string, double> metrics{{"a", 1.0}, {"b", -2.5}};
  auto obj = io::json_value::from_map(metrics);
  EXPECT_EQ(obj.dump(-1), "{\"a\":1,\"b\":-2.5}");
  const std::string path = ::testing::TempDir() + "boson_test.json";
  obj.write_file(path);
  std::ifstream in(path);
  std::string content((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  EXPECT_NE(content.find("\"b\": -2.5"), std::string::npos);
  std::remove(path.c_str());
}

TEST(json, type_misuse_throws) {
  io::json_value num(1.0);
  EXPECT_THROW(num["key"], bad_argument);
  EXPECT_THROW(num.push_back(io::json_value(2.0)), bad_argument);
}

TEST(pgm, clamps_out_of_range_values) {
  const std::string path = ::testing::TempDir() + "boson_clamp.pgm";
  array2d<double> img(2, 2);
  img(0, 0) = -5.0;
  img(1, 1) = 7.0;
  EXPECT_NO_THROW(io::write_pgm(path, img));
  EXPECT_THROW(io::write_pgm(path, img, 1.0, 1.0), bad_argument);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace boson
