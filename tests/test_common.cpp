#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <map>
#include <mutex>
#include <set>
#include <thread>

#include "common/array2d.h"
#include "common/env.h"
#include "common/error.h"
#include "common/log.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "common/text.h"
#include "common/timer.h"

namespace boson {
namespace {

// ---------------------------------------------------------------- error ----

TEST(error, require_throws_bad_argument) {
  EXPECT_THROW(require(false, "boom"), bad_argument);
  EXPECT_NO_THROW(require(true, "fine"));
}

TEST(error, check_numeric_throws_numeric_error) {
  EXPECT_THROW(check_numeric(false, "nan"), numeric_error);
  EXPECT_NO_THROW(check_numeric(true, "ok"));
}

TEST(error, hierarchy_is_catchable_as_base) {
  try {
    throw numeric_error("x");
  } catch (const error& e) {
    EXPECT_STREQ(e.what(), "x");
    return;
  }
  FAIL() << "numeric_error not caught as boson::error";
}

// ------------------------------------------------------------------ env ----

TEST(env, string_fallback_when_unset) {
  ::unsetenv("BOSON_TEST_VAR");
  EXPECT_EQ(env_string("BOSON_TEST_VAR", "dflt"), "dflt");
  ::setenv("BOSON_TEST_VAR", "abc", 1);
  EXPECT_EQ(env_string("BOSON_TEST_VAR", "dflt"), "abc");
  ::unsetenv("BOSON_TEST_VAR");
}

TEST(env, int_parses_and_falls_back) {
  ::setenv("BOSON_TEST_INT", "42", 1);
  EXPECT_EQ(env_int("BOSON_TEST_INT", 7), 42);
  ::setenv("BOSON_TEST_INT", "notanumber", 1);
  EXPECT_EQ(env_int("BOSON_TEST_INT", 7), 7);
  ::unsetenv("BOSON_TEST_INT");
  EXPECT_EQ(env_int("BOSON_TEST_INT", -3), -3);
}

TEST(env, double_parses) {
  ::setenv("BOSON_TEST_DBL", "0.25", 1);
  EXPECT_DOUBLE_EQ(env_double("BOSON_TEST_DBL", 1.0), 0.25);
  ::unsetenv("BOSON_TEST_DBL");
  EXPECT_DOUBLE_EQ(env_double("BOSON_TEST_DBL", 1.5), 1.5);
}

TEST(env, flag_recognizes_truthy_values) {
  for (const char* v : {"1", "true", "yes", "on", "TRUE", "Yes"}) {
    ::setenv("BOSON_TEST_FLAG", v, 1);
    EXPECT_TRUE(env_flag("BOSON_TEST_FLAG")) << v;
  }
  for (const char* v : {"0", "false", "off", "nope"}) {
    ::setenv("BOSON_TEST_FLAG", v, 1);
    EXPECT_FALSE(env_flag("BOSON_TEST_FLAG")) << v;
  }
  ::unsetenv("BOSON_TEST_FLAG");
}

// -------------------------------------------------------------- array2d ----

TEST(array2d, shape_and_indexing) {
  array2d<double> a(3, 5, 1.5);
  EXPECT_EQ(a.nx(), 3u);
  EXPECT_EQ(a.ny(), 5u);
  EXPECT_EQ(a.size(), 15u);
  EXPECT_DOUBLE_EQ(a(2, 4), 1.5);
  a(1, 2) = -2.0;
  EXPECT_DOUBLE_EQ(a.at(1, 2), -2.0);
  EXPECT_EQ(a.index(1, 2), 1 * 5 + 2u);
}

TEST(array2d, at_checks_bounds) {
  array2d<int> a(2, 2);
  EXPECT_THROW(a.at(2, 0), bad_argument);
  EXPECT_THROW(a.at(0, 2), bad_argument);
}

TEST(array2d, default_constructed_is_empty) {
  array2d<double> a;
  EXPECT_TRUE(a.empty());
  EXPECT_EQ(a.size(), 0u);
}

TEST(array2d, add_scaled_accumulates) {
  array2d<double> a(2, 2, 1.0);
  array2d<double> b(2, 2, 2.0);
  add_scaled(a, 0.5, b);
  for (const double v : a) EXPECT_DOUBLE_EQ(v, 2.0);
}

TEST(array2d, add_scaled_rejects_shape_mismatch) {
  array2d<double> a(2, 2);
  array2d<double> b(2, 3);
  EXPECT_THROW(add_scaled(a, 1.0, b), bad_argument);
}

TEST(array2d, total_and_min_max) {
  array2d<double> a(2, 3, 1.0);
  a(0, 0) = -4.0;
  a(1, 2) = 9.0;
  EXPECT_DOUBLE_EQ(total(a), -4.0 + 9.0 + 4.0);
  const auto [lo, hi] = min_max(a);
  EXPECT_DOUBLE_EQ(lo, -4.0);
  EXPECT_DOUBLE_EQ(hi, 9.0);
}

TEST(array2d, same_shape_across_types) {
  array2d<double> a(4, 6);
  array2d<cplx> b(4, 6);
  array2d<cplx> c(6, 4);
  EXPECT_TRUE(a.same_shape(b));
  EXPECT_FALSE(a.same_shape(c));
}

// ------------------------------------------------------------------ rng ----

TEST(rng, deterministic_given_seed) {
  rng a(123), b(123);
  for (int i = 0; i < 16; ++i) EXPECT_DOUBLE_EQ(a.uniform(0, 1), b.uniform(0, 1));
}

TEST(rng, uniform_respects_bounds) {
  rng r(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = r.uniform(-2.0, 3.0);
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(rng, uniform_int_covers_range) {
  rng r(9);
  std::set<long> seen;
  for (int i = 0; i < 300; ++i) seen.insert(r.uniform_int(0, 2));
  EXPECT_EQ(seen.size(), 3u);
  EXPECT_TRUE(seen.count(0) && seen.count(1) && seen.count(2));
}

TEST(rng, normal_moments_are_sane) {
  rng r(11);
  double sum = 0.0, sum2 = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = r.normal();
    sum += v;
    sum2 += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum2 / n, 1.0, 0.05);
}

TEST(rng, fork_streams_are_distinct_and_deterministic) {
  rng base(42);
  rng f1 = base.fork(1);
  rng f2 = base.fork(2);
  rng f1b = rng(42).fork(1);
  const double a = f1.uniform(0, 1);
  EXPECT_NE(a, f2.uniform(0, 1));
  EXPECT_DOUBLE_EQ(a, f1b.uniform(0, 1));
}

TEST(rng, invalid_ranges_throw) {
  rng r(1);
  EXPECT_THROW(r.uniform(1.0, 0.0), bad_argument);
  EXPECT_THROW(r.uniform_int(3, 2), bad_argument);
}

TEST(rng, normal_vector_has_requested_size) {
  rng r(5);
  EXPECT_EQ(r.normal_vector(17).size(), 17u);
}

// ------------------------------------------------------------- parallel ----

TEST(parallel, runs_every_index_exactly_once) {
  std::vector<std::atomic<int>> hits(257);
  parallel_for(hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(parallel, zero_iterations_is_noop) {
  bool touched = false;
  parallel_for(0, [&](std::size_t) { touched = true; });
  EXPECT_FALSE(touched);
}

TEST(parallel, propagates_first_exception) {
  EXPECT_THROW(
      parallel_for(64, [&](std::size_t i) {
        if (i == 13) throw numeric_error("worker failure");
      }),
      numeric_error);
}

TEST(parallel, worker_count_is_positive_and_bounded) {
  EXPECT_GE(worker_count(), 1u);
  EXPECT_LE(worker_count(), std::max(1u, std::thread::hardware_concurrency()));
}

TEST(parallel, single_item_runs_inline) {
  int count = 0;
  parallel_for(1, [&](std::size_t) { ++count; });
  EXPECT_EQ(count, 1);
}

TEST(parallel, dynamic_scheduling_drains_uneven_work_around_a_slow_index) {
  if (worker_count() < 2) GTEST_SKIP() << "needs at least two workers";
  // Index 0 sleeps; with atomic-counter scheduling the other workers drain
  // the remaining indices meanwhile, so the slow index's thread ends up with
  // far fewer than a static contiguous share of the work.
  constexpr std::size_t n = 64;
  std::mutex mu;
  std::map<std::thread::id, std::size_t> per_thread;
  std::thread::id slow_tid;
  parallel_for(n, [&](std::size_t i) {
    if (i == 0) std::this_thread::sleep_for(std::chrono::milliseconds(100));
    const std::lock_guard<std::mutex> lock(mu);
    if (i == 0) slow_tid = std::this_thread::get_id();
    ++per_thread[std::this_thread::get_id()];
  });
  std::size_t ran = 0;
  for (const auto& [tid, cnt] : per_thread) ran += cnt;
  EXPECT_EQ(ran, n);
  EXPECT_GE(per_thread.size(), 2u);
  EXPECT_LT(per_thread.at(slow_tid), n / 4)
      << "slow index's worker should not accumulate a static share";
}

TEST(parallel, stops_handing_out_work_after_a_failure) {
  // With one worker the loop runs inline, so the failure point is exact:
  // indices past the throwing one must never start.
  ASSERT_EQ(setenv("BOSON_THREADS", "1", 1), 0);
  std::atomic<std::size_t> started{0};
  EXPECT_THROW(parallel_for(1000,
                            [&](std::size_t i) {
                              started.fetch_add(1);
                              if (i == 5) throw numeric_error("boom");
                            }),
               numeric_error);
  unsetenv("BOSON_THREADS");
  EXPECT_EQ(started.load(), 6u);
}

TEST(parallel, worker_count_tracks_boson_threads_at_runtime) {
  ASSERT_EQ(setenv("BOSON_THREADS", "1", 1), 0);
  EXPECT_EQ(worker_count(), 1u);
  ASSERT_EQ(setenv("BOSON_THREADS", "2", 1), 0);
  EXPECT_EQ(worker_count(),
            std::min<std::size_t>(2, std::max(1u, std::thread::hardware_concurrency())));
  unsetenv("BOSON_THREADS");
  EXPECT_EQ(worker_count(), std::max<std::size_t>(1, std::thread::hardware_concurrency()));
}

// ---------------------------------------------------------------- timer ----

TEST(timer, measures_nonnegative_elapsed_time) {
  stopwatch sw;
  EXPECT_GE(sw.seconds(), 0.0);
  sw.reset();
  EXPECT_GE(sw.seconds(), 0.0);
  EXPECT_LT(sw.seconds(), 5.0);
}

// ------------------------------------------------------------------ log ----

TEST(log, level_round_trip) {
  const log_level before = current_log_level();
  set_log_level(log_level::err);
  EXPECT_EQ(current_log_level(), log_level::err);
  set_log_level(before);
}

TEST(log, suppressed_levels_do_not_crash) {
  const log_level before = current_log_level();
  set_log_level(log_level::off);
  log_debug("hidden ", 1);
  log_info("hidden ", 2.5);
  log_warn("hidden ", "three");
  log_error("hidden");
  set_log_level(before);
  SUCCEED();
}

// ------------------------------------------------------------------ text ---

TEST(text, edit_distance_counts_single_edits) {
  EXPECT_EQ(edit_distance("", ""), 0u);
  EXPECT_EQ(edit_distance("abc", "abc"), 0u);
  EXPECT_EQ(edit_distance("abc", ""), 3u);
  EXPECT_EQ(edit_distance("", "ab"), 2u);
  EXPECT_EQ(edit_distance("kitten", "sitting"), 3u);
  EXPECT_EQ(edit_distance("boson", "bosom"), 1u);
  EXPECT_EQ(edit_distance("adaptve", "adaptive"), 1u);
}

TEST(text, closest_match_rejects_implausible_typos) {
  const std::vector<std::string> keys{"adaptive", "exhaustive", "none"};
  EXPECT_EQ(closest_match("adaptve", keys), "adaptive");
  EXPECT_EQ(closest_match("exhaustiv", keys), "exhaustive");
  // Half-the-name rewrites are noise, not typos.
  EXPECT_EQ(closest_match("xyz", keys), "");
  EXPECT_EQ(closest_match("q", keys), "");
}

TEST(text, did_you_mean_formats_or_stays_silent) {
  const std::vector<std::string> keys{"bend", "crossing", "isolator"};
  EXPECT_EQ(did_you_mean("bendd", keys), "; did you mean 'bend'?");
  EXPECT_EQ(did_you_mean("zzzzzz", keys), "");
}

}  // namespace
}  // namespace boson
