#include "fdfd/monitor.h"

#include <utility>

#include "common/error.h"

namespace boson::fdfd {

mode_power_monitor::mode_power_monitor(port_axis axis, std::size_t line_index,
                                       std::size_t span_start, modes::slab_mode mode,
                                       double transverse_spacing, double k0,
                                       double normal_spacing)
    : axis_(axis),
      line_index_(line_index),
      span_start_(span_start),
      mode_(std::move(mode)),
      spacing_(transverse_spacing),
      power_factor_(modes::mode_power_factor(mode_, k0, normal_spacing)) {
  require(spacing_ > 0.0, "mode_power_monitor: invalid spacing");
}

cplx mode_power_monitor::amplitude(const array2d<cplx>& field) const {
  const std::size_t span = mode_.profile.size();
  cplx a{};
  if (axis_ == port_axis::vertical) {
    require(line_index_ < field.nx() && span_start_ + span <= field.ny(),
            "mode_power_monitor: out of range");
    for (std::size_t t = 0; t < span; ++t)
      a += mode_.profile[t] * field(line_index_, span_start_ + t);
  } else {
    require(line_index_ < field.ny() && span_start_ + span <= field.nx(),
            "mode_power_monitor: out of range");
    for (std::size_t t = 0; t < span; ++t)
      a += mode_.profile[t] * field(span_start_ + t, line_index_);
  }
  return a * spacing_;
}

monitor_result mode_power_monitor::evaluate(const array2d<cplx>& field) const {
  const cplx a = amplitude(field);
  monitor_result result;
  result.value = power_factor_ * std::norm(a);

  // value = pf * a conj(a) with a = spacing * sum phi_t E_t:
  // dvalue/dE_t = pf * conj(a) * spacing * phi_t.
  const std::size_t span = mode_.profile.size();
  result.grad.reserve(span);
  const cplx common = power_factor_ * std::conj(a) * spacing_;
  for (std::size_t t = 0; t < span; ++t) {
    const std::size_t idx =
        axis_ == port_axis::vertical
            ? line_index_ * field.ny() + (span_start_ + t)
            : (span_start_ + t) * field.ny() + line_index_;
    result.grad.emplace_back(idx, common * mode_.profile[t]);
  }
  return result;
}

flux_monitor::flux_monitor(port_axis axis, std::size_t index, std::size_t span_start,
                           std::size_t span_count, double normal_spacing,
                           double transverse_spacing, double k0)
    : axis_(axis),
      index_(index),
      span_start_(span_start),
      span_count_(span_count),
      dn_(normal_spacing),
      dt_(transverse_spacing),
      k0_(k0) {
  require(span_count_ > 0, "flux_monitor: empty span");
  require(dn_ > 0.0 && dt_ > 0.0 && k0_ > 0.0, "flux_monitor: invalid geometry");
}

monitor_result flux_monitor::evaluate(const array2d<cplx>& field) const {
  monitor_result result;
  result.grad.reserve(2 * span_count_);
  const double prefactor = dt_ / (4.0 * k0_);  // (dt/(2 k0)) * (1/2 from Re)

  for (std::size_t t = 0; t < span_count_; ++t) {
    std::size_t idx_p, idx_q;  // cells on the low/high side of the interface
    if (axis_ == port_axis::vertical) {
      require(index_ + 1 < field.nx() && span_start_ + t < field.ny(),
              "flux_monitor: out of range");
      idx_p = index_ * field.ny() + (span_start_ + t);
      idx_q = (index_ + 1) * field.ny() + (span_start_ + t);
    } else {
      require(index_ + 1 < field.ny() && span_start_ + t < field.nx(),
              "flux_monitor: out of range");
      idx_p = (span_start_ + t) * field.ny() + index_;
      idx_q = (span_start_ + t) * field.ny() + index_ + 1;
    }
    const cplx ep = field.raw()[idx_p];
    const cplx eq = field.raw()[idx_q];
    const cplx u = 0.5 * (ep + eq);
    const cplx v = (eq - ep) / dn_;

    // Contribution (dt/(2 k0)) Re(i u conj(v)) = prefactor * (z + conj(z)),
    // z = i u conj(v).
    const cplx z = imag_unit * u * std::conj(v);
    result.value += prefactor * 2.0 * z.real();

    // Wirtinger derivatives of prefactor * (z + conj(z)):
    //  d/de_p = prefactor * (i conj(v)/2 + i conj(u)/dn)
    //  d/de_q = prefactor * (i conj(v)/2 - i conj(u)/dn)
    const cplx icv = imag_unit * std::conj(v);
    const cplx icu = imag_unit * std::conj(u);
    result.grad.emplace_back(idx_p, prefactor * (0.5 * icv + icu / dn_));
    result.grad.emplace_back(idx_q, prefactor * (0.5 * icv - icu / dn_));
  }
  return result;
}

}  // namespace boson::fdfd
