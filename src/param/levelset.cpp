#include "param/levelset.h"

#include <cmath>

#include "common/error.h"
#include "param/filters.h"

namespace boson::param {

levelset_param::levelset_param(std::size_t knots_x, std::size_t knots_y,
                               std::size_t design_nx, std::size_t design_ny, double beta)
    : knots_x_(knots_x),
      knots_y_(knots_y),
      design_nx_(design_nx),
      design_ny_(design_ny),
      beta_(beta) {
  require(knots_x >= 2 && knots_y >= 2, "levelset_param: need at least 2x2 knots");
  require(design_nx >= knots_x && design_ny >= knots_y,
          "levelset_param: design grid coarser than knots");
}

levelset_param::weight4 levelset_param::weights_at(std::size_t ix, std::size_t iy) const {
  // Map design-cell centers onto the knot lattice [0, knots-1].
  const double u = design_nx_ > 1
                       ? static_cast<double>(ix) * static_cast<double>(knots_x_ - 1) /
                             static_cast<double>(design_nx_ - 1)
                       : 0.0;
  const double v = design_ny_ > 1
                       ? static_cast<double>(iy) * static_cast<double>(knots_y_ - 1) /
                             static_cast<double>(design_ny_ - 1)
                       : 0.0;
  std::size_t ku = static_cast<std::size_t>(u);
  std::size_t kv = static_cast<std::size_t>(v);
  if (ku >= knots_x_ - 1) ku = knots_x_ - 2;
  if (kv >= knots_y_ - 1) kv = knots_y_ - 2;
  const double fu = u - static_cast<double>(ku);
  const double fv = v - static_cast<double>(kv);

  weight4 w;
  w.k00 = ku * knots_y_ + kv;
  w.k01 = ku * knots_y_ + kv + 1;
  w.k10 = (ku + 1) * knots_y_ + kv;
  w.k11 = (ku + 1) * knots_y_ + kv + 1;
  w.w00 = (1.0 - fu) * (1.0 - fv);
  w.w01 = (1.0 - fu) * fv;
  w.w10 = fu * (1.0 - fv);
  w.w11 = fu * fv;
  return w;
}

void levelset_param::interpolate(const dvec& theta, array2d<double>& phi) const {
  require(theta.size() == num_params(), "levelset_param: theta size mismatch");
  if (phi.nx() != design_nx_ || phi.ny() != design_ny_)
    phi = array2d<double>(design_nx_, design_ny_);
  for (std::size_t ix = 0; ix < design_nx_; ++ix) {
    for (std::size_t iy = 0; iy < design_ny_; ++iy) {
      const weight4 w = weights_at(ix, iy);
      phi(ix, iy) = w.w00 * theta[w.k00] + w.w01 * theta[w.k01] + w.w10 * theta[w.k10] +
                    w.w11 * theta[w.k11];
    }
  }
}

void levelset_param::forward(const dvec& theta, array2d<double>& rho) const {
  interpolate(theta, rho);
  for (auto& v : rho) v = sigmoid(beta_ * v);
}

void levelset_param::backward(const dvec& theta, const array2d<double>& d_rho,
                              dvec& d_theta) const {
  require(theta.size() == num_params(), "levelset_param: theta size mismatch");
  require(d_rho.nx() == design_nx_ && d_rho.ny() == design_ny_,
          "levelset_param: d_rho shape mismatch");
  if (d_theta.size() != num_params()) d_theta.assign(num_params(), 0.0);

  for (std::size_t ix = 0; ix < design_nx_; ++ix) {
    for (std::size_t iy = 0; iy < design_ny_; ++iy) {
      const weight4 w = weights_at(ix, iy);
      const double phi = w.w00 * theta[w.k00] + w.w01 * theta[w.k01] +
                         w.w10 * theta[w.k10] + w.w11 * theta[w.k11];
      const double s = sigmoid(beta_ * phi);
      const double chain = d_rho(ix, iy) * beta_ * sigmoid_derivative_from_value(s);
      d_theta[w.k00] += chain * w.w00;
      d_theta[w.k01] += chain * w.w01;
      d_theta[w.k10] += chain * w.w10;
      d_theta[w.k11] += chain * w.w11;
    }
  }
}

dvec levelset_param::fit_from_field(const array2d<double>& signed_field) const {
  require(signed_field.nx() == design_nx_ && signed_field.ny() == design_ny_,
          "levelset_param: field shape mismatch");
  dvec theta(num_params(), 0.0);
  for (std::size_t ku = 0; ku < knots_x_; ++ku) {
    for (std::size_t kv = 0; kv < knots_y_; ++kv) {
      // Nearest design cell to this knot.
      const std::size_t ix = knots_x_ > 1
                                 ? (ku * (design_nx_ - 1)) / (knots_x_ - 1)
                                 : 0;
      const std::size_t iy = knots_y_ > 1
                                 ? (kv * (design_ny_ - 1)) / (knots_y_ - 1)
                                 : 0;
      theta[ku * knots_y_ + kv] = signed_field(ix, iy);
    }
  }
  return theta;
}

}  // namespace boson::param
