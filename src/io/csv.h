#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace boson::io {

/// Minimal CSV writer used by the bench harnesses to emit the series behind
/// every reproduced table/figure. Values are written with full double
/// precision; strings are quoted only when they contain separators.
class csv_writer {
 public:
  csv_writer(const std::string& path, const std::vector<std::string>& header);
  ~csv_writer();

  csv_writer(const csv_writer&) = delete;
  csv_writer& operator=(const csv_writer&) = delete;

  /// Write one row of already-formatted cells.
  void write_row(const std::vector<std::string>& cells);

  /// Convenience: label followed by numeric columns.
  void write_row(const std::string& label, const std::vector<double>& values);

  const std::string& path() const { return path_; }

  static std::string format(double value);

 private:
  std::string path_;
  std::ofstream out_;
  std::size_t columns_;
};

}  // namespace boson::io
