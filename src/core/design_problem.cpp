#include "core/design_problem.h"

#include <cmath>
#include <cstring>
#include <deque>
#include <mutex>

#include "common/error.h"
#include "common/log.h"
#include "fab/morphology.h"
#include "fab/temperature.h"
#include "fdfd/monitor.h"
#include "fdfd/solver.h"
#include "fdfd/source.h"
#include "modes/slab.h"
#include "sim/cache.h"
#include "sim/engine.h"
#include "sim/workspace.h"

namespace boson::core {

namespace {

/// Permittivity cross-section along a port line.
dvec eps_line_at(const array2d<double>& eps, const dev::port& p) {
  dvec line(p.span_count);
  if (p.axis == fdfd::port_axis::vertical) {
    for (std::size_t t = 0; t < p.span_count; ++t) line[t] = eps(p.line, p.span_start + t);
  } else {
    for (std::size_t t = 0; t < p.span_count; ++t) line[t] = eps(p.span_start + t, p.line);
  }
  return line;
}

modes::slab_mode solve_port_mode(const array2d<double>& eps, const dev::port& p,
                                 double spacing, double k0, int order) {
  require(order >= 1, "solve_port_mode: order must be >= 1");
  const dvec line = eps_line_at(eps, p);
  auto ms = modes::solve_slab_modes(line, spacing, k0, static_cast<std::size_t>(order) + 3);
  check_numeric(ms.size() >= static_cast<std::size_t>(order),
                "solve_port_mode: requested mode order not guided at this cross-section");
  return ms[static_cast<std::size_t>(order) - 1];
}

struct objective_eval {
  double loss = 0.0;
  std::map<std::string, double> metrics;
  std::map<std::string, double> d_metric;  ///< dLoss/dmetric
};

constexpr double ratio_eps = 1e-4;  ///< stabilizes the contrast denominator

objective_eval eval_objective(const dev::objective_spec& obj,
                              const std::map<std::string, double>& monitors,
                              const eval_options& opts) {
  objective_eval out;
  for (const auto& m : obj.metrics) {
    double v = m.constant;
    for (const auto& t : m.terms) v += t.coeff * monitors.at(t.monitor);
    out.metrics[m.name] = v;
  }

  if (!opts.objective_override.empty()) {
    const double v = out.metrics.at(opts.objective_override);
    out.loss = 1.0 - v;
    out.d_metric[opts.objective_override] += -1.0;
  } else if (obj.kind == dev::objective_kind::maximize_metric) {
    const double v = out.metrics.at(obj.primary);
    out.loss = 1.0 - v;
    out.d_metric[obj.primary] += -1.0;
  } else {
    const double num = out.metrics.at(obj.primary);
    const double den = out.metrics.at(obj.secondary);
    const double den_s = den + ratio_eps;
    out.loss = num / den_s;
    out.d_metric[obj.primary] += 1.0 / den_s;
    out.d_metric[obj.secondary] += -num / (den_s * den_s);
  }

  if (obj.kind == dev::objective_kind::minimize_ratio) {
    const double num = out.metrics.at(obj.primary);
    const double den = out.metrics.at(obj.secondary);
    out.metrics["contrast"] = num / std::max(den, 1e-12);
  }

  if (opts.dense_objectives) {
    for (const auto& pen : obj.dense_penalties) {
      const double v = out.metrics.at(pen.metric);
      out.loss += pen.value_at(v);
      const double slope = pen.slope_at(v);
      if (slope != 0.0) out.d_metric[pen.metric] += slope;
    }
  }
  return out;
}

}  // namespace

/// FIFO memos of the two expensive non-solve stages. Warm Monte-Carlo
/// samples and repeated corners re-image the same mask and re-solve the same
/// port cross-sections, so exact-match windows recover the work; entries are
/// matched on every input the stage sees, never on approximations.
struct design_problem::memo_state {
  struct litho_entry {
    std::size_t corner = 0;
    array2d<double> mask;
    fab::litho_forward fwd;
  };
  struct mode_entry {
    fdfd::port_axis axis{};
    std::size_t line = 0;
    std::size_t span_start = 0;
    double spacing = 0.0;
    int order = 0;
    dvec line_eps;
    modes::slab_mode mode;
  };
  static constexpr std::size_t litho_capacity = 8;
  static constexpr std::size_t mode_capacity = 32;
  std::mutex mutex;
  std::deque<litho_entry> litho;
  std::deque<mode_entry> modes;
};

fab::litho_forward design_problem::litho_forward_memo(std::size_t corner_index,
                                                      const array2d<double>& mask_ext,
                                                      bool use_memo) const {
  const fab::hopkins_litho& model = *fab_.litho[corner_index];
  if (!use_memo) return model.forward(mask_ext);
  {
    const std::lock_guard<std::mutex> lock(memo_->mutex);
    for (const auto& e : memo_->litho) {
      if (e.corner != corner_index || e.mask.size() != mask_ext.size()) continue;
      if (std::memcmp(e.mask.data(), mask_ext.data(),
                      mask_ext.size() * sizeof(double)) != 0)
        continue;
      return e.fwd;
    }
  }
  fab::litho_forward fwd = model.forward(mask_ext);
  const std::lock_guard<std::mutex> lock(memo_->mutex);
  if (memo_->litho.size() >= memo_state::litho_capacity) memo_->litho.pop_front();
  memo_->litho.push_back({corner_index, mask_ext, fwd});
  return fwd;
}

modes::slab_mode design_problem::port_mode_memo(const array2d<double>& eps,
                                                const dev::port& p, double spacing,
                                                int order, bool use_memo) const {
  if (!use_memo) return solve_port_mode(eps, p, spacing, spec_.k0, order);
  require(order >= 1, "solve_port_mode: order must be >= 1");
  dvec line = eps_line_at(eps, p);
  {
    const std::lock_guard<std::mutex> lock(memo_->mutex);
    for (const auto& e : memo_->modes) {
      if (e.axis == p.axis && e.line == p.line && e.span_start == p.span_start &&
          e.spacing == spacing && e.order == order && e.line_eps == line)
        return e.mode;
    }
  }
  auto ms =
      modes::solve_slab_modes(line, spacing, spec_.k0, static_cast<std::size_t>(order) + 3);
  check_numeric(ms.size() >= static_cast<std::size_t>(order),
                "solve_port_mode: requested mode order not guided at this cross-section");
  modes::slab_mode mode = ms[static_cast<std::size_t>(order) - 1];
  const std::lock_guard<std::mutex> lock(memo_->mutex);
  if (memo_->modes.size() >= memo_state::mode_capacity) memo_->modes.pop_front();
  memo_->modes.push_back(
      {p.axis, p.line, p.span_start, spacing, order, std::move(line), mode});
  return mode;
}

fab_context make_fab_context(const dev::device_spec& spec,
                             const fab::litho_settings& litho_cfg,
                             const fab::eole_settings& eole_cfg,
                             const robust::variation_space& space) {
  fab_context ctx;
  ctx.litho_cfg = litho_cfg;
  ctx.litho_cfg.pixel = spec.grid.dx;
  ctx.halo = ctx.litho_cfg.kernel_half;
  ctx.space = space;

  const std::size_t ext_nx = spec.design.nx + 2 * ctx.halo;
  const std::size_t ext_ny = spec.design.ny + 2 * ctx.halo;

  for (const auto& corner : fab::standard_litho_corners(litho_cfg.corner_defocus)) {
    ctx.litho.push_back(
        std::make_shared<const fab::hopkins_litho>(ctx.litho_cfg, corner, ext_nx, ext_ny));
  }
  ctx.eole = std::make_shared<const fab::eole_field>(ext_nx, ext_ny, spec.grid.dx,
                                                     spec.grid.dy, eole_cfg);
  ctx.space.eole_terms = ctx.eole->num_terms();
  ctx.space.num_litho_corners = ctx.litho.size();
  return ctx;
}

design_problem::design_problem(dev::device_spec spec,
                               std::shared_ptr<param::parameterization> param,
                               fab_context fab, double mfs_blur_radius_cells,
                               const eval_options& reference_opts)
    : spec_(std::move(spec)),
      param_(std::move(param)),
      fab_(std::move(fab)),
      mfs_blur_(spec_.design.nx, spec_.design.ny, mfs_blur_radius_cells),
      memo_(std::make_shared<memo_state>()) {
  require(param_ != nullptr, "design_problem: parameterization required");
  require(param_->nx() == spec_.design.nx && param_->ny() == spec_.design.ny,
          "design_problem: parameterization shape must match the design window");
  spec_.design.validate_within(spec_.grid);
  require(!fab_.litho.empty(), "design_problem: no lithography corners");

  // Halo occupancy: fixed geometry around the design window, interior zero.
  const std::size_t h = fab_.halo;
  halo_occ_ = array2d<double>(spec_.design.nx + 2 * h, spec_.design.ny + 2 * h, 0.0);
  for (std::size_t ex = 0; ex < halo_occ_.nx(); ++ex) {
    for (std::size_t ey = 0; ey < halo_occ_.ny(); ++ey) {
      const bool interior = ex >= h && ex < h + spec_.design.nx && ey >= h &&
                            ey < h + spec_.design.ny;
      if (interior) continue;
      const std::ptrdiff_t gx =
          static_cast<std::ptrdiff_t>(spec_.design.ix0 + ex) - static_cast<std::ptrdiff_t>(h);
      const std::ptrdiff_t gy =
          static_cast<std::ptrdiff_t>(spec_.design.iy0 + ey) - static_cast<std::ptrdiff_t>(h);
      double occ = 0.0;
      if (gx >= 0 && gy >= 0 && gx < static_cast<std::ptrdiff_t>(spec_.grid.nx) &&
          gy < static_cast<std::ptrdiff_t>(spec_.grid.ny))
        occ = spec_.background_occupancy(static_cast<std::size_t>(gx),
                                         static_cast<std::size_t>(gy));
      halo_occ_(ex, ey) = occ;
    }
  }

  compute_input_powers(reference_opts);
}

array2d<double> design_problem::embed_in_halo(const array2d<double>& rho_design) const {
  require(rho_design.nx() == spec_.design.nx && rho_design.ny() == spec_.design.ny,
          "embed_in_halo: shape mismatch");
  array2d<double> ext = halo_occ_;
  const std::size_t h = fab_.halo;
  for (std::size_t i = 0; i < rho_design.nx(); ++i)
    for (std::size_t j = 0; j < rho_design.ny(); ++j) ext(h + i, h + j) = rho_design(i, j);
  return ext;
}

design_problem::solved_excitations design_problem::solve_excitations(
    const array2d<double>& eps, const eval_options& opts) const {
  const auto& g = spec_.grid;
  solved_excitations out;
  out.engine = opts.use_operator_cache && sim::operator_cache_enabled()
                   ? sim::engine_cache::global().acquire(g, spec_.pml, spec_.k0, eps,
                                                         opts.engine)
                   : std::make_shared<const sim::simulation_engine>(g, spec_.pml, spec_.k0,
                                                                    eps, opts.engine);

  const bool use_memo = opts.use_operator_cache && sim::operator_cache_enabled();
  auto& ws = sim::workspace::local();
  std::vector<array2d<cplx>> currents;
  currents.reserve(spec_.excitations.size());
  for (const auto& exc : spec_.excitations) {
    const double src_spacing = exc.source.axis == fdfd::port_axis::vertical ? g.dx : g.dy;
    const double src_transverse =
        exc.source.axis == fdfd::port_axis::vertical ? g.dy : g.dx;
    const auto src_mode =
        port_mode_memo(eps, exc.source, src_transverse, exc.source_mode_order, use_memo);

    array2d<cplx> current = ws.take_cgrid(g.nx, g.ny);
    fdfd::mode_source_spec ss;
    ss.axis = exc.source.axis;
    ss.line_index = exc.source.line;
    ss.span_start = exc.source.span_start;
    ss.direction = exc.source.direction;
    fdfd::add_mode_source(current, ss, src_mode, src_spacing);
    currents.push_back(std::move(current));
  }

  // All excitations of the corner share the prepared operator through one
  // blocked multi-RHS substitution (direct backend) or one ILU setup.
  out.fields = out.engine->solve_excitations(currents);
  for (auto& c : currents) ws.give_cgrid(std::move(c));
  return out;
}

void design_problem::compute_input_powers(const eval_options& reference_opts) {
  const auto& g = spec_.grid;
  const double eps_s = fab::eps_si(fab::nominal_temperature);
  array2d<double> eps(g.nx, g.ny);
  for (std::size_t i = 0; i < eps.size(); ++i)
    eps.data()[i] =
        fab::eps_void + (eps_s - fab::eps_void) * spec_.reference_occupancy.data()[i];

  const solved_excitations sol = solve_excitations(eps, reference_opts);

  input_power_.clear();
  for (std::size_t ei = 0; ei < spec_.excitations.size(); ++ei) {
    const auto& exc = spec_.excitations[ei];
    // Launched power = net Poynting flux through the reference plane. In the
    // straight reference structure the flux is exactly position-independent
    // (discrete power conservation), which makes the normalization immune to
    // the small position-dependent bias of window-truncated mode overlaps.
    const auto& rm = exc.reference_monitor;
    const double mon_normal = rm.p.axis == fdfd::port_axis::vertical ? g.dx : g.dy;
    const double mon_transverse = rm.p.axis == fdfd::port_axis::vertical ? g.dy : g.dx;
    fdfd::flux_monitor mon(rm.p.axis, rm.p.line, rm.p.span_start, rm.p.span_count,
                           mon_normal, mon_transverse, spec_.k0);
    const double pin =
        static_cast<double>(exc.source.direction) * mon.evaluate(sol.fields[ei]).value;
    check_numeric(pin > 1e-12, "design_problem: reference run launched no power");
    input_power_.push_back(pin);
    log_debug("design_problem[", spec_.name, "]: excitation '", exc.name,
              "' input power = ", pin);
  }
}

double design_problem::input_power(std::size_t excitation_index) const {
  require(excitation_index < input_power_.size(), "input_power: index out of range");
  return input_power_[excitation_index];
}

double design_problem::fom_of(const std::map<std::string, double>& metrics) const {
  return metrics.at(spec_.objective.fom_metric);
}

design_problem design_problem::at_wavelength(double lambda_um) const {
  require(lambda_um > 0.0, "at_wavelength: wavelength must be positive");
  dev::device_spec shifted = spec_;
  shifted.k0 = 2.0 * pi / lambda_um;
  return design_problem(std::move(shifted), param_, fab_);
}

eval_result design_problem::evaluate(const dvec& theta, const robust::variation_corner& corner,
                                     const eval_options& opts) const {
  return evaluate_impl(&theta, nullptr, corner, opts);
}

eval_result design_problem::evaluate_pattern(const array2d<double>& rho_design,
                                             const robust::variation_corner& corner,
                                             const eval_options& opts) const {
  return evaluate_impl(nullptr, &rho_design, corner, opts);
}

eval_result design_problem::evaluate_impl(const dvec* theta, const array2d<double>* rho_in,
                                          const robust::variation_corner& corner,
                                          const eval_options& opts) const {
  const auto& g = spec_.grid;
  const std::size_t h = fab_.halo;

  // --- forward: parameterization -------------------------------------------------
  array2d<double> rho;
  if (theta != nullptr) {
    param_->forward(*theta, rho);
  } else {
    require(rho_in != nullptr, "evaluate_impl: no design input");
    require(rho_in->nx() == spec_.design.nx && rho_in->ny() == spec_.design.ny,
            "evaluate_impl: pattern shape mismatch");
    rho = *rho_in;
  }

  array2d<double> rho_b;
  if (opts.use_mfs_blur) {
    mfs_blur_.forward(rho, rho_b);
  } else {
    rho_b = rho;
  }

  // --- forward: fabrication ------------------------------------------------------
  array2d<double> rho_final;
  fab::litho_forward litho_fwd;
  array2d<double> eta;
  const fab::hopkins_litho* litho_model = nullptr;
  fab::etch_model etch(fab_.etch_beta,
                       opts.hard_etch ? fab::etch_mode::hard
                                      : (opts.soft_etch ? fab::etch_mode::soft
                                                        : fab::etch_mode::ste));
  if (opts.fab_aware) {
    require(corner.litho >= 0 && static_cast<std::size_t>(corner.litho) < fab_.litho.size(),
            "evaluate_impl: lithography corner out of range");
    litho_model = fab_.litho[static_cast<std::size_t>(corner.litho)].get();
    const array2d<double> mask_ext = embed_in_halo(rho_b);
    litho_fwd = litho_forward_memo(static_cast<std::size_t>(corner.litho), mask_ext,
                                   opts.use_operator_cache && sim::operator_cache_enabled());
    dvec xi = corner.xi;
    if (xi.size() != fab_.eole->num_terms()) xi.assign(fab_.eole->num_terms(), 0.0);
    eta = fab_.eole->field(xi, corner.eta_shift);
    const array2d<double> pattern_ext = etch.forward(litho_fwd.aerial, eta);
    rho_final = array2d<double>(spec_.design.nx, spec_.design.ny);
    for (std::size_t i = 0; i < rho_final.nx(); ++i)
      for (std::size_t j = 0; j < rho_final.ny(); ++j)
        rho_final(i, j) = pattern_ext(h + i, h + j);
  } else {
    rho_final = rho_b;
    if (opts.morphology_shift != 0) {
      const fab::soft_morphology morph(opts.morphology_radius_cells);
      rho_final = morph.forward(rho_b, opts.morphology_shift > 0);
    }
    if (opts.binarize_ideal)
      for (auto& v : rho_final) v = v > 0.5 ? 1.0 : 0.0;
  }

  // --- forward: permittivity and field solves ------------------------------------
  auto& ws = sim::workspace::local();
  const double eps_s = fab::eps_si(corner.temperature);
  array2d<double> occ = ws.take_dgrid(g.nx, g.ny);
  std::copy(spec_.background_occupancy.begin(), spec_.background_occupancy.end(),
            occ.begin());
  for (std::size_t i = 0; i < spec_.design.nx; ++i)
    for (std::size_t j = 0; j < spec_.design.ny; ++j)
      occ(spec_.design.ix0 + i, spec_.design.iy0 + j) = rho_final(i, j);

  array2d<double> eps = ws.take_dgrid(g.nx, g.ny);
  for (std::size_t i = 0; i < eps.size(); ++i)
    eps.data()[i] = fab::eps_void + (eps_s - fab::eps_void) * occ.data()[i];

  solved_excitations sol = solve_excitations(eps, opts);
  const sim::simulation_engine& engine = *sol.engine;

  struct monitor_entry {
    std::string full_name;
    fdfd::monitor_result result;
    double norm_factor;  ///< normalized = raw * norm_factor
  };
  struct exc_run {
    array2d<cplx> field;
    std::vector<monitor_entry> monitors;
  };
  std::vector<exc_run> runs;
  std::map<std::string, double> monvals;

  for (std::size_t ei = 0; ei < spec_.excitations.size(); ++ei) {
    const auto& exc = spec_.excitations[ei];
    const double pin = input_power_[ei];

    exc_run run;
    run.field = std::move(sol.fields[ei]);

    for (const auto& mm : exc.mode_monitors) {
      const double tsp = mm.p.axis == fdfd::port_axis::vertical ? g.dy : g.dx;
      const double nsp = mm.p.axis == fdfd::port_axis::vertical ? g.dx : g.dy;
      const auto mode = port_mode_memo(eps, mm.p, tsp, mm.mode_order,
                                       opts.use_operator_cache &&
                                           sim::operator_cache_enabled());
      fdfd::mode_power_monitor mon(mm.p.axis, mm.p.line, mm.p.span_start, mode, tsp, spec_.k0,
                                   nsp);
      monitor_entry entry{exc.name + "." + mm.name, mon.evaluate(run.field), 1.0 / pin};
      monvals[entry.full_name] = entry.result.value * entry.norm_factor;
      run.monitors.push_back(std::move(entry));
    }
    for (const auto& fm : exc.flux_monitors) {
      const double nsp = fm.axis == fdfd::port_axis::vertical ? g.dx : g.dy;
      const double tsp = fm.axis == fdfd::port_axis::vertical ? g.dy : g.dx;
      fdfd::flux_monitor mon(fm.axis, fm.index, fm.span_start, fm.span_count, nsp, tsp,
                             spec_.k0);
      monitor_entry entry{exc.name + "." + fm.name, mon.evaluate(run.field), fm.sign / pin};
      monvals[entry.full_name] = entry.result.value * entry.norm_factor;
      run.monitors.push_back(std::move(entry));
    }
    runs.push_back(std::move(run));
  }
  ws.give_dgrid(std::move(eps));  // last monitor mode solved; recycle

  // --- objective -------------------------------------------------------------
  const objective_eval obj = eval_objective(spec_.objective, monvals, opts);
  eval_result out;
  out.loss = obj.loss;
  out.metrics = obj.metrics;
  out.pattern = rho_final;
  if (!opts.compute_gradient) {
    ws.give_dgrid(std::move(occ));
    return out;
  }

  // --- backward: dLoss/dmonitor --------------------------------------------------
  std::map<std::string, double> dmon;
  for (const auto& m : spec_.objective.metrics) {
    const auto it = obj.d_metric.find(m.name);
    if (it == obj.d_metric.end() || it->second == 0.0) continue;
    for (const auto& t : m.terms) dmon[t.monitor] += it->second * t.coeff;
  }

  // --- backward: adjoint solves and dLoss/deps ------------------------------------
  // All adjoints of the corner reuse the engine's prepared operator and go
  // through one blocked multi-RHS substitution.
  array2d<double> d_eps(g.nx, g.ny, 0.0);
  std::vector<fdfd::field_gradient> adjoint_rhs;
  std::vector<std::size_t> adjoint_run;
  for (std::size_t ri = 0; ri < runs.size(); ++ri) {
    fdfd::field_gradient rhs;
    for (const auto& entry : runs[ri].monitors) {
      const auto it = dmon.find(entry.full_name);
      if (it == dmon.end() || it->second == 0.0) continue;
      const double w = it->second * entry.norm_factor;
      for (const auto& [idx, gval] : entry.result.grad) rhs.emplace_back(idx, w * gval);
    }
    if (rhs.empty()) continue;
    adjoint_rhs.push_back(std::move(rhs));
    adjoint_run.push_back(ri);
  }
  if (!adjoint_rhs.empty()) {
    const std::vector<array2d<cplx>> lambdas = engine.solve_adjoints(adjoint_rhs);
    for (std::size_t k = 0; k < lambdas.size(); ++k)
      engine.accumulate_eps_gradient(runs[adjoint_run[k]].field, lambdas[k], d_eps);
  }

  // --- backward: chain into the design window ------------------------------------
  if (opts.want_var_grads) {
    double d_t = 0.0;
    const double deps_dt = fab::eps_si_dt(corner.temperature);
    for (std::size_t i = 0; i < d_eps.size(); ++i)
      d_t += d_eps.data()[i] * occ.data()[i] * deps_dt;
    out.d_temperature = d_t;
  }
  ws.give_dgrid(std::move(occ));

  array2d<double> d_rho_final(spec_.design.nx, spec_.design.ny);
  for (std::size_t i = 0; i < spec_.design.nx; ++i)
    for (std::size_t j = 0; j < spec_.design.ny; ++j)
      d_rho_final(i, j) =
          d_eps(spec_.design.ix0 + i, spec_.design.iy0 + j) * (eps_s - fab::eps_void);

  array2d<double> d_rho_b;
  if (opts.fab_aware) {
    array2d<double> d_pattern_ext(litho_fwd.aerial.nx(), litho_fwd.aerial.ny(), 0.0);
    for (std::size_t i = 0; i < spec_.design.nx; ++i)
      for (std::size_t j = 0; j < spec_.design.ny; ++j)
        d_pattern_ext(h + i, h + j) = d_rho_final(i, j);

    array2d<double> d_aerial;
    array2d<double> d_eta;
    etch.backward(litho_fwd.aerial, eta, d_pattern_ext, d_aerial, d_eta);
    if (opts.want_var_grads) out.d_xi = fab_.eole->project_gradient(d_eta);

    const array2d<double> d_mask_ext = litho_model->backward(litho_fwd, d_aerial);
    d_rho_b = array2d<double>(spec_.design.nx, spec_.design.ny);
    for (std::size_t i = 0; i < spec_.design.nx; ++i)
      for (std::size_t j = 0; j < spec_.design.ny; ++j)
        d_rho_b(i, j) = d_mask_ext(h + i, h + j);
  } else if (opts.morphology_shift != 0) {
    const fab::soft_morphology morph(opts.morphology_radius_cells);
    d_rho_b = array2d<double>(spec_.design.nx, spec_.design.ny, 0.0);
    morph.backward(rho_b, d_rho_final, opts.morphology_shift > 0, d_rho_b);
  } else {
    d_rho_b = d_rho_final;
  }

  array2d<double> d_rho;
  if (opts.use_mfs_blur) {
    mfs_blur_.adjoint(d_rho_b, d_rho);
  } else {
    d_rho = d_rho_b;
  }

  if (theta != nullptr) {
    out.grad.assign(param_->num_params(), 0.0);
    param_->backward(*theta, d_rho, out.grad);
  }
  return out;
}

}  // namespace boson::core
