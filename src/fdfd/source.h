#pragma once

#include <cstddef>

#include "common/array2d.h"
#include "common/types.h"
#include "modes/slab.h"

namespace boson::fdfd {

/// Orientation of a port cross-section: a vertical port spans y at fixed x
/// (waves travel along +-x through it); a horizontal port spans x at fixed y.
enum class port_axis { vertical, horizontal };

/// Description of a mode-launching port.
struct mode_source_spec {
  port_axis axis = port_axis::vertical;
  std::size_t line_index = 0;   ///< ix (vertical) or iy (horizontal) of the first source line
  std::size_t span_start = 0;   ///< first transverse cell covered by the profile
  int direction = +1;           ///< +1 launches toward +x/+y, -1 the other way
};

/// Stamp a *unidirectional* mode source into the current-density array.
///
/// Two parallel current lines with relative phase -exp(-i beta d) cancel the
/// backward-radiated wave, so essentially all power is launched along
/// `direction`. The companion line sits one cell toward `direction`.
void add_mode_source(array2d<cplx>& current, const mode_source_spec& spec,
                     const modes::slab_mode& mode, double spacing_along_axis);

}  // namespace boson::fdfd
