#pragma once

#include "common/array2d.h"
#include "common/types.h"

namespace boson::fab {

/// Grayscale morphological operators with a disk structuring element.
///
/// Uniform dilation/erosion of the device geometry is the variation model of
/// the *prior-art* robust inverse design flows the paper compares against
/// (refs [1], [7], [20]): over-etch shrinks the pattern (erosion), under-etch
/// grows it (dilation), identically everywhere. BOSON-1's EOLE threshold
/// field generalizes this to spatially-varying errors; the operators here
/// power the "LS-ED" baseline and its tests.
array2d<double> dilate_hard(const array2d<double>& in, double radius_cells);
array2d<double> erode_hard(const array2d<double>& in, double radius_cells);

/// Differentiable (p-norm) approximation of dilation/erosion:
///   dilate_p(x)(c) = ( mean_{u in disk} x(c+u)^p )^(1/p)   -> max as p -> inf
///   erode_p(x)     = 1 - dilate_p(1 - x)
/// Inputs must lie in [0, 1]. The backward pass is the exact gradient of the
/// smooth forward.
class soft_morphology {
 public:
  explicit soft_morphology(double radius_cells, double power = 12.0);

  double radius() const { return radius_; }

  array2d<double> forward(const array2d<double>& in, bool dilate) const;

  /// d_in += (d forward / d in)^T d_out at the given input.
  void backward(const array2d<double>& in, const array2d<double>& d_out, bool dilate,
                array2d<double>& d_in) const;

 private:
  double radius_;
  double power_;
  std::vector<std::pair<int, int>> offsets_;  ///< disk footprint
};

}  // namespace boson::fab
