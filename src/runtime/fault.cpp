#include "runtime/fault.h"

#include <csignal>
#include <cstdlib>

#include "common/error.h"

namespace boson::runtime {

const char* to_string(fault_point point) {
  switch (point) {
    case fault_point::after_lease: return "after_lease";
    case fault_point::mid_run: return "mid_run";
    case fault_point::after_checkpoint: return "after_checkpoint";
    case fault_point::before_result: return "before_result";
  }
  return "?";
}

fault_point fault_point_from_string(const std::string& text) {
  if (text == "after_lease") return fault_point::after_lease;
  if (text == "mid_run") return fault_point::mid_run;
  if (text == "after_checkpoint") return fault_point::after_checkpoint;
  if (text == "before_result") return fault_point::before_result;
  throw bad_argument("fault: unknown kill point '" + text +
                     "' (expected after_lease, mid_run, after_checkpoint, "
                     "or before_result)");
}

void kill_process(const fault_site&) {
  std::raise(SIGKILL);
  std::abort();  // unreachable; pacifies noreturn analysis if SIGKILL is blocked
}

void fault_injector::arm(fault_point point, std::size_t occurrence,
                         fault_action action) {
  require(occurrence > 0, "fault: occurrence is 1-based");
  require(static_cast<bool>(action), "fault: action must not be empty");
  const std::lock_guard<std::mutex> lock(mutex_);
  armed_.push_back({point, occurrence, std::move(action)});
}

void fault_injector::arm(const std::string& spec) {
  std::string point_text = spec;
  std::size_t occurrence = 1;
  const std::size_t colon = spec.rfind(':');
  if (colon != std::string::npos) {
    point_text = spec.substr(0, colon);
    const std::string count_text = spec.substr(colon + 1);
    try {
      occurrence = static_cast<std::size_t>(std::stoul(count_text));
    } catch (const std::exception&) {
      throw bad_argument("fault: bad occurrence '" + count_text + "' in '" +
                         spec + "'");
    }
  }
  arm(fault_point_from_string(point_text), occurrence, &kill_process);
}

void fault_injector::hit(fault_point point, std::size_t job_index,
                         const std::string& job_name, std::size_t attempt) {
  fault_action fire;
  fault_site site;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const std::size_t n = ++counts_[static_cast<std::size_t>(point)];
    for (const armed& a : armed_) {
      if (a.point == point && a.occurrence == n) {
        fire = a.action;
        site = {point, n, job_index, attempt, job_name};
        break;
      }
    }
  }
  if (fire) fire(site);  // outside the lock: the action may re-enter or not return
}

std::size_t fault_injector::count(fault_point point) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return counts_[static_cast<std::size_t>(point)];
}

}  // namespace boson::runtime
