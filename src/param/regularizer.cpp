#include "param/regularizer.h"

#include <cmath>

#include "common/error.h"

namespace boson::param {

double total_variation(const array2d<double>& rho, array2d<double>* d_rho,
                       double smoothing) {
  require(rho.nx() >= 2 && rho.ny() >= 2, "total_variation: pattern too small");
  require(smoothing > 0.0, "total_variation: smoothing must be positive");
  if (d_rho != nullptr && !d_rho->same_shape(rho))
    *d_rho = array2d<double>(rho.nx(), rho.ny(), 0.0);

  double tv = 0.0;
  const double eps2 = smoothing * smoothing;
  // Forward differences; the last row/column use a zero gradient on the
  // missing side (free boundary).
  for (std::size_t ix = 0; ix < rho.nx(); ++ix) {
    for (std::size_t iy = 0; iy < rho.ny(); ++iy) {
      const double gx = (ix + 1 < rho.nx()) ? rho(ix + 1, iy) - rho(ix, iy) : 0.0;
      const double gy = (iy + 1 < rho.ny()) ? rho(ix, iy + 1) - rho(ix, iy) : 0.0;
      const double mag = std::sqrt(gx * gx + gy * gy + eps2);
      tv += mag - smoothing;  // zero for flat regions
      if (d_rho == nullptr) continue;
      if (ix + 1 < rho.nx()) {
        (*d_rho)(ix + 1, iy) += gx / mag;
        (*d_rho)(ix, iy) -= gx / mag;
      }
      if (iy + 1 < rho.ny()) {
        (*d_rho)(ix, iy + 1) += gy / mag;
        (*d_rho)(ix, iy) -= gy / mag;
      }
    }
  }
  return tv;
}

}  // namespace boson::param
