#include <gtest/gtest.h>

#include <cmath>

#include "grid/grid2d.h"
#include "grid/pml.h"
#include "modes/slab.h"

namespace boson {
namespace {

// --------------------------------------------------------------- grid2d ----

TEST(grid2d, coordinates_and_lookup) {
  grid2d g;
  g.nx = 10;
  g.ny = 20;
  g.dx = 0.1;
  g.dy = 0.05;
  EXPECT_DOUBLE_EQ(g.width(), 1.0);
  EXPECT_DOUBLE_EQ(g.height(), 1.0);
  EXPECT_DOUBLE_EQ(g.x_center(0), 0.05);
  EXPECT_DOUBLE_EQ(g.y_center(19), 0.975);
  EXPECT_EQ(g.ix_of(0.55), 5u);
  EXPECT_EQ(g.ix_of(-1.0), 0u);
  EXPECT_EQ(g.ix_of(99.0), 9u);
  EXPECT_EQ(g.cell_count(), 200u);
}

TEST(cell_window, contains_and_validation) {
  grid2d g;
  g.nx = g.ny = 10;
  g.dx = g.dy = 1.0;
  cell_window w{2, 3, 4, 5};
  EXPECT_TRUE(w.contains(2, 3));
  EXPECT_TRUE(w.contains(5, 7));
  EXPECT_FALSE(w.contains(6, 3));
  EXPECT_FALSE(w.contains(2, 8));
  EXPECT_NO_THROW(w.validate_within(g));
  cell_window bad{8, 8, 4, 4};
  EXPECT_THROW(bad.validate_within(g), bad_argument);
}

// ------------------------------------------------------------------ pml ----

TEST(pml, interior_is_unstretched) {
  pml_spec spec;
  spec.cells = 8;
  const auto s = build_stretch(64, 0.05, 4.0, spec);
  ASSERT_EQ(s.center.size(), 64u);
  ASSERT_EQ(s.iface.size(), 65u);
  for (std::size_t i = spec.cells + 1; i + spec.cells + 1 < 64; ++i) {
    EXPECT_EQ(s.center[i], cplx(1.0, 0.0)) << i;
  }
}

TEST(pml, absorption_grows_toward_boundary) {
  pml_spec spec;
  spec.cells = 10;
  const auto s = build_stretch(50, 0.05, 4.0, spec);
  // Imaginary part decreases monotonically walking inward from the low edge.
  for (std::size_t i = 1; i < spec.cells; ++i)
    EXPECT_LE(s.center[i].imag(), s.center[i - 1].imag());
  // Symmetric profile.
  for (std::size_t i = 0; i < 50; ++i)
    EXPECT_NEAR(s.center[i].imag(), s.center[49 - i].imag(), 1e-12);
  // Positive absorption at the boundary, unit real part everywhere.
  EXPECT_GT(s.center[0].imag(), 0.0);
  for (const auto& v : s.center) EXPECT_DOUBLE_EQ(v.real(), 1.0);
}

TEST(pml, grid_too_small_throws) {
  pml_spec spec;
  spec.cells = 12;
  EXPECT_THROW(build_stretch(20, 0.05, 4.0, spec), bad_argument);
}

TEST(pml, stronger_target_reflection_means_weaker_sigma) {
  pml_spec strong;
  strong.cells = 10;
  strong.r0 = 1e-10;
  pml_spec weak = strong;
  weak.r0 = 1e-2;
  const auto ss = build_stretch(40, 0.05, 4.0, strong);
  const auto sw = build_stretch(40, 0.05, 4.0, weak);
  EXPECT_GT(ss.center[0].imag(), sw.center[0].imag());
}

// ---------------------------------------------------------------- modes ----

/// Analytic effective index of the fundamental even mode of a symmetric slab
/// (core half-width a, indices n1 > n2), from tan(kappa a) = gamma / kappa.
double analytic_fundamental_neff(double a, double n1, double n2, double k0) {
  auto mismatch = [&](double neff) {
    const double kappa = k0 * std::sqrt(n1 * n1 - neff * neff);
    const double gamma = k0 * std::sqrt(neff * neff - n2 * n2);
    return std::tan(kappa * a) - gamma / kappa;
  };
  // The fundamental solution has kappa*a in (0, pi/2): bracket and bisect.
  double lo = std::sqrt(std::max(n2 * n2, n1 * n1 - std::pow(0.5 * pi / (k0 * a), 2.0))) + 1e-9;
  double hi = n1 - 1e-9;
  for (int it = 0; it < 200; ++it) {
    const double mid = 0.5 * (lo + hi);
    if (mismatch(mid) > 0.0) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

TEST(modes, fundamental_neff_matches_analytic_dispersion) {
  const double k0 = 2.0 * pi / 1.55;
  const double n1 = 3.48, n2 = 1.0, width = 0.4;
  const double d = 0.005;  // fine sampling for small discretization error
  const std::size_t n = 600;
  dvec eps(n, n2 * n2);
  for (std::size_t j = 0; j < n; ++j) {
    const double y = (static_cast<double>(j) + 0.5) * d - 1.5;
    if (std::abs(y) < width / 2.0) eps[j] = n1 * n1;
  }
  const auto ms = modes::solve_slab_modes(eps, d, k0, 2);
  ASSERT_GE(ms.size(), 1u);
  const double expected = analytic_fundamental_neff(width / 2.0, n1, n2, k0);
  EXPECT_NEAR(ms[0].neff, expected, 2e-3);
}

TEST(modes, ordering_and_labels) {
  const double k0 = 2.0 * pi / 1.55;
  dvec eps(280, 1.0);
  for (std::size_t j = 100; j < 180; ++j) eps[j] = 12.1;  // wide guide, many modes
  const auto ms = modes::solve_slab_modes(eps, 0.025, k0, 5);
  ASSERT_GE(ms.size(), 3u);
  for (std::size_t m = 1; m < ms.size(); ++m) EXPECT_GT(ms[m - 1].beta, ms[m].beta);
  for (std::size_t m = 0; m < ms.size(); ++m) EXPECT_EQ(ms[m].order, static_cast<int>(m + 1));
}

TEST(modes, profiles_orthonormal) {
  const double k0 = 2.0 * pi / 1.55;
  const double d = 0.025;
  dvec eps(280, 1.0);
  for (std::size_t j = 100; j < 180; ++j) eps[j] = 12.1;
  const auto ms = modes::solve_slab_modes(eps, d, k0, 4);
  ASSERT_GE(ms.size(), 3u);
  for (std::size_t a = 0; a < ms.size(); ++a) {
    for (std::size_t b = 0; b < ms.size(); ++b) {
      double overlap = 0.0;
      for (std::size_t j = 0; j < eps.size(); ++j)
        overlap += ms[a].profile[j] * ms[b].profile[j] * d;
      EXPECT_NEAR(overlap, a == b ? 1.0 : 0.0, 1e-9);
    }
  }
}

TEST(modes, mode_count_grows_with_width) {
  const double k0 = 2.0 * pi / 1.55;
  auto count = [&](std::size_t core_cells) {
    dvec eps(240, 1.0);
    for (std::size_t j = 120 - core_cells / 2; j < 120 + core_cells / 2; ++j) eps[j] = 12.1;
    return modes::solve_slab_modes(eps, 0.025, k0, 8).size();
  };
  EXPECT_LT(count(12), count(56));
}

TEST(modes, tm1_profile_has_no_interior_zero_crossing) {
  const double k0 = 2.0 * pi / 1.55;
  dvec eps(200, 1.0);
  for (std::size_t j = 80; j < 120; ++j) eps[j] = 12.1;
  const auto ms = modes::solve_slab_modes(eps, 0.025, k0, 3);
  ASSERT_GE(ms.size(), 2u);
  // TM1: single-signed in the core region; TM2: exactly one sign change.
  auto sign_changes = [&](const dvec& p) {
    int changes = 0;
    for (std::size_t j = 81; j < 119; ++j)
      if (p[j] * p[j - 1] < 0.0) ++changes;
    return changes;
  };
  EXPECT_EQ(sign_changes(ms[0].profile), 0);
  EXPECT_EQ(sign_changes(ms[1].profile), 1);
}

TEST(modes, power_factor_discrete_dispersion) {
  modes::slab_mode m;
  m.beta = 12.0;
  const double k0 = 4.0;
  EXPECT_DOUBLE_EQ(modes::mode_power_factor(m, k0), 12.0 / 8.0);
  const double d = 0.05;
  const double expected = std::sqrt(1.0 - 0.25 * 0.36) * 12.0 / 8.0;
  EXPECT_NEAR(modes::mode_power_factor(m, k0, d), expected, 1e-12);
  // Unresolvable mode (beta d >= 2) must be rejected.
  EXPECT_THROW(modes::mode_power_factor(m, k0, 0.2), bad_argument);
}

TEST(modes, requires_sane_inputs) {
  dvec tiny(4, 1.0);
  EXPECT_THROW(modes::solve_slab_modes(tiny, 0.05, 4.0), bad_argument);
  dvec ok(32, 1.0);
  EXPECT_THROW(modes::solve_slab_modes(ok, -0.05, 4.0), bad_argument);
  EXPECT_THROW(modes::solve_slab_modes(ok, 0.05, 0.0), bad_argument);
}

TEST(modes, no_guided_mode_in_homogeneous_medium) {
  dvec eps(64, 2.25);
  const auto ms = modes::solve_slab_modes(eps, 0.05, 4.0, 4);
  EXPECT_TRUE(ms.empty());
}

}  // namespace
}  // namespace boson
