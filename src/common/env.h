#pragma once

#include <cstddef>
#include <string>

namespace boson {

/// Read environment variable `name`; return `fallback` when unset or empty.
std::string env_string(const char* name, const std::string& fallback);

/// Read an integer environment variable; returns `fallback` when unset or
/// unparsable. Used for knobs such as BOSON_THREADS.
long env_int(const char* name, long fallback);

/// Read a floating-point environment variable (e.g. BOSON_BENCH_SCALE).
double env_double(const char* name, double fallback);

/// True when the variable is set to a truthy value ("1", "true", "yes", "on").
bool env_flag(const char* name, bool fallback = false);

}  // namespace boson
