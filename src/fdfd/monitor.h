#pragma once

#include <cstddef>

#include "common/array2d.h"
#include "common/types.h"
#include "fdfd/solver.h"
#include "fdfd/source.h"
#include "modes/slab.h"

namespace boson::fdfd {

/// Value of a monitor together with its Wirtinger gradient dF/dE (sparse over
/// the monitor's cells). All monitor values are real powers in the library's
/// natural units; objectives combine them after normalizing by a reference
/// input power.
struct monitor_result {
  double value = 0.0;
  field_gradient grad;
};

/// Modal power monitor: projects the field on a waveguide eigenmode across a
/// port cross-section and returns |amplitude|^2 * beta/(2 k0), the power
/// carried by that mode.
class mode_power_monitor {
 public:
  /// The monitor line lies at `line_index` (ix for vertical ports); the mode
  /// profile starts at transverse cell `span_start`. `normal_spacing` is the
  /// grid pitch along propagation, used for the discrete dispersion
  /// correction of the modal power factor.
  mode_power_monitor(port_axis axis, std::size_t line_index, std::size_t span_start,
                     modes::slab_mode mode, double transverse_spacing, double k0,
                     double normal_spacing = 0.0);

  /// Evaluate on a solved field, with gradient.
  monitor_result evaluate(const array2d<cplx>& field) const;

  /// Complex modal amplitude (useful for diagnostics/tests).
  cplx amplitude(const array2d<cplx>& field) const;

 private:
  port_axis axis_;
  std::size_t line_index_;
  std::size_t span_start_;
  modes::slab_mode mode_;
  double spacing_;
  double power_factor_;
};

/// Net Poynting flux through the interface between line `index` and
/// `index + 1` (vertical: power toward +x; horizontal: toward +y), summed
/// over transverse cells [span_start, span_start + span_count).
///
/// P = sum (dt / (2 k0)) Re(i E_mid dE*/dn), discretized midway between the
/// two field columns.
class flux_monitor {
 public:
  flux_monitor(port_axis axis, std::size_t index, std::size_t span_start,
               std::size_t span_count, double normal_spacing, double transverse_spacing,
               double k0);

  monitor_result evaluate(const array2d<cplx>& field) const;

 private:
  port_axis axis_;
  std::size_t index_;
  std::size_t span_start_;
  std::size_t span_count_;
  double dn_;
  double dt_;
  double k0_;
};

}  // namespace boson::fdfd
