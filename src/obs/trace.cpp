#include "obs/trace.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>

#include "common/error.h"
#include "common/log.h"

namespace boson::obs {

namespace {

std::atomic<trace_collector*> global_collector{nullptr};
std::atomic<std::uint64_t> next_span_id{1};

thread_local trace_collector* thread_collector = nullptr;
thread_local std::uint64_t current_parent = 0;

const std::chrono::steady_clock::time_point process_start =
    std::chrono::steady_clock::now();

trace_collector* active_sink() {
  if (thread_collector != nullptr) return thread_collector;
  return global_collector.load(std::memory_order_acquire);
}

/// JSON string escaping for the two exporters (control chars, quote,
/// backslash).
std::string escape_json(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string render_args(const trace_event& e) {
  std::string out = "{\"span_id\":" + std::to_string(e.id) +
                    ",\"parent_id\":" + std::to_string(e.parent);
  for (const auto& [k, v] : e.args)
    out += ",\"" + escape_json(k) + "\":\"" + escape_json(v) + "\"";
  out += "}";
  return out;
}

std::string render_event(const trace_event& e) {
  return "{\"name\":\"" + escape_json(e.name) + "\",\"cat\":\"" +
         escape_json(e.category.empty() ? "boson" : e.category) +
         "\",\"ph\":\"X\",\"ts\":" + std::to_string(e.start_us) +
         ",\"dur\":" + std::to_string(e.duration_us) +
         ",\"pid\":1,\"tid\":" + std::to_string(e.tid) +
         ",\"args\":" + render_args(e) + "}";
}

void write_text(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw io_error("cannot open trace file for writing: " + path);
  out << text;
  if (!out) throw io_error("failed writing trace file: " + path);
}

}  // namespace

std::int64_t trace_now_us() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - process_start)
      .count();
}

// --------------------------------------------------------- trace_collector ----

void trace_collector::record(trace_event event) {
  const std::lock_guard<std::mutex> lock(mutex_);
  events_.push_back(std::move(event));
}

std::vector<trace_event> trace_collector::events() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return events_;
}

std::size_t trace_collector::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return events_.size();
}

void trace_collector::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  events_.clear();
}

std::string trace_collector::to_chrome_json() const {
  const std::vector<trace_event> all = events();
  std::string out = "{\"traceEvents\":[";
  for (std::size_t i = 0; i < all.size(); ++i) {
    if (i > 0) out += ",";
    out += "\n" + render_event(all[i]);
  }
  out += all.empty() ? "]" : "\n]";
  out += ",\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

std::string trace_collector::to_ndjson() const {
  const std::vector<trace_event> all = events();
  std::string out;
  for (const trace_event& e : all) out += render_event(e) + "\n";
  return out;
}

void trace_collector::write_chrome_json(const std::string& path) const {
  write_text(path, to_chrome_json());
}

void trace_collector::write_ndjson(const std::string& path) const {
  write_text(path, to_ndjson());
}

// ------------------------------------------------------------------- sinks ----

void set_global_trace(trace_collector* collector) {
  global_collector.store(collector, std::memory_order_release);
}

trace_collector* global_trace() {
  return global_collector.load(std::memory_order_acquire);
}

bool tracing_active() { return active_sink() != nullptr; }

scoped_trace_sink::scoped_trace_sink(trace_collector* collector)
    : previous_(thread_collector), previous_parent_(current_parent) {
  thread_collector = collector;
  current_parent = 0;
}

scoped_trace_sink::~scoped_trace_sink() {
  thread_collector = previous_;
  current_parent = previous_parent_;
}

// -------------------------------------------------------------------- span ----

span::span(std::string name, std::string category) {
  sink_ = active_sink();
  if (sink_ == nullptr) return;
  event_.name = std::move(name);
  event_.category = std::move(category);
  event_.id = next_span_id.fetch_add(1, std::memory_order_relaxed);
  event_.parent = current_parent;
  event_.tid = static_cast<std::uint32_t>(thread_ordinal());
  event_.start_us = trace_now_us();
  current_parent = event_.id;
}

span::~span() {
  if (sink_ == nullptr) return;
  event_.duration_us = trace_now_us() - event_.start_us;
  current_parent = event_.parent;
  sink_->record(std::move(event_));
}

void span::arg(const std::string& key, std::string value) {
  if (sink_ == nullptr) return;
  event_.args.emplace_back(key, std::move(value));
}

}  // namespace boson::obs
