// Table I of the paper: main result across the three photonic benchmarks.
//
// For each device (crossing, bending, isolator) it runs the conventional
// density-based flow, the strongest two-stage prior art (InvFabCor-M-3) and
// BOSON-1, and reports pre-fab -> post-fab FoM plus the average improvement
// of BOSON-1 over the baselines. Expectation versus the paper: absolute
// numbers differ (different simulation substrate), the ordering and the
// collapse of the unconstrained baselines reproduce.

#include "bench_common.h"

int main() {
  using namespace boson;
  using core::method_id;

  const stopwatch total;
  const core::experiment_config cfg = core::default_config();

  bench::print_banner(
      "Table I: post-fabrication performance on the three benchmarks");
  std::printf("(iterations=%zu, MC samples=%zu, seed=%llu, scale=%.2f)\n",
              cfg.scaled_iterations(), cfg.scaled_samples(),
              static_cast<unsigned long long>(cfg.seed), cfg.scale);

  io::csv_writer csv("table1.csv", {"benchmark/model", "prefab_fom", "postfab_fom",
                                    "postfab_std", "fwd_mean", "bwd_mean"});

  const std::vector<method_id> methods{method_id::density, method_id::invfabcor_m_3,
                                       method_id::boson};

  double improvement_sum = 0.0;
  std::size_t improvement_count = 0;

  for (const auto kind :
       {dev::device_kind::crossing, dev::device_kind::bend, dev::device_kind::isolator}) {
    const dev::device_spec device = dev::make_device(kind);
    const bool lower = device.objective.fom_lower_better;

    io::console_table table({"model", "fwd & bwd transmission", "avg FoM (pre -> post)"});
    std::vector<core::method_result> results;
    for (const auto id : methods) results.push_back(core::run_method(device, id, cfg));

    for (const auto& r : results) {
      const bool is_boson = r.method == "BOSON-1";
      std::string fom_cell =
          is_boson ? io::console_table::sci(r.postfab.fom_mean)
                   : bench::arrow_cell(r.prefab_fom, r.postfab.fom_mean, lower);
      std::string fwd_bwd = "N/A";
      if (r.postfab.metric_means.count("fwd_transmission"))
        fwd_bwd = bench::fwd_bwd_cell(r.postfab.metric_means);
      table.add_row({r.method, fwd_bwd, fom_cell});
      csv.write_row(std::string(dev::to_string(kind)) + "/" + r.method,
                    {r.prefab_fom, r.postfab.fom_mean, r.postfab.fom_std,
                     r.postfab.metric_means.count("fwd_transmission")
                         ? r.postfab.metric_means.at("fwd_transmission")
                         : r.postfab.fom_mean,
                     r.postfab.metric_means.count("bwd_transmission")
                         ? r.postfab.metric_means.at("bwd_transmission")
                         : 0.0});
    }

    const double boson_fom = results.back().postfab.fom_mean;
    double device_improvement = 0.0;
    for (std::size_t b = 0; b + 1 < results.size(); ++b)
      device_improvement +=
          core::relative_improvement(results[b].postfab.fom_mean, boson_fom, lower);
    device_improvement /= static_cast<double>(results.size() - 1);
    improvement_sum += device_improvement;
    ++improvement_count;

    std::printf("\n");
    table.print(std::string("Benchmark: ") + dev::to_string(kind));
    std::printf("avg improvement: %.0f%%\n", 100.0 * device_improvement);
  }

  std::printf("\ntotal avg improvement: %.1f%%   (paper reports 74.3%%)\n",
              100.0 * improvement_sum / static_cast<double>(improvement_count));
  std::printf("raw rows: table1.csv\n");
  bench::print_runtime(total);
  return 0;
}
