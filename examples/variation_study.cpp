// Variation sensitivity study: how a finished design behaves across the
// fabrication / operation variation space.
//
// This is the downstream-user workflow: design a bend through the session
// façade with the spectral sweep and lithography process window directly in
// the spec's evaluation plan, then sweep each variation axis in isolation —
// lithography corner, temperature, global etch threshold — and sample the
// spatially correlated etch field, reporting the figure of merit at every
// point. The per-axis scans evaluate the library's variation models directly
// on the problem `session::problem_for` rebuilds from the same spec.
//
// The method is given as a `core::method_recipe` value rather than a
// registry name: start from the registered BOSON-1 preset, tighten one
// policy, and hand the composed recipe to the spec — the registry never
// learns about the variant.

#include <cstdio>

#include "api/registry.h"
#include "api/session.h"
#include "common/rng.h"
#include "io/table.h"

int main() {
  using namespace boson;

  // The BOSON-1 preset with one policy pinned (the explicit concentrated
  // init instead of the parameterization-dependent default) — the kind of
  // single-ingredient recipe edit the paper's Table II performs.
  core::method_recipe recipe = api::registry::global().method("boson");
  recipe.label = "BOSON-1 (variation study)";
  recipe.initialization = "concentrated";

  api::experiment_spec spec;
  spec.name = "variation_study_bend";
  spec.device = "bend";
  spec.method = "boson_variation";  // a label: the recipe below wins
  spec.recipe = recipe;
  spec.iterations = 20;  // a quick design is enough for the study
  spec.evaluation = {
      api::eval_step::sweep({1.50, 1.525, 1.55, 1.575, 1.60}),
      api::eval_step::window({0.0, 0.08, 0.16}, {0.95, 1.0, 1.05}),
  };

  api::session_options options;
  options.output_dir = "variation_out";
  api::session session(options);
  const api::experiment_result designed = session.run(spec);

  // Per-axis scans need the design problem itself (the spec's device +
  // parameterization + fabrication models).
  core::design_problem problem = api::session::problem_for(spec);

  auto fom_at = [&](const robust::variation_corner& corner) {
    core::eval_options o;
    o.fab_aware = true;
    o.hard_etch = true;
    o.compute_gradient = false;
    o.dense_objectives = false;
    const auto ev = problem.evaluate_pattern(designed.method.mask, corner, o);
    return problem.fom_of(ev.metrics);
  };

  auto nominal = [&] {
    robust::variation_corner c;
    c.xi.assign(problem.fab().space.eole_terms, 0.0);
    return c;
  };

  io::console_table table({"variation", "setting", "transmission"});
  table.add_row({"nominal", "-", io::console_table::num(fom_at(nominal()), 4)});

  for (int litho = 1; litho <= 2; ++litho) {
    auto c = nominal();
    c.litho = litho;
    table.add_row({"lithography", litho == 1 ? "l_min (defocus, -5% dose)"
                                             : "l_max (defocus, +5% dose)",
                   io::console_table::num(fom_at(c), 4)});
  }
  for (const double t : {260.0, 280.0, 320.0, 340.0}) {
    auto c = nominal();
    c.temperature = t;
    table.add_row(
        {"temperature", io::console_table::num(t, 0) + " K",
         io::console_table::num(fom_at(c), 4)});
  }
  for (const double shift : {-0.05, 0.05}) {
    auto c = nominal();
    c.eta_shift = shift;
    table.add_row({"etch threshold", (shift > 0 ? "+" : "") + io::console_table::num(shift, 2),
                   io::console_table::num(fom_at(c), 4)});
  }
  rng r(42);
  for (int s = 0; s < 3; ++s) {
    auto c = nominal();
    c.xi = r.normal_vector(problem.fab().space.eole_terms);
    table.add_row({"etch field (EOLE)", "random draw " + std::to_string(s + 1),
                   io::console_table::num(fom_at(c), 4)});
  }

  std::printf("\n");
  table.print("Post-fabrication sensitivity of the optimized bend");

  // Spectral response: how the design behaves off the central wavelength.
  io::console_table spectral({"wavelength [um]", "transmission"});
  for (const auto& pt : designed.spectrum)
    spectral.add_row({io::console_table::num(pt.lambda_um, 3),
                      io::console_table::num(pt.fom, 4)});
  std::printf("\n");
  spectral.print("Spectral response (nominal fabrication corner)");

  // Lithography process window: transmission across the (defocus, dose)
  // plane — the classical fab-engineering view of the same robustness the
  // BOSON-1 corners optimize.
  io::console_table pw({"defocus [um]", "dose", "transmission"});
  for (const auto& pt : designed.window)
    pw.add_row({io::console_table::num(pt.defocus_um, 2),
                io::console_table::num(pt.dose, 2), io::console_table::num(pt.fom, 4)});
  std::printf("\n");
  pw.print("Lithography process window");

  std::printf("\nArtifacts (summary.json, spectrum.csv, process_window.csv): %s\n",
              designed.artifact_dir.c_str());
  return 0;
}
