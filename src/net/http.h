/// \file http.h
/// Dependency-free HTTP/1.1 message model: request/response structs, a
/// strict *incremental* request parser (fed byte ranges, so it is fully
/// unit-testable without sockets), a matching response parser for the
/// client, and the serializers the server/client write to the wire. Framing
/// follows RFC 7230 as far as the control plane needs: Content-Length and
/// chunked bodies, case-insensitive headers, keep-alive defaults by version.
///
/// Every protocol violation throws `http_error` carrying the 4xx status the
/// server answers with (400 malformed, 413 body too large, 431 headers too
/// large, 501 unknown transfer coding, 505 unknown version) — the transport
/// layer never has to guess how to report a bad peer.

#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/error.h"

namespace boson::net {

/// A protocol violation by the peer; `status` is the HTTP status code the
/// server responds with before closing the connection.
class http_error : public error {
 public:
  http_error(int status, const std::string& message) : error(message), status_(status) {}
  int status() const { return status_; }

 private:
  int status_;
};

/// Hard ceilings the parser enforces while a message is still arriving, so
/// an abusive peer cannot balloon memory or starve a worker thread.
struct http_limits {
  std::size_t max_start_line = 8192;     ///< request/status line bytes
  std::size_t max_header_bytes = 32768;  ///< total header block bytes
  std::size_t max_headers = 100;         ///< header field count
  std::size_t max_body_bytes = 8 << 20;  ///< decoded body bytes (8 MiB)
};

/// Case-insensitive ASCII comparison (header field names).
bool iequals(const std::string& a, const std::string& b);

/// Decode %XX escapes and '+' (query components). Malformed escapes throw
/// `http_error` 400.
std::string percent_decode(const std::string& text);

/// Parse "a=1&b=two" into a map (keys/values percent-decoded; a bare key
/// maps to "").
std::map<std::string, std::string> parse_query(const std::string& query);

struct http_request {
  std::string method;            ///< upper-case by convention; matched exactly
  std::string target;            ///< the raw request target ("/v1/x?y=z")
  std::string path;              ///< target before '?', percent-decoded
  std::map<std::string, std::string> query;  ///< decoded query parameters
  int version_minor = 1;         ///< HTTP/1.<minor>
  std::vector<std::pair<std::string, std::string>> headers;  ///< arrival order
  std::string body;              ///< decoded (de-chunked) body

  /// First header matching `name` (case-insensitive), or nullptr.
  const std::string* header(const std::string& name) const;

  /// Keep-alive resolution: HTTP/1.1 defaults to keep-alive unless
  /// "Connection: close"; HTTP/1.0 defaults to close unless
  /// "Connection: keep-alive".
  bool keep_alive() const;
};

struct http_response {
  int status = 200;
  std::vector<std::pair<std::string, std::string>> headers;  ///< extra headers
  std::string content_type = "application/json";
  std::string body;

  /// Write the body with Transfer-Encoding: chunked, one chunk per line of
  /// `body` — the framing the journal event stream uses so a record is
  /// never split across chunks.
  bool chunked = false;

  const std::string* header(const std::string& name) const;
};

/// Request handler: what a control plane *is*, transport aside. Invoked on
/// server worker threads (must be thread-safe) and called directly by tests.
using http_handler = std::function<http_response(const http_request&)>;

/// Canonical reason phrase ("Not Found"); "Unknown" for unlisted codes.
const char* status_reason(int status);

/// The uniform JSON error envelope every non-2xx control-plane response
/// carries: {"error": {"status": N, "message": "..."}}.
http_response error_response(int status, const std::string& message);

/// Serialize a response for the wire. `keep_alive` picks the Connection
/// header; bodies are framed with Content-Length unless `r.chunked`.
/// `version_minor` is the *request's* HTTP version: a 1.0 peer cannot parse
/// chunked framing, so `r.chunked` downgrades to Content-Length for it.
std::string serialize(const http_response& r, bool keep_alive, int version_minor = 1);

/// Serialize a client request (Content-Length framing, no chunked upload).
std::string serialize(const std::string& method, const std::string& target,
                      const std::vector<std::pair<std::string, std::string>>& headers,
                      const std::string& body);

/// Incremental HTTP/1.1 request parser. Feed it byte ranges as they arrive;
/// it consumes up to the end of one message and reports completion, leaving
/// pipelined bytes for the caller. All `http_limits` are enforced during
/// parsing, so oversized messages fail before they are buffered.
class http_request_parser {
 public:
  explicit http_request_parser(http_limits limits = {});

  /// Consume up to `n` bytes; returns how many were consumed (== n unless
  /// the message completed mid-buffer). Throws `http_error` on violations.
  std::size_t feed(const char* data, std::size_t n);

  bool complete() const { return state_ == state::done; }

  /// True once any byte of a message has been consumed — lets a transport
  /// tell "idle keep-alive connection timed out" (just close) apart from
  /// "peer stalled mid-request" (answer 408).
  bool started() const { return state_ != state::start_line || !line_.empty(); }

  /// The parsed message (valid once `complete()`).
  http_request& request() { return request_; }

  /// Forget the current message and start parsing the next one (keep-alive).
  void reset();

 private:
  enum class state {
    start_line,
    headers,
    body,        // Content-Length framing
    chunk_size,  // chunked framing: "<hex>\r\n"
    chunk_data,
    chunk_end,   // "\r\n" after a chunk's payload
    trailers,    // after the 0-chunk
    done,
  };

  /// Append bytes to `line_` until LF; true when a full line is buffered.
  bool take_line(const char*& p, const char* end, std::size_t limit, int overflow_status);
  void parse_start_line();
  void parse_header_line();
  void finish_headers();

  http_limits limits_;
  state state_ = state::start_line;
  http_request request_;
  std::string line_;
  std::size_t header_bytes_ = 0;
  std::size_t body_expected_ = 0;  ///< Content-Length / current chunk remainder
  bool chunked_ = false;
};

/// Incremental HTTP/1.1 response parser (the client side). Framing:
/// Content-Length, chunked, or EOF-terminated (signal EOF with `finish`).
class http_response_parser {
 public:
  explicit http_response_parser(http_limits limits = {});

  std::size_t feed(const char* data, std::size_t n);

  /// Peer closed the connection: completes an EOF-terminated body, throws
  /// `http_error` when the message is truncated mid-frame.
  void finish();

  bool complete() const { return state_ == state::done; }
  http_response& response() { return response_; }

  /// Status-line version + Connection header resolution for the transport.
  bool keep_alive() const;

 private:
  enum class state { status_line, headers, body, until_eof, chunk_size, chunk_data, chunk_end, trailers, done };

  bool take_line(const char*& p, const char* end, std::size_t limit, int overflow_status);
  void parse_status_line();
  void parse_header_line();
  void finish_headers();

  http_limits limits_;
  state state_ = state::status_line;
  http_response response_;
  std::string line_;
  std::size_t header_bytes_ = 0;
  std::size_t body_expected_ = 0;
  int version_minor_ = 1;
};

}  // namespace boson::net
